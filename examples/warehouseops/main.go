// Warehouseops: the operational pipeline around the benchmark — the
// workflow a database team would actually run. Generates the data set
// to dsdgen-style flat files, loads a fresh warehouse from them (the
// official load-test input path, §5.2), audits the loaded database with
// the TPC validation checks, runs a refresh cycle, audits again, and
// demonstrates the OLAP-amendment reporting features (ROLLUP subtotals
// and EXPLAIN).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tpcds/internal/audit"
	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/maintenance"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

func main() {
	const sf = 0.001
	dir, err := os.MkdirTemp("", "tpcds-ops-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("cleanup %s: %v", dir, err)
		}
	}()

	// 1. Extract: generate the data set as flat files (dsdgen).
	start := time.Now()
	src := datagen.New(sf, 9).GenerateAllParallel()
	if err := src.DumpDir(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. generated %d rows to %s in %v\n",
		src.TotalRows(), dir, time.Since(start).Round(time.Millisecond))

	// 2. Load: a fresh warehouse from the flat files.
	start = time.Now()
	db, err := storage.LoadDir(dir, schema.Tables())
	if err != nil {
		log.Fatal(err)
	}
	eng := exec.New(db)
	fmt.Printf("2. loaded %d rows from flat files in %v\n",
		db.TotalRows(), time.Since(start).Round(time.Millisecond))

	// 3. Audit the load (row counts against the scaling model included).
	rep := audit.Run(db, audit.Options{SF: sf})
	fmt.Printf("3. post-load %s", rep.String())
	if !rep.Passed() {
		log.Fatal("load audit failed")
	}

	// 4. One ETL refresh cycle.
	rs, err := maintenance.GenerateRefresh(db, 9, 1)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := maintenance.Run(eng, rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. refresh: +%d facts, -%d facts, %d SCD revisions in %v\n",
		stats.FactInserts, stats.FactDeletes, stats.DimRevisions,
		stats.Total().Round(time.Millisecond))

	// 5. Audit again: structural invariants must survive maintenance.
	rep = audit.Run(db, audit.Options{})
	fmt.Printf("5. post-refresh %s", rep.String())
	if !rep.Passed() {
		log.Fatal("post-refresh audit failed")
	}

	// 6. Management rollup: channel revenue with subtotals (SQL-99 OLAP
	// amendment) — NULLs mark the rolled-up levels.
	res, err := eng.Query(`
		SELECT i_category, i_class, SUM(ss_ext_sales_price) revenue
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk
		  AND i_category IN ('Books', 'Music')
		GROUP BY ROLLUP(i_category, i_class)
		ORDER BY i_category, revenue DESC
		LIMIT 12`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6. rollup report:\n%s", res.String())

	// 7. EXPLAIN a star query.
	explain, err := eng.Explain(`
		SELECT i_brand, SUM(ss_ext_sales_price) r
		FROM store_sales, item, date_dim
		WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
		  AND d_year = 2001 AND d_moy = 12 AND i_manager_id BETWEEN 1 AND 20
		GROUP BY i_brand ORDER BY r DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("7. explain:\n%s", explain)
}
