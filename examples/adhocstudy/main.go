// Adhocstudy: the optimizer study of §2.1 — the same star query run
// under the hash-join pipeline and under the bitmap star transformation,
// with identical results and (depending on dimension selectivity) very
// different costs. This is the decision the paper says "seems to be an
// area in which today's query optimizers have huge deficits".
package main

import (
	"fmt"
	"log"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/plan"
)

const query = `
SELECT i_brand, SUM(ss_ext_sales_price) revenue
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = 2000 AND d_moy = 12
  AND i_manager_id BETWEEN 1 AND 10
GROUP BY i_brand
ORDER BY revenue DESC
LIMIT 10`

func main() {
	db := datagen.New(0.002, 5).GenerateAll()
	eng := exec.New(db)

	run := func(mode plan.Mode) (time.Duration, int, plan.Decision) {
		eng.SetMode(mode)
		// Warm once so both modes measure execution, not index builds.
		if _, err := eng.Query(query); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), len(res.Rows), eng.LastDecision()
	}

	hashTime, hashRows, _ := run(plan.ForceHashJoin)
	starTime, starRows, starDec := run(plan.ForceStar)
	_, autoRows, autoDec := run(plan.Auto)

	fmt.Println("query: December-2000 revenue for 10 managers' brands (selective star)")
	fmt.Printf("  hash-join pipeline:   %8v  (%d rows)\n", hashTime, hashRows)
	fmt.Printf("  star transformation:  %8v  (%d rows)\n", starTime, starRows)
	fmt.Printf("  star decision: %s\n", starDec.Reason)
	fmt.Printf("  auto mode chose: %v (%s)\n", autoDec.Strategy, autoDec.Reason)
	if hashRows != starRows || starRows != autoRows {
		log.Fatalf("strategies disagree on results: %d vs %d vs %d rows", hashRows, starRows, autoRows)
	}
	fmt.Println("  all strategies returned identical results")

	// The unselective case: the optimizer should fall back to hash joins.
	broad := `
		SELECT i_category, COUNT(*) c
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk AND i_current_price > 0.01
		GROUP BY i_category ORDER BY c DESC`
	eng.SetMode(plan.Auto)
	if _, err := eng.Query(broad); err != nil {
		log.Fatal(err)
	}
	d := eng.LastDecision()
	fmt.Printf("\nbroad query (unselective dimensions): auto chose %v\n  reason: %s\n", d.Strategy, d.Reason)
}
