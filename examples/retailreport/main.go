// Retailreport: the reporting workload of the catalog channel (§2.2 —
// the part of the schema where complex auxiliary structures are
// allowed). Builds the reporting auxiliary structures up front, then
// produces a small management report: channel revenue by year, call
// center performance, and the windowed revenue-ratio analysis of
// Query 20.
package main

import (
	"fmt"
	"log"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/schema"
)

func main() {
	db := datagen.New(0.001, 7).GenerateAll()
	eng := exec.New(db)

	// Reporting part: precompute auxiliary structures for the catalog
	// channel (allowed by the implementation rules; their build cost
	// lands in the load test, weighted into the metric at 1%/stream).
	buildStart := time.Now()
	cs := db.Table("catalog_sales")
	for _, fk := range cs.Def.ForeignKeys {
		eng.WarmBitmapIndex("catalog_sales", fk.Column)
	}
	for _, t := range schema.Tables() {
		if t.Kind == schema.Dimension && len(t.PrimaryKey) == 1 {
			eng.WarmHashIndex(t.Name, t.PrimaryKey[0])
		}
	}
	fmt.Printf("reporting auxiliary structures built in %v\n\n", time.Since(buildStart).Round(time.Millisecond))

	report := []struct {
		title string
		sql   string
	}{
		{"Catalog revenue by year", `
			SELECT d_year, SUM(cs_ext_sales_price) revenue, COUNT(*) line_items
			FROM catalog_sales, date_dim
			WHERE cs_sold_date_sk = d_date_sk
			GROUP BY d_year ORDER BY d_year`},
		{"Call center performance", `
			SELECT cc_name, SUM(cs_net_paid) net, COUNT(*) orders
			FROM catalog_sales, call_center
			WHERE cs_call_center_sk = cc_call_center_sk
			GROUP BY cc_name ORDER BY net DESC LIMIT 5`},
		{"Class revenue share within category (Query 20 shape)", `
			SELECT i_category, i_class, SUM(cs_ext_sales_price) rev,
			       SUM(cs_ext_sales_price) * 100 /
			         SUM(SUM(cs_ext_sales_price)) OVER (PARTITION BY i_category) share
			FROM catalog_sales, item
			WHERE cs_item_sk = i_item_sk AND i_category IN ('Books', 'Home', 'Sports')
			GROUP BY i_category, i_class
			ORDER BY i_category, share DESC LIMIT 12`},
		{"Return rate by warehouse", `
			SELECT w_warehouse_name, SUM(cr_return_amount) returned
			FROM catalog_returns, warehouse
			WHERE cr_warehouse_sk = w_warehouse_sk
			GROUP BY w_warehouse_name ORDER BY returned DESC LIMIT 5`},
	}
	for _, r := range report {
		start := time.Now()
		res, err := eng.Query(r.sql)
		if err != nil {
			log.Fatalf("%s: %v", r.title, err)
		}
		fmt.Printf("== %s (%v)\n%s\n", r.title, time.Since(start).Round(time.Microsecond), res.String())
	}
}
