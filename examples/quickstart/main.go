// Quickstart: generate a small TPC-DS database, run the paper's two
// example queries (Query 52, Figure 6 and Query 20, Figure 7), and
// print the results — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

func main() {
	// 1. Generate the 24-table snowstorm schema at a development scale
	// factor (0.001 ~ 1/1000 of the smallest official 100GB scale).
	start := time.Now()
	db := datagen.New(0.001, 1).GenerateAll()
	fmt.Printf("generated %d rows across %d tables in %v\n\n",
		db.TotalRows(), len(db.Names()), time.Since(start).Round(time.Millisecond))

	// 2. Open an engine over the database.
	eng := exec.New(db)

	// 3. Instantiate and run the paper's example queries.
	for _, id := range []int{52, 20} {
		tpl, err := queries.ByID(id)
		if err != nil {
			log.Fatal(err)
		}
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- Query %d (%s), %s query\n%s\n\n", tpl.ID, tpl.Name, qgen.ClassOf(tpl), text)
		qStart := time.Now()
		res, err := eng.Query(text)
		if err != nil {
			log.Fatal(err)
		}
		// Print at most 8 rows to keep the tour readable.
		if len(res.Rows) > 8 {
			res.Rows = res.Rows[:8]
		}
		fmt.Print(res.String())
		fmt.Printf("(%v)\n\n", time.Since(qStart).Round(time.Microsecond))
	}

	// 4. Ad-hoc SQL works too.
	res, err := eng.Query(`
		SELECT i_category, SUM(ss_ext_sales_price) revenue
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk
		GROUP BY i_category
		ORDER BY revenue DESC
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- Top categories by store revenue")
	fmt.Print(res.String())
}
