// Etlrefresh: the data maintenance workload of §4.2 — the periodic ETL
// refresh. Shows the staged (business-keyed) input, the slowly changing
// dimension mechanics of Figures 8/9, the surrogate-key translation of
// Figure 10, and the before/after state of the warehouse.
package main

import (
	"fmt"
	"log"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/maintenance"
	"tpcds/internal/storage"
)

func main() {
	db := datagen.New(0.001, 3).GenerateAll()
	eng := exec.New(db)

	before := map[string]int{}
	for _, name := range []string{"store_sales", "store_returns", "item", "customer"} {
		before[name] = db.Table(name).NumRows()
	}

	// Generate the staged refresh input (the assumed "E" of ETL).
	rs, err := maintenance.GenerateRefresh(db, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged input: %d store sales, %d catalog sales, %d web sales, %d dim updates\n",
		len(rs.Sales["store"]), len(rs.Sales["catalog"]), len(rs.Sales["web"]), len(rs.DimUpdates))
	lo, hi := rs.DeleteRange["store"][0], rs.DeleteRange["store"][1]
	fmt.Printf("store delete range: %s .. %s (logically clustered)\n\n",
		storage.FormatDate(storage.DaysFromSK(lo)), storage.FormatDate(storage.DaysFromSK(hi)))

	// One staged sale, as it would appear in the extract flat file:
	// business keys, not surrogate keys.
	s := rs.Sales["store"][0]
	fmt.Printf("sample staged sale: item=%s customer=%s date=%s qty=%d price=%.2f\n\n",
		s.ItemID, s.CustomerID, storage.FormatDate(storage.DaysFromSK(s.SoldDateSK)),
		s.Quantity, s.SalesPrice)

	// Run the 12 maintenance operations.
	stats, err := maintenance.Run(eng, rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maintenance operations:")
	for _, op := range stats.Ops {
		fmt.Printf("  %-26s %8d rows  %v\n", op.Name, op.Rows, op.Duration)
	}
	fmt.Printf("\ntotals: +%d fact rows, -%d fact rows, %d in-place dim updates, %d new SCD revisions\n\n",
		stats.FactInserts, stats.FactDeletes, stats.DimInPlace, stats.DimRevisions)

	for _, name := range []string{"store_sales", "store_returns", "item", "customer"} {
		fmt.Printf("%-14s %8d -> %8d rows\n", name, before[name], db.Table(name).NumRows())
	}

	// Show one SCD history: an item with multiple revisions.
	res, err := eng.Query(`
		SELECT i_item_id, i_rec_start_date, i_rec_end_date, i_current_price
		FROM item
		WHERE i_item_id IN (SELECT i_item_id FROM item WHERE i_rec_start_date > '2002-12-31')
		ORDER BY i_item_id, i_rec_start_date
		LIMIT 9`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSCD revision chains touched by this refresh (rec_end NULL = current):\n%s", res.String())
}
