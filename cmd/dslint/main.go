// Command dslint is the repo's static-analysis gate. It runs two
// layers and exits nonzero if either finds anything:
//
//   - source analyzers (internal/lint): the statement-level rules
//     (determinism, cancelcheck, errcheck, panics, strayio) plus the
//     flow-sensitive tier built on the CFG + dataflow framework
//     (lockcheck, goleak, ctxflow, taintdet) — all pure stdlib
//     go/ast + go/types, no external tooling;
//   - the schema-aware template checker (internal/lint/templatecheck):
//     every one of the 99 query templates must substitute, parse, and
//     resolve cleanly against the snowstorm schema catalog.
//
// Usage:
//
//	dslint [-source=false] [-templates=false] [-rules lockcheck,goleak] [-json] [packages]
//	dslint -summary '(Engine).costPlan'
//	dslint -why internal/exec/batch.go:177
//
// -rules restricts the source layer to a comma-separated subset of
// analyzers (see -rules=help for the list); unknown names are a usage
// error. -json replaces the human-readable listing with one JSON
// object {"findings": [...]} on stdout — source findings first (sorted
// by position), then template findings in template order — for CI
// artifact upload; with -timings a "timings" member carries the
// per-analyzer wall time.
//
// -summary prints the computed interprocedural summary (purity, escape,
// taint transfer) of one function and exits — the triage tool for
// sharecap/pubfreeze/taintdet findings. The name is matched as an exact
// display name ("exec.(Engine).costPlan") or any unique suffix.
//
// -why file:line explains the value-tier findings at that source line:
// the proof obligations boundscheck/nilcheck/errcontract tried and the
// abstract facts that were too weak — the triage tool for deciding
// between a code fix and a //lint:ignore.
//
// -cache persists per-package summaries to the given file, keyed by a
// content hash of each package and its in-module imports, so repeat
// runs skip the summary fixpoint for unchanged packages.
//
// -baseline enforces the suppression ratchet: the JSON file holds the
// accepted per-rule //lint:ignore counts; a rule whose live count
// exceeds its baseline fails the run, and counts below baseline print
// a ratchet-down reminder. -write-baseline rewrites the file from the
// current counts (the only way the numbers move).
//
// -timings reports per-analyzer wall time; -budget fails the run when
// the source layer exceeds the given total duration — the CI guard
// keeping the abstract-interpretation tier interactive.
//
// The package argument is accepted for familiarity ("./...") but the
// tool always analyzes the whole module containing the working
// directory. False positives are suppressed in source with
// "//lint:ignore <rule> <reason>"; suppressed counts are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tpcds/internal/lint"
	"tpcds/internal/lint/templatecheck"
	"tpcds/internal/queries"
)

func main() {
	source := flag.Bool("source", true, "run the source analyzers")
	templates := flag.Bool("templates", true, "run the schema-aware template checker")
	rulesFlag := flag.String("rules", "", "comma-separated subset of source analyzers to run (default: all; 'help' lists them)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	summaryFlag := flag.String("summary", "", "print the interprocedural summary of the named function and exit")
	cacheFlag := flag.String("cache", "", "summary cache file: restore unchanged packages, record the rest")
	whyFlag := flag.String("why", "", "explain the value-tier findings at file:line and exit")
	baselineFlag := flag.String("baseline", "", "suppression-ratchet file: fail if any rule's //lint:ignore count grows past it")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file from the current suppression counts")
	timingsFlag := flag.Bool("timings", false, "report per-analyzer wall time")
	budgetFlag := flag.Duration("budget", 0, "fail when the source layer exceeds this total wall time (0 = no limit)")
	flag.Parse()

	if *rulesFlag == "help" {
		fmt.Fprintf(os.Stderr, "dslint: source rules: %s\n", strings.Join(lint.Rules(), ", "))
		os.Exit(0)
	}

	if *summaryFlag != "" {
		_, pkgs, err := lint.Module(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
		pr := lint.BuildProgram(pkgs, nil)
		node, candidates := pr.FindNode(*summaryFlag)
		if node == nil {
			if len(candidates) > 0 {
				fmt.Fprintf(os.Stderr, "dslint: %q is ambiguous: %s\n", *summaryFlag, strings.Join(candidates, ", "))
			} else {
				fmt.Fprintf(os.Stderr, "dslint: no function matches %q\n", *summaryFlag)
			}
			os.Exit(2)
		}
		fmt.Printf("%s: %s\n", node.Name, node.Summary())
		var callees []string
		for _, c := range node.Calls {
			callees = append(callees, c.Name)
		}
		if len(callees) > 0 {
			fmt.Printf("  calls: %s\n", strings.Join(callees, ", "))
		}
		if node.CallsUnknown {
			fmt.Println("  calls unresolved functions (interface methods, function values, or stdlib)")
		}
		return
	}
	if *whyFlag != "" {
		os.Exit(explain(*whyFlag))
	}
	var rules []string
	if *rulesFlag != "" {
		for _, r := range strings.Split(*rulesFlag, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !lint.KnownRule(r) {
				fmt.Fprintf(os.Stderr, "dslint: unknown rule %q (known: %s)\n", r, strings.Join(lint.Rules(), ", "))
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	// all accumulates every finding as a lint.Diagnostic so -json emits
	// one uniform object: source findings first (already sorted by
	// position), then template findings as rule "template" in template
	// order. Both orders are deterministic, so the artifact is diffable
	// across CI runs.
	var all []lint.Diagnostic
	failed := false
	var timings map[string]float64
	if *source {
		_, pkgs, err := lint.Module(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
		var store *lint.SummaryStore
		if *cacheFlag != "" {
			store = lint.LoadSummaryStore(*cacheFlag)
		}
		res := lint.CheckRulesWithStore(pkgs, rules, store)
		if store != nil {
			if err := store.Save(); err != nil {
				fmt.Fprintf(os.Stderr, "dslint: saving summary cache: %v\n", err)
			}
		}
		all = append(all, res.Diagnostics...)
		fmt.Fprintf(os.Stderr, "dslint: source: %d packages, %d findings, %d suppressed by //lint:ignore\n",
			len(pkgs), len(res.Diagnostics), res.Suppressed)
		var total time.Duration
		for _, d := range res.Timings {
			total += d
		}
		if *timingsFlag {
			timings = map[string]float64{}
			var names []string
			for name, d := range res.Timings {
				names = append(names, name)
				timings[name] = float64(d.Microseconds()) / 1000
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(os.Stderr, "dslint: timing: %-12s %s\n", name, res.Timings[name].Round(time.Millisecond))
			}
			fmt.Fprintf(os.Stderr, "dslint: timing: %-12s %s\n", "total", total.Round(time.Millisecond))
		}
		if *budgetFlag > 0 && total > *budgetFlag {
			fmt.Fprintf(os.Stderr, "dslint: source layer took %s, over the %s budget\n",
				total.Round(time.Millisecond), *budgetFlag)
			failed = true
		}
		if *baselineFlag != "" {
			if !ratchet(*baselineFlag, *writeBaseline, rules, res.SuppressedByRule) {
				failed = true
			}
		}
	}
	if *templates {
		diags := templatecheck.CheckAll(queries.All())
		for _, d := range diags {
			all = append(all, lint.Diagnostic{
				Pos:     token.Position{Filename: "internal/queries/" + d.File, Line: d.Line, Column: d.Col},
				Rule:    "template",
				Message: d.Message,
			})
		}
		fmt.Fprintf(os.Stderr, "dslint: templates: %d checked, %d findings\n",
			queries.Count, len(diags))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Diagnostic{} // emit "findings": [] rather than null
		}
		out := struct {
			Findings []lint.Diagnostic  `json:"findings"`
			Timings  map[string]float64 `json:"timings,omitempty"` // per-analyzer wall ms
		}{all, timings}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 || failed {
		os.Exit(1)
	}
}

// explain implements -why: it re-runs the value-tier analyzers and
// prints, for each finding at the given file:line, the proof
// obligations that failed and the abstract facts that were too weak.
func explain(loc string) int {
	i := strings.LastIndex(loc, ":")
	if i < 0 {
		fmt.Fprintf(os.Stderr, "dslint: -why wants file:line, got %q\n", loc)
		return 2
	}
	file, lineStr := loc[:i], loc[i+1:]
	line, err := strconv.Atoi(lineStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dslint: -why wants file:line, got %q\n", loc)
		return 2
	}
	_, pkgs, err := lint.Module(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
		return 2
	}
	res := lint.CheckRules(pkgs, []string{"boundscheck", "nilcheck", "errcontract"})
	matched := 0
	for _, d := range res.Diagnostics {
		if d.Pos.Line != line || !sameFile(d.Pos.Filename, file) {
			continue
		}
		matched++
		fmt.Println(d)
		if d.Why != "" {
			for _, l := range strings.Split(d.Why, "\n") {
				fmt.Println("\t" + l)
			}
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "dslint: no value-tier finding at %s (proof succeeded, or the finding is suppressed — remove the //lint:ignore to re-triage it)\n", loc)
		return 1
	}
	return 0
}

// sameFile matches the user-given path against a finding's filename by
// suffix, so both "internal/exec/batch.go" and "batch.go" work.
func sameFile(found, given string) bool {
	return found == given || strings.HasSuffix(found, "/"+given)
}

// ratchet implements -baseline: current per-rule suppression counts may
// only move down relative to the committed file. Rules that did not run
// are left out of the comparison (their count is vacuously zero). With
// write set, the file is rewritten from the current counts, keeping the
// stored value for rules that did not run.
func ratchet(path string, write bool, rules []string, current map[string]int) bool {
	stored := map[string]int{}
	data, err := os.ReadFile(path)
	if err == nil {
		if err := json.Unmarshal(data, &stored); err != nil {
			fmt.Fprintf(os.Stderr, "dslint: baseline %s: %v\n", path, err)
			return false
		}
	} else if !write {
		fmt.Fprintf(os.Stderr, "dslint: baseline %s: %v (run -write-baseline to create it)\n", path, err)
		return false
	}
	ran := map[string]bool{}
	if len(rules) == 0 {
		for _, r := range lint.Rules() {
			ran[r] = true
		}
	} else {
		for _, r := range rules {
			ran[r] = true
		}
	}
	if write {
		next := map[string]int{}
		for rule, n := range stored {
			if !ran[rule] && n > 0 {
				next[rule] = n
			}
		}
		for rule, n := range current {
			if n > 0 {
				next[rule] = n
			}
		}
		out, err := json.MarshalIndent(next, "", "\t")
		if err == nil {
			err = os.WriteFile(path, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: writing baseline %s: %v\n", path, err)
			return false
		}
		fmt.Fprintf(os.Stderr, "dslint: baseline %s rewritten\n", path)
		return true
	}
	ok := true
	var names []string
	for rule := range ran {
		if current[rule] > 0 || stored[rule] > 0 {
			names = append(names, rule)
		}
	}
	sort.Strings(names)
	for _, rule := range names {
		cur, base := current[rule], stored[rule]
		switch {
		case cur > base:
			fmt.Fprintf(os.Stderr, "dslint: suppression ratchet: rule %s has %d //lint:ignore directives, baseline allows %d — fix the code or justify and -write-baseline\n",
				rule, cur, base)
			ok = false
		case cur < base:
			fmt.Fprintf(os.Stderr, "dslint: suppression ratchet: rule %s is down to %d (baseline %d) — ratchet down with -write-baseline\n",
				rule, cur, base)
		}
	}
	return ok
}
