// Command dslint is the repo's static-analysis gate. It runs two
// layers and exits nonzero if either finds anything:
//
//   - source analyzers (internal/lint): determinism of the generator
//     packages, cancellation hygiene in the executor, error and panic
//     discipline, and stray process-stream I/O — all pure stdlib
//     go/ast + go/types, no external tooling;
//   - the schema-aware template checker (internal/lint/templatecheck):
//     every one of the 99 query templates must substitute, parse, and
//     resolve cleanly against the snowstorm schema catalog.
//
// Usage:
//
//	dslint [-source=false] [-templates=false] [packages]
//
// The package argument is accepted for familiarity ("./...") but the
// tool always analyzes the whole module containing the working
// directory. False positives are suppressed in source with
// "//lint:ignore <rule> <reason>"; suppressed counts are reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"tpcds/internal/lint"
	"tpcds/internal/lint/templatecheck"
	"tpcds/internal/queries"
)

func main() {
	source := flag.Bool("source", true, "run the source analyzers")
	templates := flag.Bool("templates", true, "run the schema-aware template checker")
	flag.Parse()

	findings := 0
	if *source {
		loader, err := lint.NewLoader(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
		pkgs, err := loader.LoadModule()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
		res := lint.Check(pkgs)
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		findings += len(res.Diagnostics)
		fmt.Fprintf(os.Stderr, "dslint: source: %d packages, %d findings, %d suppressed by //lint:ignore\n",
			len(pkgs), len(res.Diagnostics), res.Suppressed)
	}
	if *templates {
		diags := templatecheck.CheckAll(queries.All())
		for _, d := range diags {
			fmt.Printf("internal/queries/%s\n", d)
		}
		findings += len(diags)
		fmt.Fprintf(os.Stderr, "dslint: templates: %d checked, %d findings\n",
			queries.Count, len(diags))
	}
	if findings > 0 {
		os.Exit(1)
	}
}
