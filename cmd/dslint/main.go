// Command dslint is the repo's static-analysis gate. It runs two
// layers and exits nonzero if either finds anything:
//
//   - source analyzers (internal/lint): the statement-level rules
//     (determinism, cancelcheck, errcheck, panics, strayio) plus the
//     flow-sensitive tier built on the CFG + dataflow framework
//     (lockcheck, goleak, ctxflow, taintdet) — all pure stdlib
//     go/ast + go/types, no external tooling;
//   - the schema-aware template checker (internal/lint/templatecheck):
//     every one of the 99 query templates must substitute, parse, and
//     resolve cleanly against the snowstorm schema catalog.
//
// Usage:
//
//	dslint [-source=false] [-templates=false] [-rules lockcheck,goleak] [-json] [packages]
//	dslint -summary '(Engine).costPlan'
//
// -rules restricts the source layer to a comma-separated subset of
// analyzers (see -rules=help for the list); unknown names are a usage
// error. -json replaces the human-readable listing with one JSON array
// of findings on stdout — source findings first (sorted by position),
// then template findings in template order — for CI artifact upload.
//
// -summary prints the computed interprocedural summary (purity, escape,
// taint transfer) of one function and exits — the triage tool for
// sharecap/pubfreeze/taintdet findings. The name is matched as an exact
// display name ("exec.(Engine).costPlan") or any unique suffix.
//
// -cache persists per-package summaries to the given file, keyed by a
// content hash of each package and its in-module imports, so repeat
// runs skip the summary fixpoint for unchanged packages.
//
// The package argument is accepted for familiarity ("./...") but the
// tool always analyzes the whole module containing the working
// directory. False positives are suppressed in source with
// "//lint:ignore <rule> <reason>"; suppressed counts are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"tpcds/internal/lint"
	"tpcds/internal/lint/templatecheck"
	"tpcds/internal/queries"
)

func main() {
	source := flag.Bool("source", true, "run the source analyzers")
	templates := flag.Bool("templates", true, "run the schema-aware template checker")
	rulesFlag := flag.String("rules", "", "comma-separated subset of source analyzers to run (default: all; 'help' lists them)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	summaryFlag := flag.String("summary", "", "print the interprocedural summary of the named function and exit")
	cacheFlag := flag.String("cache", "", "summary cache file: restore unchanged packages, record the rest")
	flag.Parse()

	if *rulesFlag == "help" {
		fmt.Fprintf(os.Stderr, "dslint: source rules: %s\n", strings.Join(lint.Rules(), ", "))
		os.Exit(0)
	}

	if *summaryFlag != "" {
		_, pkgs, err := lint.Module(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
		pr := lint.BuildProgram(pkgs, nil)
		node, candidates := pr.FindNode(*summaryFlag)
		if node == nil {
			if len(candidates) > 0 {
				fmt.Fprintf(os.Stderr, "dslint: %q is ambiguous: %s\n", *summaryFlag, strings.Join(candidates, ", "))
			} else {
				fmt.Fprintf(os.Stderr, "dslint: no function matches %q\n", *summaryFlag)
			}
			os.Exit(2)
		}
		fmt.Printf("%s: %s\n", node.Name, node.Summary())
		var callees []string
		for _, c := range node.Calls {
			callees = append(callees, c.Name)
		}
		if len(callees) > 0 {
			fmt.Printf("  calls: %s\n", strings.Join(callees, ", "))
		}
		if node.CallsUnknown {
			fmt.Println("  calls unresolved functions (interface methods, function values, or stdlib)")
		}
		return
	}
	var rules []string
	if *rulesFlag != "" {
		for _, r := range strings.Split(*rulesFlag, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !lint.KnownRule(r) {
				fmt.Fprintf(os.Stderr, "dslint: unknown rule %q (known: %s)\n", r, strings.Join(lint.Rules(), ", "))
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	// all accumulates every finding as a lint.Diagnostic so -json emits
	// one uniform array: source findings first (already sorted by
	// position), then template findings as rule "template" in template
	// order. Both orders are deterministic, so the artifact is diffable
	// across CI runs.
	var all []lint.Diagnostic
	if *source {
		_, pkgs, err := lint.Module(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
		var store *lint.SummaryStore
		if *cacheFlag != "" {
			store = lint.LoadSummaryStore(*cacheFlag)
		}
		res := lint.CheckRulesWithStore(pkgs, rules, store)
		if store != nil {
			if err := store.Save(); err != nil {
				fmt.Fprintf(os.Stderr, "dslint: saving summary cache: %v\n", err)
			}
		}
		all = append(all, res.Diagnostics...)
		fmt.Fprintf(os.Stderr, "dslint: source: %d packages, %d findings, %d suppressed by //lint:ignore\n",
			len(pkgs), len(res.Diagnostics), res.Suppressed)
	}
	if *templates {
		diags := templatecheck.CheckAll(queries.All())
		for _, d := range diags {
			all = append(all, lint.Diagnostic{
				Pos:     token.Position{Filename: "internal/queries/" + d.File, Line: d.Line, Column: d.Col},
				Rule:    "template",
				Message: d.Message,
			})
		}
		fmt.Fprintf(os.Stderr, "dslint: templates: %d checked, %d findings\n",
			queries.Count, len(diags))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Diagnostic{} // emit [] rather than null
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}
