// Command dsqgen instantiates the 99 query templates with
// comparability-preserving substitutions — the equivalent of the
// official kit's dsqgen (paper §4.1).
//
// Usage:
//
//	dsqgen -list                 # enumerate templates with class/type
//	dsqgen -query 52 -stream 0   # print one instantiated query
//	dsqgen -all -stream 3        # print the whole stream in its order
package main

import (
	"flag"
	"fmt"
	"os"

	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

func main() {
	list := flag.Bool("list", false, "list the templates")
	queryID := flag.Int("query", 0, "template id to instantiate (1-99)")
	all := flag.Bool("all", false, "print every query of the stream in its permuted order")
	stream := flag.Int("stream", 0, "query stream number")
	seed := flag.Uint64("seed", 1, "benchmark seed")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-4s %-36s %-10s %-14s %s\n", "ID", "NAME", "CLASS", "TYPE", "SEQ")
		for _, t := range queries.All() {
			seq := ""
			if t.Sequence > 0 {
				seq = fmt.Sprintf("%d", t.Sequence)
			}
			fmt.Printf("%-4d %-36s %-10s %-14s %s\n",
				t.ID, t.Name, qgen.ClassOf(t), t.Type, seq)
		}
	case *queryID > 0:
		t, err := queries.ByID(*queryID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsqgen: %v\n", err)
			os.Exit(1)
		}
		text, err := qgen.Instantiate(t, qgen.StreamSeed(*seed, *stream, t.ID))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsqgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- query %d (%s), class %s, stream %d\n%s\n", t.ID, t.Name, qgen.ClassOf(t), *stream, text)
	case *all:
		tpls := queries.All()
		order := qgen.Permutation(*seed, *stream, len(tpls))
		for _, idx := range order {
			t := tpls[idx]
			text, err := qgen.Instantiate(t, qgen.StreamSeed(*seed, *stream, t.ID))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsqgen: query %d: %v\n", t.ID, err)
				os.Exit(1)
			}
			fmt.Printf("-- query %d (%s)\n%s\n;\n", t.ID, t.Name, text)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
