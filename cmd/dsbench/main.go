// Command dsbench runs the complete TPC-DS benchmark test (paper §5,
// Figure 11): load test, Query Run 1, Data Maintenance, Query Run 2, and
// prints the QphDS@SF executive summary plus per-phase diagnostics.
//
// Usage:
//
//	dsbench -sf 0.01 -streams 2 -seed 1
//	dsbench -sf 0.01 -mode star        # force the star transformation
//	dsbench -sf 0.01 -queries 1,20,52  # development subset
//	dsbench -sf 0.01 -trace out.json   # Chrome/Perfetto timeline of the run
//	dsbench -sf 0.01 -metrics -pprof ./prof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tpcds/internal/audit"
	"tpcds/internal/driver"
	"tpcds/internal/metric"
	"tpcds/internal/obs"
	"tpcds/internal/obs/debugd"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

// main defers to run so the pprof stop and other defers execute before
// the process exit code is decided.
func main() { os.Exit(run()) }

// writeDigest emits one sorted line per query — run, stream, template,
// row count, and result checksum — so two runs (e.g. -planner cost vs
// -planner greedy) can be compared with a plain diff.
func writeDigest(path string, queries []driver.QueryTiming) error {
	lines := make([]string, 0, len(queries))
	for _, qt := range queries {
		lines = append(lines, fmt.Sprintf("run=%d stream=%d q%d rows=%d sum=%016x",
			qt.Run, qt.Stream, qt.QueryID, qt.Rows, qt.Checksum))
	}
	sort.Strings(lines)
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// runCompare diffs two bench-json artifacts per template and reports
// regressions beyond the threshold. Exit status 1 means at least one
// template regressed — the CI gate for the performance trajectory.
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "dsbench: -compare needs exactly two artifacts: dsbench -compare before.json after.json")
		return 2
	}
	load := func(path string) (metric.BenchRun, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return metric.BenchRun{}, err
		}
		return metric.ReadBenchJSON(data)
	}
	before, err := load(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsbench: %s: %v\n", args[0], err)
		return 2
	}
	after, err := load(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsbench: %s: %v\n", args[1], err)
		return 2
	}
	deltas := metric.CompareBench(before, after, threshold)
	regressions := 0
	fmt.Printf("bench compare: %s -> %s (threshold %.0f%%)\n", args[0], args[1], threshold*100)
	fmt.Printf("  tmpl   before p50   after p50   ratio\n")
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
			regressions++
		}
		fmt.Printf("  q%-4d %11v %11v   %.2fx%s\n", d.ID, d.BeforeP50, d.AfterP50, d.Ratio, mark)
	}
	if regressions > 0 {
		fmt.Printf("%d of %d templates regressed beyond %.0f%%\n", regressions, len(deltas), threshold*100)
		return 1
	}
	fmt.Printf("no template regressed beyond %.0f%% (%d compared)\n", threshold*100, len(deltas))
	return 0
}

func run() int {
	sf := flag.Float64("sf", 0.01, "scale factor")
	streams := flag.Int("streams", 0, "query streams (0 = Figure 12 minimum)")
	seed := flag.Uint64("seed", 1, "benchmark seed")
	mode := flag.String("mode", "auto", "plan mode: auto|hash|star")
	querySubset := flag.String("queries", "", "comma-separated template ids (development only)")
	hw := flag.Float64("hw", 250000, "hardware cost (USD)")
	sw := flag.Float64("sw", 150000, "software cost (USD)")
	maint := flag.Float64("maint", 100000, "3-year maintenance cost (USD)")
	topN := flag.Int("top", 10, "slowest queries to report")
	dataDir := flag.String("data", "", "load from dsdgen flat files instead of generating")
	parallel := flag.Bool("parallel", false, "generate tables concurrently during the load test")
	parallelism := flag.Int("parallelism", 0, "morsel workers per query (0 = all cores, 1 = serial)")
	runAudit := flag.Bool("audit", false, "audit the database after the benchmark (TPC audit checks)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 30s")
	onError := flag.String("on-error", driver.OnErrorAbort,
		"failed-query policy: abort the run or skip to the stream's next query")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of the run to this file")
	eventsOut := flag.String("events", "", "write the span log as JSONL to this file")
	metrics := flag.Bool("metrics", false, "collect engine/driver metrics and append the dump to the report")
	pprofDir := flag.String("pprof", "", "write cpu.pprof and heap.pprof into this directory")
	maxConcurrent := flag.Int("max-concurrent", 0, "cap queries in flight across all streams (0 = no cap)")
	batch := flag.Int("batch", 0, "vectorized batch rows per kernel call (0 = engine default 1024)")
	rowExec := flag.Bool("rowexec", false, "force row-at-a-time execution (the differential oracle path)")
	planner := flag.String("planner", "cost", "join planner: cost (statistics + plan cache) or greedy (fixed heuristic baseline)")
	digestOut := flag.String("digest", "", "write per-query result checksums to this file (for cross-planner diffing)")
	feedback := flag.Bool("feedback", false, "profile every query and dump the per-template estimate-vs-actual worst offenders")
	benchJSON := flag.String("bench-json", "", "write the schema-versioned machine-readable run artifact to this file")
	compareMode := flag.Bool("compare", false, "diff two bench-json artifacts (dsbench -compare before.json after.json) instead of running")
	threshold := flag.Float64("threshold", 0.25, "with -compare, flag templates whose p50 regressed beyond this fraction")
	debugAddr := flag.String("debug-addr", "", "serve live diagnostics (/metrics /queries /spans /debug/pprof) on this address during the run")
	spanLimit := flag.Int("span-limit", 0, "bound the tracer's completed-span ring to the most recent N spans (0 = unbounded)")
	flag.Parse()

	if *compareMode {
		return runCompare(flag.Args(), *threshold)
	}

	cfg := driver.Config{
		SF: *sf, Streams: *streams, Seed: *seed,
		DataDir: *dataDir, ParallelLoad: *parallel, Parallelism: *parallelism,
		BatchRows: *batch, RowExec: *rowExec, Planner: *planner, Digest: *digestOut != "",
		QueryTimeout: *timeout, OnError: *onError, MaxConcurrent: *maxConcurrent,
		Price: metric.PriceModel{HardwareUSD: *hw, SoftwareUSD: *sw, MaintenanceUSD: *maint},
	}
	if *traceOut != "" || *eventsOut != "" || *debugAddr != "" {
		cfg.Tracer = obs.NewTracer()
		cfg.Tracer.SetSpanLimit(*spanLimit)
	}
	// The bench artifact and the feedback report need the per-template
	// histograms / q-error counters, so those modes imply a registry.
	if *metrics || *benchJSON != "" || *feedback || *debugAddr != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *feedback {
		cfg.Profile = true
	}
	if *debugAddr != "" {
		cfg.InFlight = driver.NewInFlight()
		srv, err := debugd.Start(context.Background(), *debugAddr, debugd.Config{
			Tracer: cfg.Tracer, Metrics: cfg.Metrics, Queries: cfg.InFlight,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "debugd listening on http://%s\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			}
		}()
	}
	if *pprofDir != "" {
		stop, err := obs.StartProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			}
		}()
	}
	switch *mode {
	case "auto":
		cfg.Mode = plan.Auto
	case "hash":
		cfg.Mode = plan.ForceHashJoin
	case "star":
		cfg.Mode = plan.ForceStar
	default:
		fmt.Fprintf(os.Stderr, "dsbench: unknown mode %q\n", *mode)
		return 2
	}
	if *querySubset != "" {
		for _, part := range strings.Split(*querySubset, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsbench: bad query id %q\n", part)
				return 2
			}
			cfg.QueryIDs = append(cfg.QueryIDs, id)
		}
	}

	res, err := driver.Run(cfg)
	// Flush the timeline even when the run fails: a trace of a failed
	// run is exactly what the flag is for.
	if cfg.Tracer != nil {
		if *traceOut != "" {
			if werr := obs.WriteFile(*traceOut, cfg.Tracer, obs.WriteChromeTrace); werr != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", cfg.Tracer.Len(), *traceOut)
		}
		if *eventsOut != "" {
			if werr := obs.WriteFile(*eventsOut, cfg.Tracer, obs.WriteJSONL); werr != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
				return 1
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
		return 1
	}
	fmt.Print(res.Report.String())

	if *digestOut != "" {
		if werr := writeDigest(*digestOut, res.Queries); werr != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d query digests to %s\n", len(res.Queries), *digestOut)
	}

	if *benchJSON != "" {
		art := metric.NewBenchRun(res.Report, *seed, *planner)
		art.Counters = cfg.Metrics.CounterValues()
		if h := cfg.Metrics.Histogram(driver.QErrorHistogram); h.Count() > 0 {
			art.QError = &metric.BenchQErrorSummary{
				Count:    h.Count(),
				P50x1000: h.Quantile(0.50),
				P95x1000: h.Quantile(0.95),
				Maxx1000: h.Max(),
			}
		}
		f, werr := os.Create(*benchJSON)
		if werr == nil {
			werr = metric.WriteBenchJSON(f, art)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote bench artifact (%d templates) to %s\n", len(art.Templates), *benchJSON)
	}

	if *feedback && len(res.Report.Misestimates) > 0 {
		fmt.Printf("\nEstimate-vs-actual feedback (worst operator per template, %d templates):\n",
			len(res.Report.Misestimates))
		fmt.Printf("  tmpl   q-error          est       actual  nodes  operator\n")
		for _, m := range res.Report.Misestimates {
			fmt.Printf("  q%-4d %8.1f %12.0f %12d %6d  %s\n",
				m.ID, m.QError, m.Est, m.Actual, m.Nodes, m.Op)
		}
	}

	if cfg.Metrics != nil {
		fmt.Printf("\nMetrics:\n")
		if err := cfg.Metrics.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			return 1
		}
	}

	if res.Report.QueryErrors > 0 {
		fmt.Printf("\nFailed queries:\n")
		for _, qt := range res.Queries {
			if qt.Err == "" {
				continue
			}
			kind := "error"
			if qt.TimedOut {
				kind = "timeout"
			}
			fmt.Printf("  run %d stream %d query %-3d %-7s after %8v: %s\n",
				qt.Run, qt.Stream, qt.QueryID, kind, qt.Duration, qt.Err)
		}
	}

	fmt.Printf("\nData maintenance operations:\n")
	for _, op := range res.DMStats.Ops {
		fmt.Printf("  %-26s %8d rows  %v\n", op.Name, op.Rows, op.Duration)
	}

	fmt.Printf("\nSlowest queries:\n")
	for _, qt := range res.SlowestQueries(*topN) {
		name, class := "(unknown)", "-"
		if t, err := queries.ByID(qt.QueryID); err == nil {
			name, class = t.Name, qgen.ClassOf(t).String()
		}
		fmt.Printf("  run %d stream %d query %-3d (%-30s class %-9s) %8v  %6d rows\n",
			qt.Run, qt.Stream, qt.QueryID, name, class, qt.Duration, qt.Rows)
	}

	if *runAudit {
		// Row counts shifted during data maintenance, so the SF check is
		// off; the structural invariants must hold.
		rep := audit.Run(res.Engine.DB(), audit.Options{})
		fmt.Printf("\n%s", rep.String())
		if !rep.Passed() {
			return 1
		}
	}
	return 0
}
