// Command dsbench runs the complete TPC-DS benchmark test (paper §5,
// Figure 11): load test, Query Run 1, Data Maintenance, Query Run 2, and
// prints the QphDS@SF executive summary plus per-phase diagnostics.
//
// Usage:
//
//	dsbench -sf 0.01 -streams 2 -seed 1
//	dsbench -sf 0.01 -mode star        # force the star transformation
//	dsbench -sf 0.01 -queries 1,20,52  # development subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tpcds/internal/audit"
	"tpcds/internal/driver"
	"tpcds/internal/metric"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	streams := flag.Int("streams", 0, "query streams (0 = Figure 12 minimum)")
	seed := flag.Uint64("seed", 1, "benchmark seed")
	mode := flag.String("mode", "auto", "plan mode: auto|hash|star")
	querySubset := flag.String("queries", "", "comma-separated template ids (development only)")
	hw := flag.Float64("hw", 250000, "hardware cost (USD)")
	sw := flag.Float64("sw", 150000, "software cost (USD)")
	maint := flag.Float64("maint", 100000, "3-year maintenance cost (USD)")
	topN := flag.Int("top", 10, "slowest queries to report")
	dataDir := flag.String("data", "", "load from dsdgen flat files instead of generating")
	parallel := flag.Bool("parallel", false, "generate tables concurrently during the load test")
	parallelism := flag.Int("parallelism", 0, "morsel workers per query (0 = all cores, 1 = serial)")
	runAudit := flag.Bool("audit", false, "audit the database after the benchmark (TPC audit checks)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 30s")
	onError := flag.String("on-error", driver.OnErrorAbort,
		"failed-query policy: abort the run or skip to the stream's next query")
	flag.Parse()

	cfg := driver.Config{
		SF: *sf, Streams: *streams, Seed: *seed,
		DataDir: *dataDir, ParallelLoad: *parallel, Parallelism: *parallelism,
		QueryTimeout: *timeout, OnError: *onError,
		Price: metric.PriceModel{HardwareUSD: *hw, SoftwareUSD: *sw, MaintenanceUSD: *maint},
	}
	switch *mode {
	case "auto":
		cfg.Mode = plan.Auto
	case "hash":
		cfg.Mode = plan.ForceHashJoin
	case "star":
		cfg.Mode = plan.ForceStar
	default:
		fmt.Fprintf(os.Stderr, "dsbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *querySubset != "" {
		for _, part := range strings.Split(*querySubset, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsbench: bad query id %q\n", part)
				os.Exit(2)
			}
			cfg.QueryIDs = append(cfg.QueryIDs, id)
		}
	}

	res, err := driver.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Report.String())

	if res.Report.QueryErrors > 0 {
		fmt.Printf("\nFailed queries:\n")
		for _, qt := range res.Queries {
			if qt.Err == "" {
				continue
			}
			kind := "error"
			if qt.TimedOut {
				kind = "timeout"
			}
			fmt.Printf("  run %d stream %d query %-3d %-7s after %8v: %s\n",
				qt.Run, qt.Stream, qt.QueryID, kind, qt.Duration, qt.Err)
		}
	}

	fmt.Printf("\nData maintenance operations:\n")
	for _, op := range res.DMStats.Ops {
		fmt.Printf("  %-26s %8d rows  %v\n", op.Name, op.Rows, op.Duration)
	}

	fmt.Printf("\nSlowest queries:\n")
	for _, qt := range res.SlowestQueries(*topN) {
		name, class := "(unknown)", "-"
		if t, err := queries.ByID(qt.QueryID); err == nil {
			name, class = t.Name, qgen.ClassOf(t).String()
		}
		fmt.Printf("  run %d stream %d query %-3d (%-30s class %-9s) %8v  %6d rows\n",
			qt.Run, qt.Stream, qt.QueryID, name, class, qt.Duration, qt.Rows)
	}

	if *runAudit {
		// Row counts shifted during data maintenance, so the SF check is
		// off; the structural invariants must hold.
		rep := audit.Run(res.Engine.DB(), audit.Options{})
		fmt.Printf("\n%s", rep.String())
		if !rep.Passed() {
			os.Exit(1)
		}
	}
}
