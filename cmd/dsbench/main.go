// Command dsbench runs the complete TPC-DS benchmark test (paper §5,
// Figure 11): load test, Query Run 1, Data Maintenance, Query Run 2, and
// prints the QphDS@SF executive summary plus per-phase diagnostics.
//
// Usage:
//
//	dsbench -sf 0.01 -streams 2 -seed 1
//	dsbench -sf 0.01 -mode star        # force the star transformation
//	dsbench -sf 0.01 -queries 1,20,52  # development subset
//	dsbench -sf 0.01 -trace out.json   # Chrome/Perfetto timeline of the run
//	dsbench -sf 0.01 -metrics -pprof ./prof
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"tpcds/internal/audit"
	"tpcds/internal/driver"
	"tpcds/internal/metric"
	"tpcds/internal/obs"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

// main defers to run so the pprof stop and other defers execute before
// the process exit code is decided.
func main() { os.Exit(run()) }

// writeDigest emits one sorted line per query — run, stream, template,
// row count, and result checksum — so two runs (e.g. -planner cost vs
// -planner greedy) can be compared with a plain diff.
func writeDigest(path string, queries []driver.QueryTiming) error {
	lines := make([]string, 0, len(queries))
	for _, qt := range queries {
		lines = append(lines, fmt.Sprintf("run=%d stream=%d q%d rows=%d sum=%016x",
			qt.Run, qt.Stream, qt.QueryID, qt.Rows, qt.Checksum))
	}
	sort.Strings(lines)
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

func run() int {
	sf := flag.Float64("sf", 0.01, "scale factor")
	streams := flag.Int("streams", 0, "query streams (0 = Figure 12 minimum)")
	seed := flag.Uint64("seed", 1, "benchmark seed")
	mode := flag.String("mode", "auto", "plan mode: auto|hash|star")
	querySubset := flag.String("queries", "", "comma-separated template ids (development only)")
	hw := flag.Float64("hw", 250000, "hardware cost (USD)")
	sw := flag.Float64("sw", 150000, "software cost (USD)")
	maint := flag.Float64("maint", 100000, "3-year maintenance cost (USD)")
	topN := flag.Int("top", 10, "slowest queries to report")
	dataDir := flag.String("data", "", "load from dsdgen flat files instead of generating")
	parallel := flag.Bool("parallel", false, "generate tables concurrently during the load test")
	parallelism := flag.Int("parallelism", 0, "morsel workers per query (0 = all cores, 1 = serial)")
	runAudit := flag.Bool("audit", false, "audit the database after the benchmark (TPC audit checks)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 30s")
	onError := flag.String("on-error", driver.OnErrorAbort,
		"failed-query policy: abort the run or skip to the stream's next query")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of the run to this file")
	eventsOut := flag.String("events", "", "write the span log as JSONL to this file")
	metrics := flag.Bool("metrics", false, "collect engine/driver metrics and append the dump to the report")
	pprofDir := flag.String("pprof", "", "write cpu.pprof and heap.pprof into this directory")
	maxConcurrent := flag.Int("max-concurrent", 0, "cap queries in flight across all streams (0 = no cap)")
	batch := flag.Int("batch", 0, "vectorized batch rows per kernel call (0 = engine default 1024)")
	rowExec := flag.Bool("rowexec", false, "force row-at-a-time execution (the differential oracle path)")
	planner := flag.String("planner", "cost", "join planner: cost (statistics + plan cache) or greedy (fixed heuristic baseline)")
	digestOut := flag.String("digest", "", "write per-query result checksums to this file (for cross-planner diffing)")
	flag.Parse()

	cfg := driver.Config{
		SF: *sf, Streams: *streams, Seed: *seed,
		DataDir: *dataDir, ParallelLoad: *parallel, Parallelism: *parallelism,
		BatchRows: *batch, RowExec: *rowExec, Planner: *planner, Digest: *digestOut != "",
		QueryTimeout: *timeout, OnError: *onError, MaxConcurrent: *maxConcurrent,
		Price: metric.PriceModel{HardwareUSD: *hw, SoftwareUSD: *sw, MaintenanceUSD: *maint},
	}
	if *traceOut != "" || *eventsOut != "" {
		cfg.Tracer = obs.NewTracer()
	}
	if *metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	if *pprofDir != "" {
		stop, err := obs.StartProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			}
		}()
	}
	switch *mode {
	case "auto":
		cfg.Mode = plan.Auto
	case "hash":
		cfg.Mode = plan.ForceHashJoin
	case "star":
		cfg.Mode = plan.ForceStar
	default:
		fmt.Fprintf(os.Stderr, "dsbench: unknown mode %q\n", *mode)
		return 2
	}
	if *querySubset != "" {
		for _, part := range strings.Split(*querySubset, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsbench: bad query id %q\n", part)
				return 2
			}
			cfg.QueryIDs = append(cfg.QueryIDs, id)
		}
	}

	res, err := driver.Run(cfg)
	// Flush the timeline even when the run fails: a trace of a failed
	// run is exactly what the flag is for.
	if cfg.Tracer != nil {
		if *traceOut != "" {
			if werr := obs.WriteFile(*traceOut, cfg.Tracer, obs.WriteChromeTrace); werr != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", cfg.Tracer.Len(), *traceOut)
		}
		if *eventsOut != "" {
			if werr := obs.WriteFile(*eventsOut, cfg.Tracer, obs.WriteJSONL); werr != nil {
				fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
				return 1
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
		return 1
	}
	fmt.Print(res.Report.String())

	if *digestOut != "" {
		if werr := writeDigest(*digestOut, res.Queries); werr != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d query digests to %s\n", len(res.Queries), *digestOut)
	}

	if cfg.Metrics != nil {
		fmt.Printf("\nMetrics:\n")
		if err := cfg.Metrics.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			return 1
		}
	}

	if res.Report.QueryErrors > 0 {
		fmt.Printf("\nFailed queries:\n")
		for _, qt := range res.Queries {
			if qt.Err == "" {
				continue
			}
			kind := "error"
			if qt.TimedOut {
				kind = "timeout"
			}
			fmt.Printf("  run %d stream %d query %-3d %-7s after %8v: %s\n",
				qt.Run, qt.Stream, qt.QueryID, kind, qt.Duration, qt.Err)
		}
	}

	fmt.Printf("\nData maintenance operations:\n")
	for _, op := range res.DMStats.Ops {
		fmt.Printf("  %-26s %8d rows  %v\n", op.Name, op.Rows, op.Duration)
	}

	fmt.Printf("\nSlowest queries:\n")
	for _, qt := range res.SlowestQueries(*topN) {
		name, class := "(unknown)", "-"
		if t, err := queries.ByID(qt.QueryID); err == nil {
			name, class = t.Name, qgen.ClassOf(t).String()
		}
		fmt.Printf("  run %d stream %d query %-3d (%-30s class %-9s) %8v  %6d rows\n",
			qt.Run, qt.Stream, qt.QueryID, name, class, qt.Duration, qt.Rows)
	}

	if *runAudit {
		// Row counts shifted during data maintenance, so the SF check is
		// off; the structural invariants must hold.
		rep := audit.Run(res.Engine.DB(), audit.Options{})
		fmt.Printf("\n%s", rep.String())
		if !rep.Passed() {
			return 1
		}
	}
	return 0
}
