// Command dsql runs ad-hoc SQL against a freshly generated TPC-DS
// database — an interactive window into the system under test.
//
// Usage:
//
//	dsql -sf 0.001 -e "SELECT i_category, COUNT(*) c FROM item GROUP BY i_category ORDER BY c DESC"
//	echo "SELECT ..." | dsql -sf 0.001
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/plan"
)

func main() {
	sf := flag.Float64("sf", 0.001, "scale factor")
	seed := flag.Uint64("seed", 1, "generation seed")
	query := flag.String("e", "", "query text (default: read stdin)")
	mode := flag.String("mode", "auto", "plan mode: auto|hash|star")
	explain := flag.Bool("explain", false, "print the optimizer decision after execution")
	parallelism := flag.Int("parallelism", 0, "morsel workers (0 = all cores, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "query deadline (0 = none), e.g. 30s")
	flag.Parse()

	text := *query
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			os.Exit(1)
		}
		text = string(data)
	}

	loadStart := time.Now()
	eng := exec.New(datagen.New(*sf, *seed).GenerateAll())
	switch *mode {
	case "hash":
		eng.SetMode(plan.ForceHashJoin)
	case "star":
		eng.SetMode(plan.ForceStar)
	}
	eng.SetParallelism(*parallelism)
	fmt.Fprintf(os.Stderr, "loaded SF %v in %v\n", *sf, time.Since(loadStart).Round(time.Millisecond))

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, tr, err := eng.QueryTracedContext(ctx, text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.String())
	fmt.Fprintf(os.Stderr, "%d rows in %v\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
	if *explain {
		fmt.Fprint(os.Stderr, tr.String())
	}
}
