// Command dsql runs ad-hoc SQL against a freshly generated TPC-DS
// database — an interactive window into the system under test.
//
// Usage:
//
//	dsql -sf 0.001 -e "SELECT i_category, COUNT(*) c FROM item GROUP BY i_category ORDER BY c DESC"
//	echo "SELECT ..." | dsql -sf 0.001
//	dsql -sf 0.001 -e "EXPLAIN ANALYZE SELECT ..."   # per-operator runtime profile
//	dsql -sf 0.001 -e "..." -trace out.json -metrics -debug-addr :6060
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/obs"
	"tpcds/internal/obs/debugd"
	"tpcds/internal/plan"
)

// main defers to run so the pprof stop and trace flush execute before
// the process exit code is decided.
func main() { os.Exit(run()) }

func run() int {
	sf := flag.Float64("sf", 0.001, "scale factor")
	seed := flag.Uint64("seed", 1, "generation seed")
	query := flag.String("e", "", "query text (default: read stdin)")
	mode := flag.String("mode", "auto", "plan mode: auto|hash|star")
	explain := flag.Bool("explain", false, "print the optimizer decision after execution")
	parallelism := flag.Int("parallelism", 0, "morsel workers (0 = all cores, 1 = serial)")
	batch := flag.Int("batch", 0, "vectorized batch rows per kernel call (0 = engine default 1024)")
	rowExec := flag.Bool("rowexec", false, "force row-at-a-time execution (the differential oracle path)")
	planner := flag.String("planner", "cost", "join planner: cost (statistics + plan cache) or greedy (fixed heuristic baseline)")
	timeout := flag.Duration("timeout", 0, "query deadline (0 = none), e.g. 30s")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of the query to this file")
	metrics := flag.Bool("metrics", false, "print the engine metrics dump after the query")
	pprofDir := flag.String("pprof", "", "write cpu.pprof and heap.pprof into this directory")
	debugAddr := flag.String("debug-addr", "", "serve live diagnostics (/metrics /queries /spans /debug/pprof) on this address while running")
	flag.Parse()

	text := *query
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			return 1
		}
		text = string(data)
	}
	// EXPLAIN ANALYZE <select>: execute the query with per-operator
	// runtime accounting and print the plan trace plus the profile tree
	// instead of the result rows.
	const analyzePrefix = "explain analyze"
	analyze := false
	if trimmed := strings.TrimSpace(text); len(trimmed) >= len(analyzePrefix) &&
		strings.EqualFold(trimmed[:len(analyzePrefix)], analyzePrefix) {
		analyze = true
		text = trimmed[len(analyzePrefix):]
	}

	if *pprofDir != "" {
		stop, err := obs.StartProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			}
		}()
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer()
		root = tracer.Root("dsql", "driver")
	}
	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if *debugAddr != "" {
		srv, err := debugd.Start(context.Background(), *debugAddr, debugd.Config{Tracer: tracer, Metrics: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "debugd listening on http://%s\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			}
		}()
	}

	loadStart := time.Now()
	loadSp := root.Child("load")
	gen := datagen.New(*sf, *seed)
	gen.SetObservability(loadSp, reg)
	eng := exec.New(gen.GenerateAll())
	loadSp.End()
	switch *mode {
	case "hash":
		eng.SetMode(plan.ForceHashJoin)
	case "star":
		eng.SetMode(plan.ForceStar)
	}
	pk, err := plan.ParsePlanner(*planner)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
		return 2
	}
	eng.SetPlanner(pk)
	eng.SetParallelism(*parallelism)
	eng.SetBatchSize(*batch)
	eng.SetVectorized(!*rowExec)
	eng.SetMetrics(reg)
	eng.SetProfiling(analyze)
	fmt.Fprintf(os.Stderr, "loaded SF %v in %v\n", *sf, time.Since(loadStart).Round(time.Millisecond))

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	qsp := root.Child("query")
	ctx = obs.ContextWithSpan(ctx, qsp)
	start := time.Now()
	res, tr, err := eng.QueryTracedContext(ctx, text)
	qsp.End()
	root.End()
	if tracer != nil {
		if werr := obs.WriteFile(*traceOut, tracer, obs.WriteChromeTrace); werr != nil {
			fmt.Fprintf(os.Stderr, "dsql: %v\n", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", tracer.Len(), *traceOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
		return 1
	}
	if analyze {
		// EXPLAIN ANALYZE output is the plan trace with the profile tree;
		// the result itself is summarized, not printed.
		fmt.Print(tr.String())
	} else {
		fmt.Print(res.String())
	}
	fmt.Fprintf(os.Stderr, "%d rows in %v\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
	if *explain && !analyze {
		fmt.Fprint(os.Stderr, tr.String())
	}
	if reg != nil {
		if err := reg.WriteText(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "dsql: %v\n", err)
			return 1
		}
	}
	return 0
}
