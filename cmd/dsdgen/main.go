// Command dsdgen generates the TPC-DS data set as pipe-separated flat
// files, one per table — the equivalent of the official kit's dsdgen
// (paper §3). The emitted files are the load-test input and the staging
// format of the ETL workload.
//
// Usage:
//
//	dsdgen -sf 0.01 -seed 1 -dir ./data [-tables store_sales,item]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/obs"
	"tpcds/internal/scaling"
)

func main() {
	sf := flag.Float64("sf", 1, "scale factor (raw data GB; official values: 100,300,...,100000)")
	seed := flag.Uint64("seed", 1, "generation seed")
	dir := flag.String("dir", ".", "output directory")
	tables := flag.String("tables", "", "comma-separated table subset (default: all 24)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of generation to this file")
	metrics := flag.Bool("metrics", false, "print per-table generation metrics after the run")
	flag.Parse()

	if *sf <= 0 {
		fmt.Fprintln(os.Stderr, "dsdgen: -sf must be positive")
		os.Exit(2)
	}
	if !scaling.IsOfficial(*sf) {
		fmt.Fprintf(os.Stderr, "dsdgen: note: SF %v is a development scale factor (official: %v)\n",
			*sf, scaling.OfficialScaleFactors)
	}
	want := map[string]bool{}
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			want[strings.TrimSpace(t)] = true
		}
	}

	start := time.Now()
	g := datagen.New(*sf, *seed)
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer()
		root = tracer.Root("dsdgen", "datagen")
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	g.SetObservability(root, reg)
	db := g.GenerateAll()
	root.End()
	if tracer != nil {
		if err := obs.WriteFile(*traceOut, tracer, obs.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "dsdgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", tracer.Len(), *traceOut)
	}
	if reg != nil {
		if err := reg.WriteText(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "dsdgen: %v\n", err)
			os.Exit(1)
		}
	}
	var totalRows int64
	for _, name := range db.Names() {
		if len(want) > 0 && !want[name] {
			continue
		}
		t := db.Table(name)
		path := filepath.Join(*dir, name+".dat")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsdgen: %v\n", err)
			os.Exit(1)
		}
		if err := t.WriteFlat(f); err != nil {
			fmt.Fprintf(os.Stderr, "dsdgen: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dsdgen: closing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %12d rows -> %s\n", name, t.NumRows(), path)
		totalRows += int64(t.NumRows())
	}
	fmt.Printf("generated %d rows at SF %v in %v\n", totalRows, *sf, time.Since(start).Round(time.Millisecond))
}
