// Package tpcds is a from-scratch Go implementation of the TPC-DS
// decision support benchmark as described in "The Making of TPC-DS"
// (Othayoth & Poess, VLDB 2006): the 24-table snowstorm schema, the
// hybrid synthetic/real data generator with comparability zones, the
// 99-query template workload, the ETL data maintenance workload, the
// execution rules, and the QphDS@SF metric — together with the columnar
// SQL engine substrate the workload runs on and a TPC-H-style baseline
// for the paper's comparisons.
//
// The package tree:
//
//	internal/schema      the snowstorm schema catalog (Table 1, Figure 1)
//	internal/scaling     linear/sub-linear cardinality model (Table 2)
//	internal/rng         seekable deterministic random streams
//	internal/dist        data domains and comparability zones (Figures 2, 3, 5)
//	internal/datagen     the data generator (dsdgen)
//	internal/storage     columnar tables, values, flat files
//	internal/index       bitmap, hash and sorted indexes
//	internal/sql         SQL-99 subset lexer/parser/AST
//	internal/plan        optimizer: star transformation vs hash joins (§2.1)
//	internal/exec        execution engine (joins, aggregation, windows)
//	internal/qgen        query template substitution model (§4.1, Figure 4)
//	internal/queries     the 99 query templates (Figures 6, 7)
//	internal/maintenance the ETL workload (§4.2, Figures 8-10)
//	internal/driver      execution rules (§5.2, Figure 11)
//	internal/metric      QphDS@SF and price-performance (§5.3, Figure 12)
//	internal/tpchlite    the previous-generation baseline (§1)
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper; see EXPERIMENTS.md for the index and measured results.
package tpcds
