module tpcds

go 1.22
