// Package qgen implements the TPC-DS query generator (the paper's
// dsqgen, §4.1): template-based queries with pseudo-random substitutions
// that preserve comparability. A template is a SQL text with typed
// placeholder tokens; the generator draws each distinct token once per
// instantiation and substitutes a value drawn from the token's domain.
//
// Comparability (§3.2) is guaranteed by construction: date tokens are
// bound to one comparability zone per template, so every substitution
// selects a month (or date range) whose qualifying-row likelihood is
// identical; categorical tokens draw from uniform domains. The paper's
// four rules — stable qualifying-row counts, stable join-key
// distributions, stable group-by and order-by distributions — follow.
//
// Token syntax: `[NAME]` where NAME is one of the registered kinds, with
// an optional `.k` suffix distinguishing independent draws of the same
// kind (e.g. `[YEAR.1]`, `[YEAR.2]`). Every occurrence of the same full
// token receives the same value within one instantiation.
package qgen

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"tpcds/internal/dist"
	"tpcds/internal/rng"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Class is the workload class of a query (§4.1). Ad-hoc vs reporting is
// derived from the channels the query references (§2.2: catalog channel
// = reporting part; store and web = ad-hoc part; both = hybrid).
type Class int

const (
	// AdHoc queries touch only the ad-hoc part (store/web channels).
	AdHoc Class = iota
	// Reporting queries touch only the reporting part (catalog channel).
	Reporting
	// Hybrid queries reference both parts.
	Hybrid
)

func (c Class) String() string {
	switch c {
	case AdHoc:
		return "ad-hoc"
	case Reporting:
		return "reporting"
	default:
		return "hybrid"
	}
}

// Type is the paper's functional query taxonomy: ad-hoc/reporting is a
// schema-partition property (Class); on top of that, queries are plain,
// iterative OLAP (drill sequences) or data mining (large extracts).
type Type int

const (
	// Standard is a regular analytic query.
	Standard Type = iota
	// IterativeOLAP marks one step of a drill-down/up sequence of
	// syntactically independent but logically affiliated queries.
	IterativeOLAP
	// DataMining marks extraction queries returning large outputs.
	DataMining
)

func (t Type) String() string {
	switch t {
	case IterativeOLAP:
		return "iterative-olap"
	case DataMining:
		return "data-mining"
	default:
		return "standard"
	}
}

// Template is one of the 99 query templates.
type Template struct {
	ID   int
	Name string
	Type Type
	// Sequence groups iterative OLAP steps: templates sharing a positive
	// Sequence number form one logical drill session.
	Sequence int
	SQL      string
}

var tokenRe = regexp.MustCompile(`\[([A-Z][A-Z0-9_]*)(\.[0-9]+)?\]`)

// Token is one substitution placeholder occurrence in a template's SQL.
type Token struct {
	Full  string // full token text, e.g. "[YEAR.2]"
	Kind  string // registered kind, e.g. "YEAR"
	Start int    // byte offset of '[' in the template SQL
	End   int    // byte offset just past ']'
}

// Tokens returns every placeholder occurrence in the SQL text in order.
// The static template checker uses this to validate that each kind is
// registered and to substitute representative values position by
// position.
func Tokens(sqlText string) []Token {
	var out []Token
	for _, m := range tokenRe.FindAllStringSubmatchIndex(sqlText, -1) {
		out = append(out, Token{
			Full:  sqlText[m[0]:m[1]],
			Kind:  sqlText[m[2]:m[3]],
			Start: m[0],
			End:   m[1],
		})
	}
	return out
}

// Representative returns a fixed, deterministic substitution value for
// the token kind, drawn from the same generator as Instantiate so the
// two can never drift apart. It errors on unregistered kinds, which is
// how the template checker discovers undefined parameters.
func Representative(kind string) (string, error) {
	return drawToken(kind, rng.NewStream(rng.ColumnSeed(0, "lint", "representative")))
}

// Instantiate substitutes all tokens of the template using the given
// stream. The same full token (kind + suffix) always receives one value
// per call; distinct suffixes draw independently.
func Instantiate(t Template, s *rng.Stream) (string, error) {
	matches := tokenRe.FindAllString(t.SQL, -1)
	// Deterministic order: first occurrence order, deduplicated.
	var order []string
	seen := map[string]bool{}
	for _, m := range matches {
		if !seen[m] {
			seen[m] = true
			order = append(order, m)
		}
	}
	values := map[string]string{}
	for _, tok := range order {
		kind := tokenRe.FindStringSubmatch(tok)[1]
		v, err := drawToken(kind, s)
		if err != nil {
			return "", fmt.Errorf("template %d (%s): %w", t.ID, tok, err)
		}
		values[tok] = v
	}
	out := t.SQL
	for _, tok := range order {
		out = strings.ReplaceAll(out, tok, values[tok])
	}
	return out, nil
}

// Sales window constants mirror the data generator.
const (
	firstYear = 1998
	lastYear  = 2002
)

// drawToken produces the substitution value for one token kind.
func drawToken(kind string, s *rng.Stream) (string, error) {
	quoted := func(v string) string { return "'" + strings.ReplaceAll(v, "'", "''") + "'" }
	pickN := func(vocab []string, n int) string {
		if n > len(vocab) {
			n = len(vocab)
		}
		perm := make([]int, len(vocab))
		s.Perm(perm)
		items := make([]string, n)
		for i := 0; i < n; i++ {
			items[i] = quoted(vocab[perm[i]])
		}
		sort.Strings(items)
		return strings.Join(items, ", ")
	}
	year := func() int { return firstYear + s.Intn(lastYear-firstYear+1) }
	monthInZone := func(z dist.Zone) int { return dist.PickMonthInZone(s, z) }
	dateInZone := func(z dist.Zone) (int, int, int) {
		y := year()
		m := monthInZone(z)
		d := 1 + s.Intn(dist.DaysInMonth(m))
		return y, m, d
	}
	switch kind {
	case "YEAR":
		return fmt.Sprintf("%d", year()), nil
	case "MONTH_Z1":
		return fmt.Sprintf("%d", monthInZone(dist.ZoneLow)), nil
	case "MONTH_Z2":
		return fmt.Sprintf("%d", monthInZone(dist.ZoneMedium)), nil
	case "MONTH_Z3":
		return fmt.Sprintf("%d", monthInZone(dist.ZoneHigh)), nil
	case "DATE_Z1", "DATE_Z2", "DATE_Z3":
		z := dist.ZoneLow
		if kind == "DATE_Z2" {
			z = dist.ZoneMedium
		} else if kind == "DATE_Z3" {
			z = dist.ZoneHigh
		}
		y, m, d := dateInZone(z)
		return fmt.Sprintf("'%04d-%02d-%02d'", y, m, d), nil
	case "MONTHSEQ":
		// d_month_seq of a zoned month: the calendar dimension numbers
		// months densely from January 1900 = 1.
		y := year()
		m := monthInZone(dist.ZoneLow)
		return fmt.Sprintf("%d", (y-1900)*12+m), nil
	case "DATESK_Z3":
		y, m, d := dateInZone(dist.ZoneHigh)
		return fmt.Sprintf("%d", storage.DateSK(storage.DaysFromYMD(y, m, d))), nil
	case "DAYS":
		return fmt.Sprintf("%d", 14+s.Intn(46)), nil // 14..59 day windows
	case "CATEGORY":
		return quoted(dist.Categories[s.Intn(len(dist.Categories))]), nil
	case "CATEGORY3":
		return pickN(dist.Categories, 3), nil
	case "CLASS":
		cat := dist.Categories[s.Intn(len(dist.Categories))]
		classes := dist.ClassesByCategory[cat]
		return quoted(classes[s.Intn(len(classes))]), nil
	case "STATE":
		return quoted(dist.States[s.Intn(len(dist.States))]), nil
	case "STATE5":
		return pickN(dist.States, 5), nil
	case "COUNTY":
		return quoted(dist.Counties[s.Intn(len(dist.Counties))]), nil
	case "CITY":
		return quoted(dist.Cities[s.Intn(len(dist.Cities))]), nil
	case "COLOR2":
		return pickN(dist.Colors, 2), nil
	case "GENDER":
		return quoted(dist.Genders[s.Intn(len(dist.Genders))]), nil
	case "MARITAL":
		return quoted(dist.MaritalStatuses[s.Intn(len(dist.MaritalStatuses))]), nil
	case "EDUCATION":
		return quoted(dist.EducationStatuses[s.Intn(len(dist.EducationStatuses))]), nil
	case "BUYPOT":
		return quoted(dist.BuyPotentials[s.Intn(len(dist.BuyPotentials))]), nil
	case "MANAGER":
		return fmt.Sprintf("%d", 1+s.Intn(100)), nil
	case "MANAGER_LO":
		return fmt.Sprintf("%d", 1+s.Intn(80)), nil
	case "IB":
		return fmt.Sprintf("%d", 1+s.Intn(20)), nil
	case "PRICE":
		return fmt.Sprintf("%d", 10+s.Intn(81)), nil
	case "QTY":
		return fmt.Sprintf("%d", 20+s.Intn(61)), nil
	case "HOUR":
		return fmt.Sprintf("%d", 8+s.Intn(12)), nil
	case "DEPCNT":
		return fmt.Sprintf("%d", s.Intn(7)), nil
	case "VEHCNT":
		return fmt.Sprintf("%d", s.Intn(6)), nil
	case "AGG":
		// Aggregate exchange (§4.1: "more complex text substitutions ...
		// such as exchanging aggregations").
		aggs := []string{"SUM", "AVG", "MIN", "MAX"}
		return aggs[s.Intn(len(aggs))], nil
	case "SALUTATION":
		return quoted(dist.Salutations[s.Intn(len(dist.Salutations))]), nil
	default:
		return "", fmt.Errorf("unknown token kind %q", kind)
	}
}

// channelOf maps schema channels for class derivation.
var tableChannel = func() map[string]schema.Channel {
	m := map[string]schema.Channel{}
	for _, t := range schema.Tables() {
		m[t.Name] = t.Channel
	}
	return m
}()

var tableNameRe = regexp.MustCompile(`[a-z_][a-z_0-9]*`)

// ClassOf derives the workload class of a template from the channel
// tables its SQL references (§2.2). Shared dimensions and the inventory
// fact do not affect the classification; a query touching only shared
// tables defaults to ad-hoc (no auxiliary structures may help it).
func ClassOf(t Template) Class {
	adhoc, reporting := false, false
	for _, word := range tableNameRe.FindAllString(strings.ToLower(t.SQL), -1) {
		ch, ok := tableChannel[word]
		if !ok {
			continue
		}
		switch ch {
		case schema.Store, schema.Web:
			adhoc = true
		case schema.Catalog:
			reporting = true
		}
	}
	switch {
	case adhoc && reporting:
		return Hybrid
	case reporting:
		return Reporting
	default:
		return AdHoc
	}
}

// StreamSeed derives the substitution stream for (benchmark seed, stream
// number, query id): every stream substitutes every template differently
// but deterministically.
func StreamSeed(benchSeed uint64, stream, queryID int) *rng.Stream {
	return rng.NewStream(rng.ColumnSeed(benchSeed, fmt.Sprintf("stream-%d", stream), fmt.Sprintf("query-%d", queryID)))
}

// Permutation returns the query execution order for a stream (§5.2:
// each stream runs all queries in a stream-specific order).
func Permutation(benchSeed uint64, stream, n int) []int {
	s := rng.NewStream(rng.ColumnSeed(benchSeed, fmt.Sprintf("stream-%d", stream), "permutation"))
	out := make([]int, n)
	s.Perm(out)
	return out
}

// SessionPermutation returns a stream's execution order over the given
// templates with iterative OLAP sessions kept coherent: templates
// sharing a Sequence number appear in ascending ID order (a drill-down
// must visit category before class before brand — the queries are
// "syntactically independent, but logically affiliated", §4.1). The
// positions the sequence's members occupy are still randomized.
func SessionPermutation(benchSeed uint64, stream int, tpls []Template) []int {
	order := Permutation(benchSeed, stream, len(tpls))
	// Collect, per sequence, the positions its members landed on, then
	// rewrite those positions so the members appear in ID order.
	posOf := map[int][]int{} // sequence -> positions in order
	for pos, idx := range order {
		if tpls[idx].Type == IterativeOLAP && tpls[idx].Sequence > 0 {
			posOf[tpls[idx].Sequence] = append(posOf[tpls[idx].Sequence], pos)
		}
	}
	//lint:ignore determinism each sequence's rewrite touches only its own positions, so visit order cannot change the result
	for _, positions := range posOf {
		// Members at these positions, sorted by template ID.
		members := make([]int, len(positions))
		for i, pos := range positions {
			members[i] = order[pos]
		}
		sort.Slice(members, func(a, b int) bool { return tpls[members[a]].ID < tpls[members[b]].ID })
		sort.Ints(positions)
		for i, pos := range positions {
			order[pos] = members[i]
		}
	}
	return order
}
