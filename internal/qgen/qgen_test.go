package qgen

import (
	"strconv"
	"strings"
	"testing"

	"tpcds/internal/dist"
	"tpcds/internal/rng"
)

func TestSameTokenSameValue(t *testing.T) {
	tpl := Template{ID: 1, SQL: "SELECT [YEAR] a, [YEAR] b, [YEAR.2] c FROM t"}
	out, err := Instantiate(tpl, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(out)
	// fields: SELECT <y> a, <y> b, <y2> c FROM t
	y1 := strings.TrimSuffix(fields[1], ",")
	y2 := strings.TrimSuffix(fields[3], ",")
	if y1 != y2 {
		t.Errorf("repeated token drew different values: %s vs %s", y1, y2)
	}
}

func TestSuffixedTokensIndependent(t *testing.T) {
	tpl := Template{ID: 1, SQL: "[MANAGER.1] [MANAGER.2] [MANAGER.3] [MANAGER.4] [MANAGER.5] [MANAGER.6]"}
	out, err := Instantiate(tpl, rng.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	vals := strings.Fields(out)
	allSame := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("six independent draws all identical — suffixes not independent")
	}
}

func TestUnknownTokenErrors(t *testing.T) {
	tpl := Template{ID: 9, SQL: "SELECT [BOGUS] FROM t"}
	if _, err := Instantiate(tpl, rng.NewStream(1)); err == nil {
		t.Fatal("unknown token should error")
	}
}

func TestTokenDomains(t *testing.T) {
	s := rng.NewStream(5)
	for i := 0; i < 200; i++ {
		year, err := drawToken("YEAR", s)
		if err != nil {
			t.Fatal(err)
		}
		y, _ := strconv.Atoi(year)
		if y < firstYear || y > lastYear {
			t.Fatalf("YEAR draw %d outside sales window", y)
		}
		for kind, zone := range map[string]dist.Zone{
			"MONTH_Z1": dist.ZoneLow, "MONTH_Z2": dist.ZoneMedium, "MONTH_Z3": dist.ZoneHigh,
		} {
			v, err := drawToken(kind, s)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := strconv.Atoi(v)
			if dist.ZoneOfMonth(m) != zone {
				t.Fatalf("%s drew month %d outside its zone", kind, m)
			}
		}
		mgr, _ := drawToken("MANAGER", s)
		if m, _ := strconv.Atoi(mgr); m < 1 || m > 100 {
			t.Fatalf("MANAGER draw %d out of range", m)
		}
		cat, _ := drawToken("CATEGORY", s)
		found := false
		for _, c := range dist.Categories {
			if cat == "'"+c+"'" {
				found = true
			}
		}
		if !found {
			t.Fatalf("CATEGORY draw %s not a known category", cat)
		}
	}
}

func TestCategory3DrawsThreeDistinct(t *testing.T) {
	s := rng.NewStream(6)
	v, err := drawToken("CATEGORY3", s)
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(v, ", ")
	if len(parts) != 3 {
		t.Fatalf("CATEGORY3 = %q, want three values", v)
	}
	seen := map[string]bool{}
	for _, p := range parts {
		if seen[p] {
			t.Fatalf("CATEGORY3 drew duplicate %s", p)
		}
		seen[p] = true
	}
}

func TestDateZoneTokens(t *testing.T) {
	s := rng.NewStream(7)
	for i := 0; i < 100; i++ {
		v, err := drawToken("DATE_Z2", s)
		if err != nil {
			t.Fatal(err)
		}
		// Format: 'yyyy-mm-dd'
		if len(v) != 12 || v[0] != '\'' {
			t.Fatalf("DATE_Z2 = %q", v)
		}
		m, _ := strconv.Atoi(v[6:8])
		if dist.ZoneOfMonth(m) != dist.ZoneMedium {
			t.Fatalf("DATE_Z2 month %d outside zone 2", m)
		}
	}
}

func TestAggToken(t *testing.T) {
	s := rng.NewStream(8)
	allowed := map[string]bool{"SUM": true, "AVG": true, "MIN": true, "MAX": true}
	for i := 0; i < 50; i++ {
		v, err := drawToken("AGG", s)
		if err != nil {
			t.Fatal(err)
		}
		if !allowed[v] {
			t.Fatalf("AGG drew %q", v)
		}
	}
}

func TestClassOfSyntheticTemplates(t *testing.T) {
	cases := []struct {
		sql  string
		want Class
	}{
		{"SELECT 1 FROM store_sales, item", AdHoc},
		{"SELECT 1 FROM web_sales", AdHoc},
		{"SELECT 1 FROM catalog_sales, date_dim", Reporting},
		{"SELECT 1 FROM store_sales, catalog_returns", Hybrid},
		{"SELECT 1 FROM inventory, warehouse", AdHoc}, // shared-only defaults ad-hoc
	}
	for _, c := range cases {
		got := ClassOf(Template{SQL: c.sql})
		if got != c.want {
			t.Errorf("ClassOf(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestClassAndTypeStrings(t *testing.T) {
	if AdHoc.String() != "ad-hoc" || Reporting.String() != "reporting" || Hybrid.String() != "hybrid" {
		t.Error("Class strings broken")
	}
	if Standard.String() != "standard" || IterativeOLAP.String() != "iterative-olap" ||
		DataMining.String() != "data-mining" {
		t.Error("Type strings broken")
	}
}

func TestStreamSeparation(t *testing.T) {
	a := StreamSeed(1, 0, 52)
	b := StreamSeed(1, 1, 52)
	c := StreamSeed(1, 0, 53)
	if a.Uint64() == b.Uint64() || a.Uint64() == c.Uint64() {
		t.Error("stream seeds not separated")
	}
}

func TestMonthSeqToken(t *testing.T) {
	s := rng.NewStream(9)
	v, err := drawToken("MONTHSEQ", s)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := strconv.Atoi(v)
	// Jan 1998 = (1998-1900)*12+1 = 1177; Dec 2002 = 1236.
	if seq < 1177 || seq > 1236 {
		t.Errorf("MONTHSEQ %d outside sales window sequence range", seq)
	}
}

// TestSessionPermutationKeepsDrillOrder: iterative OLAP steps of one
// sequence execute in ascending ID order in every stream.
func TestSessionPermutationKeepsDrillOrder(t *testing.T) {
	tpls := []Template{
		{ID: 1}, {ID: 2, Type: IterativeOLAP, Sequence: 1},
		{ID: 3}, {ID: 4, Type: IterativeOLAP, Sequence: 1},
		{ID: 5, Type: IterativeOLAP, Sequence: 2},
		{ID: 6, Type: IterativeOLAP, Sequence: 1},
		{ID: 7, Type: IterativeOLAP, Sequence: 2},
		{ID: 8}, {ID: 9}, {ID: 10},
	}
	for stream := 0; stream < 20; stream++ {
		order := SessionPermutation(3, stream, tpls)
		// Must be a permutation.
		seen := make([]bool, len(tpls))
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("stream %d: duplicate index %d", stream, idx)
			}
			seen[idx] = true
		}
		lastID := map[int]int{}
		for _, idx := range order {
			tp := tpls[idx]
			if tp.Sequence == 0 {
				continue
			}
			if prev, ok := lastID[tp.Sequence]; ok && tp.ID < prev {
				t.Fatalf("stream %d: sequence %d visits ID %d after %d",
					stream, tp.Sequence, tp.ID, prev)
			}
			lastID[tp.Sequence] = tp.ID
		}
	}
}
