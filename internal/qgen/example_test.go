package qgen_test

import (
	"fmt"

	"tpcds/internal/qgen"
)

// Templates substitute typed tokens deterministically per stream: the
// same (seed, stream, query) always yields the same SQL, and repeated
// tokens share one draw.
func ExampleInstantiate() {
	tpl := qgen.Template{
		ID:  1,
		SQL: "SELECT d_moy FROM date_dim WHERE d_year = [YEAR] AND d_moy = [MONTH_Z3]",
	}
	text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
	if err != nil {
		panic(err)
	}
	fmt.Println(text)
	// Output:
	// SELECT d_moy FROM date_dim WHERE d_year = 2001 AND d_moy = 12
}

// The workload class follows mechanically from the channels a query
// references (§2.2): catalog = reporting, store/web = ad-hoc.
func ExampleClassOf() {
	fmt.Println(qgen.ClassOf(qgen.Template{SQL: "SELECT 1 FROM store_sales"}))
	fmt.Println(qgen.ClassOf(qgen.Template{SQL: "SELECT 1 FROM catalog_sales"}))
	fmt.Println(qgen.ClassOf(qgen.Template{SQL: "SELECT 1 FROM web_sales, catalog_returns"}))
	// Output:
	// ad-hoc
	// reporting
	// hybrid
}
