// Package datagen implements the TPC-DS data generator (the paper's
// dsdgen, §3): it populates the 24-table snowstorm schema at a given
// scale factor with the hybrid synthetic / real-world data domains of
// package dist, applying
//
//   - linear fact-table and sub-linear dimension scaling (package scaling),
//   - the zoned seasonal sales-date distribution of Figure 2,
//   - Gaussian word selection for names and text (frequent-names skew),
//   - single-inheritance item hierarchies (Figure 5),
//   - slowly changing dimensions with up to 3 revisions per business key
//     (§3.3.2), carrying rec_start_date/rec_end_date version ranges, and
//   - returns that reference actual sales rows, enabling the fact-to-fact
//     joins of §2.2.
//
// Generation is deterministic: a Generator with the same scale factor and
// seed always produces the identical database, the repeatability
// requirement of §3.2. Tables draw from independent per-(table, purpose)
// random streams, so tables may be generated in any order or in parallel.
package datagen

import (
	"fmt"

	"tpcds/internal/obs"
	"tpcds/internal/rng"
	"tpcds/internal/scaling"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Sales history: fact dates span 5 whole years, mirroring the official
// kit's 1998-2002 window. The §3.1 narrative ("58 million items sold per
// year" from 288M rows at SF 100) divides by this span.
const (
	FirstSalesYear = 1998
	LastSalesYear  = 2002
	SalesYears     = LastSalesYear - FirstSalesYear + 1
)

// Generator produces the benchmark data set.
type Generator struct {
	SF   float64
	Seed uint64

	defs map[string]*schema.Table
	// Observability (SetObservability): nil means generation runs on
	// the zero-cost disabled path.
	span *obs.Span
	reg  *obs.Registry
}

// New returns a generator for the given scale factor and seed.
// Scale factor must be positive; see scaling.OfficialScaleFactors for
// the publishable values (any positive value works for development).
func New(sf float64, seed uint64) *Generator {
	if sf <= 0 {
		panic("datagen: non-positive scale factor")
	}
	return &Generator{SF: sf, Seed: seed, defs: schema.ByName()}
}

// stream returns the independent random stream for (table, purpose).
func (g *Generator) stream(table, purpose string) *rng.Stream {
	return rng.NewStream(rng.ColumnSeed(g.Seed, table, purpose))
}

// rows returns the target cardinality for a table at the generator's SF.
func (g *Generator) rows(table string) int64 {
	return scaling.Rows(table, g.SF)
}

// GenerateAll builds the complete database. Dimensions are generated
// first, then the sales facts, then returns (which sample actual sales
// rows) and inventory.
func (g *Generator) GenerateAll() *storage.DB {
	db := storage.NewDB()
	// Dimensions in dependency-free order.
	dims := g.phase("dimensions")
	for _, name := range []string{
		"date_dim", "time_dim", "income_band", "customer_demographics",
		"household_demographics", "reason", "ship_mode", "warehouse",
		"customer_address", "item", "customer", "store", "call_center",
		"catalog_page", "web_site", "web_page", "promotion",
	} {
		db.Put(g.instrument(dims, name, func() *storage.Table {
			return g.GenerateDimension(name)
		}))
	}
	dims.End()
	// Sales facts.
	facts := g.phase("facts")
	ss := g.instrument(facts, "store_sales", func() *storage.Table { return g.generateSales(db, "store_sales") })
	cs := g.instrument(facts, "catalog_sales", func() *storage.Table { return g.generateSales(db, "catalog_sales") })
	ws := g.instrument(facts, "web_sales", func() *storage.Table { return g.generateSales(db, "web_sales") })
	db.Put(ss)
	db.Put(cs)
	db.Put(ws)
	facts.End()
	// Returns reference their channel's sales fact.
	rets := g.phase("returns+inventory")
	db.Put(g.instrument(rets, "store_returns", func() *storage.Table { return g.generateReturns(db, "store_returns", ss) }))
	db.Put(g.instrument(rets, "catalog_returns", func() *storage.Table { return g.generateReturns(db, "catalog_returns", cs) }))
	db.Put(g.instrument(rets, "web_returns", func() *storage.Table { return g.generateReturns(db, "web_returns", ws) }))
	db.Put(g.instrument(rets, "inventory", func() *storage.Table { return g.generateInventory(db) }))
	rets.End()
	return db
}

// GenerateDimension builds one dimension table by name. It panics on
// fact table names (facts need the dimension context; use GenerateAll).
func (g *Generator) GenerateDimension(name string) *storage.Table {
	def := g.defs[name]
	if def == nil {
		panic(fmt.Sprintf("datagen: unknown table %q", name))
	}
	if def.Kind != schema.Dimension {
		panic(fmt.Sprintf("datagen: %s is not a dimension", name))
	}
	switch name {
	case "date_dim":
		return g.genDateDim(def)
	case "time_dim":
		return g.genTimeDim(def)
	case "income_band":
		return g.genIncomeBand(def)
	case "customer_demographics":
		return g.genCustomerDemographics(def)
	case "household_demographics":
		return g.genHouseholdDemographics(def)
	case "reason":
		return g.genReason(def)
	case "ship_mode":
		return g.genShipMode(def)
	case "warehouse":
		return g.genWarehouse(def)
	case "customer_address":
		return g.genCustomerAddress(def)
	case "item":
		return g.genItem(def)
	case "customer":
		return g.genCustomer(def)
	case "store":
		return g.genStore(def)
	case "call_center":
		return g.genCallCenter(def)
	case "catalog_page":
		return g.genCatalogPage(def)
	case "web_site":
		return g.genWebSite(def)
	case "web_page":
		return g.genWebPage(def)
	case "promotion":
		return g.genPromotion(def)
	default:
		panic(fmt.Sprintf("datagen: no generator for dimension %q", name))
	}
}

// bkey renders a 16-character business key in the dsdgen style
// ("AAAAAAAA..." base-16 over letters A-P), unique per entity id.
func bkey(entity int64) string {
	var buf [16]byte
	for i := range buf {
		buf[i] = 'A'
	}
	for i := 15; i >= 0 && entity > 0; i-- {
		buf[i] = byte('A' + entity&0xf)
		entity >>= 4
	}
	return string(buf[:])
}

// pickGaussian selects from a frequency-ordered vocabulary with the
// Gaussian skew of §3.2. The most frequent entries sit mid-list after
// reordering, so we map the Gaussian index back onto frequency rank:
// rank 0 is most likely.
func pickGaussian(s *rng.Stream, vocab []string) string {
	// Fold the symmetric Gaussian index into a rank: distance from center.
	n := len(vocab)
	gi := s.GaussianIndex(n)
	rank := gi - n/2
	if rank < 0 {
		rank = -rank*2 - 1
	} else {
		rank *= 2
	}
	if rank >= n {
		rank = n - 1
	}
	return vocab[rank]
}

// pickUniform selects uniformly from a vocabulary.
func pickUniform(s *rng.Stream, vocab []string) string {
	return vocab[s.Intn(len(vocab))]
}

// maybeNull returns NULL with probability pct/100, else v. The generated
// data carries NULLs in nullable fact foreign keys, challenging joins
// and statistics as real warehouse data does.
func maybeNull(s *rng.Stream, pct int, v storage.Value) storage.Value {
	if s.Intn(100) < pct {
		return storage.Null
	}
	return v
}

// money rounds a float to cents.
func money(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// wordText synthesizes n words of Gaussian-selected filler text, at most
// maxLen bytes.
func wordText(s *rng.Stream, words int, maxLen int) string {
	out := ""
	for i := 0; i < words; i++ {
		w := pickGaussian(s, wordsVocab)
		if len(out)+len(w)+1 > maxLen {
			break
		}
		if out != "" {
			out += " "
		}
		out += w
	}
	return out
}
