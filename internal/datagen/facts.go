package datagen

import (
	"fmt"

	"tpcds/internal/dist"
	"tpcds/internal/rng"
	"tpcds/internal/storage"
)

// lineItem carries the per-line monetary columns shared by all three
// sales channels. Amounts are mutually consistent (ext_* = unit * qty,
// net_paid = ext_sales_price - coupon, profit = net_paid -
// ext_wholesale_cost) so queries aggregating different measures agree.
type lineItem struct {
	quantity                             int64
	wholesale, list, sales               float64
	extDiscount, extSales, extWholesale  float64
	extList, extTax, coupon              float64
	netPaid, netPaidIncTax, netProfit    float64
	extShipCost, netPaidIncShip, netPIST float64
}

func genLineItem(s *rng.Stream) lineItem {
	var li lineItem
	li.quantity = s.Range(1, 100)
	li.wholesale = money(1 + s.Float64()*99)
	li.list = money(li.wholesale * (1 + s.Float64()))
	li.sales = money(li.list * (0.1 + 0.9*s.Float64()))
	q := float64(li.quantity)
	li.extDiscount = money((li.list - li.sales) * q)
	li.extSales = money(li.sales * q)
	li.extWholesale = money(li.wholesale * q)
	li.extList = money(li.list * q)
	li.extTax = money(li.extSales * 0.09 * s.Float64())
	if s.Intn(5) == 0 {
		li.coupon = money(li.extSales * 0.3 * s.Float64())
	}
	li.netPaid = money(li.extSales - li.coupon)
	li.netPaidIncTax = money(li.netPaid + li.extTax)
	li.netProfit = money(li.netPaid - li.extWholesale)
	li.extShipCost = money(q * s.Float64() * 5)
	li.netPaidIncShip = money(li.netPaid + li.extShipCost)
	li.netPIST = money(li.netPaidIncTax + li.extShipCost)
	return li
}

// pickSalesDate draws a day with the Figure 2 zoned seasonality: a
// uniform year in the sales window, a zoned month, and a uniform day of
// that month (uniform within a zone — the comparability guarantee).
func pickSalesDate(s *rng.Stream) int64 {
	year := FirstSalesYear + s.Intn(SalesYears)
	month := dist.PickSalesMonth(s)
	day := 1 + s.Intn(dist.DaysInMonth(month))
	return storage.DaysFromYMD(year, month, day)
}

// dimSizes snapshots the dimension cardinalities a fact generator needs.
type dimSizes struct {
	item, customer, cdemo, hdemo, addr    int64
	store, promo, timeRows, reason        int64
	callCenter, catalogPage, shipMode, wh int64
	webPage, webSite                      int64
}

func (g *Generator) sizes(db *storage.DB) dimSizes {
	rows := func(name string) int64 { return int64(db.Table(name).NumRows()) }
	return dimSizes{
		item: rows("item"), customer: rows("customer"),
		cdemo: rows("customer_demographics"), hdemo: rows("household_demographics"),
		addr: rows("customer_address"), store: rows("store"),
		promo: rows("promotion"), timeRows: rows("time_dim"), reason: rows("reason"),
		callCenter: rows("call_center"), catalogPage: rows("catalog_page"),
		shipMode: rows("ship_mode"), wh: rows("warehouse"),
		webPage: rows("web_page"), webSite: rows("web_site"),
	}
}

// generateSales builds one of the three sales fact tables. Rows are
// emitted in ticket/order groups (mean basket near the paper's 10.5
// items per shopping cart) sharing a date, customer and outlet.
func (g *Generator) generateSales(db *storage.DB, name string) *storage.Table {
	def := g.defs[name]
	if def == nil {
		panic(fmt.Sprintf("datagen: unknown fact %q", name))
	}
	t := storage.NewTable(def)
	s := g.stream(name, "row")
	d := g.sizes(db)
	target := g.rows(name)
	t.Grow(int(target))
	var emitted, ticket int64
	for emitted < target {
		ticket++
		k := int64(1 + s.Poisson(9.5))
		if k > target-emitted {
			k = target - emitted
		}
		day := pickSalesDate(s)
		dateSK := storage.Int(storage.DateSK(day))
		timeSK := maybeNull(s, 2, storage.Int(1+s.Int63n(d.timeRows)))
		cust := maybeNull(s, 3, storage.Int(1+s.Int63n(d.customer)))
		cdemo := maybeNull(s, 3, storage.Int(1+s.Int63n(d.cdemo)))
		hdemo := maybeNull(s, 3, storage.Int(1+s.Int63n(d.hdemo)))
		addr := maybeNull(s, 3, storage.Int(1+s.Int63n(d.addr)))
		for j := int64(0); j < k; j++ {
			item := 1 + s.Int63n(d.item)
			promo := maybeNull(s, 50, storage.Int(1+s.Int63n(d.promo)))
			li := genLineItem(s)
			switch name {
			case "store_sales":
				t.Append([]storage.Value{
					dateSK, timeSK, storage.Int(item), cust, cdemo, hdemo, addr,
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.store))),
					promo, storage.Int(ticket), storage.Int(li.quantity),
					storage.Float(li.wholesale), storage.Float(li.list),
					storage.Float(li.sales), storage.Float(li.extDiscount),
					storage.Float(li.extSales), storage.Float(li.extWholesale),
					storage.Float(li.extList), storage.Float(li.extTax),
					storage.Float(li.coupon), storage.Float(li.netPaid),
					storage.Float(li.netPaidIncTax), storage.Float(li.netProfit),
				})
			case "catalog_sales":
				shipDate := storage.Int(storage.DateSK(day + 2 + s.Int63n(88)))
				t.Append([]storage.Value{
					dateSK, timeSK, shipDate,
					cust, cdemo, hdemo, addr, // bill_*
					cust, cdemo, hdemo, addr, // ship_* (same household)
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.callCenter))),
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.catalogPage))),
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.shipMode))),
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.wh))),
					storage.Int(item), promo, storage.Int(ticket),
					storage.Int(li.quantity),
					storage.Float(li.wholesale), storage.Float(li.list),
					storage.Float(li.sales), storage.Float(li.extDiscount),
					storage.Float(li.extSales), storage.Float(li.extWholesale),
					storage.Float(li.extList), storage.Float(li.extTax),
					storage.Float(li.coupon), storage.Float(li.extShipCost),
					storage.Float(li.netPaid), storage.Float(li.netPaidIncTax),
					storage.Float(li.netPaidIncShip), storage.Float(li.netPIST),
					storage.Float(li.netProfit),
				})
			case "web_sales":
				shipDate := storage.Int(storage.DateSK(day + 1 + s.Int63n(60)))
				t.Append([]storage.Value{
					dateSK, timeSK, shipDate, storage.Int(item),
					cust, cdemo, hdemo, addr, // bill_*
					cust, cdemo, hdemo, addr, // ship_*
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.webPage))),
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.webSite))),
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.shipMode))),
					maybeNull(s, 2, storage.Int(1+s.Int63n(d.wh))),
					promo, storage.Int(ticket), storage.Int(li.quantity),
					storage.Float(li.wholesale), storage.Float(li.list),
					storage.Float(li.sales), storage.Float(li.extDiscount),
					storage.Float(li.extSales), storage.Float(li.extWholesale),
					storage.Float(li.extList), storage.Float(li.extTax),
					storage.Float(li.coupon), storage.Float(li.extShipCost),
					storage.Float(li.netPaid), storage.Float(li.netPaidIncTax),
					storage.Float(li.netPaidIncShip), storage.Float(li.netPIST),
					storage.Float(li.netProfit),
				})
			default:
				panic("datagen: generateSales on non-sales table " + name)
			}
			emitted++
		}
	}
	return t
}

// generateReturns builds a returns fact whose rows reference actual rows
// of the channel's sales fact, so the (item, ticket/order) fact-to-fact
// joins of §2.2 find matches. Returned dates trail the sale by 1-90
// days.
func (g *Generator) generateReturns(db *storage.DB, name string, sales *storage.Table) *storage.Table {
	def := g.defs[name]
	if def == nil {
		panic(fmt.Sprintf("datagen: unknown fact %q", name))
	}
	t := storage.NewTable(def)
	s := g.stream(name, "row")
	d := g.sizes(db)
	target := g.rows(name)
	t.Grow(int(target))
	nSales := int64(sales.NumRows())
	if nSales == 0 {
		panic("datagen: returns generated before sales")
	}
	sdef := sales.Def
	colOf := func(col string) int { return sdef.ColumnIndex(col) }
	// Per-channel source column positions in the sales fact.
	var cDate, cItem, cOrder, cCust, cCDemo, cHDemo, cAddr, cStore, cQty int
	switch name {
	case "store_returns":
		cDate, cItem, cOrder = colOf("ss_sold_date_sk"), colOf("ss_item_sk"), colOf("ss_ticket_number")
		cCust, cCDemo, cHDemo = colOf("ss_customer_sk"), colOf("ss_cdemo_sk"), colOf("ss_hdemo_sk")
		cAddr, cStore, cQty = colOf("ss_addr_sk"), colOf("ss_store_sk"), colOf("ss_quantity")
	case "catalog_returns":
		cDate, cItem, cOrder = colOf("cs_sold_date_sk"), colOf("cs_item_sk"), colOf("cs_order_number")
		cCust, cCDemo, cHDemo = colOf("cs_bill_customer_sk"), colOf("cs_bill_cdemo_sk"), colOf("cs_bill_hdemo_sk")
		cAddr, cStore, cQty = colOf("cs_bill_addr_sk"), colOf("cs_call_center_sk"), colOf("cs_quantity")
	case "web_returns":
		cDate, cItem, cOrder = colOf("ws_sold_date_sk"), colOf("ws_item_sk"), colOf("ws_order_number")
		cCust, cCDemo, cHDemo = colOf("ws_bill_customer_sk"), colOf("ws_bill_cdemo_sk"), colOf("ws_bill_hdemo_sk")
		cAddr, cStore, cQty = colOf("ws_bill_addr_sk"), colOf("ws_web_page_sk"), colOf("ws_quantity")
	default:
		panic("datagen: generateReturns on non-returns table " + name)
	}
	// Stride through the sales fact so returns cover the full history.
	stride := nSales / target
	if stride < 1 {
		stride = 1
	}
	for i := int64(0); i < target; i++ {
		saleRow := int((i * stride) % nSales)
		soldDateSK := sales.Get(saleRow, cDate)
		var returnedDay int64
		if soldDateSK.IsNull() {
			returnedDay = pickSalesDate(s)
		} else {
			returnedDay = storage.DaysFromSK(soldDateSK.AsInt()) + 1 + s.Int63n(90)
		}
		item := sales.Get(saleRow, cItem)
		order := sales.Get(saleRow, cOrder)
		soldQty := sales.Get(saleRow, cQty).AsInt()
		if soldQty < 1 {
			soldQty = 1
		}
		retQty := 1 + s.Int63n(soldQty)
		amt := money(float64(retQty) * (1 + s.Float64()*99))
		tax := money(amt * 0.09 * s.Float64())
		fee := money(s.Float64() * 100)
		shipCost := money(float64(retQty) * s.Float64() * 5)
		refunded := money(amt * s.Float64())
		reversed := money((amt - refunded) * s.Float64())
		credit := money(amt - refunded - reversed)
		loss := money(fee + shipCost + amt*0.1)
		timeSK := maybeNull(s, 2, storage.Int(1+s.Int63n(d.timeRows)))
		retDate := storage.Int(storage.DateSK(returnedDay))
		switch name {
		case "store_returns":
			t.Append([]storage.Value{
				retDate, timeSK, item,
				sales.Get(saleRow, cCust), sales.Get(saleRow, cCDemo),
				sales.Get(saleRow, cHDemo), sales.Get(saleRow, cAddr),
				sales.Get(saleRow, cStore),
				maybeNull(s, 2, storage.Int(1+s.Int63n(d.reason))),
				order, storage.Int(retQty),
				storage.Float(amt), storage.Float(tax), storage.Float(money(amt + tax)),
				storage.Float(fee), storage.Float(shipCost), storage.Float(refunded),
				storage.Float(reversed), storage.Float(credit), storage.Float(loss),
			})
		case "catalog_returns":
			t.Append([]storage.Value{
				retDate, timeSK, item,
				sales.Get(saleRow, cCust), sales.Get(saleRow, cCDemo),
				sales.Get(saleRow, cHDemo), sales.Get(saleRow, cAddr),
				sales.Get(saleRow, cCust), sales.Get(saleRow, cCDemo),
				sales.Get(saleRow, cHDemo), sales.Get(saleRow, cAddr),
				sales.Get(saleRow, cStore), // cr_call_center_sk from cs_call_center_sk
				maybeNull(s, 2, storage.Int(1+s.Int63n(d.catalogPage))),
				maybeNull(s, 2, storage.Int(1+s.Int63n(d.shipMode))),
				maybeNull(s, 2, storage.Int(1+s.Int63n(d.wh))),
				maybeNull(s, 2, storage.Int(1+s.Int63n(d.reason))),
				order, storage.Int(retQty),
				storage.Float(amt), storage.Float(tax), storage.Float(money(amt + tax)),
				storage.Float(fee), storage.Float(shipCost), storage.Float(refunded),
				storage.Float(reversed), storage.Float(credit), storage.Float(loss),
			})
		case "web_returns":
			t.Append([]storage.Value{
				retDate, timeSK, item,
				sales.Get(saleRow, cCust), sales.Get(saleRow, cCDemo),
				sales.Get(saleRow, cHDemo), sales.Get(saleRow, cAddr),
				sales.Get(saleRow, cCust), sales.Get(saleRow, cCDemo),
				sales.Get(saleRow, cHDemo), sales.Get(saleRow, cAddr),
				sales.Get(saleRow, cStore), // wr_web_page_sk from ws_web_page_sk
				maybeNull(s, 2, storage.Int(1+s.Int63n(d.reason))),
				order, storage.Int(retQty),
				storage.Float(amt), storage.Float(tax), storage.Float(money(amt + tax)),
				storage.Float(fee), storage.Float(shipCost), storage.Float(refunded),
				storage.Float(reversed), storage.Float(credit), storage.Float(loss),
			})
		}
	}
	return t
}

// generateInventory builds the weekly inventory snapshot fact shared by
// the catalog and web channels: (week, item, warehouse) combinations
// covering the sales window.
func (g *Generator) generateInventory(db *storage.DB) *storage.Table {
	def := g.defs["inventory"]
	t := storage.NewTable(def)
	s := g.stream("inventory", "row")
	nItem := int64(db.Table("item").NumRows())
	nWH := int64(db.Table("warehouse").NumRows())
	target := g.rows("inventory")
	// Snapshot Mondays: 1900-01-01 was a Monday; find the first Monday
	// of the sales window.
	day := storage.DaysFromYMD(FirstSalesYear, 1, 1)
	for storage.Weekday(day) != 1 {
		day++
	}
	weeks := int64(SalesYears * 52)
	var emitted int64
	for w := int64(0); w < weeks && emitted < target; w++ {
		weekDay := day + w*7
		for it := int64(1); it <= nItem && emitted < target; it++ {
			for wh := int64(1); wh <= nWH && emitted < target; wh++ {
				t.Append([]storage.Value{
					storage.Int(storage.DateSK(weekDay)),
					storage.Int(it),
					storage.Int(wh),
					maybeNull(s, 2, storage.Int(s.Int63n(1000))),
				})
				emitted++
			}
		}
	}
	return t
}
