package datagen

import (
	"time"

	"tpcds/internal/obs"
	"tpcds/internal/storage"
)

// SetObservability attaches a parent span and metrics registry to the
// generator: GenerateAll and GenerateAllParallel then record per-phase
// and per-table spans under parent, table build times in the
// datagen_table_ns histogram, and generated row counts in the
// datagen_rows counter. Observation never influences generation — the
// per-(table, purpose) random streams are untouched, so an
// instrumented run is bit-identical to a bare one.
func (g *Generator) SetObservability(parent *obs.Span, reg *obs.Registry) {
	g.span = parent
	g.reg = reg
}

// phase opens a span for one dependency phase of the generation plan.
func (g *Generator) phase(name string) *obs.Span {
	return g.span.ChildCat(name, "datagen")
}

// instrument runs one table build under a span and records its
// duration and cardinality. The wall-clock reading here flows ONLY
// into obs recording calls — never into generated data — which is
// exactly the boundary the determinism lint enforces for this package.
func (g *Generator) instrument(parent *obs.Span, name string, gen func() *storage.Table) *storage.Table {
	sp := parent.ChildCat(name, "datagen")
	start := time.Now()
	t := gen()
	if g.reg != nil {
		g.reg.Histogram("datagen_table_ns").ObserveDuration(time.Since(start))
		g.reg.Counter("datagen_rows").Add(int64(t.NumRows()))
	}
	sp.SetAttrInt("rows", int64(t.NumRows()))
	sp.End()
	return t
}
