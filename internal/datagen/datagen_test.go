package datagen

import (
	"testing"

	"tpcds/internal/dist"
	"tpcds/internal/rng"
	"tpcds/internal/scaling"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// testSF is small enough for fast tests but large enough that every
// table is non-degenerate (store_sales gets 2880 rows, customers 2000+).
const testSF = 0.001

// sharedDB builds one database per test binary run; the generator is
// deterministic so sharing is safe for read-only tests.
var sharedDB = New(testSF, 7).GenerateAll()

func TestAllTablesGenerated(t *testing.T) {
	for _, def := range schema.Tables() {
		tb := sharedDB.Table(def.Name)
		if tb == nil {
			t.Errorf("table %s not generated", def.Name)
			continue
		}
		if tb.NumRows() == 0 {
			t.Errorf("table %s is empty", def.Name)
		}
	}
}

func TestRowcountsMatchScalingModel(t *testing.T) {
	for _, def := range schema.Tables() {
		want := scaling.Rows(def.Name, testSF)
		got := int64(sharedDB.Table(def.Name).NumRows())
		if got != want {
			t.Errorf("%s: %d rows, scaling model says %d", def.Name, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(testSF, 7).GenerateDimension("item")
	b := New(testSF, 7).GenerateDimension("item")
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ across identical generators")
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			if !storage.Equal(a.Get(r, c), b.Get(r, c)) {
				t.Fatalf("item row %d col %d differs: %v vs %v", r, c, a.Get(r, c), b.Get(r, c))
			}
		}
	}
	// A different seed must produce different content.
	c := New(testSF, 8).GenerateDimension("item")
	same := true
	for r := 0; r < a.NumRows() && same; r++ {
		if !storage.Equal(a.Get(r, 5), c.Get(r, 5)) { // i_current_price
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical item prices")
	}
}

// TestReferentialIntegrity: every non-null foreign key value joins to an
// existing surrogate key in the referenced dimension.
func TestReferentialIntegrity(t *testing.T) {
	for _, def := range schema.Tables() {
		tb := sharedDB.Table(def.Name)
		for _, fkDef := range def.ForeignKeys {
			ref := sharedDB.Table(fkDef.Ref)
			maxSK := int64(ref.NumRows())
			col := def.ColumnIndex(fkDef.Column)
			bad := 0
			for r := 0; r < tb.NumRows(); r++ {
				v := tb.Get(r, col)
				if v.IsNull() {
					continue
				}
				// Surrogate keys are dense 1..N in every dimension except
				// date/time whose SK space is the full calendar.
				lo, hi := int64(1), maxSK
				if v.AsInt() < lo || v.AsInt() > hi {
					bad++
				}
			}
			if bad > 0 {
				t.Errorf("%s.%s: %d dangling references into %s",
					def.Name, fkDef.Column, bad, fkDef.Ref)
			}
		}
	}
}

// TestFactToFactJoin: the returns facts must join back to their sales
// fact on the (item, ticket/order) pair (§2.2).
func TestFactToFactJoin(t *testing.T) {
	for _, link := range schema.FactLinks() {
		ret := sharedDB.Table(link.From)
		sales := sharedDB.Table(link.To)
		// Build the set of (item, order) pairs in the sales fact.
		salesDef := sales.Def
		itemCol := salesDef.ColumnIndex(salesDef.PrimaryKey[0])
		orderCol := salesDef.ColumnIndex(salesDef.PrimaryKey[1])
		pairs := map[[2]int64]bool{}
		for r := 0; r < sales.NumRows(); r++ {
			pairs[[2]int64{sales.Get(r, itemCol).AsInt(), sales.Get(r, orderCol).AsInt()}] = true
		}
		rItem := ret.Def.ColumnIndex(link.Columns[0])
		rOrder := ret.Def.ColumnIndex(link.Columns[1])
		misses := 0
		for r := 0; r < ret.NumRows(); r++ {
			key := [2]int64{ret.Get(r, rItem).AsInt(), ret.Get(r, rOrder).AsInt()}
			if !pairs[key] {
				misses++
			}
		}
		if misses > 0 {
			t.Errorf("%s: %d/%d rows do not join back to %s", link.From, misses, ret.NumRows(), link.To)
		}
	}
}

// TestSeasonality: store_sales dates must follow the Figure 2 zones —
// December clearly busier than a low-zone month, months within a zone
// close to uniform.
func TestSeasonality(t *testing.T) {
	ss := sharedDB.Table("store_sales")
	dateCol := ss.Def.ColumnIndex("ss_sold_date_sk")
	counts := make([]int, 13)
	for r := 0; r < ss.NumRows(); r++ {
		v := ss.Get(r, dateCol)
		if v.IsNull() {
			continue
		}
		_, m, _ := storage.YMDFromDays(storage.DaysFromSK(v.AsInt()))
		counts[m]++
	}
	if counts[12] <= counts[3] {
		t.Errorf("December sales (%d) not above March (%d): seasonality missing",
			counts[12], counts[3])
	}
	if counts[11] <= counts[5] {
		t.Errorf("November sales (%d) not above May (%d)", counts[11], counts[5])
	}
}

// TestSCDRevisions (§3.3.2): history-keeping dimensions carry 1-3
// revisions per business key, exactly one open (NULL rec_end_date), with
// non-overlapping validity ranges.
func TestSCDRevisions(t *testing.T) {
	for _, def := range schema.Tables() {
		if def.SCD != schema.HistoryKeeping {
			continue
		}
		tb := sharedDB.Table(def.Name)
		bkCol := def.ColumnIndex(def.BusinessKey)
		var startCol, endCol int
		for i, c := range def.Columns {
			if len(c.Name) > 14 && c.Name[len(c.Name)-14:] == "rec_start_date" {
				startCol = i
			}
			if len(c.Name) > 12 && c.Name[len(c.Name)-12:] == "rec_end_date" {
				endCol = i
			}
		}
		type revInfo struct {
			count int
			open  int
		}
		revs := map[string]*revInfo{}
		for r := 0; r < tb.NumRows(); r++ {
			bk := tb.Get(r, bkCol).S
			ri := revs[bk]
			if ri == nil {
				ri = &revInfo{}
				revs[bk] = ri
			}
			ri.count++
			start := tb.Get(r, startCol)
			end := tb.Get(r, endCol)
			if start.IsNull() {
				t.Errorf("%s row %d: NULL rec_start_date", def.Name, r)
			}
			if end.IsNull() {
				ri.open++
			} else if storage.Compare(end, start) < 0 {
				t.Errorf("%s row %d: rec_end before rec_start", def.Name, r)
			}
		}
		for bk, ri := range revs {
			if ri.count > 3 {
				t.Errorf("%s %s: %d revisions, paper says up to 3", def.Name, bk, ri.count)
			}
			if ri.open != 1 {
				t.Errorf("%s %s: %d open revisions, want exactly 1", def.Name, bk, ri.open)
			}
		}
		if len(revs) == 0 {
			t.Errorf("%s: no business keys found", def.Name)
		}
	}
}

// TestItemHierarchy (Figure 5): in the generated items, every brand maps
// to one class and every class to one category.
func TestItemHierarchy(t *testing.T) {
	items := sharedDB.Table("item")
	def := items.Def
	brandCol := def.ColumnIndex("i_brand_id")
	classCol := def.ColumnIndex("i_class")
	catCol := def.ColumnIndex("i_category")
	classOfBrand := map[int64]string{}
	catOfClass := map[string]string{}
	for r := 0; r < items.NumRows(); r++ {
		brand := items.Get(r, brandCol).AsInt()
		class := items.Get(r, classCol).S
		cat := items.Get(r, catCol).S
		if prev, ok := classOfBrand[brand]; ok && prev != class {
			t.Fatalf("brand %d in classes %q and %q", brand, prev, class)
		}
		classOfBrand[brand] = class
		if prev, ok := catOfClass[class]; ok && prev != cat {
			t.Fatalf("class %q in categories %q and %q", class, prev, cat)
		}
		catOfClass[class] = cat
		if _, ok := dist.ClassesByCategory[cat]; !ok {
			t.Fatalf("item row %d has unknown category %q", r, cat)
		}
	}
}

func TestDateDimCalendar(t *testing.T) {
	dd := sharedDB.Table("date_dim")
	if dd.NumRows() != storage.DateDimRows {
		t.Fatalf("date_dim has %d rows, want %d", dd.NumRows(), storage.DateDimRows)
	}
	def := dd.Def
	yearCol := def.ColumnIndex("d_year")
	moyCol := def.ColumnIndex("d_moy")
	domCol := def.ColumnIndex("d_dom")
	dateCol := def.ColumnIndex("d_date")
	// Spot checks: row 0 is 1900-01-01; the SK arithmetic must agree
	// with the d_date column everywhere (sampled).
	if dd.Get(0, yearCol).AsInt() != 1900 || dd.Get(0, moyCol).AsInt() != 1 || dd.Get(0, domCol).AsInt() != 1 {
		t.Error("date_dim row 0 is not 1900-01-01")
	}
	for r := 0; r < dd.NumRows(); r += 997 {
		days := dd.Get(r, dateCol).AsInt()
		if storage.DateSK(days) != dd.Get(r, 0).AsInt() {
			t.Fatalf("date_dim row %d: SK %d does not match date %s",
				r, dd.Get(r, 0).AsInt(), storage.FormatDate(days))
		}
		y, m, d := storage.YMDFromDays(days)
		if int64(y) != dd.Get(r, yearCol).AsInt() || int64(m) != dd.Get(r, moyCol).AsInt() || int64(d) != dd.Get(r, domCol).AsInt() {
			t.Fatalf("date_dim row %d: y/m/d columns disagree with d_date", r)
		}
	}
}

func TestTimeDim(t *testing.T) {
	td := sharedDB.Table("time_dim")
	if td.NumRows() != 86400 {
		t.Fatalf("time_dim has %d rows, want 86400", td.NumRows())
	}
	def := td.Def
	hourCol := def.ColumnIndex("t_hour")
	// Second 3661 = 01:01:01.
	r := 3661
	if td.Get(r, hourCol).AsInt() != 1 {
		t.Errorf("t_hour of second 3661 = %d, want 1", td.Get(r, hourCol).AsInt())
	}
}

func TestDemographicsCrossProducts(t *testing.T) {
	cd := sharedDB.Table("customer_demographics")
	if cd.NumRows() != 1_920_800 {
		t.Errorf("customer_demographics = %d rows, want 1920800", cd.NumRows())
	}
	hd := sharedDB.Table("household_demographics")
	if hd.NumRows() != 7200 {
		t.Errorf("household_demographics = %d rows, want 7200", hd.NumRows())
	}
	ib := sharedDB.Table("income_band")
	if ib.NumRows() != 20 {
		t.Errorf("income_band = %d rows, want 20", ib.NumRows())
	}
	// Income bands must tile [0, 200000] without overlap.
	for r := 0; r < ib.NumRows(); r++ {
		lo := ib.Get(r, 1).AsInt()
		hi := ib.Get(r, 2).AsInt()
		if lo > hi {
			t.Errorf("income band %d inverted: %d > %d", r+1, lo, hi)
		}
		if r > 0 && lo != ib.Get(r-1, 2).AsInt()+1 {
			t.Errorf("income band %d does not abut previous", r+1)
		}
	}
}

// TestFrequentNamesSkew: customer first names must be skewed — the most
// frequent name should appear several times more often than a tail name.
func TestFrequentNamesSkew(t *testing.T) {
	c := sharedDB.Table("customer")
	col := c.Def.ColumnIndex("c_first_name")
	counts := map[string]int{}
	for r := 0; r < c.NumRows(); r++ {
		counts[c.Get(r, col).S]++
	}
	top := counts[dist.FirstNames[0]]
	tail := counts[dist.FirstNames[len(dist.FirstNames)-1]]
	if top <= tail*2 {
		t.Errorf("name skew missing: top name %d occurrences vs tail %d", top, tail)
	}
}

// TestLineItemConsistency: fact monetary columns are mutually consistent.
func TestLineItemConsistency(t *testing.T) {
	ss := sharedDB.Table("store_sales")
	def := ss.Def
	qty := def.ColumnIndex("ss_quantity")
	sales := def.ColumnIndex("ss_sales_price")
	extSales := def.ColumnIndex("ss_ext_sales_price")
	coupon := def.ColumnIndex("ss_coupon_amt")
	netPaid := def.ColumnIndex("ss_net_paid")
	for r := 0; r < ss.NumRows(); r += 13 {
		q := float64(ss.Get(r, qty).AsInt())
		want := ss.Get(r, sales).AsFloat() * q
		got := ss.Get(r, extSales).AsFloat()
		if diff := got - want; diff > q*0.01+0.01 || diff < -q*0.01-0.01 {
			t.Fatalf("row %d: ext_sales %v != sales*qty %v", r, got, want)
		}
		np := ss.Get(r, netPaid).AsFloat()
		wantNP := got - ss.Get(r, coupon).AsFloat()
		if diff := np - wantNP; diff > 0.02 || diff < -0.02 {
			t.Fatalf("row %d: net_paid %v != ext_sales-coupon %v", r, np, wantNP)
		}
	}
}

// TestBasketSize: average items per ticket should be near the paper's
// 10.5 ("on average each shopping cart contains 10.5 items").
func TestBasketSize(t *testing.T) {
	ss := sharedDB.Table("store_sales")
	ticketCol := ss.Def.ColumnIndex("ss_ticket_number")
	tickets := map[int64]int{}
	for r := 0; r < ss.NumRows(); r++ {
		tickets[ss.Get(r, ticketCol).AsInt()]++
	}
	avg := float64(ss.NumRows()) / float64(len(tickets))
	if avg < 8 || avg > 13 {
		t.Errorf("average basket size %.2f, paper says ~10.5", avg)
	}
}

func TestInventoryWeekly(t *testing.T) {
	inv := sharedDB.Table("inventory")
	dateCol := inv.Def.ColumnIndex("inv_date_sk")
	seen := map[int64]bool{}
	for r := 0; r < inv.NumRows(); r++ {
		sk := inv.Get(r, dateCol).AsInt()
		if !seen[sk] {
			seen[sk] = true
			if storage.Weekday(storage.DaysFromSK(sk)) != 1 {
				t.Fatalf("inventory snapshot on a %s, want Monday",
					storage.DayName(storage.DaysFromSK(sk)))
			}
		}
	}
	if len(seen) < 2 {
		t.Errorf("inventory covers %d distinct weeks, want several", len(seen))
	}
}

func TestBkey(t *testing.T) {
	if len(bkey(1)) != 16 || len(bkey(1<<40)) != 16 {
		t.Error("bkey must always be 16 chars")
	}
	if bkey(1) == bkey(2) {
		t.Error("bkey not unique")
	}
	if bkey(0) != "AAAAAAAAAAAAAAAA" {
		t.Errorf("bkey(0) = %q", bkey(0))
	}
}

func TestGeneratePanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("New(0)", func() { New(0, 1) })
	g := New(testSF, 1)
	mustPanic("unknown dimension", func() { g.GenerateDimension("nope") })
	mustPanic("fact as dimension", func() { g.GenerateDimension("store_sales") })
}

func TestSCDHelperExactRows(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 4, 7, 100} {
		var rows int64
		var lastOpen bool
		forEachSCDRow(rng.NewStream(1), n, func(r scdRow) {
			rows++
			lastOpen = r.recEnd.IsNull()
		})
		if rows != n {
			t.Errorf("forEachSCDRow(%d) emitted %d rows", n, rows)
		}
		if !lastOpen {
			t.Errorf("forEachSCDRow(%d): final revision not open", n)
		}
	}
}

func BenchmarkGenerateStoreSales(b *testing.B) {
	g := New(0.001, 1)
	db := storage.NewDB()
	for _, name := range []string{"date_dim", "time_dim", "income_band",
		"customer_demographics", "household_demographics", "reason", "ship_mode",
		"warehouse", "customer_address", "item", "customer", "store",
		"call_center", "catalog_page", "web_site", "web_page", "promotion"} {
		db.Put(g.GenerateDimension(name))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.generateSales(db, "store_sales")
	}
}

// TestParallelEqualsSequential: the MUDD property at database level —
// per-table independent streams make parallel generation bit-identical
// to sequential generation.
func TestParallelEqualsSequential(t *testing.T) {
	seq := New(testSF, 7).GenerateAll()
	par := New(testSF, 7).GenerateAllParallel()
	for _, name := range seq.Names() {
		a, b := seq.Table(name), par.Table(name)
		if b == nil {
			t.Fatalf("parallel generation missing table %s", name)
		}
		if a.NumRows() != b.NumRows() {
			t.Fatalf("%s: %d vs %d rows", name, a.NumRows(), b.NumRows())
		}
		stride := a.NumRows()/50 + 1
		for r := 0; r < a.NumRows(); r += stride {
			for c := 0; c < a.NumCols(); c++ {
				if !storage.Equal(a.Get(r, c), b.Get(r, c)) {
					t.Fatalf("%s row %d col %d: %v vs %v", name, r, c, a.Get(r, c), b.Get(r, c))
				}
			}
		}
	}
}

func BenchmarkGenerateAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		New(0.0005, uint64(i+1)).GenerateAll()
	}
}

func BenchmarkGenerateAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		New(0.0005, uint64(i+1)).GenerateAllParallel()
	}
}

// TestFlatFileRoundTrip: dump the generated database to flat files and
// load it back — the dsdgen -> load-test path of the benchmark. The
// loaded database must be value-identical.
func TestFlatFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := sharedDB.DumpDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := storage.LoadDir(dir, schema.Tables())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sharedDB.Names() {
		a, b := sharedDB.Table(name), loaded.Table(name)
		if a.NumRows() != b.NumRows() {
			t.Fatalf("%s: %d vs %d rows after round trip", name, a.NumRows(), b.NumRows())
		}
		stride := a.NumRows()/40 + 1
		for r := 0; r < a.NumRows(); r += stride {
			for c := 0; c < a.NumCols(); c++ {
				av, bv := a.Get(r, c), b.Get(r, c)
				// Decimal columns round-trip at cent precision (the flat
				// format prints 2 decimals).
				if av.K == storage.KindFloat && !av.IsNull() && !bv.IsNull() {
					d := av.F - bv.F
					if d > 0.005 || d < -0.005 {
						t.Fatalf("%s (%d,%d): %v vs %v", name, r, c, av, bv)
					}
					continue
				}
				if !storage.Equal(av, bv) {
					t.Fatalf("%s (%d,%d): %v vs %v", name, r, c, av, bv)
				}
			}
		}
	}
}
