package datagen

import (
	"sync"

	"tpcds/internal/storage"
)

// GenerateAllParallel builds the same database as GenerateAll using one
// goroutine per table within each dependency phase. Because every table
// draws from its own independent random streams (the MUDD design, §3),
// parallel generation is bit-identical to sequential generation — the
// property TestParallelEqualsSequential verifies.
//
// Phases: all dimensions first (independent), then the three sales
// facts (they need dimension cardinalities), then returns (they sample
// their sales fact) and inventory. Tables are registered only between
// phases, so goroutines never observe a mutating database.
func (g *Generator) GenerateAllParallel() *storage.DB {
	db := storage.NewDB()

	// Ownership: runPhase joins every per-table goroutine it spawns via
	// wg.Wait before touching db, so each phase's writes (one goroutine
	// per results slot) happen-before the registration loop and nothing
	// escapes the phase. Per-table spans hang off the phase span from
	// concurrent goroutines — span creation is goroutine-safe and the
	// phase span outlives the wg.Wait join.
	runPhase := func(phase string, names []string, gen func(name string) *storage.Table) {
		psp := g.phase(phase)
		defer psp.End()
		results := make([]*storage.Table, len(names))
		var wg sync.WaitGroup
		for i, name := range names {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				results[i] = g.instrument(psp, name, func() *storage.Table { return gen(name) })
			}(i, name)
		}
		wg.Wait()
		for _, t := range results {
			db.Put(t)
		}
	}

	runPhase("dimensions", []string{
		"date_dim", "time_dim", "income_band", "customer_demographics",
		"household_demographics", "reason", "ship_mode", "warehouse",
		"customer_address", "item", "customer", "store", "call_center",
		"catalog_page", "web_site", "web_page", "promotion",
	}, g.GenerateDimension)

	runPhase("facts", []string{"store_sales", "catalog_sales", "web_sales"},
		func(name string) *storage.Table { return g.generateSales(db, name) })

	salesOf := map[string]string{
		"store_returns":   "store_sales",
		"catalog_returns": "catalog_sales",
		"web_returns":     "web_sales",
	}
	runPhase("returns+inventory", []string{"store_returns", "catalog_returns", "web_returns", "inventory"},
		func(name string) *storage.Table {
			if name == "inventory" {
				return g.generateInventory(db)
			}
			return g.generateReturns(db, name, db.Table(salesOf[name]))
		})
	return db
}
