package datagen

import (
	"reflect"
	"testing"

	"tpcds/internal/obs"
)

// TestInstrumentedGenerationIdentical: attaching a tracer and registry
// must not perturb a single generated value — observation reads the
// clock but never the random streams.
func TestInstrumentedGenerationIdentical(t *testing.T) {
	bare := New(0.0005, 7).GenerateAll()

	g := New(0.0005, 7)
	tracer := obs.NewTracer()
	root := tracer.Root("datagen", "datagen")
	reg := obs.NewRegistry()
	g.SetObservability(root, reg)
	traced := g.GenerateAll()
	root.End()

	names := bare.Names()
	if !reflect.DeepEqual(names, traced.Names()) {
		t.Fatalf("table sets differ: %v vs %v", names, traced.Names())
	}
	for _, name := range names {
		a, b := bare.Table(name), traced.Table(name)
		if a.NumRows() != b.NumRows() {
			t.Fatalf("%s: %d rows bare vs %d instrumented", name, a.NumRows(), b.NumRows())
		}
		for r := 0; r < a.NumRows(); r++ {
			for c := range a.Def.Columns {
				if a.Get(r, c) != b.Get(r, c) {
					t.Fatalf("%s[%d][%d]: %v vs %v", name, r, c, a.Get(r, c), b.Get(r, c))
				}
			}
		}
	}

	// One span per table under three phase spans, rows counted.
	spans := map[string]int{}
	for _, s := range tracer.Snapshot() {
		spans[s.Name]++
	}
	for _, phase := range []string{"dimensions", "facts", "returns+inventory"} {
		if spans[phase] != 1 {
			t.Errorf("phase span %q recorded %d times, want 1", phase, spans[phase])
		}
	}
	for _, name := range names {
		if spans[name] != 1 {
			t.Errorf("table span %q recorded %d times, want 1", name, spans[name])
		}
	}
	var total int64
	for _, name := range names {
		total += int64(bare.Table(name).NumRows())
	}
	if got := reg.Counter("datagen_rows").Value(); got != total {
		t.Errorf("datagen_rows = %d, want %d", got, total)
	}
	if reg.Histogram("datagen_table_ns").Count() != int64(len(names)) {
		t.Errorf("datagen_table_ns count = %d, want %d",
			reg.Histogram("datagen_table_ns").Count(), len(names))
	}
}
