package datagen

import (
	"fmt"
	"strings"

	"tpcds/internal/dist"
	"tpcds/internal/rng"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// scdRow describes one emitted revision of a history-keeping dimension
// entity (§3.3.2: the initial population already contains the effects of
// previous data maintenance, with up to 3 revisions per entity).
type scdRow struct {
	sk       int64 // surrogate key, dense 1..n
	entity   int64 // business entity id (shared across revisions)
	rev      int   // 0-based revision index
	revCount int   // total revisions of this entity
	recStart int64 // days since epoch
	recEnd   storage.Value
}

// forEachSCDRow emits exactly n rows of SCD revisions. Revision counts
// per entity are drawn in {1,2,3}; revision validity ranges partition
// the sales window, with the newest revision open-ended (NULL
// rec_end_date — "the row containing NULL ... is the most current row",
// §4.2).
func forEachSCDRow(s *rng.Stream, n int64, fn func(scdRow)) {
	windowStart := storage.DaysFromYMD(FirstSalesYear, 1, 1)
	windowEnd := storage.DaysFromYMD(LastSalesYear, 12, 31)
	span := windowEnd - windowStart
	sk := int64(1)
	entity := int64(1)
	for sk <= n {
		revCount := 1 + s.Intn(3)
		if remaining := n - sk + 1; int64(revCount) > remaining {
			revCount = int(remaining)
		}
		for rev := 0; rev < revCount; rev++ {
			start := windowStart + span*int64(rev)/int64(revCount)
			var end storage.Value
			if rev == revCount-1 {
				end = storage.Null
			} else {
				end = storage.DateV(windowStart + span*int64(rev+1)/int64(revCount) - 1)
			}
			fn(scdRow{sk: sk, entity: entity, rev: rev, revCount: revCount,
				recStart: start, recEnd: end})
			sk++
		}
		entity++
	}
}

// address is a synthesized US address with domain-scaled county choice.
type address struct {
	streetNumber, streetName, streetType, suite string
	city, county, state, zip, country           string
	gmtOffset                                   float64
}

func genAddress(s *rng.Stream, countyDomain int) address {
	stateIdx := s.Intn(len(dist.States))
	return address{
		streetNumber: fmt.Sprintf("%d", s.Range(1, 999)),
		streetName:   pickUniform(s, dist.StreetNames) + " " + pickUniform(s, dist.StreetNames),
		streetType:   pickUniform(s, dist.StreetTypes),
		suite:        fmt.Sprintf("Suite %d", s.Range(0, 99)*10),
		city:         pickGaussian(s, dist.Cities),
		county:       dist.Counties[s.Intn(countyDomain)],
		state:        dist.States[stateIdx],
		zip:          fmt.Sprintf("%05d", s.Range(10000, 99999)),
		country:      dist.Countries[0],
		gmtOffset:    -5 - float64(stateIdx%4),
	}
}

func (a address) values() []storage.Value {
	return []storage.Value{
		storage.Str(a.streetNumber), storage.Str(a.streetName),
		storage.Str(a.streetType), storage.Str(a.suite),
		storage.Str(a.city), storage.Str(a.county), storage.Str(a.state),
		storage.Str(a.zip), storage.Str(a.country), storage.Float(a.gmtOffset),
	}
}

// genItem builds the item dimension with the Figure 5 single-inheritance
// hierarchy (brand -> class -> category) and SCD revisions.
func (g *Generator) genItem(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("item", "row")
	forEachSCDRow(s, g.rows("item"), func(r scdRow) {
		catIdx := int(r.entity) % len(dist.Categories)
		category := dist.Categories[catIdx]
		classes := dist.ClassesByCategory[category]
		classIdx := int(r.entity/int64(len(dist.Categories))) % len(classes)
		class := classes[classIdx]
		brandNum := int(r.entity)%10 + 1
		brandID := int64(catIdx+1)*1000000 + int64(classIdx+1)*1000 + int64(brandNum)
		brand := fmt.Sprintf("%s%s #%d",
			strings.ToLower(strings.ReplaceAll(category, " ", "")),
			"brand", brandNum)
		price := money(0.09 + s.Float64()*99.0)
		// Prices drift across revisions: the SCD exists so queries can
		// compare sales under old and new pricing (§3.3.2).
		price = money(price * (1 + 0.05*float64(r.rev)))
		wholesale := money(price * (0.4 + s.Float64()*0.4))
		t.Append([]storage.Value{
			storage.Int(r.sk),                 // i_item_sk
			storage.Str(bkey(r.entity)),       // i_item_id (business key)
			storage.DateV(r.recStart),         // i_rec_start_date
			r.recEnd,                          // i_rec_end_date
			storage.Str(wordText(s, 12, 200)), // i_item_desc
			storage.Float(price),              // i_current_price
			storage.Float(wholesale),          // i_wholesale_cost
			storage.Int(brandID),              // i_brand_id
			storage.Str(brand),                // i_brand
			storage.Int(int64(classIdx + 1)),  // i_class_id
			storage.Str(class),                // i_class
			storage.Int(int64(catIdx + 1)),    // i_category_id
			storage.Str(category),             // i_category
			storage.Int(r.entity%1000 + 1),    // i_manufact_id
			storage.Str(fmt.Sprintf("manufact#%d", r.entity%1000+1)), // i_manufact
			storage.Str(pickUniform(s, dist.Sizes)),                  // i_size
			storage.Str(wordText(s, 2, 20)),                          // i_formulation
			storage.Str(pickUniform(s, dist.Colors)),                 // i_color
			storage.Str(pickUniform(s, dist.Units)),                  // i_units
			storage.Str(dist.Containers[0]),                          // i_container
			storage.Int(s.Range(1, 100)),                             // i_manager_id
			storage.Str(wordText(s, 3, 50)),                          // i_product_name
		})
	})
	return t
}

// genCustomerAddress builds customer addresses.
func (g *Generator) genCustomerAddress(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("customer_address", "row")
	n := g.rows("customer_address")
	countyDomain := dist.DomainScale(len(dist.Counties), n)
	for i := int64(1); i <= n; i++ {
		a := genAddress(s, countyDomain)
		row := []storage.Value{storage.Int(i), storage.Str(bkey(i))}
		row = append(row, a.values()...)
		row = append(row, storage.Str(pickUniform(s, dist.LocationTypes)))
		t.Append(row)
	}
	return t
}

// genCustomer builds the customer dimension with frequent-name skew.
func (g *Generator) genCustomer(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("customer", "row")
	n := g.rows("customer")
	nAddr := g.rows("customer_address")
	nCDemo := g.rows("customer_demographics")
	nHDemo := g.rows("household_demographics")
	firstSale := storage.DaysFromYMD(FirstSalesYear, 1, 1)
	for i := int64(1); i <= n; i++ {
		first := pickGaussian(s, dist.FirstNames)
		last := pickGaussian(s, dist.LastNames)
		preferred := "N"
		if s.Intn(2) == 0 {
			preferred = "Y"
		}
		firstSalesDay := firstSale + s.Int63n(365*SalesYears)
		email := fmt.Sprintf("%s.%s@example.com", strings.ToLower(first), strings.ToLower(last))
		t.Append([]storage.Value{
			storage.Int(i),       // c_customer_sk
			storage.Str(bkey(i)), // c_customer_id
			maybeNull(s, 2, storage.Int(1+s.Int63n(nCDemo))),           // c_current_cdemo_sk
			maybeNull(s, 2, storage.Int(1+s.Int63n(nHDemo))),           // c_current_hdemo_sk
			storage.Int(1 + s.Int63n(nAddr)),                           // c_current_addr_sk
			storage.Int(storage.DateSK(firstSalesDay + 30)),            // c_first_shipto_date_sk
			storage.Int(storage.DateSK(firstSalesDay)),                 // c_first_sales_date_sk
			storage.Str(pickUniform(s, dist.Salutations)),              // c_salutation
			storage.Str(first),                                         // c_first_name
			storage.Str(last),                                          // c_last_name
			storage.Str(preferred),                                     // c_preferred_cust_flag
			storage.Int(s.Range(1, 28)),                                // c_birth_day
			storage.Int(s.Range(1, 12)),                                // c_birth_month
			storage.Int(s.Range(1924, 1992)),                           // c_birth_year
			storage.Str(dist.Countries[0]),                             // c_birth_country
			storage.Null,                                               // c_login
			storage.Str(email),                                         // c_email_address
			storage.Int(storage.DateSK(firstSalesDay + s.Int63n(300))), // c_last_review_date_sk
		})
	}
	return t
}

// genStore builds the store dimension (history keeping) with the §3.1
// domain-scaled county list.
func (g *Generator) genStore(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("store", "row")
	n := g.rows("store")
	countyDomain := dist.DomainScale(len(dist.Counties), n)
	forEachSCDRow(s, n, func(r scdRow) {
		a := genAddress(s, countyDomain)
		t.Append([]storage.Value{
			storage.Int(r.sk),           // s_store_sk
			storage.Str(bkey(r.entity)), // s_store_id
			storage.DateV(r.recStart),   // s_rec_start_date
			r.recEnd,                    // s_rec_end_date
			storage.Null,                // s_closed_date_sk
			storage.Str(fmt.Sprintf("%s store #%d", pickUniform(s, dist.Cities), r.entity)), // s_store_name
			storage.Int(s.Range(200, 300)),         // s_number_employees
			storage.Int(s.Range(5000000, 9999999)), // s_floor_space
			storage.Str("8AM-8PM"),                 // s_hours
			storage.Str(pickGaussian(s, dist.FirstNames) + " " + pickGaussian(s, dist.LastNames)), // s_manager
			storage.Int(s.Range(1, 10)),       // s_market_id
			storage.Str("Unknown"),            // s_geography_class
			storage.Str(wordText(s, 10, 100)), // s_market_desc
			storage.Str(pickGaussian(s, dist.FirstNames) + " " + pickGaussian(s, dist.LastNames)), // s_market_manager
			storage.Int(s.Range(1, 5)), // s_division_id
			storage.Str("Unknown"),     // s_division_name
			storage.Int(s.Range(1, 5)), // s_company_id
			storage.Str("Unknown"),     // s_company_name
			storage.Str(a.streetNumber), storage.Str(a.streetName),
			storage.Str(a.streetType), storage.Str(a.suite),
			storage.Str(a.city), storage.Str(a.county), storage.Str(a.state),
			storage.Str(a.zip), storage.Str(a.country),
			storage.Float(a.gmtOffset),               // s_gmt_offset
			storage.Float(money(s.Float64() * 0.11)), // s_tax_percentage
		})
	})
	return t
}

// genCallCenter builds the call-center dimension (history keeping,
// reporting channel).
func (g *Generator) genCallCenter(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("call_center", "row")
	n := g.rows("call_center")
	countyDomain := dist.DomainScale(len(dist.Counties), n)
	openDay := storage.DaysFromYMD(FirstSalesYear-8, 1, 1)
	forEachSCDRow(s, n, func(r scdRow) {
		a := genAddress(s, countyDomain)
		t.Append([]storage.Value{
			storage.Int(r.sk),           // cc_call_center_sk
			storage.Str(bkey(r.entity)), // cc_call_center_id
			storage.DateV(r.recStart),   // cc_rec_start_date
			r.recEnd,                    // cc_rec_end_date
			storage.Null,                // cc_closed_date_sk
			storage.Int(storage.DateSK(openDay + s.Int63n(2000))),                                 // cc_open_date_sk
			storage.Str(fmt.Sprintf("%s center", pickUniform(s, dist.Cities))),                    // cc_name
			storage.Str(pickUniform(s, []string{"small", "medium", "large"})),                     // cc_class
			storage.Int(s.Range(100, 700)),                                                        // cc_employees
			storage.Int(s.Range(10000, 50000)),                                                    // cc_sq_ft
			storage.Str("8AM-8PM"),                                                                // cc_hours
			storage.Str(pickGaussian(s, dist.FirstNames) + " " + pickGaussian(s, dist.LastNames)), // cc_manager
			storage.Int(s.Range(1, 6)),                                                            // cc_mkt_id
			storage.Str(wordText(s, 4, 50)),                                                       // cc_mkt_class
			storage.Str(wordText(s, 10, 100)),                                                     // cc_mkt_desc
			storage.Str(pickGaussian(s, dist.FirstNames) + " " + pickGaussian(s, dist.LastNames)), // cc_market_manager
			storage.Int(s.Range(1, 5)),                                                            // cc_division
			storage.Str(wordText(s, 2, 50)),                                                       // cc_division_name
			storage.Int(s.Range(1, 6)),                                                            // cc_company
			storage.Str(wordText(s, 1, 50)),                                                       // cc_company_name
			storage.Str(a.streetNumber), storage.Str(a.streetName),
			storage.Str(a.streetType), storage.Str(a.suite),
			storage.Str(a.city), storage.Str(a.county), storage.Str(a.state),
			storage.Str(a.zip), storage.Str(a.country),
			storage.Float(a.gmtOffset),
			storage.Float(money(s.Float64() * 0.12)), // cc_tax_percentage
		})
	})
	return t
}

// genCatalogPage builds the catalog-page dimension.
func (g *Generator) genCatalogPage(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("catalog_page", "row")
	n := g.rows("catalog_page")
	start := storage.DaysFromYMD(FirstSalesYear, 1, 1)
	for i := int64(1); i <= n; i++ {
		catalogNumber := (i-1)/108 + 1 // 108 pages per catalog, dsdgen-style
		pageNumber := (i-1)%108 + 1
		pageStart := start + (catalogNumber-1)*30
		t.Append([]storage.Value{
			storage.Int(i),                              // cp_catalog_page_sk
			storage.Str(bkey(i)),                        // cp_catalog_page_id
			storage.Int(storage.DateSK(pageStart)),      // cp_start_date_sk
			storage.Int(storage.DateSK(pageStart + 89)), // cp_end_date_sk
			storage.Str("DEPARTMENT"),                   // cp_department
			storage.Int(catalogNumber),                  // cp_catalog_number
			storage.Int(pageNumber),                     // cp_catalog_page_number
			storage.Str(wordText(s, 8, 100)),            // cp_description
			storage.Str(pickUniform(s, []string{"bi-annual", "quarterly", "monthly"})), // cp_type
		})
	}
	return t
}

// genWebSite builds the web-site dimension (history keeping).
func (g *Generator) genWebSite(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("web_site", "row")
	n := g.rows("web_site")
	countyDomain := dist.DomainScale(len(dist.Counties), n)
	openDay := storage.DaysFromYMD(FirstSalesYear-3, 1, 1)
	forEachSCDRow(s, n, func(r scdRow) {
		a := genAddress(s, countyDomain)
		t.Append([]storage.Value{
			storage.Int(r.sk),           // web_site_sk
			storage.Str(bkey(r.entity)), // web_site_id
			storage.DateV(r.recStart),   // web_rec_start_date
			r.recEnd,                    // web_rec_end_date
			storage.Str(fmt.Sprintf("site_%d", r.entity)),         // web_name
			storage.Int(storage.DateSK(openDay + s.Int63n(1000))), // web_open_date_sk
			storage.Null,           // web_close_date_sk
			storage.Str("Unknown"), // web_class
			storage.Str(pickGaussian(s, dist.FirstNames) + " " + pickGaussian(s, dist.LastNames)), // web_manager
			storage.Int(s.Range(1, 6)),        // web_mkt_id
			storage.Str(wordText(s, 4, 50)),   // web_mkt_class
			storage.Str(wordText(s, 10, 100)), // web_mkt_desc
			storage.Str(pickGaussian(s, dist.FirstNames) + " " + pickGaussian(s, dist.LastNames)), // web_market_manager
			storage.Int(s.Range(1, 6)), // web_company_id
			storage.Str(pickUniform(s, []string{"pri", "sec", "able", "ese", "anti"})), // web_company_name
			storage.Str(a.streetNumber), storage.Str(a.streetName),
			storage.Str(a.streetType), storage.Str(a.suite),
			storage.Str(a.city), storage.Str(a.county), storage.Str(a.state),
			storage.Str(a.zip), storage.Str(a.country),
			storage.Float(a.gmtOffset),
			storage.Float(money(s.Float64() * 0.12)), // web_tax_percentage
		})
	})
	return t
}

// genWebPage builds the web-page dimension (history keeping).
func (g *Generator) genWebPage(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("web_page", "row")
	nCust := g.rows("customer")
	creation := storage.DaysFromYMD(FirstSalesYear, 1, 1)
	forEachSCDRow(s, g.rows("web_page"), func(r scdRow) {
		autogen := "0"
		custVal := storage.Null
		if s.Intn(2) == 0 {
			autogen = "1"
			custVal = storage.Int(1 + s.Int63n(nCust))
		}
		t.Append([]storage.Value{
			storage.Int(r.sk),           // wp_web_page_sk
			storage.Str(bkey(r.entity)), // wp_web_page_id
			storage.DateV(r.recStart),   // wp_rec_start_date
			r.recEnd,                    // wp_rec_end_date
			storage.Int(storage.DateSK(creation + s.Int63n(365))),            // wp_creation_date_sk
			storage.Int(storage.DateSK(creation + s.Int63n(365*SalesYears))), // wp_access_date_sk
			storage.Str(autogen), // wp_autogen_flag
			custVal,              // wp_customer_sk
			storage.Str(fmt.Sprintf("http://www.example.com/page_%d.html", r.entity)),                                      // wp_url
			storage.Str(pickUniform(s, []string{"order", "welcome", "protected", "dynamic", "feedback", "general", "ad"})), // wp_type
			storage.Int(s.Range(100, 8000)), // wp_char_count
			storage.Int(s.Range(1, 25)),     // wp_link_count
			storage.Int(s.Range(1, 7)),      // wp_image_count
			storage.Int(s.Range(0, 4)),      // wp_max_ad_count
		})
	})
	return t
}

// genWarehouse builds the warehouse dimension.
func (g *Generator) genWarehouse(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("warehouse", "row")
	n := g.rows("warehouse")
	countyDomain := dist.DomainScale(len(dist.Counties), n)
	for i := int64(1); i <= n; i++ {
		a := genAddress(s, countyDomain)
		row := []storage.Value{
			storage.Int(i),                       // w_warehouse_sk
			storage.Str(bkey(i)),                 // w_warehouse_id
			storage.Str(wordText(s, 2, 20)),      // w_warehouse_name
			storage.Int(s.Range(50000, 1000000)), // w_warehouse_sq_ft
		}
		row = append(row, a.values()...)
		t.Append(row)
	}
	return t
}

// genPromotion builds the promotion dimension.
func (g *Generator) genPromotion(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	s := g.stream("promotion", "row")
	n := g.rows("promotion")
	nItem := g.rows("item")
	windowStart := storage.DaysFromYMD(FirstSalesYear, 1, 1)
	yn := func() storage.Value {
		if s.Intn(2) == 0 {
			return storage.Str("Y")
		}
		return storage.Str("N")
	}
	for i := int64(1); i <= n; i++ {
		start := windowStart + s.Int63n(365*SalesYears)
		t.Append([]storage.Value{
			storage.Int(i),                                    // p_promo_sk
			storage.Str(bkey(i)),                              // p_promo_id
			storage.Int(storage.DateSK(start)),                // p_start_date_sk
			storage.Int(storage.DateSK(start + s.Int63n(60))), // p_end_date_sk
			storage.Int(1 + s.Int63n(nItem)),                  // p_item_sk
			storage.Float(money(s.Float64() * 1000)),          // p_cost
			storage.Int(s.Range(1, 3)),                        // p_response_target
			storage.Str(pickUniform(s, []string{"ought", "able", "pri", "ese", "anti", "cally", "ation", "eing", "bar"})), // p_promo_name
			yn(), yn(), yn(), yn(), yn(), yn(), yn(), yn(), // p_channel_*
			storage.Str(wordText(s, 6, 100)), // p_channel_details
			storage.Str("Unknown"),           // p_purpose
			yn(),                             // p_discount_active
		})
	}
	return t
}
