package datagen

import (
	"fmt"

	"tpcds/internal/dist"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

var wordsVocab = dist.Words

// genDateDim builds the static calendar dimension: one row per day from
// 1900-01-01 through 2099-12-31 (73049 rows), surrogate key dense in day
// order so DateSK arithmetic works.
func (g *Generator) genDateDim(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	t.Grow(storage.DateDimRows)
	monthSeq, weekSeq, quarterSeq := 0, 1, 0
	prevYear, prevMonth := 0, 0
	for day := int64(0); day < storage.DateDimRows; day++ {
		y, m, d := storage.YMDFromDays(day)
		if y != prevYear || m != prevMonth {
			monthSeq++
			prevYear, prevMonth = y, m
		}
		if storage.Weekday(day) == 0 && day != 0 {
			weekSeq++
		}
		qoy := (m-1)/3 + 1
		quarterSeq = (y-1900)*4 + qoy
		dow := storage.Weekday(day)
		weekend := "N"
		if dow == 0 || dow == 6 {
			weekend = "Y"
		}
		holiday := "N"
		if (m == 12 && d == 25) || (m == 1 && d == 1) || (m == 7 && d == 4) || (m == 11 && d >= 22 && d <= 28 && dow == 4) {
			holiday = "Y"
		}
		firstDOM := storage.DaysFromYMD(y, m, 1)
		lastDOM := firstDOM + int64(daysInMonthOf(y, m)) - 1
		t.Append([]storage.Value{
			storage.Int(storage.DateSK(day)),          // d_date_sk
			storage.Str(bkey(storage.DateSK(day))),    // d_date_id
			storage.DateV(day),                        // d_date
			storage.Int(int64(monthSeq)),              // d_month_seq
			storage.Int(int64(weekSeq)),               // d_week_seq
			storage.Int(int64(quarterSeq)),            // d_quarter_seq
			storage.Int(int64(y)),                     // d_year
			storage.Int(int64(dow)),                   // d_dow
			storage.Int(int64(m)),                     // d_moy
			storage.Int(int64(d)),                     // d_dom
			storage.Int(int64(qoy)),                   // d_qoy
			storage.Int(int64(y)),                     // d_fy_year
			storage.Int(int64(quarterSeq)),            // d_fy_quarter_seq
			storage.Int(int64(weekSeq)),               // d_fy_week_seq
			storage.Str(storage.DayName(day)),         // d_day_name
			storage.Str(fmt.Sprintf("%dQ%d", y, qoy)), // d_quarter_name
			storage.Str(holiday),                      // d_holiday
			storage.Str(weekend),                      // d_weekend
			storage.Str("N"),                          // d_following_holiday
			storage.Int(storage.DateSK(firstDOM)),     // d_first_dom
			storage.Int(storage.DateSK(lastDOM)),      // d_last_dom
			storage.Int(storage.DateSK(day) - 365),    // d_same_day_ly
			storage.Int(storage.DateSK(day) - 91),     // d_same_day_lq
			storage.Str("N"), storage.Str("N"),        // d_current_day, d_current_week
			storage.Str("N"), storage.Str("N"), // d_current_month, d_current_quarter
			storage.Str("N"), // d_current_year
		})
	}
	return t
}

func daysInMonthOf(year, month int) int {
	days := [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	if month == 2 && storage.IsLeapYear(year) {
		return 29
	}
	return days[month-1]
}

// genTimeDim builds the static time-of-day dimension: one row per second
// of a day (86400 rows).
func (g *Generator) genTimeDim(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	t.Grow(86400)
	for sec := int64(0); sec < 86400; sec++ {
		h := sec / 3600
		m := (sec % 3600) / 60
		s := sec % 60
		amPM := "AM"
		if h >= 12 {
			amPM = "PM"
		}
		shift := "first"
		switch {
		case h >= 8 && h < 16:
			shift = "second"
		case h >= 16:
			shift = "third"
		}
		meal := ""
		switch {
		case h >= 6 && h < 9:
			meal = "breakfast"
		case h >= 11 && h < 14:
			meal = "lunch"
		case h >= 17 && h < 21:
			meal = "dinner"
		}
		mealVal := storage.Null
		if meal != "" {
			mealVal = storage.Str(meal)
		}
		t.Append([]storage.Value{
			storage.Int(sec + 1),       // t_time_sk
			storage.Str(bkey(sec + 1)), // t_time_id
			storage.Int(sec),           // t_time
			storage.Int(h),             // t_hour
			storage.Int(m),             // t_minute
			storage.Int(s),             // t_second
			storage.Str(amPM),          // t_am_pm
			storage.Str(shift),         // t_shift
			storage.Str(shift),         // t_sub_shift
			mealVal,                    // t_meal_time
		})
	}
	return t
}

// genIncomeBand builds the 20 income bands of 10,000 each.
func (g *Generator) genIncomeBand(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	for i := int64(1); i <= g.rows("income_band"); i++ {
		lower := (i - 1) * 10000
		if i > 1 {
			lower++
		}
		t.Append([]storage.Value{
			storage.Int(i),
			storage.Int(lower),
			storage.Int(i * 10000),
		})
	}
	return t
}

// genCustomerDemographics builds the full demographic cross product
// (1,920,800 rows = 2 genders x 5 marital x 7 education x 20 purchase
// estimates x 4 credit ratings x 7^3 dependent counts).
func (g *Generator) genCustomerDemographics(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	t.Grow(1_920_800)
	sk := int64(1)
	for _, gender := range dist.Genders {
		for _, ms := range dist.MaritalStatuses {
			for _, edu := range dist.EducationStatuses {
				for pe := 500; pe <= 10000; pe += 500 {
					for _, cr := range dist.CreditRatings {
						for depCount := 0; depCount < 7; depCount++ {
							for depEmp := 0; depEmp < 7; depEmp++ {
								for depCol := 0; depCol < 7; depCol++ {
									t.Append([]storage.Value{
										storage.Int(sk),
										storage.Str(gender),
										storage.Str(ms),
										storage.Str(edu),
										storage.Int(int64(pe)),
										storage.Str(cr),
										storage.Int(int64(depCount)),
										storage.Int(int64(depEmp)),
										storage.Int(int64(depCol)),
									})
									sk++
								}
							}
						}
					}
				}
			}
		}
	}
	return t
}

// genHouseholdDemographics builds the 7200-row household cross product
// (20 income bands x 6 buy potentials x 10 dep counts x 6 vehicles).
func (g *Generator) genHouseholdDemographics(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	sk := int64(1)
	for ib := int64(1); ib <= 20; ib++ {
		for _, bp := range dist.BuyPotentials {
			for dep := 0; dep < 10; dep++ {
				for veh := 0; veh < 6; veh++ {
					t.Append([]storage.Value{
						storage.Int(sk),
						storage.Int(ib),
						storage.Str(bp),
						storage.Int(int64(dep)),
						storage.Int(int64(veh)),
					})
					sk++
				}
			}
		}
	}
	return t
}

// genReason builds the return-reason dimension; the domain scales mildly
// with SF (Table 2 regime for small dimensions).
func (g *Generator) genReason(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	n := g.rows("reason")
	for i := int64(1); i <= n; i++ {
		desc := dist.ReasonDescs[int(i-1)%len(dist.ReasonDescs)]
		if int(i) > len(dist.ReasonDescs) {
			desc = fmt.Sprintf("%s (%d)", desc, i)
		}
		t.Append([]storage.Value{
			storage.Int(i),
			storage.Str(bkey(i)),
			storage.Str(desc),
		})
	}
	return t
}

// genShipMode builds the 20-row ship mode dimension (5 types x 4 codes).
func (g *Generator) genShipMode(def *schema.Table) *storage.Table {
	t := storage.NewTable(def)
	sk := int64(1)
	for _, typ := range dist.ShipModeTypes {
		for ci, code := range dist.ShipModeCodes {
			carrier := dist.Carriers[(int(sk)-1)%len(dist.Carriers)]
			t.Append([]storage.Value{
				storage.Int(sk),
				storage.Str(bkey(sk)),
				storage.Str(typ),
				storage.Str(code),
				storage.Str(carrier),
				storage.Str(fmt.Sprintf("contract-%d-%d", sk, ci)),
			})
			sk++
		}
	}
	return t
}
