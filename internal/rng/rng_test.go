package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestSeekMatchesSequential(t *testing.T) {
	seq := NewStream(7)
	var want []uint64
	for i := 0; i < 100; i++ {
		want = append(want, seq.Uint64())
	}
	for i := 0; i < 100; i++ {
		s := NewStream(7)
		s.Seek(uint64(i))
		if got := s.Uint64(); got != want[i] {
			t.Fatalf("Seek(%d) produced %d, sequential produced %d", i, got, want[i])
		}
	}
}

func TestChunkedEqualsSequential(t *testing.T) {
	// The MUDD property: generating [0,n) in chunks equals generating it
	// sequentially. This is what allows parallel table generation.
	const n = 1000
	seq := NewStream(99)
	var want []uint64
	for i := 0; i < n; i++ {
		want = append(want, seq.Uint64())
	}
	var got []uint64
	for start := 0; start < n; start += 137 {
		end := start + 137
		if end > n {
			end = n
		}
		chunk := NewStream(99).At(uint64(start))
		for i := start; i < end; i++ {
			got = append(got, chunk.Uint64())
		}
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("chunked generation diverged at %d", i)
		}
	}
}

func TestColumnSeedsIndependent(t *testing.T) {
	seen := map[uint64]string{}
	tables := []string{"store_sales", "store_returns", "item", "customer"}
	cols := []string{"a", "b", "c", "quantity", "price"}
	for _, tb := range tables {
		for _, c := range cols {
			s := ColumnSeed(1, tb, c)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s.%s and %s", tb, c, prev)
			}
			seen[s] = tb + "." + c
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) out of range: %d", v)
		}
	}
}

func TestRangeInclusive(t *testing.T) {
	s := NewStream(5)
	seenLo, seenHi := false, false
	for i := 0; i < 100000; i++ {
		v := s.Range(10, 13)
		if v < 10 || v > 13 {
			t.Fatalf("Range(10,13) out of range: %d", v)
		}
		if v == 10 {
			seenLo = true
		}
		if v == 13 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("Range never produced an endpoint")
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(5,4) did not panic")
		}
	}()
	NewStream(1).Range(5, 4)
}

func TestNormMoments(t *testing.T) {
	// Figure 3 of the paper uses a Normal with mu=200 sigma=50; verify the
	// sample moments of our generator are close.
	s := NewStream(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm(200, 50)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-200) > 1 {
		t.Fatalf("sample mean %.2f too far from 200", mean)
	}
	if math.Abs(math.Sqrt(variance)-50) > 1 {
		t.Fatalf("sample stddev %.2f too far from 50", math.Sqrt(variance))
	}
}

func TestGaussianIndexBounds(t *testing.T) {
	s := NewStream(8)
	counts := make([]int, 11)
	for i := 0; i < 50000; i++ {
		counts[s.GaussianIndex(11)]++
	}
	// Middle bucket should be the most common.
	maxIdx := 0
	for i, c := range counts {
		if c > counts[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx < 4 || maxIdx > 6 {
		t.Fatalf("Gaussian mode at %d, want near center of [0,11)", maxIdx)
	}
}

func TestPoissonMean(t *testing.T) {
	s := NewStream(9)
	const n = 100000
	var sum int
	for i := 0; i < n; i++ {
		sum += s.Poisson(10.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-10.5) > 0.1 {
		t.Fatalf("Poisson sample mean %.3f, want ~10.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(10)
	out := make([]int, 99)
	s.Perm(out)
	seen := make([]bool, 99)
	for _, v := range out {
		if v < 0 || v >= 99 || seen[v] {
			t.Fatalf("Perm output invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestPermDiffersAcrossStreams(t *testing.T) {
	a := make([]int, 99)
	b := make([]int, 99)
	NewStream(1).Perm(a)
	NewStream(2).Perm(b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestPickWeighted(t *testing.T) {
	s := NewStream(11)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.PickWeighted(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %.2f, want ~3", ratio)
	}
}

func TestPickWeightedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PickWeighted with zero total did not panic")
		}
	}()
	NewStream(1).PickWeighted([]float64{0, 0})
}

// Property: Seek(p) then k draws equals p+k sequential draws, for all p, k.
func TestQuickSeekProperty(t *testing.T) {
	f := func(seed uint64, p uint16, k uint8) bool {
		seq := NewStream(seed)
		seq.Seek(uint64(p) + uint64(k))
		want := seq.Uint64()

		s := NewStream(seed)
		s.Seek(uint64(p))
		for i := 0; i < int(k); i++ {
			s.Uint64()
		}
		return s.Uint64() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: different seeds almost never produce the same first value.
func TestQuickSeedSeparation(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return NewStream(a).Uint64() != NewStream(b).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse chi-square goodness-of-fit over 64 buckets.
	s := NewStream(12)
	const n = 64000
	counts := make([]int, 64)
	for i := 0; i < n; i++ {
		counts[s.Intn(64)]++
	}
	expected := float64(n) / 64
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 dof; 99.9th percentile ~ 103. Anything below is plausible.
	if chi2 > 110 {
		t.Fatalf("chi-square %.1f indicates non-uniform output", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := NewStream(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := NewStream(1)
	for i := 0; i < b.N; i++ {
		s.Norm(200, 50)
	}
}
