// Package rng implements the deterministic random-number substrate of the
// TPC-DS data and query generators.
//
// The paper ("The Making of TPC-DS", VLDB 2006, §3) requires that the data
// generator and the query generator be tightly coupled and that generation
// be repeatable: every run of the benchmark must produce the identical data
// set and comparable query substitutions. The original dsdgen achieves this
// (following the MUDD generator, Stephens & Poess, WOSP 2004) by assigning an
// independent, seekable random stream to every (table, column) pair so that
// tables can be generated in parallel chunks without consuming values from
// one another's sequences.
//
// This package reproduces that design: Stream is a counter-based generator
// (SplitMix64 core) that can Seek to an absolute row position in O(1),
// making chunked parallel generation bit-identical to sequential generation.
package rng

import "math"

// Stream is a deterministic, seekable pseudo-random stream. The zero value
// is a valid stream seeded with 0 at position 0, but streams are normally
// created with NewStream so that every (table, column) pair draws from an
// independent sequence.
//
// Stream is not safe for concurrent use; clone one per goroutine with At.
type Stream struct {
	seed uint64 // stream identity (never changes)
	pos  uint64 // next value index
}

// NewStream returns a stream whose sequence is determined solely by seed.
func NewStream(seed uint64) *Stream {
	return &Stream{seed: seed}
}

// ColumnSeed derives a stable seed for a (table, column) pair from the
// global benchmark seed. Different pairs get well-separated sequences.
func ColumnSeed(global uint64, table, column string) uint64 {
	h := global
	h = mix64(h ^ hashString(table))
	h = mix64(h ^ hashString(column))
	return h
}

func hashString(s string) uint64 {
	// FNV-1a, 64 bit.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche function.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seek positions the stream so that the next Uint64 returns value number
// pos of the sequence. Seeking is O(1); this is what allows chunked,
// parallel table generation to be bit-identical to sequential generation.
func (s *Stream) Seek(pos uint64) { s.pos = pos }

// Pos reports the index of the next value to be produced.
func (s *Stream) Pos() uint64 { return s.pos }

// At returns a new independent Stream with the same seed positioned at pos.
func (s *Stream) At(pos uint64) *Stream { return &Stream{seed: s.seed, pos: pos} }

// Uint64 returns the next value of the sequence.
func (s *Stream) Uint64() uint64 {
	v := mix64(s.seed + 0x632be59bd9b4e019*(s.pos+1))
	s.pos++
	return v
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi] inclusive. It panics if hi < lo.
func (s *Stream) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Int63n(hi-lo+1)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform. One uniform pair is
// consumed per call so the stream position advances deterministically.
func (s *Stream) Norm(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// GaussianIndex returns an index in [0, n) drawn from a truncated normal
// centered on the middle of the range. TPC-DS uses Gaussian word selection
// for many text columns (paper §3.2: "word selections with a Gaussian
// distribution").
func (s *Stream) GaussianIndex(n int) int {
	if n <= 0 {
		panic("rng: GaussianIndex with non-positive n")
	}
	mean := float64(n-1) / 2
	stddev := float64(n) / 6 // ±3σ covers the range
	for {
		v := s.Norm(mean, stddev)
		i := int(math.Round(v))
		if i >= 0 && i < n {
			return i
		}
	}
}

// Exponential returns an exponentially distributed value with the given
// rate parameter lambda.
func (s *Stream) Exponential(lambda float64) float64 {
	u := s.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -math.Log(u) / lambda
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's algorithm (suitable for the small means used by the generator,
// e.g. items per shopping cart).
func (s *Stream) Poisson(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm fills out with a deterministic permutation of [0, len(out)) using
// the Fisher-Yates shuffle. Used for per-stream query orderings (§5.2).
func (s *Stream) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// PickWeighted returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if the total weight is not
// positive. This is the core primitive behind the comparability-zone
// distributions of §3.2.
func (s *Stream) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: non-positive total weight")
	}
	target := s.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
