package queries

import (
	"strings"
	"testing"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/qgen"
	"tpcds/internal/sql"
)

// The shared engine runs over a small generated database; building it
// once keeps the 99-template execution test fast.
var sharedEngine = exec.New(datagen.New(0.0005, 11).GenerateAll())

func TestNinetyNineDistinctTemplates(t *testing.T) {
	all := All()
	if len(all) != Count || Count != 99 {
		t.Fatalf("template count = %d, want 99", len(all))
	}
	seenID := map[int]bool{}
	seenSQL := map[string]bool{}
	seenName := map[string]bool{}
	for i, tpl := range all {
		if tpl.ID != i+1 {
			t.Errorf("template at index %d has ID %d, want dense 1..99", i, tpl.ID)
		}
		if seenID[tpl.ID] {
			t.Errorf("duplicate template ID %d", tpl.ID)
		}
		seenID[tpl.ID] = true
		norm := strings.Join(strings.Fields(tpl.SQL), " ")
		if seenSQL[norm] {
			t.Errorf("template %d duplicates another template's SQL", tpl.ID)
		}
		seenSQL[norm] = true
		if tpl.Name == "" || seenName[tpl.Name] {
			t.Errorf("template %d has missing or duplicate name %q", tpl.ID, tpl.Name)
		}
		seenName[tpl.Name] = true
	}
}

// TestAllTemplatesParse: every instantiated template must be valid SQL
// for the engine's front end.
func TestAllTemplatesParse(t *testing.T) {
	for _, tpl := range All() {
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			t.Errorf("template %d: instantiate: %v", tpl.ID, err)
			continue
		}
		if strings.Contains(text, "[") {
			t.Errorf("template %d: unsubstituted token remains: %s", tpl.ID, text)
		}
		if _, err := sql.Parse(text); err != nil {
			t.Errorf("template %d: parse: %v", tpl.ID, err)
		}
	}
}

// TestAllTemplatesExecute runs every template against the generated
// database with two different substitution streams — the benchmark's
// core execution property.
func TestAllTemplatesExecute(t *testing.T) {
	for _, tpl := range All() {
		for _, stream := range []int{0, 1} {
			text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, stream, tpl.ID))
			if err != nil {
				t.Fatalf("template %d stream %d: %v", tpl.ID, stream, err)
			}
			if _, err := sharedEngine.Query(text); err != nil {
				t.Errorf("template %d stream %d failed: %v", tpl.ID, stream, err)
			}
		}
	}
}

// TestClassMix verifies the §2.2 classification: the set contains
// genuine ad-hoc, reporting and hybrid queries, with the catalog channel
// (reporting part) carrying a substantial share — the paper allots it
// 25% of the data set.
func TestClassMix(t *testing.T) {
	counts := map[qgen.Class]int{}
	for _, tpl := range All() {
		counts[qgen.ClassOf(tpl)]++
	}
	if counts[qgen.AdHoc] < 30 {
		t.Errorf("ad-hoc queries = %d, want a majority share (>=30)", counts[qgen.AdHoc])
	}
	if counts[qgen.Reporting] < 20 {
		t.Errorf("reporting queries = %d, want >=20", counts[qgen.Reporting])
	}
	if counts[qgen.Hybrid] < 5 {
		t.Errorf("hybrid queries = %d, want >=5", counts[qgen.Hybrid])
	}
	if counts[qgen.AdHoc]+counts[qgen.Reporting]+counts[qgen.Hybrid] != 99 {
		t.Errorf("class counts %v do not sum to 99", counts)
	}
}

// TestPaperQueriesPresent: Query 52 (Figure 6) and Query 20 (Figure 7)
// appear under their paper numbers with their defining shapes.
func TestPaperQueriesPresent(t *testing.T) {
	q52, err := ByID(52)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"i_brand_id", "ss_ext_sales_price", "i_manager_id", "d_moy"} {
		if !strings.Contains(q52.SQL, want) {
			t.Errorf("query 52 missing %q", want)
		}
	}
	if qgen.ClassOf(q52) != qgen.AdHoc {
		t.Errorf("query 52 class = %v, want ad-hoc", qgen.ClassOf(q52))
	}
	q20, err := ByID(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OVER (PARTITION BY i_class)", "catalog_sales", "revenueratio"} {
		if !strings.Contains(q20.SQL, want) {
			t.Errorf("query 20 missing %q", want)
		}
	}
	if qgen.ClassOf(q20) != qgen.Reporting {
		t.Errorf("query 20 class = %v, want reporting", qgen.ClassOf(q20))
	}
}

// TestTaxonomyCoverage: iterative OLAP sequences and data mining
// extracts exist (§4.1).
func TestTaxonomyCoverage(t *testing.T) {
	seqs := map[int][]int{}
	mining := 0
	for _, tpl := range All() {
		if tpl.Type == qgen.IterativeOLAP {
			if tpl.Sequence == 0 {
				t.Errorf("iterative template %d lacks a sequence number", tpl.ID)
			}
			seqs[tpl.Sequence] = append(seqs[tpl.Sequence], tpl.ID)
		}
		if tpl.Type == qgen.DataMining {
			mining++
			if !strings.Contains(tpl.SQL, "LIMIT") {
				t.Errorf("mining template %d should bound its large output", tpl.ID)
			}
		}
	}
	if len(seqs) < 3 {
		t.Errorf("iterative sequences = %d, want >=3", len(seqs))
	}
	for seq, ids := range seqs {
		if len(ids) < 2 {
			t.Errorf("iterative sequence %d has only %d steps", seq, len(ids))
		}
	}
	if mining < 3 {
		t.Errorf("data mining templates = %d, want >=3", mining)
	}
}

// TestSQLFeatureCoverage: the template set exercises the SQL-99 surface
// the paper claims (§4.1): windows, CTEs, set operations, CASE,
// subqueries, HAVING, DISTINCT aggregates.
func TestSQLFeatureCoverage(t *testing.T) {
	features := map[string]int{}
	for _, tpl := range All() {
		u := strings.ToUpper(tpl.SQL)
		if strings.Contains(u, "OVER (PARTITION BY") {
			features["window"]++
		}
		if strings.Contains(u, "WITH ") {
			features["cte"]++
		}
		if strings.Contains(u, "UNION ALL") {
			features["union"]++
		}
		if strings.Contains(u, "CASE WHEN") {
			features["case"]++
		}
		if strings.Contains(u, "HAVING") {
			features["having"]++
		}
		if strings.Contains(u, "COUNT(DISTINCT") {
			features["count-distinct"]++
		}
		if strings.Contains(u, "IN (SELECT") {
			features["in-subquery"]++
		}
		if strings.Contains(u, "> (SELECT") {
			features["scalar-subquery"]++
		}
		if strings.Contains(u, "LEFT OUTER JOIN") {
			features["left-join"]++
		}
		if strings.Contains(u, "BETWEEN") {
			features["between"]++
		}
	}
	for _, f := range []string{"window", "cte", "union", "case", "having",
		"count-distinct", "in-subquery", "scalar-subquery", "left-join", "between"} {
		if features[f] == 0 {
			t.Errorf("no template exercises %s", f)
		}
	}
}

// TestSubstitutionDeterminism: the same stream produces the same SQL;
// different streams differ somewhere across the set.
func TestSubstitutionDeterminism(t *testing.T) {
	tpl, _ := ByID(52)
	a, _ := qgen.Instantiate(tpl, qgen.StreamSeed(7, 3, 52))
	b, _ := qgen.Instantiate(tpl, qgen.StreamSeed(7, 3, 52))
	if a != b {
		t.Error("identical streams produced different substitutions")
	}
	diff := false
	for _, tplX := range All() {
		x, _ := qgen.Instantiate(tplX, qgen.StreamSeed(7, 3, tplX.ID))
		y, _ := qgen.Instantiate(tplX, qgen.StreamSeed(7, 4, tplX.ID))
		if x != y {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different streams never changed any substitution")
	}
}

// TestSubstitutionComparability reproduces the Figure 4 discussion: for
// a zone-bound template the number of qualifying rows must be nearly
// identical across substitutions, while substitutions crossing zone
// boundaries diverge. A dedicated larger sample (SF 0.005) smooths the
// ticket-level date clustering of the generator.
func TestSubstitutionComparability(t *testing.T) {
	eng := exec.New(datagen.New(0.005, 3).GenerateAll())
	count := func(moy int) int {
		res, err := eng.Query(
			"SELECT COUNT(*) c FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk" +
				" AND d_moy = " + itoa(moy))
		if err != nil {
			t.Fatal(err)
		}
		return int(res.Rows[0][0].AsInt())
	}
	nov, dec := count(11), count(12) // both zone 3
	jun := count(6)                  // zone 1
	if nov == 0 || dec == 0 || jun == 0 {
		t.Fatal("empty months at SF 0.005; generator seasonality broken")
	}
	withinZone := ratio(nov, dec)
	acrossZone := ratio(jun, dec)
	if withinZone > 1.4 {
		t.Errorf("zone-3 months differ by %.2fx; comparability zone broken", withinZone)
	}
	if acrossZone < 1.4 {
		t.Errorf("across-zone spread only %.2fx; zones should separate (census Dec ~1.9x Jun)",
			acrossZone)
	}
	if acrossZone <= withinZone {
		t.Errorf("across-zone spread (%.2fx) should exceed within-zone spread (%.2fx)",
			acrossZone, withinZone)
	}
}

func ratio(a, b int) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 1e9
	}
	return float64(a) / float64(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestByIDErrors(t *testing.T) {
	if _, err := ByID(0); err == nil {
		t.Error("ByID(0) should fail")
	}
	if _, err := ByID(100); err == nil {
		t.Error("ByID(100) should fail")
	}
}

func TestPermutationsDiffer(t *testing.T) {
	p0 := qgen.Permutation(1, 0, 99)
	p1 := qgen.Permutation(1, 1, 99)
	same := true
	for i := range p0 {
		if p0[i] != p1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("streams share a query permutation")
	}
}
