package queries

import "tpcds/internal/qgen"

// templatesB: IDs 26-50. Catalog-channel reporting queries (the part of
// the schema where auxiliary structures are allowed, §2.2) plus returns
// analysis.
func templatesB() []qgen.Template {
	return []qgen.Template{
		{ID: 26, Name: "catalog_demographic_profile", SQL: `
SELECT i_item_id, AVG(cs_quantity) agg1, AVG(cs_list_price) agg2,
       AVG(cs_coupon_amt) agg3, AVG(cs_sales_price) agg4
FROM catalog_sales, customer_demographics, date_dim, item
WHERE cs_sold_date_sk = d_date_sk
  AND cs_item_sk = i_item_sk
  AND cs_bill_cdemo_sk = cd_demo_sk
  AND cd_gender = [GENDER]
  AND cd_marital_status = [MARITAL]
  AND cd_education_status = [EDUCATION]
  AND d_year = [YEAR]
GROUP BY i_item_id
ORDER BY i_item_id
LIMIT 100`},

		{ID: 27, Name: "call_center_revenue", SQL: `
SELECT cc_name, cc_manager, SUM(cs_net_paid) net, COUNT(*) orders
FROM catalog_sales, call_center, date_dim
WHERE cs_call_center_sk = cc_call_center_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY cc_name, cc_manager
ORDER BY net DESC`},

		{ID: 28, Name: "catalog_page_performance", SQL: `
SELECT cp_catalog_number, cp_catalog_page_number,
       SUM(cs_ext_sales_price) revenue, COUNT(*) line_items
FROM catalog_sales, catalog_page
WHERE cs_catalog_page_sk = cp_catalog_page_sk
GROUP BY cp_catalog_number, cp_catalog_page_number
ORDER BY revenue DESC
LIMIT 50`},

		{ID: 29, Name: "ship_mode_latency", SQL: `
SELECT sm_type, sm_carrier, COUNT(*) shipments,
       AVG(cs_ship_date_sk - cs_sold_date_sk) avg_ship_days
FROM catalog_sales, ship_mode, date_dim
WHERE cs_ship_mode_sk = sm_ship_mode_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z2]
GROUP BY sm_type, sm_carrier
ORDER BY avg_ship_days DESC`},

		{ID: 30, Name: "warehouse_catalog_throughput", SQL: `
SELECT w_warehouse_name, w_state, SUM(cs_quantity) units, SUM(cs_net_paid) net
FROM catalog_sales, warehouse, date_dim
WHERE cs_warehouse_sk = w_warehouse_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY w_warehouse_name, w_state
ORDER BY net DESC`},

		{ID: 31, Name: "catalog_returns_by_reason", SQL: `
SELECT r_reason_desc, COUNT(*) cnt, SUM(cr_return_amount) amount
FROM catalog_returns, reason
WHERE cr_reason_sk = r_reason_sk
GROUP BY r_reason_desc
ORDER BY amount DESC
LIMIT 30`},

		{ID: 32, Name: "catalog_seasonality", SQL: `
SELECT d_year, d_moy, SUM(cs_ext_sales_price) revenue
FROM catalog_sales, date_dim
WHERE cs_sold_date_sk = d_date_sk
GROUP BY d_year, d_moy
ORDER BY d_year, d_moy`},

		{ID: 33, Name: "catalog_top_items_window", SQL: `
SELECT i_category, i_item_id, SUM(cs_ext_sales_price) rev,
       SUM(SUM(cs_ext_sales_price)) OVER (PARTITION BY i_category) cat_rev
FROM catalog_sales, item
WHERE cs_item_sk = i_item_sk
  AND i_category IN ([CATEGORY3])
GROUP BY i_category, i_item_id
ORDER BY i_category, rev DESC
LIMIT 100`},

		{ID: 34, Name: "catalog_order_sizes", SQL: `
SELECT cs_order_number, COUNT(*) line_items, SUM(cs_quantity) units,
       SUM(cs_net_paid_inc_ship_tax) order_total
FROM catalog_sales, date_dim
WHERE cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z3]
GROUP BY cs_order_number
HAVING SUM(cs_quantity) > [QTY]
ORDER BY order_total DESC
LIMIT 100`},

		{ID: 35, Name: "catalog_state_demographics", SQL: `
SELECT ca_state, cd_gender, COUNT(*) cnt, AVG(cs_net_paid) avg_paid
FROM catalog_sales, customer_address, customer_demographics
WHERE cs_bill_addr_sk = ca_address_sk
  AND cs_bill_cdemo_sk = cd_demo_sk
  AND ca_state IN ([STATE5])
GROUP BY ca_state, cd_gender
ORDER BY ca_state, cd_gender`},

		{ID: 36, Name: "catalog_margin_by_class", SQL: `
SELECT i_category, i_class,
       SUM(cs_net_profit) / SUM(cs_ext_sales_price) gross_margin
FROM catalog_sales, item, date_dim
WHERE cs_item_sk = i_item_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
  AND i_category IN ([CATEGORY3])
GROUP BY i_category, i_class
ORDER BY gross_margin, i_category, i_class
LIMIT 100`},

		{ID: 37, Name: "catalog_inventory_pressure", SQL: `
SELECT i_item_id, i_item_desc, i_current_price
FROM item, inventory, date_dim
WHERE inv_item_sk = i_item_sk
  AND inv_date_sk = d_date_sk
  AND i_current_price BETWEEN [PRICE] AND [PRICE] + 30
  AND d_year = [YEAR]
  AND inv_quantity_on_hand BETWEEN 100 AND 500
GROUP BY i_item_id, i_item_desc, i_current_price
ORDER BY i_item_id
LIMIT 100`},

		{ID: 38, Name: "catalog_promo_share", SQL: `
SELECT p_channel_catalog, COUNT(*) cnt, SUM(cs_ext_sales_price) revenue
FROM catalog_sales, promotion, date_dim
WHERE cs_promo_sk = p_promo_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY p_channel_catalog
ORDER BY p_channel_catalog`},

		{ID: 39, Name: "warehouse_inventory_variance", SQL: `
SELECT w_warehouse_name, i_item_id,
       AVG(inv_quantity_on_hand) mean_qty, STDDEV_SAMP(inv_quantity_on_hand) sd_qty
FROM inventory, warehouse, item, date_dim
WHERE inv_warehouse_sk = w_warehouse_sk
  AND inv_item_sk = i_item_sk
  AND inv_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY w_warehouse_name, i_item_id
HAVING STDDEV_SAMP(inv_quantity_on_hand) > 100
ORDER BY w_warehouse_name, i_item_id
LIMIT 100`},

		{ID: 40, Name: "catalog_returned_value_by_warehouse", SQL: `
SELECT w_state, i_item_id, SUM(cr_return_amount) returned
FROM catalog_returns, warehouse, item, date_dim
WHERE cr_warehouse_sk = w_warehouse_sk
  AND cr_item_sk = i_item_sk
  AND cr_returned_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY w_state, i_item_id
ORDER BY returned DESC
LIMIT 100`},

		{ID: 41, Name: "current_item_revisions", SQL: `
SELECT i_category, COUNT(*) current_items, AVG(i_current_price) avg_price
FROM item
WHERE i_rec_end_date IS NULL
  AND i_category IN ([CATEGORY3])
GROUP BY i_category
ORDER BY i_category`},

		{ID: 42, Name: "catalog_hour_profile", SQL: `
SELECT t_hour, COUNT(*) cnt, SUM(cs_ext_sales_price) revenue
FROM catalog_sales, time_dim, date_dim
WHERE cs_sold_time_sk = t_time_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z1]
GROUP BY t_hour
ORDER BY t_hour`},

		{ID: 43, Name: "catalog_vs_average_price", SQL: `
SELECT i_item_id, i_current_price
FROM item
WHERE i_current_price > (SELECT AVG(i_current_price) * 1.2 FROM item)
  AND i_category = [CATEGORY]
ORDER BY i_current_price DESC, i_item_id
LIMIT 100`},

		{ID: 44, Name: "catalog_big_spenders", SQL: `
SELECT c_customer_id, c_first_name, c_last_name, SUM(cs_net_paid) paid
FROM catalog_sales, customer, date_dim
WHERE cs_bill_customer_sk = c_customer_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY c_customer_id, c_first_name, c_last_name
ORDER BY paid DESC, c_customer_id
LIMIT 50`},

		{ID: 45, Name: "catalog_zip_revenue", SQL: `
SELECT ca_zip, SUM(cs_sales_price) total
FROM catalog_sales, customer, customer_address, date_dim
WHERE cs_bill_customer_sk = c_customer_sk
  AND c_current_addr_sk = ca_address_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_qoy = 1 AND d_year = [YEAR]
GROUP BY ca_zip
ORDER BY total DESC, ca_zip
LIMIT 100`},

		{ID: 46, Name: "catalog_fact_to_fact_returns", SQL: `
SELECT i_item_id, COUNT(*) returned_lines,
       SUM(cr_return_quantity) ret_qty, SUM(cs_quantity) sold_qty
FROM catalog_sales, catalog_returns, item
WHERE cr_item_sk = cs_item_sk
  AND cr_order_number = cs_order_number
  AND cs_item_sk = i_item_sk
GROUP BY i_item_id
ORDER BY returned_lines DESC, i_item_id
LIMIT 100`},

		{ID: 47, Name: "mining_catalog_order_extract", Type: qgen.DataMining, SQL: `
SELECT cs_order_number, cs_item_sk, cs_quantity, cs_wholesale_cost,
       cs_list_price, cs_sales_price, cs_ext_discount_amt, cs_ext_tax,
       cs_net_paid, cs_net_profit, d_date, d_day_name
FROM catalog_sales, date_dim
WHERE cs_sold_date_sk = d_date_sk AND d_year = [YEAR]
ORDER BY cs_order_number, cs_item_sk
LIMIT 10000`},

		// Iterative OLAP sequence 2: call-center performance drill.
		{ID: 48, Name: "drill_cc_yearly", Type: qgen.IterativeOLAP, Sequence: 2, SQL: `
SELECT cc_name, d_year, SUM(cs_net_paid) net
FROM catalog_sales, call_center, date_dim
WHERE cs_call_center_sk = cc_call_center_sk
  AND cs_sold_date_sk = d_date_sk
GROUP BY cc_name, d_year
ORDER BY cc_name, d_year`},

		{ID: 49, Name: "drill_cc_monthly", Type: qgen.IterativeOLAP, Sequence: 2, SQL: `
SELECT cc_name, d_moy, SUM(cs_net_paid) net
FROM catalog_sales, call_center, date_dim
WHERE cs_call_center_sk = cc_call_center_sk
  AND cs_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY cc_name, d_moy
ORDER BY cc_name, d_moy`},

		{ID: 50, Name: "catalog_bill_ship_state_mismatch", SQL: `
SELECT bill.ca_state bill_state, COUNT(*) cnt, SUM(cs_net_paid) net
FROM catalog_sales, customer_address bill, customer_address ship
WHERE cs_bill_addr_sk = bill.ca_address_sk
  AND cs_ship_addr_sk = ship.ca_address_sk
  AND bill.ca_state <> ship.ca_state
GROUP BY bill.ca_state
ORDER BY net DESC
LIMIT 50`},
	}
}
