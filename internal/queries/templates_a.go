package queries

import "tpcds/internal/qgen"

// templatesA: IDs 1-25. Store-channel analysis (ad-hoc part) plus the
// paper's reporting Query 20.
func templatesA() []qgen.Template {
	return []qgen.Template{
		{ID: 1, Name: "store_monthly_revenue", SQL: `
SELECT s_store_name, s_state, SUM(ss_ext_sales_price) revenue
FROM store_sales, store, date_dim
WHERE ss_store_sk = s_store_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z1]
GROUP BY s_store_name, s_state
ORDER BY revenue DESC, s_store_name`},

		{ID: 2, Name: "category_revenue_holiday_season", SQL: `
SELECT i_category, SUM(ss_ext_sales_price) revenue, COUNT(*) line_items
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z3]
GROUP BY i_category
ORDER BY revenue DESC`},

		{ID: 3, Name: "brand_revenue_by_manager_range", SQL: `
SELECT d_year, i_brand_id brand_id, i_brand brand, SUM(ss_ext_sales_price) sum_agg
FROM date_dim dt, store_sales, item
WHERE dt.d_date_sk = ss_sold_date_sk
  AND ss_item_sk = i_item_sk
  AND i_manufact_id BETWEEN [MANAGER_LO] AND [MANAGER_LO] + 20
  AND dt.d_moy = [MONTH_Z3]
GROUP BY d_year, i_brand_id, i_brand
ORDER BY d_year, sum_agg DESC, brand_id
LIMIT 100`},

		{ID: 4, Name: "demographic_quantity_profile", SQL: `
SELECT cd_gender, cd_marital_status, cd_education_status,
       AVG(ss_quantity) avg_qty, AVG(ss_list_price) avg_list,
       AVG(ss_coupon_amt) avg_coupon, AVG(ss_sales_price) avg_price
FROM store_sales, customer_demographics, date_dim
WHERE ss_cdemo_sk = cd_demo_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
  AND cd_gender = [GENDER] AND cd_marital_status = [MARITAL]
GROUP BY cd_gender, cd_marital_status, cd_education_status
ORDER BY cd_gender, cd_marital_status, cd_education_status`},

		{ID: 5, Name: "returns_by_reason", SQL: `
SELECT r_reason_desc, COUNT(*) returns_count,
       SUM(sr_return_amt) returned_value, AVG(sr_return_quantity) avg_qty
FROM store_returns, reason, date_dim
WHERE sr_reason_sk = r_reason_sk
  AND sr_returned_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY r_reason_desc
ORDER BY returned_value DESC
LIMIT 25`},

		{ID: 6, Name: "return_rate_by_category", SQL: `
WITH sold AS (
  SELECT i_category cat, SUM(ss_quantity) sold_qty
  FROM store_sales, item
  WHERE ss_item_sk = i_item_sk
  GROUP BY i_category),
returned AS (
  SELECT i_category cat, SUM(sr_return_quantity) ret_qty
  FROM store_returns, item
  WHERE sr_item_sk = i_item_sk
  GROUP BY i_category)
SELECT sold.cat, sold_qty, ret_qty, ret_qty * 100.0 / sold_qty return_pct
FROM sold, returned
WHERE sold.cat = returned.cat
ORDER BY return_pct DESC`},

		{ID: 7, Name: "promotion_lift", SQL: `
SELECT i_item_id,
       AVG(ss_quantity) agg1, AVG(ss_list_price) agg2,
       AVG(ss_coupon_amt) agg3, AVG(ss_sales_price) agg4
FROM store_sales, customer_demographics, date_dim, item, promotion
WHERE ss_sold_date_sk = d_date_sk
  AND ss_item_sk = i_item_sk
  AND ss_cdemo_sk = cd_demo_sk
  AND ss_promo_sk = p_promo_sk
  AND cd_gender = [GENDER]
  AND cd_education_status = [EDUCATION]
  AND p_channel_email = 'N'
  AND d_year = [YEAR]
GROUP BY i_item_id
ORDER BY i_item_id
LIMIT 100`},

		{ID: 8, Name: "store_profit_ranking", SQL: `
SELECT s_store_name, s_city, SUM(ss_net_profit) profit
FROM store_sales, store, date_dim
WHERE ss_store_sk = s_store_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY s_store_name, s_city
HAVING SUM(ss_net_profit) > 0
ORDER BY profit DESC
LIMIT 20`},

		{ID: 9, Name: "sales_by_weekday_quarter", SQL: `
SELECT d_day_name, d_qoy, COUNT(*) transactions, SUM(ss_ext_sales_price) amt
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_day_name, d_qoy
ORDER BY d_qoy, amt DESC`},

		{ID: 10, Name: "credit_profile_counts", SQL: `
SELECT cd_credit_rating, cd_purchase_estimate,
       COUNT(DISTINCT ss_customer_sk) customers, COUNT(*) purchases
FROM store_sales, customer_demographics, date_dim
WHERE ss_cdemo_sk = cd_demo_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z2]
GROUP BY cd_credit_rating, cd_purchase_estimate
ORDER BY cd_credit_rating, cd_purchase_estimate`},

		{ID: 11, Name: "county_revenue", SQL: `
SELECT ca_county, ca_state, SUM(ss_ext_sales_price) revenue
FROM store_sales, customer_address, date_dim
WHERE ss_addr_sk = ca_address_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_qoy = 4
GROUP BY ca_county, ca_state
ORDER BY revenue DESC
LIMIT 50`},

		{ID: 12, Name: "discount_depth_by_category", SQL: `
SELECT i_category, AVG(ss_ext_discount_amt) avg_discount,
       SUM(ss_ext_discount_amt) / SUM(ss_ext_list_price) discount_ratio
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
  AND i_category IN ([CATEGORY3])
GROUP BY i_category
ORDER BY discount_ratio DESC`},

		{ID: 13, Name: "income_band_sales", SQL: `
SELECT ib_lower_bound, ib_upper_bound, hd_buy_potential,
       COUNT(*) baskets, [AGG](ss_net_paid) measure
FROM store_sales, household_demographics, income_band
WHERE ss_hdemo_sk = hd_demo_sk
  AND hd_income_band_sk = ib_income_band_sk
  AND hd_vehicle_count <= [VEHCNT]
GROUP BY ib_lower_bound, ib_upper_bound, hd_buy_potential
ORDER BY ib_lower_bound, hd_buy_potential`},

		{ID: 14, Name: "mealtime_sales_pattern", SQL: `
SELECT t_meal_time, t_shift, COUNT(*) line_items, SUM(ss_ext_sales_price) revenue
FROM store_sales, time_dim
WHERE ss_sold_time_sk = t_time_sk
  AND t_meal_time IS NOT NULL
GROUP BY t_meal_time, t_shift
ORDER BY revenue DESC`},

		{ID: 15, Name: "zip_prefix_revenue", SQL: `
SELECT SUBSTR(ca_zip, 1, 2) zip_prefix, SUM(ss_net_paid) net
FROM store_sales, customer_address, date_dim
WHERE ss_addr_sk = ca_address_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z1]
GROUP BY SUBSTR(ca_zip, 1, 2)
ORDER BY net DESC
LIMIT 40`},

		{ID: 16, Name: "monthly_order_counts", SQL: `
SELECT d_moy, COUNT(DISTINCT ss_ticket_number) orders,
       COUNT(*) line_items, SUM(ss_quantity) units
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_moy
ORDER BY d_moy`},

		{ID: 17, Name: "state_quantity_stats", SQL: `
SELECT ca_state, AVG(ss_quantity) avg_qty, STDDEV_SAMP(ss_quantity) sd_qty,
       MIN(ss_quantity) min_qty, MAX(ss_quantity) max_qty
FROM store_sales, customer_address
WHERE ss_addr_sk = ca_address_sk
  AND ca_state IN ([STATE5])
GROUP BY ca_state
ORDER BY ca_state`},

		{ID: 18, Name: "basket_size_buckets", SQL: `
SELECT CASE WHEN ss_quantity BETWEEN 1 AND 20 THEN 'small'
            WHEN ss_quantity BETWEEN 21 AND 60 THEN 'medium'
            ELSE 'large' END bucket,
       COUNT(*) cnt, AVG(ss_net_paid) avg_paid
FROM store_sales
GROUP BY CASE WHEN ss_quantity BETWEEN 1 AND 20 THEN 'small'
            WHEN ss_quantity BETWEEN 21 AND 60 THEN 'medium'
            ELSE 'large' END
ORDER BY cnt DESC`},

		{ID: 19, Name: "manager_brand_revenue", SQL: `
SELECT i_brand_id brand_id, i_brand brand, i_manufact_id, i_manufact,
       SUM(ss_ext_sales_price) ext_price
FROM date_dim, store_sales, item
WHERE d_date_sk = ss_sold_date_sk
  AND ss_item_sk = i_item_sk
  AND i_manager_id = [MANAGER]
  AND d_moy = [MONTH_Z2] AND d_year = [YEAR]
GROUP BY i_brand_id, i_brand, i_manufact_id, i_manufact
ORDER BY ext_price DESC, brand_id
LIMIT 100`},

		// Figure 7 of the paper: the reporting query with the windowed
		// per-class revenue ratio, over the catalog (reporting) channel.
		{ID: 20, Name: "catalog_revenue_ratio_by_class", SQL: `
SELECT i_item_desc, i_category, i_class, i_current_price,
       SUM(cs_ext_sales_price) AS itemrevenue,
       SUM(cs_ext_sales_price) * 100 /
         SUM(SUM(cs_ext_sales_price)) OVER (PARTITION BY i_class) AS revenueratio
FROM catalog_sales, item, date_dim
WHERE cs_item_sk = i_item_sk
  AND i_category IN ([CATEGORY3])
  AND cs_sold_date_sk = d_date_sk
  AND d_date BETWEEN [DATE_Z1] AND CAST([DATE_Z1] AS DATE) + [DAYS]
GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio
LIMIT 100`},

		// Iterative OLAP sequence 1: category -> class -> brand drill-down
		// (three syntactically independent but logically affiliated
		// queries, §4.1).
		{ID: 21, Name: "drill_category", Type: qgen.IterativeOLAP, Sequence: 1, SQL: `
SELECT i_category, SUM(ss_net_paid) net
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY i_category
ORDER BY net DESC`},

		{ID: 22, Name: "drill_class_within_category", Type: qgen.IterativeOLAP, Sequence: 1, SQL: `
SELECT i_category, i_class, SUM(ss_net_paid) net
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
  AND i_category = [CATEGORY]
GROUP BY i_category, i_class
ORDER BY net DESC`},

		{ID: 23, Name: "drill_brand_within_class", Type: qgen.IterativeOLAP, Sequence: 1, SQL: `
SELECT i_category, i_class, i_brand, SUM(ss_net_paid) net
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
  AND i_category = [CATEGORY] AND i_class = [CLASS]
GROUP BY i_category, i_class, i_brand
ORDER BY net DESC`},

		// Data mining extract (§4.1: "characterized as returning a large
		// output ... intended for feeding data mining tools").
		{ID: 24, Name: "mining_customer_purchase_extract", Type: qgen.DataMining, SQL: `
SELECT c_customer_id, c_first_name, c_last_name, c_birth_year,
       ca_state, ca_zip, ss_ticket_number, ss_quantity,
       ss_sales_price, ss_ext_sales_price, ss_net_paid, ss_net_profit
FROM store_sales, customer, customer_address
WHERE ss_customer_sk = c_customer_sk
  AND c_current_addr_sk = ca_address_sk
ORDER BY c_customer_id, ss_ticket_number
LIMIT 10000`},

		{ID: 25, Name: "repeat_customers", SQL: `
SELECT c_customer_id, c_last_name, COUNT(DISTINCT ss_ticket_number) trips,
       SUM(ss_net_paid) total_paid
FROM store_sales, customer, date_dim
WHERE ss_customer_sk = c_customer_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY c_customer_id, c_last_name
HAVING COUNT(DISTINCT ss_ticket_number) > 1
ORDER BY total_paid DESC, c_customer_id
LIMIT 100`},
	}
}
