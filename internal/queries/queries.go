// Package queries holds the 99 query templates of the TPC-DS workload
// (§4.1). Every template is a distinct business question over the
// snowstorm schema, written in the SQL-99 subset of the engine, with
// typed substitution tokens (see package qgen) bound to comparability
// zones so that all instantiations of a template are comparable.
//
// The set covers the paper's taxonomy:
//
//   - ad-hoc queries (store and web channels), reporting queries
//     (catalog channel) and hybrid queries referencing both parts, the
//     classification following §2.2 mechanically from the tables
//     referenced;
//   - iterative OLAP drill sequences (templates sharing a Sequence
//     number form one logical session);
//   - data-mining extraction queries returning large outputs;
//   - the two queries printed in the paper: Query 52 (Figure 6, ad-hoc)
//     and Query 20 (Figure 7, reporting with a windowed revenue ratio).
package queries

import (
	"fmt"
	"sort"

	"tpcds/internal/qgen"
)

// All returns the 99 templates ordered by ID.
func All() []qgen.Template {
	out := make([]qgen.Template, 0, 99)
	out = append(out, templatesA()...)
	out = append(out, templatesB()...)
	out = append(out, templatesC()...)
	out = append(out, templatesD()...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns one template.
func ByID(id int) (qgen.Template, error) {
	for _, t := range All() {
		if t.ID == id {
			return t, nil
		}
	}
	return qgen.Template{}, fmt.Errorf("queries: no template %d", id)
}

// Count is the number of queries per run; the paper's metric counts
// 99 queries times two query runs (§5.3).
const Count = 99
