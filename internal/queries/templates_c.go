package queries

import "tpcds/internal/qgen"

// templatesC: IDs 51-75. Web-channel analysis (ad-hoc part), the
// paper's Query 52, and web/store cross-channel comparisons.
func templatesC() []qgen.Template {
	return []qgen.Template{
		{ID: 51, Name: "web_site_revenue", SQL: `
SELECT web_name, web_manager, SUM(ws_net_paid) net, COUNT(*) orders
FROM web_sales, web_site, date_dim
WHERE ws_web_site_sk = web_site_sk
  AND ws_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY web_name, web_manager
ORDER BY net DESC`},

		// Figure 6 of the paper, verbatim: the ad-hoc brand revenue query.
		{ID: 52, Name: "brand_ext_price_november", SQL: `
SELECT dt.d_year, item.i_brand_id brand_id, item.i_brand brand,
       SUM(ss_ext_sales_price) ext_price
FROM date_dim dt, store_sales, item
WHERE dt.d_date_sk = store_sales.ss_sold_date_sk
  AND store_sales.ss_item_sk = item.i_item_sk
  AND item.i_manager_id = [MANAGER]
  AND dt.d_moy = [MONTH_Z3]
  AND dt.d_year = [YEAR]
GROUP BY dt.d_year, item.i_brand, item.i_brand_id
ORDER BY dt.d_year, ext_price DESC, brand_id`},

		{ID: 53, Name: "web_page_types", SQL: `
SELECT wp_type, COUNT(*) cnt, SUM(ws_net_paid) net, AVG(ws_quantity) avg_qty
FROM web_sales, web_page
WHERE ws_web_page_sk = wp_web_page_sk
GROUP BY wp_type
ORDER BY net DESC`},

		{ID: 54, Name: "web_returns_by_reason", SQL: `
SELECT r_reason_desc, COUNT(*) cnt, SUM(wr_return_amt) amount
FROM web_returns, reason
WHERE wr_reason_sk = r_reason_sk
GROUP BY r_reason_desc
ORDER BY amount DESC
LIMIT 30`},

		// Iterative OLAP sequence 3: web revenue drill year -> month.
		{ID: 55, Name: "drill_web_yearly", Type: qgen.IterativeOLAP, Sequence: 3, SQL: `
SELECT d_year, SUM(ws_ext_sales_price) revenue
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk
GROUP BY d_year
ORDER BY d_year`},

		{ID: 56, Name: "drill_web_monthly", Type: qgen.IterativeOLAP, Sequence: 3, SQL: `
SELECT d_moy, SUM(ws_ext_sales_price) revenue
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_moy
ORDER BY d_moy`},

		{ID: 57, Name: "web_shipping_cost_by_mode", SQL: `
SELECT sm_type, AVG(ws_ext_ship_cost) avg_ship, SUM(ws_net_paid_inc_ship) net
FROM web_sales, ship_mode
WHERE ws_ship_mode_sk = sm_ship_mode_sk
GROUP BY sm_type
ORDER BY avg_ship DESC`},

		{ID: 58, Name: "web_color_preferences", SQL: `
SELECT i_color, COUNT(*) cnt, SUM(ws_quantity) units
FROM web_sales, item
WHERE ws_item_sk = i_item_sk
  AND i_color IN ([COLOR2])
GROUP BY i_color
ORDER BY units DESC`},

		{ID: 59, Name: "web_weekend_share", SQL: `
SELECT d_weekend, COUNT(*) cnt, SUM(ws_ext_sales_price) revenue
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_weekend
ORDER BY d_weekend`},

		{ID: 60, Name: "web_category_revenue_window", SQL: `
SELECT i_category, i_class, SUM(ws_ext_sales_price) rev,
       SUM(ws_ext_sales_price) * 100 /
         SUM(SUM(ws_ext_sales_price)) OVER (PARTITION BY i_category) class_share
FROM web_sales, item, date_dim
WHERE ws_item_sk = i_item_sk
  AND ws_sold_date_sk = d_date_sk
  AND d_year = [YEAR]
  AND i_category IN ([CATEGORY3])
GROUP BY i_category, i_class
ORDER BY i_category, class_share DESC`},

		{ID: 61, Name: "web_fact_to_fact_returns", SQL: `
SELECT i_item_id, COUNT(*) returned_orders, SUM(wr_return_amt) returned_amt,
       SUM(ws_net_paid) paid_amt
FROM web_sales, web_returns, item
WHERE wr_item_sk = ws_item_sk
  AND wr_order_number = ws_order_number
  AND ws_item_sk = i_item_sk
GROUP BY i_item_id
ORDER BY returned_amt DESC, i_item_id
LIMIT 100`},

		{ID: 62, Name: "web_ship_latency_buckets", SQL: `
SELECT sm_type,
       SUM(CASE WHEN ws_ship_date_sk - ws_sold_date_sk <= 30 THEN 1 ELSE 0 END) d30,
       SUM(CASE WHEN ws_ship_date_sk - ws_sold_date_sk > 30 THEN 1 ELSE 0 END) over30
FROM web_sales, ship_mode, date_dim
WHERE ws_ship_mode_sk = sm_ship_mode_sk
  AND ws_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z1]
GROUP BY sm_type
ORDER BY sm_type`},

		{ID: 63, Name: "web_birth_cohorts", SQL: `
SELECT c_birth_year, COUNT(DISTINCT ws_order_number) orders, SUM(ws_net_paid) net
FROM web_sales, customer
WHERE ws_bill_customer_sk = c_customer_sk
  AND c_birth_year BETWEEN 1950 AND 1960
GROUP BY c_birth_year
ORDER BY c_birth_year`},

		{ID: 64, Name: "web_vs_store_by_item", SQL: `
WITH web AS (
  SELECT i_item_id item_id, SUM(ws_ext_sales_price) web_rev
  FROM web_sales, item, date_dim
  WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk AND d_year = [YEAR]
  GROUP BY i_item_id),
st AS (
  SELECT i_item_id item_id, SUM(ss_ext_sales_price) store_rev
  FROM store_sales, item, date_dim
  WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
  GROUP BY i_item_id)
SELECT web.item_id, web_rev, store_rev, web_rev / store_rev web_share
FROM web, st
WHERE web.item_id = st.item_id AND store_rev > 0
ORDER BY web_share DESC, web.item_id
LIMIT 100`},

		{ID: 65, Name: "web_buy_potential", SQL: `
SELECT hd_buy_potential, COUNT(*) cnt, [AGG](ws_net_paid) measure
FROM web_sales, household_demographics
WHERE ws_bill_hdemo_sk = hd_demo_sk
GROUP BY hd_buy_potential
ORDER BY hd_buy_potential`},

		{ID: 66, Name: "web_store_channel_union", SQL: `
SELECT 'store' channel, d_year yr, SUM(ss_ext_sales_price) revenue
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk
GROUP BY d_year
UNION ALL
SELECT 'web' channel, d_year yr, SUM(ws_ext_sales_price) revenue
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk
GROUP BY d_year
ORDER BY yr, channel`},

		{ID: 67, Name: "store_sundays_near_holidays", SQL: `
SELECT d_date_id, d_day_name, SUM(ss_net_paid) net
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk
  AND d_holiday = 'Y' AND d_year = [YEAR]
GROUP BY d_date_id, d_day_name
ORDER BY net DESC
LIMIT 25`},

		{ID: 68, Name: "store_city_ticket_totals", SQL: `
SELECT ss_ticket_number, s_city, SUM(ss_net_paid) amt, SUM(ss_net_profit) profit
FROM store_sales, store, household_demographics
WHERE ss_store_sk = s_store_sk
  AND ss_hdemo_sk = hd_demo_sk
  AND hd_dep_count = [DEPCNT]
GROUP BY ss_ticket_number, s_city
ORDER BY amt DESC, ss_ticket_number
LIMIT 100`},

		{ID: 69, Name: "web_sales_per_customer_state", SQL: `
SELECT ca_state, COUNT(DISTINCT ws_bill_customer_sk) customers,
       SUM(ws_net_paid) / COUNT(DISTINCT ws_bill_customer_sk) per_customer
FROM web_sales, customer_address
WHERE ws_bill_addr_sk = ca_address_sk
GROUP BY ca_state
HAVING COUNT(DISTINCT ws_bill_customer_sk) > 1
ORDER BY per_customer DESC
LIMIT 50`},

		{ID: 70, Name: "store_quarterly_windows", SQL: `
SELECT d_year, d_qoy, SUM(ss_ext_sales_price) rev,
       SUM(SUM(ss_ext_sales_price)) OVER (PARTITION BY d_year) year_rev
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk
GROUP BY d_year, d_qoy
ORDER BY d_year, d_qoy`},

		{ID: 71, Name: "mining_web_clickstream_extract", Type: qgen.DataMining, SQL: `
SELECT ws_order_number, ws_item_sk, wp_type, web_name, t_hour,
       ws_quantity, ws_sales_price, ws_net_paid, ws_net_profit
FROM web_sales, web_page, web_site, time_dim
WHERE ws_web_page_sk = wp_web_page_sk
  AND ws_web_site_sk = web_site_sk
  AND ws_sold_time_sk = t_time_sk
ORDER BY ws_order_number, ws_item_sk
LIMIT 10000`},

		{ID: 72, Name: "web_price_band_counts", SQL: `
SELECT COUNT(*) cnt
FROM web_sales, item
WHERE ws_item_sk = i_item_sk
  AND i_current_price BETWEEN [PRICE] AND [PRICE] + 10`},

		{ID: 73, Name: "store_income_band_profile", SQL: `
SELECT ib_income_band_sk, COUNT(*) cnt
FROM store_sales, household_demographics, income_band
WHERE ss_hdemo_sk = hd_demo_sk
  AND hd_income_band_sk = ib_income_band_sk
  AND ib_income_band_sk BETWEEN [IB] AND [IB] + 3
GROUP BY ib_income_band_sk
ORDER BY ib_income_band_sk`},

		{ID: 74, Name: "store_web_customer_overlap", SQL: `
SELECT COUNT(DISTINCT ss_customer_sk) both_channel_customers
FROM store_sales
WHERE ss_customer_sk IN (SELECT ws_bill_customer_sk FROM web_sales
                         WHERE ws_bill_customer_sk IS NOT NULL)`},

		{ID: 75, Name: "store_time_of_day", SQL: `
SELECT t_shift, d_day_name, COUNT(*) cnt, SUM(ss_net_paid) net
FROM store_sales, time_dim, date_dim
WHERE ss_sold_time_sk = t_time_sk
  AND ss_sold_date_sk = d_date_sk
  AND t_hour BETWEEN [HOUR] AND [HOUR] + 2
GROUP BY t_shift, d_day_name
ORDER BY net DESC`},
	}
}
