package queries

import "tpcds/internal/qgen"

// templatesD: IDs 76-99. Hybrid queries referencing both the ad-hoc and
// reporting parts of the schema, cross-channel customer analysis, and
// the remaining mining/iterative slots.
func templatesD() []qgen.Template {
	return []qgen.Template{
		{ID: 76, Name: "all_channel_revenue_union", SQL: `
SELECT 'store' channel, d_moy month_num, SUM(ss_ext_sales_price) revenue
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_moy
UNION ALL
SELECT 'catalog' channel, d_moy month_num, SUM(cs_ext_sales_price) revenue
FROM catalog_sales, date_dim
WHERE cs_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_moy
UNION ALL
SELECT 'web' channel, d_moy month_num, SUM(ws_ext_sales_price) revenue
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk AND d_year = [YEAR]
GROUP BY d_moy
ORDER BY month_num, channel`},

		{ID: 77, Name: "store_catalog_item_crossover", SQL: `
WITH st AS (
  SELECT i_item_id item_id, SUM(ss_quantity) store_qty
  FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_item_id),
cat AS (
  SELECT i_item_id item_id, SUM(cs_quantity) catalog_qty
  FROM catalog_sales, item WHERE cs_item_sk = i_item_sk GROUP BY i_item_id)
SELECT st.item_id, store_qty, catalog_qty
FROM st, cat
WHERE st.item_id = cat.item_id
ORDER BY store_qty + catalog_qty DESC, st.item_id
LIMIT 100`},

		{ID: 78, Name: "customer_lifetime_value_channels", SQL: `
WITH st AS (
  SELECT ss_customer_sk cust, SUM(ss_net_paid) paid
  FROM store_sales WHERE ss_customer_sk IS NOT NULL GROUP BY ss_customer_sk),
cat AS (
  SELECT cs_bill_customer_sk cust, SUM(cs_net_paid) paid
  FROM catalog_sales WHERE cs_bill_customer_sk IS NOT NULL GROUP BY cs_bill_customer_sk)
SELECT c_customer_id, st.paid store_paid, cat.paid catalog_paid
FROM st, cat, customer
WHERE st.cust = cat.cust AND st.cust = c_customer_sk
ORDER BY store_paid + catalog_paid DESC, c_customer_id
LIMIT 100`},

		{ID: 79, Name: "catalog_share_of_store_items", SQL: `
SELECT i_category,
       SUM(CASE WHEN cs_order_number IS NOT NULL THEN cs_ext_sales_price ELSE 0 END) catalog_rev
FROM item, catalog_sales
WHERE cs_item_sk = i_item_sk
  AND i_item_sk IN (SELECT ss_item_sk FROM store_sales, date_dim
                    WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR])
GROUP BY i_category
ORDER BY catalog_rev DESC`},

		// Iterative OLAP sequence 4: roll-up from brand to category on
		// the catalog channel (drill-up, §4.1).
		{ID: 80, Name: "rollup_brand", Type: qgen.IterativeOLAP, Sequence: 4, SQL: `
SELECT i_category, i_class, i_brand, SUM(cs_net_paid) net
FROM catalog_sales, item
WHERE cs_item_sk = i_item_sk AND i_category = [CATEGORY]
GROUP BY i_category, i_class, i_brand
ORDER BY net DESC
LIMIT 100`},

		{ID: 81, Name: "rollup_class", Type: qgen.IterativeOLAP, Sequence: 4, SQL: `
SELECT i_category, i_class, SUM(cs_net_paid) net
FROM catalog_sales, item
WHERE cs_item_sk = i_item_sk AND i_category = [CATEGORY]
GROUP BY i_category, i_class
ORDER BY net DESC`},

		{ID: 82, Name: "rollup_category", Type: qgen.IterativeOLAP, Sequence: 4, SQL: `
SELECT i_category, SUM(cs_net_paid) net
FROM catalog_sales, item
WHERE cs_item_sk = i_item_sk
GROUP BY i_category
ORDER BY net DESC`},

		{ID: 83, Name: "promo_left_join_gap", SQL: `
SELECT i_category, COUNT(*) total_lines,
       SUM(CASE WHEN p_promo_sk IS NULL THEN 1 ELSE 0 END) unpromoted
FROM store_sales LEFT OUTER JOIN promotion ON ss_promo_sk = p_promo_sk, item
WHERE ss_item_sk = i_item_sk
GROUP BY i_category
ORDER BY i_category`},

		{ID: 84, Name: "customer_addr_at_sale_vs_current", SQL: `
SELECT cur.ca_state current_state, COUNT(*) cnt
FROM store_sales, customer, customer_address cur, customer_address sale
WHERE ss_customer_sk = c_customer_sk
  AND c_current_addr_sk = cur.ca_address_sk
  AND ss_addr_sk = sale.ca_address_sk
  AND cur.ca_state <> sale.ca_state
GROUP BY cur.ca_state
ORDER BY cnt DESC, current_state
LIMIT 50`},

		{ID: 85, Name: "web_catalog_ship_mode_mix", SQL: `
SELECT sm_type, SUM(ws_net_paid) web_net
FROM web_sales, ship_mode
WHERE ws_ship_mode_sk = sm_ship_mode_sk
  AND sm_ship_mode_sk IN (SELECT cs_ship_mode_sk FROM catalog_sales
                          WHERE cs_ship_mode_sk IS NOT NULL)
GROUP BY sm_type
ORDER BY web_net DESC`},

		{ID: 86, Name: "store_manager_performance", SQL: `
SELECT s_manager, SUM(ss_net_profit) profit, COUNT(DISTINCT ss_ticket_number) tickets
FROM store_sales, store, date_dim
WHERE ss_store_sk = s_store_sk
  AND ss_sold_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z2]
GROUP BY s_manager
ORDER BY profit DESC
LIMIT 25`},

		{ID: 87, Name: "inventory_before_holidays", SQL: `
SELECT w_warehouse_name, SUM(inv_quantity_on_hand) on_hand
FROM inventory, warehouse, date_dim
WHERE inv_warehouse_sk = w_warehouse_sk
  AND inv_date_sk = d_date_sk
  AND d_year = [YEAR] AND d_moy = [MONTH_Z3]
GROUP BY w_warehouse_name
ORDER BY on_hand DESC`},

		{ID: 88, Name: "catalog_quarter_over_quarter", SQL: `
WITH q AS (
  SELECT d_year yr, d_qoy qtr, SUM(cs_ext_sales_price) rev
  FROM catalog_sales, date_dim
  WHERE cs_sold_date_sk = d_date_sk
  GROUP BY d_year, d_qoy)
SELECT a.yr, a.qtr, a.rev, b.rev prev_rev, a.rev / b.rev growth
FROM q a, q b
WHERE a.yr = b.yr AND a.qtr = b.qtr + 1 AND b.rev > 0
ORDER BY a.yr, a.qtr`},

		{ID: 89, Name: "store_returns_fact_link_loss", SQL: `
SELECT s_store_name, SUM(sr_net_loss) loss, COUNT(*) returned
FROM store_returns, store_sales, store
WHERE sr_item_sk = ss_item_sk
  AND sr_ticket_number = ss_ticket_number
  AND ss_store_sk = s_store_sk
GROUP BY s_store_name
ORDER BY loss DESC
LIMIT 25`},

		{ID: 90, Name: "am_pm_web_ratio", SQL: `
WITH am AS (
  SELECT COUNT(*) am_cnt FROM web_sales, time_dim
  WHERE ws_sold_time_sk = t_time_sk AND t_am_pm = 'AM'),
pm AS (
  SELECT COUNT(*) pm_cnt FROM web_sales, time_dim
  WHERE ws_sold_time_sk = t_time_sk AND t_am_pm = 'PM')
SELECT am_cnt, pm_cnt, am_cnt * 1.0 / pm_cnt am_pm_ratio
FROM am, pm`},

		{ID: 91, Name: "call_center_returns", SQL: `
SELECT cc_name, cd_marital_status, cd_education_status, SUM(cr_net_loss) loss
FROM catalog_returns, call_center, customer_demographics
WHERE cr_call_center_sk = cc_call_center_sk
  AND cr_returning_cdemo_sk = cd_demo_sk
  AND cd_marital_status = [MARITAL]
GROUP BY cc_name, cd_marital_status, cd_education_status
ORDER BY loss DESC
LIMIT 50`},

		{ID: 92, Name: "web_vs_mean_discount", SQL: `
SELECT SUM(ws_ext_discount_amt) excess_discount
FROM web_sales, item
WHERE ws_item_sk = i_item_sk
  AND i_manufact_id = [MANAGER]
  AND ws_ext_discount_amt > (SELECT 1.3 * AVG(ws_ext_discount_amt) FROM web_sales)`},

		{ID: 93, Name: "store_returned_then_repurchased", SQL: `
SELECT sr_customer_sk, COUNT(*) return_events, SUM(sr_return_amt) amt
FROM store_returns
WHERE sr_customer_sk IS NOT NULL
  AND sr_customer_sk IN (SELECT ss_customer_sk FROM store_sales
                         WHERE ss_customer_sk IS NOT NULL)
GROUP BY sr_customer_sk
ORDER BY amt DESC, sr_customer_sk
LIMIT 100`},

		{ID: 94, Name: "web_ship_window_unshipped", SQL: `
SELECT web_name, COUNT(*) late_orders
FROM web_sales, web_site, date_dim
WHERE ws_web_site_sk = web_site_sk
  AND ws_ship_date_sk = d_date_sk
  AND ws_ship_date_sk - ws_sold_date_sk > 45
  AND d_year = [YEAR]
GROUP BY web_name
ORDER BY late_orders DESC`},

		{ID: 95, Name: "mining_full_basket_extract", Type: qgen.DataMining, SQL: `
SELECT ss_ticket_number, ss_item_sk, i_category, i_brand,
       ss_quantity, ss_sales_price, ss_coupon_amt, s_store_name, s_state
FROM store_sales, item, store
WHERE ss_item_sk = i_item_sk
  AND ss_store_sk = s_store_sk
ORDER BY ss_ticket_number, ss_item_sk
LIMIT 10000`},

		{ID: 96, Name: "hourly_store_traffic", SQL: `
SELECT t_hour, COUNT(*) cnt
FROM store_sales, household_demographics, time_dim
WHERE ss_sold_time_sk = t_time_sk
  AND ss_hdemo_sk = hd_demo_sk
  AND hd_dep_count = [DEPCNT]
GROUP BY t_hour
ORDER BY t_hour`},

		{ID: 97, Name: "channel_exclusive_items", SQL: `
WITH st AS (SELECT DISTINCT ss_item_sk item_sk FROM store_sales),
cat AS (SELECT DISTINCT cs_item_sk item_sk FROM catalog_sales)
SELECT COUNT(*) store_only_items
FROM st
WHERE item_sk NOT IN (SELECT cs_item_sk FROM catalog_sales)`},

		{ID: 98, Name: "store_revenue_ratio_window", SQL: `
SELECT i_item_desc, i_category, i_class, i_current_price,
       SUM(ss_ext_sales_price) AS itemrevenue,
       SUM(ss_ext_sales_price) * 100 /
         SUM(SUM(ss_ext_sales_price)) OVER (PARTITION BY i_class) AS revenueratio
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk
  AND i_category IN ([CATEGORY3])
  AND ss_sold_date_sk = d_date_sk
  AND d_date BETWEEN [DATE_Z2] AND CAST([DATE_Z2] AS DATE) + [DAYS]
GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio
LIMIT 100`},

		{ID: 99, Name: "catalog_ship_latency_matrix", SQL: `
SELECT SUBSTR(w_warehouse_name, 1, 10) warehouse, sm_type, cc_name,
       SUM(CASE WHEN cs_ship_date_sk - cs_sold_date_sk <= 30 THEN 1 ELSE 0 END) d30,
       SUM(CASE WHEN cs_ship_date_sk - cs_sold_date_sk > 30 AND
                     cs_ship_date_sk - cs_sold_date_sk <= 60 THEN 1 ELSE 0 END) d60,
       SUM(CASE WHEN cs_ship_date_sk - cs_sold_date_sk > 60 THEN 1 ELSE 0 END) over60
FROM catalog_sales, warehouse, ship_mode, call_center, date_dim
WHERE cs_warehouse_sk = w_warehouse_sk
  AND cs_ship_mode_sk = sm_ship_mode_sk
  AND cs_call_center_sk = cc_call_center_sk
  AND cs_ship_date_sk = d_date_sk
  AND d_year = [YEAR]
GROUP BY SUBSTR(w_warehouse_name, 1, 10), sm_type, cc_name
ORDER BY warehouse, sm_type, cc_name
LIMIT 100`},
	}
}
