package driver

import (
	"sort"
	"sync"
	"time"

	"tpcds/internal/obs"
)

// InFlight is the driver's registry of currently executing queries —
// the data source behind the debugd /queries endpoint. Streams register
// each query on admission and deregister on completion; the debugd
// handler snapshots the set concurrently. All methods are safe for
// concurrent use.
type InFlight struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]*inflightQuery
}

// NewInFlight returns an empty in-flight query registry.
func NewInFlight() *InFlight {
	return &InFlight{m: make(map[uint64]*inflightQuery)}
}

// inflightQuery is one registered query execution. The identity fields
// are written once at Begin; phase and rows are updated by the query's
// coordinator goroutine through the obs.QueryStatus interface and read
// by snapshotting goroutines under the entry mutex.
type inflightQuery struct {
	id       uint64
	run      int
	stream   int
	template int
	start    time.Time

	mu    sync.Mutex
	phase string
	rows  int64
}

// SetPhase implements obs.QueryStatus.
func (q *inflightQuery) SetPhase(p string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.phase = p
	q.mu.Unlock()
}

// SetRows implements obs.QueryStatus.
func (q *inflightQuery) SetRows(n int64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.rows = n
	q.mu.Unlock()
}

// Begin registers a query execution and returns its status handle. The
// handle doubles as the engine-side obs.QueryStatus, so the executor's
// phase and row progress land here without the driver polling anything.
func (r *InFlight) Begin(run, stream, template int) *inflightQuery {
	if r == nil {
		return nil
	}
	q := &inflightQuery{run: run, stream: stream, template: template,
		start: time.Now(), phase: "queued"}
	r.mu.Lock()
	r.next++
	q.id = r.next
	r.m[q.id] = q
	r.mu.Unlock()
	return q
}

// End deregisters a completed query. Nil-safe for the unregistered
// path.
func (r *InFlight) End(q *inflightQuery) {
	if r == nil || q == nil {
		return
	}
	r.mu.Lock()
	delete(r.m, q.id)
	r.mu.Unlock()
}

// ActiveQueries implements obs.QuerySource: a snapshot of every query
// currently executing, sorted by admission ID so the endpoint's output
// order is stable.
func (r *InFlight) ActiveQueries() []obs.ActiveQuery {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	qs := make([]*inflightQuery, 0, len(r.m))
	for _, q := range r.m {
		qs = append(qs, q)
	}
	r.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]obs.ActiveQuery, len(qs))
	for i, q := range qs {
		q.mu.Lock()
		out[i] = obs.ActiveQuery{
			ID: q.id, Run: q.run, Stream: q.stream, Template: q.template,
			Phase: q.phase, Rows: q.rows,
			ElapsedNs: time.Since(q.start).Nanoseconds(),
		}
		q.mu.Unlock()
	}
	return out
}
