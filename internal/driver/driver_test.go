package driver

import (
	"testing"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/metric"
	"tpcds/internal/plan"
	"tpcds/internal/storage"
)

// freshDB generates the database a config would load.
func freshDB(cfg Config) *storage.DB {
	return datagen.New(cfg.SF, cfg.Seed).GenerateAll()
}

// tinyCfg runs a real end-to-end benchmark at development scale with a
// query subset to keep the test fast while exercising every phase.
func tinyCfg() Config {
	return Config{
		SF:       0.0005,
		Streams:  2,
		Seed:     42,
		QueryIDs: []int{1, 2, 9, 16, 20, 21, 22, 23, 27, 46, 52, 66},
		Price:    metric.PriceModel{HardwareUSD: 100000, SoftwareUSD: 50000, MaintenanceUSD: 30000},
	}
}

func TestFullBenchmarkRun(t *testing.T) {
	res, err := Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11 phases all measured.
	tm := res.Report.Timings
	if tm.Load <= 0 || tm.QR1 <= 0 || tm.DM <= 0 || tm.QR2 <= 0 {
		t.Errorf("phase timings missing: %+v", tm)
	}
	// Every stream ran every query in both runs.
	want := 2 /*runs*/ * 2 /*streams*/ * 12 /*queries*/
	if len(res.Queries) != want {
		t.Errorf("query executions = %d, want %d", len(res.Queries), want)
	}
	counts := map[int]int{}
	for _, qt := range res.Queries {
		counts[qt.QueryID]++
		if qt.Run != 1 && qt.Run != 2 {
			t.Errorf("query timing with run %d", qt.Run)
		}
	}
	for _, id := range tinyCfg().QueryIDs {
		if counts[id] != 4 {
			t.Errorf("query %d executed %d times, want 4", id, counts[id])
		}
	}
	if res.Report.QphDS <= 0 {
		t.Error("QphDS not computed")
	}
	if res.Report.Official {
		t.Error("development subset run must not be publishable")
	}
	if !res.Report.Subset {
		t.Error("subset run not flagged in the report")
	}
	if res.Report.PerStream != len(tinyCfg().QueryIDs) {
		t.Errorf("report per-stream query count = %d, want %d",
			res.Report.PerStream, len(tinyCfg().QueryIDs))
	}
	if res.DMStats.FactInserts == 0 {
		t.Error("data maintenance did not insert facts")
	}
	if res.Report.PerQphDS <= 0 {
		t.Error("price-performance not computed")
	}
}

func TestDeterministicQueryOrderPerStream(t *testing.T) {
	cfg := tinyCfg()
	resA, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Row counts per (run, stream, query) must match exactly across
	// identical configurations — full repeatability (§3.2).
	key := func(qt QueryTiming) [3]int { return [3]int{qt.Run, qt.Stream, qt.QueryID} }
	rowsA := map[[3]int]int{}
	for _, qt := range resA.Queries {
		rowsA[key(qt)] = qt.Rows
	}
	for _, qt := range resB.Queries {
		if rowsA[key(qt)] != qt.Rows {
			t.Fatalf("run/stream/query %v rows differ: %d vs %d",
				key(qt), rowsA[key(qt)], qt.Rows)
		}
	}
}

func TestStreamsDefaultToMinimum(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Streams != metric.MinStreams(cfg.SF) {
		t.Errorf("streams defaulted to %d, want %d", res.Config.Streams, metric.MinStreams(cfg.SF))
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := Run(Config{SF: 0}); err == nil {
		t.Error("zero SF should fail")
	}
	if _, err := Run(Config{SF: 0.001, Streams: -1}); err == nil {
		t.Error("negative streams should fail")
	}
	if _, err := Run(Config{SF: 0.001, QueryIDs: []int{1234}}); err == nil {
		t.Error("unknown query id should fail")
	}
}

func TestModesProduceIdenticalRowCounts(t *testing.T) {
	// The optimizer-correctness check at the benchmark level: forcing
	// either physical strategy must not change any query's result size.
	base := tinyCfg()
	base.Streams = 1
	base.Mode = plan.ForceHashJoin
	hash, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Mode = plan.ForceStar
	star, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(r *Result) map[[3]int]int {
		m := map[[3]int]int{}
		for _, qt := range r.Queries {
			m[[3]int{qt.Run, qt.Stream, qt.QueryID}] = qt.Rows
		}
		return m
	}
	h, s := rows(hash), rows(star)
	for k, v := range h {
		if s[k] != v {
			t.Errorf("query %v: hash rows %d vs star rows %d", k, v, s[k])
		}
	}
}

func TestSlowestQueriesAndDelta(t *testing.T) {
	res, err := Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	slow := res.SlowestQueries(5)
	if len(slow) != 5 {
		t.Fatalf("SlowestQueries returned %d", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration > slow[i-1].Duration {
			t.Error("SlowestQueries not sorted")
		}
	}
	delta := res.QueryRunDelta()
	if len(delta) == 0 {
		t.Error("QueryRunDelta empty")
	}
	_ = time.Now()
}

func TestLoadFromFlatFiles(t *testing.T) {
	// Dump a generated database, then run the benchmark loading from the
	// files: the result must match a generated run query-for-query.
	dir := t.TempDir()
	cfg := tinyCfg()
	cfg.Streams = 1
	gen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Engine.DB().DumpDir(dir); err != nil {
		t.Fatal(err)
	}
	// Note: gen's database has already been through one maintenance run,
	// so load a FRESH dump instead for comparability.
	fresh := tinyCfg()
	fresh.Streams = 1
	freshDir := t.TempDir()
	if err := dumpFreshDatabase(fresh, freshDir); err != nil {
		t.Fatal(err)
	}
	loaded := fresh
	loaded.DataDir = freshDir
	resLoaded, err := Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	resGen, err := Run(fresh)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(r *Result) map[[3]int]int {
		m := map[[3]int]int{}
		for _, qt := range r.Queries {
			m[[3]int{qt.Run, qt.Stream, qt.QueryID}] = qt.Rows
		}
		return m
	}
	a, b := rows(resLoaded), rows(resGen)
	for k, v := range b {
		if a[k] != v {
			t.Errorf("query %v: loaded-run rows %d vs generated-run rows %d", k, a[k], v)
		}
	}
}

// dumpFreshDatabase generates the configured database without running
// the benchmark and dumps it as flat files.
func dumpFreshDatabase(cfg Config, dir string) error {
	db := freshDB(cfg)
	return db.DumpDir(dir)
}

// TestParallelExecutionMatchesSerial runs the full benchmark with the
// morsel executor enabled against a serial run: row counts must match
// per (run, stream, query). With 2 concurrent streams each fanning out
// morsel workers, this is also the -race exercise of the engine and
// driver concurrency (satellite: `go test -race ./internal/driver`).
func TestParallelExecutionMatchesSerial(t *testing.T) {
	cfg := tinyCfg()
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	cfg.MorselRows = 32 // force real morsel splits at development scale
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(r *Result) map[[3]int]int {
		m := map[[3]int]int{}
		for _, qt := range r.Queries {
			m[[3]int{qt.Run, qt.Stream, qt.QueryID}] = qt.Rows
		}
		return m
	}
	a, b := rows(serial), rows(par)
	if len(a) != len(b) {
		t.Fatalf("execution counts differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("query %v: serial %d rows vs parallel %d rows", k, v, b[k])
		}
	}
}

func TestParallelLoadProducesSameResults(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ParallelLoad = true
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(r *Result) map[[3]int]int {
		m := map[[3]int]int{}
		for _, qt := range r.Queries {
			m[[3]int{qt.Run, qt.Stream, qt.QueryID}] = qt.Rows
		}
		return m
	}
	a, b := rows(seq), rows(par)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("query %v: sequential %d rows vs parallel %d rows", k, v, b[k])
		}
	}
}
