package driver

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tpcds/internal/obs"
	"tpcds/internal/obs/debugd"
)

// TestBenchmarkSpanTree runs the full benchmark instrumented and checks
// the structural invariants of the recorded span tree: a single
// benchmark root over the Figure 11 phases, one span per query
// execution, no orphans, and every child nested inside its parent's
// interval — down through the engine's operator spans.
func TestBenchmarkSpanTree(t *testing.T) {
	cfg := tinyCfg()
	cfg.Parallelism = 4
	cfg.MorselRows = 32
	cfg.Tracer = obs.NewTracer()
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Tracer.Snapshot()
	byID := map[uint64]obs.SpanRecord{}
	names := map[string]int{}
	for _, s := range snap {
		byID[s.ID] = s
		names[s.Name]++
	}
	for _, phase := range []string{"benchmark", "load", "query run 1", "maintenance", "query run 2"} {
		if names[phase] != 1 {
			t.Errorf("%d %q spans, want exactly 1", names[phase], phase)
		}
	}
	if names["stream 0"] != 2 || names["stream 1"] != 2 {
		t.Errorf("want each stream span once per query run: %v / %v",
			names["stream 0"], names["stream 1"])
	}
	// One query span per recorded execution.
	queries := 0
	for _, s := range snap {
		if s.Cat == "driver" && strings.HasPrefix(s.Name, "q") && !strings.HasPrefix(s.Name, "query") {
			queries++
		}
	}
	if queries != len(res.Queries) {
		t.Errorf("%d query spans, want %d (one per execution)", queries, len(res.Queries))
	}
	// Engine spans parent under the driver's query spans.
	execSpans := 0
	for _, s := range snap {
		if s.Cat == "exec" {
			execSpans++
		}
	}
	if execSpans == 0 {
		t.Error("no exec-category operator spans below the driver tree")
	}
	// Structural invariants over the whole tree.
	roots := 0
	for _, s := range snap {
		if s.Parent == 0 {
			roots++
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("orphan span %q: parent %d never completed", s.Name, s.Parent)
		}
		if s.StartNs < p.StartNs || s.StartNs+s.DurNs > p.StartNs+p.DurNs {
			t.Errorf("span %q [%d,+%d] escapes parent %q [%d,+%d]",
				s.Name, s.StartNs, s.DurNs, p.Name, p.StartNs, p.DurNs)
		}
	}
	if roots != 1 {
		t.Errorf("%d root spans, want 1 (benchmark)", roots)
	}
	// The trace must export cleanly in Chrome trace_event shape.
	var sb strings.Builder
	if err := obs.WriteChromeTrace(&sb, cfg.Tracer); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace([]byte(sb.String())); err != nil {
		t.Errorf("exported trace invalid: %v", err)
	}
	// The engine counters observed real work.
	if cfg.Metrics.Counter("exec_rows_scanned").Value() == 0 {
		t.Error("exec_rows_scanned stayed 0 across a full benchmark")
	}
	// The report carries the per-template distribution.
	if len(res.Report.Latencies) != len(tinyCfg().QueryIDs) {
		t.Errorf("report has %d template latencies, want %d",
			len(res.Report.Latencies), len(tinyCfg().QueryIDs))
	}
	if !strings.Contains(res.Report.String(), "Per-Template Exec Latency") {
		t.Error("report rendering missing the latency section")
	}
}

// TestQueueWaitSplit pins the wait/exec decomposition: with the
// admission gate narrower than the stream count, queries observably
// queue, and every timing satisfies Duration == Wait + Exec.
func TestQueueWaitSplit(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 3
	cfg.MaxConcurrent = 1
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var waited int
	for _, qt := range res.Queries {
		if qt.Duration != qt.Wait+qt.Exec {
			t.Fatalf("q%d: Duration %v != Wait %v + Exec %v",
				qt.QueryID, qt.Duration, qt.Wait, qt.Exec)
		}
		if qt.Wait > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Error("3 streams through a 1-wide gate never waited")
	}
	if res.Report.QueueWait <= 0 || res.Report.ExecTime <= 0 {
		t.Errorf("report split not populated: wait=%v exec=%v",
			res.Report.QueueWait, res.Report.ExecTime)
	}
	if !strings.Contains(res.Report.String(), "T_Queue / T_Exec") {
		t.Error("report rendering missing the queue/exec line")
	}
}

// TestUninstrumentedRunUnchanged: without Tracer/Metrics the report
// carries no latency section and the per-query timings still
// decompose (gate-less queries never wait).
func TestUninstrumentedRunUnchanged(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.String()
	if strings.Contains(s, "Per-Template Exec Latency") {
		t.Error("uninstrumented report has a latency section")
	}
	for _, qt := range res.Queries {
		if qt.Wait != 0 {
			t.Errorf("q%d waited %v with no admission gate", qt.QueryID, qt.Wait)
		}
		if qt.Duration != qt.Exec {
			t.Errorf("q%d: Duration %v != Exec %v without a gate", qt.QueryID, qt.Duration, qt.Exec)
		}
	}
}

// TestInFlightRegistry covers the in-flight query registry directly:
// admission order, status updates through the obs.QueryStatus side,
// deregistration, and nil-safety of the whole surface.
func TestInFlightRegistry(t *testing.T) {
	inf := NewInFlight()
	a := inf.Begin(1, 0, 42)
	b := inf.Begin(1, 1, 7)
	a.SetPhase("join")
	a.SetRows(128)
	qs := inf.ActiveQueries()
	if len(qs) != 2 {
		t.Fatalf("%d active queries, want 2", len(qs))
	}
	if qs[0].Template != 42 || qs[1].Template != 7 {
		t.Errorf("admission order lost: %+v", qs)
	}
	if qs[0].Phase != "join" || qs[0].Rows != 128 {
		t.Errorf("status not reflected: %+v", qs[0])
	}
	if qs[1].Phase != "queued" {
		t.Errorf("fresh query phase = %q, want queued", qs[1].Phase)
	}
	if qs[0].ElapsedNs < 0 {
		t.Errorf("negative elapsed: %+v", qs[0])
	}
	inf.End(a)
	if qs := inf.ActiveQueries(); len(qs) != 1 || qs[0].Template != 7 {
		t.Errorf("after End: %+v, want only q7", qs)
	}
	inf.End(b)
	if qs := inf.ActiveQueries(); len(qs) != 0 {
		t.Errorf("after both End: %+v, want empty", qs)
	}

	// The nil registry is the disabled path every un-instrumented run
	// takes; all methods must be no-ops.
	var nilInf *InFlight
	st := nilInf.Begin(1, 0, 1)
	if st != nil {
		t.Fatal("nil registry returned a live status handle")
	}
	st.SetPhase("x")
	st.SetRows(1)
	nilInf.End(st)
	if nilInf.ActiveQueries() != nil {
		t.Error("nil registry returned active queries")
	}
}

// TestProfiledRunMisestimates runs the benchmark with Profile on and
// checks the estimate-vs-actual feedback loop end to end: the q-error
// histogram observed every estimated operator, the report carries the
// per-template misestimation table sorted worst-first, and the
// rendering includes it.
func TestProfiledRunMisestimates(t *testing.T) {
	cfg := tinyCfg()
	cfg.Profile = true
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Misestimates) == 0 {
		t.Fatal("profiled run produced no misestimation report")
	}
	seen := map[int]bool{}
	for i, m := range res.Report.Misestimates {
		if m.QError < 1 {
			t.Errorf("q%d q-error %v < 1", m.ID, m.QError)
		}
		if m.Nodes <= 0 {
			t.Errorf("q%d estimated-node count %d, want > 0", m.ID, m.Nodes)
		}
		if m.Op == "" {
			t.Errorf("q%d worst operator missing", m.ID)
		}
		if i > 0 && m.QError > res.Report.Misestimates[i-1].QError {
			t.Errorf("misestimates not sorted: %v after %v", m.QError, res.Report.Misestimates[i-1].QError)
		}
		if seen[m.ID] {
			t.Errorf("template q%d listed twice", m.ID)
		}
		seen[m.ID] = true
	}
	for _, id := range cfg.QueryIDs {
		if !seen[id] {
			t.Errorf("template q%d missing from the misestimation report", id)
		}
	}
	h := cfg.Metrics.Histogram(QErrorHistogram)
	if h.Count() == 0 {
		t.Errorf("%s histogram saw no observations", QErrorHistogram)
	}
	if q0 := h.Quantile(0); q0 < 1000 {
		t.Errorf("%s min = %d, want >= 1000 (q-error is clamped >= 1)", QErrorHistogram, q0)
	}
	if !strings.Contains(res.Report.String(), "Worst Misestimates") {
		t.Error("report rendering missing the misestimation section")
	}
	// Determinism across identical runs: same templates, same worst
	// operators, same q-errors (the engine and data are seeded).
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Report.Misestimates) != len(res.Report.Misestimates) {
		t.Fatalf("misestimate count differs across identical runs: %d vs %d",
			len(res.Report.Misestimates), len(res2.Report.Misestimates))
	}
	for i := range res.Report.Misestimates {
		a, b := res.Report.Misestimates[i], res2.Report.Misestimates[i]
		if a != b {
			t.Errorf("misestimate %d differs across identical runs:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestUnprofiledRunHasNoMisestimates: without Profile the report omits
// the section entirely.
func TestUnprofiledRunHasNoMisestimates(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Misestimates) != 0 {
		t.Errorf("unprofiled run reported misestimates: %+v", res.Report.Misestimates)
	}
	if strings.Contains(res.Report.String(), "Misestimates") {
		t.Error("unprofiled report renders a misestimation section")
	}
}

// TestInFlightDebugdHammer is the 4-stream live-diagnostics race test:
// a profiled, traced benchmark runs with the in-flight registry wired
// into a live debugd server while four client goroutines hammer the
// endpoints for its whole duration. Run under -race this proves the
// registry, tracer ring, metrics, and server share memory safely; the
// final snapshot must be empty (every query deregistered).
func TestInFlightDebugdHammer(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 4
	cfg.QueryIDs = []int{1, 9, 20, 42, 52}
	cfg.Profile = true
	cfg.Tracer = obs.NewTracer()
	cfg.Tracer.SetSpanLimit(256)
	cfg.Metrics = obs.NewRegistry()
	cfg.InFlight = NewInFlight()
	srv, err := debugd.Start(context.Background(), "127.0.0.1:0",
		debugd.Config{Tracer: cfg.Tracer, Metrics: cfg.Metrics, Queries: cfg.InFlight})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	done := make(chan struct{})
	var wg sync.WaitGroup
	sawActive := make([]bool, 4)
	for i, path := range []string{"/queries", "/metrics", "/spans", "/queries"} {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				if cerr := resp.Body.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if path == "/queries" && strings.Contains(string(body), `"phase"`) {
					sawActive[i] = true
				}
			}
		}(i, path)
	}

	res, err := Run(cfg)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) == 0 {
		t.Fatal("benchmark recorded no queries")
	}
	if qs := cfg.InFlight.ActiveQueries(); len(qs) != 0 {
		t.Errorf("%d queries still registered after the run: %+v", len(qs), qs)
	}
	observed := false
	for _, s := range sawActive {
		observed = observed || s
	}
	if !observed {
		t.Log("note: /queries never caught an in-flight query (run too fast); registry drained correctly")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
