package driver

import (
	"strings"
	"testing"

	"tpcds/internal/obs"
)

// TestBenchmarkSpanTree runs the full benchmark instrumented and checks
// the structural invariants of the recorded span tree: a single
// benchmark root over the Figure 11 phases, one span per query
// execution, no orphans, and every child nested inside its parent's
// interval — down through the engine's operator spans.
func TestBenchmarkSpanTree(t *testing.T) {
	cfg := tinyCfg()
	cfg.Parallelism = 4
	cfg.MorselRows = 32
	cfg.Tracer = obs.NewTracer()
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Tracer.Snapshot()
	byID := map[uint64]obs.SpanRecord{}
	names := map[string]int{}
	for _, s := range snap {
		byID[s.ID] = s
		names[s.Name]++
	}
	for _, phase := range []string{"benchmark", "load", "query run 1", "maintenance", "query run 2"} {
		if names[phase] != 1 {
			t.Errorf("%d %q spans, want exactly 1", names[phase], phase)
		}
	}
	if names["stream 0"] != 2 || names["stream 1"] != 2 {
		t.Errorf("want each stream span once per query run: %v / %v",
			names["stream 0"], names["stream 1"])
	}
	// One query span per recorded execution.
	queries := 0
	for _, s := range snap {
		if s.Cat == "driver" && strings.HasPrefix(s.Name, "q") && !strings.HasPrefix(s.Name, "query") {
			queries++
		}
	}
	if queries != len(res.Queries) {
		t.Errorf("%d query spans, want %d (one per execution)", queries, len(res.Queries))
	}
	// Engine spans parent under the driver's query spans.
	execSpans := 0
	for _, s := range snap {
		if s.Cat == "exec" {
			execSpans++
		}
	}
	if execSpans == 0 {
		t.Error("no exec-category operator spans below the driver tree")
	}
	// Structural invariants over the whole tree.
	roots := 0
	for _, s := range snap {
		if s.Parent == 0 {
			roots++
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("orphan span %q: parent %d never completed", s.Name, s.Parent)
		}
		if s.StartNs < p.StartNs || s.StartNs+s.DurNs > p.StartNs+p.DurNs {
			t.Errorf("span %q [%d,+%d] escapes parent %q [%d,+%d]",
				s.Name, s.StartNs, s.DurNs, p.Name, p.StartNs, p.DurNs)
		}
	}
	if roots != 1 {
		t.Errorf("%d root spans, want 1 (benchmark)", roots)
	}
	// The trace must export cleanly in Chrome trace_event shape.
	var sb strings.Builder
	if err := obs.WriteChromeTrace(&sb, cfg.Tracer); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace([]byte(sb.String())); err != nil {
		t.Errorf("exported trace invalid: %v", err)
	}
	// The engine counters observed real work.
	if cfg.Metrics.Counter("exec_rows_scanned").Value() == 0 {
		t.Error("exec_rows_scanned stayed 0 across a full benchmark")
	}
	// The report carries the per-template distribution.
	if len(res.Report.Latencies) != len(tinyCfg().QueryIDs) {
		t.Errorf("report has %d template latencies, want %d",
			len(res.Report.Latencies), len(tinyCfg().QueryIDs))
	}
	if !strings.Contains(res.Report.String(), "Per-Template Exec Latency") {
		t.Error("report rendering missing the latency section")
	}
}

// TestQueueWaitSplit pins the wait/exec decomposition: with the
// admission gate narrower than the stream count, queries observably
// queue, and every timing satisfies Duration == Wait + Exec.
func TestQueueWaitSplit(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 3
	cfg.MaxConcurrent = 1
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var waited int
	for _, qt := range res.Queries {
		if qt.Duration != qt.Wait+qt.Exec {
			t.Fatalf("q%d: Duration %v != Wait %v + Exec %v",
				qt.QueryID, qt.Duration, qt.Wait, qt.Exec)
		}
		if qt.Wait > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Error("3 streams through a 1-wide gate never waited")
	}
	if res.Report.QueueWait <= 0 || res.Report.ExecTime <= 0 {
		t.Errorf("report split not populated: wait=%v exec=%v",
			res.Report.QueueWait, res.Report.ExecTime)
	}
	if !strings.Contains(res.Report.String(), "T_Queue / T_Exec") {
		t.Error("report rendering missing the queue/exec line")
	}
}

// TestUninstrumentedRunUnchanged: without Tracer/Metrics the report
// carries no latency section and the per-query timings still
// decompose (gate-less queries never wait).
func TestUninstrumentedRunUnchanged(t *testing.T) {
	cfg := tinyCfg()
	cfg.Streams = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.String()
	if strings.Contains(s, "Per-Template Exec Latency") {
		t.Error("uninstrumented report has a latency section")
	}
	for _, qt := range res.Queries {
		if qt.Wait != 0 {
			t.Errorf("q%d waited %v with no admission gate", qt.QueryID, qt.Wait)
		}
		if qt.Duration != qt.Exec {
			t.Errorf("q%d: Duration %v != Exec %v without a gate", qt.QueryID, qt.Duration, qt.Exec)
		}
	}
}
