// Package driver implements the TPC-DS execution rules (§5.2, Figure
// 11): the benchmark test is a database load test followed by a
// performance test of two query runs around one data maintenance run.
// Each query run executes S concurrent streams; every stream runs all
// 99 queries in a stream-specific permutation with stream-specific
// substitutions. The second query run reveals any query performance
// changes due to deferred maintenance of auxiliary structures — the
// engine's cached indexes are invalidated by the maintenance run and
// rebuilt on first use during Query Run 2, so their cost lands inside
// the measured interval exactly as §5.2 intends.
package driver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/maintenance"
	"tpcds/internal/metric"
	"tpcds/internal/obs"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Config parameterizes a benchmark run.
type Config struct {
	// SF is the scale factor (raw data GB). Official publications
	// require one of scaling.OfficialScaleFactors; development runs may
	// use any positive value.
	SF float64
	// Streams is the concurrent query stream count; 0 selects the
	// minimum required for the scale factor (Figure 12).
	Streams int
	// Seed drives data generation and query substitution.
	Seed uint64
	// Mode constrains the engine's physical strategy (ablations).
	Mode plan.Mode
	// Planner selects the engine's join planner: "cost" (or empty, the
	// default) for the statistics-driven cost-based planner with plan
	// cache, "greedy" for the fixed-heuristic baseline. Results are
	// bit-identical under either; only plan quality differs.
	Planner string
	// Digest computes a deterministic FNV-1a checksum of every query's
	// result (all values, row order included) into
	// QueryTiming.Checksum. CI diffs digests across planner settings to
	// prove plan changes never change results.
	Digest bool
	// QueryIDs selects a template subset; empty means all 99. Subset
	// runs are development-only (the metric requires the full set).
	QueryIDs []int
	// DataDir, when set, loads the database from dsdgen flat files
	// instead of generating it in-process — the official load-test
	// input path. The files must match the configured scale factor.
	DataDir string
	// ParallelLoad generates tables concurrently during the load test.
	ParallelLoad bool
	// Parallelism is the engine's morsel worker count: 0 uses every
	// core, 1 forces serial execution. Results are identical at every
	// setting.
	Parallelism int
	// MorselRows overrides the engine's scan morsel size (development
	// hook: development-scale tables never reach the production 64K-row
	// morsels, so tests shrink it to exercise the parallel paths).
	MorselRows int
	// BatchRows overrides the vectorized batch size within a morsel;
	// 0 keeps the engine default (1024 rows). Results are identical at
	// every setting.
	BatchRows int
	// RowExec forces the row-at-a-time execution path, disabling the
	// vectorized batch kernels. The row path is the differential-testing
	// oracle; results are bit-identical either way.
	RowExec bool
	// QueryTimeout is the per-query deadline inside each stream; 0
	// means no deadline. A query exceeding it is cancelled (morsel
	// workers drain between morsels) and recorded as a timeout.
	QueryTimeout time.Duration
	// OnError selects the stream policy for a failed or timed-out
	// query: OnErrorAbort (the default) cancels the run, OnErrorSkip
	// records the failure in the report and continues with the stream's
	// next query — a runaway template then costs one query, not the
	// multi-hour run.
	OnError string
	// QueryHook, when set, is installed on the engine and runs at the
	// start of every query inside the engine's per-query recover scope.
	// It is the fault-injection point for robustness tests.
	QueryHook func(query string)
	// Price is the 3-year TCO model for the price-performance metric.
	Price metric.PriceModel
	// Tracer, when set, records the span tree of the whole benchmark:
	// benchmark → load / query run N / maintenance, each query run →
	// stream → query, and below the query the engine's operator and
	// morsel spans. A nil Tracer keeps the hot path on the engine's
	// zero-cost disabled fast path.
	Tracer *obs.Tracer
	// Metrics, when set, receives the engine's row/morsel counters and
	// the driver's per-template execution-latency histograms; the
	// distributions surface as Report.Latencies.
	Metrics *obs.Registry
	// Profile enables per-operator runtime accounting (the EXPLAIN
	// ANALYZE profile tree) on every query of the run. Each estimated
	// node's q-error is observed into the plan_qerror_x1000 histogram
	// (with Metrics set) and the per-template worst offenders surface as
	// Report.Misestimates. Results are bit-identical with profiling on
	// or off; only accounting is added.
	Profile bool
	// InFlight, when set, registers every query execution for its
	// lifetime — the data source behind the debugd /queries endpoint.
	// The engine reports coarse phase and row progress into the entry
	// while the query runs.
	InFlight *InFlight
	// MaxConcurrent caps the queries in flight across all streams of a
	// query run; 0 means no cap (every stream's query is admitted
	// immediately). With a cap, the time a query spends waiting for
	// admission is recorded as QueryTiming.Wait, separate from Exec —
	// queue pressure becomes visible instead of inflating per-query
	// execution times.
	MaxConcurrent int
}

// OnError policies.
const (
	OnErrorAbort = "abort"
	OnErrorSkip  = "skip"
)

// QueryTiming records one query execution within a run.
type QueryTiming struct {
	Run     int // 1 or 2
	Stream  int
	QueryID int
	// Duration is the query's wall-clock time as the stream saw it:
	// Wait + Exec. Wait is the time spent queued at the admission gate
	// (zero without Config.MaxConcurrent); Exec is the time inside the
	// engine. The per-query deadline applies to Exec only — a query
	// must not time out for being queued.
	Duration time.Duration
	Wait     time.Duration
	Exec     time.Duration
	Rows     int
	// Err is the query's failure message ("" on success). Under
	// OnErrorSkip failed queries stay in the record with Err set, so
	// the report can count them without sinking the run.
	Err string
	// TimedOut marks an Err caused by the per-query deadline.
	TimedOut bool
	// Checksum is the FNV-1a digest of the result (Config.Digest only):
	// column names, then every value of every row in order.
	Checksum uint64
}

// Result is the full outcome of a benchmark test.
type Result struct {
	Config  Config
	Report  metric.Report
	Queries []QueryTiming
	DMStats maintenance.Stats
	// Engine retains the loaded system under test for inspection.
	Engine *exec.Engine
}

// Run executes the complete benchmark test (Figure 11).
func Run(cfg Config) (*Result, error) {
	//lint:ignore ctxflow Run is the documented context-free convenience wrapper over RunContext
	return RunContext(context.Background(), cfg)
}

// RunContext executes the complete benchmark test under ctx: cancelling
// ctx aborts the current phase (streams observe it between queries and
// inside each running query).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("driver: non-positive scale factor")
	}
	if cfg.Streams == 0 {
		cfg.Streams = metric.MinStreams(cfg.SF)
	}
	if cfg.Streams < 0 {
		return nil, fmt.Errorf("driver: negative stream count")
	}
	switch cfg.OnError {
	case "", OnErrorAbort, OnErrorSkip:
	default:
		return nil, fmt.Errorf("driver: unknown OnError policy %q (want %q or %q)",
			cfg.OnError, OnErrorAbort, OnErrorSkip)
	}
	if cfg.MaxConcurrent < 0 {
		return nil, fmt.Errorf("driver: negative MaxConcurrent")
	}
	planner, err := plan.ParsePlanner(cfg.Planner)
	if err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	tpl, err := selectTemplates(cfg.QueryIDs)
	if err != nil {
		return nil, err
	}

	res := &Result{Config: cfg}
	var timings metric.Timings
	root := cfg.Tracer.Root("benchmark", "driver")
	defer root.End()

	// ---- Load test: generate or load, then build auxiliary structures. ----
	loadSp := root.Child("load")
	loadStart := time.Now()
	var db *storage.DB
	switch {
	case cfg.DataDir != "":
		db, err = storage.LoadDir(cfg.DataDir, schema.Tables())
		if err != nil {
			return nil, fmt.Errorf("driver: load test: %w", err)
		}
	case cfg.ParallelLoad:
		gen := datagen.New(cfg.SF, cfg.Seed)
		gen.SetObservability(loadSp, cfg.Metrics)
		db = gen.GenerateAllParallel()
	default:
		gen := datagen.New(cfg.SF, cfg.Seed)
		gen.SetObservability(loadSp, cfg.Metrics)
		db = gen.GenerateAll()
	}
	eng := exec.New(db)
	eng.SetMode(cfg.Mode)
	eng.SetPlanner(planner)
	eng.SetParallelism(cfg.Parallelism)
	eng.SetMorselSize(cfg.MorselRows)
	eng.SetBatchSize(cfg.BatchRows)
	eng.SetVectorized(!cfg.RowExec)
	eng.SetQueryHook(cfg.QueryHook)
	eng.SetMetrics(cfg.Metrics)
	eng.SetProfiling(cfg.Profile)
	warmAuxiliaryStructures(eng)
	timings.Load = time.Since(loadStart)
	loadSp.End()
	res.Engine = eng

	// Estimate-vs-actual aggregation for profiled runs; nil keeps the
	// unprofiled path untouched.
	var mis *misestimates
	if cfg.Profile {
		mis = newMisestimates()
	}

	// ---- Query Run 1. ----
	qr1Sp := root.Child("query run 1")
	qr1Start := time.Now()
	t1, err := runQueryRun(ctx, eng, tpl, cfg, 1, qr1Sp, mis)
	timings.QR1 = time.Since(qr1Start)
	qr1Sp.End()
	res.Queries = append(res.Queries, t1...)
	if err != nil {
		return nil, err
	}

	// ---- Data Maintenance run. ----
	dmSp := root.Child("maintenance")
	dmStart := time.Now()
	rs, err := maintenance.GenerateRefresh(db, cfg.Seed, 1)
	if err != nil {
		return nil, fmt.Errorf("driver: refresh generation: %w", err)
	}
	stats, err := maintenance.Run(eng, rs)
	if err != nil {
		return nil, fmt.Errorf("driver: data maintenance: %w", err)
	}
	timings.DM = time.Since(dmStart)
	dmSp.End()
	res.DMStats = stats

	// ---- Query Run 2 (fresh substitutions, §5.2). ----
	qr2Sp := root.Child("query run 2")
	qr2Start := time.Now()
	t2, err := runQueryRun(ctx, eng, tpl, cfg, 2, qr2Sp, mis)
	timings.QR2 = time.Since(qr2Start)
	qr2Sp.End()
	res.Queries = append(res.Queries, t2...)
	if err != nil {
		return nil, err
	}

	// The metric is computed over the templates actually run: a subset
	// run gets an honest development-only QphDS, never a number that
	// pretends all 99 templates executed.
	res.Report = metric.NewReportForQueries(cfg.SF, cfg.Streams, len(tpl), timings, cfg.Price)
	errs, timeouts := 0, 0
	for _, qt := range res.Queries {
		if qt.Err != "" {
			errs++
			if qt.TimedOut {
				timeouts++
			}
		}
		res.Report.QueueWait += qt.Wait
		res.Report.ExecTime += qt.Exec
	}
	res.Report = res.Report.WithErrorCounts(errs, timeouts)
	res.Report.Latencies = templateLatencies(cfg.Metrics, res.Queries)
	res.Report.Misestimates = mis.report()
	return res, nil
}

// selectTemplates resolves the configured query subset.
func selectTemplates(ids []int) ([]qgen.Template, error) {
	if len(ids) == 0 {
		return queries.All(), nil
	}
	out := make([]qgen.Template, 0, len(ids))
	for _, id := range ids {
		t, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// warmAuxiliaryStructures builds the basic auxiliary structures during
// the load test, whose elapsed time the metric charges at 1% per stream
// (§5.3). Hash indexes on dimension surrogate keys are "basic"
// structures allowed everywhere; bitmap indexes on the fact foreign
// keys of the catalog channel are the "complex" structures allowed only
// in the reporting part of the schema (§2.2).
func warmAuxiliaryStructures(eng *exec.Engine) {
	db := eng.DB()
	// Basic: surrogate-key hash indexes on every dimension.
	for _, name := range db.Names() {
		t := db.Table(name)
		if t.Def.Kind != schema.Dimension {
			continue
		}
		if len(t.Def.PrimaryKey) == 1 {
			eng.WarmHashIndex(t.Def.Name, t.Def.PrimaryKey[0])
		}
	}
	// Complex (reporting part only): fact FK bitmap indexes on the
	// catalog channel.
	cs := db.Table("catalog_sales")
	for _, fk := range cs.Def.ForeignKeys {
		eng.WarmBitmapIndex("catalog_sales", fk.Column)
	}
}

// runQueryRun executes one query run: S concurrent streams, each
// running all templates in its own permuted order with its own
// substitutions. Each query runs under the configured per-query
// deadline. A failed query is handled per cfg.OnError: skip records it
// in its stream's timings and moves on; abort cancels the sibling
// streams (they drain at their next cancellation point) and fails the
// run with the first non-cancellation error.
func runQueryRun(ctx context.Context, eng *exec.Engine, tpl []qgen.Template, cfg Config, run int, runSp *obs.Span, mis *misestimates) ([]QueryTiming, error) {
	type streamResult struct {
		timings []QueryTiming
		err     error
	}
	// Abort policy: one stream's failure cancels its siblings through
	// this shared context, so the run ends promptly instead of waiting
	// out S-1 unaffected streams.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	skip := cfg.OnError == OnErrorSkip
	// Admission gate: a buffered channel whose capacity is the number
	// of queries allowed in flight. Streams acquire a slot before each
	// query and release it after; a nil gate admits immediately.
	var gate chan struct{}
	if cfg.MaxConcurrent > 0 {
		gate = make(chan struct{}, cfg.MaxConcurrent)
	}
	// Ownership: runQueryRun owns all S stream goroutines — Add before
	// each spawn, Done as each stream's first defer, and the wg.Wait
	// below joins them before results is read, so slot writes (each
	// stream writes only results[stream]) happen-before the merge and
	// no stream outlives the run. Streams exit on their own or through
	// runCtx cancellation; there is no third path.
	results := make([]streamResult, cfg.Streams)
	var wg sync.WaitGroup
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			// Each stream gets its own trace lane: tid stream+1 keeps the
			// streams on separate rows in the Chrome trace viewer while
			// the driver phases stay on lane 0.
			streamSp := runSp.ChildTID(fmt.Sprintf("stream %d", stream), stream+1)
			defer streamSp.End()
			// Run 2 uses a disjoint stream-id space so its substitutions
			// differ from run 1 while remaining deterministic.
			effStream := stream + (run-1)*1000
			order := qgen.SessionPermutation(cfg.Seed, effStream, tpl)
			var out []QueryTiming
			defer func() { results[stream].timings = out }()
			for _, idx := range order {
				if runCtx.Err() != nil {
					results[stream].err = fmt.Errorf("stream %d: %w", stream, runCtx.Err())
					return
				}
				t := tpl[idx]
				text, err := qgen.Instantiate(t, qgen.StreamSeed(cfg.Seed, effStream, t.ID))
				if err != nil {
					// A template that fails to instantiate is a harness bug,
					// not a query failure: always fatal to the run.
					results[stream].err = fmt.Errorf("stream %d query %d: %w", stream, t.ID, err)
					cancelRun()
					return
				}
				qt, err := runOneQuery(runCtx, eng, cfg, streamSp, gate, run, stream, t.ID, text, mis)
				qt.Run, qt.Stream, qt.QueryID = run, stream, t.ID
				out = append(out, qt)
				if err != nil && !skip {
					results[stream].err = fmt.Errorf("stream %d query %d: %w", stream, t.ID, err)
					cancelRun()
					return
				}
			}
		}(s)
	}
	wg.Wait()
	var all []QueryTiming
	var firstErr error
	for _, r := range results {
		all = append(all, r.timings...)
		if r.err != nil && (firstErr == nil || errRank(r.err) < errRank(firstErr)) {
			firstErr = r.err
		}
	}
	return all, firstErr
}

// errRank orders run failures by how likely they are the originating
// one: a real query error beats a per-query deadline expiry, which
// beats the "context canceled" every aborted sibling stream reports
// after cancelRun fires. Without the ranking the run's error would be
// whichever stream index is lowest — usually a secondary cancellation.
func errRank(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return 2
	case errors.Is(err, context.DeadlineExceeded):
		return 1
	default:
		return 0
	}
}

// runOneQuery executes one query under the per-query deadline and
// reports its timing. On failure the timing carries the error; the
// returned error is non-nil so the caller can apply the OnError policy.
// The admission gate is acquired BEFORE the timeout context is created,
// so a query never times out while queued — the deadline measures the
// engine, not the driver's own backpressure.
func runOneQuery(ctx context.Context, eng *exec.Engine, cfg Config, streamSp *obs.Span, gate chan struct{}, run, stream, tplID int, text string, mis *misestimates) (QueryTiming, error) {
	qsp := streamSp.Child(fmt.Sprintf("q%d", tplID))
	defer qsp.End()
	var qt QueryTiming
	// Register with the in-flight diagnostics registry before queuing:
	// a query waiting for admission is visible (phase "queued"), so the
	// /queries endpoint shows gate pressure directly.
	st := cfg.InFlight.Begin(run, stream, tplID)
	defer cfg.InFlight.End(st)
	if gate != nil {
		wsp := qsp.Child("queue")
		waitStart := time.Now()
		select {
		case gate <- struct{}{}:
			defer func() { <-gate }()
		case <-ctx.Done():
			qt.Wait = time.Since(waitStart)
			qt.Duration = qt.Wait
			qt.Err = ctx.Err().Error()
			wsp.End()
			return qt, ctx.Err()
		}
		qt.Wait = time.Since(waitStart)
		wsp.End()
	}
	qctx, cancel := ctx, func() {}
	if cfg.QueryTimeout > 0 {
		qctx, cancel = context.WithTimeout(ctx, cfg.QueryTimeout)
	}
	defer cancel()
	qctx = obs.ContextWithSpan(qctx, qsp)
	if st != nil {
		qctx = obs.ContextWithStatus(qctx, st)
	}
	start := time.Now()
	var r *exec.Result
	var err error
	if cfg.Profile {
		// The traced form hands back this call's Trace (and with it the
		// profile tree) without racing concurrent streams on LastTrace.
		var tr exec.Trace
		r, tr, err = eng.QueryTracedContext(qctx, text)
		if err == nil {
			mis.record(cfg.Metrics, tplID, tr.Profile)
		}
	} else {
		r, err = eng.QueryContext(qctx, text)
	}
	qt.Exec = time.Since(start)
	qt.Duration = qt.Wait + qt.Exec
	if cfg.Metrics != nil {
		cfg.Metrics.Histogram(templateHistogram(tplID)).ObserveDuration(qt.Exec)
		cfg.Metrics.Histogram("driver_query_wait_ns").ObserveDuration(qt.Wait)
		cfg.Metrics.Counter("driver_queries").Add(1)
	}
	if err != nil {
		qt.Err = err.Error()
		qt.TimedOut = errors.Is(err, context.DeadlineExceeded)
		qsp.SetAttr("err", qt.Err)
		return qt, err
	}
	qt.Rows = len(r.Rows)
	if cfg.Digest {
		qt.Checksum = resultChecksum(r)
	}
	qsp.SetAttrInt("rows", int64(qt.Rows))
	return qt, nil
}

// resultChecksum digests a query result — column names, then every
// value of every row in order — with FNV-1a. Byte-identical results
// (including row order) produce equal checksums, so diffing digests
// across planner or parallelism settings proves result equality
// without retaining the rows.
func resultChecksum(r *exec.Result) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // field separator
		h *= prime
	}
	for _, c := range r.Columns {
		mix(c)
	}
	var buf []byte
	for _, row := range r.Rows {
		for _, v := range row {
			buf = v.AppendGroupKey(buf[:0])
			mix(string(buf))
		}
	}
	return h
}

// SlowestQueries returns the n slowest query executions — §5.3's point
// that without a power metric, tuning effort concentrates on the
// longest-running queries.
func (r *Result) SlowestQueries(n int) []QueryTiming {
	out := make([]QueryTiming, len(r.Queries))
	copy(out, r.Queries)
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// QueryRunDelta reports the relative elapsed-time change of query run 2
// versus run 1 per query id (positive = slower after maintenance).
func (r *Result) QueryRunDelta() map[int]float64 {
	sum := map[int][2]time.Duration{}
	for _, qt := range r.Queries {
		s := sum[qt.QueryID]
		s[qt.Run-1] += qt.Duration
		sum[qt.QueryID] = s
	}
	out := map[int]float64{}
	for id, s := range sum {
		if s[0] > 0 {
			out[id] = float64(s[1]-s[0]) / float64(s[0])
		}
	}
	return out
}
