package driver

import (
	"fmt"
	"sort"
	"time"

	"tpcds/internal/metric"
	"tpcds/internal/obs"
)

// templateHistogram names the per-template execution-latency histogram
// in the metrics registry. The _ns suffix makes the registry's text
// dump render the buckets as durations.
func templateHistogram(tplID int) string {
	return fmt.Sprintf("driver_q%d_exec_ns", tplID)
}

// templateLatencies extracts the per-template latency distribution from
// the registry's histograms for the report. The template set comes from
// the timings actually recorded, so subset runs report exactly the
// templates they ran. Returns nil without a registry.
func templateLatencies(reg *obs.Registry, qs []QueryTiming) []metric.TemplateLatency {
	if reg == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, qt := range qs {
		seen[qt.QueryID] = true
	}
	out := make([]metric.TemplateLatency, 0, len(seen))
	for id := range seen {
		h := reg.Histogram(templateHistogram(id))
		if h.Count() == 0 {
			continue
		}
		out = append(out, metric.TemplateLatency{
			ID:    id,
			Count: h.Count(),
			P50:   time.Duration(h.Quantile(0.50)),
			P95:   time.Duration(h.Quantile(0.95)),
			Max:   time.Duration(h.Max()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
