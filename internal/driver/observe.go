package driver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tpcds/internal/metric"
	"tpcds/internal/obs"
)

// QErrorHistogram is the registry histogram receiving one observation
// per estimated profile node: the node's q-error scaled by 1000, so
// 1000 is a perfect estimate and the first bucket (bound 1000) counts
// exactly the perfect nodes.
const QErrorHistogram = "plan_qerror_x1000"

// templateHistogram names the per-template execution-latency histogram
// in the metrics registry. The _ns suffix makes the registry's text
// dump render the buckets as durations.
func templateHistogram(tplID int) string {
	return fmt.Sprintf("driver_q%d_exec_ns", tplID)
}

// templateLatencies extracts the per-template latency distribution from
// the registry's histograms for the report. The template set comes from
// the timings actually recorded, so subset runs report exactly the
// templates they ran. Returns nil without a registry.
func templateLatencies(reg *obs.Registry, qs []QueryTiming) []metric.TemplateLatency {
	if reg == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, qt := range qs {
		seen[qt.QueryID] = true
	}
	out := make([]metric.TemplateLatency, 0, len(seen))
	for id := range seen {
		h := reg.Histogram(templateHistogram(id))
		if h.Count() == 0 {
			continue
		}
		out = append(out, metric.TemplateLatency{
			ID:    id,
			Count: h.Count(),
			P50:   time.Duration(h.Quantile(0.50)),
			P95:   time.Duration(h.Quantile(0.95)),
			Max:   time.Duration(h.Max()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// misestimates aggregates estimate-vs-actual feedback across every
// profiled query of a run: per template, the single worst-misestimated
// operator node seen in any stream or run. Safe for concurrent use —
// every stream records into it.
type misestimates struct {
	mu    sync.Mutex
	byTpl map[int]metric.Misestimate
}

func newMisestimates() *misestimates {
	return &misestimates{byTpl: map[int]metric.Misestimate{}}
}

// record folds one profiled query execution into the aggregation and
// observes each estimated node's q-error into the registry histogram.
// The worst-node choice is deterministic across stream schedules: a
// strictly larger q-error wins, ties keep the lexicographically
// smaller operator name (then the smaller estimate), so the table does
// not depend on which stream reported first.
func (ms *misestimates) record(reg *obs.Registry, tpl int, prof *obs.OpProfile) {
	if ms == nil || prof == nil {
		return
	}
	var h *obs.Histogram
	if reg != nil {
		h = reg.Histogram(QErrorHistogram)
	}
	worst := metric.Misestimate{ID: tpl}
	prof.Walk(func(n *obs.OpProfile) {
		if !n.HasEst {
			return
		}
		worst.Nodes++
		h.Observe(int64(n.QError * 1000))
		better := n.QError > worst.QError ||
			(n.QError == worst.QError && worst.Op != "" &&
				(n.Name < worst.Op || (n.Name == worst.Op && n.EstRows < worst.Est)))
		if worst.Op == "" || better {
			worst.Op, worst.Est, worst.Actual, worst.QError = n.Name, n.EstRows, n.RowsOut, n.QError
		}
	})
	if worst.Nodes == 0 {
		return
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	prev, ok := ms.byTpl[tpl]
	if ok {
		worst.Nodes += prev.Nodes
		if prev.QError > worst.QError ||
			(prev.QError == worst.QError &&
				(prev.Op < worst.Op || (prev.Op == worst.Op && prev.Est < worst.Est))) {
			worst.Op, worst.Est, worst.Actual, worst.QError = prev.Op, prev.Est, prev.Actual, prev.QError
		}
	}
	ms.byTpl[tpl] = worst
}

// report returns the aggregated table sorted worst-first (ties by
// template id), the order the executive summary and bench artifact
// both use.
func (ms *misestimates) report() []metric.Misestimate {
	if ms == nil {
		return nil
	}
	ms.mu.Lock()
	out := make([]metric.Misestimate, 0, len(ms.byTpl))
	for _, m := range ms.byTpl {
		out = append(out, m)
	}
	ms.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].QError != out[j].QError {
			return out[i].QError > out[j].QError
		}
		return out[i].ID < out[j].ID
	})
	return out
}
