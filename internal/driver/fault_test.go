package driver

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// slowHook holds every query past the given deadline, making timeout
// expiry deterministic instead of a race against tiny queries.
func slowHook(d time.Duration) func(string) {
	return func(string) { time.Sleep(d) }
}

// TestQueryTimeoutSkipPolicy: with OnErrorSkip, a run where every query
// exceeds its deadline still completes, records every query as a
// timeout, and reports the counts with the result marked unpublishable.
func TestQueryTimeoutSkipPolicy(t *testing.T) {
	cfg := tinyCfg()
	cfg.QueryTimeout = time.Millisecond
	cfg.QueryHook = slowHook(10 * time.Millisecond)
	cfg.OnError = OnErrorSkip
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("skip-policy run failed: %v", err)
	}
	total := 2 * cfg.Streams * len(cfg.QueryIDs)
	if len(res.Queries) != total {
		t.Fatalf("recorded %d query timings, want %d", len(res.Queries), total)
	}
	for _, qt := range res.Queries {
		if qt.Err == "" || !qt.TimedOut {
			t.Fatalf("query %d run %d stream %d not recorded as timeout: %+v",
				qt.QueryID, qt.Run, qt.Stream, qt)
		}
	}
	if res.Report.QueryErrors != total || res.Report.QueryTimeouts != total {
		t.Errorf("report counts %d/%d, want %d/%d",
			res.Report.QueryErrors, res.Report.QueryTimeouts, total, total)
	}
	if res.Report.Official {
		t.Error("run with failed queries marked official")
	}
	if s := res.Report.String(); !strings.Contains(s, "Query Errors") {
		t.Errorf("report rendering missing error line:\n%s", s)
	}
}

// TestQueryTimeoutAbortPolicy: the default policy fails the run with
// the deadline error instead of burying it.
func TestQueryTimeoutAbortPolicy(t *testing.T) {
	cfg := tinyCfg()
	cfg.QueryTimeout = time.Millisecond
	cfg.QueryHook = slowHook(10 * time.Millisecond)
	_, err := Run(cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestInjectedPanicSkipPolicy is the acceptance scenario: one injected
// storage/exec panic becomes one per-query error in the report while
// every other query in every stream completes.
func TestInjectedPanicSkipPolicy(t *testing.T) {
	cfg := tinyCfg()
	cfg.OnError = OnErrorSkip
	var fired atomic.Bool
	cfg.QueryHook = func(string) {
		if fired.CompareAndSwap(false, true) {
			panic("injected storage fault")
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("skip-policy run failed: %v", err)
	}
	total := 2 * cfg.Streams * len(cfg.QueryIDs)
	if len(res.Queries) != total {
		t.Fatalf("recorded %d query timings, want %d", len(res.Queries), total)
	}
	var failed []QueryTiming
	for _, qt := range res.Queries {
		if qt.Err != "" {
			failed = append(failed, qt)
		}
	}
	if len(failed) != 1 {
		t.Fatalf("%d failed queries, want exactly 1: %+v", len(failed), failed)
	}
	if !strings.Contains(failed[0].Err, "injected storage fault") || failed[0].TimedOut {
		t.Errorf("failure misrecorded: %+v", failed[0])
	}
	if res.Report.QueryErrors != 1 || res.Report.QueryTimeouts != 0 {
		t.Errorf("report counts %d errors / %d timeouts, want 1/0",
			res.Report.QueryErrors, res.Report.QueryTimeouts)
	}
}

// TestInjectedPanicAbortPolicy: under abort, the injected failure
// surfaces as the run error (not a secondary cancellation) and names
// the fault.
func TestInjectedPanicAbortPolicy(t *testing.T) {
	cfg := tinyCfg()
	var fired atomic.Bool
	cfg.QueryHook = func(string) {
		if fired.CompareAndSwap(false, true) {
			panic("injected storage fault")
		}
	}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "injected storage fault") {
		t.Fatalf("err = %v, want the injected fault", err)
	}
}

// TestRunContextCancelled: a cancelled run context aborts the
// benchmark.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, tinyCfg()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOnErrorValidation rejects unknown policies up front.
func TestOnErrorValidation(t *testing.T) {
	cfg := tinyCfg()
	cfg.OnError = "retry"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "OnError") {
		t.Fatalf("err = %v, want OnError validation failure", err)
	}
}
