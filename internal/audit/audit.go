// Package audit implements the validation checks a TPC-DS result would
// face in the audit: database population checks (row counts against the
// scaling model, referential integrity, SCD invariants, the seasonal
// data distribution) and execution checks (ACID-adjacent sanity after
// data maintenance). TPC results are audited before publication; this
// package makes the checks available to the driver and the command-line
// tools rather than burying them in tests.
package audit

import (
	"fmt"
	"strings"

	"tpcds/internal/dist"
	"tpcds/internal/scaling"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Finding is one audit observation.
type Finding struct {
	Check   string
	Table   string
	Message string
}

func (f Finding) String() string {
	if f.Table != "" {
		return fmt.Sprintf("[%s] %s: %s", f.Check, f.Table, f.Message)
	}
	return fmt.Sprintf("[%s] %s", f.Check, f.Message)
}

// Report is the outcome of an audit run.
type Report struct {
	Checks   int
	Findings []Finding
}

// Passed reports whether the audit found no violations.
func (r *Report) Passed() bool { return len(r.Findings) == 0 }

func (r *Report) add(check, table, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Check: check, Table: table, Message: fmt.Sprintf(format, args...),
	})
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "audit: %d checks, %d findings\n", r.Checks, len(r.Findings))
	for _, f := range r.Findings {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}

// Options selects which checks run and their parameters.
type Options struct {
	// SF, when positive, enables row count validation against the
	// scaling model. Leave zero after data maintenance (counts shift).
	SF float64
	// SkipSeasonality disables the Figure 2 distribution check (tiny
	// development databases are too noisy for it).
	SkipSeasonality bool
}

// Run audits the database.
func Run(db *storage.DB, opts Options) *Report {
	r := &Report{}
	checkTablesPresent(db, r)
	if opts.SF > 0 {
		checkRowCounts(db, opts.SF, r)
	}
	checkReferentialIntegrity(db, r)
	checkSCDInvariants(db, r)
	checkFactLinks(db, r)
	if !opts.SkipSeasonality {
		checkSeasonality(db, r)
	}
	return r
}

func checkTablesPresent(db *storage.DB, r *Report) {
	r.Checks++
	for _, def := range schema.Tables() {
		t := db.Table(def.Name)
		if t == nil {
			r.add("tables-present", def.Name, "table missing")
			continue
		}
		if t.NumRows() == 0 {
			r.add("tables-present", def.Name, "table empty")
		}
	}
}

func checkRowCounts(db *storage.DB, sf float64, r *Report) {
	r.Checks++
	for _, def := range schema.Tables() {
		t := db.Table(def.Name)
		if t == nil {
			continue
		}
		want := scaling.Rows(def.Name, sf)
		got := int64(t.NumRows())
		if got != want {
			r.add("row-counts", def.Name, "%d rows, scaling model requires %d at SF %v",
				got, want, sf)
		}
	}
}

func checkReferentialIntegrity(db *storage.DB, r *Report) {
	r.Checks++
	for _, def := range schema.Tables() {
		t := db.Table(def.Name)
		if t == nil {
			continue
		}
		for _, fk := range def.ForeignKeys {
			ref := db.Table(fk.Ref)
			if ref == nil {
				r.add("referential-integrity", def.Name, "FK %s references missing table %s",
					fk.Column, fk.Ref)
				continue
			}
			// Surrogate keys are dense 1..N in every dimension; a value
			// outside that range dangles. (An exact key-set check would
			// also catch holes; dense ranges make the cheap check exact.)
			maxSK := collectMaxSK(ref)
			col := def.ColumnIndex(fk.Column)
			vals, nulls := t.ScanInt64(col)
			bad := 0
			for i, v := range vals {
				if !nulls[i] && (v < 1 || v > maxSK) {
					bad++
				}
			}
			if bad > 0 {
				r.add("referential-integrity", def.Name, "%d dangling values in %s -> %s",
					bad, fk.Column, fk.Ref)
			}
		}
	}
}

func collectMaxSK(t *storage.Table) int64 {
	pk := t.Def.ColumnIndex(t.Def.PrimaryKey[0])
	vals, nulls := t.ScanInt64(pk)
	var max int64
	for i, v := range vals {
		if !nulls[i] && v > max {
			max = v
		}
	}
	return max
}

func checkSCDInvariants(db *storage.DB, r *Report) {
	r.Checks++
	for _, def := range schema.Tables() {
		if def.SCD != schema.HistoryKeeping {
			continue
		}
		t := db.Table(def.Name)
		if t == nil {
			continue
		}
		bkCol := def.ColumnIndex(def.BusinessKey)
		endCol := -1
		startCol := -1
		for i, c := range def.Columns {
			if strings.HasSuffix(c.Name, "rec_end_date") {
				endCol = i
			}
			if strings.HasSuffix(c.Name, "rec_start_date") {
				startCol = i
			}
		}
		open := map[string]int{}
		for row := 0; row < t.NumRows(); row++ {
			bk := t.Get(row, bkCol).S
			if t.Get(row, endCol).IsNull() {
				open[bk]++
			} else if storage.Compare(t.Get(row, endCol), t.Get(row, startCol)) < 0 {
				r.add("scd-invariants", def.Name, "row %d: rec_end before rec_start", row)
			}
		}
		for bk, n := range open {
			if n != 1 {
				r.add("scd-invariants", def.Name, "business key %s has %d open revisions, want 1", bk, n)
			}
		}
	}
}

func checkFactLinks(db *storage.DB, r *Report) {
	r.Checks++
	for _, link := range schema.FactLinks() {
		from := db.Table(link.From)
		to := db.Table(link.To)
		if from == nil || to == nil {
			continue
		}
		pairs := map[[2]int64]bool{}
		toDef := to.Def
		ic := toDef.ColumnIndex(toDef.PrimaryKey[0])
		oc := toDef.ColumnIndex(toDef.PrimaryKey[1])
		for row := 0; row < to.NumRows(); row++ {
			pairs[[2]int64{to.Get(row, ic).AsInt(), to.Get(row, oc).AsInt()}] = true
		}
		fi := from.Def.ColumnIndex(link.Columns[0])
		fo := from.Def.ColumnIndex(link.Columns[1])
		misses := 0
		for row := 0; row < from.NumRows(); row++ {
			if !pairs[[2]int64{from.Get(row, fi).AsInt(), from.Get(row, fo).AsInt()}] {
				misses++
			}
		}
		// Data maintenance intentionally deletes sales in a date range
		// while their returns (dated later) survive, so a small orphan
		// fraction is legitimate after a refresh; flag only wholesale
		// breakage.
		if from.NumRows() > 0 && misses*5 > from.NumRows() {
			r.add("fact-links", link.From, "%d/%d rows do not join to %s",
				misses, from.NumRows(), link.To)
		}
	}
}

func checkSeasonality(db *storage.DB, r *Report) {
	r.Checks++
	ss := db.Table("store_sales")
	if ss == nil || ss.NumRows() < 1000 {
		return // too small to judge
	}
	dateCol := ss.Def.ColumnIndex("ss_sold_date_sk")
	counts := make([]float64, 13)
	vals, nulls := ss.ScanInt64(dateCol)
	total := 0.0
	for i, v := range vals {
		if nulls[i] {
			continue
		}
		_, m, _ := storage.YMDFromDays(storage.DaysFromSK(v))
		counts[m]++
		total++
	}
	if total == 0 {
		r.add("seasonality", "store_sales", "no dated sales rows")
		return
	}
	// December must exceed the average low-zone month by a clear margin
	// (the census-derived zones of Figure 2).
	var low float64
	for _, m := range dist.ZoneLow.Months() {
		low += counts[m]
	}
	low /= float64(len(dist.ZoneLow.Months()))
	if counts[12] < low*1.2 {
		r.add("seasonality", "store_sales",
			"December share %.1f%% not above low-zone months %.1f%%: zones missing",
			counts[12]/total*100, low/total*100)
	}
}
