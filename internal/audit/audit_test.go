package audit

import (
	"strings"
	"testing"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/maintenance"
	"tpcds/internal/storage"
)

const testSF = 0.001

var freshDB = datagen.New(testSF, 13).GenerateAll()

func TestFreshDatabasePassesAudit(t *testing.T) {
	r := Run(freshDB, Options{SF: testSF})
	if !r.Passed() {
		t.Fatalf("fresh database failed audit:\n%s", r.String())
	}
	if r.Checks < 5 {
		t.Errorf("only %d checks ran", r.Checks)
	}
}

func TestAuditAfterMaintenance(t *testing.T) {
	db := datagen.New(testSF, 14).GenerateAll()
	eng := exec.New(db)
	rs, err := maintenance.GenerateRefresh(db, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := maintenance.Run(eng, rs); err != nil {
		t.Fatal(err)
	}
	// Row counts shift after maintenance (SF check off), but every
	// structural invariant must survive.
	r := Run(db, Options{})
	if !r.Passed() {
		t.Fatalf("post-maintenance audit failed:\n%s", r.String())
	}
}

func TestAuditDetectsMissingTable(t *testing.T) {
	db := storage.NewDB() // empty database: everything missing
	r := Run(db, Options{SkipSeasonality: true})
	if r.Passed() {
		t.Fatal("empty database passed the audit")
	}
	if !strings.Contains(r.String(), "table missing") {
		t.Errorf("report does not mention missing tables:\n%s", r.String())
	}
}

func TestAuditDetectsDanglingFK(t *testing.T) {
	db := datagen.New(testSF, 15).GenerateAll()
	// Corrupt a foreign key.
	ss := db.Table("store_sales")
	col := ss.Def.ColumnIndex("ss_item_sk")
	ss.SetValue(0, col, storage.Int(99_999_999))
	r := Run(db, Options{SkipSeasonality: true})
	found := false
	for _, f := range r.Findings {
		if f.Check == "referential-integrity" && strings.Contains(f.Message, "ss_item_sk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dangling FK not detected:\n%s", r.String())
	}
}

func TestAuditDetectsSCDViolation(t *testing.T) {
	db := datagen.New(testSF, 16).GenerateAll()
	// Open a second revision for an item business key.
	item := db.Table("item")
	endCol := item.Def.ColumnIndex("i_rec_end_date")
	// Find a closed revision and open it (its entity now has 2 open).
	for r := 0; r < item.NumRows(); r++ {
		if !item.Get(r, endCol).IsNull() {
			item.SetValue(r, endCol, storage.Null)
			break
		}
	}
	rep := Run(db, Options{SkipSeasonality: true})
	found := false
	for _, f := range rep.Findings {
		if f.Check == "scd-invariants" && strings.Contains(f.Message, "open revisions") {
			found = true
		}
	}
	if !found {
		t.Fatalf("SCD violation not detected:\n%s", rep.String())
	}
}

func TestAuditDetectsWrongRowCounts(t *testing.T) {
	db := datagen.New(testSF, 17).GenerateAll()
	db.Table("store").Delete([]int{0})
	r := Run(db, Options{SF: testSF, SkipSeasonality: true})
	found := false
	for _, f := range r.Findings {
		if f.Check == "row-counts" && f.Table == "store" {
			found = true
		}
	}
	if !found {
		t.Fatalf("row count violation not detected:\n%s", r.String())
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Check: "x", Table: "t", Message: "m"}
	if f.String() != "[x] t: m" {
		t.Errorf("Finding.String = %q", f.String())
	}
	g := Finding{Check: "x", Message: "m"}
	if g.String() != "[x] m" {
		t.Errorf("Finding.String = %q", g.String())
	}
}
