package scaling_test

import (
	"fmt"

	"tpcds/internal/scaling"
)

// Fact tables scale linearly; dimensions follow the paper's sub-linear
// anchors (Table 2) so cardinalities stay realistic at every scale.
func ExampleRows() {
	for _, sf := range []float64{100, 1000, 100000} {
		fmt.Printf("SF %-6v store_sales=%-12d customer=%-9d store=%d\n",
			sf,
			scaling.Rows("store_sales", sf),
			scaling.Rows("customer", sf),
			scaling.Rows("store", sf))
	}
	// Output:
	// SF 100    store_sales=288000000    customer=2000000   store=200
	// SF 1000   store_sales=2880000000   customer=8000000   store=500
	// SF 100000 store_sales=288000000000 customer=100000000 store=1500
}
