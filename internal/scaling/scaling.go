// Package scaling implements the TPC-DS data-set scaling model (paper
// §3.1, Table 2): fact tables scale linearly with the scale factor while
// dimensions scale sub-linearly, avoiding the unrealistic cardinalities
// the paper criticizes in TPC-H ("20 billion distinct parts to 15 billion
// customers").
//
// The model is anchored on the rowcounts the paper publishes for scale
// factors 100, 1000, 10000 and 100000 (Table 2) and extends to the other
// official scale factors (300, 3000, 30000) by log-linear interpolation,
// the natural model for sub-linear dimension growth. Fractional scale
// factors below 100 are supported for development and benchmarking runs;
// they exercise identical code paths on laptop-sized data but are not
// publishable (see metric.ValidateScaleFactor).
package scaling

import (
	"fmt"
	"math"
	"sort"
)

// OfficialScaleFactors lists the discrete scale factors at which TPC-DS
// results may be published (§3: "Benchmark publications using other scale
// factors are not valid"). Each corresponds to the raw data size in GB.
var OfficialScaleFactors = []int{100, 300, 1000, 3000, 10000, 30000, 100000}

// IsOfficial reports whether sf is a publishable scale factor.
func IsOfficial(sf float64) bool {
	for _, o := range OfficialScaleFactors {
		if sf == float64(o) {
			return true
		}
	}
	return false
}

// anchor is a (scale factor, rowcount) calibration point.
type anchor struct {
	sf   float64
	rows int64
}

// tableModel describes how one table's cardinality responds to scale.
type tableModel struct {
	// linearPerSF, if > 0, makes rows = linearPerSF * SF (fact tables).
	linearPerSF float64
	// anchors, if set, define a piecewise log-log interpolation
	// (sub-linear dimensions).
	anchors []anchor
	// fixed, if > 0, is a scale-independent cardinality.
	fixed int64
	// min is a floor applied after evaluation so tiny development scale
	// factors still produce usable dimension tables.
	min int64
}

// Table 2 of the paper publishes: store_sales 288M/2.9B/30B/297B,
// store_returns 14M/147M/1.5B/15B, store 200/500/750/1500,
// customer 2M/8M/20M/100M, item 200K/300K/400K/500K at SF
// 100/1000/10000/100000. Those anchors appear verbatim below; the
// remaining tables follow the same regimes with coefficients chosen to
// keep per-channel proportions (catalog ~ 1/2 of store volume, web ~ 1/4,
// returns ~ 5-10% of sales — consistent with the 100GB example in §3.1).
var models = map[string]tableModel{
	// Fact tables: linear in SF.
	"store_sales":     {linearPerSF: 2_880_000, min: 100},
	"store_returns":   {linearPerSF: 144_000, min: 10},
	"catalog_sales":   {linearPerSF: 1_440_000, min: 50},
	"catalog_returns": {linearPerSF: 144_000, min: 10},
	"web_sales":       {linearPerSF: 720_000, min: 25},
	"web_returns":     {linearPerSF: 72_000, min: 5},
	"inventory":       {linearPerSF: 3_990_000, min: 200},

	// Sub-linear dimensions, anchored on Table 2 where published.
	"store": {anchors: []anchor{{100, 200}, {1000, 500}, {10000, 750}, {100000, 1500}}, min: 4},
	"customer": {anchors: []anchor{
		{100, 2_000_000}, {1000, 8_000_000}, {10000, 20_000_000}, {100000, 100_000_000}}, min: 100},
	"item": {anchors: []anchor{
		{100, 200_000}, {1000, 300_000}, {10000, 400_000}, {100000, 500_000}}, min: 50},
	"customer_address": {anchors: []anchor{
		{100, 1_000_000}, {1000, 4_000_000}, {10000, 10_000_000}, {100000, 50_000_000}}, min: 50},
	"call_center": {anchors: []anchor{{100, 24}, {1000, 42}, {10000, 54}, {100000, 60}}, min: 2},
	"catalog_page": {anchors: []anchor{
		{100, 20_400}, {1000, 30_000}, {10000, 40_000}, {100000, 50_000}}, min: 20},
	"web_site":  {anchors: []anchor{{100, 24}, {1000, 54}, {10000, 78}, {100000, 96}}, min: 2},
	"web_page":  {anchors: []anchor{{100, 2040}, {1000, 3000}, {10000, 4002}, {100000, 5004}}, min: 4},
	"warehouse": {anchors: []anchor{{100, 15}, {1000, 20}, {10000, 25}, {100000, 30}}, min: 2},
	"promotion": {anchors: []anchor{{100, 1000}, {1000, 1500}, {10000, 2000}, {100000, 2500}}, min: 5},

	// Static cardinalities (domain-scaled or calendar-defined).
	"customer_demographics":  {fixed: 1_920_800},
	"household_demographics": {fixed: 7200},
	"income_band":            {fixed: 20},
	"reason":                 {anchors: []anchor{{100, 55}, {1000, 65}, {10000, 70}, {100000, 75}}, min: 3},
	"ship_mode":              {fixed: 20},
	"time_dim":               {fixed: 86_400},
	"date_dim":               {fixed: 73_049},
}

// Rows returns the cardinality of the named table at scale factor sf.
// It panics on unknown table names (a programming error: the schema
// catalog and the scaling model must stay in sync; TestModelCoversSchema
// enforces this).
func Rows(table string, sf float64) int64 {
	m, ok := models[table]
	if !ok {
		panic(fmt.Sprintf("scaling: no model for table %q", table))
	}
	if sf <= 0 {
		panic(fmt.Sprintf("scaling: non-positive scale factor %v", sf))
	}
	var rows int64
	switch {
	case m.fixed > 0:
		rows = m.fixed
	case m.linearPerSF > 0:
		rows = int64(math.Round(m.linearPerSF * sf))
	default:
		rows = interpolate(m.anchors, sf)
	}
	if rows < m.min {
		rows = m.min
	}
	return rows
}

// interpolate evaluates a piecewise log-log model through the anchors:
// between anchors rowcount follows rows = a * sf^b, which is linear in
// log-log space. Outside the anchored range the nearest segment's
// exponent is extended.
func interpolate(anchors []anchor, sf float64) int64 {
	if len(anchors) == 0 {
		panic("scaling: empty anchors")
	}
	if len(anchors) == 1 {
		return anchors[0].rows
	}
	// Below the first anchor (development scale factors) dimensions
	// follow square-root scaling from the smallest official anchor. The
	// published log-log exponents are very flat for tables like item
	// (x2.5 over x1000 SF); extending them downward would leave a tiny
	// development database with tens of thousands of items and only a
	// few thousand fact rows, inverting the fact/dimension proportions
	// the workload depends on.
	if first := anchors[0]; sf < first.sf {
		rows := float64(first.rows) * math.Sqrt(sf/first.sf)
		return int64(math.Round(rows))
	}
	// Find the segment. sort.Search returns the first anchor with
	// anchor.sf >= sf.
	i := sort.Search(len(anchors), func(i int) bool { return anchors[i].sf >= sf })
	var lo, hi anchor
	switch {
	case i == 0:
		lo, hi = anchors[0], anchors[1]
	case i == len(anchors):
		lo, hi = anchors[len(anchors)-2], anchors[len(anchors)-1]
	default:
		lo, hi = anchors[i-1], anchors[i]
	}
	b := math.Log(float64(hi.rows)/float64(lo.rows)) / math.Log(hi.sf/lo.sf)
	rows := float64(lo.rows) * math.Pow(sf/lo.sf, b)
	return int64(math.Round(rows))
}

// TableNames returns the names covered by the model in sorted order.
func TableNames() []string {
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsLinear reports whether the table scales linearly (fact tables).
func IsLinear(table string) bool {
	m, ok := models[table]
	return ok && m.linearPerSF > 0
}

// RawDataBytes estimates the total flat-file size in bytes at sf, given
// per-table average row widths. The scale factor is defined as the raw
// data size in GB, so this should come out near sf GB; a unit test checks
// the model's self-consistency within a factor of ~2 (the paper's widths
// are themselves approximate).
func RawDataBytes(sf float64, avgRowBytes map[string]float64) float64 {
	// Sum in sorted name order: float addition is not associative, so
	// map-order summation would drift by ULPs between runs.
	names := make([]string, 0, len(avgRowBytes))
	for n := range avgRowBytes {
		names = append(names, n)
	}
	sort.Strings(names)
	var total float64
	for _, n := range names {
		total += float64(Rows(n, sf)) * avgRowBytes[n]
	}
	return total
}
