package scaling

import (
	"math"
	"testing"
	"testing/quick"

	"tpcds/internal/schema"
)

// TestTable2RowcountsMatchPaper pins the exact rowcounts the paper
// publishes in Table 2 at scale factors 100, 1000, 10000 and 100000.
func TestTable2RowcountsMatchPaper(t *testing.T) {
	cases := []struct {
		table string
		sf    float64
		want  int64
	}{
		{"store_sales", 100, 288_000_000},
		{"store_sales", 1000, 2_880_000_000},
		{"store_sales", 10000, 28_800_000_000},
		{"store_sales", 100000, 288_000_000_000},
		{"store_returns", 100, 14_400_000},
		{"store_returns", 1000, 144_000_000},
		{"store", 100, 200},
		{"store", 1000, 500},
		{"store", 10000, 750},
		{"store", 100000, 1500},
		{"customer", 100, 2_000_000},
		{"customer", 1000, 8_000_000},
		{"customer", 10000, 20_000_000},
		{"customer", 100000, 100_000_000},
		{"item", 100, 200_000},
		{"item", 1000, 300_000},
		{"item", 10000, 400_000},
		{"item", 100000, 500_000},
	}
	for _, c := range cases {
		got := Rows(c.table, c.sf)
		// The paper rounds store_sales to 288M/2.9B/30B/297B; our linear
		// model must land within 5% of the published values.
		diff := math.Abs(float64(got-c.want)) / float64(c.want)
		if diff > 0.05 {
			t.Errorf("Rows(%s, %v) = %d, paper value %d (%.1f%% off)",
				c.table, c.sf, got, c.want, diff*100)
		}
	}
}

// TestPaper100GBNarrative checks the §3.1 prose: "At scale factor 100
// ... 58 Million items are sold per year by 2 Million customers in 200
// stores" — store_sales covers a 5-year history, so ~288M rows / 5 years
// ≈ 58M item-sales per year.
func TestPaper100GBNarrative(t *testing.T) {
	perYear := float64(Rows("store_sales", 100)) / 5
	if perYear < 50e6 || perYear > 65e6 {
		t.Errorf("items sold per year at SF100 = %.0fM, paper says ~58M", perYear/1e6)
	}
	if Rows("customer", 100) != 2_000_000 {
		t.Errorf("customers at SF100 = %d, paper says 2M", Rows("customer", 100))
	}
	if Rows("store", 100) != 200 {
		t.Errorf("stores at SF100 = %d, paper says 200", Rows("store", 100))
	}
}

// TestModelCoversSchema ensures every schema table has a scaling model
// and vice versa.
func TestModelCoversSchema(t *testing.T) {
	inSchema := map[string]bool{}
	for _, tb := range schema.Tables() {
		inSchema[tb.Name] = true
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("no scaling model for schema table %s", tb.Name)
				}
			}()
			Rows(tb.Name, 100)
		}()
	}
	for _, name := range TableNames() {
		if !inSchema[name] {
			t.Errorf("scaling model covers unknown table %s", name)
		}
	}
}

// TestFactsLinearDimsSublinear verifies the paper's core scaling claim:
// facts grow 10x per 10x SF; dimensions grow strictly slower.
func TestFactsLinearDimsSublinear(t *testing.T) {
	for _, tb := range schema.Tables() {
		lo := Rows(tb.Name, 100)
		hi := Rows(tb.Name, 1000)
		ratio := float64(hi) / float64(lo)
		if tb.Kind == schema.Fact {
			if math.Abs(ratio-10) > 0.01 {
				t.Errorf("fact %s grows %.2fx per 10x SF, want 10x", tb.Name, ratio)
			}
			if !IsLinear(tb.Name) {
				t.Errorf("fact %s not marked linear", tb.Name)
			}
		} else {
			if ratio > 5.01 {
				t.Errorf("dimension %s grows %.2fx per 10x SF, want sub-linear", tb.Name, ratio)
			}
			if IsLinear(tb.Name) {
				t.Errorf("dimension %s marked linear", tb.Name)
			}
		}
	}
}

// TestRealisticAtHugeScale reproduces the paper's critique of TPC-H: at
// the largest scale factor TPC-DS keeps customers and items realistic
// (100M customers, 500K items — not 15B customers and 20B parts).
func TestRealisticAtHugeScale(t *testing.T) {
	if c := Rows("customer", 100000); c > 200_000_000 {
		t.Errorf("customers at SF100000 = %d: unrealistically large", c)
	}
	if i := Rows("item", 100000); i > 1_000_000 {
		t.Errorf("items at SF100000 = %d: unrealistically large", i)
	}
}

func TestOfficialScaleFactors(t *testing.T) {
	want := []int{100, 300, 1000, 3000, 10000, 30000, 100000}
	if len(OfficialScaleFactors) != len(want) {
		t.Fatalf("official SF list length %d, want %d", len(OfficialScaleFactors), len(want))
	}
	for i, sf := range want {
		if OfficialScaleFactors[i] != sf {
			t.Errorf("official SF[%d] = %d, want %d", i, OfficialScaleFactors[i], sf)
		}
		if !IsOfficial(float64(sf)) {
			t.Errorf("IsOfficial(%d) = false", sf)
		}
	}
	for _, sf := range []float64{0.01, 1, 50, 200, 99999} {
		if IsOfficial(sf) {
			t.Errorf("IsOfficial(%v) = true, want false", sf)
		}
	}
}

// TestInterpolatedScaleFactors checks the unpublished official SFs (300,
// 3000, 30000) fall strictly between their published neighbours.
func TestInterpolatedScaleFactors(t *testing.T) {
	for _, table := range []string{"store", "customer", "item", "call_center"} {
		for _, trio := range [][3]float64{{100, 300, 1000}, {1000, 3000, 10000}, {10000, 30000, 100000}} {
			lo, mid, hi := Rows(table, trio[0]), Rows(table, trio[1]), Rows(table, trio[2])
			if !(lo < mid && mid < hi) {
				t.Errorf("%s: Rows not monotone across SF %v: %d, %d, %d", table, trio, lo, mid, hi)
			}
		}
	}
}

// TestTinyScaleFactorsUsable verifies development scale factors produce
// non-degenerate tables.
func TestTinyScaleFactorsUsable(t *testing.T) {
	for _, tb := range schema.Tables() {
		if n := Rows(tb.Name, 0.01); n < 1 {
			t.Errorf("%s has %d rows at SF 0.01", tb.Name, n)
		}
	}
	// Dimension floors keep joins meaningful at tiny SF.
	if Rows("store", 0.01) < 2 {
		t.Error("store too small at tiny SF for multi-store queries")
	}
}

func TestStaticTables(t *testing.T) {
	// Calendar and demographic cross-product tables are scale-invariant.
	for _, name := range []string{"date_dim", "time_dim", "customer_demographics", "income_band", "ship_mode"} {
		if Rows(name, 100) != Rows(name, 100000) {
			t.Errorf("%s should be scale-invariant", name)
		}
	}
	if Rows("date_dim", 100) != 73_049 {
		t.Errorf("date_dim = %d rows, want 73049 (calendar 1900-2100)", Rows("date_dim", 100))
	}
	if Rows("time_dim", 100) != 86_400 {
		t.Errorf("time_dim = %d rows, want 86400 (seconds per day)", Rows("time_dim", 100))
	}
}

// Property: Rows is monotone non-decreasing in SF for every table.
func TestQuickMonotone(t *testing.T) {
	tables := TableNames()
	f := func(a, b uint16, ti uint8) bool {
		sfA := 0.01 + float64(a)
		sfB := 0.01 + float64(b)
		if sfA > sfB {
			sfA, sfB = sfB, sfA
		}
		name := tables[int(ti)%len(tables)]
		return Rows(name, sfA) <= Rows(name, sfB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRawDataSizeSelfConsistent: the scale factor is defined as raw data
// size in GB; with our estimated row widths the model should land within
// a factor of ~2 of that definition at the anchored SFs.
func TestRawDataSizeSelfConsistent(t *testing.T) {
	widths := map[string]float64{}
	for _, tb := range schema.Tables() {
		widths[tb.Name] = tb.AvgRowBytes()
	}
	for _, sf := range []float64{100, 1000} {
		got := RawDataBytes(sf, widths)
		want := sf * 1e9
		if got < want/2 || got > want*2 {
			t.Errorf("raw data at SF %v = %.1f GB, want within 2x of %.0f GB",
				sf, got/1e9, sf)
		}
	}
}

func TestRowsPanicsOnUnknownTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rows on unknown table did not panic")
		}
	}()
	Rows("no_such_table", 100)
}

func TestRowsPanicsOnBadSF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rows with sf=0 did not panic")
		}
	}()
	Rows("store_sales", 0)
}
