package exec

import (
	"context"
	"testing"

	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// statsDB builds a database with one single-column integer table.
func statsDB(name, col string, vals []storage.Value) (*storage.DB, *storage.Table) {
	db := storage.NewDB()
	t := db.Create(&schema.Table{
		Name: name, Kind: schema.Dimension,
		Columns: []schema.Column{{Name: col, Type: schema.Integer, Nullable: true}},
	})
	for _, v := range vals {
		t.Append([]storage.Value{v})
	}
	return db, t
}

// TestColumnStatsAllNullInvalid is the regression test for the
// statistics validity bug: an integer column holding only NULLs (or no
// rows at all) has no min/max, and marking it valid fed a fabricated
// min=max=0 domain into selectivity estimation.
func TestColumnStatsAllNullInvalid(t *testing.T) {
	qc := &qctx{ctx: context.Background()}

	db, tab := statsDB("n", "c", []storage.Value{storage.Null, storage.Null, storage.Null})
	e := New(db)
	if st := e.columnStats(qc, tab, 0); st.valid {
		t.Fatalf("all-NULL column reported valid stats: %+v", st)
	}

	db, tab = statsDB("empty", "c", nil)
	e = New(db)
	if st := e.columnStats(qc, tab, 0); st.valid {
		t.Fatalf("empty column reported valid stats: %+v", st)
	}

	// Sanity: one non-NULL value is enough to be valid.
	db, tab = statsDB("one", "c", []storage.Value{storage.Null, storage.Int(7)})
	e = New(db)
	st := e.columnStats(qc, tab, 0)
	if !st.valid || st.min != 7 || st.max != 7 || st.distinct != 1 || st.nonNull != 1 {
		t.Fatalf("single-value column stats wrong: %+v", st)
	}
}

// TestColumnStatsRefreshAfterSameSizeMutation is the regression test
// for the stale-cache bug: freshness used to be a row-count comparison,
// so maintenance that mutates values without changing the row count
// (UPDATE, or DELETE+INSERT of equal size) kept serving stale
// statistics. The per-table epoch makes any mutation visible.
func TestColumnStatsRefreshAfterSameSizeMutation(t *testing.T) {
	qc := &qctx{ctx: context.Background()}
	db, tab := statsDB("m", "c", []storage.Value{storage.Int(1), storage.Int(2), storage.Int(3)})
	e := New(db)

	st := e.columnStats(qc, tab, 0)
	if !st.valid || st.max != 3 {
		t.Fatalf("initial stats wrong: %+v", st)
	}

	// Mutate a value in place: row count is unchanged.
	tab.SetValue(2, 0, storage.Int(100))
	if tab.NumRows() != 3 {
		t.Fatalf("row count changed: %d", tab.NumRows())
	}
	st = e.columnStats(qc, tab, 0)
	if st.max != 100 {
		t.Fatalf("stats stale after same-size mutation: max = %d, want 100", st.max)
	}

	// Unchanged table: the cached entry (same epoch) is reused.
	again := e.columnStats(qc, tab, 0)
	if again != st {
		t.Fatalf("cache miss on unchanged table: %+v vs %+v", again, st)
	}
}

// TestStatsCacheKeyNoCollision is the regression test for the cache-key
// bug: a concatenated "table#stats#column" string key lets the pair
// (table "a#stats#b", column "c") collide with (table "a", column
// "b#stats#c"). The struct key keeps them distinct.
func TestStatsCacheKeyNoCollision(t *testing.T) {
	qc := &qctx{ctx: context.Background()}
	db := storage.NewDB()
	t1 := db.Create(&schema.Table{
		Name: "a#stats#b", Kind: schema.Dimension,
		Columns: []schema.Column{{Name: "c", Type: schema.Integer}},
	})
	t1.Append([]storage.Value{storage.Int(111)})
	t2 := db.Create(&schema.Table{
		Name: "a", Kind: schema.Dimension,
		Columns: []schema.Column{{Name: "b#stats#c", Type: schema.Integer}},
	})
	t2.Append([]storage.Value{storage.Int(222)})
	e := New(db)

	s1 := e.columnStats(qc, t1, 0)
	s2 := e.columnStats(qc, t2, 0)
	if s1.min != 111 || s2.min != 222 {
		t.Fatalf("colliding keys mixed up stats: %+v vs %+v", s1, s2)
	}
	// Both entries must coexist in the cache.
	s1b := e.columnStats(qc, t1, 0)
	if s1b != s1 {
		t.Fatalf("first entry evicted by the second: %+v vs %+v", s1b, s1)
	}
}
