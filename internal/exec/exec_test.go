package exec

import (
	"strings"
	"testing"

	"tpcds/internal/plan"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// miniDB builds a small star: fact(sales) + dims(item, dates) chosen so
// results are hand-checkable.
func miniDB() *storage.DB {
	db := storage.NewDB()

	item := &schema.Table{
		Name: "item", Kind: schema.Dimension,
		Columns: []schema.Column{
			{Name: "i_item_sk", Type: schema.Identifier},
			{Name: "i_brand", Type: schema.Char, Len: 20},
			{Name: "i_price", Type: schema.Decimal},
			{Name: "i_category", Type: schema.Char, Len: 20},
		},
		PrimaryKey: []string{"i_item_sk"},
	}
	it := db.Create(item)
	it.Append([]storage.Value{storage.Int(1), storage.Str("acme"), storage.Float(10), storage.Str("Books")})
	it.Append([]storage.Value{storage.Int(2), storage.Str("acme"), storage.Float(20), storage.Str("Home")})
	it.Append([]storage.Value{storage.Int(3), storage.Str("zeta"), storage.Float(30), storage.Str("Books")})
	it.Append([]storage.Value{storage.Int(4), storage.Str("zeta"), storage.Float(40), storage.Str("Sports")})

	dates := &schema.Table{
		Name: "dates", Kind: schema.Dimension,
		Columns: []schema.Column{
			{Name: "d_date_sk", Type: schema.Identifier},
			{Name: "d_year", Type: schema.Integer},
			{Name: "d_moy", Type: schema.Integer},
			{Name: "d_date", Type: schema.Date},
		},
		PrimaryKey: []string{"d_date_sk"},
	}
	dt := db.Create(dates)
	day := func(y, m, d int) int64 { return storage.DaysFromYMD(y, m, d) }
	dt.Append([]storage.Value{storage.Int(1), storage.Int(2000), storage.Int(1), storage.DateV(day(2000, 1, 15))})
	dt.Append([]storage.Value{storage.Int(2), storage.Int(2000), storage.Int(11), storage.DateV(day(2000, 11, 15))})
	dt.Append([]storage.Value{storage.Int(3), storage.Int(2001), storage.Int(11), storage.DateV(day(2001, 11, 15))})

	sales := &schema.Table{
		Name: "sales", Kind: schema.Fact,
		Columns: []schema.Column{
			{Name: "s_date_sk", Type: schema.Identifier, Nullable: true},
			{Name: "s_item_sk", Type: schema.Identifier},
			{Name: "s_qty", Type: schema.Integer},
			{Name: "s_price", Type: schema.Decimal},
			{Name: "s_ticket", Type: schema.Identifier},
		},
		PrimaryKey: []string{"s_item_sk", "s_ticket"},
		ForeignKeys: []schema.ForeignKey{
			{Column: "s_date_sk", Ref: "dates"},
			{Column: "s_item_sk", Ref: "item"},
		},
	}
	s := db.Create(sales)
	add := func(date, item, qty int64, price float64, ticket int64) {
		var dv storage.Value
		if date == 0 {
			dv = storage.Null
		} else {
			dv = storage.Int(date)
		}
		s.Append([]storage.Value{dv, storage.Int(item), storage.Int(qty), storage.Float(price), storage.Int(ticket)})
	}
	add(1, 1, 2, 10, 100) // Jan 2000, acme Books
	add(1, 2, 1, 20, 100) // Jan 2000, acme Home
	add(2, 1, 3, 10, 101) // Nov 2000, acme Books
	add(2, 3, 1, 30, 101) // Nov 2000, zeta Books
	add(3, 4, 5, 40, 102) // Nov 2001, zeta Sports
	add(0, 2, 1, 20, 103) // unknown date (NULL fk)

	returns := &schema.Table{
		Name: "returns", Kind: schema.Fact,
		Columns: []schema.Column{
			{Name: "r_item_sk", Type: schema.Identifier},
			{Name: "r_ticket", Type: schema.Identifier},
			{Name: "r_qty", Type: schema.Integer},
		},
		PrimaryKey: []string{"r_item_sk", "r_ticket"},
	}
	r := db.Create(returns)
	r.Append([]storage.Value{storage.Int(1), storage.Int(100), storage.Int(1)})
	r.Append([]storage.Value{storage.Int(4), storage.Int(102), storage.Int(2)})
	return db
}

func q(t *testing.T, e *Engine, query string) *Result {
	t.Helper()
	res, err := e.Query(query)
	if err != nil {
		t.Fatalf("Query(%s): %v", query, err)
	}
	return res
}

func TestSimpleScanAndFilter(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand, i_price FROM item WHERE i_price > 15 ORDER BY i_price`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].S != "acme" || res.Rows[0][1].AsFloat() != 20 {
		t.Errorf("first row = %v", res.Rows[0])
	}
	if res.Columns[0] != "i_brand" {
		t.Errorf("column name = %s", res.Columns[0])
	}
}

func TestSelectStar(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT * FROM dates ORDER BY d_date_sk`)
	if len(res.Columns) != 4 || len(res.Rows) != 3 {
		t.Fatalf("star select shape %dx%d", len(res.Rows), len(res.Columns))
	}
}

func TestJoinTwoTables(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT s_qty, i_brand FROM sales, item
		WHERE s_item_sk = i_item_sk AND i_brand = 'zeta' ORDER BY s_qty`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[1][0].AsInt() != 5 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestThreeWayJoinAggregation(t *testing.T) {
	e := New(miniDB())
	// Query 52 shape: revenue by brand for Nov 2000.
	res := q(t, e, `SELECT d_year, i_brand, SUM(s_qty * s_price) ext_price
		FROM dates, sales, item
		WHERE d_date_sk = s_date_sk AND s_item_sk = i_item_sk
		  AND d_moy = 11 AND d_year = 2000
		GROUP BY d_year, i_brand
		ORDER BY ext_price DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (acme, zeta)", len(res.Rows))
	}
	// acme: 3*10=30; zeta: 1*30=30 -> tie broken stably; verify sums.
	total := res.Rows[0][2].AsFloat() + res.Rows[1][2].AsFloat()
	if total != 60 {
		t.Errorf("total revenue = %v, want 60", total)
	}
}

// TestStarEqualsHash: the two physical strategies must return identical
// results — the core optimizer-correctness invariant of §2.1.
func TestStarEqualsHash(t *testing.T) {
	query := `SELECT i_brand, SUM(s_qty) total
		FROM sales, item, dates
		WHERE s_item_sk = i_item_sk AND s_date_sk = d_date_sk AND d_moy = 11
		GROUP BY i_brand ORDER BY i_brand`
	eHash := New(miniDB())
	eHash.SetMode(plan.ForceHashJoin)
	hashRes := q(t, eHash, query)

	eStar := New(miniDB())
	eStar.SetMode(plan.ForceStar)
	starRes := q(t, eStar, query)

	if len(hashRes.Rows) != len(starRes.Rows) {
		t.Fatalf("hash %d rows vs star %d rows", len(hashRes.Rows), len(starRes.Rows))
	}
	for i := range hashRes.Rows {
		for j := range hashRes.Rows[i] {
			if !storage.Equal(hashRes.Rows[i][j], starRes.Rows[i][j]) {
				t.Errorf("row %d col %d: hash %v star %v", i, j,
					hashRes.Rows[i][j], starRes.Rows[i][j])
			}
		}
	}
	if eStar.LastDecision().Strategy != plan.StarTransform {
		t.Errorf("star engine decided %v", eStar.LastDecision())
	}
}

func TestNullFKNeverJoins(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) c FROM sales, dates WHERE s_date_sk = d_date_sk`)
	if res.Rows[0][0].AsInt() != 5 {
		t.Errorf("joined rows = %v, want 5 (NULL date row excluded)", res.Rows[0][0])
	}
}

func TestLeftJoin(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT s_ticket, r_qty FROM sales LEFT OUTER JOIN returns
		ON s_item_sk = r_item_sk AND s_ticket = r_ticket
		ORDER BY s_ticket, s_item_sk`)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (all sales kept)", len(res.Rows))
	}
	matched := 0
	for _, row := range res.Rows {
		if !row[1].IsNull() {
			matched++
		}
	}
	if matched != 2 {
		t.Errorf("matched returns = %d, want 2", matched)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand, COUNT(*) c FROM sales, item
		WHERE s_item_sk = i_item_sk GROUP BY i_brand HAVING COUNT(*) > 2 ORDER BY i_brand`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "acme" || res.Rows[0][1].AsInt() != 4 {
		t.Fatalf("having result = %+v", res.Rows)
	}
}

func TestAggregatesAllKinds(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) n, COUNT(s_date_sk) nd, SUM(s_qty) sq,
		AVG(s_price) ap, MIN(s_price) mn, MAX(s_price) mx,
		COUNT(DISTINCT s_ticket) dt, STDDEV_SAMP(s_qty) sd
		FROM sales`)
	row := res.Rows[0]
	if row[0].AsInt() != 6 || row[1].AsInt() != 5 {
		t.Errorf("counts = %v, %v", row[0], row[1])
	}
	if row[2].AsInt() != 13 {
		t.Errorf("sum qty = %v, want 13", row[2])
	}
	if row[4].AsFloat() != 10 || row[5].AsFloat() != 40 {
		t.Errorf("min/max = %v/%v", row[4], row[5])
	}
	if row[6].AsInt() != 4 {
		t.Errorf("distinct tickets = %v, want 4", row[6])
	}
	if row[7].IsNull() {
		t.Error("stddev should be non-null")
	}
}

func TestEmptyGroupAggregates(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) c, SUM(s_qty) s FROM sales WHERE s_qty > 1000`)
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate over empty input must return one row")
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Errorf("COUNT over empty = %v, want 0", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", res.Rows[0][1])
	}
}

func TestWindowFunction(t *testing.T) {
	e := New(miniDB())
	// Query 20 shape: per-category revenue ratio within the category.
	res := q(t, e, `SELECT i_category, i_brand, SUM(s_qty * s_price) rev,
		SUM(s_qty * s_price) * 100 / SUM(SUM(s_qty * s_price)) OVER (PARTITION BY i_category) ratio
		FROM sales, item WHERE s_item_sk = i_item_sk
		GROUP BY i_category, i_brand ORDER BY i_category, i_brand`)
	// Ratios within each category must sum to ~100.
	sums := map[string]float64{}
	for _, row := range res.Rows {
		sums[row[0].S] += row[3].AsFloat()
	}
	for cat, total := range sums {
		if total < 99.99 || total > 100.01 {
			t.Errorf("category %s ratios sum to %v, want 100", cat, total)
		}
	}
	// Books: acme rev = 2*10+3*10 = 50, zeta = 30 -> 62.5 / 37.5.
	for _, row := range res.Rows {
		if row[0].S == "Books" && row[1].S == "acme" {
			if r := row[3].AsFloat(); r < 62.4 || r > 62.6 {
				t.Errorf("acme Books ratio = %v, want 62.5", r)
			}
		}
	}
}

func TestDistinct(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT DISTINCT i_brand FROM item ORDER BY i_brand`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct brands = %d, want 2", len(res.Rows))
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	e := New(miniDB())
	byAlias := q(t, e, `SELECT i_brand b, i_price p FROM item ORDER BY p DESC LIMIT 1`)
	if byAlias.Rows[0][1].AsFloat() != 40 {
		t.Errorf("order by alias: %v", byAlias.Rows[0])
	}
	byOrdinal := q(t, e, `SELECT i_brand, i_price FROM item ORDER BY 2 DESC LIMIT 1`)
	if byOrdinal.Rows[0][1].AsFloat() != 40 {
		t.Errorf("order by ordinal: %v", byOrdinal.Rows[0])
	}
}

func TestLimit(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_item_sk FROM item ORDER BY i_item_sk LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[1][0].AsInt() != 2 {
		t.Errorf("limit result = %+v", res.Rows)
	}
}

func TestInListAndBetween(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) c FROM item WHERE i_category IN ('Books', 'Sports')
		AND i_price BETWEEN 10 AND 35`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("count = %v, want 2 (items 1 and 3)", res.Rows[0][0])
	}
}

func TestLikeAndCase(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand,
		CASE WHEN i_price >= 30 THEN 'high' WHEN i_price >= 20 THEN 'mid' ELSE 'low' END tier
		FROM item WHERE i_brand LIKE 'ac%' ORDER BY i_price`)
	if len(res.Rows) != 2 {
		t.Fatalf("LIKE matched %d rows", len(res.Rows))
	}
	if res.Rows[0][1].S != "low" || res.Rows[1][1].S != "mid" {
		t.Errorf("case tiers = %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) c FROM sales
		WHERE s_item_sk IN (SELECT i_item_sk FROM item WHERE i_category = 'Books')`)
	if res.Rows[0][0].AsInt() != 3 {
		t.Errorf("count = %v, want 3", res.Rows[0][0])
	}
}

func TestScalarSubquery(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) c FROM item WHERE i_price > (SELECT AVG(i_price) FROM item)`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("count = %v, want 2 (avg is 25)", res.Rows[0][0])
	}
}

func TestCTE(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `WITH brand_rev AS (
		SELECT i_brand b, SUM(s_qty * s_price) rev FROM sales, item
		WHERE s_item_sk = i_item_sk GROUP BY i_brand)
		SELECT b FROM brand_rev WHERE rev > 100 ORDER BY b`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "zeta" {
		t.Fatalf("CTE result = %+v (zeta rev=230, acme rev=90)", res.Rows)
	}
}

func TestUnionAll(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand nm FROM item WHERE i_item_sk = 1
		UNION ALL SELECT i_brand FROM item WHERE i_item_sk = 3
		UNION ALL SELECT i_brand FROM item WHERE i_item_sk = 4
		ORDER BY nm`)
	if len(res.Rows) != 3 {
		t.Fatalf("union rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "acme" || res.Rows[2][0].S != "zeta" {
		t.Errorf("union order = %v", res.Rows)
	}
}

func TestFactToFactJoin(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT s_ticket, r_qty FROM sales, returns
		WHERE s_item_sk = r_item_sk AND s_ticket = r_ticket ORDER BY s_ticket`)
	if len(res.Rows) != 2 {
		t.Fatalf("fact-to-fact join rows = %d, want 2", len(res.Rows))
	}
}

func TestDateLiteralsAndArithmetic(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COUNT(*) c FROM dates
		WHERE d_date BETWEEN '2000-06-01' AND '2001-12-31'`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("date range count = %v, want 2", res.Rows[0][0])
	}
	res = q(t, e, `SELECT COUNT(*) c FROM dates WHERE d_date > DATE '2000-01-15' - 5`)
	if res.Rows[0][0].AsInt() != 3 {
		t.Errorf("date arithmetic count = %v, want 3", res.Rows[0][0])
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := New(miniDB())
	// NULL date fails both the predicate and its negation.
	a := q(t, e, `SELECT COUNT(*) c FROM sales WHERE s_date_sk = 1`)
	b := q(t, e, `SELECT COUNT(*) c FROM sales WHERE NOT (s_date_sk = 1)`)
	if a.Rows[0][0].AsInt()+b.Rows[0][0].AsInt() != 5 {
		t.Errorf("3VL: %v + %v should be 5 (one NULL row excluded from both)",
			a.Rows[0][0], b.Rows[0][0])
	}
	c := q(t, e, `SELECT COUNT(*) c FROM sales WHERE s_date_sk IS NULL`)
	if c.Rows[0][0].AsInt() != 1 {
		t.Errorf("IS NULL count = %v", c.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT COALESCE(s_date_sk, -1) d, ABS(-5) a, ROUND(2.567, 2) r,
		SUBSTR(i_brand, 1, 2) sb, UPPER(i_brand) up
		FROM sales, item WHERE s_item_sk = i_item_sk AND s_ticket = 103`)
	row := res.Rows[0]
	if row[0].AsInt() != -1 {
		t.Errorf("coalesce = %v", row[0])
	}
	if row[1].AsInt() != 5 {
		t.Errorf("abs = %v", row[1])
	}
	if row[2].AsFloat() != 2.57 {
		t.Errorf("round = %v", row[2])
	}
	if row[3].S != "ac" || row[4].S != "ACME" {
		t.Errorf("substr/upper = %v/%v", row[3], row[4])
	}
}

func TestErrorCases(t *testing.T) {
	e := New(miniDB())
	bad := []string{
		`SELECT x FROM nosuch`,
		`SELECT nosuch FROM item`,
		`SELECT i_item_sk FROM item, sales WHERE s_qty = 1 AND i_price = s_qty GROUP BY i_item_sk ORDER BY s_price`, // s_price not grouped
		`SELECT i_brand FROM item GROUP BY i_category`,                                                              // brand not grouped
		`SELECT s_qty FROM sales, sales WHERE s_qty = 1`,                                                            // duplicate binding
		`SELECT SUM(i_price) FROM item WHERE SUM(i_price) > 1`,                                                      // aggregate in WHERE
		`SELECT i_brand FROM item ORDER BY 9`,                                                                       // ordinal out of range
		`SELECT UNKNOWN_FUNC(i_price) FROM item`,                                                                    // unknown function
		`SELECT (SELECT i_brand, i_price FROM item) FROM item`,                                                      // multi-col scalar subquery
		`SELECT i_price FROM item WHERE i_price > (SELECT i_price FROM item)`,                                       // multi-row scalar
	}
	for _, query := range bad {
		if _, err := e.Query(query); err == nil {
			t.Errorf("Query(%s) unexpectedly succeeded", query)
		}
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	e := New(miniDB())
	// The circular-relationship pattern of §2.2: the same dimension
	// joined twice under different bindings.
	res := q(t, e, `SELECT a.i_brand, b.i_brand FROM item a, item b
		WHERE a.i_category = b.i_category AND a.i_item_sk < b.i_item_sk`)
	if len(res.Rows) != 1 {
		t.Fatalf("self join rows = %d, want 1 (Books pair)", len(res.Rows))
	}
}

func TestConstantFalsePredicate(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand FROM item WHERE 1 = 0`)
	if len(res.Rows) != 0 {
		t.Errorf("constant-false returned %d rows", len(res.Rows))
	}
	res = q(t, e, `SELECT COUNT(*) c FROM item WHERE 1 = 1`)
	if res.Rows[0][0].AsInt() != 4 {
		t.Errorf("constant-true count = %v", res.Rows[0][0])
	}
}

func TestResultString(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand, i_price FROM item WHERE i_item_sk = 1`)
	out := res.String()
	if !strings.Contains(out, "i_brand") || !strings.Contains(out, "acme") {
		t.Errorf("Result.String output:\n%s", out)
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := New(miniDB())
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := e.Query(`SELECT i_brand, SUM(s_qty) FROM sales, item
				WHERE s_item_sk = i_item_sk GROUP BY i_brand`)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestInvalidateIndexes(t *testing.T) {
	e := New(miniDB())
	q(t, e, `SELECT COUNT(*) c FROM sales, item WHERE s_item_sk = i_item_sk AND i_category = 'Books'`)
	// Append a row, invalidate, re-query: count must reflect new data.
	sales := e.DB().Table("sales")
	sales.Append([]storage.Value{storage.Int(2), storage.Int(1), storage.Int(1), storage.Float(10), storage.Int(200)})
	e.InvalidateIndexes("sales")
	res := q(t, e, `SELECT COUNT(*) c FROM sales, item WHERE s_item_sk = i_item_sk AND i_category = 'Books'`)
	if res.Rows[0][0].AsInt() != 4 {
		t.Errorf("count after insert = %v, want 4", res.Rows[0][0])
	}
}

// TestRollup (SQL-99 OLAP amendment): GROUP BY ROLLUP produces subtotal
// rows per prefix level plus a grand total, NULLs marking rolled-up
// columns.
func TestRollup(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_category, i_brand, SUM(i_price) s
		FROM item GROUP BY ROLLUP(i_category, i_brand)
		ORDER BY i_category, i_brand`)
	// 4 leaf groups (each category+brand pair is unique here except
	// Books which has two brands -> leaf groups: Books/acme, Books/zeta,
	// Home/acme, Sports/zeta = 4), 3 category subtotals, 1 grand total.
	if len(res.Rows) != 8 {
		t.Fatalf("rollup rows = %d, want 8:\n%s", len(res.Rows), res.String())
	}
	var grand, catSubtotals, leaves int
	for _, row := range res.Rows {
		switch {
		case row[0].IsNull() && row[1].IsNull():
			grand++
			if row[2].AsFloat() != 100 {
				t.Errorf("grand total = %v, want 100", row[2])
			}
		case row[1].IsNull():
			catSubtotals++
			if row[0].S == "Books" && row[2].AsFloat() != 40 {
				t.Errorf("Books subtotal = %v, want 40", row[2])
			}
		default:
			leaves++
		}
	}
	if grand != 1 || catSubtotals != 3 || leaves != 4 {
		t.Errorf("rollup shape: grand=%d subtotals=%d leaves=%d", grand, catSubtotals, leaves)
	}
}

func TestRollupSingleColumn(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_brand, COUNT(*) c FROM item GROUP BY ROLLUP(i_brand) ORDER BY c`)
	// acme(2), zeta(2), total(4).
	if len(res.Rows) != 3 {
		t.Fatalf("rollup rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[2][1].AsInt() != 4 || !res.Rows[2][0].IsNull() {
		t.Errorf("grand total row = %v", res.Rows[2])
	}
}

func TestRollupWithWindowRejected(t *testing.T) {
	e := New(miniDB())
	_, err := e.Query(`SELECT i_brand, SUM(i_price),
		SUM(SUM(i_price)) OVER (PARTITION BY i_brand)
		FROM item GROUP BY ROLLUP(i_brand)`)
	if err == nil {
		t.Fatal("ROLLUP with window function should be rejected")
	}
}

func TestRollupHaving(t *testing.T) {
	e := New(miniDB())
	// HAVING applies to subtotal rows too (standard semantics).
	res := q(t, e, `SELECT i_category, SUM(i_price) s FROM item
		GROUP BY ROLLUP(i_category) HAVING SUM(i_price) > 35 ORDER BY s`)
	// Books=40, Sports=40, grand=100 pass; Home=20 filtered.
	if len(res.Rows) != 3 {
		t.Fatalf("rollup+having rows = %d, want 3:\n%s", len(res.Rows), res.String())
	}
}

func TestExplainTrace(t *testing.T) {
	e := New(miniDB())
	// Pin the hash pipeline: this half checks its explain surface, and
	// the cost planner is free to pick star for a query this tiny.
	e.SetMode(plan.ForceHashJoin)
	out, err := e.Explain(`SELECT i_brand, SUM(s_qty) FROM sales, item
		WHERE s_item_sk = i_item_sk AND i_category = 'Books' GROUP BY i_brand`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strategy:", "join order:", "sales (driver)", "item", "result:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	tr := e.LastTrace()
	if len(tr.Tables) != 2 {
		t.Errorf("trace tables = %d, want 2", len(tr.Tables))
	}
	if tr.BaseRows == 0 {
		t.Error("trace base rows not recorded")
	}
	// A star-eligible query under ForceStar must record the strategy.
	e.SetMode(plan.ForceStar)
	if _, err := e.Query(`SELECT COUNT(*) c FROM sales, dates
		WHERE s_date_sk = d_date_sk AND d_moy = 11`); err != nil {
		t.Fatal(err)
	}
	if e.LastTrace().Strategy != plan.StarTransform {
		t.Errorf("star trace strategy = %v", e.LastTrace().Strategy)
	}
	if !strings.Contains(e.LastTrace().String(), "bitmap-driven") {
		t.Error("star trace should mention the bitmap-driven fact scan")
	}
}

func TestExplainError(t *testing.T) {
	e := New(miniDB())
	if _, err := e.Explain("SELECT nope FROM item"); err == nil {
		t.Fatal("Explain of invalid query should fail")
	}
}

// TestStatisticsImproveEstimates: the statistics-based estimator must be
// closer to the true filtered cardinality than the fixed heuristics on
// a selective date predicate (the load test gathers statistics because
// the optimizer needs them, §5.2).
func TestStatisticsImproveEstimates(t *testing.T) {
	db := miniDB()
	q := `SELECT COUNT(*) c FROM sales, dates
		WHERE s_date_sk = d_date_sk AND d_year = 2000 AND d_moy = 11`
	actual := 1.0 // one dates row matches (2000, 11)

	withStats := New(db)
	if _, err := withStats.Query(q); err != nil {
		t.Fatal(err)
	}
	var estWith float64
	for _, tt := range withStats.LastTrace().Tables {
		if tt.Binding == "dates" {
			estWith = tt.Estimate
		}
	}

	noStats := New(db)
	noStats.SetUseStatistics(false)
	if _, err := noStats.Query(q); err != nil {
		t.Fatal(err)
	}
	var estWithout float64
	for _, tt := range noStats.LastTrace().Tables {
		if tt.Binding == "dates" {
			estWithout = tt.Estimate
		}
	}

	errWith := estWith - actual
	if errWith < 0 {
		errWith = -errWith
	}
	errWithout := estWithout - actual
	if errWithout < 0 {
		errWithout = -errWithout
	}
	if errWith > errWithout {
		t.Errorf("stats estimate %.2f is farther from truth (%.0f) than heuristic %.2f",
			estWith, actual, estWithout)
	}
}

// TestStatsSelectivityShapes exercises the analyzable predicate shapes.
func TestStatsSelectivityShapes(t *testing.T) {
	e := New(miniDB())
	cases := []struct {
		where string
		// trueRows is the exact qualifying row count in item (4 rows).
		trueRows float64
		// tolerance on the estimate.
		tol float64
	}{
		{"i_item_sk = 2", 1, 0.5},
		{"i_item_sk BETWEEN 1 AND 2", 2, 0.5},
		{"i_item_sk < 3", 2, 0.5},
		{"i_item_sk > 2", 2, 0.5},
		{"i_item_sk IN (1, 2, 3)", 3, 0.5},
		{"i_item_sk = 99", 0, 0.1}, // literal outside domain
	}
	for _, c := range cases {
		if _, err := e.Query("SELECT COUNT(*) c FROM item WHERE " + c.where); err != nil {
			t.Fatal(err)
		}
		est := e.LastTrace().Tables[0].Estimate
		if diff := est - c.trueRows; diff > c.tol || diff < -c.tol {
			t.Errorf("WHERE %s: estimate %.2f, true %.0f", c.where, est, c.trueRows)
		}
	}
}

// TestStatsInvalidation: maintenance-style invalidation refreshes the
// cached statistics.
func TestStatsInvalidation(t *testing.T) {
	db := miniDB()
	e := New(db)
	rangeQuery := "SELECT COUNT(*) c FROM item WHERE i_item_sk BETWEEN 1 AND 100"
	if _, err := e.Query(rangeQuery); err != nil {
		t.Fatal(err)
	}
	before := e.LastTrace().Tables[0].Estimate
	// Double the table: estimates must track after invalidation.
	item := db.Table("item")
	for i := 5; i <= 8; i++ {
		item.Append([]storage.Value{storage.Int(int64(i)), storage.Str("new"), storage.Float(1), storage.Str("Books")})
	}
	e.InvalidateIndexes("item")
	if _, err := e.Query(rangeQuery); err != nil {
		t.Fatal(err)
	}
	after := e.LastTrace().Tables[0].Estimate
	if after <= before {
		t.Errorf("estimate did not track table growth: %.2f -> %.2f", before, after)
	}
}

// TestTypeMismatchRejected: string-vs-number comparisons are bind-time
// errors, not runtime panics.
func TestTypeMismatchRejected(t *testing.T) {
	e := New(miniDB())
	for _, bad := range []string{
		`SELECT i_brand FROM item WHERE i_brand > 5`,
		`SELECT i_brand FROM item WHERE 5 = i_brand`,
		`SELECT i_brand FROM item WHERE i_price < 'abc'`,
	} {
		if _, err := e.Query(bad); err == nil {
			t.Errorf("Query(%s) should fail with a type error", bad)
		}
	}
	// NULL comparisons stay legal.
	res := q(t, e, `SELECT COUNT(*) c FROM item WHERE i_brand = NULL`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Errorf("= NULL should match nothing, got %v", res.Rows[0][0])
	}
}

// TestPanicBackstop: an internal panic surfaces as an error, leaving the
// engine usable.
func TestPanicBackstop(t *testing.T) {
	e := New(miniDB())
	// ORDER BY mixing strings and numbers across rows would panic in
	// Compare; CASE with heterogeneous result types manufactures that.
	_, err := e.Query(`SELECT i_item_sk FROM item
		ORDER BY CASE WHEN i_item_sk = 1 THEN 'x' ELSE i_item_sk END`)
	if err == nil {
		t.Skip("engine handled heterogeneous sort; no panic path to test")
	}
	if !strings.Contains(err.Error(), "error") {
		t.Errorf("unexpected error text: %v", err)
	}
	// Engine still works afterwards.
	if _, err := e.Query(`SELECT COUNT(*) c FROM item`); err != nil {
		t.Fatalf("engine unusable after recovered panic: %v", err)
	}
}

// TestCube (SQL-99 OLAP amendment): GROUP BY CUBE produces rows for
// every subset of the grouping columns.
func TestCube(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_category, i_brand, SUM(i_price) s
		FROM item GROUP BY CUBE(i_category, i_brand)`)
	// Leaves: 4 (Books/acme, Books/zeta, Home/acme, Sports/zeta)
	// category subtotals: 3; brand subtotals: 2; grand total: 1 -> 10.
	if len(res.Rows) != 10 {
		t.Fatalf("cube rows = %d, want 10:\n%s", len(res.Rows), res.String())
	}
	brandOnly := 0
	for _, row := range res.Rows {
		if row[0].IsNull() && !row[1].IsNull() {
			brandOnly++
			if row[1].S == "acme" && row[2].AsFloat() != 30 {
				t.Errorf("acme brand subtotal = %v, want 30", row[2])
			}
		}
	}
	if brandOnly != 2 {
		t.Errorf("brand-only subtotals = %d, want 2", brandOnly)
	}
}

func TestLimitOffset(t *testing.T) {
	e := New(miniDB())
	res := q(t, e, `SELECT i_item_sk FROM item ORDER BY i_item_sk LIMIT 2 OFFSET 1`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 2 || res.Rows[1][0].AsInt() != 3 {
		t.Fatalf("limit/offset rows = %+v", res.Rows)
	}
	// Offset past the end yields no rows.
	res = q(t, e, `SELECT i_item_sk FROM item ORDER BY i_item_sk LIMIT 5 OFFSET 100`)
	if len(res.Rows) != 0 {
		t.Errorf("offset past end returned %d rows", len(res.Rows))
	}
	// Offset over a union.
	res = q(t, e, `SELECT i_item_sk k FROM item UNION ALL SELECT i_item_sk FROM item
		ORDER BY k LIMIT 3 OFFSET 2`)
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 2 {
		t.Errorf("union offset rows = %+v", res.Rows)
	}
}
