package exec

import (
	"context"
	"fmt"
	"sort"

	"tpcds/internal/plan"
	"tpcds/internal/schema"
	"tpcds/internal/sql"
	"tpcds/internal/storage"
)

// Query parses and executes one SELECT statement. Internal panics are
// converted to errors: one malformed query must not take down the
// benchmark's concurrent streams.
func (e *Engine) Query(q string) (*Result, error) {
	// The context-free form is deliberate database/sql-style API surface:
	// a root context here means "no deadline", exactly what the caller
	// asked for by not passing one.
	//lint:ignore ctxflow Query is the documented context-free convenience wrapper over QueryContext
	return e.QueryContext(context.Background(), q)
}

// QueryContext executes one SELECT statement under a cancellation
// context. A cancelled or expired context aborts the query between
// operator steps (serial loops poll every tickInterval rows; morsel
// workers check between morsels and drain cleanly) and the error wraps
// ctx.Err(), so errors.Is(err, context.DeadlineExceeded) reports a
// per-query timeout.
func (e *Engine) QueryContext(ctx context.Context, q string) (*Result, error) {
	res, _, err := e.QueryTracedContext(ctx, q)
	return res, err
}

// QueryTraced executes one SELECT statement and returns the execution
// trace of its outermost block alongside the result. Unlike LastTrace
// the returned trace belongs to this call, so concurrent streams get
// their own traces.
func (e *Engine) QueryTraced(q string) (*Result, Trace, error) {
	//lint:ignore ctxflow QueryTraced is the documented context-free convenience wrapper over QueryTracedContext
	return e.QueryTracedContext(context.Background(), q)
}

// QueryTracedContext is QueryTraced under a cancellation context.
func (e *Engine) QueryTracedContext(ctx context.Context, q string) (res *Result, tr Trace, err error) {
	qc := e.newQctx(ctx)
	defer func() {
		if r := recover(); r != nil {
			res, tr = nil, Trace{}
			err = queryError(q, recoveredError(qc, r))
		}
	}()
	if hook := e.queryHook; hook != nil {
		hook(q)
	}
	qc.checkNow()
	stmt, err := sql.Parse(q)
	if err != nil {
		return nil, Trace{}, queryError(q, err)
	}
	stmt = e.rewrite(qc, stmt)
	res, _, tr, err = e.runStatement(qc, stmt, nil)
	if err != nil {
		return nil, Trace{}, queryError(q, err)
	}
	tr.Decorrelated = qc.decorrelated
	tr.CSEHits = qc.cseHits
	tr.Profile = qc.profile()
	e.setTrace(tr)
	return res, tr, nil
}

// rewrite applies the cost planner's statement rewrites (IN-subquery
// decorrelation) ahead of execution. Copy-on-write: the caller's AST
// is never mutated, so RunContext callers keep a pristine statement.
func (e *Engine) rewrite(qc *qctx, stmt *sql.SelectStmt) *sql.SelectStmt {
	if e.planner != plan.CostBased {
		return stmt
	}
	out, n := plan.Decorrelate(stmt)
	qc.decorrelated = n
	return out
}

// Run executes an already parsed statement.
func (e *Engine) Run(stmt *sql.SelectStmt) (*Result, error) {
	//lint:ignore ctxflow Run is the documented context-free convenience wrapper over RunContext
	return e.RunContext(context.Background(), stmt)
}

// RunContext executes an already parsed statement under a cancellation
// context, with the same panic-to-error hardening as QueryContext.
func (e *Engine) RunContext(ctx context.Context, stmt *sql.SelectStmt) (res *Result, err error) {
	qc := e.newQctx(ctx)
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("exec: %w", recoveredError(qc, r))
		}
	}()
	qc.checkNow()
	res, _, tr, err := e.runStatement(qc, e.rewrite(qc, stmt), nil)
	if err == nil {
		tr.Decorrelated = qc.decorrelated
		tr.CSEHits = qc.cseHits
		tr.Profile = qc.profile()
		e.setTrace(tr)
	}
	return res, err
}

// recoveredError converts a recovered panic into the query's error: the
// cancellation sentinel becomes the context error (preserving
// errors.Is against context.Canceled / context.DeadlineExceeded), and
// anything else — a storage or exec invariant violation — becomes an
// internal error tagged with the operator phase that raised it.
func recoveredError(qc *qctx, r any) error {
	if cp, ok := r.(cancelPanic); ok {
		return cp.err
	}
	return fmt.Errorf("internal error in %s: %v", qc.phaseName(), r)
}

// runStatement materializes WITH clauses, dispatches union chains, and
// runs the head select. It returns the result, per-column types (for
// CTE materialization), and the trace of the head block (CTE and
// subquery traces stay local to their execution).
func (e *Engine) runStatement(qc *qctx, stmt *sql.SelectStmt, outer map[string]*storage.Table) (*Result, []schema.Type, Trace, error) {
	ctes := map[string]*storage.Table{}
	for k, v := range outer {
		ctes[k] = v
	}
	for _, cte := range stmt.With {
		qc.checkNow()
		tab, err := e.materializeCTE(qc, cte, ctes)
		if err != nil {
			return nil, nil, Trace{}, fmt.Errorf("WITH %s: %w", cte.Name, err)
		}
		ctes[cte.Name] = tab
	}
	if stmt.UnionAll != nil {
		return e.runUnion(qc, stmt, ctes)
	}
	return e.runSelect(qc, stmt, ctes)
}

// materializeCTE evaluates one CTE body into a storage table. Under
// the cost planner, identical bodies in identical CTE scopes are
// evaluated once per query: the memo key is the literal-preserving
// statement fingerprint plus the identity of every table in scope, so
// a repeated subquery block (the classic TPC-DS "with ... as" reuse
// pattern) shares both the evaluation and — because statistics are
// keyed by table instance — the gathered statistics.
func (e *Engine) materializeCTE(qc *qctx, cte sql.CTE, ctes map[string]*storage.Table) (*storage.Table, error) {
	sp := qc.startOp("cte", cte.Name)
	defer qc.endOp(sp)
	key := ""
	if e.planner == plan.CostBased {
		key = "cte|" + plan.Fingerprint(cte.Select, true) + scopeSig(ctes)
		if ent, ok := qc.cse[key]; ok && ent.tab != nil {
			qc.countCSEHit()
			// Memo hit: the node stays a leaf (no nested operator work),
			// which is exactly what CSE reuse looks like in the profile.
			qc.opRowsOut(sp, int64(ent.tab.NumRows()))
			return ent.tab, nil
		}
	}
	res, types, _, err := e.runStatement(qc, cte.Select, ctes)
	if err != nil {
		return nil, err
	}
	tab, err := materialize(cte.Name, res, types)
	if err != nil {
		return nil, err
	}
	qc.opRowsOut(sp, int64(tab.NumRows()))
	if key != "" {
		if qc.cse == nil {
			qc.cse = map[string]cseEntry{}
		}
		qc.cse[key] = cseEntry{res: res, types: types, tab: tab}
	}
	return tab, nil
}

// materialize turns a query result into an anonymous storage table so
// CTEs can be referenced like base tables.
func materialize(name string, res *Result, types []schema.Type) (*storage.Table, error) {
	def := &schema.Table{Name: name, Kind: schema.Dimension}
	seen := map[string]bool{}
	for i, col := range res.Columns {
		cname := col
		for seen[cname] {
			cname = fmt.Sprintf("%s_%d", col, i)
		}
		seen[cname] = true
		t := schema.Char
		if i < len(types) {
			t = types[i]
		}
		def.Columns = append(def.Columns, schema.Column{Name: cname, Type: t, Nullable: true})
	}
	def.PrimaryKey = []string{def.Columns[0].Name}
	tab := storage.NewTable(def)
	for _, row := range res.Rows {
		tab.Append(row)
	}
	return tab, nil
}

// runUnion executes a UNION ALL chain; ORDER BY / LIMIT of the head
// apply to the concatenated result and may only reference output columns
// by name or ordinal. The returned trace is the first block's (the
// head's FROM clause).
func (e *Engine) runUnion(qc *qctx, head *sql.SelectStmt, ctes map[string]*storage.Table) (*Result, []schema.Type, Trace, error) {
	var out *Result
	var types []schema.Type
	var headTrace Trace
	orderBy := head.OrderBy
	limit := head.Limit
	offset := head.Offset
	for cur := head; cur != nil; cur = cur.UnionAll {
		qc.checkNow()
		block := *cur
		block.OrderBy = nil
		block.Limit = -1
		block.Offset = 0
		block.UnionAll = nil
		block.With = nil
		res, ts, tr, err := e.runSelect(qc, &block, ctes)
		if err != nil {
			return nil, nil, Trace{}, err
		}
		if out == nil {
			out, types, headTrace = res, ts, tr
			continue
		}
		if len(res.Columns) != len(out.Columns) {
			return nil, nil, Trace{}, fmt.Errorf("UNION ALL blocks have %d vs %d columns",
				len(out.Columns), len(res.Columns))
		}
		out.Rows = append(out.Rows, res.Rows...)
	}
	if len(orderBy) > 0 {
		keys := make([]int, len(orderBy))
		desc := make([]bool, len(orderBy))
		for i, oi := range orderBy {
			desc[i] = oi.Desc
			switch v := oi.Expr.(type) {
			case *sql.ColRef:
				found := -1
				for ci, c := range out.Columns {
					if c == v.Name {
						found = ci
						break
					}
				}
				if found < 0 {
					return nil, nil, Trace{}, fmt.Errorf("ORDER BY %s not in union output", v.Name)
				}
				keys[i] = found
			case *sql.Lit:
				if !v.IsInt || v.IntVal < 1 || int(v.IntVal) > len(out.Columns) {
					return nil, nil, Trace{}, fmt.Errorf("ORDER BY ordinal out of range")
				}
				keys[i] = int(v.IntVal) - 1
			default:
				return nil, nil, Trace{}, fmt.Errorf("ORDER BY over UNION ALL must use column names or ordinals")
			}
		}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			for i, k := range keys {
				c := storage.Compare(out.Rows[a][k], out.Rows[b][k])
				if c == 0 {
					continue
				}
				if desc[i] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if offset > 0 {
		if offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[offset:]
		}
	}
	if limit >= 0 && len(out.Rows) > limit {
		out.Rows = out.Rows[:limit]
	}
	return out, types, headTrace, nil
}

// filterInfo records one bound single-table predicate with the AST
// shape used for selectivity estimation and, when the shape is
// analyzable (column vs literal), the statistics hint.
type filterInfo struct {
	table  int
	pred   bexpr
	kind   string
	hint   selHint
	hintOK bool
}

// joinEdge is an equality predicate between two table columns.
type joinEdge struct {
	aTbl, bTbl int
	aCol, bCol *colExpr // absolute offsets
}

// runSelect executes one plain SELECT block.
func (e *Engine) runSelect(qc *qctx, stmt *sql.SelectStmt, ctes map[string]*storage.Table) (*Result, []schema.Type, Trace, error) {
	qc.setPhase("bind")
	// Phase spans mirror setPhase. A phase abandoned by an error return
	// simply never completes — the tracer exports only finished spans,
	// so a failed query leaves a truncated (not corrupt) timeline.
	bindSp := qc.startOp("bind", "")
	b := newBinder(e, qc, ctes)
	for _, ref := range stmt.From {
		if err := b.addTable(ref); err != nil {
			return nil, nil, Trace{}, err
		}
	}
	// Rewrite ORDER BY aliases and ordinals to their select expressions.
	orderBy, err := rewriteOrderBy(stmt.OrderBy, stmt.Items)
	if err != nil {
		return nil, nil, Trace{}, err
	}

	// Registration pass: mark every column the query will read so the
	// join layer only materializes used columns. Post-join clauses are
	// bound after rows exist, so this must happen first.
	for _, item := range stmt.Items {
		if item.Star {
			b.registerAll()
			break
		}
		b.registerColumns(item.Expr)
	}
	for _, g := range stmt.GroupBy {
		b.registerColumns(g)
	}
	if stmt.Having != nil {
		b.registerColumns(stmt.Having)
	}
	for _, oi := range orderBy {
		b.registerColumns(oi.Expr)
	}

	// Classify WHERE conjuncts.
	var filters []filterInfo
	var edges []joinEdge
	var residual []bexpr
	var constPreds []bexpr
	for _, c := range conjuncts(stmt.Where) {
		be, err := b.bind(c)
		if err != nil {
			return nil, nil, Trace{}, err
		}
		m := be.mask()
		switch popcount(m) {
		case 0:
			constPreds = append(constPreds, be)
		case 1:
			fi := filterInfo{table: bitIndex(m), pred: be, kind: predKind(c)}
			fi.hint, fi.hintOK = analyzeFilter(b, c, fi.table)
			filters = append(filters, fi)
		default:
			if edge, ok := asJoinEdge(be); ok {
				edges = append(edges, edge)
			} else {
				residual = append(residual, be)
			}
		}
	}
	// LEFT JOIN conditions: split into equi edges and extra conditions.
	var leftJoins []leftJoin
	for ti := range b.tables {
		if !b.tables[ti].leftJoin {
			continue
		}
		spec := leftJoin{table: ti}
		for _, c := range conjuncts(b.tables[ti].on) {
			be, err := b.bind(c)
			if err != nil {
				return nil, nil, Trace{}, err
			}
			if edge, ok := asJoinEdge(be); ok && (edge.aTbl == ti || edge.bTbl == ti) {
				if edge.bTbl != ti { // normalize: b side is the left-joined table
					edge.aTbl, edge.bTbl = edge.bTbl, edge.aTbl
					edge.aCol, edge.bCol = edge.bCol, edge.aCol
				}
				spec.edges = append(spec.edges, edge)
			} else {
				spec.extra = append(spec.extra, be)
			}
		}
		leftJoins = append(leftJoins, spec)
	}

	// Constant predicates: if any is false the result is empty.
	for _, p := range constPreds {
		if !truthy(p.eval(nil)) {
			qc.endOp(bindSp)
			return e.projectEmpty(stmt, b, orderBy)
		}
	}
	qc.endOp(bindSp)

	// Produce joined base rows.
	qc.setPhase("join")
	joinSp := qc.startOp("join", "")
	rows, tr, err := e.joinRows(b, stmt, filters, edges, residual, leftJoins)
	qc.endOp(joinSp)
	if err != nil {
		return nil, nil, Trace{}, err
	}

	aggregated := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, item := range stmt.Items {
		if !item.Star && exprContainsAggregate(item.Expr) {
			aggregated = true
		}
	}
	for _, oi := range orderBy {
		if exprContainsAggregate(oi.Expr) {
			aggregated = true
		}
	}

	if aggregated {
		qc.setPhase("aggregate")
		aggSp := qc.startOp("aggregate", "")
		res, types, err := e.aggregate(stmt, b, rows, orderBy, &tr)
		qc.endOp(aggSp)
		return res, types, tr, err
	}
	qc.setPhase("project")
	projSp := qc.startOp("project", "")
	res, types, err := e.projectSimple(stmt, b, rows, orderBy, &tr)
	qc.endOp(projSp)
	return res, types, tr, err
}

// projectEmpty produces a zero-row result with the right output columns.
func (e *Engine) projectEmpty(stmt *sql.SelectStmt, b *binder, orderBy []sql.OrderItem) (*Result, []schema.Type, Trace, error) {
	aggregated := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, item := range stmt.Items {
		if !item.Star && exprContainsAggregate(item.Expr) {
			aggregated = true
		}
	}
	var tr Trace
	if aggregated {
		res, types, err := e.aggregate(stmt, b, nil, orderBy, &tr)
		return res, types, tr, err
	}
	res, types, err := e.projectSimple(stmt, b, nil, orderBy, &tr)
	return res, types, tr, err
}

// projectSimple handles the non-aggregated path: project, DISTINCT,
// ORDER BY, LIMIT.
func (e *Engine) projectSimple(stmt *sql.SelectStmt, b *binder, rows [][]storage.Value, orderBy []sql.OrderItem, tr *Trace) (*Result, []schema.Type, error) {
	var outCols []string
	var outTypes []schema.Type
	var projs []bexpr
	for _, item := range stmt.Items {
		if item.Star {
			for ti := range b.tables {
				inst := &b.tables[ti]
				for ci, col := range inst.tab.Def.Columns {
					outCols = append(outCols, col.Name)
					outTypes = append(outTypes, col.Type)
					projs = append(projs, &colExpr{off: inst.offset + ci, t: col.Type, tblBit: 1 << uint(ti)})
				}
			}
			continue
		}
		be, err := b.bind(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		outCols = append(outCols, outputName(item))
		outTypes = append(outTypes, be.typ())
		projs = append(projs, be)
	}
	var sortKeys []bexpr
	for _, oi := range orderBy {
		be, err := b.bind(oi.Expr)
		if err != nil {
			return nil, nil, err
		}
		sortKeys = append(sortKeys, be)
	}
	res := e.finish(b.qc, rows, projs, sortKeys, orderBy, stmt.Distinct, stmt.Limit, stmt.Offset, outCols, tr)
	return res, outTypes, nil
}

// finish evaluates projections and sort keys, applies DISTINCT, ORDER BY
// and LIMIT, and assembles the result. Projection/sort-key evaluation
// runs in morsels (expressions are pure); DISTINCT dedup then walks the
// concatenated rows in order, so first-wins matches the serial pass.
func (e *Engine) finish(qc *qctx, rows [][]storage.Value, projs, sortKeys []bexpr, orderBy []sql.OrderItem, distinct bool, limit, offset int, outCols []string, tr *Trace) *Result {
	type outRow struct {
		proj []storage.Value
		keys []storage.Value
	}
	evalRow := func(row []storage.Value) outRow {
		proj := make([]storage.Value, len(projs))
		for i, p := range projs {
			proj[i] = p.eval(row)
		}
		keys := make([]storage.Value, len(sortKeys))
		for i, k := range sortKeys {
			keys[i] = k.eval(row)
		}
		return outRow{proj, keys}
	}
	var outs []outRow
	n := len(rows)
	workers := e.workers()
	morsel := e.morselSize()
	if workers > 1 && n > morsel {
		evaled := make([]outRow, n)
		counts := forEachMorsel(qc, workers, n, morsel, func(_, _, lo, hi int) {
			for r := lo; r < hi; r++ {
				evaled[r] = evalRow(rows[r])
			}
		})
		tr.addWork(counts)
		outs = evaled
	} else {
		outs = make([]outRow, 0, n)
		for _, row := range rows {
			qc.tick()
			outs = append(outs, evalRow(row))
		}
	}
	if distinct {
		seen := map[string]bool{}
		w := 0
		for _, o := range outs {
			key := ""
			for _, v := range o.proj {
				key += v.GroupKey()
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			outs[w] = o
			w++
		}
		outs = outs[:w]
	}
	if len(sortKeys) > 0 {
		sortSp := qc.startOp("sort", "")
		sortSp.SetAttrInt("rows", int64(len(outs)))
		qc.opRowsIn(nil, int64(len(outs)))
		qc.opRowsOut(nil, int64(len(outs)))
		sort.SliceStable(outs, func(a, b int) bool {
			for i := range sortKeys {
				c := storage.Compare(outs[a].keys[i], outs[b].keys[i])
				if c == 0 {
					continue
				}
				if orderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		qc.endOp(sortSp)
	}
	if offset > 0 {
		if offset >= len(outs) {
			outs = nil
		} else {
			outs = outs[offset:]
		}
	}
	if limit >= 0 && len(outs) > limit {
		outs = outs[:limit]
	}
	res := &Result{Columns: outCols, Rows: make([][]storage.Value, len(outs))}
	for i, o := range outs {
		res.Rows[i] = o.proj
	}
	return res
}

// rewriteOrderBy resolves select aliases (anywhere inside the sort
// expression) and top-level ordinals in ORDER BY.
func rewriteOrderBy(orderBy []sql.OrderItem, items []sql.SelectItem) ([]sql.OrderItem, error) {
	aliases := map[string]sql.Expr{}
	for _, item := range items {
		if item.Alias != "" && !item.Star {
			aliases[item.Alias] = item.Expr
		}
	}
	out := make([]sql.OrderItem, len(orderBy))
	for i, oi := range orderBy {
		out[i] = oi
		if v, ok := oi.Expr.(*sql.Lit); ok && v.Kind == sql.LitNumber && v.IsInt {
			n := int(v.IntVal)
			if n < 1 || n > len(items) {
				return nil, fmt.Errorf("ORDER BY ordinal %d out of range", n)
			}
			if items[n-1].Star {
				return nil, fmt.Errorf("ORDER BY ordinal cannot reference *")
			}
			out[i].Expr = items[n-1].Expr
			continue
		}
		out[i].Expr = substituteAliases(oi.Expr, aliases)
	}
	return out, nil
}

// substituteAliases replaces bare column references matching a select
// alias with the aliased expression, recursively. Qualified references
// and non-matching names pass through unchanged.
func substituteAliases(e sql.Expr, aliases map[string]sql.Expr) sql.Expr {
	if len(aliases) == 0 {
		return e
	}
	switch v := e.(type) {
	case *sql.ColRef:
		if v.Table == "" {
			if repl, ok := aliases[v.Name]; ok {
				return repl
			}
		}
		return v
	case *sql.BinOp:
		return &sql.BinOp{Op: v.Op,
			L: substituteAliases(v.L, aliases), R: substituteAliases(v.R, aliases)}
	case *sql.UnaryOp:
		return &sql.UnaryOp{Op: v.Op, X: substituteAliases(v.X, aliases)}
	case *sql.Between:
		return &sql.Between{X: substituteAliases(v.X, aliases),
			Lo: substituteAliases(v.Lo, aliases), Hi: substituteAliases(v.Hi, aliases), Not: v.Not}
	case *sql.IsNull:
		return &sql.IsNull{X: substituteAliases(v.X, aliases), Not: v.Not}
	case *sql.FuncCall:
		out := &sql.FuncCall{Name: v.Name, Distinct: v.Distinct, Star: v.Star}
		for _, a := range v.Args {
			out.Args = append(out.Args, substituteAliases(a, aliases))
		}
		return out
	case *sql.CaseExpr:
		out := &sql.CaseExpr{}
		for _, w := range v.Whens {
			out.Whens = append(out.Whens, sql.WhenClause{
				Cond:   substituteAliases(w.Cond, aliases),
				Result: substituteAliases(w.Result, aliases),
			})
		}
		if v.Else != nil {
			out.Else = substituteAliases(v.Else, aliases)
		}
		return out
	default:
		return e
	}
}

// predKind maps an AST predicate to the selectivity classes of
// plan.EstimateFilterSelectivity.
func predKind(e sql.Expr) string {
	switch v := e.(type) {
	case *sql.BinOp:
		if v.Op == "=" {
			return "eq"
		}
		if isComparison(v.Op) {
			return "range"
		}
	case *sql.In:
		return "in"
	case *sql.Between:
		return "between"
	case *sql.Like:
		return "like"
	case *sql.IsNull:
		return "isnull"
	}
	return "other"
}

// asJoinEdge recognizes a bound `col = col` predicate across two tables.
func asJoinEdge(be bexpr) (joinEdge, bool) {
	bin, ok := be.(*binExpr)
	if !ok || bin.op != "=" {
		return joinEdge{}, false
	}
	l, lok := bin.l.(*colExpr)
	r, rok := bin.r.(*colExpr)
	if !lok || !rok || l.tblBit == r.tblBit {
		return joinEdge{}, false
	}
	return joinEdge{
		aTbl: bitIndex(l.tblBit), bTbl: bitIndex(r.tblBit),
		aCol: l, bCol: r,
	}, true
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func bitIndex(m uint64) int {
	i := 0
	for m > 1 {
		m >>= 1
		i++
	}
	return i
}
