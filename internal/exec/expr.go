package exec

import (
	"fmt"
	"math"
	"strings"

	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// bexpr is a bound (executable) expression over a row layout. Boolean
// results use SQL three-valued logic encoded as Int 1 (true), Int 0
// (false) and Null (unknown).
type bexpr interface {
	eval(row []storage.Value) storage.Value
	typ() schema.Type
	mask() uint64 // bit per referenced table instance
}

// colExpr reads an absolute offset of the row layout.
type colExpr struct {
	off    int
	t      schema.Type
	tblBit uint64
}

func (c *colExpr) eval(row []storage.Value) storage.Value { return row[c.off] }
func (c *colExpr) typ() schema.Type                       { return c.t }
func (c *colExpr) mask() uint64                           { return c.tblBit }

// litExpr is a constant.
type litExpr struct {
	v storage.Value
	t schema.Type
}

func (l *litExpr) eval([]storage.Value) storage.Value { return l.v }
func (l *litExpr) typ() schema.Type                   { return l.t }
func (l *litExpr) mask() uint64                       { return 0 }

// boolVal encodes three-valued logic results.
func boolVal(b bool) storage.Value {
	if b {
		return storage.Int(1)
	}
	return storage.Int(0)
}

// truthy reports whether a predicate result passes a filter (NULL and
// false both fail).
func truthy(v storage.Value) bool {
	return !v.IsNull() && v.AsInt() != 0
}

// binExpr covers arithmetic, comparison and logical binary operators.
type binExpr struct {
	op   string
	l, r bexpr
	t    schema.Type
}

func (b *binExpr) typ() schema.Type { return b.t }
func (b *binExpr) mask() uint64     { return b.l.mask() | b.r.mask() }

func (b *binExpr) eval(row []storage.Value) storage.Value {
	switch b.op {
	case "AND":
		lv := b.l.eval(row)
		if !lv.IsNull() && lv.AsInt() == 0 {
			return boolVal(false)
		}
		rv := b.r.eval(row)
		if !rv.IsNull() && rv.AsInt() == 0 {
			return boolVal(false)
		}
		if lv.IsNull() || rv.IsNull() {
			return storage.Null
		}
		return boolVal(true)
	case "OR":
		lv := b.l.eval(row)
		if !lv.IsNull() && lv.AsInt() != 0 {
			return boolVal(true)
		}
		rv := b.r.eval(row)
		if !rv.IsNull() && rv.AsInt() != 0 {
			return boolVal(true)
		}
		if lv.IsNull() || rv.IsNull() {
			return storage.Null
		}
		return boolVal(false)
	}
	lv := b.l.eval(row)
	rv := b.r.eval(row)
	if lv.IsNull() || rv.IsNull() {
		return storage.Null
	}
	switch b.op {
	case "=", "<>", "<", "<=", ">", ">=":
		c := storage.Compare(lv, rv)
		switch b.op {
		case "=":
			return boolVal(c == 0)
		case "<>":
			return boolVal(c != 0)
		case "<":
			return boolVal(c < 0)
		case "<=":
			return boolVal(c <= 0)
		case ">":
			return boolVal(c > 0)
		default:
			return boolVal(c >= 0)
		}
	case "+", "-", "*":
		intish := func(k storage.Kind) bool { return k == storage.KindInt || k == storage.KindDate }
		if intish(lv.K) && intish(rv.K) {
			var out int64
			switch b.op {
			case "+":
				out = lv.I + rv.I
			case "-":
				out = lv.I - rv.I
			default:
				out = lv.I * rv.I
			}
			// Date arithmetic: date ± days stays a date; date - date is a
			// day count.
			lDate, rDate := lv.K == storage.KindDate, rv.K == storage.KindDate
			if b.op != "*" && lDate != rDate {
				return storage.DateV(out)
			}
			return storage.Int(out)
		}
		lf, rf := lv.AsFloat(), rv.AsFloat()
		switch b.op {
		case "+":
			return storage.Float(lf + rf)
		case "-":
			return storage.Float(lf - rf)
		default:
			return storage.Float(lf * rf)
		}
	case "/":
		rf := rv.AsFloat()
		if rf == 0 {
			return storage.Null // SQL raises; NULL keeps streams running
		}
		return storage.Float(lv.AsFloat() / rf)
	case "||":
		return storage.Str(lv.String() + rv.String())
	default:
		panic(fmt.Sprintf("exec: unknown operator %q", b.op))
	}
}

// notExpr negates a boolean with three-valued semantics.
type notExpr struct{ x bexpr }

func (n *notExpr) typ() schema.Type { return schema.Integer }
func (n *notExpr) mask() uint64     { return n.x.mask() }
func (n *notExpr) eval(row []storage.Value) storage.Value {
	v := n.x.eval(row)
	if v.IsNull() {
		return storage.Null
	}
	return boolVal(v.AsInt() == 0)
}

// negExpr is unary minus.
type negExpr struct{ x bexpr }

func (n *negExpr) typ() schema.Type { return n.x.typ() }
func (n *negExpr) mask() uint64     { return n.x.mask() }
func (n *negExpr) eval(row []storage.Value) storage.Value {
	v := n.x.eval(row)
	switch v.K {
	case storage.KindInt:
		return storage.Int(-v.I)
	case storage.KindFloat:
		return storage.Float(-v.F)
	case storage.KindNull:
		return storage.Null
	default:
		return storage.Null
	}
}

// betweenExpr is x [NOT] BETWEEN lo AND hi.
type betweenExpr struct {
	x, lo, hi bexpr
	not       bool
}

func (b *betweenExpr) typ() schema.Type { return schema.Integer }
func (b *betweenExpr) mask() uint64     { return b.x.mask() | b.lo.mask() | b.hi.mask() }
func (b *betweenExpr) eval(row []storage.Value) storage.Value {
	x := b.x.eval(row)
	lo := b.lo.eval(row)
	hi := b.hi.eval(row)
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return storage.Null
	}
	in := storage.Compare(x, lo) >= 0 && storage.Compare(x, hi) <= 0
	if b.not {
		in = !in
	}
	return boolVal(in)
}

// inExpr is x [NOT] IN (values). Subqueries are evaluated at bind time
// into the same value-set representation.
type inExpr struct {
	x       bexpr
	set     map[string]bool // GroupKey-encoded members
	vals    []storage.Value // non-NULL members (for typed kernel sets)
	hasNull bool            // the list/subquery contained NULL
	not     bool
}

func (i *inExpr) typ() schema.Type { return schema.Integer }
func (i *inExpr) mask() uint64     { return i.x.mask() }
func (i *inExpr) eval(row []storage.Value) storage.Value {
	x := i.x.eval(row)
	if x.IsNull() {
		return storage.Null
	}
	found := i.set[x.GroupKey()]
	if !found && i.hasNull {
		// x IN (..., NULL) is UNKNOWN when no member matches.
		return storage.Null
	}
	if i.not {
		found = !found
	}
	return boolVal(found)
}

// likeExpr implements SQL LIKE with % and _ wildcards.
type likeExpr struct {
	x       bexpr
	pattern string
	not     bool
}

func (l *likeExpr) typ() schema.Type { return schema.Integer }
func (l *likeExpr) mask() uint64     { return l.x.mask() }
func (l *likeExpr) eval(row []storage.Value) storage.Value {
	v := l.x.eval(row)
	if v.IsNull() {
		return storage.Null
	}
	m := likeMatch(v.String(), l.pattern)
	if l.not {
		m = !m
	}
	return boolVal(m)
}

// likeMatch matches s against a LIKE pattern (% = any run, _ = any one
// byte) with linear backtracking over %.
func likeMatch(s, pat string) bool {
	var si, pi int
	star := -1
	sBack := 0
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]) {
			si++
			pi++
			continue
		}
		if pi < len(pat) && pat[pi] == '%' {
			star = pi
			sBack = si
			pi++
			continue
		}
		if star >= 0 {
			pi = star + 1
			sBack++
			si = sBack
			continue
		}
		return false
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// isNullExpr is x IS [NOT] NULL.
type isNullExpr struct {
	x   bexpr
	not bool
}

func (n *isNullExpr) typ() schema.Type { return schema.Integer }
func (n *isNullExpr) mask() uint64     { return n.x.mask() }
func (n *isNullExpr) eval(row []storage.Value) storage.Value {
	isNull := n.x.eval(row).IsNull()
	if n.not {
		isNull = !isNull
	}
	return boolVal(isNull)
}

// caseExpr is the searched CASE.
type caseExpr struct {
	conds   []bexpr
	results []bexpr
	elseE   bexpr
	t       schema.Type
}

func (c *caseExpr) typ() schema.Type { return c.t }
func (c *caseExpr) mask() uint64 {
	var m uint64
	for i := range c.conds {
		m |= c.conds[i].mask() | c.results[i].mask()
	}
	if c.elseE != nil {
		m |= c.elseE.mask()
	}
	return m
}
func (c *caseExpr) eval(row []storage.Value) storage.Value {
	for i, cond := range c.conds {
		if truthy(cond.eval(row)) {
			return c.results[i].eval(row)
		}
	}
	if c.elseE != nil {
		return c.elseE.eval(row)
	}
	return storage.Null
}

// funcExpr covers the scalar functions of the subset.
type funcExpr struct {
	name string
	args []bexpr
	t    schema.Type
}

func (f *funcExpr) typ() schema.Type { return f.t }
func (f *funcExpr) mask() uint64 {
	var m uint64
	for _, a := range f.args {
		m |= a.mask()
	}
	return m
}

func (f *funcExpr) eval(row []storage.Value) storage.Value {
	switch f.name {
	case "COALESCE":
		for _, a := range f.args {
			if v := a.eval(row); !v.IsNull() {
				return v
			}
		}
		return storage.Null
	case "ABS":
		v := f.args[0].eval(row)
		switch v.K {
		case storage.KindInt:
			if v.I < 0 {
				return storage.Int(-v.I)
			}
			return v
		case storage.KindFloat:
			return storage.Float(math.Abs(v.F))
		default:
			return storage.Null
		}
	case "ROUND":
		v := f.args[0].eval(row)
		if v.IsNull() {
			return storage.Null
		}
		digits := 0
		if len(f.args) > 1 {
			d := f.args[1].eval(row)
			if d.IsNull() {
				return storage.Null
			}
			digits = int(d.AsInt())
		}
		p := math.Pow(10, float64(digits))
		return storage.Float(math.Round(v.AsFloat()*p) / p)
	case "SUBSTR", "SUBSTRING":
		v := f.args[0].eval(row)
		if v.IsNull() {
			return storage.Null
		}
		s := v.String()
		start := int(f.args[1].eval(row).AsInt())
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return storage.Str("")
		}
		out := s[start-1:]
		if len(f.args) > 2 {
			n := int(f.args[2].eval(row).AsInt())
			if n < 0 {
				n = 0
			}
			if n < len(out) {
				out = out[:n]
			}
		}
		return storage.Str(out)
	case "UPPER":
		v := f.args[0].eval(row)
		if v.IsNull() {
			return storage.Null
		}
		return storage.Str(strings.ToUpper(v.String()))
	case "LOWER":
		v := f.args[0].eval(row)
		if v.IsNull() {
			return storage.Null
		}
		return storage.Str(strings.ToLower(v.String()))
	case "TO_DATE":
		v := f.args[0].eval(row)
		if v.IsNull() {
			return storage.Null
		}
		d, err := storage.ParseDate(v.String())
		if err != nil {
			return storage.Null
		}
		return storage.DateV(d)
	default:
		panic(fmt.Sprintf("exec: unevaluated function %s", f.name))
	}
}

// scalarFuncs lists supported non-aggregate functions and their result
// type derivation ("" = same as first argument).
var scalarFuncs = map[string]schema.Type{
	"COALESCE": 0, "ABS": 0, "ROUND": schema.Decimal,
	"SUBSTR": schema.Varchar, "SUBSTRING": schema.Varchar,
	"UPPER": schema.Varchar, "LOWER": schema.Varchar,
	"TO_DATE": schema.Date,
}

// ScalarFuncType reports whether the engine supports the named scalar
// function and its result type; sameAsArg means the result takes the
// first argument's type. The static template checker keys off this so
// it can never accept a function the engine would reject at bind time.
func ScalarFuncType(name string) (t schema.Type, sameAsArg, ok bool) {
	rt, ok := scalarFuncs[name]
	if !ok {
		return 0, false, false
	}
	if rt == 0 {
		return 0, true, true
	}
	return rt, false, true
}
