package exec

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"tpcds/internal/datagen"
	"tpcds/internal/obs"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

// parallelEngine returns an engine forced onto the morsel paths: small
// morsels so development-scale tables split, several workers despite
// the host's core count.
func parallelEngine(e *Engine) *Engine {
	e.SetParallelism(4)
	e.SetMorselSize(32)
	return e
}

// TestParallelEqualsSequential is the serial-equivalence guarantee: all
// 99 query templates, executed serially and with the morsel executor
// over the same database, must produce bit-identical results — same
// columns, same rows, same order, same float bits. The parallel engine
// runs fully instrumented (live tracer span in the context, metrics
// registry installed) to prove observation never alters results.
func TestParallelEqualsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("all-99 differential sweep skipped in -short; TestQuickParallelEqualsSerial still runs")
	}
	db := datagen.New(0.0005, 7).GenerateAll()
	tracer := obs.NewTracer()
	troot := tracer.Root("differential", "test")
	defer troot.End()
	ctx := obs.ContextWithSpan(context.Background(), troot)
	for _, mode := range []plan.Mode{plan.Auto, plan.ForceStar} {
		serial := New(db)
		serial.SetMode(mode)
		serial.SetParallelism(1)
		par := parallelEngine(New(db))
		par.SetMode(mode)
		par.SetMetrics(obs.NewRegistry())
		for _, tpl := range queries.All() {
			text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
			if err != nil {
				t.Fatalf("query %d: %v", tpl.ID, err)
			}
			want, err := serial.Query(text)
			if err != nil {
				t.Fatalf("mode %v query %d serial: %v", mode, tpl.ID, err)
			}
			got, err := par.QueryContext(ctx, text)
			if err != nil {
				t.Fatalf("mode %v query %d parallel: %v", mode, tpl.ID, err)
			}
			if !reflect.DeepEqual(want.Columns, got.Columns) {
				t.Fatalf("mode %v query %d: columns %v vs %v", mode, tpl.ID, want.Columns, got.Columns)
			}
			if len(want.Rows) != len(got.Rows) {
				t.Fatalf("mode %v query %d: %d rows serial vs %d parallel",
					mode, tpl.ID, len(want.Rows), len(got.Rows))
			}
			for ri := range want.Rows {
				if !reflect.DeepEqual(want.Rows[ri], got.Rows[ri]) {
					t.Fatalf("mode %v query %d row %d: %v vs %v",
						mode, tpl.ID, ri, want.Rows[ri], got.Rows[ri])
				}
			}
		}
	}
}

// TestQuickParallelEqualsSerial re-checks serial equivalence on
// randomized databases across the main operator shapes (join+agg, left
// join, distinct).
func TestQuickParallelEqualsSerial(t *testing.T) {
	qs := []string{
		`SELECT d_s, COUNT(*) c, SUM(f_m) m, AVG(f_m) a FROM f, d WHERE f_k = d_k GROUP BY d_s`,
		`SELECT f_o, d_g FROM f LEFT OUTER JOIN d ON f_k = d_k`,
		`SELECT DISTINCT f_v FROM f`,
		`SELECT d_g, SUM(f_m) m FROM f, d WHERE f_k = d_k AND d_g < 3 GROUP BY d_g ORDER BY m DESC`,
	}
	f := func(seed uint64) bool {
		db := randDB(seed, 300, 12)
		serial := New(db)
		serial.SetParallelism(1)
		par := parallelEngine(New(db))
		for _, q := range qs {
			want, err := serial.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Logf("seed %d query %q: results differ", seed, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQueryTracedConcurrentStreams is the regression test for the
// last-writer-wins trace bug: concurrent streams sharing one engine
// must each get the trace of their own query, not whichever stream
// finished last.
func TestQueryTracedConcurrentStreams(t *testing.T) {
	e := parallelEngine(New(miniDB()))
	cases := []struct {
		query   string
		binding string
	}{
		{"SELECT COUNT(*) FROM item", "item"},
		{"SELECT COUNT(*) FROM dates", "dates"},
		{"SELECT COUNT(*) FROM sales", "sales"},
		{"SELECT COUNT(*) FROM returns", "returns"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(cases)*20)
	for _, c := range cases {
		for i := 0; i < 5; i++ {
			wg.Add(1)
			go func(query, binding string) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					_, tr, err := e.QueryTraced(query)
					if err != nil {
						errs <- err
						return
					}
					if len(tr.Tables) != 1 || tr.Tables[0].Binding != binding {
						errs <- fmt.Errorf("query over %s got trace for %+v", binding, tr.Tables)
						return
					}
				}
			}(c.query, c.binding)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTraceRecordsWorkerMorsels checks the EXPLAIN surface of the
// morsel executor: a parallel run reports its worker count and morsel
// distribution; a serial run reports none.
func TestTraceRecordsWorkerMorsels(t *testing.T) {
	db := randDB(3, 2000, 20)
	q := `SELECT d_s, SUM(f_m) m FROM f, d WHERE f_k = d_k GROUP BY d_s`

	par := parallelEngine(New(db))
	_, tr, err := par.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parallelism != 4 {
		t.Errorf("trace parallelism = %d, want 4", tr.Parallelism)
	}
	total := 0
	for _, c := range tr.WorkerMorsels {
		total += c
	}
	if len(tr.WorkerMorsels) == 0 || total == 0 {
		t.Errorf("parallel trace has no morsel counts: %v", tr.WorkerMorsels)
	}
	if s := tr.String(); !contains(s, "parallelism:") {
		t.Errorf("trace rendering missing parallelism line:\n%s", s)
	}

	serial := New(db)
	serial.SetParallelism(1)
	_, tr, err = serial.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.WorkerMorsels) != 0 {
		t.Errorf("serial trace has morsel counts: %v", tr.WorkerMorsels)
	}
	if s := tr.String(); contains(s, "parallelism:") {
		t.Errorf("serial trace rendering has parallelism line:\n%s", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestForEachMorselCoversAllRows checks the scheduler invariant: every
// row lands in exactly one morsel and the counts add up.
func TestForEachMorselCoversAllRows(t *testing.T) {
	const n, morsel = 1037, 64
	covered := make([]bool, n) // morsels are disjoint: no locking needed
	counts := forEachMorsel((&Engine{}).newQctx(nil), 4, n, morsel, func(_, _, lo, hi int) {
		for r := lo; r < hi; r++ {
			if covered[r] {
				t.Errorf("row %d visited twice", r)
			}
			covered[r] = true
		}
	})
	for r, ok := range covered {
		if !ok {
			t.Fatalf("row %d never visited", r)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if want := (n + morsel - 1) / morsel; total != want {
		t.Errorf("morsel counts sum to %d, want %d", total, want)
	}
}

// TestForEachMorselPanicPropagates checks that a worker panic re-raises
// on the coordinating goroutine (where Query's recover turns it into an
// error) instead of crashing the process.
func TestForEachMorselPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	forEachMorsel((&Engine{}).newQctx(nil), 4, 1000, 10, func(_, m, _, _ int) {
		if m == 50 {
			panic("boom")
		}
	})
}
