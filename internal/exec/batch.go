// Vectorized batch execution. Instead of pulling one row at a time
// through the bexpr interface tree, the scan/filter layer walks the
// columnar storage vectors directly in batches of ~1K rows, carrying a
// selection vector of surviving row ids between predicate kernels
// (MonetDB/X100-style). Each kernel is a typed tight loop over one
// column's physical vector; rows are materialized into full-width
// []storage.Value form only after every predicate has voted, so
// non-surviving rows never touch Table.Get or Value boxing at all.
//
// The batch layer slots UNDER the existing morsel partitioning: a
// morsel worker runs its [lo,hi) range through the same batch scanner
// the serial path uses, and per-morsel output buffers concatenate in
// morsel order exactly as before. Kernel results replicate the row
// engine's three-valued logic bit for bit (numeric comparisons go
// through float64 like storage.Compare, IN keeps its UNKNOWN-on-NULL
// member rule, AND/OR combine 1/0/-1 exactly like binExpr), so batch
// results are bit-identical to the row engine — the differential tests
// pin this across all 99 templates, serial and parallel.
//
// The row-at-a-time implementations remain behind
// Engine.SetVectorized(false) as the differential oracle.
package exec

import (
	"fmt"

	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// defaultBatchRows is the vectorized batch size: ~1K rows keeps a
// batch's selection vector and per-column working set inside the L1/L2
// caches while amortizing per-batch bookkeeping over enough rows.
const defaultBatchRows = 1024

// batchSize returns the configured vectorized batch row count.
func (e *Engine) batchSize() int {
	if e.batchRows > 0 {
		return e.batchRows
	}
	return defaultBatchRows
}

// colReader caches one column's physical vectors plus the absolute row
// layout offset it fills — the batched replacement for Table.Get.
type colReader struct {
	off   int
	kind  storage.Kind
	ints  []int64
	flts  []float64
	strs  []string
	nulls []bool
}

// tableAt returns the bound instance at table index ti with an explicit
// range check: indices flow in from plan structures, and a stale index
// is a planner bug that deserves a clear panic rather than a slice
// fault deep inside a kernel.
func (b *binder) tableAt(ti int) *tabInst {
	if ti < 0 || ti >= len(b.tables) {
		panic(fmt.Sprintf("exec: table index %d out of range (%d tables bound)", ti, len(b.tables)))
	}
	return &b.tables[ti]
}

// colReaders resolves the used columns of table ti to vector readers.
func (b *binder) colReaders(ti int) []colReader {
	inst := b.tableAt(ti)
	cols := b.usedCols(ti)
	out := make([]colReader, 0, len(cols))
	for _, c := range cols {
		k, ints, flts, strs, nulls := inst.tab.Col(c).Raw()
		out = append(out, colReader{off: inst.offset + c, kind: k, ints: ints, flts: flts, strs: strs, nulls: nulls})
	}
	return out
}

// value boxes row r of the column — identical to Column.Get.
func (cr *colReader) value(r int32) storage.Value {
	if cr.nulls[r] {
		return storage.Null
	}
	switch cr.kind {
	case storage.KindInt:
		return storage.Value{K: storage.KindInt, I: cr.ints[r]}
	case storage.KindFloat:
		return storage.Value{K: storage.KindFloat, F: cr.flts[r]}
	case storage.KindDate:
		return storage.Value{K: storage.KindDate, I: cr.ints[r]}
	default:
		return storage.Value{K: storage.KindString, S: cr.strs[r]}
	}
}

// fillRow materializes base-table row r into the full-width row buffer.
func fillRow(readers []colReader, r int32, row []storage.Value) {
	for i := range readers {
		//lint:ignore boundscheck layout invariant: the binder assigns every reader off < total and row is allocated at the bound width (see binder.colReaders); cross-struct offsets are outside the per-variable domain
		row[readers[i].off] = readers[i].value(r)
	}
}

// materializeSel appends one full-width row per selected id, carving the
// rows out of a single batch-sized arena allocation.
func materializeSel(readers []colReader, total int, sel []int32, out [][]storage.Value) [][]storage.Value {
	buf := make([]storage.Value, len(sel)*total)
	for i, r := range sel {
		//lint:ignore boundscheck i*total is a product of two variables; the arena is allocated at len(sel)*total so the carve is exact, but nonlinear arithmetic is outside the linear interval domain
		row := buf[i*total : (i+1)*total : (i+1)*total]
		fillRow(readers, r, row)
		out = append(out, row)
	}
	return out
}

// triFn is a compiled predicate kernel: it evaluates the predicate for
// every row id in sel, writing three-valued results into out (1 true,
// 0 false, -1 unknown; out has len(sel)). Kernels close over immutable
// column vectors only — morsel workers share them freely. That capture
// contract is machine-checked: dslint's sharecap rule flags any
// literal assigned or returned as a triFn that mutates a capture.
type triFn func(sel []int32, out []int8)

// tableFilter is the compiled local-predicate filter of one table:
// vector kernels for the conjuncts the compiler understands, plus the
// uncompiled remainder evaluated row-at-a-time over the survivors.
// Reordering conjuncts (kernels first) cannot change the surviving set:
// all conjuncts are ANDed and bexpr evaluation is side-effect free.
type tableFilter struct {
	kernels []triFn
	slow    []bexpr
	readers []colReader
	total   int
}

// compileFilter compiles table ti's local predicates.
func (b *binder) compileFilter(ti int, filters []filterInfo) *tableFilter {
	tf := &tableFilter{readers: b.colReaders(ti), total: b.total}
	for _, p := range tablePreds(ti, filters) {
		if k, ok := b.compileTri(ti, p); ok {
			tf.kernels = append(tf.kernels, k)
		} else {
			tf.slow = append(tf.slow, p)
		}
	}
	return tf
}

// compilePreds compiles an explicit predicate list against table ti
// (star fact-local predicates arrive pre-collected, not as filterInfo).
func (b *binder) compilePreds(ti int, preds []bexpr) *tableFilter {
	tf := &tableFilter{readers: b.colReaders(ti), total: b.total}
	for _, p := range preds {
		if k, ok := b.compileTri(ti, p); ok {
			tf.kernels = append(tf.kernels, k)
		} else {
			tf.slow = append(tf.slow, p)
		}
	}
	return tf
}

// batchScratch holds one scanner's reusable buffers. Each scanRange/
// scanIDs call owns its scratch, so concurrent morsel workers never
// share mutable state.
type batchScratch struct {
	sel []int32
	tri []int8
	row []storage.Value
}

func (tf *tableFilter) newScratch(batch int) *batchScratch {
	sc := &batchScratch{sel: make([]int32, batch), tri: make([]int8, batch)}
	if len(tf.slow) > 0 {
		sc.row = make([]storage.Value, tf.total)
	}
	return sc
}

// valueBytes approximates the in-memory size of one storage.Value
// (kind tag + int64 + float64 + string header) for scratch accounting.
const valueBytes = 48

// bytes reports the scratch buffer footprint for profile accounting.
func (sc *batchScratch) bytes() int64 {
	return int64(len(sc.sel))*4 + int64(len(sc.tri)) + int64(len(sc.row))*valueBytes
}

// apply runs every kernel over sel, compacting survivors in place, then
// finishes with the uncompiled conjuncts on whatever is left.
func (tf *tableFilter) apply(sel []int32, sc *batchScratch) []int32 {
	// Local header: kernel calls cannot retarget a slice passed by
	// value, so len(tbuf) is stable across the loop in a way len(sc.tri)
	// is not (sc is a pointer any callee could write through).
	tbuf := sc.tri
	if len(tbuf) < len(sel) {
		panic("exec: scratch tri vector smaller than the selection")
	}
	for _, k := range tf.kernels {
		if len(sel) == 0 {
			return sel
		}
		tri := tbuf[:len(sel)]
		k(sel, tri)
		w := 0
		for i, r := range sel {
			if tri[i] == 1 {
				sel[w] = r
				w++
			}
		}
		sel = sel[:w]
	}
	if len(tf.slow) > 0 && len(sel) > 0 {
		w := 0
		for _, r := range sel {
			fillRow(tf.readers, r, sc.row)
			ok := true
			for _, p := range tf.slow {
				if !truthy(p.eval(sc.row)) {
					ok = false
					break
				}
			}
			if ok {
				sel[w] = r
				w++
			}
		}
		sel = sel[:w]
	}
	return sel
}

// scanRange streams the surviving row ids of [lo,hi) batch by batch.
// fn receives each batch's selection vector (valid only for the call).
// Cancellation is polled per batch via checkNow — safe from morsel
// workers, and at the default batch size exactly as frequent as the
// serial row loop's tick.
func (tf *tableFilter) scanRange(qc *qctx, batch, lo, hi int, fn func(sel []int32)) {
	if batch < 1 {
		batch = 1
	}
	sc := tf.newScratch(batch)
	qc.growScratch(sc.bytes())
	defer qc.shrinkScratch(sc.bytes())
	buf := sc.sel
	if len(buf) < batch {
		panic("exec: scratch selection vector smaller than batch")
	}
	for base := lo; base < hi; base += batch {
		qc.checkNow()
		qc.countBatch()
		end := min(base+batch, hi)
		sel := buf[:end-base]
		for i := range sel {
			sel[i] = int32(base + i)
		}
		sel = tf.apply(sel, sc)
		if len(sel) > 0 {
			fn(sel)
		}
	}
}

// scanIDs filters an explicit row-id list batch by batch (the star
// transformation's bitmap-qualified fact ids).
func (tf *tableFilter) scanIDs(qc *qctx, batch int, ids []int32, fn func(sel []int32)) {
	if batch < 1 {
		batch = 1
	}
	sc := tf.newScratch(batch)
	qc.growScratch(sc.bytes())
	defer qc.shrinkScratch(sc.bytes())
	buf := sc.sel
	if len(buf) < batch {
		panic("exec: scratch selection vector smaller than batch")
	}
	for base := 0; base < len(ids); base += batch {
		qc.checkNow()
		qc.countBatch()
		end := min(base+batch, len(ids))
		sel := buf[:end-base]
		copy(sel, ids[base:])
		sel = tf.apply(sel, sc)
		if len(sel) > 0 {
			fn(sel)
		}
	}
}

// ---- predicate kernel compiler ----

// kernelCol resolves a bexpr to one of table ti's column vectors.
func (b *binder) kernelCol(ti int, e bexpr) (*colReader, bool) {
	ce, ok := e.(*colExpr)
	if !ok {
		return nil, false
	}
	inst := b.tableAt(ti)
	c := ce.off - inst.offset
	if c < 0 || c >= inst.width() {
		return nil, false
	}
	k, ints, flts, strs, nulls := inst.tab.Col(c).Raw()
	return &colReader{off: ce.off, kind: k, ints: ints, flts: flts, strs: strs, nulls: nulls}, true
}

func isNumKind(k storage.Kind) bool {
	return k == storage.KindInt || k == storage.KindFloat || k == storage.KindDate
}

func b2t(b bool) int8 {
	if b {
		return 1
	}
	return 0
}

// cmpPass converts a comparison operator to its sign test.
func cmpPass(op string) func(c int) bool {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }
	case "<>":
		return func(c int) bool { return c != 0 }
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default: // ">="
		return func(c int) bool { return c >= 0 }
	}
}

// mirrorOp flips a comparison for operand swap (lit op col → col op').
func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default: // "=", "<>"
		return op
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpS(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// numAt returns the column's float64 view at r — the same coercion
// storage.Compare applies to numeric kinds, so kernel comparisons stay
// bit-identical to the row engine even past 2^53.
func (cr *colReader) numAt(r int32) float64 {
	if cr.kind == storage.KindFloat {
		return cr.flts[r]
	}
	return float64(cr.ints[r])
}

// compileTri compiles one conjunct of table ti's local filter into a
// vector kernel. ok=false means the shape is not understood (function
// calls, CASE, arithmetic inside comparisons, …) and the conjunct runs
// on the row fallback.
func (b *binder) compileTri(ti int, p bexpr) (triFn, bool) {
	switch v := p.(type) {
	case *binExpr:
		switch v.op {
		case "AND", "OR":
			lk, ok := b.compileTri(ti, v.l)
			if !ok {
				return nil, false
			}
			rk, ok := b.compileTri(ti, v.r)
			if !ok {
				return nil, false
			}
			and := v.op == "AND"
			return func(sel []int32, out []int8) {
				tmp := make([]int8, len(sel))
				lk(sel, out)
				rk(sel, tmp)
				for i := range out {
					lv, rv := out[i], tmp[i]
					if and {
						switch {
						case lv == 0 || rv == 0:
							out[i] = 0
						case lv == -1 || rv == -1:
							out[i] = -1
						default:
							out[i] = 1
						}
					} else {
						switch {
						case lv == 1 || rv == 1:
							out[i] = 1
						case lv == -1 || rv == -1:
							out[i] = -1
						default:
							out[i] = 0
						}
					}
				}
			}, true
		case "=", "<>", "<", "<=", ">", ">=":
			return b.compileCmp(ti, v)
		}
		return nil, false
	case *notExpr:
		ck, ok := b.compileTri(ti, v.x)
		if !ok {
			return nil, false
		}
		return func(sel []int32, out []int8) {
			ck(sel, out)
			for i := range out {
				if out[i] != -1 {
					out[i] = 1 - out[i]
				}
			}
		}, true
	case *betweenExpr:
		return b.compileBetween(ti, v)
	case *inExpr:
		return b.compileIn(ti, v)
	case *likeExpr:
		cr, ok := b.kernelCol(ti, v.x)
		if !ok || cr.kind != storage.KindString {
			return nil, false
		}
		pat, not, nulls, strs := v.pattern, v.not, cr.nulls, cr.strs
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
					continue
				}
				out[i] = b2t(likeMatch(strs[r], pat) != not)
			}
		}, true
	case *isNullExpr:
		cr, ok := b.kernelCol(ti, v.x)
		if !ok {
			return nil, false
		}
		not, nulls := v.not, cr.nulls
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				out[i] = b2t(nulls[r] != not)
			}
		}, true
	}
	if p.mask() == 0 {
		// Constant predicate (bound subquery results, literal folds):
		// evaluate once against an empty row.
		res := p.eval(make([]storage.Value, b.total))
		var c int8 = -1
		if !res.IsNull() {
			c = b2t(res.AsInt() != 0)
		}
		return func(sel []int32, out []int8) {
			for i := range sel {
				out[i] = c
			}
		}, true
	}
	return nil, false
}

// compileCmp compiles col-vs-literal and col-vs-col comparisons.
func (b *binder) compileCmp(ti int, v *binExpr) (triFn, bool) {
	l, r, op := v.l, v.r, v.op
	if _, isLit := l.(*litExpr); isLit {
		l, r, op = r, l, mirrorOp(op)
	}
	cl, ok := b.kernelCol(ti, l)
	if !ok {
		return nil, false
	}
	pass := cmpPass(op)
	if lit, isLit := r.(*litExpr); isLit {
		lv := lit.v
		if lv.IsNull() {
			return constNullTri(), true
		}
		switch {
		case isNumKind(cl.kind) && isNumKind(lv.K):
			// The hottest kernel of the workload: emit one specialized
			// closure per operator so the inner loop is a direct float64
			// comparison with no function indirection. Integer-class
			// columns still compare through float64, matching
			// storage.Compare exactly (including >2^53 precision loss).
			lf, nulls := lv.AsFloat(), cl.nulls
			if cl.kind == storage.KindFloat {
				return numLitKernel(op, cl.flts, nulls, lf), true
			}
			return intLitKernel(op, cl.ints, nulls, lf), true
		case cl.kind == storage.KindString && lv.K == storage.KindString:
			ls, nulls, strs := lv.S, cl.nulls, cl.strs
			return func(sel []int32, out []int8) {
				for i, r := range sel {
					if nulls[r] {
						out[i] = -1
						continue
					}
					out[i] = b2t(pass(cmpS(strs[r], ls)))
				}
			}, true
		}
		return nil, false
	}
	cr, ok := b.kernelCol(ti, r)
	if !ok {
		return nil, false
	}
	switch {
	case isNumKind(cl.kind) && isNumKind(cr.kind):
		a, c := cl, cr
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if a.nulls[r] || c.nulls[r] {
					out[i] = -1
					continue
				}
				out[i] = b2t(pass(cmpF(a.numAt(r), c.numAt(r))))
			}
		}, true
	case cl.kind == storage.KindString && cr.kind == storage.KindString:
		ln, rn, ls, rs := cl.nulls, cr.nulls, cl.strs, cr.strs
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if ln[r] || rn[r] {
					out[i] = -1
					continue
				}
				out[i] = b2t(pass(cmpS(ls[r], rs[r])))
			}
		}, true
	}
	return nil, false
}

// numLitKernel builds the float-column vs numeric-literal kernel,
// specialized per operator.
func numLitKernel(op string, flts []float64, nulls []bool, lit float64) triFn {
	cmp := func(sel []int32, out []int8, test func(float64) bool) {
		for i, r := range sel {
			if nulls[r] {
				out[i] = -1
				continue
			}
			out[i] = b2t(test(flts[r]))
		}
	}
	switch op {
	case "=":
		return func(sel []int32, out []int8) { cmp(sel, out, func(f float64) bool { return f == lit }) }
	case "<>":
		return func(sel []int32, out []int8) { cmp(sel, out, func(f float64) bool { return f != lit }) }
	case "<":
		return func(sel []int32, out []int8) { cmp(sel, out, func(f float64) bool { return f < lit }) }
	case "<=":
		return func(sel []int32, out []int8) { cmp(sel, out, func(f float64) bool { return f <= lit }) }
	case ">":
		return func(sel []int32, out []int8) { cmp(sel, out, func(f float64) bool { return f > lit }) }
	default: // ">="
		return func(sel []int32, out []int8) { cmp(sel, out, func(f float64) bool { return f >= lit }) }
	}
}

// intLitKernel builds the integer-class-column vs numeric-literal
// kernel. Each specialization is a flat loop the compiler can keep in
// registers: null check, widen to float64, compare.
func intLitKernel(op string, ints []int64, nulls []bool, lit float64) triFn {
	switch op {
	case "=":
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
				} else {
					out[i] = b2t(float64(ints[r]) == lit)
				}
			}
		}
	case "<>":
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
				} else {
					out[i] = b2t(float64(ints[r]) != lit)
				}
			}
		}
	case "<":
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
				} else {
					out[i] = b2t(float64(ints[r]) < lit)
				}
			}
		}
	case "<=":
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
				} else {
					out[i] = b2t(float64(ints[r]) <= lit)
				}
			}
		}
	case ">":
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
				} else {
					out[i] = b2t(float64(ints[r]) > lit)
				}
			}
		}
	default: // ">="
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
				} else {
					out[i] = b2t(float64(ints[r]) >= lit)
				}
			}
		}
	}
}

// constNullTri is the always-UNKNOWN kernel (NULL literal operand).
func constNullTri() triFn {
	return func(sel []int32, out []int8) {
		for i := range sel {
			out[i] = -1
		}
	}
}

// compileBetween compiles x BETWEEN lo AND hi for column x against
// literal bounds.
func (b *binder) compileBetween(ti int, v *betweenExpr) (triFn, bool) {
	cl, ok := b.kernelCol(ti, v.x)
	if !ok {
		return nil, false
	}
	loL, ok := v.lo.(*litExpr)
	if !ok {
		return nil, false
	}
	hiL, ok := v.hi.(*litExpr)
	if !ok {
		return nil, false
	}
	if loL.v.IsNull() || hiL.v.IsNull() {
		return constNullTri(), true
	}
	not := v.not
	switch {
	case isNumKind(cl.kind) && isNumKind(loL.v.K) && isNumKind(hiL.v.K):
		lo, hi, nulls := loL.v.AsFloat(), hiL.v.AsFloat(), cl.nulls
		if cl.kind == storage.KindFloat {
			flts := cl.flts
			return func(sel []int32, out []int8) {
				for i, r := range sel {
					if nulls[r] {
						out[i] = -1
						continue
					}
					f := flts[r]
					out[i] = b2t((f >= lo && f <= hi) != not)
				}
			}, true
		}
		ints := cl.ints
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
					continue
				}
				f := float64(ints[r])
				out[i] = b2t((f >= lo && f <= hi) != not)
			}
		}, true
	case cl.kind == storage.KindString && loL.v.K == storage.KindString && hiL.v.K == storage.KindString:
		lo, hi, nulls, strs := loL.v.S, hiL.v.S, cl.nulls, cl.strs
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
					continue
				}
				s := strs[r]
				out[i] = b2t((s >= lo && s <= hi) != not)
			}
		}, true
	}
	return nil, false
}

// compileIn compiles x [NOT] IN (members) for int, date and string
// columns with typed member sets. GroupKey encoding is injective per
// kind, so an int column can only ever match KindInt members (and a
// date column KindDate members) — the typed sets keep exactly those.
// Float columns stay on the row fallback: float64 map equality treats
// -0 and 0 as equal where GroupKey's exact rendering does not.
func (b *binder) compileIn(ti int, v *inExpr) (triFn, bool) {
	cl, ok := b.kernelCol(ti, v.x)
	if !ok {
		return nil, false
	}
	hasNull, not := v.hasNull, v.not
	switch cl.kind {
	case storage.KindInt, storage.KindDate:
		want := storage.KindInt
		if cl.kind == storage.KindDate {
			want = storage.KindDate
		}
		set := make(map[int64]struct{})
		for _, m := range v.vals {
			if m.K == want {
				set[m.I] = struct{}{}
			}
		}
		nulls, ints := cl.nulls, cl.ints
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
					continue
				}
				_, found := set[ints[r]]
				if !found && hasNull {
					out[i] = -1
					continue
				}
				out[i] = b2t(found != not)
			}
		}, true
	case storage.KindString:
		set := make(map[string]struct{})
		for _, m := range v.vals {
			if m.K == storage.KindString {
				set[m.S] = struct{}{}
			}
		}
		nulls, strs := cl.nulls, cl.strs
		return func(sel []int32, out []int8) {
			for i, r := range sel {
				if nulls[r] {
					out[i] = -1
					continue
				}
				_, found := set[strs[r]]
				if !found && hasNull {
					out[i] = -1
					continue
				}
				out[i] = b2t(found != not)
			}
		}, true
	}
	return nil, false
}

// ---- join key fast path ----

// intClass classifies a column type for the int64 join-key fast path:
// 1 for integer-physical columns, 2 for dates, 0 otherwise. GroupKey
// keeps KindInt and KindDate keys disjoint, so raw int64 keys are only
// equivalent when both join sides share a class.
func intClass(t schema.Type) int {
	switch t {
	case schema.Identifier, schema.Integer:
		return 1
	case schema.Date:
		return 2
	default:
		return 0
	}
}

// intJoinKey reports whether a probe/build column pair can use raw
// int64 hash keys in place of GroupKey strings.
func intJoinKey(probe, build []*colExpr) bool {
	if len(probe) != 1 || len(build) != 1 {
		return false
	}
	c := intClass(probe[0].t)
	return c != 0 && c == intClass(build[0].t)
}

// rowIntKey extracts the int64 join key of a materialized row.
func rowIntKey(row []storage.Value, col *colExpr) (int64, bool) {
	//lint:ignore boundscheck layout invariant: col.off is a binder-assigned offset < total and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
	v := row[col.off]
	if v.IsNull() {
		return 0, false
	}
	return v.I, true
}

// appendRowKey appends the GroupKey-encoded join key of a materialized
// row to buf; ok=false on a NULL component (NULL never joins).
func appendRowKey(row []storage.Value, cols []*colExpr, buf []byte) ([]byte, bool) {
	for _, c := range cols {
		//lint:ignore boundscheck layout invariant: c.off is a binder-assigned offset < total and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
		v := row[c.off]
		if v.IsNull() {
			return buf, false
		}
		buf = v.AppendGroupKey(buf)
	}
	return buf, true
}

// keyCols resolves build-side key columns of table ti to vector
// readers, for key extraction without row materialization.
func (b *binder) keyCols(ti int, cols []*colExpr) []colReader {
	out := make([]colReader, 0, len(cols))
	for _, c := range cols {
		cr, ok := b.kernelCol(ti, c)
		if !ok {
			// Join edges always bind to plain columns of ti; anything else
			// is an executor invariant violation.
			panic("exec: join key is not a column of the build table")
		}
		out = append(out, *cr)
	}
	return out
}

// appendVecKey appends the GroupKey-encoded join key of base-table row
// r read straight from the column vectors.
func appendVecKey(kcs []colReader, r int32, buf []byte) ([]byte, bool) {
	for i := range kcs {
		if kcs[i].nulls[r] {
			return buf, false
		}
		buf = kcs[i].value(r).AppendGroupKey(buf)
	}
	return buf, true
}

// partOfInt hashes an int64 join key to a partition — FNV-1a over the
// key's little-endian bytes, deterministic like partOf.
func partOfInt(k int64, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for s := uint(0); s < 64; s += 8 {
		h ^= uint32(uint8(k >> s))
		h *= 16777619
	}
	return int(h % uint32(parts))
}

// partOfBytes is partOf for a byte-slice key (no string conversion).
func partOfBytes(key []byte, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(parts))
}
