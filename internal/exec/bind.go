package exec

import (
	"fmt"
	"strings"

	"tpcds/internal/schema"
	"tpcds/internal/sql"
	"tpcds/internal/storage"
)

// tabInst is one FROM entry bound to a physical table (base table or
// materialized CTE). Each instance owns a contiguous span of the
// query's canonical row layout starting at offset.
type tabInst struct {
	binding  string
	tab      *storage.Table
	offset   int
	leftJoin bool
	on       sql.Expr
}

func (t *tabInst) width() int { return t.tab.NumCols() }

// binder resolves names and produces bound expressions. When slots is
// non-nil the binder is in post-aggregation mode: expressions matching a
// slot render (group-by expressions, aggregates, window calls) resolve
// to their slot instead of base columns.
type binder struct {
	eng    *Engine
	qc     *qctx // the owning query's cancellation/phase state
	ctes   map[string]*storage.Table
	tables []tabInst
	total  int
	slots  map[string]bexpr
	// used marks the absolute layout offsets any bound expression
	// reads. Scans and joins fill only used columns — unreferenced
	// dimension attributes are never copied (a columnar engine reads
	// only the columns a query touches).
	used map[int]bool
}

func newBinder(eng *Engine, qc *qctx, ctes map[string]*storage.Table) *binder {
	return &binder{eng: eng, qc: qc, ctes: ctes, used: map[int]bool{}}
}

// usedCols returns the column indexes of table ti that any bound
// expression reads.
func (b *binder) usedCols(ti int) []int {
	inst := &b.tables[ti]
	var out []int
	for c := 0; c < inst.width(); c++ {
		if b.used[inst.offset+c] {
			out = append(out, c)
		}
	}
	return out
}

// registerColumns walks an unbound expression registering every column
// reference it can resolve, so the join layer knows the full used-column
// set before any binding of post-join clauses happens. Unresolvable
// names (aliases, unknown columns) are ignored here — real binding
// reports them later.
func (b *binder) registerColumns(e sql.Expr) {
	switch v := e.(type) {
	case *sql.ColRef:
		if ce, err := b.resolveColumn(v); err == nil {
			b.used[ce.off] = true
		}
	case *sql.BinOp:
		b.registerColumns(v.L)
		b.registerColumns(v.R)
	case *sql.UnaryOp:
		b.registerColumns(v.X)
	case *sql.Between:
		b.registerColumns(v.X)
		b.registerColumns(v.Lo)
		b.registerColumns(v.Hi)
	case *sql.In:
		b.registerColumns(v.X)
	case *sql.Like:
		b.registerColumns(v.X)
	case *sql.IsNull:
		b.registerColumns(v.X)
	case *sql.CaseExpr:
		for _, w := range v.Whens {
			b.registerColumns(w.Cond)
			b.registerColumns(w.Result)
		}
		if v.Else != nil {
			b.registerColumns(v.Else)
		}
	case *sql.FuncCall:
		for _, a := range v.Args {
			b.registerColumns(a)
		}
	case *sql.Window:
		for _, a := range v.Agg.Args {
			b.registerColumns(a)
		}
		for _, p := range v.PartitionBy {
			b.registerColumns(p)
		}
	}
}

// registerAll marks every column of every table as used (SELECT *).
func (b *binder) registerAll() {
	for ti := range b.tables {
		inst := &b.tables[ti]
		for c := 0; c < inst.width(); c++ {
			b.used[inst.offset+c] = true
		}
	}
}

// addTable registers a FROM entry. CTE names shadow base tables.
func (b *binder) addTable(ref sql.TableRef) error {
	var tab *storage.Table
	if t, ok := b.ctes[ref.Table]; ok {
		tab = t
	} else if t := b.eng.db.Table(ref.Table); t != nil {
		tab = t
	} else {
		return fmt.Errorf("unknown table %q", ref.Table)
	}
	binding := ref.Binding()
	for _, ti := range b.tables {
		if ti.binding == binding {
			return fmt.Errorf("duplicate table binding %q", binding)
		}
	}
	if len(b.tables) >= 64 {
		return fmt.Errorf("too many tables in FROM (max 64)")
	}
	b.tables = append(b.tables, tabInst{
		binding:  binding,
		tab:      tab,
		offset:   b.total,
		leftJoin: ref.LeftJoin,
		on:       ref.On,
	})
	b.total += tab.NumCols()
	return nil
}

// resolveColumn finds a column reference in the registered tables.
func (b *binder) resolveColumn(c *sql.ColRef) (*colExpr, error) {
	if c.Table != "" {
		for ti := range b.tables {
			inst := &b.tables[ti]
			if inst.binding != c.Table {
				continue
			}
			ci := inst.tab.Def.ColumnIndex(c.Name)
			if ci < 0 {
				return nil, fmt.Errorf("table %q has no column %q", c.Table, c.Name)
			}
			col, _ := inst.tab.Def.Column(c.Name)
			b.used[inst.offset+ci] = true
			return &colExpr{off: inst.offset + ci, t: col.Type, tblBit: 1 << uint(ti)}, nil
		}
		return nil, fmt.Errorf("unknown table binding %q", c.Table)
	}
	var found *colExpr
	for ti := range b.tables {
		inst := &b.tables[ti]
		ci := inst.tab.Def.ColumnIndex(c.Name)
		if ci < 0 {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("ambiguous column %q", c.Name)
		}
		col, _ := inst.tab.Def.Column(c.Name)
		found = &colExpr{off: inst.offset + ci, t: col.Type, tblBit: 1 << uint(ti)}
	}
	if found == nil {
		return nil, fmt.Errorf("unknown column %q", c.Name)
	}
	b.used[found.off] = true
	return found, nil
}

// bindLit converts a literal AST node.
func bindLit(l *sql.Lit) (bexpr, error) {
	switch l.Kind {
	case sql.LitNull:
		return &litExpr{v: storage.Null, t: schema.Char}, nil
	case sql.LitString:
		return &litExpr{v: storage.Str(l.Str), t: schema.Char}, nil
	case sql.LitDate:
		d, err := storage.ParseDate(l.Str)
		if err != nil {
			return nil, err
		}
		return &litExpr{v: storage.DateV(d), t: schema.Date}, nil
	default:
		if l.IsInt {
			return &litExpr{v: storage.Int(l.IntVal), t: schema.Integer}, nil
		}
		return &litExpr{v: storage.Float(l.Num), t: schema.Decimal}, nil
	}
}

// coerceDate converts a string literal to a date when compared against a
// date-typed expression — TPC-DS queries write `d_date BETWEEN
// '1999-02-21' AND ...` without an explicit cast.
func coerceDate(target, e bexpr) bexpr {
	if target.typ() != schema.Date {
		return e
	}
	lit, ok := e.(*litExpr)
	if !ok || lit.v.K != storage.KindString {
		return e
	}
	if d, err := storage.ParseDate(lit.v.S); err == nil {
		return &litExpr{v: storage.DateV(d), t: schema.Date}
	}
	return e
}

// checkComparable rejects comparisons between string and numeric
// operands at bind time — the engine's values are dynamically typed,
// but such a comparison can never be meaningful and would otherwise
// fail deep inside execution.
func checkComparable(op string, l, r bexpr) error {
	isStr := func(t schema.Type) bool { return t == schema.Char || t == schema.Varchar }
	isNum := func(t schema.Type) bool {
		return t == schema.Integer || t == schema.Identifier || t == schema.Decimal || t == schema.Date
	}
	lt, rt := l.typ(), r.typ()
	if (isStr(lt) && isNum(rt)) || (isNum(lt) && isStr(rt)) {
		// NULL literals bind as Char; comparing NULL with anything is
		// legal (always UNKNOWN).
		if le, ok := l.(*litExpr); ok && le.v.IsNull() {
			return nil
		}
		if re, ok := r.(*litExpr); ok && re.v.IsNull() {
			return nil
		}
		return fmt.Errorf("cannot compare %v with %v (operator %s)", lt, rt, op)
	}
	return nil
}

func isComparison(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func arithType(op string, l, r bexpr) schema.Type {
	if op == "/" {
		return schema.Decimal
	}
	isInt := func(t schema.Type) bool { return t == schema.Integer || t == schema.Identifier }
	if l.typ() == schema.Date || r.typ() == schema.Date {
		return schema.Date
	}
	if isInt(l.typ()) && isInt(r.typ()) {
		return schema.Integer
	}
	return schema.Decimal
}

// bind converts an AST expression to an executable one. Aggregates and
// windows are only legal when pre-registered as slots (post-aggregation
// binding); encountering one otherwise is an error.
func (b *binder) bind(e sql.Expr) (bexpr, error) {
	if b.slots != nil {
		if s, ok := b.slots[e.Render()]; ok {
			return s, nil
		}
	}
	switch v := e.(type) {
	case *sql.ColRef:
		return b.resolveColumn(v)
	case *sql.Lit:
		return bindLit(v)
	case *sql.BinOp:
		l, err := b.bind(v.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bind(v.R)
		if err != nil {
			return nil, err
		}
		t := schema.Integer // booleans
		if isComparison(v.Op) {
			l2 := coerceDate(r, l)
			r2 := coerceDate(l, r)
			l, r = l2, r2
			if err := checkComparable(v.Op, l, r); err != nil {
				return nil, err
			}
		} else if v.Op != "AND" && v.Op != "OR" {
			t = arithType(v.Op, l, r)
			if v.Op == "||" {
				t = schema.Varchar
			}
		}
		return &binExpr{op: v.Op, l: l, r: r, t: t}, nil
	case *sql.UnaryOp:
		x, err := b.bind(v.X)
		if err != nil {
			return nil, err
		}
		if v.Op == "NOT" {
			return &notExpr{x: x}, nil
		}
		return &negExpr{x: x}, nil
	case *sql.Between:
		x, err := b.bind(v.X)
		if err != nil {
			return nil, err
		}
		lo, err := b.bind(v.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bind(v.Hi)
		if err != nil {
			return nil, err
		}
		return &betweenExpr{x: x, lo: coerceDate(x, lo), hi: coerceDate(x, hi), not: v.Not}, nil
	case *sql.In:
		x, err := b.bind(v.X)
		if err != nil {
			return nil, err
		}
		in := &inExpr{x: x, set: map[string]bool{}, not: v.Not}
		if v.Sub != nil {
			res, _, err := b.subqueryResult(v.Sub)
			if err != nil {
				return nil, fmt.Errorf("IN subquery: %w", err)
			}
			if len(res.Columns) != 1 {
				return nil, fmt.Errorf("IN subquery must return one column, got %d", len(res.Columns))
			}
			for _, row := range res.Rows {
				b.qc.tick()
				if row[0].IsNull() {
					in.hasNull = true
					continue
				}
				in.set[row[0].GroupKey()] = true
				in.vals = append(in.vals, row[0])
			}
			return in, nil
		}
		for _, le := range v.List {
			lv, err := b.bind(le)
			if err != nil {
				return nil, err
			}
			lv = coerceDate(x, lv)
			lit, ok := lv.(*litExpr)
			if !ok {
				return nil, fmt.Errorf("IN list members must be literals")
			}
			if lit.v.IsNull() {
				in.hasNull = true
				continue
			}
			in.set[lit.v.GroupKey()] = true
			in.vals = append(in.vals, lit.v)
		}
		return in, nil
	case *sql.Like:
		x, err := b.bind(v.X)
		if err != nil {
			return nil, err
		}
		return &likeExpr{x: x, pattern: v.Pattern, not: v.Not}, nil
	case *sql.IsNull:
		x, err := b.bind(v.X)
		if err != nil {
			return nil, err
		}
		return &isNullExpr{x: x, not: v.Not}, nil
	case *sql.CaseExpr:
		c := &caseExpr{}
		for _, w := range v.Whens {
			cond, err := b.bind(w.Cond)
			if err != nil {
				return nil, err
			}
			res, err := b.bind(w.Result)
			if err != nil {
				return nil, err
			}
			c.conds = append(c.conds, cond)
			c.results = append(c.results, res)
		}
		if v.Else != nil {
			el, err := b.bind(v.Else)
			if err != nil {
				return nil, err
			}
			c.elseE = el
		}
		c.t = c.results[0].typ()
		return c, nil
	case *sql.FuncCall:
		if sql.IsAggregate(v.Name) {
			return nil, fmt.Errorf("aggregate %s not allowed in this context", v.Name)
		}
		rt, ok := scalarFuncs[v.Name]
		if !ok {
			return nil, fmt.Errorf("unknown function %s", v.Name)
		}
		f := &funcExpr{name: v.Name, t: rt}
		for _, a := range v.Args {
			ba, err := b.bind(a)
			if err != nil {
				return nil, err
			}
			f.args = append(f.args, ba)
		}
		if len(f.args) == 0 {
			return nil, fmt.Errorf("function %s requires arguments", v.Name)
		}
		if rt == 0 { // same-as-first-argument functions
			f.t = f.args[0].typ()
		}
		return f, nil
	case *sql.Window:
		return nil, fmt.Errorf("window function not allowed in this context")
	case *sql.SubQuery:
		res, types, err := b.subqueryResult(v.Select)
		if err != nil {
			return nil, fmt.Errorf("scalar subquery: %w", err)
		}
		if len(res.Columns) != 1 {
			return nil, fmt.Errorf("scalar subquery must return one column")
		}
		if len(res.Rows) > 1 {
			return nil, fmt.Errorf("scalar subquery returned %d rows", len(res.Rows))
		}
		val := storage.Null
		if len(res.Rows) == 1 {
			val = res.Rows[0][0]
		}
		return &litExpr{v: val, t: types[0]}, nil
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// conjuncts flattens an AND tree.
func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinOp); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// exprContainsAggregate reports whether the AST contains an aggregate or
// window call (deciding whether a query is an aggregation).
func exprContainsAggregate(e sql.Expr) bool {
	switch v := e.(type) {
	case *sql.FuncCall:
		if sql.IsAggregate(v.Name) {
			return true
		}
		for _, a := range v.Args {
			if exprContainsAggregate(a) {
				return true
			}
		}
	case *sql.Window:
		return true
	case *sql.BinOp:
		return exprContainsAggregate(v.L) || exprContainsAggregate(v.R)
	case *sql.UnaryOp:
		return exprContainsAggregate(v.X)
	case *sql.Between:
		return exprContainsAggregate(v.X) || exprContainsAggregate(v.Lo) || exprContainsAggregate(v.Hi)
	case *sql.In:
		return exprContainsAggregate(v.X)
	case *sql.Like:
		return exprContainsAggregate(v.X)
	case *sql.IsNull:
		return exprContainsAggregate(v.X)
	case *sql.CaseExpr:
		for _, w := range v.Whens {
			if exprContainsAggregate(w.Cond) || exprContainsAggregate(w.Result) {
				return true
			}
		}
		if v.Else != nil {
			return exprContainsAggregate(v.Else)
		}
	}
	return false
}

// outputName derives a result column name for a select item.
func outputName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*sql.ColRef); ok {
		return c.Name
	}
	return strings.ToLower(item.Expr.Render())
}
