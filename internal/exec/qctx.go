package exec

import (
	"context"

	"tpcds/internal/obs"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// qctx carries the per-query execution state that is not part of the
// binder's name-resolution job: the cancellation context and the
// operator phase currently running (for error attribution when an
// internal invariant violation is recovered at the Query boundary).
//
// Cancellation is cooperative. Serial operator loops call tick() once
// per row (an int increment; the context is polled every tickInterval
// rows), morsel workers call done() between morsels and drain cleanly,
// and partition workers call checkNow() periodically. When the context
// is done, the coordinating goroutine raises a cancelPanic, which the
// QueryContext/RunContext recover converts into the context's error —
// the same mechanism that turns internal panics into per-query errors,
// so cancellation needs no error plumbing through the operator tree.
type qctx struct {
	ctx   context.Context
	phase string // current operator; coordinator goroutine only
	ticks int    // serial poll counter; coordinator goroutine only

	// qspan is the query's observability span, taken from the context
	// by the caller (driver or CLI); nil means tracing is disabled and
	// the span helpers below are free no-ops. cur is the innermost open
	// operator span — coordinator goroutine only; morsel workers read
	// the operator span captured before they are spawned.
	qspan *obs.Span
	cur   *obs.Span
	// em carries the engine's metric handles (nil when no registry is
	// installed); workers update them through sharded atomics.
	em *execMetrics

	// cse memoizes subquery and CTE evaluations within this query by
	// literal-preserving fingerprint + CTE scope (cost planner only).
	// Values are shared read-only; the query lifetime bounds the memo.
	// Coordinator goroutine only — subqueries bind before morsel
	// workers exist.
	cse map[string]cseEntry
	// cseHits and decorrelated feed the query's trace: memo reuses and
	// IN-subquery predicates rewritten to joins.
	cseHits      int
	decorrelated int
}

// cseEntry is one memoized subquery evaluation: the raw result for
// expression subqueries, plus the materialized table when the same
// body backed a CTE.
type cseEntry struct {
	res   *Result
	types []schema.Type
	tab   *storage.Table
}

// tickInterval is the serial-path polling granularity: a context check
// every 1024 rows bounds cancellation latency without measurable
// per-row cost.
const tickInterval = 1024

// cancelPanic is the sentinel raised when the query's context is done.
// It carries the context error (context.Canceled or
// context.DeadlineExceeded) to the boundary recover.
type cancelPanic struct{ err error }

func (e *Engine) newQctx(ctx context.Context) *qctx {
	if ctx == nil {
		// nil means the caller came through a context-free wrapper; an
		// always-live root is the correct "no deadline" semantics there.
		//lint:ignore ctxflow nil-ctx fallback for the documented context-free wrappers; never overrides a caller-supplied ctx
		ctx = context.Background()
	}
	return &qctx{ctx: ctx, phase: "parse", qspan: obs.SpanFromContext(ctx), em: e.em}
}

// setPhase records the operator about to run. Coordinator goroutine
// only; workers never call it.
func (q *qctx) setPhase(p string) {
	if q != nil {
		q.phase = p
	}
}

// phaseName returns the phase for error messages.
func (q *qctx) phaseName() string {
	if q == nil || q.phase == "" {
		return "exec"
	}
	return q.phase
}

// done reports whether the query's context is cancelled or expired.
// Safe from any goroutine.
func (q *qctx) done() bool {
	if q == nil || q.ctx == nil {
		return false
	}
	select {
	case <-q.ctx.Done():
		return true
	default:
		return false
	}
}

// checkNow raises cancelPanic when the context is done. Safe from any
// goroutine (morsel and partition workers run under the pool's recover,
// which re-raises on the coordinator).
func (q *qctx) checkNow() {
	if q.done() {
		panic(cancelPanic{q.ctx.Err()})
	}
}

// tick is the serial-loop cancellation point: every tickInterval calls
// it polls the context. Coordinator goroutine only — the counter is not
// synchronized.
func (q *qctx) tick() {
	if q == nil {
		return
	}
	q.ticks++
	if q.ticks%tickInterval == 0 {
		q.checkNow()
	}
}

// startOp opens an operator span ("scan store_sales", "build item")
// nested under the innermost open operator — or the query span for
// top-level phases — and makes it current so morsel workers parent
// their per-morsel spans under the right operator. Coordinator
// goroutine only. With tracing disabled this is a nil check and
// nothing else: the name is assembled only on the enabled path, so the
// hot path stays allocation-free.
func (q *qctx) startOp(verb, detail string) *obs.Span {
	if q == nil || q.qspan == nil {
		return nil
	}
	parent := q.cur
	if parent == nil {
		parent = q.qspan
	}
	name := verb
	if detail != "" {
		name = verb + " " + detail
	}
	sp := parent.ChildCat(name, "exec")
	q.cur = sp
	return sp
}

// endOp completes an operator span and restores its parent as the
// current operator. Tolerates the nil span startOp returns when
// tracing is off. Coordinator goroutine only.
func (q *qctx) endOp(sp *obs.Span) {
	if sp == nil {
		return
	}
	sp.End()
	if q != nil {
		if p := sp.Parent(); p != q.qspan {
			q.cur = p
		} else {
			q.cur = nil
		}
	}
}

// opSpan returns the span per-morsel worker spans should parent under:
// the innermost open operator, or the query span itself. nil when
// tracing is off. Coordinator goroutine only (callers capture the
// result before spawning workers).
func (q *qctx) opSpan() *obs.Span {
	if q == nil {
		return nil
	}
	if q.cur != nil {
		return q.cur
	}
	return q.qspan
}
