package exec

import (
	"context"
)

// qctx carries the per-query execution state that is not part of the
// binder's name-resolution job: the cancellation context and the
// operator phase currently running (for error attribution when an
// internal invariant violation is recovered at the Query boundary).
//
// Cancellation is cooperative. Serial operator loops call tick() once
// per row (an int increment; the context is polled every tickInterval
// rows), morsel workers call done() between morsels and drain cleanly,
// and partition workers call checkNow() periodically. When the context
// is done, the coordinating goroutine raises a cancelPanic, which the
// QueryContext/RunContext recover converts into the context's error —
// the same mechanism that turns internal panics into per-query errors,
// so cancellation needs no error plumbing through the operator tree.
type qctx struct {
	ctx   context.Context
	phase string // current operator; coordinator goroutine only
	ticks int    // serial poll counter; coordinator goroutine only
}

// tickInterval is the serial-path polling granularity: a context check
// every 1024 rows bounds cancellation latency without measurable
// per-row cost.
const tickInterval = 1024

// cancelPanic is the sentinel raised when the query's context is done.
// It carries the context error (context.Canceled or
// context.DeadlineExceeded) to the boundary recover.
type cancelPanic struct{ err error }

func newQctx(ctx context.Context) *qctx {
	if ctx == nil {
		// nil means the caller came through a context-free wrapper; an
		// always-live root is the correct "no deadline" semantics there.
		//lint:ignore ctxflow nil-ctx fallback for the documented context-free wrappers; never overrides a caller-supplied ctx
		ctx = context.Background()
	}
	return &qctx{ctx: ctx, phase: "parse"}
}

// setPhase records the operator about to run. Coordinator goroutine
// only; workers never call it.
func (q *qctx) setPhase(p string) {
	if q != nil {
		q.phase = p
	}
}

// phaseName returns the phase for error messages.
func (q *qctx) phaseName() string {
	if q == nil || q.phase == "" {
		return "exec"
	}
	return q.phase
}

// done reports whether the query's context is cancelled or expired.
// Safe from any goroutine.
func (q *qctx) done() bool {
	if q == nil || q.ctx == nil {
		return false
	}
	select {
	case <-q.ctx.Done():
		return true
	default:
		return false
	}
}

// checkNow raises cancelPanic when the context is done. Safe from any
// goroutine (morsel and partition workers run under the pool's recover,
// which re-raises on the coordinator).
func (q *qctx) checkNow() {
	if q.done() {
		panic(cancelPanic{q.ctx.Err()})
	}
}

// tick is the serial-loop cancellation point: every tickInterval calls
// it polls the context. Coordinator goroutine only — the counter is not
// synchronized.
func (q *qctx) tick() {
	if q == nil {
		return
	}
	q.ticks++
	if q.ticks%tickInterval == 0 {
		q.checkNow()
	}
}
