package exec

import (
	"context"

	"tpcds/internal/obs"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// qctx carries the per-query execution state that is not part of the
// binder's name-resolution job: the cancellation context and the
// operator phase currently running (for error attribution when an
// internal invariant violation is recovered at the Query boundary).
//
// Cancellation is cooperative. Serial operator loops call tick() once
// per row (an int increment; the context is polled every tickInterval
// rows), morsel workers call done() between morsels and drain cleanly,
// and partition workers call checkNow() periodically. When the context
// is done, the coordinating goroutine raises a cancelPanic, which the
// QueryContext/RunContext recover converts into the context's error —
// the same mechanism that turns internal panics into per-query errors,
// so cancellation needs no error plumbing through the operator tree.
type qctx struct {
	ctx   context.Context
	phase string // current operator; coordinator goroutine only
	ticks int    // serial poll counter; coordinator goroutine only

	// qspan is the query's observability span, taken from the context
	// by the caller (driver or CLI); nil means tracing is disabled and
	// the span helpers below are free no-ops. cur is the innermost open
	// operator span — coordinator goroutine only; morsel workers read
	// the operator span captured before they are spawned.
	qspan *obs.Span
	cur   *obs.Span
	// prof is the root of the query's runtime profile tree (EXPLAIN
	// ANALYZE); nil means profiling is disabled and every profile
	// helper is a free no-op. pcur is the innermost open operator node,
	// maintained in lockstep with cur by startOp/endOp. Both are
	// coordinator-goroutine fields; morsel workers may read pcur (the
	// coordinator writes it strictly before spawning and strictly after
	// joining workers, the same happens-before discipline as cur) but
	// touch only its atomic counters.
	prof *obs.OpNode
	pcur *obs.OpNode
	// status is the driver's in-flight registry entry for this query
	// (nil outside the driver); the coordinator reports coarse phase
	// and row progress through it for the live diagnostics endpoint.
	status obs.QueryStatus
	// em carries the engine's metric handles (nil when no registry is
	// installed); workers update them through sharded atomics.
	em *execMetrics

	// cse memoizes subquery and CTE evaluations within this query by
	// literal-preserving fingerprint + CTE scope (cost planner only).
	// Values are shared read-only; the query lifetime bounds the memo.
	// Coordinator goroutine only — subqueries bind before morsel
	// workers exist.
	cse map[string]cseEntry
	// cseHits and decorrelated feed the query's trace: memo reuses and
	// IN-subquery predicates rewritten to joins.
	cseHits      int
	decorrelated int
}

// cseEntry is one memoized subquery evaluation: the raw result for
// expression subqueries, plus the materialized table when the same
// body backed a CTE.
type cseEntry struct {
	res   *Result
	types []schema.Type
	tab   *storage.Table
}

// tickInterval is the serial-path polling granularity: a context check
// every 1024 rows bounds cancellation latency without measurable
// per-row cost.
const tickInterval = 1024

// cancelPanic is the sentinel raised when the query's context is done.
// It carries the context error (context.Canceled or
// context.DeadlineExceeded) to the boundary recover.
type cancelPanic struct{ err error }

func (e *Engine) newQctx(ctx context.Context) *qctx {
	if ctx == nil {
		// nil means the caller came through a context-free wrapper; an
		// always-live root is the correct "no deadline" semantics there.
		//lint:ignore ctxflow nil-ctx fallback for the documented context-free wrappers; never overrides a caller-supplied ctx
		ctx = context.Background()
	}
	q := &qctx{ctx: ctx, phase: "parse", qspan: obs.SpanFromContext(ctx), em: e.em}
	q.status = obs.StatusFromContext(ctx)
	if q.status != nil {
		q.status.SetPhase("parse")
	}
	if e.profiling {
		q.prof = obs.NewProfile("query")
	}
	return q
}

// setPhase records the operator about to run. Coordinator goroutine
// only; workers never call it.
func (q *qctx) setPhase(p string) {
	if q == nil {
		return
	}
	q.phase = p
	if q.status != nil {
		// Phase strings are compile-time constants, so forwarding them
		// to the in-flight registry allocates nothing.
		q.status.SetPhase(p)
	}
}

// phaseName returns the phase for error messages.
func (q *qctx) phaseName() string {
	if q == nil || q.phase == "" {
		return "exec"
	}
	return q.phase
}

// done reports whether the query's context is cancelled or expired.
// Safe from any goroutine.
func (q *qctx) done() bool {
	if q == nil || q.ctx == nil {
		return false
	}
	select {
	case <-q.ctx.Done():
		return true
	default:
		return false
	}
}

// checkNow raises cancelPanic when the context is done. Safe from any
// goroutine (morsel and partition workers run under the pool's recover,
// which re-raises on the coordinator).
func (q *qctx) checkNow() {
	if q.done() {
		panic(cancelPanic{q.ctx.Err()})
	}
}

// tick is the serial-loop cancellation point: every tickInterval calls
// it polls the context. Coordinator goroutine only — the counter is not
// synchronized.
func (q *qctx) tick() {
	if q == nil {
		return
	}
	q.ticks++
	if q.ticks%tickInterval == 0 {
		q.checkNow()
	}
}

// startOp opens an operator span ("scan store_sales", "build item")
// nested under the innermost open operator — or the query span for
// top-level phases — and makes it current so morsel workers parent
// their per-morsel spans under the right operator. When profiling is
// enabled it also pushes a profile node with the same name, so the
// profile tree mirrors the span tree by construction. Coordinator
// goroutine only. With both tracing and profiling disabled this is a
// nil check and nothing else: the name is assembled only on the
// enabled path, so the hot path stays allocation-free.
func (q *qctx) startOp(verb, detail string) *obs.Span {
	if q == nil || (q.qspan == nil && q.prof == nil) {
		return nil
	}
	name := verb
	if detail != "" {
		name = verb + " " + detail
	}
	if q.prof != nil {
		node := q.pcur
		if node == nil {
			node = q.prof
		}
		q.pcur = node.StartChild(name)
	}
	if q.qspan == nil {
		return nil
	}
	parent := q.cur
	if parent == nil {
		parent = q.qspan
	}
	sp := parent.ChildCat(name, "exec")
	q.cur = sp
	return sp
}

// endOp completes an operator span and restores its parent as the
// current operator; with profiling enabled it also pops the matching
// profile node (startOp/endOp calls are strictly paired, so the node
// stack stays in lockstep even when tracing is off and sp is nil).
// Coordinator goroutine only.
func (q *qctx) endOp(sp *obs.Span) {
	if q != nil && q.prof != nil && q.pcur != nil {
		q.pcur.End()
		if p := q.pcur.Parent(); p != q.prof {
			q.pcur = p
		} else {
			q.pcur = nil
		}
	}
	if sp == nil {
		return
	}
	sp.End()
	if q != nil {
		if p := sp.Parent(); p != q.qspan {
			q.cur = p
		} else {
			q.cur = nil
		}
	}
}

// profiling reports whether this query records a profile tree. Used to
// gate work (like estimate computation) that only the profile consumes.
func (q *qctx) profiling() bool { return q != nil && q.prof != nil }

// opRowsIn records rows entering the current operator on both the
// operator span (as an attribute) and the profile node. Coordinator
// goroutine only; free when observability is off.
func (q *qctx) opRowsIn(sp *obs.Span, n int64) {
	sp.SetAttrInt("rows_in", n)
	if q != nil {
		q.pcur.AddRowsIn(n)
	}
}

// opRowsOut records rows leaving the current operator, mirrors them
// into the in-flight status (live "rows so far" for diagnostics), and
// annotates the span. Coordinator goroutine only.
func (q *qctx) opRowsOut(sp *obs.Span, n int64) {
	sp.SetAttrInt("rows_out", n)
	if q == nil {
		return
	}
	q.pcur.AddRowsOut(n)
	if q.status != nil {
		q.status.SetRows(n)
	}
}

// opEst records the planner's output-cardinality estimate for the
// current operator, enabling estimate-vs-actual q-error in the
// profile. Coordinator goroutine only.
func (q *qctx) opEst(rows float64) {
	if q == nil {
		return
	}
	q.pcur.SetEst(rows)
}

// opMorsels folds a parallel join's per-worker morsel counts into the
// current operator node. Coordinator goroutine only (called after the
// morsel barrier).
func (q *qctx) opMorsels(n int64) {
	if q == nil {
		return
	}
	q.pcur.AddMorsels(n)
}

// growScratch / shrinkScratch account transient operator working
// memory (selection vectors, hash partitions, group arrays) against
// the current profile node. Safe from any goroutine: the node pointer
// is published before workers spawn and the counters are atomic.
func (q *qctx) growScratch(b int64) {
	if q == nil {
		return
	}
	q.pcur.GrowScratch(b)
}

func (q *qctx) shrinkScratch(b int64) {
	if q == nil {
		return
	}
	q.pcur.ShrinkScratch(b)
}

// profile snapshots the query's profile tree (nil when profiling is
// off). Coordinator goroutine only, after all workers have joined.
func (q *qctx) profile() *obs.OpProfile {
	if q == nil || q.prof == nil {
		return nil
	}
	return q.prof.Snapshot()
}

// opSpan returns the span per-morsel worker spans should parent under:
// the innermost open operator, or the query span itself. nil when
// tracing is off. Coordinator goroutine only (callers capture the
// result before spawning workers).
func (q *qctx) opSpan() *obs.Span {
	if q == nil {
		return nil
	}
	if q.cur != nil {
		return q.cur
	}
	return q.qspan
}
