package exec

import (
	"tpcds/internal/index"
	"tpcds/internal/plan"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// dimSpec describes one dimension of a star-shaped query as needed by
// the star transformation executor.
type dimSpec struct {
	table   int      // table instance index
	factCol *colExpr // fact-side join column (absolute offset)
	pkCol   int      // dimension-local primary key column index
	hasPred bool
}

// starShape recognizes the star query shape: one fact (the largest
// table) joined to dimensions, each on a single equality edge hitting
// the dimension's one-column primary key, with no dimension-to-dimension
// edges and no outer joins. Returns the optimizer shape summary and the
// executable dimension specs keyed by table index.
func (e *Engine) starShape(b *binder, filters []filterInfo, edges []joinEdge, lefts []leftJoin) (plan.StarShape, map[int]dimSpec, bool) {
	if len(lefts) > 0 || len(b.tables) < 2 {
		return plan.StarShape{}, nil, false
	}
	// Driver: the largest fact-kind table; the largest table overall
	// when no base fact participates (CTE inputs are dimension-kind).
	fact := -1
	factIsFact := false
	for ti := range b.tables {
		isFact := b.tableAt(ti).tab.Def.Kind == schema.Fact
		better := fact < 0 ||
			(isFact && !factIsFact) ||
			(isFact == factIsFact && b.tableAt(ti).tab.NumRows() > b.tableAt(fact).tab.NumRows())
		if better {
			fact, factIsFact = ti, isFact
		}
	}
	dims := map[int]dimSpec{}
	for _, ed := range edges {
		var dimT int
		var factSide, dimSide *colExpr
		switch {
		case ed.aTbl == fact:
			dimT, factSide, dimSide = ed.bTbl, ed.aCol, ed.bCol
		case ed.bTbl == fact:
			dimT, factSide, dimSide = ed.aTbl, ed.bCol, ed.aCol
		default:
			// Dimension-to-dimension edge: snowflake arm — not a pure
			// star; the hash pipeline handles it.
			return plan.StarShape{}, nil, false
		}
		if _, dup := dims[dimT]; dup {
			// Two edges to the same dimension (e.g. sold and ship date
			// against date_dim twice would use two bindings; two edges to
			// ONE binding is a composite join) — not star shaped.
			return plan.StarShape{}, nil, false
		}
		inst := b.tableAt(dimT)
		pk := inst.tab.Def.PrimaryKey
		if len(pk) != 1 {
			return plan.StarShape{}, nil, false
		}
		pkIdx := inst.tab.Def.ColumnIndex(pk[0])
		if dimSide.off-inst.offset != pkIdx {
			return plan.StarShape{}, nil, false
		}
		dims[dimT] = dimSpec{table: dimT, factCol: factSide, pkCol: pkIdx}
	}
	// Every non-fact table must participate as a dimension.
	if len(dims) != len(b.tables)-1 {
		return plan.StarShape{}, nil, false
	}
	shape := plan.StarShape{
		FactName: b.tableAt(fact).binding,
		FactRows: b.tableAt(fact).tab.NumRows(),
	}
	for ti, spec := range dims {
		inst := b.tableAt(ti)
		// Exact filtered cardinality: dimensions are small, a counting
		// scan is cheaper than being wrong about the strategy.
		filtered := inst.tab.NumRows()
		hasPred := false
		for _, f := range filters {
			if f.table == ti {
				hasPred = true
			}
		}
		if hasPred {
			filtered = b.countFiltered(ti, filters)
		}
		spec.hasPred = hasPred
		dims[ti] = spec
		shape.Dims = append(shape.Dims, plan.DimInfo{
			Name:         inst.binding,
			Rows:         inst.tab.NumRows(),
			FilteredRows: filtered,
			PKJoin:       true,
		})
	}
	return shape, dims, true
}

// runStar executes the star transformation (§2.1): per filtered
// dimension, the qualifying surrogate keys are turned into a fact bitmap
// through the fact FK's bitmap index (bitmap access), the bitmaps are
// merged (AND), and only the qualifying fact rows are fetched and joined
// back to the dimensions by key lookup (bitmap join). The fact fetch
// runs in morsels over the qualifying row ids.
func (e *Engine) runStar(b *binder, filters []filterInfo, edges []joinEdge, residual []bexpr, dims map[int]dimSpec, est float64, tr *Trace) ([][]storage.Value, bool) {
	// Identify the fact: the one table not in dims.
	fact := -1
	for ti := range b.tables {
		if _, isDim := dims[ti]; !isDim {
			fact = ti
			break
		}
	}
	if fact < 0 {
		return nil, false
	}
	factInst := b.tableAt(fact)
	sp := b.qc.startOp("star", factInst.binding)
	b.qc.opRowsIn(sp, int64(factInst.tab.NumRows()))
	b.qc.opEst(est)
	defer b.qc.endOp(sp)

	// Index each dimension's qualifying rows by surrogate key (row ids
	// only; spans are copied per matching fact row).
	type dimData struct {
		spec dimSpec
		rows map[int64]int32 // sk -> base-table row id
	}
	var dimDatas []dimData
	var accBitmap *index.Bitmap
	for ti, spec := range dims {
		inst := b.tableAt(ti)
		dd := dimData{spec: spec, rows: map[int64]int32{}}
		var keys []int64
		b.forEachFiltered(ti, filters, func(r int, row []storage.Value) {
			//lint:ignore boundscheck layout invariant: inst.offset+spec.pkCol < total (binder-assigned offsets) and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
			skVal := row[inst.offset+spec.pkCol]
			if skVal.IsNull() {
				return
			}
			sk := skVal.AsInt()
			if _, dup := dd.rows[sk]; !dup {
				dd.rows[sk] = int32(r)
				keys = append(keys, sk)
			}
		})
		dimDatas = append(dimDatas, dd)
		if spec.hasPred {
			factCol := spec.factCol.off - factInst.offset
			bi := e.bitmapIndex(factInst.tab, factCol)
			bm := bi.UnionOf(keys)
			if accBitmap == nil {
				accBitmap = bm
			} else {
				accBitmap.And(bm)
			}
		}
	}
	if accBitmap == nil {
		return nil, false // no filtered dimension; plan should not choose star
	}

	// Fact-local filters.
	var factPreds []bexpr
	for _, f := range filters {
		if f.table == fact {
			factPreds = append(factPreds, f.pred)
		}
	}

	// Collect the qualifying fact row ids, then fetch + join them back in
	// morsels. Per-morsel buffers concatenate in bitmap order, so the
	// output matches the serial ForEach walk exactly.
	var ids []int32
	accBitmap.ForEach(func(r int) bool {
		ids = append(ids, int32(r))
		return true
	})
	factCols := b.usedCols(fact)
	// joinBack resolves the dimension lookups and residual predicates for
	// one fact row already filled into row (fact span populated, local
	// predicates already satisfied) and appends the joined copy.
	joinBack := func(row []storage.Value, out [][]storage.Value) [][]storage.Value {
		for _, dd := range dimDatas {
			//lint:ignore boundscheck layout invariant: factCol.off is a binder-assigned offset < total and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
			fkVal := row[dd.spec.factCol.off]
			if fkVal.IsNull() {
				return out
			}
			dimRowID, found := dd.rows[fkVal.AsInt()]
			if !found {
				return out
			}
			b.fillSpan(dd.spec.table, dimRowID, row)
		}
		for _, p := range residual {
			if !truthy(p.eval(row)) {
				return out
			}
		}
		cp := make([]storage.Value, b.total)
		copy(cp, row)
		return append(out, cp)
	}
	fetch := func(r int, row []storage.Value, out [][]storage.Value) [][]storage.Value {
		for i := range row {
			row[i] = storage.Null
		}
		for _, c := range factCols {
			//lint:ignore boundscheck layout invariant: factInst.offset+c < total for every used column and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
			row[factInst.offset+c] = factInst.tab.Get(r, c)
		}
		for _, p := range factPreds {
			if !truthy(p.eval(row)) {
				return out
			}
		}
		return joinBack(row, out)
	}
	n := len(ids)
	workers := e.workers()
	morsel := e.morselSize()
	if e.vectorized {
		// Fact-local predicates run as batch kernels over the qualifying
		// id list; only survivors are materialized and joined back.
		tf := b.compilePreds(fact, factPreds)
		batch := e.batchSize()
		fetchSel := func(sel []int32, row []storage.Value, out [][]storage.Value) [][]storage.Value {
			for _, r := range sel {
				for i := range row {
					row[i] = storage.Null
				}
				fillRow(tf.readers, r, row)
				out = joinBack(row, out)
			}
			return out
		}
		if workers <= 1 || n <= morsel {
			var out [][]storage.Value
			row := make([]storage.Value, b.total)
			tf.scanIDs(b.qc, batch, ids, func(sel []int32) {
				out = fetchSel(sel, row, out)
			})
			b.qc.opRowsOut(sp, int64(len(out)))
			return out, true
		}
		numMorsels := (n + morsel - 1) / morsel
		outs := make([][][]storage.Value, numMorsels)
		counts := forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
			row := make([]storage.Value, b.total)
			var out [][]storage.Value
			tf.scanIDs(b.qc, batch, ids[lo:hi], func(sel []int32) {
				out = fetchSel(sel, row, out)
			})
			//lint:ignore boundscheck forEachMorsel enumerates m < (n+morsel-1)/morsel = len(outs); integer division is outside the linear interval domain
			outs[m] = out
		})
		tr.addWork(counts)
		rows := concatRows(outs)
		b.qc.opRowsOut(sp, int64(len(rows)))
		return rows, true
	}
	if workers <= 1 || n <= morsel {
		var out [][]storage.Value
		row := make([]storage.Value, b.total)
		for _, r := range ids {
			b.qc.tick()
			out = fetch(int(r), row, out)
		}
		b.qc.opRowsOut(sp, int64(len(out)))
		return out, true
	}
	numMorsels := (n + morsel - 1) / morsel
	outs := make([][][]storage.Value, numMorsels)
	counts := forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
		row := make([]storage.Value, b.total)
		var out [][]storage.Value
		for _, r := range ids[lo:hi] {
			out = fetch(int(r), row, out)
		}
		//lint:ignore boundscheck forEachMorsel enumerates m < (n+morsel-1)/morsel = len(outs); integer division is outside the linear interval domain
		outs[m] = out
	})
	tr.addWork(counts)
	rows := concatRows(outs)
	b.qc.opRowsOut(sp, int64(len(rows)))
	return rows, true
}
