// Package exec implements the query executor: binding of parsed SQL
// against the storage catalog, the two physical join strategies of §2.1
// (hash-join pipeline and bitmap star transformation, chosen by package
// plan), hash aggregation, windowed aggregates, sorting and set
// operations. The engine is safe for concurrent queries, which the
// execution rules require (§5.2: multiple concurrent query streams).
package exec

import (
	"fmt"
	"sync"

	"tpcds/internal/index"
	"tpcds/internal/plan"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Engine executes SQL against a storage database.
type Engine struct {
	db   *storage.DB
	mode plan.Mode

	// parallelism is the configured worker count for morsel-driven
	// execution: 0 means runtime.NumCPU(), 1 forces the serial path.
	// morselRows overrides the scan morsel size (tests and benchmarks
	// shrink it so development-scale tables still split into morsels).
	parallelism int
	morselRows  int

	// vectorized selects the batch execution path (selection-vector
	// kernels over columnar batches); off forces the row-at-a-time
	// engine, kept as the differential oracle. batchRows overrides the
	// batch size (0 = defaultBatchRows).
	vectorized bool
	batchRows  int

	// mu guards the lazily built caches below (hashIdx, bmIdx,
	// statsCache) plus lastDecision/lastTrace. Concurrent benchmark
	// streams race to build the same index; mu makes the first build
	// win and the rest reuse it. Every acquisition is mu.Lock() paired
	// with an immediate defer mu.Unlock() in the same function, so no
	// lock is ever held across a channel operation or query execution —
	// the invariant lockcheck proves.
	mu         sync.Mutex
	hashIdx    map[string]cachedHashIndex   // "table.column" -> index
	bmIdx      map[string]cachedBitmapIndex // "table.column" -> index
	statsCache map[statsKey]colStats

	// planner selects the join planner: plan.CostBased (the default)
	// searches join orders against the cost model and caches plans;
	// plan.Greedy is the original fixed heuristic, kept as the
	// differential baseline. Results are bit-identical either way.
	planner plan.PlannerKind

	// planCache memoizes cost-based join plans keyed by statement shape
	// + planning inputs; it has its own internal lock (never taken while
	// holding mu).
	planCache *plan.Cache

	// useHeuristicsOnly disables statistics-based selectivity (the
	// stats-vs-heuristics ablation).
	useHeuristicsOnly bool

	// em holds resolved metric handles when a registry is installed via
	// SetMetrics; nil disables executor metrics at the cost of one nil
	// check per recording site.
	em *execMetrics

	// profiling enables per-operator runtime accounting (EXPLAIN
	// ANALYZE): every query builds a profile tree mirroring the plan
	// shape, surfaced as Trace.Profile. Off by default; the disabled
	// path allocates nothing.
	profiling bool

	// queryHook, when set, runs at the start of every Query/QueryContext
	// call inside the per-query recover scope — the fault-injection
	// point for robustness tests (a hook panic becomes that query's
	// error, never a process crash).
	queryHook func(query string)

	// Explain hooks: the most recent strategy decision and execution
	// trace, for tests and EXPLAIN-style reporting. Guarded by mu.
	lastDecision plan.Decision
	lastTrace    Trace
}

// cachedHashIndex is one hash-index cache entry together with the
// identity and epoch of the table contents it was built from.
type cachedHashIndex struct {
	ix      *index.HashIndex
	tableID uint64
	epoch   uint64
}

// cachedBitmapIndex is the bitmap-index analogue of cachedHashIndex.
type cachedBitmapIndex struct {
	ix      *index.BitmapIndex
	tableID uint64
	epoch   uint64
}

// New returns an engine over db using automatic strategy selection.
func New(db *storage.DB) *Engine {
	return &Engine{
		db:         db,
		vectorized: true,
		hashIdx:    map[string]cachedHashIndex{},
		bmIdx:      map[string]cachedBitmapIndex{},
		statsCache: map[statsKey]colStats{},
		planner:    plan.CostBased,
		planCache:  plan.NewCache(),
	}
}

// SetMode constrains the physical strategy (used by the ablation
// benchmarks). Not safe to call concurrently with queries.
func (e *Engine) SetMode(m plan.Mode) { e.mode = m }

// Mode returns the current strategy mode.
func (e *Engine) Mode() plan.Mode { return e.mode }

// SetParallelism configures the morsel worker count: 0 (the default)
// resolves to runtime.NumCPU(), 1 forces serial execution, n > 1 uses n
// workers. Results are bit-identical at every setting. Not safe to call
// concurrently with queries.
func (e *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.parallelism = n
}

// Parallelism returns the configured (unresolved) parallelism knob.
func (e *Engine) Parallelism() int { return e.parallelism }

// SetMorselSize overrides the scan morsel row count (test/benchmark
// hook: development-scale tables never reach the production 64K-row
// morsels). n <= 0 restores the default. Not safe to call concurrently
// with queries.
func (e *Engine) SetMorselSize(n int) {
	if n < 0 {
		n = 0
	}
	e.morselRows = n
}

// SetVectorized toggles vectorized batch execution (on by default).
// With it off every operator runs the original row-at-a-time path —
// the differential oracle the batch engine is tested against. Results
// are bit-identical either way. Not safe to call concurrently with
// queries.
func (e *Engine) SetVectorized(on bool) { e.vectorized = on }

// Vectorized reports whether batch execution is enabled.
func (e *Engine) Vectorized() bool { return e.vectorized }

// SetBatchSize overrides the vectorized batch row count (default 1024;
// tests shrink it to stress batch boundaries). n <= 0 restores the
// default. Not safe to call concurrently with queries.
func (e *Engine) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	e.batchRows = n
}

// BatchSize returns the effective vectorized batch row count.
func (e *Engine) BatchSize() int { return e.batchSize() }

// SetPlanner selects the join planner: plan.CostBased (the default)
// estimates costs, searches join orders and caches plans; plan.Greedy
// is the original fixed heuristic, kept as the differential baseline.
// Results are bit-identical under either planner. Not safe to call
// concurrently with queries.
func (e *Engine) SetPlanner(k plan.PlannerKind) { e.planner = k }

// Planner returns the active join planner kind.
func (e *Engine) Planner() plan.PlannerKind { return e.planner }

// PlanCacheStats returns the cost planner's plan-cache hit/miss
// counters (both zero under the greedy planner).
func (e *Engine) PlanCacheStats() (hits, misses int64) { return e.planCache.Stats() }

// SetUseStatistics toggles statistics-based selectivity estimation (on
// by default); with it off the optimizer falls back to fixed textbook
// heuristics — the stats-vs-heuristics ablation. Not safe to call
// concurrently with queries.
func (e *Engine) SetUseStatistics(on bool) { e.useHeuristicsOnly = !on }

// SetProfiling toggles per-operator runtime accounting. With it on,
// every query records actual rows in/out, batches, morsels, wall time
// and peak scratch bytes per operator into Trace.Profile (the EXPLAIN
// ANALYZE surface); estimates from the cost planner ride along so the
// profile reports per-operator q-error. Profiling never changes
// results (the differential tests run with it on to prove it). Not
// safe to call concurrently with queries.
func (e *Engine) SetProfiling(on bool) { e.profiling = on }

// Profiling reports whether per-operator accounting is enabled.
func (e *Engine) Profiling() bool { return e.profiling }

// SetQueryHook installs a hook invoked at the start of every query
// inside the per-query recover scope. It exists for fault injection:
// robustness tests make it panic or block to prove one query's failure
// stays confined to that query. Not safe to call concurrently with
// queries; nil removes the hook.
func (e *Engine) SetQueryHook(h func(query string)) { e.queryHook = h }

// DB exposes the underlying database (used by data maintenance).
func (e *Engine) DB() *storage.DB { return e.db }

// LastDecision returns the optimizer decision of the most recent star-
// eligible query (diagnostic).
func (e *Engine) LastDecision() plan.Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastDecision
}

func (e *Engine) setDecision(d plan.Decision) {
	e.mu.Lock()
	e.lastDecision = d
	e.mu.Unlock()
}

// InvalidateIndexes drops cached indexes for a table; the data
// maintenance workload calls this after modifying a table ("the data
// maintenance run measures the system's ability ... to maintain
// auxiliary data structures", §5.2 — rebuilding on next use is our
// maintenance model).
func (e *Engine) InvalidateIndexes(table string) {
	e.mu.Lock()
	prefix := table + "."
	for k := range e.hashIdx {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(e.hashIdx, k)
		}
	}
	for k := range e.bmIdx {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(e.bmIdx, k)
		}
	}
	for k := range e.statsCache {
		if k.table == table {
			delete(e.statsCache, k)
		}
	}
	e.mu.Unlock()
	// Cached join plans embed estimates derived from the table's old
	// statistics; drop them so the next query replans. (The epoch check
	// already forces index/stats re-gather; this keeps the plan cache
	// from serving plans shaped by stale estimates.)
	e.planCache.InvalidateTable(table)
}

// hashIndex returns (building if needed) a hash index on table.column.
// Freshness is (instance id, epoch), not row count: a same-size reload
// or in-place update must rebuild.
func (e *Engine) hashIndex(t *storage.Table, col int) *index.HashIndex {
	key := t.Def.Name + "." + t.Def.Columns[col].Name
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.hashIdx[key]; ok && c.tableID == t.ID() && c.epoch == t.Epoch() {
		return c.ix
	}
	vals, nulls := t.ScanInt64(col)
	ix := index.BuildHashIndex(vals, nulls)
	e.hashIdx[key] = cachedHashIndex{ix: ix, tableID: t.ID(), epoch: t.Epoch()}
	return ix
}

// bitmapIndex returns (building if needed) a bitmap index on
// table.column, with the same (instance id, epoch) freshness rule as
// hashIndex.
func (e *Engine) bitmapIndex(t *storage.Table, col int) *index.BitmapIndex {
	key := t.Def.Name + "." + t.Def.Columns[col].Name
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.bmIdx[key]; ok && c.tableID == t.ID() && c.epoch == t.Epoch() {
		return c.ix
	}
	vals, nulls := t.ScanInt64(col)
	ix := index.BuildBitmapIndex(vals, nulls)
	e.bmIdx[key] = cachedBitmapIndex{ix: ix, tableID: t.ID(), epoch: t.Epoch()}
	return ix
}

// WarmHashIndex eagerly builds the hash index on table.column (part of
// the load test's "create auxiliary data structures" step, §5.2). It is
// a no-op for unknown tables/columns or non-integer columns.
func (e *Engine) WarmHashIndex(table, column string) {
	t := e.db.Table(table)
	if t == nil {
		return
	}
	ci := t.Def.ColumnIndex(column)
	if ci < 0 {
		return
	}
	switch t.Def.Columns[ci].Type {
	case schema.Identifier, schema.Integer, schema.Date:
		e.hashIndex(t, ci)
	}
}

// WarmBitmapIndex eagerly builds the bitmap index on table.column.
func (e *Engine) WarmBitmapIndex(table, column string) {
	t := e.db.Table(table)
	if t == nil {
		return
	}
	ci := t.Def.ColumnIndex(column)
	if ci < 0 {
		return
	}
	switch t.Def.Columns[ci].Type {
	case schema.Identifier, schema.Integer, schema.Date:
		e.bitmapIndex(t, ci)
	}
}

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    [][]storage.Value
}

// String renders the result as an aligned text table (for the CLI and
// examples).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	//lint:ignore cancelcheck rendering runs after the query finished; no qctx is in scope
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.IsNull() {
				s = "NULL"
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb []byte
	appendRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				sb = append(sb, ' ', '|', ' ')
			}
			sb = append(sb, f...)
			for p := len(f); p < widths[i]; p++ {
				sb = append(sb, ' ')
			}
		}
		sb = append(sb, '\n')
	}
	appendRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		for p := 0; p < widths[i]; p++ {
			sep[i] += "-"
		}
	}
	appendRow(sep)
	for _, row := range cells {
		appendRow(row)
	}
	return string(sb)
}

// queryError wraps binder and executor errors with the failing SQL.
func queryError(q string, err error) error {
	if len(q) > 120 {
		q = q[:117] + "..."
	}
	return fmt.Errorf("exec: %w (query: %s)", err, q)
}
