package exec

import (
	"fmt"
	"regexp"
	"sort"
	"testing"
	"testing/quick"

	"tpcds/internal/plan"
	"tpcds/internal/rng"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Differential tests: the engine's join, filter and aggregation paths
// are checked against brute-force reference implementations on
// randomized inputs. This is the strongest correctness evidence for a
// query engine — any divergence between the optimized operators (hash
// joins, bitmap star transforms, hash aggregation) and the obviously
// correct nested-loop reference is a bug.

// randDB builds a randomized two-table star (fact f joined to dimension
// d) from a seed.
func randDB(seed uint64, factRows, dimRows int) *storage.DB {
	s := rng.NewStream(seed)
	db := storage.NewDB()
	dim := &schema.Table{
		Name: "d", Kind: schema.Dimension,
		Columns: []schema.Column{
			{Name: "d_k", Type: schema.Identifier},
			{Name: "d_g", Type: schema.Integer},
			{Name: "d_s", Type: schema.Char, Len: 4},
		},
		PrimaryKey: []string{"d_k"},
	}
	dt := db.Create(dim)
	for i := 1; i <= dimRows; i++ {
		dt.Append([]storage.Value{
			storage.Int(int64(i)),
			storage.Int(s.Int63n(5)),
			storage.Str(fmt.Sprintf("s%d", s.Intn(3))),
		})
	}
	fact := &schema.Table{
		Name: "f", Kind: schema.Fact,
		Columns: []schema.Column{
			{Name: "f_k", Type: schema.Identifier, Nullable: true},
			{Name: "f_v", Type: schema.Integer, Nullable: true},
			{Name: "f_m", Type: schema.Decimal},
			{Name: "f_o", Type: schema.Identifier},
		},
		PrimaryKey: []string{"f_o"},
		ForeignKeys: []schema.ForeignKey{
			{Column: "f_k", Ref: "d"},
		},
	}
	ft := db.Create(fact)
	for i := 0; i < factRows; i++ {
		k := storage.Value(storage.Int(1 + s.Int63n(int64(dimRows))))
		if s.Intn(10) == 0 {
			k = storage.Null
		}
		v := storage.Value(storage.Int(s.Int63n(100)))
		if s.Intn(12) == 0 {
			v = storage.Null
		}
		ft.Append([]storage.Value{k, v, storage.Float(float64(s.Intn(1000)) / 10), storage.Int(int64(i))})
	}
	return db
}

// refJoinFilterAgg computes, by brute force over the raw tables, the
// grouped sums of f_m for fact rows joining d with d_g = g and f_v in
// [lo, hi], grouped by d_s.
func refJoinFilterAgg(db *storage.DB, g, lo, hi int64) map[string]float64 {
	f := db.Table("f")
	d := db.Table("d")
	out := map[string]float64{}
	for i := 0; i < f.NumRows(); i++ {
		fk := f.Get(i, 0)
		fv := f.Get(i, 1)
		if fk.IsNull() || fv.IsNull() || fv.AsInt() < lo || fv.AsInt() > hi {
			continue
		}
		for j := 0; j < d.NumRows(); j++ {
			if d.Get(j, 0).AsInt() != fk.AsInt() {
				continue
			}
			if d.Get(j, 1).AsInt() == g {
				out[d.Get(j, 2).S] += f.Get(i, 2).AsFloat()
			}
			break // d_k is unique
		}
	}
	// Round to cents to avoid float ordering issues.
	for k, v := range out {
		out[k] = float64(int64(v*100+0.5)) / 100
	}
	return out
}

func engineJoinFilterAgg(t *testing.T, db *storage.DB, mode plan.Mode, g, lo, hi int64) map[string]float64 {
	t.Helper()
	e := New(db)
	e.SetMode(mode)
	res, err := e.Query(fmt.Sprintf(`
		SELECT d_s, SUM(f_m) m FROM f, d
		WHERE f_k = d_k AND d_g = %d AND f_v BETWEEN %d AND %d
		GROUP BY d_s`, g, lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, row := range res.Rows {
		out[row[0].S] = float64(int64(row[1].AsFloat()*100+0.5)) / 100
	}
	return out
}

// TestQuickJoinAggDifferential compares hash-join and star-transform
// execution against the brute-force reference across random databases
// and predicates.
func TestQuickJoinAggDifferential(t *testing.T) {
	f := func(seed uint64, gRaw, loRaw, hiRaw uint8) bool {
		g := int64(gRaw % 5)
		lo := int64(loRaw % 100)
		hi := int64(hiRaw % 100)
		if lo > hi {
			lo, hi = hi, lo
		}
		db := randDB(seed, 200, 20)
		want := refJoinFilterAgg(db, g, lo, hi)
		for _, mode := range []plan.Mode{plan.ForceHashJoin, plan.ForceStar} {
			got := engineJoinFilterAgg(t, db, mode, g, lo, hi)
			if len(got) != len(want) {
				t.Logf("mode %v: groups %d vs %d (seed=%d g=%d lo=%d hi=%d)",
					mode, len(got), len(want), seed, g, lo, hi)
				return false
			}
			for k, v := range want {
				if got[k] != v {
					t.Logf("mode %v: group %q = %v, want %v", mode, k, got[k], v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFilterDifferential compares WHERE evaluation against a
// reference row filter across predicate shapes.
func TestQuickFilterDifferential(t *testing.T) {
	f := func(seed uint64, loRaw, hiRaw uint8, wantNull bool) bool {
		lo := int64(loRaw % 100)
		hi := int64(hiRaw % 100)
		if lo > hi {
			lo, hi = hi, lo
		}
		db := randDB(seed, 150, 10)
		fTab := db.Table("f")
		pred := fmt.Sprintf("f_v BETWEEN %d AND %d", lo, hi)
		if wantNull {
			pred = "f_v IS NULL"
		}
		e := New(db)
		res, err := e.Query("SELECT COUNT(*) c FROM f WHERE " + pred)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < fTab.NumRows(); i++ {
			v := fTab.Get(i, 1)
			if wantNull {
				if v.IsNull() {
					want++
				}
			} else if !v.IsNull() && v.AsInt() >= lo && v.AsInt() <= hi {
				want++
			}
		}
		return res.Rows[0][0].AsInt() == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeftJoinDifferential checks LEFT JOIN row accounting: every
// fact row appears at least once; matched rows carry dimension values.
func TestQuickLeftJoinDifferential(t *testing.T) {
	f := func(seed uint64) bool {
		db := randDB(seed, 100, 8)
		e := New(db)
		res, err := e.Query(`SELECT f_o, d_k FROM f LEFT OUTER JOIN d ON f_k = d_k ORDER BY f_o`)
		if err != nil {
			t.Fatal(err)
		}
		fTab := db.Table("f")
		// d_k unique -> exactly one output row per fact row.
		if len(res.Rows) != fTab.NumRows() {
			t.Logf("left join rows %d, want %d", len(res.Rows), fTab.NumRows())
			return false
		}
		for i, row := range res.Rows {
			fk := fTab.Get(i, 0)
			if fk.IsNull() != row[1].IsNull() {
				t.Logf("row %d: null mismatch", i)
				return false
			}
			if !fk.IsNull() && row[1].AsInt() != fk.AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLikeDifferential checks the LIKE matcher against the regexp
// package on random strings and patterns.
func TestQuickLikeDifferential(t *testing.T) {
	alphabet := []byte("ab%_c")
	f := func(sRaw, pRaw []byte) bool {
		sStr := make([]byte, 0, len(sRaw)%12)
		for i := 0; i < len(sRaw)%12; i++ {
			sStr = append(sStr, "abc"[sRaw[i]%3])
		}
		pat := make([]byte, 0, len(pRaw)%8)
		for i := 0; i < len(pRaw)%8; i++ {
			pat = append(pat, alphabet[pRaw[i]%byte(len(alphabet))])
		}
		// Reference: translate LIKE to an anchored regexp.
		reStr := "^"
		for _, c := range pat {
			switch c {
			case '%':
				reStr += ".*"
			case '_':
				reStr += "."
			default:
				reStr += regexp.QuoteMeta(string(c))
			}
		}
		reStr += "$"
		re := regexp.MustCompile(reStr)
		return likeMatch(string(sStr), string(pat)) == re.MatchString(string(sStr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderByDifferential checks sorting against sort.Slice on the
// same data.
func TestQuickOrderByDifferential(t *testing.T) {
	f := func(seed uint64, desc bool) bool {
		db := randDB(seed, 80, 8)
		e := New(db)
		dir := "ASC"
		if desc {
			dir = "DESC"
		}
		res, err := e.Query("SELECT f_v FROM f WHERE f_v IS NOT NULL ORDER BY f_v " + dir)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, len(res.Rows))
		for i, row := range res.Rows {
			vals[i] = row[0].AsInt()
		}
		sorted := sort.SliceIsSorted(vals, func(a, b int) bool {
			if desc {
				return vals[a] > vals[b]
			}
			return vals[a] < vals[b]
		})
		// SliceIsSorted with strict less fails on equal neighbours; use
		// a manual check allowing ties.
		sorted = true
		for i := 1; i < len(vals); i++ {
			if desc && vals[i] > vals[i-1] {
				sorted = false
			}
			if !desc && vals[i] < vals[i-1] {
				sorted = false
			}
		}
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAggregatesDifferential checks SUM/COUNT/MIN/MAX/AVG against
// direct computation.
func TestQuickAggregatesDifferential(t *testing.T) {
	f := func(seed uint64) bool {
		db := randDB(seed, 120, 8)
		e := New(db)
		res, err := e.Query(`SELECT COUNT(*) c, COUNT(f_v) cv, SUM(f_v) s,
			MIN(f_v) mn, MAX(f_v) mx, AVG(f_v) av FROM f`)
		if err != nil {
			t.Fatal(err)
		}
		fTab := db.Table("f")
		var count, nonNull, sum, mn, mx int64
		mn, mx = 1<<62, -(1 << 62)
		for i := 0; i < fTab.NumRows(); i++ {
			count++
			v := fTab.Get(i, 1)
			if v.IsNull() {
				continue
			}
			nonNull++
			sum += v.AsInt()
			if v.AsInt() < mn {
				mn = v.AsInt()
			}
			if v.AsInt() > mx {
				mx = v.AsInt()
			}
		}
		row := res.Rows[0]
		if row[0].AsInt() != count || row[1].AsInt() != nonNull || row[2].AsInt() != sum {
			return false
		}
		if nonNull > 0 {
			if row[3].AsInt() != mn || row[4].AsInt() != mx {
				return false
			}
			wantAvg := float64(sum) / float64(nonNull)
			if diff := row[5].AsFloat() - wantAvg; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDistinctDifferential checks SELECT DISTINCT against a map.
func TestQuickDistinctDifferential(t *testing.T) {
	f := func(seed uint64) bool {
		db := randDB(seed, 100, 8)
		e := New(db)
		res, err := e.Query(`SELECT DISTINCT f_v FROM f`)
		if err != nil {
			t.Fatal(err)
		}
		fTab := db.Table("f")
		want := map[string]bool{}
		for i := 0; i < fTab.NumRows(); i++ {
			want[fTab.Get(i, 1).GroupKey()] = true
		}
		if len(res.Rows) != len(want) {
			return false
		}
		seen := map[string]bool{}
		for _, row := range res.Rows {
			k := row[0].GroupKey()
			if seen[k] || !want[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
