package exec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tpcds/internal/obs"
	"tpcds/internal/sql"
)

func mustParse(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// TestQueryContextExpiredDeadline: a query started under an already
// expired deadline fails with context.DeadlineExceeded, observable
// through errors.Is despite the query-context wrapping.
func TestQueryContextExpiredDeadline(t *testing.T) {
	e := parallelEngine(New(miniDB()))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := e.QueryContext(ctx, `SELECT COUNT(*) FROM sales`)
	if res != nil {
		t.Fatal("cancelled query returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryContextDeadlineMidQuery: the deadline fires while the query
// is in flight (the hook holds the query until the context is done, so
// the expiry is deterministic, not a timing race).
func TestQueryContextDeadlineMidQuery(t *testing.T) {
	e := parallelEngine(New(miniDB()))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	e.SetQueryHook(func(string) { <-ctx.Done() })
	_, err := e.QueryContext(ctx, `SELECT COUNT(*) FROM sales`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The engine stays usable after a cancelled query.
	e.SetQueryHook(nil)
	if _, err := e.Query(`SELECT COUNT(*) FROM sales`); err != nil {
		t.Fatalf("engine broken after cancellation: %v", err)
	}
}

// TestNoGoroutineLeakAfterTimeout runs parallel queries under tiny
// deadlines — cancelling mid-scan, mid-join, mid-aggregate — and then
// asserts the goroutine count settles back to the baseline: morsel
// workers must drain on cancellation, never park forever.
func TestNoGoroutineLeakAfterTimeout(t *testing.T) {
	db := randDB(11, 5000, 24)
	e := parallelEngine(New(db))
	// Instrumentation on: cancellation unwinds through live operator
	// and morsel spans, which must not change the drain behaviour.
	e.SetMetrics(obs.NewRegistry())
	tracer := obs.NewTracer()
	troot := tracer.Root("leaktest", "test")
	defer troot.End()
	q := `SELECT d_s, COUNT(*) c, SUM(f_m) m, AVG(f_m) a FROM f, d WHERE f_k = d_k GROUP BY d_s ORDER BY m DESC`
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithTimeout(obs.ContextWithSpan(context.Background(), troot),
			time.Duration(i%5)*100*time.Microsecond)
		_, err := e.QueryContext(ctx, q)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInjectedPanicBecomesError: a panic raised inside the query scope
// (via the fault-injection hook) surfaces as an error naming the query,
// and the engine keeps serving.
func TestInjectedPanicBecomesError(t *testing.T) {
	e := parallelEngine(New(miniDB()))
	e.SetQueryHook(func(q string) {
		if strings.Contains(q, "returns") {
			panic("injected storage fault")
		}
	})
	defer e.SetQueryHook(nil)
	res, err := e.Query(`SELECT COUNT(*) FROM returns`)
	if res != nil || err == nil {
		t.Fatalf("injected panic: res=%v err=%v", res, err)
	}
	for _, want := range []string{"injected storage fault", "internal error", "returns"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if r, err := e.Query(`SELECT COUNT(*) FROM item`); err != nil || len(r.Rows) != 1 {
		t.Fatalf("engine broken after injected panic: %v", err)
	}
}

// TestInjectedPanicSparesSiblingStreams: concurrent streams share the
// engine; the stream hitting the fault gets an error while every other
// stream's queries keep succeeding.
func TestInjectedPanicSparesSiblingStreams(t *testing.T) {
	e := parallelEngine(New(miniDB()))
	e.SetQueryHook(func(q string) {
		if strings.Contains(q, "returns") {
			panic("injected fault")
		}
	})
	defer e.SetQueryHook(nil)
	queries := []string{
		`SELECT COUNT(*) FROM item`,
		`SELECT COUNT(*) FROM dates`,
		`SELECT COUNT(*) FROM sales`,
		`SELECT COUNT(*) FROM returns`, // the faulting stream
	}
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := e.Query(q); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		faulting := strings.Contains(queries[i], "returns")
		if faulting && err == nil {
			t.Errorf("faulting stream reported no error")
		}
		if !faulting && err != nil {
			t.Errorf("sibling stream %q failed: %v", queries[i], err)
		}
	}
}

// TestRunContextCancelled covers the pre-parsed statement entry point.
func TestRunContextCancelled(t *testing.T) {
	e := New(miniDB())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stmt := mustParse(t, `SELECT COUNT(*) FROM sales`)
	if _, err := e.RunContext(ctx, stmt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
