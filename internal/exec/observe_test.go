package exec

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"tpcds/internal/datagen"
	"tpcds/internal/obs"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

// TestDisabledObservabilityAllocatesNothing pins the "disabled means
// free" contract on the query hot path: with no tracer in the context
// and no registry on the engine, the span and metric helpers the
// executor calls per operator and per morsel must not allocate.
func TestDisabledObservabilityAllocatesNothing(t *testing.T) {
	e := New(miniDB())
	qc := e.newQctx(context.Background())
	if qc.qspan != nil || qc.em != nil {
		t.Fatal("plain context should produce a disabled qctx")
	}
	if qc.prof != nil {
		t.Fatal("engine without SetProfiling(true) should not build a profile tree")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := qc.startOp("scan", "store_sales")
		qc.opRowsIn(sp, 4096)
		qc.opEst(4096)
		qc.countBatch()
		qc.growScratch(1 << 20)
		qc.shrinkScratch(1 << 20)
		qc.opMorsels(4)
		qc.opRowsOut(sp, 4096)
		qc.endOp(sp)
		qc.countScan(4096)
		qc.countBuild(512)
		qc.countMorsel()
		op := qc.opSpan()
		m := op.ChildTID("morsel", 1)
		m.SetAttrInt("rows", 4096)
		m.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocates %v per run, want 0", allocs)
	}
	if p := qc.profile(); p != nil {
		t.Fatal("disabled profile path produced a snapshot")
	}
}

// TestQuerySpansCoverOperators runs one instrumented join+aggregate
// query and checks the executor emitted the expected operator span
// shapes under the query span, morsel spans included, and that the
// engine counters saw the work.
func TestQuerySpansCoverOperators(t *testing.T) {
	db := randDB(3, 2000, 16)
	e := parallelEngine(New(db))
	reg := obs.NewRegistry()
	e.SetMetrics(reg)
	tracer := obs.NewTracer()
	root := tracer.Root("q", "driver")
	ctx := obs.ContextWithSpan(context.Background(), root)
	res, err := e.QueryContext(ctx,
		`SELECT d_s, COUNT(*) c, SUM(f_m) m FROM f, d WHERE f_k = d_k GROUP BY d_s ORDER BY m DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("query returned no rows; test database too small")
	}
	root.End()

	names := map[string]int{}
	byID := map[uint64]obs.SpanRecord{}
	snap := tracer.Snapshot()
	for _, s := range snap {
		byID[s.ID] = s
		key := s.Name
		if i := strings.IndexByte(key, ' '); i >= 0 {
			key = key[:i]
		}
		names[key]++
	}
	for _, want := range []string{"bind", "join", "scan", "aggregate", "morsel"} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded (got %v)", want, names)
		}
	}
	// Structural invariants: every non-root span has a recorded parent
	// and nests inside its interval.
	for _, s := range snap {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q has unrecorded parent %d", s.Name, s.Parent)
		}
		if s.StartNs < p.StartNs || s.StartNs+s.DurNs > p.StartNs+p.DurNs {
			t.Errorf("span %q escapes parent %q", s.Name, p.Name)
		}
	}
	if got := reg.Counter("exec_rows_scanned").Value(); got < 2000 {
		t.Errorf("exec_rows_scanned = %d, want >= the fact cardinality", got)
	}
	if got := reg.Counter("exec_morsels").Value(); got == 0 {
		t.Errorf("exec_morsels = 0, want > 0 with 32-row morsels over 2000 rows")
	}
	if got := reg.Counter("exec_hash_build_rows").Value(); got == 0 {
		t.Errorf("exec_hash_build_rows = 0, want > 0 for a hash join")
	}
}

// TestProfileMirrorsSpans pins the structural contract behind EXPLAIN
// ANALYZE: startOp pushes a span and a profile node from the same call
// with the same name, so for any query the profile tree must have
// exactly the operator spans' names with the same parent edges (morsel
// worker spans excluded — they are trace lanes, not plan operators).
func TestProfileMirrorsSpans(t *testing.T) {
	db := randDB(5, 2000, 16)
	e := parallelEngine(New(db))
	e.SetProfiling(true)
	for _, q := range []string{
		`SELECT d_s, COUNT(*) c, SUM(f_m) m FROM f, d WHERE f_k = d_k GROUP BY d_s ORDER BY m DESC`,
		`SELECT DISTINCT f_v FROM f`,
		`SELECT f_o, d_g FROM f LEFT OUTER JOIN d ON f_k = d_k`,
	} {
		tracer := obs.NewTracer()
		root := tracer.Root("q", "driver")
		ctx := obs.ContextWithSpan(context.Background(), root)
		res, tr, err := e.QueryTracedContext(ctx, q)
		root.End()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: no rows", q)
		}
		if tr.Profile == nil {
			t.Fatalf("%s: profiling on but trace has no profile", q)
		}

		// Edge multiset from the spans: operator name -> parent operator
		// name ("query" when the parent is the query span itself).
		snap := tracer.Snapshot()
		byID := map[uint64]obs.SpanRecord{}
		for _, s := range snap {
			byID[s.ID] = s
		}
		spanEdges := map[string]int{}
		for _, s := range snap {
			if s.Cat != "exec" || strings.HasPrefix(s.Name, "morsel") {
				continue
			}
			parent := "query"
			if p, ok := byID[s.Parent]; ok && p.Cat == "exec" {
				parent = p.Name
			}
			spanEdges[s.Name+" <- "+parent]++
		}
		profEdges := map[string]int{}
		var walk func(p *obs.OpProfile, parent string)
		walk = func(p *obs.OpProfile, parent string) {
			profEdges[p.Name+" <- "+parent]++
			for _, c := range p.Children {
				walk(c, p.Name)
			}
		}
		for _, c := range tr.Profile.Children {
			walk(c, "query")
		}
		if !reflect.DeepEqual(spanEdges, profEdges) {
			t.Errorf("%s:\nspan edges    %v\nprofile edges %v", q, spanEdges, profEdges)
		}
		// Accounting sanity on the snapshot: the root saw wall time and
		// some node carries the scanned rows.
		if tr.Profile.WallNs <= 0 {
			t.Errorf("%s: profile root wall = %d", q, tr.Profile.WallNs)
		}
		var sawRows bool
		tr.Profile.Walk(func(n *obs.OpProfile) { sawRows = sawRows || n.RowsOut > 0 })
		if !sawRows {
			t.Errorf("%s: no profile node recorded rows_out", q)
		}
	}
}

// TestProfiledEqualsUnprofiled is the EXPLAIN ANALYZE bit-identity
// sweep: all 99 templates, serial-unprofiled (the oracle) vs
// serial-profiled vs parallel-profiled over the same database, must
// produce identical results — per-operator accounting never alters
// what the query returns. Every profiled trace must carry a profile
// with estimate feedback on at least one join node.
func TestProfiledEqualsUnprofiled(t *testing.T) {
	if testing.Short() {
		t.Skip("all-99 profiled differential skipped in -short")
	}
	db := datagen.New(0.0005, 7).GenerateAll()
	oracle := New(db)
	oracle.SetParallelism(1)
	serialProf := New(db)
	serialProf.SetParallelism(1)
	serialProf.SetProfiling(true)
	parProf := parallelEngine(New(db))
	parProf.SetProfiling(true)
	ctx := context.Background()
	sawEst := false
	for _, tpl := range queries.All() {
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			t.Fatalf("query %d: %v", tpl.ID, err)
		}
		want, err := oracle.Query(text)
		if err != nil {
			t.Fatalf("query %d oracle: %v", tpl.ID, err)
		}
		for name, e := range map[string]*Engine{"serial": serialProf, "parallel": parProf} {
			got, tr, err := e.QueryTracedContext(ctx, text)
			if err != nil {
				t.Fatalf("query %d %s profiled: %v", tpl.ID, name, err)
			}
			if !reflect.DeepEqual(want.Columns, got.Columns) || len(want.Rows) != len(got.Rows) {
				t.Fatalf("query %d %s: shape differs under profiling", tpl.ID, name)
			}
			for ri := range want.Rows {
				if !reflect.DeepEqual(want.Rows[ri], got.Rows[ri]) {
					t.Fatalf("query %d %s row %d: %v vs %v under profiling",
						tpl.ID, name, ri, want.Rows[ri], got.Rows[ri])
				}
			}
			if tr.Profile == nil {
				t.Fatalf("query %d %s: no profile in trace", tpl.ID, name)
			}
			tr.Profile.Walk(func(n *obs.OpProfile) { sawEst = sawEst || n.HasEst })
		}
	}
	if !sawEst {
		t.Error("no profile node in the whole sweep carried a cardinality estimate")
	}
}
