package exec

import (
	"context"
	"strings"
	"testing"

	"tpcds/internal/obs"
)

// TestDisabledObservabilityAllocatesNothing pins the "disabled means
// free" contract on the query hot path: with no tracer in the context
// and no registry on the engine, the span and metric helpers the
// executor calls per operator and per morsel must not allocate.
func TestDisabledObservabilityAllocatesNothing(t *testing.T) {
	e := New(miniDB())
	qc := e.newQctx(context.Background())
	if qc.qspan != nil || qc.em != nil {
		t.Fatal("plain context should produce a disabled qctx")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := qc.startOp("scan", "store_sales")
		qc.endOp(sp)
		qc.countScan(4096)
		qc.countBuild(512)
		qc.countMorsel()
		op := qc.opSpan()
		m := op.ChildTID("morsel", 1)
		m.SetAttrInt("rows", 4096)
		m.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocates %v per run, want 0", allocs)
	}
}

// TestQuerySpansCoverOperators runs one instrumented join+aggregate
// query and checks the executor emitted the expected operator span
// shapes under the query span, morsel spans included, and that the
// engine counters saw the work.
func TestQuerySpansCoverOperators(t *testing.T) {
	db := randDB(3, 2000, 16)
	e := parallelEngine(New(db))
	reg := obs.NewRegistry()
	e.SetMetrics(reg)
	tracer := obs.NewTracer()
	root := tracer.Root("q", "driver")
	ctx := obs.ContextWithSpan(context.Background(), root)
	res, err := e.QueryContext(ctx,
		`SELECT d_s, COUNT(*) c, SUM(f_m) m FROM f, d WHERE f_k = d_k GROUP BY d_s ORDER BY m DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("query returned no rows; test database too small")
	}
	root.End()

	names := map[string]int{}
	byID := map[uint64]obs.SpanRecord{}
	snap := tracer.Snapshot()
	for _, s := range snap {
		byID[s.ID] = s
		key := s.Name
		if i := strings.IndexByte(key, ' '); i >= 0 {
			key = key[:i]
		}
		names[key]++
	}
	for _, want := range []string{"bind", "join", "scan", "aggregate", "morsel"} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded (got %v)", want, names)
		}
	}
	// Structural invariants: every non-root span has a recorded parent
	// and nests inside its interval.
	for _, s := range snap {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q has unrecorded parent %d", s.Name, s.Parent)
		}
		if s.StartNs < p.StartNs || s.StartNs+s.DurNs > p.StartNs+p.DurNs {
			t.Errorf("span %q escapes parent %q", s.Name, p.Name)
		}
	}
	if got := reg.Counter("exec_rows_scanned").Value(); got < 2000 {
		t.Errorf("exec_rows_scanned = %d, want >= the fact cardinality", got)
	}
	if got := reg.Counter("exec_morsels").Value(); got == 0 {
		t.Errorf("exec_morsels = 0, want > 0 with 32-row morsels over 2000 rows")
	}
	if got := reg.Counter("exec_hash_build_rows").Value(); got == 0 {
		t.Errorf("exec_hash_build_rows = 0, want > 0 for a hash join")
	}
}
