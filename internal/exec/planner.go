package exec

import (
	"fmt"
	"sort"
	"strings"

	"tpcds/internal/plan"
	"tpcds/internal/schema"
	"tpcds/internal/sql"
	"tpcds/internal/storage"
)

// The cost-based planner's executor-side half: it derives the greedy
// baseline order (also the execution path of the greedy planner),
// classifies which tables the join-order search may move, builds the
// statistics-backed join graph, and memoizes the resulting plan.
//
// Order-safety invariant. The join pipeline emits rows probe-major at
// every step, so the final base-row order is a lexicographic sort by
// (driver row, then the rows of each row-expanding join in execution
// sequence). Three constraints keep that order independent of the
// chosen plan: the driver never changes, tables that can match more
// than one build row ("pinned") keep the baseline's relative order,
// and every placement must be edge-connected (a cartesian step would
// interleave an unrelated table's row ids into the sort). Tables whose
// join keys are provably unique ("free") match at most one row — they
// filter, never branch — and may be placed anywhere connected. The
// cost-vs-greedy differential test over all 99 templates enforces the
// invariant end to end.

// greedyJoinOrder computes the baseline join order without executing
// it: the same decisions the greedy pipeline has always made (largest
// estimated fact drives, then the smallest-estimate connected table
// joins next), factored out so both planners share one definition.
// Ties break toward the lower table index, making the order fully
// deterministic. connected reports whether every step had a join edge
// into the already-joined set — false means the baseline itself
// contains a cartesian placement and reordering is unsafe.
//
// Decorrelation-synthesized CTEs (plan.DecorrPrefix) are kept out of
// driver selection: the rewrite must never change the driver, or the
// output row order would differ from the undecorrelated plan.
func (e *Engine) greedyJoinOrder(b *binder, filters []filterInfo, edges []joinEdge, isLeft map[int]bool) (driver int, order []int, connected bool) {
	pick := func(allowSynth bool) int {
		d := -1
		var dEst float64
		dFact := false
		for ti := range b.tables {
			if isLeft[ti] {
				continue
			}
			if !allowSynth && strings.HasPrefix(b.tables[ti].binding, plan.DecorrPrefix) {
				continue
			}
			isFact := b.tables[ti].tab.Def.Kind == schema.Fact
			est := e.estimateFiltered(b, ti, filters)
			if d < 0 || (isFact && !dFact) || (isFact == dFact && est > dEst) {
				d, dEst, dFact = ti, est, isFact
			}
		}
		return d
	}
	driver = pick(false)
	if driver < 0 {
		driver = pick(true)
	}
	if driver < 0 {
		return -1, nil, false
	}

	order = []int{driver}
	joined := map[int]bool{driver: true}
	remaining := 0
	isRemaining := make([]bool, len(b.tables))
	for ti := range b.tables {
		if ti != driver && !isLeft[ti] {
			isRemaining[ti] = true
			remaining++
		}
	}
	connected = true
	for remaining > 0 {
		next := -1
		var nextEst float64
		nextConnected := false
		for ti := range b.tables {
			if !isRemaining[ti] {
				continue
			}
			conn := false
			for _, ed := range edges {
				if (joined[ed.aTbl] && ed.bTbl == ti) || (joined[ed.bTbl] && ed.aTbl == ti) {
					conn = true
					break
				}
			}
			est := e.estimateFiltered(b, ti, filters)
			if next < 0 || (conn && !nextConnected) ||
				(conn == nextConnected && est < nextEst) {
				next, nextEst, nextConnected = ti, est, conn
			}
		}
		if !nextConnected {
			connected = false
		}
		isRemaining[next] = false
		remaining--
		joined[next] = true
		order = append(order, next)
	}
	return driver, order, connected
}

// classifyFree marks the tables the join-order search may move: every
// join edge incident to the table must have a provably unique key on
// the table's side (statistics: distinct == non-null), so joining it
// can only filter the intermediate result, never expand it. With
// statistics disabled nothing is provable and everything stays pinned.
func (e *Engine) classifyFree(b *binder, edges []joinEdge, isLeft map[int]bool) []bool {
	free := make([]bool, len(b.tables))
	if e.useHeuristicsOnly {
		return free
	}
	for ti := range b.tables {
		if isLeft[ti] {
			continue
		}
		inst := &b.tables[ti]
		incident, unique := false, true
		for _, ed := range edges {
			var c *colExpr
			switch {
			case ed.aTbl == ti && !isLeft[ed.bTbl]:
				c = ed.aCol
			case ed.bTbl == ti && !isLeft[ed.aTbl]:
				c = ed.bCol
			default:
				continue
			}
			incident = true
			if !e.uniqueKey(b.qc, inst.tab, c.off-inst.offset) {
				unique = false
				break
			}
		}
		free[ti] = incident && unique
	}
	return free
}

// buildJoinGraph assembles the plan package's statistics view of the
// query: per-table filtered-cardinality estimates and join-column NDVs.
// Table indexes equal binder indexes; edges touching left-joined tables
// are excluded (left joins run after the inner pipeline, in declaration
// order, and are not searchable).
func (e *Engine) buildJoinGraph(b *binder, filters []filterInfo, edges []joinEdge, isLeft map[int]bool) plan.Graph {
	g := plan.Graph{Tables: make([]plan.TableCard, len(b.tables))}
	for ti := range b.tables {
		g.Tables[ti] = plan.TableCard{
			Name: b.tables[ti].binding,
			Rows: b.tables[ti].tab.NumRows(),
			Est:  e.estimateFiltered(b, ti, filters),
		}
	}
	for _, ed := range edges {
		if isLeft[ed.aTbl] || isLeft[ed.bTbl] {
			continue
		}
		g.Edges = append(g.Edges, plan.Edge{
			A: ed.aTbl, B: ed.bTbl,
			NDVA: e.edgeNDV(b, ed.aTbl, ed.aCol),
			NDVB: e.edgeNDV(b, ed.bTbl, ed.bCol),
		})
	}
	return g
}

// edgeNDV returns the distinct-value count of a join column, or 0 when
// unknown (the cost model then assumes a key join).
func (e *Engine) edgeNDV(b *binder, ti int, c *colExpr) float64 {
	if e.useHeuristicsOnly {
		return 0
	}
	inst := &b.tables[ti]
	st := e.columnStats(b.qc, inst.tab, c.off-inst.offset)
	if st.valid {
		return float64(st.distinct)
	}
	return 0
}

// planKey builds the plan-cache key. Beyond the statement shape
// (literals collapsed, IN-list lengths kept) it folds in everything
// the cached decision is conditioned on: the engine mode, the greedy
// baseline order, and the free-set classification. That makes entries
// self-validating — a literal change that shifts estimates enough to
// change the baseline produces a different key and a fresh plan, so a
// cached order is always order-safe for the execution that looks it
// up.
func (e *Engine) planKey(stmt *sql.SelectStmt, gOrder []int, free []bool) string {
	var mask uint64
	for ti, f := range free {
		if f {
			mask |= 1 << uint(ti)
		}
	}
	return fmt.Sprintf("%s|m%d|g%v|f%x", plan.Fingerprint(stmt, false), e.mode, gOrder, mask)
}

// planDeps lists the distinct underlying table names of a query for
// cache invalidation. CTE-backed entries are included harmlessly: the
// maintenance layer only ever invalidates schema table names.
func planDeps(b *binder) []string {
	seen := map[string]bool{}
	var deps []string
	for ti := range b.tables {
		n := b.tables[ti].tab.Def.Name
		if !seen[n] {
			seen[n] = true
			deps = append(deps, n)
		}
	}
	return deps
}

// scopeSig renders the identity of every CTE table in scope, sorted by
// name. Two statement fingerprints only denote the same computation
// when the tables their names resolve to are the same instances; the
// signature makes the CSE and plan-stat keys instance-precise.
func scopeSig(ctes map[string]*storage.Table) string {
	var names []string
	for k := range ctes {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "|%s=%d", n, ctes[n].ID())
	}
	return sb.String()
}

// subqueryResult evaluates an expression subquery (IN or scalar),
// memoizing the result per query under the cost planner: repeated
// identical subqueries — TPC-DS templates love `(select avg(...) from
// ...)` guards repeated across union blocks — run once.
func (b *binder) subqueryResult(sub *sql.SelectStmt) (*Result, []schema.Type, error) {
	sp := b.qc.startOp("subquery", "")
	defer b.qc.endOp(sp)
	key := ""
	if b.eng.planner == plan.CostBased {
		key = "sub|" + plan.Fingerprint(sub, true) + scopeSig(b.ctes)
		if ent, ok := b.qc.cse[key]; ok {
			b.qc.countCSEHit()
			// Memo hit stays a leaf node — the profile's view of CSE reuse.
			b.qc.opRowsOut(sp, int64(len(ent.res.Rows)))
			return ent.res, ent.types, nil
		}
	}
	res, types, _, err := b.eng.runStatement(b.qc, sub, b.ctes)
	if err != nil {
		return nil, nil, err
	}
	b.qc.opRowsOut(sp, int64(len(res.Rows)))
	if key != "" {
		if b.qc.cse == nil {
			b.qc.cse = map[string]cseEntry{}
		}
		b.qc.cse[key] = cseEntry{res: res, types: types}
	}
	return res, types, nil
}

// costPlan produces the cost-based join plan for one select block,
// consulting the plan cache first. fromCache reports a cache hit.
func (e *Engine) costPlan(b *binder, stmt *sql.SelectStmt, filters []filterInfo, edges []joinEdge, isLeft map[int]bool, driver int, gOrder []int, connected bool) (plan.Cached, bool) {
	sp := b.qc.startOp("plan", "")
	defer b.qc.endOp(sp)
	free := e.classifyFree(b, edges, isLeft)
	key := e.planKey(stmt, gOrder, free)
	if c, ok := e.planCache.Get(key); ok {
		b.qc.countPlanCacheHit()
		return c, true
	}
	b.qc.countPlanCacheMiss()
	var pinned, freeList []int
	for _, ti := range gOrder[1:] {
		if free[ti] {
			freeList = append(freeList, ti)
		} else {
			pinned = append(pinned, ti)
		}
	}
	g := e.buildJoinGraph(b, filters, edges, isLeft)
	jp := plan.Search(plan.SearchInput{
		Graph:           g,
		Driver:          driver,
		Pinned:          pinned,
		Free:            freeList,
		GreedyOrder:     gOrder,
		GreedyConnected: connected,
	})
	c := plan.Cached{Order: jp.Order, Cost: jp.Cost, EstRows: jp.EstRows,
		Source: jp.Source, StepEst: g.StepCards(jp.Order)}
	e.planCache.Put(key, c, planDeps(b))
	return c, false
}
