package exec

import (
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"tpcds/internal/datagen"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

// Batch-vs-row differential tests: the vectorized batch engine must be
// bit-identical to the row-at-a-time engine (kept behind SetVectorized
// as the oracle) on every query — same rows, same order, same float
// bits — serial and parallel, hash-join and star alike.

// assertSameResult fails the test when two results differ in any bit.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Columns, got.Columns) {
		t.Fatalf("%s: columns %v vs %v", label, want.Columns, got.Columns)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(want.Rows), len(got.Rows))
	}
	for ri := range want.Rows {
		if !reflect.DeepEqual(want.Rows[ri], got.Rows[ri]) {
			t.Fatalf("%s row %d: %v vs %v", label, ri, want.Rows[ri], got.Rows[ri])
		}
	}
}

// TestBatchEqualsRowAllTemplates runs all 99 templates through the
// row-at-a-time oracle and through the batch engine — serial and
// morsel-parallel, automatic strategy and forced star — and requires
// bit-identical results everywhere.
func TestBatchEqualsRowAllTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("all-99 batch differential skipped in -short; TestQuickBatchEqualsRow still runs")
	}
	db := datagen.New(0.0005, 7).GenerateAll()
	for _, mode := range []plan.Mode{plan.Auto, plan.ForceStar} {
		oracle := New(db)
		oracle.SetMode(mode)
		oracle.SetParallelism(1)
		oracle.SetVectorized(false)
		batchSerial := New(db)
		batchSerial.SetMode(mode)
		batchSerial.SetParallelism(1)
		batchPar := parallelEngine(New(db))
		batchPar.SetMode(mode)
		batchPar.SetBatchSize(16) // smaller than the morsel: several batches per morsel
		for _, tpl := range queries.All() {
			text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
			if err != nil {
				t.Fatalf("query %d: %v", tpl.ID, err)
			}
			want, err := oracle.Query(text)
			if err != nil {
				t.Fatalf("mode %v query %d row oracle: %v", mode, tpl.ID, err)
			}
			got, err := batchSerial.Query(text)
			if err != nil {
				t.Fatalf("mode %v query %d batch serial: %v", mode, tpl.ID, err)
			}
			assertSameResult(t, "mode "+mode.String()+" serial query "+tpl.Name, want, got)
			got, err = batchPar.Query(text)
			if err != nil {
				t.Fatalf("mode %v query %d batch parallel: %v", mode, tpl.ID, err)
			}
			assertSameResult(t, "mode "+mode.String()+" parallel query "+tpl.Name, want, got)
		}
	}
}

// batchDiffQueries covers the operator shapes the batch path rewrote:
// kernel-compilable predicates (comparison, BETWEEN, IN, LIKE, IS
// NULL, AND/OR), joins on int and string keys, left joins, star-shaped
// aggregation and DISTINCT.
var batchDiffQueries = []string{
	`SELECT d_s, COUNT(*) c, SUM(f_m) m, AVG(f_m) a FROM f, d WHERE f_k = d_k GROUP BY d_s`,
	`SELECT f_o, d_g FROM f LEFT OUTER JOIN d ON f_k = d_k`,
	`SELECT DISTINCT f_v FROM f`,
	`SELECT d_g, SUM(f_m) m FROM f, d WHERE f_k = d_k AND d_g < 3 GROUP BY d_g ORDER BY m DESC`,
	`SELECT COUNT(*) c FROM f WHERE f_v BETWEEN 10 AND 60`,
	`SELECT COUNT(*) c FROM f WHERE f_v IN (1, 2, 3, 5, 8, 13, 21, 34)`,
	`SELECT COUNT(*) c FROM f WHERE f_v NOT IN (1, 2, 3)`,
	`SELECT COUNT(*) c FROM f WHERE f_v IS NULL OR f_v > 90`,
	`SELECT COUNT(*) c FROM d WHERE d_s LIKE 's_'`,
	`SELECT COUNT(*) c FROM d WHERE d_s IN ('s0', 's2')`,
	`SELECT d_s, COUNT(*) c FROM f, d WHERE f_k = d_k AND NOT (d_g = 2) GROUP BY d_s`,
	`SELECT f_o FROM f, d WHERE f_k = d_k AND d_s = 's1' AND f_v < 50 ORDER BY f_o`,
	`SELECT COUNT(*) c FROM f WHERE f_m > 42.5 AND f_v <> 7`,
}

// TestQuickBatchEqualsRow re-checks batch/row equivalence on randomized
// databases across the rewritten operator shapes.
func TestQuickBatchEqualsRow(t *testing.T) {
	f := func(seed uint64) bool {
		db := randDB(seed, 300, 12)
		oracle := New(db)
		oracle.SetParallelism(1)
		oracle.SetVectorized(false)
		batch := New(db)
		batch.SetParallelism(1)
		for _, q := range batchDiffQueries {
			want, err := oracle.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := batch.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Logf("seed %d query %q: batch differs from row oracle", seed, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchBoundaryStress forces batch sizes of 1, 2 and morsel−1 /
// morsel / morsel+1 rows relative to a 32-row morsel, serial and
// parallel, so every batch/morsel boundary interaction (batch ==
// morsel, batch straddling a morsel edge, single-row batches) is
// exercised against the row oracle.
func TestBatchBoundaryStress(t *testing.T) {
	const morsel = 32
	db := randDB(11, 3*morsel+5, 12)
	oracle := New(db)
	oracle.SetParallelism(1)
	oracle.SetVectorized(false)
	for _, q := range batchDiffQueries {
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 2, morsel - 1, morsel, morsel + 1} {
			for _, workers := range []int{1, 4} {
				e := New(db)
				e.SetParallelism(workers)
				e.SetMorselSize(morsel)
				e.SetBatchSize(batch)
				got, err := e.Query(q)
				if err != nil {
					t.Fatalf("batch %d workers %d: %v", batch, workers, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("batch %d workers %d query %q: differs from row oracle", batch, workers, q)
				}
			}
		}
	}
}

// TestBatchBoundaryStressTemplates runs a slice of real templates (every
// 9th, covering star and hash-join plans) at adversarial batch sizes.
func TestBatchBoundaryStressTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("template boundary stress skipped in -short")
	}
	db := datagen.New(0.0005, 7).GenerateAll()
	oracle := New(db)
	oracle.SetParallelism(1)
	oracle.SetVectorized(false)
	all := queries.All()
	for i := 0; i < len(all); i += 9 {
		tpl := all[i]
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			t.Fatalf("query %d: %v", tpl.ID, err)
		}
		want, err := oracle.Query(text)
		if err != nil {
			t.Fatalf("query %d row oracle: %v", tpl.ID, err)
		}
		for _, batch := range []int{1, 31, 33} {
			e := parallelEngine(New(db))
			e.SetBatchSize(batch)
			got, err := e.Query(text)
			if err != nil {
				t.Fatalf("query %d batch %d: %v", tpl.ID, batch, err)
			}
			assertSameResult(t, tpl.Name, want, got)
		}
	}
}

// FuzzSelectionVector fuzzes the kernel compiler: random databases and
// random predicate constants, filtered through the batch path at a
// fuzzed batch size, must select exactly the rows the row-at-a-time
// filter keeps.
func FuzzSelectionVector(f *testing.F) {
	f.Add(uint64(1), uint16(1), uint8(0), uint8(10), uint8(60))
	f.Add(uint64(2), uint16(7), uint8(2), uint8(0), uint8(99))
	f.Add(uint64(3), uint16(32), uint8(4), uint8(50), uint8(50))
	f.Add(uint64(42), uint16(1024), uint8(1), uint8(90), uint8(10))
	f.Fuzz(func(t *testing.T, seed uint64, batchRaw uint16, g, lo, hi uint8) {
		if lo > hi {
			lo, hi = hi, lo
		}
		db := randDB(seed%512, 200, 10)
		oracle := New(db)
		oracle.SetParallelism(1)
		oracle.SetVectorized(false)
		batch := New(db)
		batch.SetParallelism(1)
		batch.SetBatchSize(1 + int(batchRaw%64))
		qs := append([]string{}, batchDiffQueries...)
		qs = append(qs,
			// Fuzzed constants hit kernel edge values (empty ranges,
			// boundary equality, non-existent groups).
			`SELECT COUNT(*) c FROM f WHERE f_v BETWEEN `+itoa(int64(lo))+` AND `+itoa(int64(hi)),
			`SELECT d_s, SUM(f_m) m FROM f, d WHERE f_k = d_k AND d_g = `+itoa(int64(g%6))+` GROUP BY d_s`,
		)
		for _, q := range qs {
			want, err := oracle.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := batch.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d batch %d query %q: batch filter differs from row filter",
					seed, batch.BatchSize(), q)
			}
		}
	})
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
