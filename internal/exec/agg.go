package exec

import (
	"fmt"
	"math"
	"sort"

	"tpcds/internal/schema"
	"tpcds/internal/sql"
	"tpcds/internal/storage"
)

// aggSpec is one distinct aggregate call of a query (deduplicated by
// canonical render).
type aggSpec struct {
	render   string
	fn       string
	arg      bexpr // nil for COUNT(*)
	distinct bool
	outType  schema.Type
}

// windowSpec is one distinct windowed aggregate (e.g. SUM(SUM(x)) OVER
// (PARTITION BY i_class) in Query 20). Its argument and partition
// expressions are bound over the aggregated row layout.
type windowSpec struct {
	render string
	fn     string
	arg    bexpr
	parts  []bexpr
}

// aggAcc accumulates one aggregate for one group.
type aggAcc struct {
	nonNull  int64
	rowCount int64
	sumI     int64
	sumF     float64
	sumSq    float64
	min, max storage.Value
	distinct map[string]bool
}

func (a *aggAcc) add(v storage.Value, distinct bool) {
	a.rowCount++
	if v.IsNull() {
		return
	}
	if distinct {
		if a.distinct == nil {
			a.distinct = map[string]bool{}
		}
		key := v.GroupKey()
		if a.distinct[key] {
			return
		}
		a.distinct[key] = true
	}
	a.nonNull++
	switch v.K {
	case storage.KindInt, storage.KindDate:
		a.sumI += v.I
		a.sumF += float64(v.I)
		a.sumSq += float64(v.I) * float64(v.I)
	case storage.KindFloat:
		a.sumF += v.F
		a.sumSq += v.F * v.F
	}
	if a.min.IsNull() || storage.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || storage.Compare(v, a.max) > 0 {
		a.max = v
	}
}

func (a *aggAcc) finalize(spec aggSpec) storage.Value {
	switch spec.fn {
	case "COUNT":
		if spec.arg == nil { // COUNT(*)
			return storage.Int(a.rowCount)
		}
		return storage.Int(a.nonNull)
	case "SUM":
		if a.nonNull == 0 {
			return storage.Null
		}
		if isIntType(spec.arg.typ()) {
			return storage.Int(a.sumI)
		}
		return storage.Float(a.sumF)
	case "AVG":
		if a.nonNull == 0 {
			return storage.Null
		}
		return storage.Float(a.sumF / float64(a.nonNull))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	case "STDDEV_SAMP":
		if a.nonNull < 2 {
			return storage.Null
		}
		n := float64(a.nonNull)
		variance := (a.sumSq - a.sumF*a.sumF/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		return storage.Float(math.Sqrt(variance))
	default:
		panic("exec: unknown aggregate " + spec.fn)
	}
}

func isIntType(t schema.Type) bool {
	return t == schema.Integer || t == schema.Identifier
}

func aggOutType(fn string, arg bexpr) schema.Type {
	switch fn {
	case "COUNT":
		return schema.Integer
	case "AVG", "STDDEV_SAMP":
		return schema.Decimal
	case "SUM":
		if arg != nil && isIntType(arg.typ()) {
			return schema.Integer
		}
		return schema.Decimal
	default: // MIN, MAX
		if arg != nil {
			return arg.typ()
		}
		return schema.Decimal
	}
}

// collectAggregates walks an AST expression collecting aggregate calls
// (outside windows) and window calls. Aggregates inside a window's
// argument count as regular aggregates (SUM(SUM(x)) OVER: the inner SUM
// is computed per group, the outer across the partition).
func collectAggregates(e sql.Expr, aggs map[string]*sql.FuncCall, windows map[string]*sql.Window) {
	switch v := e.(type) {
	case *sql.FuncCall:
		if sql.IsAggregate(v.Name) {
			if _, dup := aggs[v.Render()]; !dup {
				aggs[v.Render()] = v
			}
			return // aggregate args cannot contain aggregates
		}
		for _, a := range v.Args {
			collectAggregates(a, aggs, windows)
		}
	case *sql.Window:
		if _, dup := windows[v.Render()]; !dup {
			windows[v.Render()] = v
		}
		// The window's aggregate argument contains per-group aggregates.
		for _, a := range v.Agg.Args {
			collectAggregates(a, aggs, windows)
		}
	case *sql.BinOp:
		collectAggregates(v.L, aggs, windows)
		collectAggregates(v.R, aggs, windows)
	case *sql.UnaryOp:
		collectAggregates(v.X, aggs, windows)
	case *sql.Between:
		collectAggregates(v.X, aggs, windows)
		collectAggregates(v.Lo, aggs, windows)
		collectAggregates(v.Hi, aggs, windows)
	case *sql.In:
		collectAggregates(v.X, aggs, windows)
	case *sql.Like:
		collectAggregates(v.X, aggs, windows)
	case *sql.IsNull:
		collectAggregates(v.X, aggs, windows)
	case *sql.CaseExpr:
		for _, w := range v.Whens {
			collectAggregates(w.Cond, aggs, windows)
			collectAggregates(w.Result, aggs, windows)
		}
		if v.Else != nil {
			collectAggregates(v.Else, aggs, windows)
		}
	}
}

// aggregate executes the grouping path: hash aggregation over the joined
// base rows, windowed aggregates over the groups, then HAVING,
// projection, DISTINCT, ORDER BY and LIMIT.
func (e *Engine) aggregate(stmt *sql.SelectStmt, b *binder, rows [][]storage.Value, orderBy []sql.OrderItem, tr *Trace) (*Result, []schema.Type, error) {
	// Gather distinct aggregate and window calls across all clauses.
	aggMap := map[string]*sql.FuncCall{}
	winMap := map[string]*sql.Window{}
	for _, item := range stmt.Items {
		if item.Star {
			return nil, nil, fmt.Errorf("SELECT * cannot be combined with aggregation")
		}
		collectAggregates(item.Expr, aggMap, winMap)
	}
	if stmt.Having != nil {
		collectAggregates(stmt.Having, aggMap, winMap)
	}
	for _, oi := range orderBy {
		collectAggregates(oi.Expr, aggMap, winMap)
	}

	// Bind group-by expressions over the base layout.
	var groupExprs []bexpr
	var groupRenders []string
	for _, g := range stmt.GroupBy {
		be, err := b.bind(g)
		if err != nil {
			return nil, nil, err
		}
		groupExprs = append(groupExprs, be)
		groupRenders = append(groupRenders, g.Render())
	}

	// Bind aggregate arguments over the base layout (deterministic order).
	var specs []aggSpec
	for render, fc := range aggMap {
		spec := aggSpec{render: render, fn: fc.Name, distinct: fc.Distinct}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, nil, fmt.Errorf("%s expects one argument", fc.Name)
			}
			arg, err := b.bind(fc.Args[0])
			if err != nil {
				return nil, nil, err
			}
			spec.arg = arg
		}
		spec.outType = aggOutType(spec.fn, spec.arg)
		specs = append(specs, spec)
	}
	// Sort specs by render for deterministic slot assignment.
	for i := 1; i < len(specs); i++ {
		for j := i; j > 0 && specs[j].render < specs[j-1].render; j-- {
			specs[j], specs[j-1] = specs[j-1], specs[j]
		}
	}

	// Hash aggregation. aggregateMask groups by the group-by expressions
	// whose bit is set in mask, padding the others with NULL. The full
	// mask is ordinary grouping; ROLLUP uses prefix masks, CUBE every
	// subset (SQL-99 OLAP amendment).
	type group struct {
		vals  []storage.Value
		accs  []aggAcc
		first int // first contributing row (serial emit order)
	}
	width := len(groupExprs) + len(specs)
	emit := func(groups []*group) [][]storage.Value {
		out := make([][]storage.Value, 0, len(groups))
		for _, g := range groups {
			row := make([]storage.Value, width, width+len(winMap))
			copy(row, g.vals)
			for i := range specs {
				//lint:ignore boundscheck every group is allocated with accs: make([]aggAcc, len(specs)); the per-group field length is a cross-object invariant the per-variable domain cannot carry
				row[len(groupExprs)+i] = g.accs[i].finalize(specs[i])
			}
			out = append(out, row)
		}
		return out
	}
	aggregateMaskSerial := func(mask uint) [][]storage.Value {
		groups := map[string]*group{}
		var order []*group // preserve first-seen order for determinism
		// The group key is assembled in a reusable byte buffer and looked
		// up without conversion (map[string(buf)] compiles to a no-alloc
		// read); the key string and the group value slice are allocated
		// only when a new group appears. The bytes match the GroupKey
		// concatenation exactly, so grouping is unchanged.
		var keybuf []byte
		gtmp := make([]storage.Value, len(groupExprs))
		for _, row := range rows {
			b.qc.tick()
			keybuf = keybuf[:0]
			for i := range groupExprs {
				if mask&(1<<uint(i)) != 0 {
					gtmp[i] = groupExprs[i].eval(row)
					keybuf = gtmp[i].AppendGroupKey(keybuf)
				} else {
					gtmp[i] = storage.Null
					keybuf = append(keybuf, 0, '-')
				}
			}
			g := groups[string(keybuf)]
			if g == nil {
				gvals := make([]storage.Value, len(groupExprs))
				copy(gvals, gtmp)
				g = &group{vals: gvals, accs: make([]aggAcc, len(specs))}
				groups[string(keybuf)] = g
				order = append(order, g)
			}
			for i := range specs {
				v := storage.Int(1) // COUNT(*) counts rows
				if specs[i].arg != nil {
					v = specs[i].arg.eval(row)
				}
				//lint:ignore boundscheck every group is allocated with accs: make([]aggAcc, len(specs)); the per-group field length is a cross-object invariant the per-variable domain cannot carry
				g.accs[i].add(v, specs[i].distinct)
			}
		}
		// Global aggregate with no groups: one (possibly empty) group.
		if mask == 0 && len(groups) == 0 {
			order = append(order, &group{vals: make([]storage.Value, len(groupExprs)), accs: make([]aggAcc, len(specs))})
		}
		return emit(order)
	}

	// Parallel aggregation: group-by and aggregate-argument expressions
	// are evaluated once per row in morsels (shared by every mask), then
	// each mask partitions groups by key hash. One worker per partition
	// accumulates its groups walking the rows in global row order, so
	// per-group accumulation order — and therefore every float sum —
	// matches the serial fold bit for bit. Groups are emitted in
	// first-seen row order, the serial emit order.
	var gv, av [][]storage.Value // per-row group-expr / agg-arg values
	precompute := func(workers, morsel int) {
		if gv != nil {
			return
		}
		n := len(rows)
		gv = make([][]storage.Value, n)
		av = make([][]storage.Value, n)
		// The per-row value arrays are the parallel aggregation's
		// dominant scratch; they live until the last mask is emitted,
		// so they count toward the aggregate node's peak only.
		b.qc.growScratch(int64(n) * int64(len(groupExprs)+len(specs)+2) * valueBytes)
		counts := forEachMorsel(b.qc, workers, n, morsel, func(_, _, lo, hi int) {
			for r := lo; r < hi; r++ {
				row := rows[r]
				g := make([]storage.Value, len(groupExprs))
				for i := range groupExprs {
					g[i] = groupExprs[i].eval(row)
				}
				a := make([]storage.Value, len(specs))
				for i := range specs {
					if specs[i].arg != nil {
						a[i] = specs[i].arg.eval(row)
					} else {
						a[i] = storage.Int(1) // COUNT(*) counts rows
					}
				}
				gv[r], av[r] = g, a
			}
		})
		tr.addWork(counts)
	}
	aggregateMaskParallel := func(mask uint, workers, morsel int) [][]storage.Value {
		precompute(workers, morsel)
		n := len(rows)
		// Shadow with locals pinned to this mask's view: precompute
		// guarantees one value slot per row, and the explicit check
		// makes that contract a local fact rather than action at a
		// distance through the lazily-filled captures.
		gv, av := gv, av
		if len(gv) != n || len(av) != n {
			panic("exec: precompute row-value sizes out of sync with rows")
		}
		keys := make([]string, n)
		parts := make([]int, n)
		// Per-mask key/partition vectors (string header + int per row),
		// released when this mask's groups have been emitted.
		b.qc.growScratch(int64(n) * 24)
		defer b.qc.shrinkScratch(int64(n) * 24)
		counts := forEachMorsel(b.qc, workers, n, morsel, func(_, _, lo, hi int) {
			var buf []byte
			for r := lo; r < hi; r++ {
				buf = buf[:0]
				for i := range groupExprs {
					if mask&(1<<uint(i)) != 0 {
						//lint:ignore boundscheck precompute builds each gv row with make([]storage.Value, len(groupExprs)); per-element slice lengths are outside the per-variable domain
						buf = gv[r][i].AppendGroupKey(buf)
					} else {
						buf = append(buf, 0, '-')
					}
				}
				keys[r] = string(buf)
				parts[r] = partOfBytes(buf, workers)
			}
		})
		tr.addWork(counts)
		partGroups := make([][]*group, workers)
		parallelFor(workers, func(p int) {
			groups := map[string]*group{}
			var order []*group
			for r := 0; r < n; r++ {
				if r%(8*tickInterval) == 0 {
					b.qc.checkNow()
				}
				if parts[r] != p {
					continue
				}
				g := groups[keys[r]]
				if g == nil {
					gvals := make([]storage.Value, len(groupExprs))
					for i := range groupExprs {
						if mask&(1<<uint(i)) != 0 {
							//lint:ignore boundscheck precompute builds each gv row with make([]storage.Value, len(groupExprs)); per-element slice lengths are outside the per-variable domain
							gvals[i] = gv[r][i]
						} else {
							gvals[i] = storage.Null
						}
					}
					g = &group{vals: gvals, accs: make([]aggAcc, len(specs)), first: r}
					groups[keys[r]] = g
					order = append(order, g)
				}
				for i := range specs {
					//lint:ignore boundscheck per-group accs and per-row av lengths are fixed at construction (len(specs)); per-element invariants are outside the per-variable domain
					g.accs[i].add(av[r][i], specs[i].distinct)
				}
			}
			partGroups[p] = order
		})
		var all []*group
		for _, pg := range partGroups {
			all = append(all, pg...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a].first < all[b].first })
		return emit(all)
	}
	aggregateMask := func(mask uint) [][]storage.Value {
		if workers, morsel := e.workers(), e.morselSize(); workers > 1 && len(rows) > morsel {
			return aggregateMaskParallel(mask, workers, morsel)
		}
		return aggregateMaskSerial(mask)
	}

	fullMask := uint(1)<<uint(len(groupExprs)) - 1
	aggRows := aggregateMask(fullMask)
	if stmt.Rollup || stmt.Cube {
		if len(winMap) > 0 {
			return nil, nil, fmt.Errorf("ROLLUP/CUBE cannot be combined with window functions")
		}
		if stmt.Cube && len(groupExprs) > 12 {
			return nil, nil, fmt.Errorf("CUBE over %d columns exceeds the supported 12", len(groupExprs))
		}
	}
	switch {
	case stmt.Rollup:
		// Subtotal levels, coarsest last; the grand total is mask 0.
		for level := len(groupExprs) - 1; level >= 0; level-- {
			aggRows = append(aggRows, aggregateMask(uint(1)<<uint(level)-1)...)
		}
	case stmt.Cube:
		// Every proper subset of the grouping columns, densest first.
		masks := make([]uint, 0, fullMask)
		for m := uint(0); m < fullMask; m++ {
			masks = append(masks, m)
		}
		sort.Slice(masks, func(a, b int) bool {
			pa, pb := popcount(uint64(masks[a])), popcount(uint64(masks[b]))
			if pa != pb {
				return pa > pb
			}
			return masks[a] > masks[b]
		})
		for _, m := range masks {
			aggRows = append(aggRows, aggregateMask(m)...)
		}
	}

	// Slot table for post-aggregation binding.
	slots := map[string]bexpr{}
	for i, r := range groupRenders {
		//lint:ignore boundscheck groupRenders is emitted one entry per groupExprs element (lockstep lengths); cross-slice equality is outside the per-variable domain
		slots[r] = &colExpr{off: i, t: groupExprs[i].typ()}
	}
	for i, spec := range specs {
		slots[spec.render] = &colExpr{off: len(groupExprs) + i, t: spec.outType}
	}

	// Window specs: bind args and partitions over the aggregated layout.
	b.slots = slots
	defer func() { b.slots = nil }()
	var winSpecs []windowSpec
	for render, w := range winMap {
		ws := windowSpec{render: render, fn: w.Agg.Name}
		if w.Agg.Star {
			ws.arg = nil
		} else {
			if len(w.Agg.Args) != 1 {
				return nil, nil, fmt.Errorf("%s expects one argument", w.Agg.Name)
			}
			arg, err := b.bind(w.Agg.Args[0])
			if err != nil {
				return nil, nil, fmt.Errorf("window argument: %w", err)
			}
			if arg.mask() != 0 {
				return nil, nil, fmt.Errorf("window argument %s references columns outside GROUP BY", w.Agg.Args[0].Render())
			}
			ws.arg = arg
		}
		for _, p := range w.PartitionBy {
			bp, err := b.bind(p)
			if err != nil {
				return nil, nil, fmt.Errorf("window partition: %w", err)
			}
			if bp.mask() != 0 {
				return nil, nil, fmt.Errorf("window partition %s references columns outside GROUP BY", p.Render())
			}
			ws.parts = append(ws.parts, bp)
		}
		winSpecs = append(winSpecs, ws)
	}
	for i := 1; i < len(winSpecs); i++ {
		for j := i; j > 0 && winSpecs[j].render < winSpecs[j-1].render; j-- {
			winSpecs[j], winSpecs[j-1] = winSpecs[j-1], winSpecs[j]
		}
	}
	// Compute each window column and extend rows and slots.
	for wi := range winSpecs {
		ws := &winSpecs[wi]
		accs := map[string]*aggAcc{}
		keys := make([]string, len(aggRows))
		for ri, row := range aggRows {
			b.qc.tick()
			key := ""
			for _, p := range ws.parts {
				key += p.eval(row).GroupKey()
			}
			keys[ri] = key
			acc := accs[key]
			if acc == nil {
				acc = &aggAcc{}
				accs[key] = acc
			}
			v := storage.Int(1)
			if ws.arg != nil {
				v = ws.arg.eval(row)
			}
			acc.add(v, false)
		}
		spec := aggSpec{fn: ws.fn, arg: ws.arg}
		outType := aggOutType(ws.fn, ws.arg)
		// Window columns take slots past the aggregate layout; width
		// itself stays fixed at the emit-time row length.
		slot := width + wi
		for ri := range aggRows {
			aggRows[ri] = append(aggRows[ri], accs[keys[ri]].finalize(spec))
		}
		slots[ws.render] = &colExpr{off: slot, t: outType}
	}

	// bindAgg binds an expression over the aggregated layout and rejects
	// references to base columns that are neither grouped nor aggregated
	// (slot expressions carry an empty table mask; anything else leaked
	// through to the base layout).
	bindAgg := func(e sql.Expr, clause string) (bexpr, error) {
		be, err := b.bind(e)
		if err != nil {
			return nil, err
		}
		if be.mask() != 0 {
			return nil, fmt.Errorf("%s expression %s references columns outside GROUP BY", clause, e.Render())
		}
		return be, nil
	}

	// HAVING over the aggregated layout.
	if stmt.Having != nil {
		hv, err := bindAgg(stmt.Having, "HAVING")
		if err != nil {
			return nil, nil, err
		}
		w := 0
		for _, row := range aggRows {
			if truthy(hv.eval(row)) {
				aggRows[w] = row
				w++
			}
		}
		aggRows = aggRows[:w]
	}

	// Projection and ORDER BY over the aggregated layout.
	var outCols []string
	var outTypes []schema.Type
	var projs []bexpr
	for _, item := range stmt.Items {
		be, err := bindAgg(item.Expr, "SELECT")
		if err != nil {
			return nil, nil, err
		}
		outCols = append(outCols, outputName(item))
		outTypes = append(outTypes, be.typ())
		projs = append(projs, be)
	}
	var sortKeys []bexpr
	for _, oi := range orderBy {
		be, err := bindAgg(oi.Expr, "ORDER BY")
		if err != nil {
			return nil, nil, err
		}
		sortKeys = append(sortKeys, be)
	}
	res := e.finish(b.qc, aggRows, projs, sortKeys, orderBy, stmt.Distinct, stmt.Limit, stmt.Offset, outCols, tr)
	return res, outTypes, nil
}
