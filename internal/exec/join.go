package exec

import (
	"fmt"

	"tpcds/internal/plan"
	"tpcds/internal/sql"
	"tpcds/internal/storage"
)

// leftJoin describes one LEFT OUTER JOIN table with its equality edges
// (normalized so the b side is the outer table) and residual ON
// conditions.
type leftJoin struct {
	table int
	edges []joinEdge
	extra []bexpr
}

// joinRows produces the joined base rows of a query: full-width rows
// over the canonical layout (each table instance owning a contiguous
// span). The join order comes from the active planner — the greedy
// heuristic, or the cost-based search with its plan cache — and the
// star-vs-hash choice from the plan package. Either way the emitted
// rows are bit-identical: planning may change cost, never results. The
// returned trace belongs to this call alone, so concurrent streams
// never see each other's plans.
func (e *Engine) joinRows(b *binder, stmt *sql.SelectStmt, filters []filterInfo, edges []joinEdge, residual []bexpr, lefts []leftJoin) ([][]storage.Value, Trace, error) {
	if len(b.tables) == 0 {
		return nil, Trace{}, fmt.Errorf("no tables to join")
	}
	tr := Trace{
		Strategy:    plan.HashJoinPipeline,
		Tables:      e.buildTableTraces(b, filters),
		Parallelism: e.workers(),
	}
	isLeft := map[int]bool{}
	for _, lj := range lefts {
		isLeft[lj.table] = true
	}
	driver, gOrder, connected := e.greedyJoinOrder(b, filters, edges, isLeft)
	if driver < 0 {
		return nil, Trace{}, fmt.Errorf("all tables are left-joined")
	}

	planned := plan.Cached{Order: gOrder, Source: "greedy"}
	costBased := e.planner == plan.CostBased
	if costBased {
		var hit bool
		planned, hit = e.costPlan(b, stmt, filters, edges, isLeft, driver, gOrder, connected)
		tr.PlanSource = planned.Source
		if hit {
			tr.PlanSource = "cache:" + planned.Source
		}
		tr.EstBaseRows = planned.EstRows
	} else {
		tr.PlanSource = "greedy"
	}

	if shape, dimOfTable, ok := e.starShape(b, filters, edges, lefts); ok {
		var decision plan.Decision
		if costBased {
			decision = plan.ChooseCost(shape, planned.Cost, e.mode)
		} else {
			decision = plan.Choose(shape, e.mode)
		}
		e.setDecision(decision)
		tr.Decision = decision
		if decision.Strategy == plan.StarTransform {
			starEst := shape.CombinedSelectivity() * float64(shape.FactRows)
			rows, ok := e.runStar(b, filters, edges, residual, dimOfTable, starEst, &tr)
			if ok {
				tr.Strategy = plan.StarTransform
				tr.JoinOrder = []string{shape.FactName + " (bitmap-driven)"}
				tr.BaseRows = len(rows)
				return rows, tr, nil
			}
		}
	}
	rows, order := e.executeJoinOrder(b, planned.Order, planned.StepEst, filters, edges, residual, lefts, &tr)
	tr.JoinOrder = order
	tr.BaseRows = len(rows)
	return rows, tr, nil
}

// tablePreds collects the bound local predicates of one table.
func tablePreds(ti int, filters []filterInfo) []bexpr {
	var preds []bexpr
	for _, f := range filters {
		if f.table == ti {
			preds = append(preds, f.pred)
		}
	}
	return preds
}

// forEachFiltered streams the rows of table ti surviving its local
// filters. fn receives the base-table row id and a reusable full-width
// buffer with only ti's span populated — callers must copy what they
// keep. With vectorization on, predicates run as batch kernels over the
// column vectors and only survivors are materialized into the buffer.
func (b *binder) forEachFiltered(ti int, filters []filterInfo, fn func(r int, row []storage.Value)) {
	inst := b.tableAt(ti)
	n := inst.tab.NumRows()
	b.qc.countScan(n)
	if b.eng.vectorized {
		tf := b.compileFilter(ti, filters)
		row := make([]storage.Value, b.total)
		tf.scanRange(b.qc, b.eng.batchSize(), 0, n, func(sel []int32) {
			for _, r := range sel {
				fillRow(tf.readers, r, row)
				fn(int(r), row)
			}
		})
		return
	}
	preds := tablePreds(ti, filters)
	cols := b.usedCols(ti)
	row := make([]storage.Value, b.total)
	for r := 0; r < n; r++ {
		b.qc.tick()
		for _, c := range cols {
			//lint:ignore boundscheck layout invariant: inst.offset+c < total for every used column and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
			row[inst.offset+c] = inst.tab.Get(r, c)
		}
		ok := true
		for _, p := range preds {
			if !truthy(p.eval(row)) {
				ok = false
				break
			}
		}
		if ok {
			fn(r, row)
		}
	}
}

// filteredRows materializes one table's surviving rows as full-width
// rows (driver-table path). The vectorized path carves the rows of each
// batch out of one arena allocation.
func (b *binder) filteredRows(ti int, filters []filterInfo) [][]storage.Value {
	if b.eng.vectorized {
		inst := b.tableAt(ti)
		n := inst.tab.NumRows()
		b.qc.countScan(n)
		tf := b.compileFilter(ti, filters)
		var out [][]storage.Value
		tf.scanRange(b.qc, b.eng.batchSize(), 0, n, func(sel []int32) {
			out = materializeSel(tf.readers, b.total, sel, out)
		})
		return out
	}
	var out [][]storage.Value
	b.forEachFiltered(ti, filters, func(_ int, row []storage.Value) {
		cp := make([]storage.Value, len(row))
		copy(cp, row)
		out = append(out, cp)
	})
	return out
}

// countFiltered counts surviving rows without materializing them. The
// vectorized path never boxes a value: kernels vote, survivors are
// counted straight off the selection vector.
func (b *binder) countFiltered(ti int, filters []filterInfo) int {
	if b.eng.vectorized {
		inst := b.tableAt(ti)
		nr := inst.tab.NumRows()
		b.qc.countScan(nr)
		tf := b.compileFilter(ti, filters)
		count := 0
		tf.scanRange(b.qc, b.eng.batchSize(), 0, nr, func(sel []int32) { count += len(sel) })
		return count
	}
	n := 0
	b.forEachFiltered(ti, filters, func(int, []storage.Value) { n++ })
	return n
}

// estimateFiltered estimates the filtered cardinality of a table. With
// statistics enabled (the default), analyzable predicates use NDV and
// min/max stats; other predicates — and everything when statistics are
// disabled — use the plan package's fixed heuristics.
func (e *Engine) estimateFiltered(b *binder, ti int, filters []filterInfo) float64 {
	est := float64(b.tableAt(ti).tab.NumRows())
	for _, f := range filters {
		if f.table != ti {
			continue
		}
		sel := -1.0
		if !e.useHeuristicsOnly && f.hintOK {
			if s, ok := e.hintSelectivity(b, f.hint); ok {
				sel = s
			}
		}
		if sel < 0 {
			sel = plan.EstimateFilterSelectivity(f.kind)
		}
		est *= sel
	}
	return est
}

// executeJoinOrder runs the hash-join pipeline (§2.1: "access paths in
// a 3NF DSS system are dominated by large hash-joins") over an explicit
// join order — driver first, then each inner table hash-built on its
// join columns (row ids only — spans are copied on match) and probed.
// Both planners produce orders satisfying the probe-major order
// invariant, so execution needs no knowledge of which one planned.
// stepEst carries the cost planner's per-step output estimates aligned
// with order (stepEst[k] estimates the intermediate cardinality after
// joining order[k]); nil under the greedy planner. Estimates feed only
// the profile — execution never branches on them.
func (e *Engine) executeJoinOrder(b *binder, order []int, stepEst []float64, filters []filterInfo, edges []joinEdge, residual []bexpr, lefts []leftJoin, tr *Trace) ([][]storage.Value, []string) {
	if len(order) == 0 {
		panic("exec: empty join order")
	}
	driver := order[0]
	current := e.scanFiltered(b, driver, filters, tr)
	joined := map[int]bool{driver: true}
	desc := []string{b.tableAt(driver).binding + " (driver)"}
	for k, ti := range order[1:] {
		est := -1.0
		if s := k + 1; s >= 0 && s < len(stepEst) {
			est = stepEst[s]
		}
		current = e.innerHashJoin(b, current, ti, filters, edges, joined, est, tr)
		joined[ti] = true
		desc = append(desc, b.tableAt(ti).binding)
	}
	// LEFT OUTER joins, in declaration order.
	for _, lj := range lefts {
		current = e.leftHashJoin(b, current, lj, filters, tr)
		joined[lj.table] = true
		desc = append(desc, b.tableAt(lj.table).binding+" (left)")
	}
	// Residual cross-table predicates.
	if len(residual) > 0 {
		w := 0
		for _, row := range current {
			b.qc.tick()
			ok := true
			for _, p := range residual {
				if !truthy(p.eval(row)) {
					ok = false
					break
				}
			}
			if ok {
				current[w] = row
				w++
			}
		}
		current = current[:w]
	}
	return current, desc
}

// joinKeys extracts the probe/build key expressions for joining table ti
// against the already-joined set.
func joinKeys(edges []joinEdge, joined map[int]bool, ti int) (probe, build []*colExpr) {
	for _, ed := range edges {
		switch {
		case joined[ed.aTbl] && ed.bTbl == ti:
			probe = append(probe, ed.aCol)
			build = append(build, ed.bCol)
		case joined[ed.bTbl] && ed.aTbl == ti:
			probe = append(probe, ed.bCol)
			build = append(build, ed.aCol)
		}
	}
	return probe, build
}

func keyOf(row []storage.Value, cols []*colExpr) (string, bool) {
	key := ""
	for _, c := range cols {
		//lint:ignore boundscheck layout invariant: c.off is a binder-assigned offset < total and row is allocated at b.total; cross-struct offsets are outside the per-variable domain
		v := row[c.off]
		if v.IsNull() {
			return "", false // NULL never joins
		}
		key += v.GroupKey()
	}
	return key, true
}

// buildHash indexes the filtered rows of table ti by the given build
// columns, storing base-table row ids.
func (b *binder) buildHash(ti int, filters []filterInfo, build []*colExpr) map[string][]int32 {
	ht := map[string][]int32{}
	built := 0
	b.forEachFiltered(ti, filters, func(r int, row []storage.Value) {
		if key, ok := keyOf(row, build); ok {
			ht[key] = append(ht[key], int32(r))
			built++
		}
	})
	b.qc.countBuild(built)
	return ht
}

// buildHashInt is buildHash for a single integer-class key column: keys
// come straight off the column vector, no Value boxing, no GroupKey
// string. Vectorized mode only.
func (b *binder) buildHashInt(ti int, filters []filterInfo, build *colExpr) map[int64][]int32 {
	inst := b.tableAt(ti)
	n := inst.tab.NumRows()
	b.qc.countScan(n)
	tf := b.compileFilter(ti, filters)
	kcs := b.keyCols(ti, []*colExpr{build})
	if len(kcs) != 1 {
		panic("exec: buildHashInt expects a single key column")
	}
	nulls, ints := kcs[0].nulls, kcs[0].ints
	ht := map[int64][]int32{}
	built := 0
	tf.scanRange(b.qc, b.eng.batchSize(), 0, n, func(sel []int32) {
		for _, r := range sel {
			if nulls[r] {
				continue // NULL never joins
			}
			ht[ints[r]] = append(ht[ints[r]], r)
			built++
		}
	})
	b.qc.countBuild(built)
	return ht
}

// fillSpan copies the used columns of table ti's row r into dst.
func (b *binder) fillSpan(ti int, r int32, dst []storage.Value) {
	inst := b.tableAt(ti)
	for _, c := range b.usedCols(ti) {
		//lint:ignore boundscheck layout invariant: inst.offset+c < total for every used column and dst is allocated at b.total; cross-struct offsets are outside the per-variable domain
		dst[inst.offset+c] = inst.tab.Get(int(r), c)
	}
}

// innerHashJoin joins current rows with table ti. stepEst is the
// planner's output estimate for this join step (negative when none).
func (e *Engine) innerHashJoin(b *binder, current [][]storage.Value, ti int, filters []filterInfo, edges []joinEdge, joined map[int]bool, stepEst float64, tr *Trace) [][]storage.Value {
	probe, build := joinKeys(edges, joined, ti)
	if len(probe) == 0 {
		// No connecting edge: cartesian product (rare; small sides only).
		sp := b.qc.startOp("cartesian", b.tableAt(ti).binding)
		b.qc.opRowsIn(sp, int64(len(current)))
		if stepEst >= 0 {
			b.qc.opEst(stepEst)
		}
		defer b.qc.endOp(sp)
		var ids []int32
		b.forEachFiltered(ti, filters, func(r int, _ []storage.Value) {
			ids = append(ids, int32(r))
		})
		var out [][]storage.Value
		for _, l := range current {
			for _, r := range ids {
				b.qc.tick()
				m := make([]storage.Value, b.total)
				copy(m, l)
				b.fillSpan(ti, r, m)
				out = append(out, m)
			}
		}
		b.qc.opRowsOut(sp, int64(len(out)))
		return out
	}
	// Build on the smaller side: when the new table is much larger than
	// the current intermediate result (a huge dimension probed by a
	// filtered fact), hash the current rows instead and stream the big
	// table past them.
	if est := e.estimateFiltered(b, ti, filters); est > 2*float64(len(current)) {
		return e.streamJoin(b, current, ti, probe, build, filters, stepEst, tr)
	}
	ht := e.buildHashTable(b, ti, filters, probe, build, tr)
	return e.probeJoin(b, current, ti, probe, ht, stepEst, tr)
}

// leftHashJoin outer-joins current rows with the lj table: rows without
// a match keep NULLs in the outer span. The probe side runs in morsels
// over current (each probe row is independent; per-morsel buffers keep
// the serial output order).
func (e *Engine) leftHashJoin(b *binder, current [][]storage.Value, lj leftJoin, filters []filterInfo, tr *Trace) [][]storage.Value {
	sp := b.qc.startOp("left", b.tableAt(lj.table).binding)
	b.qc.opRowsIn(sp, int64(len(current)))
	defer b.qc.endOp(sp)
	var probe, build []*colExpr
	for _, ed := range lj.edges {
		probe = append(probe, ed.aCol)
		build = append(build, ed.bCol)
	}
	var allIDs []int32
	var ht *hashTable
	if len(probe) == 0 {
		b.forEachFiltered(lj.table, filters, func(r int, _ []storage.Value) {
			allIDs = append(allIDs, int32(r))
		})
	} else {
		ht = e.buildHashTable(b, lj.table, filters, probe, build, tr)
	}
	probeOne := func(l []storage.Value, out [][]storage.Value) [][]storage.Value {
		matched := false
		candidates := allIDs
		if ht != nil {
			if ht.iparts != nil && len(probe) == 1 {
				if k, ok := rowIntKey(l, probe[0]); ok {
					candidates = ht.lookupInt(k)
				} else {
					candidates = nil
				}
			} else if key, ok := keyOf(l, probe); ok {
				candidates = ht.lookup(key)
			} else {
				candidates = nil
			}
		}
		for _, r := range candidates {
			m := make([]storage.Value, b.total)
			copy(m, l)
			b.fillSpan(lj.table, r, m)
			ok := true
			for _, p := range lj.extra {
				if !truthy(p.eval(m)) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, m)
				matched = true
			}
		}
		if !matched {
			m := make([]storage.Value, b.total)
			copy(m, l)
			// Outer span stays NULL (zero Value is NULL).
			out = append(out, m)
		}
		return out
	}
	n := len(current)
	workers := e.workers()
	morsel := e.morselSize()
	if workers <= 1 || n <= morsel {
		var out [][]storage.Value
		for _, l := range current {
			b.qc.tick()
			out = probeOne(l, out)
		}
		b.qc.opRowsOut(sp, int64(len(out)))
		return out
	}
	numMorsels := (n + morsel - 1) / morsel
	outs := make([][][]storage.Value, numMorsels)
	counts := forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
		var out [][]storage.Value
		for _, l := range current[lo:hi] {
			out = probeOne(l, out)
		}
		//lint:ignore boundscheck forEachMorsel enumerates m < (n+morsel-1)/morsel = len(outs); integer division is outside the linear interval domain
		outs[m] = out
	})
	tr.addWork(counts)
	rows := concatRows(outs)
	b.qc.opRowsOut(sp, int64(len(rows)))
	return rows
}
