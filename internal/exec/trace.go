package exec

import (
	"fmt"
	"strings"

	"tpcds/internal/obs"
	"tpcds/internal/plan"
)

// TableTrace describes one FROM entry as the executor saw it.
type TableTrace struct {
	Binding  string
	Rows     int
	Filters  int
	Estimate float64 // estimated rows after local filters
}

// Trace describes how the engine executed the most recent query's join
// phase — the EXPLAIN surface.
type Trace struct {
	Strategy  plan.Strategy
	Decision  plan.Decision
	Tables    []TableTrace
	JoinOrder []string // driver first
	BaseRows  int      // joined rows fed to aggregation/projection

	// Cost-planner surface: PlanSource says how the join order was
	// obtained ("dp", "greedy", or "cache:<source>" on a plan-cache
	// hit), EstBaseRows is the cost model's estimate of BaseRows (0
	// under the greedy planner — it does not estimate), CSEHits counts
	// subquery/CTE evaluations answered from the per-query memo, and
	// Decorrelated counts IN-subquery predicates rewritten to joins.
	PlanSource   string
	EstBaseRows  float64
	CSEHits      int
	Decorrelated int

	// Morsel-execution accounting: Parallelism is the resolved worker
	// count, WorkerMorsels[i] the number of morsels worker i processed
	// across all parallel operators of the query. Empty when every
	// operator took the serial path.
	Parallelism   int
	WorkerMorsels []int

	// Profile is the per-operator runtime accounting tree (EXPLAIN
	// ANALYZE): actual rows, batches, wall time, and peak scratch per
	// operator, with the planner's estimate and q-error where one
	// exists. Nil unless Engine.SetProfiling(true) was called.
	Profile *obs.OpProfile
}

// addWork folds one parallel operator's per-worker morsel counts into
// the trace. Only the goroutine coordinating the operator calls it, so
// no locking is needed. Nil-safe so serial helpers can pass nil.
func (t *Trace) addWork(counts []int) {
	if t == nil {
		return
	}
	for len(t.WorkerMorsels) < len(counts) {
		t.WorkerMorsels = append(t.WorkerMorsels, 0)
	}
	for i, c := range counts {
		t.WorkerMorsels[i] += c
	}
}

// String renders the trace in an EXPLAIN-like layout.
func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy: %s", t.Strategy)
	if t.Decision.Reason != "" {
		fmt.Fprintf(&sb, " (%s)", t.Decision.Reason)
	}
	sb.WriteByte('\n')
	if t.PlanSource != "" {
		fmt.Fprintf(&sb, "plan source: %s", t.PlanSource)
		if t.Decorrelated > 0 {
			fmt.Fprintf(&sb, ", %d IN-subqueries decorrelated", t.Decorrelated)
		}
		if t.CSEHits > 0 {
			fmt.Fprintf(&sb, ", %d subquery CSE hits", t.CSEHits)
		}
		sb.WriteByte('\n')
	}
	if len(t.JoinOrder) > 0 {
		fmt.Fprintf(&sb, "join order: %s\n", strings.Join(t.JoinOrder, " -> "))
	}
	for _, tt := range t.Tables {
		fmt.Fprintf(&sb, "  table %-24s %9d rows, %d filters, est. %.0f\n",
			tt.Binding, tt.Rows, tt.Filters, tt.Estimate)
	}
	if t.EstBaseRows > 0 {
		fmt.Fprintf(&sb, "joined base rows: %d (est. %.0f)\n", t.BaseRows, t.EstBaseRows)
	} else {
		fmt.Fprintf(&sb, "joined base rows: %d\n", t.BaseRows)
	}
	if len(t.WorkerMorsels) > 0 {
		fmt.Fprintf(&sb, "parallelism: %d workers, morsels per worker %v\n",
			t.Parallelism, t.WorkerMorsels)
	}
	if t.Profile != nil {
		sb.WriteString("profile:\n")
		sb.WriteString(t.Profile.String())
	}
	return sb.String()
}

func (e *Engine) setTrace(t Trace) {
	e.mu.Lock()
	e.lastTrace = t
	e.mu.Unlock()
}

// LastTrace returns the execution trace of the most recent completed
// query's outermost block. It is a convenience for single-threaded
// diagnostics; concurrent streams should use QueryTraced, which returns
// the trace of the specific call.
func (e *Engine) LastTrace() Trace {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastTrace
}

// Explain executes the query and returns the trace rendering together
// with the result shape. The engine is an in-memory executor, so
// explaining by doing is exact rather than estimated.
func (e *Engine) Explain(q string) (string, error) {
	res, t, err := e.QueryTraced(q)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%sresult: %d rows x %d columns\n", t.String(), len(res.Rows), len(res.Columns)), nil
}

// buildTableTraces snapshots the per-table statistics for the trace.
func (e *Engine) buildTableTraces(b *binder, filters []filterInfo) []TableTrace {
	out := make([]TableTrace, len(b.tables))
	for ti := range b.tables {
		nf := 0
		for _, f := range filters {
			if f.table == ti {
				nf++
			}
		}
		out[ti] = TableTrace{
			Binding:  b.tables[ti].binding,
			Rows:     b.tables[ti].tab.NumRows(),
			Filters:  nf,
			Estimate: e.estimateFiltered(b, ti, filters),
		}
	}
	return out
}
