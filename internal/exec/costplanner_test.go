package exec

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tpcds/internal/datagen"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

var updateGoldens = flag.Bool("update", false, "rewrite the plan-snapshot golden file")

// TestCostEqualsGreedyAllTemplates is the order-safety differential:
// the cost-based planner — join-order search, plan cache, subquery
// decorrelation, and CSE all active — must produce bit-identical
// results to the greedy baseline for every one of the 99 templates,
// serially and under the morsel executor.
func TestCostEqualsGreedyAllTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("all-99 planner differential skipped in -short")
	}
	db := datagen.New(0.0005, 7).GenerateAll()
	greedy := New(db)
	greedy.SetPlanner(plan.Greedy)
	greedy.SetParallelism(1)
	costSerial := New(db) // cost-based is the default planner
	costSerial.SetParallelism(1)
	costPar := parallelEngine(New(db))
	for _, tpl := range queries.All() {
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			t.Fatalf("query %d: %v", tpl.ID, err)
		}
		want, err := greedy.Query(text)
		if err != nil {
			t.Fatalf("query %d greedy: %v", tpl.ID, err)
		}
		got, err := costSerial.Query(text)
		if err != nil {
			t.Fatalf("query %d cost serial: %v", tpl.ID, err)
		}
		assertSameResult(t, fmt.Sprintf("query %d cost serial", tpl.ID), want, got)
		got, err = costPar.Query(text)
		if err != nil {
			t.Fatalf("query %d cost parallel: %v", tpl.ID, err)
		}
		assertSameResult(t, fmt.Sprintf("query %d cost parallel", tpl.ID), want, got)
	}
}

// TestPlanCacheConcurrentStreams hammers one engine's plan cache from
// concurrent query streams (run under -race in CI): results must match
// the serial oracle and the steady-state hit rate must clear the 90%
// the benchmark advertises.
func TestPlanCacheConcurrentStreams(t *testing.T) {
	db := datagen.New(0.0005, 7).GenerateAll()
	ids := []int{1, 7, 19, 25, 42, 52, 55, 68, 96, 98}

	texts := make([]string, 0, len(ids))
	for _, id := range ids {
		tpl, err := queries.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			t.Fatal(err)
		}
		texts = append(texts, text)
	}

	oracle := New(db)
	oracle.SetParallelism(1)
	want := make([]*Result, len(texts))
	for i, q := range texts {
		r, err := oracle.Query(q)
		if err != nil {
			t.Fatalf("query %d oracle: %v", ids[i], err)
		}
		want[i] = r
	}

	eng := parallelEngine(New(db))
	// Warm the cache serially so the concurrent phase measures steady
	// state (cold concurrent streams can all miss the same key at once).
	for i, q := range texts {
		if _, err := eng.Query(q); err != nil {
			t.Fatalf("query %d warmup: %v", ids[i], err)
		}
	}
	const streams, iters = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for i, q := range texts {
					got, err := eng.Query(q)
					if err != nil {
						errs <- fmt.Errorf("stream %d query %d: %w", stream, ids[i], err)
						return
					}
					if !reflect.DeepEqual(want[i].Rows, got.Rows) {
						errs <- fmt.Errorf("stream %d query %d: rows differ from serial oracle", stream, ids[i])
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits, misses := eng.PlanCacheStats()
	if hits+misses == 0 {
		t.Fatal("plan cache never consulted")
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.9 {
		t.Fatalf("plan cache hit rate %.3f (hits %d, misses %d), want >= 0.90", rate, hits, misses)
	}
}

// TestPlanCacheInvalidation: maintenance on a dependency table must
// evict cached plans so the next execution replans against fresh
// statistics.
func TestPlanCacheInvalidation(t *testing.T) {
	db := randDB(3, 200, 10)
	eng := New(db)
	eng.SetParallelism(1)
	const q = `SELECT d_s, COUNT(*) c FROM f, d WHERE f_k = d_k GROUP BY d_s`
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	if hits, _ := eng.PlanCacheStats(); hits == 0 {
		t.Fatal("repeated query did not hit the plan cache")
	}
	eng.InvalidateIndexes("d")
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	_, misses := eng.PlanCacheStats()
	if misses < 2 {
		t.Fatalf("invalidation did not force a replan: %d misses", misses)
	}
}

// TestDecorrelationAndCSEObservable checks the rewrites actually fire
// and stay result-neutral: an IN-subquery decorrelates under the cost
// planner, a repeated scalar subquery is answered by the CSE memo, and
// both match the greedy (rewrite-free) execution bit for bit.
func TestDecorrelationAndCSEObservable(t *testing.T) {
	db := randDB(11, 300, 12)
	greedy := New(db)
	greedy.SetPlanner(plan.Greedy)
	greedy.SetParallelism(1)
	cost := New(db)
	cost.SetParallelism(1)

	q := `SELECT f_o FROM f WHERE f_k IN (SELECT d_k FROM d WHERE d_g < 3) ORDER BY f_o`
	want, err := greedy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, tr, err := cost.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Decorrelated != 1 {
		t.Fatalf("Decorrelated = %d, want 1\n%s", tr.Decorrelated, tr.String())
	}
	assertSameResult(t, "decorrelated IN", want, got)

	q = `SELECT COUNT(*) c FROM f WHERE f_m > (SELECT AVG(f_m) a FROM f) AND f_v > (SELECT AVG(f_m) a FROM f)`
	want, err = greedy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, tr, err = cost.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CSEHits != 1 {
		t.Fatalf("CSEHits = %d, want 1\n%s", tr.CSEHits, tr.String())
	}
	assertSameResult(t, "CSE scalar subquery", want, got)
}

// TestPlanSnapshotsAllTemplates locks the cost planner's decisions for
// every template into a golden file: physical strategy, plan source,
// join order, and estimated base cardinality. Any change to the cost
// model, statistics, or search shows up as a reviewable diff
// (regenerate with `go test ./internal/exec -run TestPlanSnapshots -update`).
func TestPlanSnapshotsAllTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("all-99 plan snapshot skipped in -short")
	}
	db := datagen.New(0.0005, 7).GenerateAll()
	eng := New(db)
	eng.SetParallelism(1)
	var sb strings.Builder
	for _, tpl := range queries.All() {
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
		if err != nil {
			t.Fatalf("query %d: %v", tpl.ID, err)
		}
		_, tr, err := eng.QueryTraced(text)
		if err != nil {
			t.Fatalf("query %d: %v", tpl.ID, err)
		}
		fmt.Fprintf(&sb, "q%02d strategy=%s source=%s est=%.0f order=%s\n",
			tpl.ID, tr.Strategy, tr.PlanSource, tr.EstBaseRows, strings.Join(tr.JoinOrder, ","))
	}
	got := sb.String()

	golden := filepath.Join("testdata", "plan_snapshots.golden")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantB, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if string(wantB) != got {
		wl, gl := strings.Split(string(wantB), "\n"), strings.Split(got, "\n")
		for i := 0; i < len(wl) || i < len(gl); i++ {
			w, g := "", ""
			if i < len(wl) {
				w = wl[i]
			}
			if i < len(gl) {
				g = gl[i]
			}
			if w != g {
				t.Errorf("line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
			}
		}
	}
}
