// Morsel-driven intra-query parallelism. The paper's data generator is
// explicitly parallel (MUDD-style independent streams, §3); the
// executor matches it: every large scan, hash-join build/probe and
// aggregation is split into fixed-size morsels of rows dispatched to a
// worker pool (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014).
// Workers pull morsels from a shared counter, so stragglers cannot
// stall the pool.
//
// Determinism contract: every parallel operator produces output
// bit-identical to its serial counterpart —
//
//   - scans and probes buffer output per morsel and concatenate in
//     morsel order, which equals the serial row order;
//   - stream joins (build-on-smaller-side) collect match pairs and
//     re-emit them probe-major, so their output is bit-identical to the
//     probe join's regardless of which side was hashed;
//   - hash-table builds partition by key hash, and each partition is
//     filled by one worker walking the morsels in order, so row-id
//     lists per key match the serial build;
//   - aggregation partitions groups by key hash and each partition
//     worker visits rows in global row order, so per-group accumulation
//     order (and therefore float sums) matches the serial fold, and
//     groups are emitted in first-seen row order.
//
// The differential tests run every query in both modes and compare
// results exactly.
package exec

import (
	"sync"
	"sync/atomic"

	"tpcds/internal/obs"
	"tpcds/internal/plan"
	"tpcds/internal/storage"
)

// defaultMorselRows is the scan morsel size. ~64K rows amortizes
// scheduling overhead while leaving enough morsels for load balancing
// on warehouse-scale tables.
const defaultMorselRows = 64 * 1024

// workers resolves the engine's configured parallelism to a worker
// count (package plan owns the resolution rule).
func (e *Engine) workers() int { return plan.Parallelism(e.parallelism) }

// morselSize returns the configured morsel row count.
func (e *Engine) morselSize() int {
	if e.morselRows > 0 {
		return e.morselRows
	}
	return defaultMorselRows
}

// forEachMorsel splits [0,n) into morsels of morselRows rows and
// dispatches them to workers goroutines. Workers pull morsel indexes
// from a shared atomic counter. fn receives (worker, morsel, lo, hi).
// Returns the number of morsels each worker processed. A panic inside
// fn is re-raised on the calling goroutine so Query's recover converts
// it to an error as usual.
//
// Cancellation: workers poll the query context between morsels. When it
// fires they stop pulling work and return — the pool always drains
// cleanly, leaking no goroutines — and the coordinator re-raises the
// cancellation after the drain so the query unwinds to QueryContext.
//
// Capture contract: fn runs on multiple goroutines at once, so it may
// capture only values that are immutable after construction,
// per-worker-owned slots (counts[worker]-style), or lock-protected
// state. dslint's sharecap rule checks every closure passed here.
func forEachMorsel(qc *qctx, workers, n, morselRows int, fn func(worker, morsel, lo, hi int)) []int {
	numMorsels := (n + morselRows - 1) / morselRows
	if workers > numMorsels {
		workers = numMorsels
	}
	if workers < 1 {
		workers = 1
	}
	counts := make([]int, workers)
	// The operator span is captured once by the coordinator; workers
	// parent their per-morsel spans under it (span creation is
	// goroutine-safe, and the capture happens-before every spawn).
	opsp := qc.opSpan()
	if workers == 1 {
		for m := 0; m < numMorsels; m++ {
			qc.checkNow()
			lo := m * morselRows
			hi := lo + morselRows
			if hi > n {
				hi = n
			}
			runMorsel(qc, opsp, 0, m, lo, hi, fn)
			counts[0]++
		}
		qc.opMorsels(int64(numMorsels))
		return counts
	}
	// Ownership: this coordinator goroutine owns every worker it spawns
	// below — wg.Add happens before each spawn, each worker's first
	// defer is wg.Done, and the unconditional wg.Wait joins them all
	// before forEachMorsel returns, so no goroutine outlives the call.
	// panicMu guards only panicVal (first worker panic wins); it is
	// held for two statements and never across fn or a channel op.
	// counts needs no lock: counts[worker] is written by exactly one
	// worker, and wg.Wait orders those writes before the read below.
	var next atomic.Int64
	var panicMu sync.Mutex
	var panicVal any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for !qc.done() {
				m := int(next.Add(1)) - 1
				if m >= numMorsels {
					return
				}
				lo := m * morselRows
				hi := lo + morselRows
				if hi > n {
					hi = n
				}
				runMorsel(qc, opsp, worker, m, lo, hi, fn)
				counts[worker]++
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		//lint:ignore panics re-raising the worker's panic on the coordinator preserves the boundary recover contract
		panic(panicVal)
	}
	qc.checkNow()
	// Fold the morsel count into the current operator's profile node.
	// Per-worker counts are summed after the barrier on the coordinator,
	// so the aggregate is the same whatever the worker schedule was.
	total := 0
	for _, c := range counts {
		total += c
	}
	qc.opMorsels(int64(total))
	return counts
}

// runMorsel executes one morsel under its observability span and
// counter. Safe from worker goroutines. A panic inside fn leaves the
// morsel span unfinished, which the tracer simply never exports. With
// tracing and metrics disabled this adds two nil checks per morsel.
func runMorsel(qc *qctx, opsp *obs.Span, worker, m, lo, hi int, fn func(worker, morsel, lo, hi int)) {
	qc.countMorsel()
	if opsp == nil {
		fn(worker, m, lo, hi)
		return
	}
	// Lane scheme: morsel lanes nest under the query's lane (stream
	// tid S becomes worker lanes S*100+1..S*100+workers), so a Chrome
	// trace shows each stream's workers as adjacent tracks.
	msp := opsp.ChildTID("morsel", opsp.TID()*100+worker+1)
	msp.SetAttrInt("worker", int64(worker))
	msp.SetAttrInt("morsel", int64(m))
	msp.SetAttrInt("rows", int64(hi-lo))
	fn(worker, m, lo, hi)
	msp.End()
}

// parallelFor runs fn(p) for every p in [0,workers) on its own
// goroutine and waits; the first panic is re-raised on the caller.
// fn's captures are held to the same sharecap-checked contract as
// forEachMorsel's: immutable, per-worker-owned, or lock-protected.
func parallelFor(workers int, fn func(p int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	// Same ownership discipline as forEachMorsel: the caller joins every
	// spawned goroutine via wg.Wait before returning, and panicMu guards
	// only the two-statement first-panic election.
	var panicMu sync.Mutex
	var panicVal any
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			fn(p)
		}(p)
	}
	wg.Wait()
	if panicVal != nil {
		//lint:ignore panics re-raising the worker's panic on the coordinator preserves the boundary recover contract
		panic(panicVal)
	}
}

// concatRows flattens per-morsel output buffers in morsel order.
func concatRows(outs [][][]storage.Value) [][]storage.Value {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([][]storage.Value, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// partOf hashes a group/join key to a partition (FNV-1a; must be
// deterministic across runs, so no seeded maphash).
func partOf(key string, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(parts))
}

// scanFiltered materializes table ti's rows surviving its local filters
// as full-width rows — the parallel counterpart of filteredRows. Morsel
// outputs concatenate in morsel order, matching the serial scan.
func (e *Engine) scanFiltered(b *binder, ti int, filters []filterInfo, tr *Trace) [][]storage.Value {
	inst := &b.tables[ti]
	n := inst.tab.NumRows()
	sp := b.qc.startOp("scan", inst.binding)
	b.qc.opRowsIn(sp, int64(n))
	if b.qc.profiling() {
		b.qc.opEst(e.estimateFiltered(b, ti, filters))
	}
	defer b.qc.endOp(sp)
	workers := e.workers()
	morsel := e.morselSize()
	if workers <= 1 || n <= morsel {
		rows := b.filteredRows(ti, filters)
		b.qc.opRowsOut(sp, int64(len(rows)))
		return rows
	}
	b.qc.countScan(n)
	numMorsels := (n + morsel - 1) / morsel
	outs := make([][][]storage.Value, numMorsels)
	var counts []int
	if e.vectorized {
		// The filter is compiled once by the coordinator; kernels close
		// over immutable column vectors only, so morsel workers share it.
		// Each scanRange call owns its scratch buffers.
		tf := b.compileFilter(ti, filters)
		batch := e.batchSize()
		counts = forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
			var keep [][]storage.Value
			tf.scanRange(b.qc, batch, lo, hi, func(sel []int32) {
				keep = materializeSel(tf.readers, b.total, sel, keep)
			})
			outs[m] = keep
		})
	} else {
		preds := tablePreds(ti, filters)
		cols := b.usedCols(ti)
		counts = forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
			row := make([]storage.Value, b.total)
			var keep [][]storage.Value
			for r := lo; r < hi; r++ {
				for _, c := range cols {
					row[inst.offset+c] = inst.tab.Get(r, c)
				}
				ok := true
				for _, p := range preds {
					if !truthy(p.eval(row)) {
						ok = false
						break
					}
				}
				if ok {
					cp := make([]storage.Value, b.total)
					copy(cp, row)
					keep = append(keep, cp)
				}
			}
			outs[m] = keep
		})
	}
	tr.addWork(counts)
	rows := concatRows(outs)
	b.qc.opRowsOut(sp, int64(len(rows)))
	return rows
}

// hashTable is a join build side: base-table row ids keyed by join key,
// partitioned by key hash when built in parallel. Within a partition,
// row ids appear in base-table row order — exactly what the serial
// build produces — so probe output is identical either way. Exactly one
// of parts/iparts is non-nil: iparts is the raw-int64 fast path used
// when both join sides are a single integer-class column (vectorized
// mode), skipping GroupKey string construction entirely.
type hashTable struct {
	parts  []map[string][]int32
	iparts []map[int64][]int32
}

func (h *hashTable) lookup(key string) []int32 {
	return h.parts[partOf(key, len(h.parts))][key]
}

func (h *hashTable) lookupInt(k int64) []int32 {
	return h.iparts[partOfInt(k, len(h.iparts))][k]
}

// buildEntry is one qualifying build-side row awaiting partitioning.
// ikey carries the key on the int64 fast path, key otherwise.
type buildEntry struct {
	r    int32
	ikey int64
	key  string
}

// buildEntryBytes approximates the in-memory size of one buildEntry
// (row id + int key + string header) for scratch accounting; the
// profile reports accounted scratch, not a byte-exact heap measurement.
const buildEntryBytes = 32

// builtRows counts the rows indexed by a hash table — the build
// operator's rows_out. One map walk per partition; callers pay it only
// when observability is enabled.
func builtRows(ht *hashTable) int64 {
	var n int64
	for _, p := range ht.parts {
		for _, ids := range p {
			n += int64(len(ids))
		}
	}
	for _, p := range ht.iparts {
		for _, ids := range p {
			n += int64(len(ids))
		}
	}
	return n
}

// buildHashTable indexes the filtered rows of table ti by the build key
// columns. Large tables use a two-phase partitioned build: a parallel
// morsel scan collects (row id, key) pairs, then one worker per
// partition inserts its share walking the morsels in global row order.
// probe is consulted only to decide the key representation: a single
// integer-class column pair keys on raw int64 values (GroupKey keeps
// int and date keys disjoint, so the raw fast path is only taken when
// both sides share a class).
func (e *Engine) buildHashTable(b *binder, ti int, filters []filterInfo, probe, build []*colExpr, tr *Trace) *hashTable {
	inst := &b.tables[ti]
	n := inst.tab.NumRows()
	sp := b.qc.startOp("build", inst.binding)
	b.qc.opRowsIn(sp, int64(n))
	if b.qc.profiling() {
		b.qc.opEst(e.estimateFiltered(b, ti, filters))
	}
	defer b.qc.endOp(sp)
	useInt := e.vectorized && intJoinKey(probe, build)
	workers := e.workers()
	morsel := e.morselSize()
	if workers <= 1 || n <= morsel {
		var ht *hashTable
		if useInt {
			ht = &hashTable{iparts: []map[int64][]int32{b.buildHashInt(ti, filters, build[0])}}
		} else {
			ht = &hashTable{parts: []map[string][]int32{b.buildHash(ti, filters, build)}}
		}
		if sp != nil || b.qc.profiling() {
			// Summing the per-key row lists costs one map walk, paid only
			// when some observer will see the number.
			b.qc.opRowsOut(sp, builtRows(ht))
		}
		return ht
	}
	b.qc.countScan(n)
	numMorsels := (n + morsel - 1) / morsel
	entries := make([][]buildEntry, numMorsels)
	var counts []int
	if e.vectorized {
		tf := b.compileFilter(ti, filters)
		kcs := b.keyCols(ti, build)
		batch := e.batchSize()
		counts = forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
			var keep []buildEntry
			var buf []byte
			tf.scanRange(b.qc, batch, lo, hi, func(sel []int32) {
				for _, r := range sel {
					if useInt {
						if kcs[0].nulls[r] {
							continue
						}
						keep = append(keep, buildEntry{r: r, ikey: kcs[0].ints[r]})
						continue
					}
					key, ok := appendVecKey(kcs, r, buf[:0])
					buf = key
					if ok {
						keep = append(keep, buildEntry{r: r, key: string(key)})
					}
				}
			})
			entries[m] = keep
		})
	} else {
		preds := tablePreds(ti, filters)
		cols := b.usedCols(ti)
		counts = forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
			row := make([]storage.Value, b.total)
			var keep []buildEntry
			for r := lo; r < hi; r++ {
				for _, c := range cols {
					row[inst.offset+c] = inst.tab.Get(r, c)
				}
				ok := true
				for _, p := range preds {
					if !truthy(p.eval(row)) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if key, ok := keyOf(row, build); ok {
					keep = append(keep, buildEntry{r: int32(r), key: key})
				}
			}
			entries[m] = keep
		})
	}
	tr.addWork(counts)
	built := 0
	for _, chunk := range entries {
		built += len(chunk)
	}
	b.qc.countBuild(built)
	b.qc.opRowsOut(sp, int64(built))
	// The (row id, key) staging entries are the build's dominant scratch:
	// they are dropped once the partition insert below completes.
	b.qc.growScratch(int64(built) * buildEntryBytes)
	defer b.qc.shrinkScratch(int64(built) * buildEntryBytes)
	if useInt {
		ht := &hashTable{iparts: make([]map[int64][]int32, workers)}
		parallelFor(workers, func(p int) {
			part := map[int64][]int32{}
			for ci, chunk := range entries {
				if ci%64 == 0 {
					b.qc.checkNow()
				}
				for _, en := range chunk {
					if partOfInt(en.ikey, workers) == p {
						part[en.ikey] = append(part[en.ikey], en.r)
					}
				}
			}
			ht.iparts[p] = part
		})
		return ht
	}
	ht := &hashTable{parts: make([]map[string][]int32, workers)}
	parallelFor(workers, func(p int) {
		part := map[string][]int32{}
		for ci, chunk := range entries {
			if ci%64 == 0 {
				b.qc.checkNow()
			}
			for _, en := range chunk {
				if partOf(en.key, workers) == p {
					part[en.key] = append(part[en.key], en.r)
				}
			}
		}
		ht.parts[p] = part
	})
	return ht
}

// probeJoin probes ht with every current row, emitting joined rows in
// the serial iteration order (per-morsel buffers concatenated in
// order). stepEst is the planner's output-cardinality estimate for the
// join step (negative when the active planner produced none).
func (e *Engine) probeJoin(b *binder, current [][]storage.Value, ti int, probe []*colExpr, ht *hashTable, stepEst float64, tr *Trace) [][]storage.Value {
	n := len(current)
	sp := b.qc.startOp("probe", b.tables[ti].binding)
	b.qc.opRowsIn(sp, int64(n))
	if stepEst >= 0 {
		b.qc.opEst(stepEst)
	}
	defer b.qc.endOp(sp)
	workers := e.workers()
	morsel := e.morselSize()
	// probeOne holds no mutable state: morsel workers share it safely.
	probeOne := func(l []storage.Value, out [][]storage.Value) [][]storage.Value {
		var matches []int32
		if ht.iparts != nil {
			k, ok := rowIntKey(l, probe[0])
			if !ok {
				return out
			}
			matches = ht.lookupInt(k)
		} else {
			key, ok := keyOf(l, probe)
			if !ok {
				return out
			}
			matches = ht.lookup(key)
		}
		for _, r := range matches {
			m := make([]storage.Value, b.total)
			copy(m, l)
			b.fillSpan(ti, r, m)
			out = append(out, m)
		}
		return out
	}
	if workers <= 1 || n <= morsel {
		var out [][]storage.Value
		for _, l := range current {
			b.qc.tick()
			out = probeOne(l, out)
		}
		b.qc.opRowsOut(sp, int64(len(out)))
		return out
	}
	numMorsels := (n + morsel - 1) / morsel
	outs := make([][][]storage.Value, numMorsels)
	counts := forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
		var out [][]storage.Value
		for _, l := range current[lo:hi] {
			out = probeOne(l, out)
		}
		outs[m] = out
	})
	tr.addWork(counts)
	rows := concatRows(outs)
	b.qc.opRowsOut(sp, int64(len(rows)))
	return rows
}

// matchPair records one join match during a stream join: current row
// li joins table row r.
type matchPair struct {
	li, r int32
}

// streamJoin hashes the (smaller) current intermediate result and
// streams the rows of table ti past it — the build-on-smaller-side
// branch of the hash pipeline. The streamed scan is morsel-parallel.
//
// Output order is probe-major — current rows ascending, matching table
// rows ascending within each — exactly the order probeJoin produces.
// That makes the build-side choice (and the runtime threshold behind
// it) invisible in the output, which the planner's join-order search
// depends on: any plan property may vary with estimates except row
// order. The scan phase therefore collects (li, r) match pairs
// (globally r-ascending after morsel-order concatenation), buckets
// them by li (preserving r order), and materializes bucket by bucket.
func (e *Engine) streamJoin(b *binder, current [][]storage.Value, ti int, probe, build []*colExpr, filters []filterInfo, stepEst float64, tr *Trace) [][]storage.Value {
	sp := b.qc.startOp("stream", b.tables[ti].binding)
	b.qc.opRowsIn(sp, int64(b.tables[ti].tab.NumRows()))
	if stepEst >= 0 {
		b.qc.opEst(stepEst)
	}
	defer b.qc.endOp(sp)
	b.qc.countBuild(len(current))
	useInt := e.vectorized && intJoinKey(probe, build)
	var htCur map[string][]int32
	var htCurI map[int64][]int32
	if useInt {
		htCurI = make(map[int64][]int32, len(current))
		for li, l := range current {
			b.qc.tick()
			if k, ok := rowIntKey(l, probe[0]); ok {
				htCurI[k] = append(htCurI[k], int32(li))
			}
		}
	} else {
		htCur = make(map[string][]int32, len(current))
		for li, l := range current {
			b.qc.tick()
			if key, ok := keyOf(l, probe); ok {
				htCur[key] = append(htCur[key], int32(li))
			}
		}
	}
	inst := &b.tables[ti]
	n := inst.tab.NumRows()
	workers := e.workers()
	morsel := e.morselSize()
	match := func(row []storage.Value, r int32, out []matchPair) []matchPair {
		var lis []int32
		if useInt {
			k, ok := rowIntKey(row, build[0])
			if !ok {
				return out
			}
			lis = htCurI[k]
		} else {
			key, ok := keyOf(row, build)
			if !ok {
				return out
			}
			lis = htCur[key]
		}
		for _, li := range lis {
			out = append(out, matchPair{li: li, r: r})
		}
		return out
	}

	// Phase 1: scan table ti, collecting match pairs in table-row order.
	var pairs []matchPair
	if workers <= 1 || n <= morsel {
		b.forEachFiltered(ti, filters, func(r int, row []storage.Value) {
			pairs = match(row, int32(r), pairs)
		})
	} else {
		b.qc.countScan(n)
		numMorsels := (n + morsel - 1) / morsel
		chunks := make([][]matchPair, numMorsels)
		var counts []int
		if e.vectorized {
			tf := b.compileFilter(ti, filters)
			kcs := b.keyCols(ti, build)
			batch := e.batchSize()
			counts = forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
				var out []matchPair
				var buf []byte
				tf.scanRange(b.qc, batch, lo, hi, func(sel []int32) {
					// Keys come straight off the vectors; survivors that
					// probe nothing never materialize at all.
					for _, r := range sel {
						var lis []int32
						if useInt {
							if kcs[0].nulls[r] {
								continue
							}
							lis = htCurI[kcs[0].ints[r]]
						} else {
							key, ok := appendVecKey(kcs, r, buf[:0])
							buf = key
							if !ok {
								continue
							}
							lis = htCur[string(key)]
						}
						for _, li := range lis {
							out = append(out, matchPair{li: li, r: r})
						}
					}
				})
				chunks[m] = out
			})
		} else {
			preds := tablePreds(ti, filters)
			cols := b.usedCols(ti)
			counts = forEachMorsel(b.qc, workers, n, morsel, func(_, m, lo, hi int) {
				row := make([]storage.Value, b.total)
				var out []matchPair
				for r := lo; r < hi; r++ {
					for _, c := range cols {
						row[inst.offset+c] = inst.tab.Get(r, c)
					}
					ok := true
					for _, p := range preds {
						if !truthy(p.eval(row)) {
							ok = false
							break
						}
					}
					if ok {
						out = match(row, int32(r), out)
					}
				}
				chunks[m] = out
			})
		}
		tr.addWork(counts)
		total := 0
		for _, c := range chunks {
			total += len(c)
		}
		pairs = make([]matchPair, 0, total)
		for _, c := range chunks {
			pairs = append(pairs, c...)
		}
	}

	// Phase 2: bucket pairs by current row. Pairs arrive r-ascending, so
	// each bucket stays r-ascending — the probe-major invariant. The
	// pair list is the stream join's dominant scratch; it is dropped
	// after materialization.
	const matchPairBytes = 8
	b.qc.growScratch(int64(len(pairs)) * matchPairBytes)
	defer b.qc.shrinkScratch(int64(len(pairs)) * matchPairBytes)
	buckets := make([][]int32, len(current))
	for _, p := range pairs {
		b.qc.tick()
		buckets[p.li] = append(buckets[p.li], p.r)
	}

	// Phase 3: materialize bucket by bucket (current rows ascending),
	// morsel-parallel over current with per-morsel buffers concatenated
	// in order.
	emitRange := func(lo, hi int, out [][]storage.Value) [][]storage.Value {
		for li := lo; li < hi; li++ {
			for _, r := range buckets[li] {
				m := make([]storage.Value, b.total)
				copy(m, current[li])
				b.fillSpan(ti, r, m)
				out = append(out, m)
			}
		}
		return out
	}
	nc := len(current)
	var rows [][]storage.Value
	if workers <= 1 || nc <= morsel {
		var out [][]storage.Value
		for li := 0; li < nc; li++ {
			b.qc.tick()
			out = emitRange(li, li+1, out)
		}
		rows = out
	} else {
		numMorsels := (nc + morsel - 1) / morsel
		outs := make([][][]storage.Value, numMorsels)
		counts := forEachMorsel(b.qc, workers, nc, morsel, func(_, m, lo, hi int) {
			outs[m] = emitRange(lo, hi, nil)
		})
		tr.addWork(counts)
		rows = concatRows(outs)
	}
	b.qc.opRowsOut(sp, int64(len(rows)))
	return rows
}
