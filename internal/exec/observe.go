package exec

import "tpcds/internal/obs"

// execMetrics holds the engine's resolved metric handles. Handles are
// resolved once in SetMetrics so the query hot path never touches the
// registry's lookup lock; all handles are nil-safe, so a nil
// execMetrics pointer (no registry installed) and nil handles cost one
// branch each.
type execMetrics struct {
	// rowsScanned counts base-table rows examined by scans (serial and
	// morsel-parallel alike).
	rowsScanned *obs.Counter
	// buildRows counts rows inserted into hash-join build sides.
	buildRows *obs.Counter
	// morsels counts morsels dispatched to workers.
	morsels *obs.Counter
	// batches counts vectorized batches processed by the batch scanner.
	batches *obs.Counter
	// planCacheHits / planCacheMisses count cost-planner plan-cache
	// lookups (the multi-stream benchmark's hit-rate criterion reads
	// these).
	planCacheHits   *obs.Counter
	planCacheMisses *obs.Counter
	// cseHits counts subquery/CTE evaluations answered by the per-query
	// common-subexpression memo instead of re-execution.
	cseHits *obs.Counter
}

// SetMetrics installs a metrics registry on the engine; the executor
// then counts rows scanned, hash-build rows and morsels executed into
// it. nil removes the instrumentation. Not safe to call concurrently
// with queries.
func (e *Engine) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		e.em = nil
		return
	}
	e.em = &execMetrics{
		rowsScanned:     reg.Counter("exec_rows_scanned"),
		buildRows:       reg.Counter("exec_hash_build_rows"),
		morsels:         reg.Counter("exec_morsels"),
		batches:         reg.Counter("exec_batches"),
		planCacheHits:   reg.Counter("exec_plan_cache_hits"),
		planCacheMisses: reg.Counter("exec_plan_cache_misses"),
		cseHits:         reg.Counter("exec_cse_hits"),
	}
}

// countScan records base-table rows examined. Safe from any goroutine.
func (q *qctx) countScan(n int) {
	if q == nil || q.em == nil {
		return
	}
	q.em.rowsScanned.Add(int64(n))
}

// countBuild records hash-build rows. Safe from any goroutine.
func (q *qctx) countBuild(n int) {
	if q == nil || q.em == nil {
		return
	}
	q.em.buildRows.Add(int64(n))
}

// countMorsel records one dispatched morsel. Safe from any goroutine.
func (q *qctx) countMorsel() {
	if q == nil || q.em == nil {
		return
	}
	q.em.morsels.Add(1)
}

// countBatch records one vectorized batch, into both the engine
// counter and the current operator's profile node. Safe from any
// goroutine: the node pointer is published before workers spawn
// (opSpan discipline) and its batch counter is atomic.
func (q *qctx) countBatch() {
	if q == nil {
		return
	}
	q.pcur.AddBatches(1)
	if q.em == nil {
		return
	}
	q.em.batches.Add(1)
}

// countPlanCacheHit records one plan-cache hit. Coordinator only.
func (q *qctx) countPlanCacheHit() {
	if q == nil || q.em == nil {
		return
	}
	q.em.planCacheHits.Add(1)
}

// countPlanCacheMiss records one plan-cache miss. Coordinator only.
func (q *qctx) countPlanCacheMiss() {
	if q == nil || q.em == nil {
		return
	}
	q.em.planCacheMisses.Add(1)
}

// countCSEHit records one memoized subquery/CTE reuse and bumps the
// per-query counter surfaced in the trace. Coordinator only.
func (q *qctx) countCSEHit() {
	if q == nil {
		return
	}
	q.cseHits++
	if q.em == nil {
		return
	}
	q.em.cseHits.Add(1)
}
