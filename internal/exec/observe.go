package exec

import "tpcds/internal/obs"

// execMetrics holds the engine's resolved metric handles. Handles are
// resolved once in SetMetrics so the query hot path never touches the
// registry's lookup lock; all handles are nil-safe, so a nil
// execMetrics pointer (no registry installed) and nil handles cost one
// branch each.
type execMetrics struct {
	// rowsScanned counts base-table rows examined by scans (serial and
	// morsel-parallel alike).
	rowsScanned *obs.Counter
	// buildRows counts rows inserted into hash-join build sides.
	buildRows *obs.Counter
	// morsels counts morsels dispatched to workers.
	morsels *obs.Counter
	// batches counts vectorized batches processed by the batch scanner.
	batches *obs.Counter
}

// SetMetrics installs a metrics registry on the engine; the executor
// then counts rows scanned, hash-build rows and morsels executed into
// it. nil removes the instrumentation. Not safe to call concurrently
// with queries.
func (e *Engine) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		e.em = nil
		return
	}
	e.em = &execMetrics{
		rowsScanned: reg.Counter("exec_rows_scanned"),
		buildRows:   reg.Counter("exec_hash_build_rows"),
		morsels:     reg.Counter("exec_morsels"),
		batches:     reg.Counter("exec_batches"),
	}
}

// countScan records base-table rows examined. Safe from any goroutine.
func (q *qctx) countScan(n int) {
	if q == nil || q.em == nil {
		return
	}
	q.em.rowsScanned.Add(int64(n))
}

// countBuild records hash-build rows. Safe from any goroutine.
func (q *qctx) countBuild(n int) {
	if q == nil || q.em == nil {
		return
	}
	q.em.buildRows.Add(int64(n))
}

// countMorsel records one dispatched morsel. Safe from any goroutine.
func (q *qctx) countMorsel() {
	if q == nil || q.em == nil {
		return
	}
	q.em.morsels.Add(1)
}

// countBatch records one vectorized batch. Safe from any goroutine.
func (q *qctx) countBatch() {
	if q == nil || q.em == nil {
		return
	}
	q.em.batches.Add(1)
}
