package exec

import (
	"tpcds/internal/schema"
	"tpcds/internal/sql"
	"tpcds/internal/storage"
)

// colStats are the per-column statistics the load test gathers ("gather
// statistics for the test database" is part of the timed load, §5.2).
// The paper notes that un-skewed data "imposes little challenges on
// statistic collection and optimal plan generation" — skewed TPC-DS
// data makes these numbers matter, which the stats-vs-heuristics
// ablation demonstrates.
//
// valid is false for non-integer columns AND for columns with no
// non-NULL values: an all-NULL (or empty) column has no min/max, and a
// fabricated min=max=0 would feed a zero-width range into selectivity
// math. rows/nonNull are carried explicitly so callers can reason about
// null fractions.
type colStats struct {
	distinct int
	min, max int64
	nonNull  int
	rows     int // table row count at gather time
	valid    bool

	// tableID/epoch identify the exact table contents the stats were
	// gathered from (see storage.Table.Epoch). A row-count comparison is
	// not a freshness check: maintenance can delete and insert the same
	// number of rows, and two CTE materializations can share a name and
	// a row count while holding different data.
	tableID uint64
	epoch   uint64
}

// statsKey identifies a cached statistics entry. A struct key cannot
// collide the way a concatenated "name#stats#column" string can (table
// "a#stats#b" column "c" versus table "a" column "b#stats#c").
type statsKey struct {
	table  string
	column string
}

// fresh reports whether the cached entry still describes table t.
func (s colStats) fresh(t *storage.Table) bool {
	return s.tableID == t.ID() && s.epoch == t.Epoch()
}

// columnStats computes (and caches) statistics for an integer-typed
// column; valid is false for string/decimal columns and for columns
// with no non-NULL values. The qctx keeps the full-column gathering
// scan cancellable on large tables.
//
// The statsCache store below is a lock-guarded map publication, which
// dslint's pubfreeze rule tracks; it stays trivially frozen because
// colStats is an all-scalar value copy — nothing the reader gets back
// can be mutated retroactively.
func (e *Engine) columnStats(qc *qctx, t *storage.Table, col int) colStats {
	switch t.Def.Columns[col].Type {
	case schema.Identifier, schema.Integer, schema.Date:
	default:
		return colStats{}
	}
	key := statsKey{table: t.Def.Name, column: t.Def.Columns[col].Name}
	e.mu.Lock()
	if st, ok := e.statsCache[key]; ok && st.fresh(t) {
		e.mu.Unlock()
		return st
	}
	e.mu.Unlock()

	vals, nulls := t.ScanInt64(col)
	seen := make(map[int64]struct{}, 1024)
	st := colStats{rows: t.NumRows(), tableID: t.ID(), epoch: t.Epoch()}
	first := true
	for i, v := range vals {
		qc.tick()
		if nulls[i] {
			continue
		}
		st.nonNull++
		if first || v < st.min {
			st.min = v
		}
		if first || v > st.max {
			st.max = v
		}
		first = false
		seen[v] = struct{}{}
	}
	st.distinct = len(seen)
	st.valid = st.nonNull > 0
	e.mu.Lock()
	e.statsCache[key] = st
	e.mu.Unlock()
	return st
}

// uniqueKey reports whether the column is provably a unique join key:
// exact statistics show every non-NULL value distinct. NULLs never
// join, so uniqueness among non-NULL values bounds any hash probe at
// one match — the property the cost planner's order-safety proof needs
// (see DESIGN.md "Cost-based planning").
func (e *Engine) uniqueKey(qc *qctx, t *storage.Table, col int) bool {
	st := e.columnStats(qc, t, col)
	return st.valid && st.distinct == st.nonNull
}

// selHint captures the analyzable shape of a single-table predicate for
// statistics-based selectivity estimation.
type selHint struct {
	table   int
	colIdx  int // column index within the table
	kind    string
	lo, hi  int64 // for range/between shapes
	inCount int   // for IN lists
	hasVals bool  // lo/hi populated
}

// analyzeFilter extracts a selHint from the AST conjunct and its bound
// predicate, when the shape is recognizable (column-vs-literal).
func analyzeFilter(b *binder, c sql.Expr, ti int) (selHint, bool) {
	inst := &b.tables[ti]
	colIdxOf := func(e sql.Expr) (int, bool) {
		cr, ok := e.(*sql.ColRef)
		if !ok {
			return 0, false
		}
		ce, err := b.resolveColumn(cr)
		if err != nil {
			return 0, false
		}
		if ce.off < inst.offset || ce.off >= inst.offset+inst.width() {
			return 0, false
		}
		return ce.off - inst.offset, true
	}
	litInt := func(e sql.Expr) (int64, bool) {
		switch v := e.(type) {
		case *sql.Lit:
			if v.Kind == sql.LitNumber && v.IsInt {
				return v.IntVal, true
			}
			if v.Kind == sql.LitDate {
				if d, err := storage.ParseDate(v.Str); err == nil {
					return d, true
				}
			}
		}
		return 0, false
	}
	switch v := c.(type) {
	case *sql.BinOp:
		ci, ok := colIdxOf(v.L)
		if !ok {
			return selHint{}, false
		}
		lit, litOK := litInt(v.R)
		switch v.Op {
		case "=":
			if litOK {
				return selHint{table: ti, colIdx: ci, kind: "eq", lo: lit, hi: lit, hasVals: true}, true
			}
			return selHint{table: ti, colIdx: ci, kind: "eq"}, true
		case "<", "<=":
			if litOK {
				hi := lit
				if v.Op == "<" {
					hi-- // integer domains: strict bound is inclusive-1
				}
				return selHint{table: ti, colIdx: ci, kind: "lt", hi: hi, hasVals: true}, true
			}
		case ">", ">=":
			if litOK {
				lo := lit
				if v.Op == ">" {
					lo++
				}
				return selHint{table: ti, colIdx: ci, kind: "gt", lo: lo, hasVals: true}, true
			}
		}
	case *sql.Between:
		ci, ok := colIdxOf(v.X)
		if !ok || v.Not {
			return selHint{}, false
		}
		lo, loOK := litInt(v.Lo)
		hi, hiOK := litInt(v.Hi)
		if loOK && hiOK {
			return selHint{table: ti, colIdx: ci, kind: "between", lo: lo, hi: hi, hasVals: true}, true
		}
	case *sql.In:
		ci, ok := colIdxOf(v.X)
		if !ok || v.Not || v.Sub != nil {
			return selHint{}, false
		}
		return selHint{table: ti, colIdx: ci, kind: "in", inCount: len(v.List)}, true
	}
	return selHint{}, false
}

// hintSelectivity estimates a predicate's selectivity from column
// statistics, falling back to 1 (caller applies the heuristic instead)
// when statistics don't apply.
func (e *Engine) hintSelectivity(b *binder, h selHint) (float64, bool) {
	inst := &b.tables[h.table]
	st := e.columnStats(b.qc, inst.tab, h.colIdx)
	if !st.valid || st.nonNull == 0 {
		return 0, false
	}
	span := float64(st.max-st.min) + 1
	switch h.kind {
	case "eq":
		if st.distinct == 0 {
			return 0, false
		}
		sel := 1 / float64(st.distinct)
		if h.hasVals && (h.lo < st.min || h.lo > st.max) {
			return 0, true // literal outside the domain: empty
		}
		return sel, true
	case "in":
		if st.distinct == 0 {
			return 0, false
		}
		sel := float64(h.inCount) / float64(st.distinct)
		if sel > 1 {
			sel = 1
		}
		return sel, true
	case "between":
		if !h.hasVals || span <= 0 {
			return 0, false
		}
		lo, hi := h.lo, h.hi
		if lo < st.min {
			lo = st.min
		}
		if hi > st.max {
			hi = st.max
		}
		if hi < lo {
			return 0, true
		}
		return float64(hi-lo+1) / span, true
	case "lt":
		if !h.hasVals || span <= 0 {
			return 0, false
		}
		if h.hi < st.min {
			return 0, true
		}
		if h.hi >= st.max {
			return 1, true
		}
		return float64(h.hi-st.min+1) / span, true
	case "gt":
		if !h.hasVals || span <= 0 {
			return 0, false
		}
		if h.lo > st.max {
			return 0, true
		}
		if h.lo <= st.min {
			return 1, true
		}
		return float64(st.max-h.lo+1) / span, true
	}
	return 0, false
}
