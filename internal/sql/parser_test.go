package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestParseQuery52(t *testing.T) {
	// Figure 6 of the paper, verbatim (modulo whitespace).
	q := `SELECT dt.d_year, item.i_brand_id brand_id, item.i_brand brand,
	 SUM(ss_ext_sales_price) ext_price
	FROM date_dim dt, store_sales, item
	WHERE dt.d_date_sk = store_sales.ss_sold_date_sk
	  AND store_sales.ss_item_sk = item.i_item_sk
	  AND item.i_manager_id = 1
	  AND dt.d_moy = 11
	  AND dt.d_year = 2000
	GROUP BY dt.d_year, item.i_brand, item.i_brand_id
	ORDER BY dt.d_year, ext_price DESC, brand_id;`
	s := mustParse(t, q)
	if len(s.Items) != 4 {
		t.Errorf("select items = %d, want 4", len(s.Items))
	}
	if s.Items[1].Alias != "brand_id" {
		t.Errorf("item 1 alias = %q", s.Items[1].Alias)
	}
	if len(s.From) != 3 || s.From[0].Binding() != "dt" || s.From[1].Binding() != "store_sales" {
		t.Errorf("FROM = %+v", s.From)
	}
	if len(s.GroupBy) != 3 || len(s.OrderBy) != 3 {
		t.Errorf("group by %d order by %d", len(s.GroupBy), len(s.OrderBy))
	}
	if !s.OrderBy[1].Desc || s.OrderBy[0].Desc {
		t.Error("ORDER BY direction flags wrong")
	}
}

func TestParseQuery20(t *testing.T) {
	// Figure 7 of the paper: window function over a partitioned SUM.
	q := `SELECT i_item_desc, i_category, i_class, i_current_price,
	 SUM(cs_ext_sales_price) AS itemrevenue,
	 SUM(cs_ext_sales_price)*100/SUM(SUM(cs_ext_sales_price)) OVER (PARTITION BY i_class) AS revenueratio
	FROM catalog_sales, item, date_dim
	WHERE cs_item_sk = i_item_sk
	  AND i_category IN ('Sports', 'Books', 'Home')
	  AND cs_sold_date_sk = d_date_sk
	  AND d_date BETWEEN CAST('1999-02-21' AS DATE) AND CAST('1999-03-21' AS DATE)
	GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
	ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio`
	s := mustParse(t, q)
	if len(s.Items) != 6 {
		t.Fatalf("select items = %d, want 6", len(s.Items))
	}
	// The 6th item must contain a window expression.
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Window:
			found = true
			if len(v.PartitionBy) != 1 || v.PartitionBy[0].Render() != "i_class" {
				t.Errorf("window partition = %v", v.PartitionBy)
			}
		case *BinOp:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(s.Items[5].Expr)
	if !found {
		t.Error("window function not parsed")
	}
	if len(s.GroupBy) != 5 {
		t.Errorf("group by %d, want 5", len(s.GroupBy))
	}
}

func TestParseJoinOn(t *testing.T) {
	s := mustParse(t, `SELECT a.x FROM t1 a JOIN t2 b ON a.k = b.k JOIN t3 c ON b.j = c.j WHERE a.y > 5`)
	if len(s.From) != 3 {
		t.Fatalf("FROM = %d tables", len(s.From))
	}
	// ON conditions folded into WHERE: ((a.k=b.k AND b.j=c.j) AND a.y>5).
	r := s.Where.Render()
	for _, want := range []string{"a.k = b.k", "b.j = c.j", "a.y > 5"} {
		if !strings.Contains(r, want) {
			t.Errorf("WHERE %q missing %q", r, want)
		}
	}
}

func TestParseLeftJoin(t *testing.T) {
	s := mustParse(t, `SELECT a.x FROM t1 a LEFT OUTER JOIN t2 b ON a.k = b.k`)
	if len(s.From) != 2 || !s.From[1].LeftJoin || s.From[1].On == nil {
		t.Fatalf("LEFT JOIN not captured: %+v", s.From)
	}
	if s.Where != nil {
		t.Error("LEFT JOIN condition must not leak into WHERE")
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT x FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (1,2,3)
	 AND c LIKE 'ab%' AND d IS NOT NULL AND NOT (e = 1 OR f < 2.5)`)
	r := s.Where.Render()
	for _, want := range []string{"BETWEEN", "NOT IN", "LIKE 'ab%'", "IS NOT NULL", "(NOT"} {
		if !strings.Contains(r, want) {
			t.Errorf("WHERE %q missing %q", r, want)
		}
	}
}

func TestParseInSubquery(t *testing.T) {
	s := mustParse(t, `SELECT x FROM t WHERE k IN (SELECT k FROM u WHERE v = 1)`)
	in, ok := s.Where.(*In)
	if !ok || in.Sub == nil {
		t.Fatalf("IN subquery not parsed: %T", s.Where)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	s := mustParse(t, `SELECT x FROM t WHERE v > (SELECT AVG(v) FROM t)`)
	cmp, ok := s.Where.(*BinOp)
	if !ok {
		t.Fatalf("WHERE is %T", s.Where)
	}
	if _, ok := cmp.R.(*SubQuery); !ok {
		t.Fatalf("right side is %T, want SubQuery", cmp.R)
	}
}

func TestParseCase(t *testing.T) {
	s := mustParse(t, `SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END lbl FROM t`)
	c, ok := s.Items[0].Expr.(*CaseExpr)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("CASE parse: %+v", s.Items[0].Expr)
	}
	if s.Items[0].Alias != "lbl" {
		t.Error("implicit alias lost")
	}
}

func TestParseWith(t *testing.T) {
	s := mustParse(t, `WITH top AS (SELECT k, SUM(v) s FROM t GROUP BY k)
	 SELECT k FROM top WHERE s > 100 ORDER BY k LIMIT 10`)
	if len(s.With) != 1 || s.With[0].Name != "top" {
		t.Fatalf("WITH = %+v", s.With)
	}
	if s.Limit != 10 {
		t.Errorf("LIMIT = %d", s.Limit)
	}
}

func TestParseUnionAll(t *testing.T) {
	s := mustParse(t, `SELECT x FROM a UNION ALL SELECT x FROM b UNION ALL SELECT x FROM c ORDER BY x`)
	n := 0
	for cur := s; cur != nil; cur = cur.UnionAll {
		n++
	}
	if n != 3 {
		t.Fatalf("union chain length = %d, want 3", n)
	}
	// The trailing ORDER BY belongs to the head (whole result).
	if len(s.OrderBy) != 1 {
		t.Errorf("head ORDER BY = %d items", len(s.OrderBy))
	}
}

func TestParseDistinctAndCountStar(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT a, COUNT(*) c, COUNT(DISTINCT b) FROM t GROUP BY a`)
	if !s.Distinct {
		t.Error("DISTINCT lost")
	}
	fc := s.Items[1].Expr.(*FuncCall)
	if !fc.Star {
		t.Error("COUNT(*) star lost")
	}
	fc2 := s.Items[2].Expr.(*FuncCall)
	if !fc2.Distinct {
		t.Error("COUNT(DISTINCT) lost")
	}
}

func TestParseDateLiteral(t *testing.T) {
	s := mustParse(t, `SELECT x FROM t WHERE d BETWEEN DATE '1999-02-21' AND DATE '1999-03-21'`)
	b := s.Where.(*Between)
	lo := b.Lo.(*Lit)
	if lo.Kind != LitDate || lo.Str != "1999-02-21" {
		t.Errorf("date literal = %+v", lo)
	}
}

func TestParseArithPrecedence(t *testing.T) {
	s := mustParse(t, `SELECT 1 + 2 * 3 - 4 / 2 FROM t`)
	if got := s.Items[0].Expr.Render(); got != "((1 + (2 * 3)) - (4 / 2))" {
		t.Errorf("precedence render = %s", got)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	s := mustParse(t, `SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	top := s.Where.(*BinOp)
	if top.Op != "OR" {
		t.Fatalf("top op = %s, want OR (AND binds tighter)", top.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t GROUP",
		"SELECT x FROM t LIMIT -1",
		"SELECT x FROM t WHERE a BETWEEN 1",
		"SELECT x FROM t WHERE a IN",
		"SELECT x FROM t UNION SELECT x FROM u", // bare UNION unsupported
		"SELECT x FROM t WHERE a LIKE b",        // LIKE needs a literal
		"SELECT x + OVER (PARTITION BY y) FROM t",
		"SELECT CASE END FROM t",
		"SELECT x FROM t; SELECT y FROM u",
		"SELECT 'unterminated FROM t",
		"SELECT x FROM t WHERE a ~ b",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", q)
		}
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s' -- comment\n FROM t WHERE x <> 1.5")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"SELECT", "a", ".", "b", "it's", "FROM", "<>", "1.5"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lex output %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "comment") {
		t.Error("comment not stripped")
	}
}

func TestRenderRoundTrips(t *testing.T) {
	// Render of a parsed expression should itself be parseable.
	exprs := []string{
		`SELECT a + b * c FROM t`,
		`SELECT x FROM t WHERE a BETWEEN 1 AND 2 OR c IS NULL`,
		`SELECT CASE WHEN a = 1 THEN 2 ELSE 3 END FROM t`,
		`SELECT SUM(a) OVER (PARTITION BY b, c) FROM t`,
	}
	for _, q := range exprs {
		s := mustParse(t, q)
		r := "SELECT " + s.Items[0].Expr.Render() + " FROM t"
		if _, err := Parse(r); err != nil {
			t.Errorf("re-parse of rendered %q failed: %v", r, err)
		}
	}
}

func TestParseRollup(t *testing.T) {
	s := mustParse(t, `SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP(a, b) ORDER BY a`)
	if !s.Rollup {
		t.Fatal("ROLLUP flag not set")
	}
	if len(s.GroupBy) != 2 {
		t.Fatalf("rollup group-by count = %d", len(s.GroupBy))
	}
	plain := mustParse(t, `SELECT a, SUM(c) FROM t GROUP BY a`)
	if plain.Rollup {
		t.Fatal("plain GROUP BY must not set Rollup")
	}
	for _, bad := range []string{
		`SELECT a FROM t GROUP BY ROLLUP a`, // missing parens
		`SELECT a FROM t GROUP BY ROLLUP(a`, // unclosed
		`SELECT a FROM t GROUP BY ROLLUP()`, // empty
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%s) should fail", bad)
		}
	}
}
