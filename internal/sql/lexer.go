// Package sql implements the SQL front end of the engine: a lexer,
// recursive-descent parser and AST for the SQL-99 subset exercised by
// the TPC-DS query workload (§4.1) — multi-way joins, rich predicates
// (BETWEEN, IN with lists and subqueries, LIKE, CASE), aggregation with
// HAVING, ORDER BY / LIMIT, UNION ALL, WITH common table expressions,
// and windowed aggregates (`SUM(...) OVER (PARTITION BY ...)`, used by
// reporting queries like Query 20 of Figure 7).
package sql

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer output.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or unreserved keyword.
	TokIdent
	// TokKeyword is a reserved word (normalized upper case).
	TokKeyword
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal (unescaped).
	TokString
	// TokOp is an operator or punctuation token.
	TokOp
)

// Token is one lexical unit with its source position (for errors).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "JOIN": true, "ON": true, "INNER": true,
	"LEFT": true, "OUTER": true, "UNION": true, "ALL": true, "DISTINCT": true,
	"ASC": true, "DESC": true, "OVER": true, "PARTITION": true, "WITH": true,
	"DATE": true, "INTERVAL": true, "EXISTS": true, "CAST": true,
	"ROLLUP": true, "CUBE": true, "OFFSET": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings
// or illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &ParseError{Offset: start, Msg: "unterminated string"}
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, strings.ToLower(word), start})
			}
		default:
			start := i
			var op string
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=", "||":
				op = two
				i += 2
			default:
				switch c {
				case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
					op = string(c)
					i++
				default:
					return nil, &ParseError{Offset: i, Msg: fmt.Sprintf("illegal character %q", c)}
				}
			}
			toks = append(toks, Token{TokOp, op, start})
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
