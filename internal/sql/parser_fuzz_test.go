package sql_test

import (
	"testing"

	"tpcds/internal/qgen"
	"tpcds/internal/queries"
	"tpcds/internal/sql"
)

// FuzzParse drives the SQL parser with mutations of the full generated
// workload: all 99 templates, instantiated with the benchmark's default
// seed, plus a few degenerate shapes. The parser's contract is to
// return *ParseError — never to panic, loop, or report a position
// outside the input — no matter how the text is mangled.
func FuzzParse(f *testing.F) {
	for _, t := range queries.All() {
		q, err := qgen.Instantiate(t, qgen.StreamSeed(1, 0, t.ID))
		if err != nil {
			f.Fatalf("instantiating template %d: %v", t.ID, err)
		}
		f.Add(q)
	}
	f.Add("")
	f.Add("SELECT")
	f.Add("SELECT * FROM t WHERE (((")
	f.Add("SELECT 'unterminated FROM t")

	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := sql.Parse(src)
		if err != nil {
			pe, ok := err.(*sql.ParseError)
			if !ok {
				t.Fatalf("Parse returned %T, want *sql.ParseError: %v", err, err)
			}
			if pe.Offset < 0 || pe.Offset > len(src) {
				t.Fatalf("ParseError offset %d outside input of length %d", pe.Offset, len(src))
			}
			return
		}
		if stmt == nil {
			t.Fatal("Parse returned nil statement and nil error")
		}
	})
}
