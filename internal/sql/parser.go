package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement (an optional trailing ';' is
// allowed).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelectWithUnions()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind != kind {
		return false
	}
	return text == "" || t.Text == text
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errorf("expected %s, found %s", want, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Offset: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ParseError is a parse failure with the byte offset of the offending
// token, so callers (the template checker, the CLI) can point at the
// exact position in the query text.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at offset %d: %s", e.Offset, e.Msg)
}

// parseSelectWithUnions parses SELECT blocks chained by UNION ALL, plus
// a leading WITH clause shared by the chain's head.
func (p *parser) parseSelectWithUnions() (*SelectStmt, error) {
	var ctes []CTE
	if p.accept(TokKeyword, "WITH") {
		for {
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelectWithUnions()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			ctes = append(ctes, CTE{Name: name.Text, Select: sub})
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	head, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	head.With = ctes
	cur := head
	for p.accept(TokKeyword, "UNION") {
		if _, err := p.expect(TokKeyword, "ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		nxt, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		cur.UnionAll = nxt
		cur = nxt
	}
	// ORDER BY / LIMIT after a union chain apply to the whole result;
	// they were parsed into the last block — hoist them to the head.
	if cur != head && (len(cur.OrderBy) > 0 || cur.Limit >= 0) {
		head.OrderBy, cur.OrderBy = cur.OrderBy, nil
		head.Limit, cur.Limit = cur.Limit, -1
		head.Offset, cur.Offset = cur.Offset, 0
	}
	return head, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(s); err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = andExprs(s.Where, w)
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		grouped := false
		if p.accept(TokKeyword, "ROLLUP") {
			s.Rollup = true
			grouped = true
		} else if p.accept(TokKeyword, "CUBE") {
			s.Cube = true
			grouped = true
		}
		if grouped {
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if grouped {
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(t.Text)
		if err != nil || v < 0 {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		s.Limit = v
		if p.accept(TokKeyword, "OFFSET") {
			t, err := p.expect(TokNumber, "")
			if err != nil {
				return nil, err
			}
			o, err := strconv.Atoi(t.Text)
			if err != nil || o < 0 {
				return nil, p.errorf("bad OFFSET %q", t.Text)
			}
			s.Offset = o
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseFrom handles `FROM t1 [a], t2 [b] JOIN t3 [c] ON ... LEFT JOIN ...`.
// Inner-join ON conditions are ANDed into Where; LEFT OUTER joins keep
// their condition on the TableRef.
func (p *parser) parseFrom(s *SelectStmt) error {
	parseRef := func() (TableRef, error) {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Table: t.Text, Pos: t.Pos}
		if p.accept(TokKeyword, "AS") {
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return TableRef{}, err
			}
			ref.Alias = a.Text
		} else if p.at(TokIdent, "") {
			ref.Alias = p.next().Text
		}
		return ref, nil
	}
	for {
		ref, err := parseRef()
		if err != nil {
			return err
		}
		s.From = append(s.From, ref)
		for {
			left := false
			switch {
			case p.accept(TokKeyword, "JOIN"):
			case p.accept(TokKeyword, "INNER"):
				if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
					return err
				}
			case p.accept(TokKeyword, "LEFT"):
				p.accept(TokKeyword, "OUTER")
				if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
					return err
				}
				left = true
			default:
				goto joinsDone
			}
			jref, err := parseRef()
			if err != nil {
				return err
			}
			if _, err := p.expect(TokKeyword, "ON"); err != nil {
				return err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return err
			}
			if left {
				jref.LeftJoin = true
				jref.On = cond
			} else {
				s.Where = andExprs(s.Where, cond)
			}
			s.From = append(s.From, jref)
		}
	joinsDone:
		if !p.accept(TokOp, ",") {
			return nil
		}
	}
}

func andExprs(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinOp{Op: "AND", L: a, R: b}
}

// Expression grammar (lowest to highest precedence):
// OR > AND > NOT > comparison/IN/BETWEEN/LIKE/IS > add > mul > unary > primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicate forms.
	for {
		not := false
		if p.at(TokKeyword, "NOT") {
			// Lookahead: NOT IN / NOT BETWEEN / NOT LIKE.
			save := p.pos
			p.next()
			if p.at(TokKeyword, "IN") || p.at(TokKeyword, "BETWEEN") || p.at(TokKeyword, "LIKE") {
				not = true
			} else {
				p.pos = save
				return l, nil
			}
		}
		switch {
		case p.accept(TokKeyword, "BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Between{X: l, Lo: lo, Hi: hi, Not: not}
		case p.accept(TokKeyword, "IN"):
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			in := &In{X: l, Not: not}
			if p.at(TokKeyword, "SELECT") || p.at(TokKeyword, "WITH") {
				sub, err := p.parseSelectWithUnions()
				if err != nil {
					return nil, err
				}
				in.Sub = sub
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, e)
					if !p.accept(TokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			l = in
		case p.accept(TokKeyword, "LIKE"):
			t, err := p.expect(TokString, "")
			if err != nil {
				return nil, err
			}
			l = &Like{X: l, Pattern: t.Text, Not: not}
		case p.accept(TokKeyword, "IS"):
			isNot := p.accept(TokKeyword, "NOT")
			if _, err := p.expect(TokKeyword, "NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Not: isNot}
		default:
			// Binary comparison operators.
			t := p.peek()
			if t.Kind == TokOp {
				switch t.Text {
				case "=", "<>", "!=", "<", "<=", ">", ">=":
					p.next()
					r, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					op := t.Text
					if op == "!=" {
						op = "<>"
					}
					l = &BinOp{Op: op, L: l, R: r}
					continue
				}
			}
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "-", X: x}, nil
	}
	p.accept(TokOp, "+")
	return p.parsePostfixPrimary()
}

// parsePostfixPrimary parses a primary expression and an optional
// OVER (PARTITION BY ...) window suffix on aggregate calls.
func (p *parser) parsePostfixPrimary() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.at(TokKeyword, "OVER") {
		fc, ok := e.(*FuncCall)
		if !ok || !IsAggregate(fc.Name) {
			return nil, p.errorf("OVER requires an aggregate function")
		}
		p.next()
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "PARTITION"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		w := &Window{Agg: fc}
		for {
			part, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, part)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return w, nil
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if !strings.Contains(t.Text, ".") {
			v, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return &Lit{Kind: LitNumber, IsInt: true, IntVal: v, Num: float64(v)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Lit{Kind: LitNumber, Num: f}, nil
	case t.Kind == TokString:
		p.next()
		return &Lit{Kind: LitString, Str: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &Lit{Kind: LitNull}, nil
	case t.Kind == TokKeyword && t.Text == "DATE":
		p.next()
		lit, err := p.expect(TokString, "")
		if err != nil {
			return nil, err
		}
		return &Lit{Kind: LitDate, Str: lit.Text}, nil
	case t.Kind == TokKeyword && t.Text == "CAST":
		// CAST(expr AS type) — the engine is dynamically typed; date
		// casts are honored, all others pass through.
		p.next()
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AS"); err != nil {
			return nil, err
		}
		var typeName string
		switch {
		case p.at(TokKeyword, "DATE"):
			typeName = "date"
			p.next()
		case p.at(TokIdent, ""):
			typeName = p.next().Text
		default:
			return nil, p.errorf("expected type name in CAST")
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		if typeName == "date" {
			if lit, ok := inner.(*Lit); ok && lit.Kind == LitString {
				return &Lit{Kind: LitDate, Str: lit.Str}, nil
			}
			return &FuncCall{Name: "TO_DATE", Args: []Expr{inner}}, nil
		}
		return inner, nil
	case t.Kind == TokKeyword && t.Text == "CASE":
		return p.parseCase()
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		if p.at(TokKeyword, "SELECT") || p.at(TokKeyword, "WITH") {
			sub, err := p.parseSelectWithUnions()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &SubQuery{Select: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		name := t.Text
		// Function call?
		if p.accept(TokOp, "(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.accept(TokOp, "*") {
				fc.Star = true
			} else {
				fc.Distinct = p.accept(TokKeyword, "DISTINCT")
				if !p.at(TokOp, ")") {
					for {
						a, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						fc.Args = append(fc.Args, a)
						if !p.accept(TokOp, ",") {
							break
						}
					}
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.accept(TokOp, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col.Text, Pos: t.Pos}, nil
		}
		return &ColRef{Name: name, Pos: t.Pos}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

func (p *parser) parseCase() (Expr, error) {
	if _, err := p.expect(TokKeyword, "CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}
