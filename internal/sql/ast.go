package sql

import (
	"strconv"
	"strings"
)

// SelectStmt is a (possibly unioned) SELECT statement. JOIN ... ON
// clauses are normalized at parse time: joined tables land in From and
// their ON conjuncts are ANDed into Where, except LEFT OUTER joins which
// keep their condition on the TableRef.
type SelectStmt struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	// Rollup marks GROUP BY ROLLUP(...): aggregate rows are produced
	// for every prefix of GroupBy, subtotal levels carrying NULLs
	// (SQL-99 OLAP amendment). Cube marks GROUP BY CUBE(...): rows for
	// every subset of GroupBy.
	Rollup  bool
	Cube    bool
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
	Offset  int // 0 when absent
	// UnionAll chains additional SELECT blocks (UNION ALL semantics).
	UnionAll *SelectStmt
}

// CTE is one WITH entry.
type CTE struct {
	Name   string
	Select *SelectStmt
}

// SelectItem is one projection. Star marks `SELECT *`.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef references a base table or CTE, optionally aliased. For LEFT
// OUTER joins, LeftJoin is true and On carries the join condition; the
// table is outer-joined against everything already in scope.
type TableRef struct {
	Table    string
	Alias    string
	LeftJoin bool
	On       Expr
	// Pos is the byte offset of the table name in the query text.
	Pos int
}

// Binding returns the name this table is referenced by in expressions.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY entry. Desc selects descending order.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is the expression interface. Render produces a canonical string
// used for structural equality (matching GROUP BY expressions against
// SELECT items) and display.
type Expr interface {
	Render() string
}

// ColRef references column Name, optionally qualified by a table binding.
// Pos is the byte offset of the reference in the query text (the
// qualifier when present), for diagnostics; zero-value ColRefs built
// programmatically carry Pos 0.
type ColRef struct {
	Table string
	Name  string
	Pos   int
}

// Lit is a literal: Number (text preserved), String, or Null.
type Lit struct {
	Kind   LitKind
	Num    float64
	IsInt  bool
	IntVal int64
	Str    string
}

// LitKind discriminates literal types.
type LitKind int

const (
	// LitNumber is a numeric literal.
	LitNumber LitKind = iota
	// LitString is a string literal.
	LitString
	// LitNull is the NULL literal.
	LitNull
	// LitDate is a DATE 'yyyy-mm-dd' literal (Str holds the text).
	LitDate
)

// BinOp is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or logical (AND OR).
type BinOp struct {
	Op   string
	L, R Expr
}

// UnaryOp is NOT or unary minus.
type UnaryOp struct {
	Op string // "NOT" or "-"
	X  Expr
}

// Between is X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// In is X [NOT] IN (list) or X [NOT] IN (subquery).
type In struct {
	X    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// Like is X [NOT] LIKE pattern ('%' and '_' wildcards).
type Like struct {
	X       Expr
	Pattern string
	Not     bool
}

// IsNull is X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// CaseExpr is CASE WHEN ... THEN ... [ELSE ...] END (searched form).
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN/THEN arm.
type WhenClause struct {
	Cond, Result Expr
}

// FuncCall is a function or aggregate invocation. Star marks COUNT(*).
type FuncCall struct {
	Name     string // normalized upper case
	Args     []Expr
	Distinct bool
	Star     bool
}

// Window is an aggregate evaluated OVER (PARTITION BY ...).
type Window struct {
	Agg         *FuncCall
	PartitionBy []Expr
}

// SubQuery is a scalar subquery used as an expression.
type SubQuery struct {
	Select *SelectStmt
}

// aggregateFuncs lists the supported aggregate function names.
var aggregateFuncs = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"STDDEV_SAMP": true,
}

// IsAggregate reports whether the name is an aggregate function.
func IsAggregate(name string) bool { return aggregateFuncs[strings.ToUpper(name)] }

// Render implementations produce a canonical form: identifiers lower
// case, keywords upper case, minimal parentheses (fully parenthesized
// binary ops for unambiguity).

func (c *ColRef) Render() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Lit) Render() string {
	switch l.Kind {
	case LitNull:
		return "NULL"
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case LitDate:
		return "DATE '" + l.Str + "'"
	default:
		if l.IsInt {
			return itoa(l.IntVal)
		}
		return ftoa(l.Num)
	}
}

func (b *BinOp) Render() string {
	return "(" + b.L.Render() + " " + b.Op + " " + b.R.Render() + ")"
}

func (u *UnaryOp) Render() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.Render() + ")"
	}
	return "(-" + u.X.Render() + ")"
}

func (b *Between) Render() string {
	not := ""
	if b.Not {
		not = " NOT"
	}
	return "(" + b.X.Render() + not + " BETWEEN " + b.Lo.Render() + " AND " + b.Hi.Render() + ")"
}

func (i *In) Render() string {
	not := ""
	if i.Not {
		not = " NOT"
	}
	var sb strings.Builder
	sb.WriteString("(" + i.X.Render() + not + " IN (")
	if i.Sub != nil {
		sb.WriteString("<subquery>")
	} else {
		for j, e := range i.List {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.Render())
		}
	}
	sb.WriteString("))")
	return sb.String()
}

func (l *Like) Render() string {
	not := ""
	if l.Not {
		not = " NOT"
	}
	return "(" + l.X.Render() + not + " LIKE '" + l.Pattern + "')"
}

func (n *IsNull) Render() string {
	if n.Not {
		return "(" + n.X.Render() + " IS NOT NULL)"
	}
	return "(" + n.X.Render() + " IS NULL)"
}

func (c *CaseExpr) Render() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.Render() + " THEN " + w.Result.Render())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.Render())
	}
	sb.WriteString(" END")
	return sb.String()
}

func (f *FuncCall) Render() string {
	var sb strings.Builder
	sb.WriteString(f.Name + "(")
	if f.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if f.Star {
		sb.WriteString("*")
	}
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Render())
	}
	sb.WriteString(")")
	return sb.String()
}

func (w *Window) Render() string {
	var sb strings.Builder
	sb.WriteString(w.Agg.Render() + " OVER (PARTITION BY ")
	for i, p := range w.PartitionBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Render())
	}
	sb.WriteString(")")
	return sb.String()
}

func (s *SubQuery) Render() string { return "(<subquery>)" }

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
