package schema

// Compact column constructors used by the catalog below.
func id(name string) Column         { return Column{Name: name, Type: Identifier} }
func idN(name string) Column        { return Column{Name: name, Type: Identifier, Nullable: true} }
func in(name string) Column         { return Column{Name: name, Type: Integer, Nullable: true} }
func dec(name string) Column        { return Column{Name: name, Type: Decimal, Nullable: true} }
func ch(name string, n int) Column  { return Column{Name: name, Type: Char, Len: n, Nullable: true} }
func vc(name string, n int) Column  { return Column{Name: name, Type: Varchar, Len: n, Nullable: true} }
func dt(name string) Column         { return Column{Name: name, Type: Date, Nullable: true} }
func fk(col, ref string) ForeignKey { return ForeignKey{Column: col, Ref: ref} }

// Tables returns the complete snowstorm schema catalog: 24 tables with
// 104 declared foreign keys (Table 1 of the paper). The returned slice is
// freshly allocated; callers may reorder it.
func Tables() []*Table {
	return []*Table{
		storeSales(), storeReturns(),
		catalogSales(), catalogReturns(),
		webSales(), webReturns(),
		inventory(),
		store(), callCenter(), catalogPage(), webSite(), webPage(),
		warehouse(), customer(), customerAddress(), customerDemographics(),
		householdDemographics(), incomeBand(), item(), promotion(),
		reason(), shipMode(), timeDim(), dateDim(),
	}
}

// ByName returns a lookup map over Tables().
func ByName() map[string]*Table {
	m := make(map[string]*Table)
	for _, t := range Tables() {
		m[t.Name] = t
	}
	return m
}

// FactLinks returns the composite fact-to-fact relationships of §2.2:
// each returns fact links back to its sales fact through (item, order)
// column pairs, enabling large fact-to-fact joins without self-joins.
func FactLinks() []FactLink {
	return []FactLink{
		{From: "store_returns", To: "store_sales", Columns: []string{"sr_item_sk", "sr_ticket_number"}},
		{From: "catalog_returns", To: "catalog_sales", Columns: []string{"cr_item_sk", "cr_order_number"}},
		{From: "web_returns", To: "web_sales", Columns: []string{"wr_item_sk", "wr_order_number"}},
	}
}

func storeSales() *Table {
	return &Table{
		Name: "store_sales", Kind: Fact, Channel: Store,
		Columns: []Column{
			idN("ss_sold_date_sk"), idN("ss_sold_time_sk"), id("ss_item_sk"),
			idN("ss_customer_sk"), idN("ss_cdemo_sk"), idN("ss_hdemo_sk"),
			idN("ss_addr_sk"), idN("ss_store_sk"), idN("ss_promo_sk"),
			id("ss_ticket_number"), in("ss_quantity"),
			dec("ss_wholesale_cost"), dec("ss_list_price"), dec("ss_sales_price"),
			dec("ss_ext_discount_amt"), dec("ss_ext_sales_price"),
			dec("ss_ext_wholesale_cost"), dec("ss_ext_list_price"), dec("ss_ext_tax"),
			dec("ss_coupon_amt"), dec("ss_net_paid"), dec("ss_net_paid_inc_tax"),
			dec("ss_net_profit"),
		},
		PrimaryKey: []string{"ss_item_sk", "ss_ticket_number"},
		ForeignKeys: []ForeignKey{
			fk("ss_sold_date_sk", "date_dim"), fk("ss_sold_time_sk", "time_dim"),
			fk("ss_item_sk", "item"), fk("ss_customer_sk", "customer"),
			fk("ss_cdemo_sk", "customer_demographics"), fk("ss_hdemo_sk", "household_demographics"),
			fk("ss_addr_sk", "customer_address"), fk("ss_store_sk", "store"),
			fk("ss_promo_sk", "promotion"),
		},
	}
}

func storeReturns() *Table {
	return &Table{
		Name: "store_returns", Kind: Fact, Channel: Store,
		Columns: []Column{
			idN("sr_returned_date_sk"), idN("sr_return_time_sk"), id("sr_item_sk"),
			idN("sr_customer_sk"), idN("sr_cdemo_sk"), idN("sr_hdemo_sk"),
			idN("sr_addr_sk"), idN("sr_store_sk"), idN("sr_reason_sk"),
			id("sr_ticket_number"), in("sr_return_quantity"),
			dec("sr_return_amt"), dec("sr_return_tax"), dec("sr_return_amt_inc_tax"),
			dec("sr_fee"), dec("sr_return_ship_cost"), dec("sr_refunded_cash"),
			dec("sr_reversed_charge"), dec("sr_store_credit"), dec("sr_net_loss"),
		},
		PrimaryKey: []string{"sr_item_sk", "sr_ticket_number"},
		ForeignKeys: []ForeignKey{
			fk("sr_returned_date_sk", "date_dim"), fk("sr_return_time_sk", "time_dim"),
			fk("sr_item_sk", "item"), fk("sr_customer_sk", "customer"),
			fk("sr_cdemo_sk", "customer_demographics"), fk("sr_hdemo_sk", "household_demographics"),
			fk("sr_addr_sk", "customer_address"), fk("sr_store_sk", "store"),
			fk("sr_reason_sk", "reason"),
		},
	}
}

func catalogSales() *Table {
	return &Table{
		Name: "catalog_sales", Kind: Fact, Channel: Catalog,
		Columns: []Column{
			idN("cs_sold_date_sk"), idN("cs_sold_time_sk"), idN("cs_ship_date_sk"),
			idN("cs_bill_customer_sk"), idN("cs_bill_cdemo_sk"), idN("cs_bill_hdemo_sk"),
			idN("cs_bill_addr_sk"), idN("cs_ship_customer_sk"), idN("cs_ship_cdemo_sk"),
			idN("cs_ship_hdemo_sk"), idN("cs_ship_addr_sk"), idN("cs_call_center_sk"),
			idN("cs_catalog_page_sk"), idN("cs_ship_mode_sk"), idN("cs_warehouse_sk"),
			id("cs_item_sk"), idN("cs_promo_sk"), id("cs_order_number"),
			in("cs_quantity"), dec("cs_wholesale_cost"), dec("cs_list_price"),
			dec("cs_sales_price"), dec("cs_ext_discount_amt"), dec("cs_ext_sales_price"),
			dec("cs_ext_wholesale_cost"), dec("cs_ext_list_price"), dec("cs_ext_tax"),
			dec("cs_coupon_amt"), dec("cs_ext_ship_cost"), dec("cs_net_paid"),
			dec("cs_net_paid_inc_tax"), dec("cs_net_paid_inc_ship"),
			dec("cs_net_paid_inc_ship_tax"), dec("cs_net_profit"),
		},
		PrimaryKey: []string{"cs_item_sk", "cs_order_number"},
		ForeignKeys: []ForeignKey{
			fk("cs_sold_date_sk", "date_dim"), fk("cs_sold_time_sk", "time_dim"),
			fk("cs_ship_date_sk", "date_dim"),
			fk("cs_bill_customer_sk", "customer"), fk("cs_bill_cdemo_sk", "customer_demographics"),
			fk("cs_bill_hdemo_sk", "household_demographics"), fk("cs_bill_addr_sk", "customer_address"),
			fk("cs_ship_customer_sk", "customer"), fk("cs_ship_cdemo_sk", "customer_demographics"),
			fk("cs_ship_hdemo_sk", "household_demographics"), fk("cs_ship_addr_sk", "customer_address"),
			fk("cs_call_center_sk", "call_center"), fk("cs_catalog_page_sk", "catalog_page"),
			fk("cs_ship_mode_sk", "ship_mode"), fk("cs_warehouse_sk", "warehouse"),
			fk("cs_item_sk", "item"), fk("cs_promo_sk", "promotion"),
		},
	}
}

func catalogReturns() *Table {
	return &Table{
		Name: "catalog_returns", Kind: Fact, Channel: Catalog,
		Columns: []Column{
			idN("cr_returned_date_sk"), idN("cr_returned_time_sk"), id("cr_item_sk"),
			idN("cr_refunded_customer_sk"), idN("cr_refunded_cdemo_sk"),
			idN("cr_refunded_hdemo_sk"), idN("cr_refunded_addr_sk"),
			idN("cr_returning_customer_sk"), idN("cr_returning_cdemo_sk"),
			idN("cr_returning_hdemo_sk"), idN("cr_returning_addr_sk"),
			idN("cr_call_center_sk"), idN("cr_catalog_page_sk"), idN("cr_ship_mode_sk"),
			idN("cr_warehouse_sk"), idN("cr_reason_sk"), id("cr_order_number"),
			in("cr_return_quantity"), dec("cr_return_amount"), dec("cr_return_tax"),
			dec("cr_return_amt_inc_tax"), dec("cr_fee"), dec("cr_return_ship_cost"),
			dec("cr_refunded_cash"), dec("cr_reversed_charge"), dec("cr_store_credit"),
			dec("cr_net_loss"),
		},
		PrimaryKey: []string{"cr_item_sk", "cr_order_number"},
		ForeignKeys: []ForeignKey{
			fk("cr_returned_date_sk", "date_dim"), fk("cr_returned_time_sk", "time_dim"),
			fk("cr_item_sk", "item"),
			fk("cr_refunded_customer_sk", "customer"), fk("cr_refunded_cdemo_sk", "customer_demographics"),
			fk("cr_refunded_hdemo_sk", "household_demographics"), fk("cr_refunded_addr_sk", "customer_address"),
			fk("cr_returning_customer_sk", "customer"), fk("cr_returning_cdemo_sk", "customer_demographics"),
			fk("cr_returning_hdemo_sk", "household_demographics"), fk("cr_returning_addr_sk", "customer_address"),
			fk("cr_call_center_sk", "call_center"), fk("cr_catalog_page_sk", "catalog_page"),
			fk("cr_ship_mode_sk", "ship_mode"), fk("cr_warehouse_sk", "warehouse"),
			fk("cr_reason_sk", "reason"),
		},
	}
}

func webSales() *Table {
	return &Table{
		Name: "web_sales", Kind: Fact, Channel: Web,
		Columns: []Column{
			idN("ws_sold_date_sk"), idN("ws_sold_time_sk"), idN("ws_ship_date_sk"),
			id("ws_item_sk"),
			idN("ws_bill_customer_sk"), idN("ws_bill_cdemo_sk"), idN("ws_bill_hdemo_sk"),
			idN("ws_bill_addr_sk"), idN("ws_ship_customer_sk"), idN("ws_ship_cdemo_sk"),
			idN("ws_ship_hdemo_sk"), idN("ws_ship_addr_sk"), idN("ws_web_page_sk"),
			idN("ws_web_site_sk"), idN("ws_ship_mode_sk"), idN("ws_warehouse_sk"),
			idN("ws_promo_sk"), id("ws_order_number"),
			in("ws_quantity"), dec("ws_wholesale_cost"), dec("ws_list_price"),
			dec("ws_sales_price"), dec("ws_ext_discount_amt"), dec("ws_ext_sales_price"),
			dec("ws_ext_wholesale_cost"), dec("ws_ext_list_price"), dec("ws_ext_tax"),
			dec("ws_coupon_amt"), dec("ws_ext_ship_cost"), dec("ws_net_paid"),
			dec("ws_net_paid_inc_tax"), dec("ws_net_paid_inc_ship"),
			dec("ws_net_paid_inc_ship_tax"), dec("ws_net_profit"),
		},
		PrimaryKey: []string{"ws_item_sk", "ws_order_number"},
		ForeignKeys: []ForeignKey{
			fk("ws_sold_date_sk", "date_dim"), fk("ws_sold_time_sk", "time_dim"),
			fk("ws_ship_date_sk", "date_dim"), fk("ws_item_sk", "item"),
			fk("ws_bill_customer_sk", "customer"), fk("ws_bill_cdemo_sk", "customer_demographics"),
			fk("ws_bill_hdemo_sk", "household_demographics"), fk("ws_bill_addr_sk", "customer_address"),
			fk("ws_ship_customer_sk", "customer"), fk("ws_ship_cdemo_sk", "customer_demographics"),
			fk("ws_ship_hdemo_sk", "household_demographics"), fk("ws_ship_addr_sk", "customer_address"),
			fk("ws_web_page_sk", "web_page"), fk("ws_web_site_sk", "web_site"),
			fk("ws_ship_mode_sk", "ship_mode"), fk("ws_warehouse_sk", "warehouse"),
			fk("ws_promo_sk", "promotion"),
		},
	}
}

func webReturns() *Table {
	return &Table{
		Name: "web_returns", Kind: Fact, Channel: Web,
		Columns: []Column{
			idN("wr_returned_date_sk"), idN("wr_returned_time_sk"), id("wr_item_sk"),
			idN("wr_refunded_customer_sk"), idN("wr_refunded_cdemo_sk"),
			idN("wr_refunded_hdemo_sk"), idN("wr_refunded_addr_sk"),
			idN("wr_returning_customer_sk"), idN("wr_returning_cdemo_sk"),
			idN("wr_returning_hdemo_sk"), idN("wr_returning_addr_sk"),
			idN("wr_web_page_sk"), idN("wr_reason_sk"), id("wr_order_number"),
			in("wr_return_quantity"), dec("wr_return_amt"), dec("wr_return_tax"),
			dec("wr_return_amt_inc_tax"), dec("wr_fee"), dec("wr_return_ship_cost"),
			dec("wr_refunded_cash"), dec("wr_reversed_charge"), dec("wr_account_credit"),
			dec("wr_net_loss"),
		},
		PrimaryKey: []string{"wr_item_sk", "wr_order_number"},
		ForeignKeys: []ForeignKey{
			fk("wr_returned_date_sk", "date_dim"), fk("wr_returned_time_sk", "time_dim"),
			fk("wr_item_sk", "item"),
			fk("wr_refunded_customer_sk", "customer"), fk("wr_refunded_cdemo_sk", "customer_demographics"),
			fk("wr_refunded_hdemo_sk", "household_demographics"), fk("wr_refunded_addr_sk", "customer_address"),
			fk("wr_returning_customer_sk", "customer"), fk("wr_returning_cdemo_sk", "customer_demographics"),
			fk("wr_returning_hdemo_sk", "household_demographics"), fk("wr_returning_addr_sk", "customer_address"),
			fk("wr_web_page_sk", "web_page"), fk("wr_reason_sk", "reason"),
		},
	}
}

func inventory() *Table {
	return &Table{
		// Inventory is shared between catalog and web (§2.2) — per the
		// reporting/ad-hoc partition it belongs to the reporting side
		// only when referenced together with catalog tables, so it is
		// marked Shared here.
		Name: "inventory", Kind: Fact, Channel: Shared,
		Columns: []Column{
			id("inv_date_sk"), id("inv_item_sk"), id("inv_warehouse_sk"),
			in("inv_quantity_on_hand"),
		},
		PrimaryKey: []string{"inv_date_sk", "inv_item_sk", "inv_warehouse_sk"},
		ForeignKeys: []ForeignKey{
			fk("inv_date_sk", "date_dim"), fk("inv_item_sk", "item"),
			fk("inv_warehouse_sk", "warehouse"),
		},
	}
}

func store() *Table {
	return &Table{
		Name: "store", Kind: Dimension, Channel: Store, SCD: HistoryKeeping,
		BusinessKey: "s_store_id",
		Columns: []Column{
			id("s_store_sk"), ch("s_store_id", 16), dt("s_rec_start_date"),
			dt("s_rec_end_date"), idN("s_closed_date_sk"), vc("s_store_name", 50),
			in("s_number_employees"), in("s_floor_space"), ch("s_hours", 20),
			vc("s_manager", 40), in("s_market_id"), vc("s_geography_class", 100),
			vc("s_market_desc", 100), vc("s_market_manager", 40), in("s_division_id"),
			vc("s_division_name", 50), in("s_company_id"), vc("s_company_name", 50),
			vc("s_street_number", 10), vc("s_street_name", 60), ch("s_street_type", 15),
			ch("s_suite_number", 10), vc("s_city", 60), vc("s_county", 30),
			ch("s_state", 2), ch("s_zip", 10), vc("s_country", 20),
			dec("s_gmt_offset"), dec("s_tax_percentage"),
		},
		PrimaryKey:  []string{"s_store_sk"},
		ForeignKeys: []ForeignKey{fk("s_closed_date_sk", "date_dim")},
	}
}

func callCenter() *Table {
	return &Table{
		Name: "call_center", Kind: Dimension, Channel: Catalog, SCD: HistoryKeeping,
		BusinessKey: "cc_call_center_id",
		Columns: []Column{
			id("cc_call_center_sk"), ch("cc_call_center_id", 16), dt("cc_rec_start_date"),
			dt("cc_rec_end_date"), idN("cc_closed_date_sk"), idN("cc_open_date_sk"),
			vc("cc_name", 50), vc("cc_class", 50), in("cc_employees"), in("cc_sq_ft"),
			ch("cc_hours", 20), vc("cc_manager", 40), in("cc_mkt_id"),
			vc("cc_mkt_class", 50), vc("cc_mkt_desc", 100), vc("cc_market_manager", 40),
			in("cc_division"), vc("cc_division_name", 50), in("cc_company"),
			ch("cc_company_name", 50), ch("cc_street_number", 10), vc("cc_street_name", 60),
			ch("cc_street_type", 15), ch("cc_suite_number", 10), vc("cc_city", 60),
			vc("cc_county", 30), ch("cc_state", 2), ch("cc_zip", 10),
			vc("cc_country", 20), dec("cc_gmt_offset"), dec("cc_tax_percentage"),
		},
		PrimaryKey: []string{"cc_call_center_sk"},
		ForeignKeys: []ForeignKey{
			fk("cc_closed_date_sk", "date_dim"), fk("cc_open_date_sk", "date_dim"),
		},
	}
}

func catalogPage() *Table {
	return &Table{
		Name: "catalog_page", Kind: Dimension, Channel: Catalog, SCD: NonHistory,
		BusinessKey: "cp_catalog_page_id",
		Columns: []Column{
			id("cp_catalog_page_sk"), ch("cp_catalog_page_id", 16),
			idN("cp_start_date_sk"), idN("cp_end_date_sk"), vc("cp_department", 50),
			in("cp_catalog_number"), in("cp_catalog_page_number"),
			vc("cp_description", 100), vc("cp_type", 100),
		},
		PrimaryKey: []string{"cp_catalog_page_sk"},
		ForeignKeys: []ForeignKey{
			fk("cp_start_date_sk", "date_dim"), fk("cp_end_date_sk", "date_dim"),
		},
	}
}

func webSite() *Table {
	return &Table{
		Name: "web_site", Kind: Dimension, Channel: Web, SCD: HistoryKeeping,
		BusinessKey: "web_site_id",
		Columns: []Column{
			id("web_site_sk"), ch("web_site_id", 16), dt("web_rec_start_date"),
			dt("web_rec_end_date"), vc("web_name", 50), idN("web_open_date_sk"),
			idN("web_close_date_sk"), vc("web_class", 50), vc("web_manager", 40),
			in("web_mkt_id"), vc("web_mkt_class", 50), vc("web_mkt_desc", 100),
			vc("web_market_manager", 40), in("web_company_id"), ch("web_company_name", 50),
			ch("web_street_number", 10), vc("web_street_name", 60), ch("web_street_type", 15),
			ch("web_suite_number", 10), vc("web_city", 60), vc("web_county", 30),
			ch("web_state", 2), ch("web_zip", 10), vc("web_country", 20),
			dec("web_gmt_offset"), dec("web_tax_percentage"),
		},
		PrimaryKey: []string{"web_site_sk"},
		ForeignKeys: []ForeignKey{
			fk("web_open_date_sk", "date_dim"), fk("web_close_date_sk", "date_dim"),
		},
	}
}

func webPage() *Table {
	return &Table{
		Name: "web_page", Kind: Dimension, Channel: Web, SCD: HistoryKeeping,
		BusinessKey: "wp_web_page_id",
		Columns: []Column{
			id("wp_web_page_sk"), ch("wp_web_page_id", 16), dt("wp_rec_start_date"),
			dt("wp_rec_end_date"), idN("wp_creation_date_sk"), idN("wp_access_date_sk"),
			ch("wp_autogen_flag", 1), idN("wp_customer_sk"), vc("wp_url", 100),
			ch("wp_type", 50), in("wp_char_count"), in("wp_link_count"),
			in("wp_image_count"), in("wp_max_ad_count"),
		},
		PrimaryKey: []string{"wp_web_page_sk"},
		ForeignKeys: []ForeignKey{
			fk("wp_creation_date_sk", "date_dim"), fk("wp_access_date_sk", "date_dim"),
			fk("wp_customer_sk", "customer"),
		},
	}
}

func warehouse() *Table {
	return &Table{
		Name: "warehouse", Kind: Dimension, Channel: Shared, SCD: NonHistory,
		BusinessKey: "w_warehouse_id",
		Columns: []Column{
			id("w_warehouse_sk"), ch("w_warehouse_id", 16), vc("w_warehouse_name", 20),
			in("w_warehouse_sq_ft"), ch("w_street_number", 10), vc("w_street_name", 60),
			ch("w_street_type", 15), ch("w_suite_number", 10), vc("w_city", 60),
			vc("w_county", 30), ch("w_state", 2), ch("w_zip", 10),
			vc("w_country", 20), dec("w_gmt_offset"),
		},
		PrimaryKey: []string{"w_warehouse_sk"},
	}
}

func customer() *Table {
	return &Table{
		Name: "customer", Kind: Dimension, Channel: Shared, SCD: NonHistory,
		BusinessKey: "c_customer_id",
		Columns: []Column{
			id("c_customer_sk"), ch("c_customer_id", 16), idN("c_current_cdemo_sk"),
			idN("c_current_hdemo_sk"), idN("c_current_addr_sk"),
			idN("c_first_shipto_date_sk"), idN("c_first_sales_date_sk"),
			ch("c_salutation", 10), ch("c_first_name", 20), ch("c_last_name", 30),
			ch("c_preferred_cust_flag", 1), in("c_birth_day"), in("c_birth_month"),
			in("c_birth_year"), vc("c_birth_country", 20), ch("c_login", 13),
			ch("c_email_address", 50), idN("c_last_review_date_sk"),
		},
		PrimaryKey: []string{"c_customer_sk"},
		ForeignKeys: []ForeignKey{
			fk("c_current_cdemo_sk", "customer_demographics"),
			fk("c_current_hdemo_sk", "household_demographics"),
			fk("c_current_addr_sk", "customer_address"),
			fk("c_first_shipto_date_sk", "date_dim"),
			fk("c_first_sales_date_sk", "date_dim"),
			fk("c_last_review_date_sk", "date_dim"),
		},
	}
}

func customerAddress() *Table {
	return &Table{
		Name: "customer_address", Kind: Dimension, Channel: Shared, SCD: NonHistory,
		BusinessKey: "ca_address_id",
		Columns: []Column{
			id("ca_address_sk"), ch("ca_address_id", 16), ch("ca_street_number", 10),
			vc("ca_street_name", 60), ch("ca_street_type", 15), ch("ca_suite_number", 10),
			vc("ca_city", 60), vc("ca_county", 30), ch("ca_state", 2),
			ch("ca_zip", 10), vc("ca_country", 20), dec("ca_gmt_offset"),
			ch("ca_location_type", 20),
		},
		PrimaryKey: []string{"ca_address_sk"},
	}
}

func customerDemographics() *Table {
	return &Table{
		Name: "customer_demographics", Kind: Dimension, Channel: Shared, SCD: StaticDim,
		Columns: []Column{
			id("cd_demo_sk"), ch("cd_gender", 1), ch("cd_marital_status", 1),
			ch("cd_education_status", 20), in("cd_purchase_estimate"),
			ch("cd_credit_rating", 10), in("cd_dep_count"),
			in("cd_dep_employed_count"), in("cd_dep_college_count"),
		},
		PrimaryKey: []string{"cd_demo_sk"},
	}
}

func householdDemographics() *Table {
	return &Table{
		Name: "household_demographics", Kind: Dimension, Channel: Shared, SCD: StaticDim,
		Columns: []Column{
			id("hd_demo_sk"), idN("hd_income_band_sk"), ch("hd_buy_potential", 15),
			in("hd_dep_count"), in("hd_vehicle_count"),
		},
		PrimaryKey:  []string{"hd_demo_sk"},
		ForeignKeys: []ForeignKey{fk("hd_income_band_sk", "income_band")},
	}
}

func incomeBand() *Table {
	return &Table{
		Name: "income_band", Kind: Dimension, Channel: Shared, SCD: StaticDim,
		Columns: []Column{
			id("ib_income_band_sk"), in("ib_lower_bound"), in("ib_upper_bound"),
		},
		PrimaryKey: []string{"ib_income_band_sk"},
	}
}

func item() *Table {
	return &Table{
		Name: "item", Kind: Dimension, Channel: Shared, SCD: HistoryKeeping,
		BusinessKey: "i_item_id",
		Columns: []Column{
			id("i_item_sk"), ch("i_item_id", 16), dt("i_rec_start_date"),
			dt("i_rec_end_date"), vc("i_item_desc", 200), dec("i_current_price"),
			dec("i_wholesale_cost"), in("i_brand_id"), ch("i_brand", 50),
			in("i_class_id"), ch("i_class", 50), in("i_category_id"),
			ch("i_category", 50), in("i_manufact_id"), ch("i_manufact", 50),
			ch("i_size", 20), ch("i_formulation", 20), ch("i_color", 20),
			ch("i_units", 10), ch("i_container", 10), in("i_manager_id"),
			ch("i_product_name", 50),
		},
		PrimaryKey: []string{"i_item_sk"},
	}
}

func promotion() *Table {
	return &Table{
		Name: "promotion", Kind: Dimension, Channel: Shared, SCD: NonHistory,
		BusinessKey: "p_promo_id",
		Columns: []Column{
			id("p_promo_sk"), ch("p_promo_id", 16), idN("p_start_date_sk"),
			idN("p_end_date_sk"), idN("p_item_sk"), dec("p_cost"),
			in("p_response_target"), ch("p_promo_name", 50), ch("p_channel_dmail", 1),
			ch("p_channel_email", 1), ch("p_channel_catalog", 1), ch("p_channel_tv", 1),
			ch("p_channel_radio", 1), ch("p_channel_press", 1), ch("p_channel_event", 1),
			ch("p_channel_demo", 1), vc("p_channel_details", 100), ch("p_purpose", 15),
			ch("p_discount_active", 1),
		},
		PrimaryKey: []string{"p_promo_sk"},
		ForeignKeys: []ForeignKey{
			fk("p_start_date_sk", "date_dim"), fk("p_end_date_sk", "date_dim"),
			fk("p_item_sk", "item"),
		},
	}
}

func reason() *Table {
	return &Table{
		Name: "reason", Kind: Dimension, Channel: Store, SCD: StaticDim,
		Columns: []Column{
			id("r_reason_sk"), ch("r_reason_id", 16), ch("r_reason_desc", 100),
		},
		PrimaryKey: []string{"r_reason_sk"},
	}
}

func shipMode() *Table {
	return &Table{
		Name: "ship_mode", Kind: Dimension, Channel: Shared, SCD: StaticDim,
		Columns: []Column{
			id("sm_ship_mode_sk"), ch("sm_ship_mode_id", 16), ch("sm_type", 30),
			ch("sm_code", 10), ch("sm_carrier", 20), ch("sm_contract", 20),
		},
		PrimaryKey: []string{"sm_ship_mode_sk"},
	}
}

func timeDim() *Table {
	return &Table{
		// _dim suffix avoids vendor reserved-word conflicts (paper fn. 2).
		Name: "time_dim", Kind: Dimension, Channel: Shared, SCD: StaticDim,
		Columns: []Column{
			id("t_time_sk"), ch("t_time_id", 16), in("t_time"), in("t_hour"),
			in("t_minute"), in("t_second"), ch("t_am_pm", 2), ch("t_shift", 20),
			ch("t_sub_shift", 20), ch("t_meal_time", 20),
		},
		PrimaryKey: []string{"t_time_sk"},
	}
}

func dateDim() *Table {
	return &Table{
		Name: "date_dim", Kind: Dimension, Channel: Shared, SCD: StaticDim,
		Columns: []Column{
			id("d_date_sk"), ch("d_date_id", 16), dt("d_date"), in("d_month_seq"),
			in("d_week_seq"), in("d_quarter_seq"), in("d_year"), in("d_dow"),
			in("d_moy"), in("d_dom"), in("d_qoy"), in("d_fy_year"),
			in("d_fy_quarter_seq"), in("d_fy_week_seq"), ch("d_day_name", 9),
			ch("d_quarter_name", 6), ch("d_holiday", 1), ch("d_weekend", 1),
			ch("d_following_holiday", 1), in("d_first_dom"), in("d_last_dom"),
			in("d_same_day_ly"), in("d_same_day_lq"), ch("d_current_day", 1),
			ch("d_current_week", 1), ch("d_current_month", 1),
			ch("d_current_quarter", 1), ch("d_current_year", 1),
		},
		PrimaryKey: []string{"d_date_sk"},
	}
}
