package schema

// Statistics aggregates the schema-level numbers the paper reports in
// Table 1: table counts by kind, column count extremes, declared foreign
// keys, and raw flat-file row-length extremes.
type Statistics struct {
	FactTables      int
	DimensionTables int
	MinColumns      int
	MaxColumns      int
	AvgColumns      float64
	ForeignKeys     int
	MinRowBytes     float64
	MaxRowBytes     float64
	AvgRowBytes     float64
}

// ComputeStatistics derives the Table 1 statistics from the catalog.
func ComputeStatistics() Statistics {
	tables := Tables()
	s := Statistics{MinColumns: 1 << 30, MinRowBytes: 1e18}
	var colSum int
	var rowSum float64
	for _, t := range tables {
		if t.Kind == Fact {
			s.FactTables++
		} else {
			s.DimensionTables++
		}
		n := len(t.Columns)
		colSum += n
		if n < s.MinColumns {
			s.MinColumns = n
		}
		if n > s.MaxColumns {
			s.MaxColumns = n
		}
		s.ForeignKeys += len(t.ForeignKeys)
		w := t.AvgRowBytes()
		rowSum += w
		if w < s.MinRowBytes {
			s.MinRowBytes = w
		}
		if w > s.MaxRowBytes {
			s.MaxRowBytes = w
		}
	}
	s.AvgColumns = float64(colSum) / float64(len(tables))
	s.AvgRowBytes = rowSum / float64(len(tables))
	return s
}

// Validate checks the internal consistency of the catalog: unique table
// names, unique column names within a table, per-table column prefixes,
// primary keys existing, and every foreign key referencing an existing
// table's surrogate key column. It returns a list of problems (empty if
// the catalog is sound).
func Validate() []string {
	var problems []string
	byName := map[string]*Table{}
	for _, t := range Tables() {
		if _, dup := byName[t.Name]; dup {
			problems = append(problems, "duplicate table "+t.Name)
		}
		byName[t.Name] = t
	}
	for _, t := range byName {
		seen := map[string]bool{}
		for _, c := range t.Columns {
			if seen[c.Name] {
				problems = append(problems, t.Name+": duplicate column "+c.Name)
			}
			seen[c.Name] = true
		}
		if len(t.PrimaryKey) == 0 {
			problems = append(problems, t.Name+": no primary key")
		}
		for _, pk := range t.PrimaryKey {
			if !seen[pk] {
				problems = append(problems, t.Name+": primary key column "+pk+" missing")
			}
		}
		for _, f := range t.ForeignKeys {
			if !seen[f.Column] {
				problems = append(problems, t.Name+": FK column "+f.Column+" missing")
			}
			ref, ok := byName[f.Ref]
			if !ok {
				problems = append(problems, t.Name+": FK references unknown table "+f.Ref)
				continue
			}
			if ref.Kind != Dimension {
				problems = append(problems, t.Name+": FK "+f.Column+" references non-dimension "+f.Ref)
			}
		}
	}
	for _, l := range FactLinks() {
		from, ok := byName[l.From]
		if !ok {
			problems = append(problems, "fact link from unknown table "+l.From)
			continue
		}
		if _, ok := byName[l.To]; !ok {
			problems = append(problems, "fact link to unknown table "+l.To)
		}
		for _, c := range l.Columns {
			if from.ColumnIndex(c) < 0 {
				problems = append(problems, l.From+": fact link column "+c+" missing")
			}
		}
	}
	return problems
}

// SurrogateKey returns the name of a table's surrogate key column. For
// dimensions this is the single primary key column; for fact tables it
// is the first primary key component's partner, so callers should use
// PrimaryKey directly for facts.
func SurrogateKey(t *Table) string {
	return t.PrimaryKey[0]
}
