// Package schema defines the TPC-DS "snowstorm" schema: 24 tables (7 fact,
// 17 dimension) modeling a retail product supplier selling through three
// channels — store, catalog and web — plus a shared inventory fact
// (paper §2, Table 1, Figure 1).
//
// The catalog is the single source of truth for the rest of the system:
// the data generator derives column value domains from it, the storage
// layer derives physical column types, the SQL binder resolves names
// against it, and the workload classifier uses the channel partition
// (store+web = ad-hoc, catalog = reporting) mandated by §2.2.
package schema

import "strings"

// Kind distinguishes fact tables from dimension tables.
type Kind int

const (
	// Fact tables store frequently added transaction data and scale
	// linearly with the scale factor.
	Fact Kind = iota
	// Dimension tables supply context for fact rows and scale
	// sub-linearly (or not at all).
	Dimension
)

func (k Kind) String() string {
	if k == Fact {
		return "fact"
	}
	return "dimension"
}

// Channel identifies the sales channel a table belongs to. The channel
// determines the workload class of queries referencing the table: per
// §2.2, the catalog channel constitutes the reporting part of the schema
// (complex auxiliary structures allowed) while store and web constitute
// the ad-hoc part.
type Channel int

const (
	// Shared marks dimensions referenced by more than one channel.
	Shared Channel = iota
	// Store is the store sales channel (ad-hoc part).
	Store
	// Catalog is the catalog sales channel (reporting part).
	Catalog
	// Web is the internet sales channel (ad-hoc part).
	Web
)

func (c Channel) String() string {
	switch c {
	case Store:
		return "store"
	case Catalog:
		return "catalog"
	case Web:
		return "web"
	default:
		return "shared"
	}
}

// Type is the logical column type.
type Type int

const (
	// Identifier is a surrogate or business key (int64).
	Identifier Type = iota
	// Integer is a plain integer quantity or count.
	Integer
	// Decimal is a fixed-point money or rate value (stored as float64).
	Decimal
	// Char is a fixed-length string.
	Char
	// Varchar is a variable-length string.
	Varchar
	// Date is a calendar date (stored as days since epoch).
	Date
)

func (t Type) String() string {
	switch t {
	case Identifier:
		return "identifier"
	case Integer:
		return "integer"
	case Decimal:
		return "decimal"
	case Char:
		return "char"
	case Varchar:
		return "varchar"
	default:
		return "date"
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
	// Len is the declared length for Char/Varchar columns and the
	// precision hint for numeric columns; it drives the flat-file row
	// width estimate (Table 1 reports raw flat-file row lengths).
	Len int
	// Nullable marks columns that may carry NULL in the generated data.
	Nullable bool
}

// avgWidth estimates the average raw flat-file width in bytes of a value
// of this column, matching footnote 4 of the paper ("raw size of flat
// files as created by the data generator").
func (c Column) avgWidth() float64 {
	switch c.Type {
	case Identifier:
		return 7
	case Integer:
		return 4
	case Decimal:
		return 5
	case Date:
		return 10
	case Char, Varchar:
		// The generator does not pad text fields in flat files: a 50-char
		// s_store_name holds a short synthesized word. Short declared
		// fields (flags, state codes) are filled fully; longer fields fill
		// roughly 40% plus a small constant, calibrated so the aggregate
		// row lengths reproduce Table 1 (min 16, max 317, avg 136).
		if c.Len <= 4 {
			return float64(c.Len)
		}
		return float64(c.Len)*0.3 + 2
	default:
		return float64(c.Len)
	}
}

// ForeignKey declares that Column of the owning table references the
// surrogate key of Ref.
type ForeignKey struct {
	Column string
	Ref    string // referenced table name
}

// FactLink is a composite relationship between two fact tables, such as
// store_returns(item_sk, ticket_number) -> store_sales. The paper (§2.2)
// uses these for large fact-to-fact joins; they are tracked separately
// from the 104 declared single-column foreign keys of Table 1.
type FactLink struct {
	From    string
	To      string
	Columns []string // columns on From forming the link
}

// SCDClass categorizes dimensions for the data-maintenance workload
// (§4.2): static dimensions are loaded once and never updated; history
// keeping dimensions are versioned with rec_start/rec_end dates (type-2
// SCD); non-history keeping dimensions are updated in place (type-1).
type SCDClass int

const (
	// StaticDim dimensions (date_dim, time_dim, reason, ...) never change.
	StaticDim SCDClass = iota
	// NonHistory dimensions are updated in place (Figure 8).
	NonHistory
	// HistoryKeeping dimensions get a new revision per update (Figure 9).
	HistoryKeeping
)

func (s SCDClass) String() string {
	switch s {
	case StaticDim:
		return "static"
	case NonHistory:
		return "non-history"
	default:
		return "history-keeping"
	}
}

// Table describes one table of the snowstorm schema.
type Table struct {
	Name        string
	Kind        Kind
	Channel     Channel
	SCD         SCDClass
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	// BusinessKey names the column resembling the OLTP primary key
	// (§4.2); empty for fact tables.
	BusinessKey string
}

// Column returns the named column and whether it exists.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AvgRowBytes estimates the average raw flat-file row length, including
// one pipe separator per field (dsdgen emits '|'-separated rows).
func (t *Table) AvgRowBytes() float64 {
	var w float64
	for _, c := range t.Columns {
		w += c.avgWidth()
	}
	return w + float64(len(t.Columns)) // one separator/terminator per field
}

// IsAdHocPart reports whether queries referencing this table fall into
// the ad-hoc portion of the schema (§2.2: store and web channels; shared
// dimensions do not by themselves make a query ad-hoc or reporting).
func (t *Table) IsAdHocPart() bool {
	return t.Channel == Store || t.Channel == Web
}

// HasColumnPrefix reports whether every column starts with the given
// prefix (TPC-DS uses per-table column prefixes, e.g. "ss_").
func (t *Table) HasColumnPrefix(prefix string) bool {
	for _, c := range t.Columns {
		if !strings.HasPrefix(c.Name, prefix) {
			return false
		}
	}
	return true
}
