package schema

import (
	"strings"
	"testing"
)

func TestCatalogIsValid(t *testing.T) {
	for _, p := range Validate() {
		t.Error(p)
	}
}

// TestSchemaStatisticsMatchPaper pins the Table 1 numbers of the paper:
// 7 fact tables, 17 dimension tables, column counts min 3 / max 34 / avg
// 18, and 104 declared foreign keys.
func TestSchemaStatisticsMatchPaper(t *testing.T) {
	s := ComputeStatistics()
	if s.FactTables != 7 {
		t.Errorf("fact tables = %d, paper says 7", s.FactTables)
	}
	if s.DimensionTables != 17 {
		t.Errorf("dimension tables = %d, paper says 17", s.DimensionTables)
	}
	if s.MinColumns != 3 {
		t.Errorf("min columns = %d, paper says 3", s.MinColumns)
	}
	if s.MaxColumns != 34 {
		t.Errorf("max columns = %d, paper says 34", s.MaxColumns)
	}
	if s.AvgColumns < 17 || s.AvgColumns > 19 {
		t.Errorf("avg columns = %.1f, paper says ~18", s.AvgColumns)
	}
	if s.ForeignKeys != 104 {
		t.Errorf("foreign keys = %d, paper says 104", s.ForeignKeys)
	}
}

// TestRowLengthsMatchPaperShape checks the flat-file row-length estimates
// against Table 1 (min 16, max 317, avg 136). Our widths are estimates of
// the generator's average output, so the test pins the shape: the
// smallest row is the 4-column inventory fact near 16 bytes, the largest
// is a wide dimension near ~300, and the average lands near ~136.
func TestRowLengthsMatchPaperShape(t *testing.T) {
	s := ComputeStatistics()
	if s.MinRowBytes < 10 || s.MinRowBytes > 30 {
		t.Errorf("min row bytes = %.0f, paper says 16", s.MinRowBytes)
	}
	if s.MaxRowBytes < 250 || s.MaxRowBytes > 400 {
		t.Errorf("max row bytes = %.0f, paper says 317", s.MaxRowBytes)
	}
	if s.AvgRowBytes < 100 || s.AvgRowBytes > 180 {
		t.Errorf("avg row bytes = %.0f, paper says 136", s.AvgRowBytes)
	}
}

func TestTableCount(t *testing.T) {
	if n := len(Tables()); n != 24 {
		t.Fatalf("table count = %d, want 24", n)
	}
}

// TestStoreSalesSnowflake verifies the Figure 1 snowflake: store_sales
// references the classic dimensions, customer is normalized into
// address/demographics, and household demographics snowflakes into
// income_band.
func TestStoreSalesSnowflake(t *testing.T) {
	byName := ByName()
	ss := byName["store_sales"]
	if ss == nil {
		t.Fatal("store_sales missing")
	}
	wantRefs := []string{
		"date_dim", "time_dim", "item", "customer", "customer_demographics",
		"household_demographics", "customer_address", "store", "promotion",
	}
	refs := map[string]bool{}
	for _, f := range ss.ForeignKeys {
		refs[f.Ref] = true
	}
	for _, w := range wantRefs {
		if !refs[w] {
			t.Errorf("store_sales does not reference %s", w)
		}
	}
	// Snowflake second level: customer -> customer_address, and
	// household_demographics -> income_band.
	cust := byName["customer"]
	found := false
	for _, f := range cust.ForeignKeys {
		if f.Ref == "customer_address" {
			found = true
		}
	}
	if !found {
		t.Error("customer does not snowflake into customer_address")
	}
	hd := byName["household_demographics"]
	if len(hd.ForeignKeys) != 1 || hd.ForeignKeys[0].Ref != "income_band" {
		t.Error("household_demographics does not snowflake into income_band")
	}
}

// TestCircularAddressRelationship verifies the paper's "challenging"
// circular relationship: customer_address is referenced both directly
// from store_sales (address at time of sale) and from customer (current
// address).
func TestCircularAddressRelationship(t *testing.T) {
	byName := ByName()
	direct, viaCustomer := false, false
	for _, f := range byName["store_sales"].ForeignKeys {
		if f.Ref == "customer_address" {
			direct = true
		}
	}
	for _, f := range byName["customer"].ForeignKeys {
		if f.Ref == "customer_address" {
			viaCustomer = true
		}
	}
	if !direct || !viaCustomer {
		t.Errorf("circular address relationship missing: direct=%v via customer=%v", direct, viaCustomer)
	}
}

func TestFactLinks(t *testing.T) {
	links := FactLinks()
	if len(links) != 3 {
		t.Fatalf("fact links = %d, want 3 (one per channel)", len(links))
	}
	byName := ByName()
	for _, l := range links {
		from, to := byName[l.From], byName[l.To]
		if from == nil || to == nil {
			t.Fatalf("link %s->%s references unknown table", l.From, l.To)
		}
		if from.Kind != Fact || to.Kind != Fact {
			t.Errorf("link %s->%s is not fact-to-fact", l.From, l.To)
		}
		if len(l.Columns) != 2 {
			t.Errorf("link %s->%s should use the (item, order) pair", l.From, l.To)
		}
	}
}

// TestChannelPartition verifies §2.2: store and web are the ad-hoc part,
// catalog is the reporting part.
func TestChannelPartition(t *testing.T) {
	for _, tb := range Tables() {
		switch tb.Channel {
		case Store, Web:
			if !tb.IsAdHocPart() {
				t.Errorf("%s should be in the ad-hoc part", tb.Name)
			}
		case Catalog:
			if tb.IsAdHocPart() {
				t.Errorf("%s should be in the reporting part", tb.Name)
			}
		}
	}
	byName := ByName()
	if byName["catalog_sales"].Channel != Catalog {
		t.Error("catalog_sales must be in the catalog (reporting) channel")
	}
	if byName["store_sales"].Channel != Store || byName["web_sales"].Channel != Web {
		t.Error("store_sales/web_sales must be in the ad-hoc channels")
	}
}

// TestSharedDimensions verifies that the snowstorm shares its core
// dimensions between channels (§2: "multiple snowflake schemas with
// shared dimensions").
func TestSharedDimensions(t *testing.T) {
	shared := map[string]bool{}
	for _, tb := range Tables() {
		if tb.Kind == Dimension && tb.Channel == Shared {
			shared[tb.Name] = true
		}
	}
	for _, want := range []string{"item", "customer", "date_dim", "time_dim", "customer_address", "promotion", "warehouse"} {
		if !shared[want] {
			t.Errorf("dimension %s should be shared between channels", want)
		}
	}
}

func TestColumnPrefixes(t *testing.T) {
	prefixes := map[string]string{
		"store_sales": "ss_", "store_returns": "sr_",
		"catalog_sales": "cs_", "catalog_returns": "cr_",
		"web_sales": "ws_", "web_returns": "wr_",
		"inventory": "inv_", "store": "s_", "call_center": "cc_",
		"catalog_page": "cp_", "web_site": "web_", "web_page": "wp_",
		"warehouse": "w_", "customer": "c_", "customer_address": "ca_",
		"customer_demographics": "cd_", "household_demographics": "hd_",
		"income_band": "ib_", "item": "i_", "promotion": "p_",
		"reason": "r_", "ship_mode": "sm_", "time_dim": "t_", "date_dim": "d_",
	}
	byName := ByName()
	for name, prefix := range prefixes {
		tb := byName[name]
		if tb == nil {
			t.Errorf("table %s missing", name)
			continue
		}
		if !tb.HasColumnPrefix(prefix) {
			t.Errorf("table %s has columns without prefix %q", name, prefix)
		}
	}
}

// TestSCDClassification verifies §4.2's dimension categories: static
// dimensions include date_dim, time_dim and reason; history-keeping
// dimensions carry rec_start_date/rec_end_date pairs; non-static
// dimensions carry a business key.
func TestSCDClassification(t *testing.T) {
	byName := ByName()
	for _, name := range []string{"date_dim", "time_dim", "reason"} {
		if byName[name].SCD != StaticDim {
			t.Errorf("%s should be a static dimension", name)
		}
	}
	for _, tb := range Tables() {
		if tb.Kind != Dimension {
			continue
		}
		hasRecDates := false
		start, end := false, false
		for _, c := range tb.Columns {
			if strings.HasSuffix(c.Name, "rec_start_date") {
				start = true
			}
			if strings.HasSuffix(c.Name, "rec_end_date") {
				end = true
			}
		}
		hasRecDates = start && end
		if tb.SCD == HistoryKeeping && !hasRecDates {
			t.Errorf("%s is history-keeping but lacks rec_start/rec_end dates", tb.Name)
		}
		if tb.SCD != HistoryKeeping && hasRecDates {
			t.Errorf("%s has rec dates but is not history-keeping", tb.Name)
		}
		if tb.SCD != StaticDim && tb.BusinessKey == "" {
			t.Errorf("%s is maintainable but has no business key", tb.Name)
		}
		if tb.BusinessKey != "" {
			if _, ok := tb.Column(tb.BusinessKey); !ok {
				t.Errorf("%s business key %s not a column", tb.Name, tb.BusinessKey)
			}
		}
	}
}

func TestColumnLookup(t *testing.T) {
	tb := ByName()["item"]
	if c, ok := tb.Column("i_brand"); !ok || c.Type != Char {
		t.Error("item.i_brand lookup failed")
	}
	if _, ok := tb.Column("nonexistent"); ok {
		t.Error("lookup of nonexistent column succeeded")
	}
	if tb.ColumnIndex("i_item_sk") != 0 {
		t.Error("i_item_sk should be column 0")
	}
	if tb.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex of missing column should be -1")
	}
}

func TestKindAndChannelStrings(t *testing.T) {
	if Fact.String() != "fact" || Dimension.String() != "dimension" {
		t.Error("Kind.String broken")
	}
	if Store.String() != "store" || Catalog.String() != "catalog" ||
		Web.String() != "web" || Shared.String() != "shared" {
		t.Error("Channel.String broken")
	}
	if StaticDim.String() != "static" || NonHistory.String() != "non-history" ||
		HistoryKeeping.String() != "history-keeping" {
		t.Error("SCDClass.String broken")
	}
}

func TestCatalogSalesIsWidest(t *testing.T) {
	// The paper's max of 34 columns corresponds to catalog_sales (and
	// web_sales); income_band is the 3-column minimum.
	byName := ByName()
	if n := len(byName["catalog_sales"].Columns); n != 34 {
		t.Errorf("catalog_sales has %d columns, want 34", n)
	}
	if n := len(byName["web_sales"].Columns); n != 34 {
		t.Errorf("web_sales has %d columns, want 34", n)
	}
	if n := len(byName["income_band"].Columns); n != 3 {
		t.Errorf("income_band has %d columns, want 3", n)
	}
}
