package storage

import (
	"fmt"
	"time"
)

// The date epoch is 1900-01-01; date_dim spans 1900-01-01 .. 2100-01-01
// (73049 days), matching the official calendar dimension. Surrogate keys
// of date_dim are days-since-epoch + 1 so that key 1 is 1900-01-01 and
// keys are dense and join-friendly.

// DateDimRows is the number of calendar days covered by date_dim.
const DateDimRows = 73049

// epochUnixDays is 1900-01-01 expressed in days since 1970-01-01
// (70 years of which 17 are leap: -(70*365 + 17)).
const epochUnixDays = -25567

// DaysFromYMD converts a calendar date to days since 1900-01-01 with
// exact integer arithmetic. The previous implementation divided
// time.Duration hours by 24 and truncated, which is one day off for any
// date far enough from the epoch that the float quotient lands just
// below an integer.
func DaysFromYMD(year, month, day int) int64 {
	return daysFromCivil(year, month, day) - epochUnixDays
}

// YMDFromDays converts days since 1900-01-01 to calendar components.
func YMDFromDays(days int64) (year, month, day int) {
	return civilFromDays(days + epochUnixDays)
}

// daysFromCivil returns the day count since 1970-01-01 of a proleptic
// Gregorian date (Howard Hinnant's public-domain civil-calendar
// algorithm). Eras of 400 years (146097 days) make every division
// exact; no time package, no DST/leap-second surface.
func daysFromCivil(year, month, day int) int64 {
	y := int64(year)
	if month <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if month > 2 {
		mp = int64(month) - 3
	} else {
		mp = int64(month) + 9
	}
	doy := (153*mp+2)/5 + int64(day) - 1   // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // 719468 = days 0000-03-01 .. 1970-01-01
}

// civilFromDays is the inverse of daysFromCivil.
func civilFromDays(z int64) (year, month, day int) {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	day = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		month = int(mp + 3)
	} else {
		month = int(mp - 9)
	}
	if month <= 2 {
		y++
	}
	return int(y), month, day
}

// Weekday returns the 0-based day of week (0 = Sunday) for days since
// the epoch. 1900-01-01 was a Monday.
func Weekday(days int64) int {
	return int((days + 1) % 7)
}

// DayName returns the English day name for days since epoch.
func DayName(days int64) string {
	names := [...]string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	return names[Weekday(days)]
}

// FormatDate renders days since epoch as ISO yyyy-mm-dd.
func FormatDate(days int64) string {
	y, m, d := YMDFromDays(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseDate parses an ISO yyyy-mm-dd string to days since epoch.
// time.Parse validates the calendar (rejecting month 13 or Feb 30); the
// day arithmetic itself is exact integer math.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("storage: bad date %q: %w", s, err)
	}
	return DaysFromYMD(t.Year(), int(t.Month()), t.Day()), nil
}

// DateSK converts days since epoch to the date_dim surrogate key
// (1-based, dense).
func DateSK(days int64) int64 { return days + 1 }

// DaysFromSK converts a date_dim surrogate key back to days since epoch.
func DaysFromSK(sk int64) int64 { return sk - 1 }

// IsLeapYear reports whether the year is a Gregorian leap year.
func IsLeapYear(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}
