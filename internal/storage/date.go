package storage

import (
	"fmt"
	"time"
)

// The date epoch is 1900-01-01; date_dim spans 1900-01-01 .. 2100-01-01
// (73049 days), matching the official calendar dimension. Surrogate keys
// of date_dim are days-since-epoch + 1 so that key 1 is 1900-01-01 and
// keys are dense and join-friendly.

var epoch = time.Date(1900, 1, 1, 0, 0, 0, 0, time.UTC)

// DateDimRows is the number of calendar days covered by date_dim.
const DateDimRows = 73049

// DaysFromYMD converts a calendar date to days since 1900-01-01.
func DaysFromYMD(year, month, day int) int64 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(epoch).Hours() / 24)
}

// YMDFromDays converts days since 1900-01-01 to calendar components.
func YMDFromDays(days int64) (year, month, day int) {
	t := epoch.AddDate(0, 0, int(days))
	return t.Year(), int(t.Month()), t.Day()
}

// Weekday returns the 0-based day of week (0 = Sunday) for days since
// the epoch. 1900-01-01 was a Monday.
func Weekday(days int64) int {
	return int((days + 1) % 7)
}

// DayName returns the English day name for days since epoch.
func DayName(days int64) string {
	names := [...]string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	return names[Weekday(days)]
}

// FormatDate renders days since epoch as ISO yyyy-mm-dd.
func FormatDate(days int64) string {
	y, m, d := YMDFromDays(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseDate parses an ISO yyyy-mm-dd string to days since epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("storage: bad date %q: %w", s, err)
	}
	return int64(t.Sub(epoch).Hours() / 24), nil
}

// DateSK converts days since epoch to the date_dim surrogate key
// (1-based, dense).
func DateSK(days int64) int64 { return days + 1 }

// DaysFromSK converts a date_dim surrogate key back to days since epoch.
func DaysFromSK(sk int64) int64 { return sk - 1 }

// IsLeapYear reports whether the year is a Gregorian leap year.
func IsLeapYear(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}
