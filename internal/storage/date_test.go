package storage

import (
	"testing"
	"time"
)

// TestDateIntegerMath pins the float-hour arithmetic bug: the day count
// used to be computed as t.Sub(epoch).Hours()/24 truncated to int64,
// which is off by one whenever the float quotient lands just below an
// integer. The table covers century boundaries, leap days, and the
// 73049-day date_dim range endpoints.
func TestDateIntegerMath(t *testing.T) {
	cases := []struct {
		y, m, d int
		days    int64
	}{
		{1900, 1, 1, 0}, // range start
		{1900, 1, 2, 1},
		{1900, 2, 28, 58}, // 1900 is NOT a leap year (century rule)
		{1900, 3, 1, 59},
		{1900, 12, 31, 364},
		{1901, 1, 1, 365},
		{1999, 12, 31, 36523}, // century boundary
		{2000, 1, 1, 36524},
		{2000, 2, 28, 36582}, // 2000 IS a leap year (400 rule)
		{2000, 2, 29, 36583},
		{2000, 3, 1, 36584},
		{2004, 2, 29, 38044},      // ordinary leap day
		{2099, 12, 31, 73048},     // last date_dim day
		{2100, 1, 1, DateDimRows}, // one past the range: 73049
	}
	for _, c := range cases {
		if got := DaysFromYMD(c.y, c.m, c.d); got != c.days {
			t.Errorf("DaysFromYMD(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.days)
		}
		y, m, d := YMDFromDays(c.days)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("YMDFromDays(%d) = %d-%d-%d, want %d-%d-%d",
				c.days, y, m, d, c.y, c.m, c.d)
		}
	}
}

// TestDateSweepAgainstTime checks every day of the 73049-day range
// against the time package: exact agreement on calendar components and
// weekday, and strict monotonicity of the day count.
func TestDateSweepAgainstTime(t *testing.T) {
	ref := time.Date(1900, 1, 1, 0, 0, 0, 0, time.UTC)
	for days := int64(0); days <= DateDimRows; days++ {
		y, m, d := YMDFromDays(days)
		if y != ref.Year() || m != int(ref.Month()) || d != ref.Day() {
			t.Fatalf("day %d: got %d-%d-%d, time says %s", days, y, m, d, ref.Format("2006-01-02"))
		}
		if back := DaysFromYMD(y, m, d); back != days {
			t.Fatalf("DaysFromYMD(YMDFromDays(%d)) = %d", days, back)
		}
		if wd := Weekday(days); wd != int(ref.Weekday()) {
			t.Fatalf("day %d: weekday %d, time says %d", days, wd, int(ref.Weekday()))
		}
		ref = ref.AddDate(0, 0, 1)
	}
}
