package storage

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tpcds/internal/schema"
)

// Flat-file format: one row per line, fields separated by '|', with a
// trailing '|' before the newline (dsdgen's format). NULL is the empty
// field. Dates are ISO yyyy-mm-dd.

// WriteFlat writes the whole table in flat-file format.
func (t *Table) WriteFlat(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	n := t.NumRows()
	for r := 0; r < n; r++ {
		if err := writeFlatRow(bw, t, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFlatRow(bw *bufio.Writer, t *Table, r int) error {
	for c := 0; c < t.NumCols(); c++ {
		if _, err := bw.WriteString(t.Get(r, c).String()); err != nil {
			return err
		}
		if err := bw.WriteByte('|'); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// ParseField converts one flat-file field to a Value of the given
// logical type. The empty field is NULL.
func ParseField(field string, typ schema.Type) (Value, error) {
	if field == "" {
		return Null, nil
	}
	switch typ {
	case schema.Identifier, schema.Integer:
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("storage: bad integer field %q: %w", field, err)
		}
		return Int(v), nil
	case schema.Decimal:
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Null, fmt.Errorf("storage: bad decimal field %q: %w", field, err)
		}
		return Float(v), nil
	case schema.Date:
		d, err := ParseDate(field)
		if err != nil {
			return Null, err
		}
		return DateV(d), nil
	default:
		return Str(field), nil
	}
}

// ReadFlat loads flat-file rows into the table, appending to existing
// content. It returns the number of rows loaded.
func (t *Table) ReadFlat(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	rows := 0
	row := make([]Value, t.NumCols())
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		line = strings.TrimSuffix(line, "|")
		fields := strings.Split(line, "|")
		if len(fields) != t.NumCols() {
			return rows, fmt.Errorf("storage: %s row %d has %d fields, want %d",
				t.Def.Name, rows+1, len(fields), t.NumCols())
		}
		for i, f := range fields {
			v, err := ParseField(f, t.Def.Columns[i].Type)
			if err != nil {
				return rows, fmt.Errorf("%s row %d col %s: %w", t.Def.Name, rows+1, t.Def.Columns[i].Name, err)
			}
			row[i] = v
		}
		t.Append(row)
		rows++
	}
	return rows, sc.Err()
}
