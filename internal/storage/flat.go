package storage

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tpcds/internal/schema"
)

// Flat-file format: one row per line, fields separated by '|', with a
// trailing '|' before the newline (dsdgen's format). NULL is the empty
// field. Dates are ISO yyyy-mm-dd. String payloads containing the
// delimiter, a backslash, or a line break are backslash-escaped
// (\|, \\, \n, \r), and the empty string is written as the marker
// \e — distinguishing it from NULL — so every string round-trips
// exactly. The marker cannot be forged by payload bytes: a literal
// backslash is always written as \\, so a bare \e in a field can only
// come from the writer.

// WriteFlat writes the whole table in flat-file format.
func (t *Table) WriteFlat(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	n := t.NumRows()
	for r := 0; r < n; r++ {
		if err := writeFlatRow(bw, t, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFlatRow(bw *bufio.Writer, t *Table, r int) error {
	for c := 0; c < t.NumCols(); c++ {
		v := t.Get(r, c)
		s := v.String()
		if v.K == KindString {
			if s == "" {
				// Explicit empty-string marker: an empty field means
				// NULL, so "" needs a spelled-out escape to survive.
				s = `\e`
			} else {
				// Only strings can carry framing bytes; numeric and date
				// renderings never contain '|', '\', or line breaks.
				s = escapeFlat(s)
			}
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
		if err := bw.WriteByte('|'); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// escapeFlat protects a string payload from the flat-file framing: the
// field delimiter, the escape character itself, and line breaks (the
// reader is line-based, so an unescaped newline would split the row).
func escapeFlat(s string) string {
	if !strings.ContainsAny(s, "|\\\n\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '|':
			b.WriteString(`\|`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// splitFlat splits one line into fields, resolving the escapes
// writeFlatRow emits. An unescaped '|' terminates a field; the trailing
// delimiter closes the last field rather than opening an empty one
// (lines without the trailing '|' are also accepted). The \e marker
// contributes no bytes but flags the field as an explicit (non-NULL)
// empty string in the parallel explicit slice. A dangling backslash or
// an unknown escape yields the literal character, so arbitrary input
// never fails to split.
func splitFlat(line string) (fields []string, explicit []bool) {
	var b strings.Builder
	cur := false // current field carries the explicit-empty marker
	endedOnDelim := false
	for i := 0; i < len(line); i++ {
		switch c := line[i]; c {
		case '|':
			fields = append(fields, b.String())
			explicit = append(explicit, cur)
			b.Reset()
			cur = false
			endedOnDelim = true
			continue
		case '\\':
			if i+1 < len(line) {
				i++
				switch line[i] {
				case 'n':
					b.WriteByte('\n')
				case 'r':
					b.WriteByte('\r')
				case 'e':
					cur = true
				default:
					b.WriteByte(line[i])
				}
			} else {
				b.WriteByte('\\')
			}
		default:
			b.WriteByte(c)
		}
		endedOnDelim = false
	}
	if !endedOnDelim && (b.Len() > 0 || len(fields) > 0 || cur) {
		fields = append(fields, b.String())
		explicit = append(explicit, cur)
	}
	return fields, explicit
}

// parseFlatValue converts one split field to a Value, honoring the
// explicit-empty marker: \e decodes to the empty string for string
// columns and is rejected for typed columns, which have no empty-string
// value to round-trip.
func parseFlatValue(field string, explicit bool, typ schema.Type) (Value, error) {
	if field == "" && explicit {
		switch typ {
		case schema.Identifier, schema.Integer, schema.Decimal, schema.Date:
			return Null, fmt.Errorf("storage: explicit empty string in %v field", typ)
		}
		return Str(""), nil
	}
	return ParseField(field, typ)
}

// ParseField converts one flat-file field to a Value of the given
// logical type. The empty field is NULL.
func ParseField(field string, typ schema.Type) (Value, error) {
	if field == "" {
		return Null, nil
	}
	switch typ {
	case schema.Identifier, schema.Integer:
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("storage: bad integer field %q: %w", field, err)
		}
		return Int(v), nil
	case schema.Decimal:
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Null, fmt.Errorf("storage: bad decimal field %q: %w", field, err)
		}
		return Float(v), nil
	case schema.Date:
		d, err := ParseDate(field)
		if err != nil {
			return Null, err
		}
		return DateV(d), nil
	default:
		return Str(field), nil
	}
}

// ReadFlat loads flat-file rows into the table, appending to existing
// content. It returns the number of rows loaded.
func (t *Table) ReadFlat(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	rows := 0
	row := make([]Value, t.NumCols())
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		fields, explicit := splitFlat(line)
		if len(fields) != t.NumCols() {
			return rows, fmt.Errorf("storage: %s row %d has %d fields, want %d",
				t.Def.Name, rows+1, len(fields), t.NumCols())
		}
		for i, f := range fields {
			v, err := parseFlatValue(f, explicit[i], t.Def.Columns[i].Type)
			if err != nil {
				return rows, fmt.Errorf("%s row %d col %s: %w", t.Def.Name, rows+1, t.Def.Columns[i].Name, err)
			}
			row[i] = v
		}
		t.Append(row)
		rows++
	}
	return rows, sc.Err()
}
