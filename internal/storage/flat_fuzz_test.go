package storage

import (
	"strings"
	"testing"
)

// FuzzReadFlat feeds arbitrary bytes into the flat-file reader over a
// mixed-type table. Malformed input must surface as an error (or load
// cleanly), never as a panic; whatever loads must also survive being
// written back out.
func FuzzReadFlat(f *testing.F) {
	f.Add("1|5|3.25|hello world|1999-02-21|\n2|||||\n")
	f.Add("1|2|\n")
	f.Add(`1||0.5|esc\|aped|` + "|\n")
	f.Add("x|1|1.0|a|2000-01-01|\n")
	f.Add("1|1|1.0|a\\|2000-01-01|\n")
	f.Add("||||\n\n|")
	f.Add("1|2|3.0|\\e|2020-01-01|\n")    // explicit empty string
	f.Add("\\e|1|1.0|a|2000-01-01|\n")    // \e in typed field: error
	f.Add("1|2|3.0|\\e\\e|2020-01-01|\n") // doubled marker still ""
	f.Add("1|2|3.0|a\\eb|2020-01-01|\n")  // marker inside payload bytes
	f.Add("1|2|3.0|\\\\e|2020-01-01|\n")  // escaped backslash + e: literal \e
	f.Fuzz(func(t *testing.T, data string) {
		tb := NewTable(testDef())
		n, err := tb.ReadFlat(strings.NewReader(data))
		if err != nil {
			return
		}
		if n != tb.NumRows() {
			t.Fatalf("ReadFlat reported %d rows, table has %d", n, tb.NumRows())
		}
		var sb strings.Builder
		if err := tb.WriteFlat(&sb); err != nil {
			t.Fatalf("WriteFlat after clean load: %v", err)
		}
		// Write→read must be lossless: reloading our own output yields
		// the identical table (NULL vs explicit "" included).
		tb2 := NewTable(testDef())
		if _, err := tb2.ReadFlat(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("ReadFlat of own output: %v", err)
		}
		if tb2.NumRows() != tb.NumRows() {
			t.Fatalf("reload: %d rows, want %d", tb2.NumRows(), tb.NumRows())
		}
		for r := 0; r < tb.NumRows(); r++ {
			for c := 0; c < tb.NumCols(); c++ {
				if a, b := tb.Get(r, c), tb2.Get(r, c); a != b {
					t.Fatalf("reload row %d col %d: %v != %v", r, c, a, b)
				}
			}
		}
	})
}
