package storage

import (
	"strings"
	"testing"
)

// FuzzReadFlat feeds arbitrary bytes into the flat-file reader over a
// mixed-type table. Malformed input must surface as an error (or load
// cleanly), never as a panic; whatever loads must also survive being
// written back out.
func FuzzReadFlat(f *testing.F) {
	f.Add("1|5|3.25|hello world|1999-02-21|\n2|||||\n")
	f.Add("1|2|\n")
	f.Add(`1||0.5|esc\|aped|` + "|\n")
	f.Add("x|1|1.0|a|2000-01-01|\n")
	f.Add("1|1|1.0|a\\|2000-01-01|\n")
	f.Add("||||\n\n|")
	f.Fuzz(func(t *testing.T, data string) {
		tb := NewTable(testDef())
		n, err := tb.ReadFlat(strings.NewReader(data))
		if err != nil {
			return
		}
		if n != tb.NumRows() {
			t.Fatalf("ReadFlat reported %d rows, table has %d", n, tb.NumRows())
		}
		var sb strings.Builder
		if err := tb.WriteFlat(&sb); err != nil {
			t.Fatalf("WriteFlat after clean load: %v", err)
		}
	})
}
