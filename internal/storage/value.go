// Package storage implements the in-memory columnar storage engine the
// benchmark workload runs against: typed column vectors with null
// bitmaps, tables addressed by row id, and the pipe-separated flat-file
// format the data generator emits and the data-maintenance workload
// consumes (paper §4.2: "the data extraction step ... is assumed and
// represented in the benchmark in the form of generated flat files").
package storage

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker.
	KindNull Kind = iota
	// KindInt is a 64-bit integer (also used for surrogate keys).
	KindInt
	// KindFloat is a 64-bit float (decimal columns).
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindDate is a calendar date stored as days since 1900-01-01.
	KindDate
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return "invalid"
	}
}

// Value is a compact tagged union avoiding interface boxing on the hot
// execution path.
type Value struct {
	K Kind
	I int64 // KindInt and KindDate payload
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// DateV returns a date value from days since 1900-01-01.
func DateV(days int64) Value { return Value{K: KindDate, I: days} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsFloat coerces numeric values to float64 (NULL and strings yield 0).
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt coerces numeric values to int64 (NULL and strings yield 0).
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindDate:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value in the flat-file format: dates as ISO
// yyyy-mm-dd, floats with two decimals, NULL as the empty string.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		// Two decimals is the flat-file convention for decimal columns,
		// but only when it round-trips: a value carrying more precision
		// (intermediate averages, tax rates) falls back to the shortest
		// exact representation instead of silently losing digits.
		s := strconv.FormatFloat(v.F, 'f', 2, 64)
		if p, err := strconv.ParseFloat(s, 64); err == nil && p == v.F {
			return s
		}
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return FormatDate(v.I)
	default:
		return fmt.Sprintf("<invalid kind %d>", v.K)
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// (int, float, date) compare numerically across kinds; strings compare
// lexicographically. Comparing a string with a number panics — the
// binder prevents such plans.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	aNum := a.K == KindInt || a.K == KindFloat || a.K == KindDate
	bNum := b.K == KindInt || b.K == KindFloat || b.K == KindDate
	if aNum && bNum {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K == KindString && b.K == KindString {
		return strings.Compare(a.S, b.S)
	}
	panic(fmt.Sprintf("storage: incomparable kinds %v and %v", a.K, b.K))
}

// Equal reports SQL equality semantics *for grouping*: NULLs group
// together. (Predicate equality with NULL is handled by the executor,
// which treats NULL comparisons as not-matching.)
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return Compare(a, b) == 0
}

// GroupKey renders a value for use in a hash-aggregation key. The
// encoding is injective per kind and cheap.
func (v Value) GroupKey() string {
	switch v.K {
	case KindNull:
		return "\x00n"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.I, 36)
	case KindFloat:
		return "\x00f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case KindDate:
		return "\x00d" + strconv.FormatInt(v.I, 36)
	default:
		return "\x00s" + v.S
	}
}

// AppendGroupKey appends GroupKey's encoding to buf without the
// intermediate string — the allocation-free variant for reusable key
// buffers on the aggregation and join hot paths. The bytes produced are
// identical to GroupKey's.
func (v Value) AppendGroupKey(buf []byte) []byte {
	switch v.K {
	case KindNull:
		return append(buf, 0, 'n')
	case KindInt:
		return strconv.AppendInt(append(buf, 0, 'i'), v.I, 36)
	case KindFloat:
		return strconv.AppendFloat(append(buf, 0, 'f'), v.F, 'b', -1, 64)
	case KindDate:
		return strconv.AppendInt(append(buf, 0, 'd'), v.I, 36)
	default:
		return append(append(buf, 0, 's'), v.S...)
	}
}
