package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"tpcds/internal/schema"
)

// TestFlatRoundTripAdversarialStrings pins the corruption bug: string
// payloads containing the field delimiter, the escape character, or
// line breaks used to be written raw, so ReadFlat either mis-split the
// row or failed on a field-count mismatch. With escaping they round
// trip exactly.
func TestFlatRoundTripAdversarialStrings(t *testing.T) {
	adversarial := []string{
		"a|b",
		"|",
		"||",
		"trailing|",
		"|leading",
		`back\slash`,
		`\`,
		`\\`,
		`\|`,
		"line\nbreak",
		"\n",
		"cr\rlf\n|",
		`mix|of\every\n|thing` + "\n\r|",
		"plain",
	}
	tb := NewTable(testDef())
	for i, s := range adversarial {
		tb.Append([]Value{Int(int64(i)), Null, Null, Str(s), Null})
	}
	var buf bytes.Buffer
	if err := tb.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(testDef())
	n, err := tb2.ReadFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFlat: %v", err)
	}
	if n != len(adversarial) {
		t.Fatalf("ReadFlat = %d rows, want %d", n, len(adversarial))
	}
	for i, s := range adversarial {
		if got := tb2.Get(i, 3).S; got != s {
			t.Errorf("row %d: %q round-tripped to %q", i, s, got)
		}
	}
}

// Property: any string except the empty one (NULL by format design)
// survives a full table write/read cycle.
func TestQuickFlatStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		tb := NewTable(testDef())
		tb.Append([]Value{Int(1), Null, Null, Str(s), Null})
		var buf bytes.Buffer
		if err := tb.WriteFlat(&buf); err != nil {
			return false
		}
		tb2 := NewTable(testDef())
		if n, err := tb2.ReadFlat(bytes.NewReader(buf.Bytes())); err != nil || n != 1 {
			return false
		}
		got := tb2.Get(0, 3)
		if s == "" {
			return got.IsNull()
		}
		return got.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFloatStringPrecision pins the decimal round-trip bug: values with
// more than two decimal digits were truncated by the fixed 'f',2
// rendering. The two-decimal convention holds when exact; otherwise the
// shortest exact representation is used.
func TestFloatStringPrecision(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2.5, "2.50"},
		{3.25, "3.25"},
		{0, "0.00"},
		{-1.5, "-1.50"},
		{1.005, "1.005"},
		{0.001, "0.001"},
		{123.456789, "123.456789"},
		{0.1, "0.10"}, // "0.10" parses back to exactly 0.1: convention kept
	}
	for _, c := range cases {
		if got := Float(c.v).String(); got != c.want {
			t.Errorf("Float(%v).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: float fields parse back to the identical bits.
func TestQuickFloatFieldRoundTrip(t *testing.T) {
	f := func(fl float64) bool {
		if fl != fl { // NaN has no flat-file representation
			return true
		}
		v, err := ParseField(Float(fl).String(), schema.Decimal)
		return err == nil && v.F == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
