package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"tpcds/internal/schema"
)

// TestFlatRoundTripAdversarialStrings pins the corruption bug: string
// payloads containing the field delimiter, the escape character, or
// line breaks used to be written raw, so ReadFlat either mis-split the
// row or failed on a field-count mismatch. With escaping they round
// trip exactly.
func TestFlatRoundTripAdversarialStrings(t *testing.T) {
	adversarial := []string{
		"a|b",
		"|",
		"||",
		"trailing|",
		"|leading",
		`back\slash`,
		`\`,
		`\\`,
		`\|`,
		"line\nbreak",
		"\n",
		"cr\rlf\n|",
		`mix|of\every\n|thing` + "\n\r|",
		"plain",
		"",   // explicit empty string, distinct from NULL
		`\e`, // literal backslash-e payload must not read back as ""
		"e",
	}
	tb := NewTable(testDef())
	for i, s := range adversarial {
		tb.Append([]Value{Int(int64(i)), Null, Null, Str(s), Null})
	}
	var buf bytes.Buffer
	if err := tb.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(testDef())
	n, err := tb2.ReadFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFlat: %v", err)
	}
	if n != len(adversarial) {
		t.Fatalf("ReadFlat = %d rows, want %d", n, len(adversarial))
	}
	for i, s := range adversarial {
		got := tb2.Get(i, 3)
		if got.K != KindString || got.S != s {
			t.Errorf("row %d: %q round-tripped to %v", i, s, got)
		}
	}
}

// TestFlatEmptyStringVsNull pins the empty-string bug: "" used to be
// written as an empty field and read back as NULL. The \e marker keeps
// the two distinct through a full write/read cycle.
func TestFlatEmptyStringVsNull(t *testing.T) {
	tb := NewTable(testDef())
	tb.Append([]Value{Int(1), Null, Null, Str(""), Null})
	tb.Append([]Value{Int(2), Null, Null, Null, Null})
	var buf bytes.Buffer
	if err := tb.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(testDef())
	if n, err := tb2.ReadFlat(bytes.NewReader(buf.Bytes())); err != nil || n != 2 {
		t.Fatalf("ReadFlat = %d, %v", n, err)
	}
	if got := tb2.Get(0, 3); got.K != KindString || got.S != "" {
		t.Errorf("explicit empty string read back as %v", got)
	}
	if got := tb2.Get(1, 3); !got.IsNull() {
		t.Errorf("NULL read back as %v", got)
	}
}

// TestFlatExplicitEmptyInTypedField: the \e marker has no meaning in a
// numeric or date column — typed columns have no empty-string value —
// so the reader must reject it rather than guess.
func TestFlatExplicitEmptyInTypedField(t *testing.T) {
	tb := NewTable(testDef())
	if _, err := tb.ReadFlat(bytes.NewReader([]byte(`\e|1|1.0|a|2000-01-01|` + "\n"))); err == nil {
		t.Error("explicit empty string in Identifier field loaded without error")
	}
}

// Property: every string — including the empty one, via the \e
// marker — survives a full table write/read cycle exactly.
func TestQuickFlatStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		tb := NewTable(testDef())
		tb.Append([]Value{Int(1), Null, Null, Str(s), Null})
		var buf bytes.Buffer
		if err := tb.WriteFlat(&buf); err != nil {
			return false
		}
		tb2 := NewTable(testDef())
		if n, err := tb2.ReadFlat(bytes.NewReader(buf.Bytes())); err != nil || n != 1 {
			return false
		}
		got := tb2.Get(0, 3)
		return got.K == KindString && got.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFloatStringPrecision pins the decimal round-trip bug: values with
// more than two decimal digits were truncated by the fixed 'f',2
// rendering. The two-decimal convention holds when exact; otherwise the
// shortest exact representation is used.
func TestFloatStringPrecision(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2.5, "2.50"},
		{3.25, "3.25"},
		{0, "0.00"},
		{-1.5, "-1.50"},
		{1.005, "1.005"},
		{0.001, "0.001"},
		{123.456789, "123.456789"},
		{0.1, "0.10"}, // "0.10" parses back to exactly 0.1: convention kept
	}
	for _, c := range cases {
		if got := Float(c.v).String(); got != c.want {
			t.Errorf("Float(%v).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: float fields parse back to the identical bits.
func TestQuickFloatFieldRoundTrip(t *testing.T) {
	f := func(fl float64) bool {
		if fl != fl { // NaN has no flat-file representation
			return true
		}
		v, err := ParseField(Float(fl).String(), schema.Decimal)
		return err == nil && v.F == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
