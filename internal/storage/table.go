package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tpcds/internal/schema"
)

// Column is a typed column vector with a null bitmap. The physical
// representation is chosen by the logical schema type: identifiers,
// integers and dates share the int64 vector; decimals use float64;
// char/varchar use the string vector.
type Column struct {
	Type  schema.Type
	ints  []int64
	flts  []float64
	strs  []string
	nulls []bool
}

func physKind(t schema.Type) Kind {
	switch t {
	case schema.Identifier, schema.Integer:
		return KindInt
	case schema.Decimal:
		return KindFloat
	case schema.Date:
		return KindDate
	default:
		return KindString
	}
}

// Len returns the number of entries in the column.
func (c *Column) Len() int { return len(c.nulls) }

// Get returns the value at row i.
func (c *Column) Get(i int) Value {
	if c.nulls[i] {
		return Null
	}
	switch physKind(c.Type) {
	case KindInt:
		return Int(c.ints[i])
	case KindFloat:
		return Float(c.flts[i])
	case KindDate:
		return DateV(c.ints[i])
	default:
		return Str(c.strs[i])
	}
}

// Append adds a value, coercing to the column's physical type. Appending
// a value of an incompatible kind panics (generator and loader bugs
// should fail loudly, not corrupt data).
func (c *Column) Append(v Value) {
	if v.IsNull() {
		c.nulls = append(c.nulls, true)
		switch physKind(c.Type) {
		case KindInt, KindDate:
			c.ints = append(c.ints, 0)
		case KindFloat:
			c.flts = append(c.flts, 0)
		default:
			c.strs = append(c.strs, "")
		}
		return
	}
	c.nulls = append(c.nulls, false)
	switch physKind(c.Type) {
	case KindInt, KindDate:
		if v.K != KindInt && v.K != KindDate {
			panic(fmt.Sprintf("storage: appending %v to %v column", v.K, c.Type))
		}
		c.ints = append(c.ints, v.I)
	case KindFloat:
		if v.K != KindFloat && v.K != KindInt {
			panic(fmt.Sprintf("storage: appending %v to decimal column", v.K))
		}
		c.flts = append(c.flts, v.AsFloat())
	default:
		if v.K != KindString {
			panic(fmt.Sprintf("storage: appending %v to string column", v.K))
		}
		c.strs = append(c.strs, v.S)
	}
}

// Set overwrites the value at row i (used by in-place dimension updates,
// Figure 8).
func (c *Column) Set(i int, v Value) {
	if v.IsNull() {
		c.nulls[i] = true
		return
	}
	c.nulls[i] = false
	switch physKind(c.Type) {
	case KindInt, KindDate:
		c.ints[i] = v.I
	case KindFloat:
		c.flts[i] = v.AsFloat()
	default:
		c.strs[i] = v.S
	}
}

// tableInstances issues process-unique table instance ids. Two tables
// can share a schema name (a CTE materialized by two concurrent
// queries, a table reloaded from flat files); caches keyed by name
// alone would serve one instance's derived data for the other, so every
// cache entry must also remember which instance — and which mutation
// epoch of it — the data was derived from.
var tableInstances atomic.Uint64

// Table is a columnar table instance bound to its schema definition.
type Table struct {
	Def  *schema.Table
	cols []Column

	// id is the process-unique instance identity; epoch counts data
	// mutations (appends, updates, deletes). Together they version the
	// table's contents for derived-data caches: statistics and indexes
	// are fresh only while both match. A row-count comparison is not
	// enough — a maintenance cycle that deletes and inserts the same
	// number of rows changes the data without changing NumRows.
	id    uint64
	epoch uint64
}

// NewTable creates an empty table for the given schema definition.
func NewTable(def *schema.Table) *Table {
	t := &Table{Def: def, cols: make([]Column, len(def.Columns)), id: tableInstances.Add(1)}
	for i, c := range def.Columns {
		t.cols[i].Type = c.Type
	}
	return t
}

// Grow preallocates capacity for n additional rows, avoiding repeated
// reallocation during bulk loads.
func (t *Table) Grow(n int) {
	for i := range t.cols {
		c := &t.cols[i]
		c.nulls = append(make([]bool, 0, len(c.nulls)+n), c.nulls...)
		switch physKind(c.Type) {
		case KindInt, KindDate:
			c.ints = append(make([]int64, 0, len(c.ints)+n), c.ints...)
		case KindFloat:
			c.flts = append(make([]float64, 0, len(c.flts)+n), c.flts...)
		default:
			c.strs = append(make([]string, 0, len(c.strs)+n), c.strs...)
		}
	}
}

// ID returns the process-unique instance id of this table. Two tables
// with the same schema name (separate materializations of a CTE, a
// reload) have different ids.
func (t *Table) ID() uint64 { return t.id }

// Epoch returns the table's data epoch: a counter bumped by every
// mutating operation (Append, Update, SetValue, Delete). Derived-data
// caches store the (ID, Epoch) pair at derivation time and are fresh
// only while both still match.
func (t *Table) Epoch() uint64 { return t.epoch }

// NumRows returns the table's row count.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Col returns the column vector at position i.
func (t *Table) Col(i int) *Column { return &t.cols[i] }

// ColByName returns the named column vector, or nil.
func (t *Table) ColByName(name string) *Column {
	i := t.Def.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return &t.cols[i]
}

// Get returns the value at (row, col).
func (t *Table) Get(row, col int) Value { return t.cols[col].Get(row) }

// Row materializes row i as a value slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c].Get(i)
	}
	return out
}

// Append adds a row. The row length must match the column count.
func (t *Table) Append(row []Value) {
	if len(row) != len(t.cols) {
		panic(fmt.Sprintf("storage: row width %d != table width %d for %s",
			len(row), len(t.cols), t.Def.Name))
	}
	for i, v := range row {
		t.cols[i].Append(v)
	}
	t.epoch++
}

// Update overwrites row i with the given values (in-place dimension
// maintenance).
func (t *Table) Update(i int, row []Value) {
	if len(row) != len(t.cols) {
		panic("storage: row width mismatch in Update")
	}
	for c, v := range row {
		t.cols[c].Set(i, v)
	}
	t.epoch++
}

// SetValue overwrites a single cell.
func (t *Table) SetValue(row, col int, v Value) {
	t.cols[col].Set(row, v)
	t.epoch++
}

// Delete removes the given row ids (any order, duplicates allowed) and
// compacts the table. Fact-table deletes are logically clustered on a
// date range (§4.2), so a compaction pass over contiguous victims is
// cheap in practice. Returns the number of rows removed.
func (t *Table) Delete(rowIDs []int) int {
	if len(rowIDs) == 0 {
		return 0
	}
	n := t.NumRows()
	victim := make([]bool, n)
	removed := 0
	for _, id := range rowIDs {
		if id >= 0 && id < n && !victim[id] {
			victim[id] = true
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	t.epoch++
	for c := range t.cols {
		col := &t.cols[c]
		w := 0
		for r := 0; r < n; r++ {
			if victim[r] {
				continue
			}
			col.nulls[w] = col.nulls[r]
			switch physKind(col.Type) {
			case KindInt, KindDate:
				col.ints[w] = col.ints[r]
			case KindFloat:
				col.flts[w] = col.flts[r]
			default:
				col.strs[w] = col.strs[r]
			}
			w++
		}
		col.nulls = col.nulls[:w]
		switch physKind(col.Type) {
		case KindInt, KindDate:
			col.ints = col.ints[:w]
		case KindFloat:
			col.flts = col.flts[:w]
		default:
			col.strs = col.strs[:w]
		}
	}
	return removed
}

// Raw exposes the column's physical vectors for vectorized execution:
// the physical kind, the payload slice valid for that kind, and the
// null bitmap. Callers must treat the slices as read-only.
func (c *Column) Raw() (k Kind, ints []int64, flts []float64, strs []string, nulls []bool) {
	return physKind(c.Type), c.ints, c.flts, c.strs, c.nulls
}

// ScanInt64 returns the raw int64 vector and null bitmap for a key
// column — the zero-copy path used by hash joins and bitmap index
// construction. It panics if the column is not integer-typed.
func (t *Table) ScanInt64(col int) (vals []int64, nulls []bool) {
	c := &t.cols[col]
	if k := physKind(c.Type); k != KindInt && k != KindDate {
		panic(fmt.Sprintf("storage: ScanInt64 on %v column", c.Type))
	}
	return c.ints, c.nulls
}

// DB is a named collection of tables — the system under test.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create registers an empty table for def, replacing any previous
// instance with the same name.
func (db *DB) Create(def *schema.Table) *Table {
	t := NewTable(def)
	db.tables[def.Name] = t
	return t
}

// Put registers an existing table.
func (db *DB) Put(t *Table) { db.tables[t.Def.Name] = t }

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Names returns the registered table names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalRows sums row counts over all tables.
func (db *DB) TotalRows() int64 {
	var n int64
	for _, t := range db.tables {
		n += int64(t.NumRows())
	}
	return n
}
