package storage

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"tpcds/internal/schema"
)

func testDef() *schema.Table {
	return &schema.Table{
		Name: "t", Kind: schema.Dimension,
		Columns: []schema.Column{
			{Name: "k", Type: schema.Identifier},
			{Name: "n", Type: schema.Integer, Nullable: true},
			{Name: "amt", Type: schema.Decimal, Nullable: true},
			{Name: "name", Type: schema.Char, Len: 20, Nullable: true},
			{Name: "d", Type: schema.Date, Nullable: true},
		},
		PrimaryKey: []string{"k"},
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	tb := NewTable(testDef())
	d, _ := ParseDate("2000-11-15")
	tb.Append([]Value{Int(1), Int(42), Float(9.5), Str("abc"), DateV(d)})
	tb.Append([]Value{Int(2), Null, Null, Null, Null})
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	if got := tb.Get(0, 1); got.AsInt() != 42 {
		t.Errorf("Get(0,1) = %v", got)
	}
	if got := tb.Get(0, 4); got.String() != "2000-11-15" {
		t.Errorf("date round trip = %q", got.String())
	}
	for c := 1; c < 5; c++ {
		if !tb.Get(1, c).IsNull() {
			t.Errorf("row 1 col %d should be NULL", c)
		}
	}
}

func TestAppendWrongWidthPanics(t *testing.T) {
	tb := NewTable(testDef())
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tb.Append([]Value{Int(1)})
}

func TestAppendWrongKindPanics(t *testing.T) {
	tb := NewTable(testDef())
	defer func() {
		if recover() == nil {
			t.Fatal("string into int column did not panic")
		}
	}()
	tb.Append([]Value{Str("oops"), Int(1), Float(1), Str("x"), Null})
}

func TestUpdateAndSetValue(t *testing.T) {
	tb := NewTable(testDef())
	tb.Append([]Value{Int(1), Int(10), Float(1), Str("a"), Null})
	tb.Update(0, []Value{Int(1), Int(20), Float(2), Str("b"), Null})
	if tb.Get(0, 1).AsInt() != 20 || tb.Get(0, 3).S != "b" {
		t.Error("Update did not apply")
	}
	tb.SetValue(0, 1, Null)
	if !tb.Get(0, 1).IsNull() {
		t.Error("SetValue to NULL failed")
	}
	tb.SetValue(0, 1, Int(30))
	if tb.Get(0, 1).AsInt() != 30 {
		t.Error("SetValue back from NULL failed")
	}
}

func TestDeleteCompacts(t *testing.T) {
	tb := NewTable(testDef())
	for i := 0; i < 10; i++ {
		tb.Append([]Value{Int(int64(i)), Int(int64(i * 10)), Float(0), Str("r"), Null})
	}
	removed := tb.Delete([]int{2, 3, 4, 3, 99, -1})
	if removed != 3 {
		t.Fatalf("Delete removed %d, want 3", removed)
	}
	if tb.NumRows() != 7 {
		t.Fatalf("NumRows = %d after delete, want 7", tb.NumRows())
	}
	want := []int64{0, 1, 5, 6, 7, 8, 9}
	for i, k := range want {
		if got := tb.Get(i, 0).AsInt(); got != k {
			t.Errorf("row %d key = %d, want %d", i, got, k)
		}
	}
	if tb.Delete(nil) != 0 {
		t.Error("Delete(nil) should remove nothing")
	}
}

func TestFlatFileRoundTrip(t *testing.T) {
	tb := NewTable(testDef())
	d, _ := ParseDate("1999-02-21")
	tb.Append([]Value{Int(1), Int(5), Float(3.25), Str("hello world"), DateV(d)})
	tb.Append([]Value{Int(2), Null, Null, Null, Null})
	var buf bytes.Buffer
	if err := tb.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	want := "1|5|3.25|hello world|1999-02-21|\n2|||||\n"
	if buf.String() != want {
		t.Fatalf("flat output %q, want %q", buf.String(), want)
	}
	tb2 := NewTable(testDef())
	n, err := tb2.ReadFlat(strings.NewReader(buf.String()))
	if err != nil || n != 2 {
		t.Fatalf("ReadFlat = %d rows, err %v", n, err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 5; c++ {
			if !Equal(tb.Get(r, c), tb2.Get(r, c)) {
				t.Errorf("round trip mismatch at (%d,%d): %v vs %v", r, c, tb.Get(r, c), tb2.Get(r, c))
			}
		}
	}
}

func TestReadFlatErrors(t *testing.T) {
	tb := NewTable(testDef())
	if _, err := tb.ReadFlat(strings.NewReader("1|2|\n")); err == nil {
		t.Error("short row should error")
	}
	tb = NewTable(testDef())
	if _, err := tb.ReadFlat(strings.NewReader("x|1|1.0|a|2000-01-01|\n")); err == nil {
		t.Error("bad integer should error")
	}
	tb = NewTable(testDef())
	if _, err := tb.ReadFlat(strings.NewReader("1|1|1.0|a|not-a-date|\n")); err == nil {
		t.Error("bad date should error")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Null, Null, 0},
		{DateV(100), DateV(99), 1},
		{DateV(100), Int(100), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("string vs int compare did not panic")
		}
	}()
	Compare(Str("a"), Int(1))
}

func TestGroupKeyInjective(t *testing.T) {
	vals := []Value{
		Null, Int(0), Int(1), Int(-1), Float(0), Float(1.5),
		Str(""), Str("0"), Str("a"), DateV(0), DateV(1),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.GroupKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("GroupKey collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	def := testDef()
	tb := db.Create(def)
	tb.Append([]Value{Int(1), Int(1), Float(1), Str("x"), Null})
	if db.Table("t") != tb {
		t.Error("Table lookup failed")
	}
	if db.Table("missing") != nil {
		t.Error("missing table should be nil")
	}
	if got := db.Names(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Names = %v", got)
	}
	if db.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}

func TestDateHelpers(t *testing.T) {
	if d := DaysFromYMD(1900, 1, 1); d != 0 {
		t.Errorf("epoch day = %d, want 0", d)
	}
	y, m, dd := YMDFromDays(0)
	if y != 1900 || m != 1 || dd != 1 {
		t.Errorf("YMDFromDays(0) = %d-%d-%d", y, m, dd)
	}
	// 1900-01-01 was a Monday.
	if DayName(0) != "Monday" {
		t.Errorf("1900-01-01 was a %s?", DayName(0))
	}
	if DayName(6) != "Sunday" {
		t.Errorf("1900-01-07 was a %s?", DayName(6))
	}
	// date_dim covers 1900-01-01 .. 2099-12-31 = 73049 days.
	if d := DaysFromYMD(2100, 1, 1); d != DateDimRows {
		t.Errorf("days to 2100-01-01 = %d, want %d", d, DateDimRows)
	}
	if !IsLeapYear(2000) || IsLeapYear(1900) || IsLeapYear(2001) || !IsLeapYear(1996) {
		t.Error("IsLeapYear broken")
	}
	if DateSK(0) != 1 || DaysFromSK(1) != 0 {
		t.Error("DateSK round trip broken")
	}
}

func TestParseDateErrors(t *testing.T) {
	if _, err := ParseDate("2000-13-01"); err == nil {
		t.Error("month 13 should fail")
	}
	if _, err := ParseDate("garbage"); err == nil {
		t.Error("garbage should fail")
	}
}

// Property: date formatting and parsing round trip over the full
// date_dim range.
func TestQuickDateRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		days := int64(n % DateDimRows)
		parsed, err := ParseDate(FormatDate(days))
		return err == nil && parsed == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flat-file field formatting round trips for every kind.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string) bool {
		if strings.ContainsAny(s, "|\n") {
			return true // separator chars are not legal field content
		}
		iv, err := ParseField(Int(i).String(), schema.Integer)
		if err != nil || iv.AsInt() != i {
			return false
		}
		sv, err := ParseField(Str(s).String(), schema.Char)
		if err != nil {
			return false
		}
		if s == "" {
			return sv.IsNull() // empty string encodes NULL by design
		}
		return sv.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScanInt64(t *testing.T) {
	tb := NewTable(testDef())
	tb.Append([]Value{Int(7), Int(1), Float(0), Str(""), Null})
	vals, nulls := tb.ScanInt64(0)
	if len(vals) != 1 || vals[0] != 7 || nulls[0] {
		t.Errorf("ScanInt64 = %v %v", vals, nulls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ScanInt64 on string column did not panic")
		}
	}()
	tb.ScanInt64(3)
}

func TestValueStrings(t *testing.T) {
	if Int(5).String() != "5" || Float(2.5).String() != "2.50" ||
		Str("x").String() != "x" || Null.String() != "" {
		t.Error("Value.String formatting broken")
	}
	if KindInt.String() != "int" || KindNull.String() != "null" ||
		KindFloat.String() != "float" || KindString.String() != "string" ||
		KindDate.String() != "date" {
		t.Error("Kind.String broken")
	}
}
