package storage

import (
	"fmt"
	"os"
	"path/filepath"

	"tpcds/internal/schema"
)

// LoadDir loads a database from a directory of flat files, one
// "<table>.dat" per schema definition — the load-test input path of the
// benchmark (§5.2: the timed database load starts from the generated
// flat files). Missing files are an error; the loader validates row
// widths and field types as it goes.
func LoadDir(dir string, defs []*schema.Table) (*DB, error) {
	db := NewDB()
	for _, def := range defs {
		path := filepath.Join(dir, def.Name+".dat")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("storage: load %s: %w", def.Name, err)
		}
		t := NewTable(def)
		_, rerr := t.ReadFlat(f)
		cerr := f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("storage: load %s: %w", def.Name, rerr)
		}
		if cerr != nil {
			return nil, fmt.Errorf("storage: load %s: %w", def.Name, cerr)
		}
		db.Put(t)
	}
	return db, nil
}

// DumpDir writes every table of the database as "<table>.dat" flat
// files into dir (created if missing).
func (db *DB) DumpDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.Names() {
		t := db.Table(name)
		path := filepath.Join(dir, name+".dat")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("storage: dump %s: %w", name, err)
		}
		werr := t.WriteFlat(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("storage: dump %s: %w", name, werr)
		}
		if cerr != nil {
			return fmt.Errorf("storage: dump %s: %w", name, cerr)
		}
	}
	return nil
}
