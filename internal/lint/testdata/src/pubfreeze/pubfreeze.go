// Package pubfix is a known-bad fixture for the pubfreeze analyzer:
// values published into a shared cache (a *Cache Put, a sync.Map
// Store, or a lock-guarded map store) must not be modified afterwards
// — readers hold them unlocked the moment the publish returns. The
// clean shapes show the two sanctioned escapes: re-binding the local
// before mutating, and publishing an all-scalar value that cannot
// alias.
package pubfix

import "sync"

// Entry is a published plan entry; the Cols slice makes it aliasable.
type Entry struct {
	Name string
	Cols []string
}

// planCache's named type ends in "Cache", so Put is a publish site.
type planCache struct {
	mu sync.Mutex
	m  map[string]*Entry
}

func (c *planCache) Put(key string, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = e
}

// putThenPatch mutates the entry after publishing it — both through a
// field of the pointer and through the shared slice.
func putThenPatch(c *planCache, e *Entry) {
	c.Put("q1", e)
	e.Name = "patched"
	e.Cols[0] = "renamed"
}

var registry sync.Map

// storeThenMutate publishes a slice into a sync.Map and then writes an
// element the reader shares.
func storeThenMutate(cols []string) {
	registry.Store("cols", cols)
	cols[0] = "mutated"
}

// statsTable uses the lock-guarded map idiom: a store into byCol with
// the mutex held is a publication.
type statsTable struct {
	mu    sync.Mutex
	byCol map[string]*Entry
}

// recordThenAppend publishes under the lock, then grows the entry's
// column list after unlocking — the reader's copy shares the header.
func (t *statsTable) recordThenAppend(name string, e *Entry) {
	t.mu.Lock()
	t.byCol[name] = e
	t.mu.Unlock()
	e.Cols = append(e.Cols, "late")
}

// rename mutates its parameter; the interprocedural summary records
// MutatesParam for it.
func rename(e *Entry, name string) {
	e.Name = name
}

// putThenRename hides the post-publication mutation behind a helper
// call; the summary-driven check still flags the argument.
func putThenRename(c *planCache, e *Entry) {
	c.Put("q2", e)
	rename(e, "late")
}

// rebindThenWrite re-binds the local before mutating: the published
// value is no longer reachable through it, so the write is clean.
func rebindThenWrite(c *planCache, e *Entry) {
	c.Put("q3", e)
	e = &Entry{Name: "fresh"}
	e.Name = "mine"
	c.Put("q4", e)
}

// scalarStats has no pointer-like component: the published copy cannot
// be changed retroactively, so mutating the local afterwards is clean.
type scalarStats struct {
	Rows int64
	Min  int64
}

type statsCache struct {
	mu sync.Mutex
	m  map[string]scalarStats
}

func (c *statsCache) Put(key string, s scalarStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = s
}

func recordScalar(c *statsCache, s scalarStats) {
	c.Put("store_sales", s)
	s.Rows++
}
