package exec

// boundscheck fixture: index, slice, and divisor shapes the value tier
// must flag, next to clean shapes that must stay silent. The file poses
// as internal/exec/batch.go so the rule's file scoping applies.

// ---- known-bad shapes ----

// badConstIndex indexes one past a constant-sized allocation.
func badConstIndex() int {
	s := make([]int, 4)
	return s[4]
}

// badInclusiveLoop runs the classic off-by-one: i reaches len(vals).
func badInclusiveLoop(vals []int64) int64 {
	var t int64
	for i := 0; i <= len(vals); i++ {
		t += vals[i]
	}
	return t
}

// badParamIndex consumes an unconstrained index parameter.
func badParamIndex(vals []int64, i int) int64 {
	return vals[i]
}

// badDivisor divides by a parameter nothing proves non-zero.
func badDivisor(total, workers int) int {
	return total / workers
}

// badSliceHigh reslices past a length nothing relates to n.
func badSliceHigh(vals []int64, n int) []int64 {
	return vals[:n]
}

// badReversedSlice cannot prove lo ≤ hi for swapped bounds.
func badReversedSlice(vals []int64, lo, hi int) []int64 {
	return vals[hi:lo]
}

// ---- clean shapes ----

// cleanLoop is the canonical exclusive-bound scan.
func cleanLoop(vals []int64) int64 {
	var t int64
	for i := 0; i < len(vals); i++ {
		t += vals[i]
	}
	return t
}

// cleanGuardedIndex excludes both out-of-range sides before the use.
func cleanGuardedIndex(vals []int64, i int) int64 {
	if i < 0 || i >= len(vals) {
		return 0
	}
	return vals[i]
}

// cleanCompaction is the widened-loop selection compaction: w only
// advances on kept elements, so the in-place writes and the final
// reslice stay in bounds across the loop widening.
func cleanCompaction(keep []int32) []int32 {
	w := 0
	for _, v := range keep {
		if v > 0 {
			keep[w] = v
			w++
		}
	}
	return keep[:w]
}

// cleanClampedBatch walks [0, n) in batch-sized chunks over a scratch
// buffer: end−base ≤ batch = len(buf) through the min fold.
func cleanClampedBatch(n, batch int) int {
	if batch < 1 {
		batch = 1
	}
	out := 0
	buf := make([]int32, batch)
	for base := 0; base < n; base += batch {
		end := min(base+batch, n)
		chunk := buf[:end-base]
		out += len(chunk)
	}
	return out
}

// cleanGuardedDivisor clamps the divisor before dividing.
func cleanGuardedDivisor(total, workers int) int {
	if workers < 1 {
		workers = 1
	}
	return total / workers
}
