// Fixture for the observability carve-out of the determinism rules:
// wall-clock values flowing only into internal/obs recording calls are
// sanctioned; the same value also reaching storage stays banned, and a
// value read back OUT of obs instruments is a taint source.
package datagen

import (
	"time"

	"tpcds/internal/obs"
	"tpcds/internal/storage"
)

// observeOnly is clean: every wall-clock read lands in an obs
// recording call, directly or through the start/elapsed locals.
func observeOnly(tr *obs.Tracer, reg *obs.Registry) {
	sp := tr.Root("gen", "datagen")
	start := time.Now()
	elapsed := time.Since(start)
	reg.Histogram("gen_table_ns").ObserveDuration(elapsed)
	sp.SetAttrInt("elapsed_ns", int64(time.Since(start)))
	sp.End()
}

// leakToStorage is flagged twice over: the clock readings reach
// storage (so the syntactic sanction must NOT apply, even though the
// same value also feeds an obs histogram) and the tainted value hits
// the storage sink.
func leakToStorage(reg *obs.Registry) storage.Value {
	start := time.Now()
	elapsed := time.Since(start)
	reg.Histogram("gen_table_ns").Observe(int64(elapsed))
	return storage.Int(int64(elapsed))
}

// SpanDurationIntoData is flagged: a duration read back from a span is
// wall-clock-derived, and here it becomes benchmark data.
func SpanDurationIntoData(tr *obs.Tracer) storage.Value {
	sp := tr.Root("gen", "datagen")
	d := sp.End()
	return storage.Int(int64(d))
}

// CounterIntoData is flagged: a counter snapshot differs between runs
// of the same seed (it counts real work, not seeded draws).
func CounterIntoData(reg *obs.Registry) storage.Value {
	n := reg.Counter("rows").Value()
	return storage.Int(n)
}
