// Package ctxfix is a known-bad fixture for the ctxflow analyzer:
// root-context minting in library code and functions that hold a
// context but fail to thread it into context-accepting callees. The
// clean functions at the bottom must produce no findings.
package ctxfix

import "context"

func callee(ctx context.Context, q string) error { return nil }

// MintsBackground detaches its callees from any caller cancellation.
func MintsBackground(q string) error {
	return callee(context.Background(), q)
}

// MintsTODO is the same finding via context.TODO.
func MintsTODO(q string) error {
	return callee(context.TODO(), q)
}

// detached is a package-level root: passing it instead of the parameter
// breaks the cancellation chain even though the argument "is a context".
var detached context.Context

// PassesNil holds a context but hands the callee nil.
func PassesNil(ctx context.Context, q string) error {
	return callee(nil, q)
}

// PassesUnrelated holds a context but threads the package-level one.
func PassesUnrelated(ctx context.Context, q string) error {
	return callee(detached, q)
}

// CleanThreading passes the parameter straight through: no findings.
func CleanThreading(ctx context.Context, q string) error {
	return callee(ctx, q)
}

// CleanDerived threads a derived context: WithCancel results stay in
// the derived set. No findings.
func CleanDerived(ctx context.Context, q string) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return callee(c, q)
}

type carrier struct{ ctx context.Context }

// CleanCarrier threads the context through a parameter struct — that is
// threading, not minting. No findings.
func CleanCarrier(ctx context.Context, c *carrier, q string) error {
	return callee(c.ctx, q)
}
