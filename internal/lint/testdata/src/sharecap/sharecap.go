// Package sharecapfix is a known-bad fixture for the sharecap
// analyzer. It is type-checked under the virtual import path
// "tpcds/internal/exec" so the scope condition fires, and declares its
// own forEachMorsel/parallelFor stubs so the worker-pool call sites
// match by name. The clean shapes — per-worker slots, mutex-guarded
// writes, atomics — produce no findings; everything else shows how a
// concurrent closure can smuggle a shared write past a code review.
package sharecapfix

import (
	"sync"
	"sync/atomic"
)

// forEachMorsel and parallelFor stand in for the real fork-join entry
// points; sharecap matches worker closures by callee name.
func forEachMorsel(workers int, fn func(worker, lo, hi int)) {
	for w := 0; w < workers; w++ {
		fn(w, 0, 0)
	}
}

func parallelFor(n int, fn func(p int)) {
	for p := 0; p < n; p++ {
		fn(p)
	}
}

// goPlainWrite increments a captured counter from a goroutine with no
// synchronization at all.
func goPlainWrite() int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		total++
	}()
	wg.Wait()
	return total
}

// workerSharedIndex writes a captured slice through an index that is
// itself a shared capture: every worker races on both the slot and the
// cursor.
func workerSharedIndex(out []int) {
	next := 0
	forEachMorsel(4, func(worker, lo, hi int) {
		out[next] = worker
		next++
	})
}

// workerOwnedSlots is the sanctioned per-worker-slot idiom: the index
// is the closure's own worker parameter, so each worker owns its slot.
// Clean.
func workerOwnedSlots(workers int) []int64 {
	counts := make([]int64, workers)
	forEachMorsel(workers, func(worker, lo, hi int) {
		counts[worker] += int64(hi - lo)
	})
	return counts
}

// workerLocked mutates a shared capture under a captured mutex. Clean.
func workerLocked() int {
	var mu sync.Mutex
	total := 0
	parallelFor(4, func(p int) {
		mu.Lock()
		total += p
		mu.Unlock()
	})
	return total
}

// workerAtomic goes through sync/atomic, whose receiver mutation is
// internally synchronized. Clean.
func workerAtomic() int64 {
	var total atomic.Int64
	parallelFor(4, func(p int) {
		total.Add(int64(p))
	})
	return total.Load()
}

// bumpCount mutates its map parameter; the interprocedural summary
// records MutatesParam for it.
func bumpCount(m map[string]int, key string) {
	m[key]++
}

// workerViaHelper hides the shared-map write behind a helper call: the
// summary-driven check still flags the captured argument.
func workerViaHelper(stats map[string]int) {
	parallelFor(4, func(p int) {
		bumpCount(stats, "batches")
	})
}

// viaBoundClosure calls a captured function value whose unique binding
// is a visible literal; the literal is re-checked with the goroutine's
// ownership boundary and its own capture is flagged.
func viaBoundClosure() int {
	sum := 0
	add := func(v int) { sum += v }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		add(1)
	}()
	wg.Wait()
	return sum
}

// kernelFn is the locally declared named function type that marks a
// compiled-kernel factory.
type kernelFn func(sel []int32, out []int8)

// compileCounting returns a kernel that counts its own invocations:
// every worker shares the kernel, so even a plain counter is a race.
// Writes to the kernel's own parameters are per-invocation and clean.
func compileCounting() kernelFn {
	calls := 0
	return func(sel []int32, out []int8) {
		calls++
		for i := range sel {
			out[i] = 1
		}
	}
}

// compileThreshold only reads its capture; a kernel may close over
// immutable configuration. Clean.
func compileThreshold(limit int32) kernelFn {
	var k kernelFn
	k = func(sel []int32, out []int8) {
		for i, v := range sel {
			if v > limit {
				out[i] = 1
			}
		}
	}
	return k
}

// compileStateful smuggles a dedup map into a kernel through the
// assignment form of kernel creation; the map write is flagged under
// the stricter kernel rule.
func compileStateful() kernelFn {
	seen := make(map[int32]bool)
	var k kernelFn
	k = func(sel []int32, out []int8) {
		for i, v := range sel {
			if !seen[v] {
				seen[v] = true
				out[i] = 1
			}
		}
	}
	return k
}
