// Package cancelcheck is a known-bad fixture for the cancelcheck rule:
// it is type-checked under the virtual import path "tpcds/internal/exec"
// and never references the qctx helpers, so both loop shapes are
// findings.
package cancelcheck

// table mimics a storage table for the NumRows-bounded loop shape.
type table struct{ n int }

func (t *table) NumRows() int { return t.n }

// SumRows ranges over a rows-named slice without ever polling.
func SumRows(rows []int64) int64 {
	var total int64
	for _, r := range rows {
		total += r
	}
	return total
}

// ScanAll runs a NumRows-bounded counter loop without ever polling.
func ScanAll(t *table) int {
	hits := 0
	for i := 0; i < t.NumRows(); i++ {
		hits++
	}
	return hits
}
