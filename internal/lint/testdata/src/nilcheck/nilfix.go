package storage

// nilcheck fixture: definite-nil map writes and pointer dereferences
// the nilness lattice must flag, next to guarded shapes that must stay
// silent.

type node struct {
	next *node
	val  int
}

// ---- known-bad shapes ----

// badNilMapWrite writes through a map whose only definition is the
// zero value.
func badNilMapWrite(k string) {
	var idx map[string]int
	idx[k] = 1
}

// badNilField reads a field through a pointer nil on every path.
func badNilField() int {
	var p *node
	return p.val
}

// badNilArm dereferences on the branch that just proved p nil.
func badNilArm(p *node) int {
	if p != nil {
		return p.val
	}
	return p.val
}

// badNilStar is the plain star-deref of a zero-value pointer.
func badNilStar() int {
	var p *int
	return *p
}

// ---- clean shapes ----

// cleanMadeMap writes through a freshly constructed map.
func cleanMadeMap(k string) map[string]int {
	idx := map[string]int{}
	idx[k] = 1
	return idx
}

// cleanLazyInit is the idiomatic nil-guarded lazy initialization.
func cleanLazyInit(idx map[string]int, k string) map[string]int {
	if idx == nil {
		idx = make(map[string]int)
	}
	idx[k] = 1
	return idx
}

// cleanGuardedDeref excludes nil before the field read.
func cleanGuardedDeref(p *node) int {
	if p == nil {
		return 0
	}
	return p.val
}
