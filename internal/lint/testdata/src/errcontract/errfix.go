package plan

// errcontract fixture: (T, error) results consumed before or despite
// their companion error, and wraps that lose the original chain, next
// to the err-checked early-return shapes that must stay silent.

import (
	"errors"
	"fmt"
)

type tree struct {
	root string
}

func parse(q string) (*tree, error) {
	if q == "" {
		return nil, errors.New("empty query")
	}
	return &tree{root: q}, nil
}

// ---- known-bad shapes ----

// badUseBeforeCheck consumes the result while the companion error is
// still unchecked.
func badUseBeforeCheck(q string) string {
	t, err := parse(q)
	r := t.root
	_ = err
	return r
}

// badUseOnErrPath consumes the result on the branch that proved the
// error non-nil.
func badUseOnErrPath(q string) (string, error) {
	t, err := parse(q)
	if err != nil {
		return t.root, err
	}
	return t.root, nil
}

// badLostWrap formats the original error with %v, severing the chain.
func badLostWrap(q string) error {
	_, err := parse(q)
	if err != nil {
		return fmt.Errorf("parsing %q: %v", q, err)
	}
	return nil
}

// badDroppedOriginal constructs a fresh error while the live one is
// known non-nil.
func badDroppedOriginal(q string) error {
	_, err := parse(q)
	if err != nil {
		return errors.New("parse failed")
	}
	return nil
}

// ---- clean shapes ----

// cleanEarlyReturn is the idiomatic check-then-use contract.
func cleanEarlyReturn(q string) (string, error) {
	t, err := parse(q)
	if err != nil {
		return "", err
	}
	return t.root, nil
}

// cleanWrap preserves the chain with %w.
func cleanWrap(q string) error {
	_, err := parse(q)
	if err != nil {
		return fmt.Errorf("parsing %q: %w", q, err)
	}
	return nil
}

// cleanNilArmUse consumes the result only on the err == nil arm.
func cleanNilArmUse(q string) string {
	t, err := parse(q)
	if err == nil {
		return t.root
	}
	return ""
}
