// Package panicfix is a known-bad fixture for the panics rule: library
// panics must carry the "panicfix: " package prefix or raise the
// cancellation sentinel.
package panicfix

import (
	"errors"
	"fmt"
)

// cancelPanic mimics the exec sentinel; any named type with this name
// is sanctioned (the real one lives in internal/exec).
type cancelPanic struct{ err error }

// Sanctioned shapes: prefixed literal, prefixed concatenation,
// prefixed Sprintf, and the sentinel.
func ok(detail string) {
	panic("panicfix: invariant broken")
}

func okConcat(detail string) {
	panic("panicfix: bad input " + detail)
}

func okSprintf(id int) {
	panic(fmt.Sprintf("panicfix: bad id %d", id))
}

func okSentinel() {
	panic(cancelPanic{err: errors.New("canceled")})
}

// Finding: wrong prefix.
func badPrefix() {
	panic("oops, something broke")
}

// Finding: panicking with an error value.
func badErr(err error) {
	panic(err)
}

// Finding: Sprintf without the prefix.
func badSprintf(id int) {
	panic(fmt.Sprintf("bad id %d", id))
}
