// Package determinism is a known-bad fixture for the determinism rule:
// it is type-checked under the virtual import path
// "tpcds/internal/datagen" so the generator-package conditions fire.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock reads the clock twice (two findings) on top of the
// math/rand import finding above.
func WallClock() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// GlobalRand draws from the process-global source.
func GlobalRand() int {
	return rand.Intn(3)
}

// MapOrder sums in map-iteration order (one finding) ...
func MapOrder(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// CollectAndSort uses the sanctioned collect-then-sort idiom (clean).
func CollectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
