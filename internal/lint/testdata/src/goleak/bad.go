// Package goleakfix is a known-bad fixture for the goleak analyzer:
// spawns without a provable join. The clean functions at the bottom —
// WaitGroup-paired and cancellation-driven goroutines — must produce no
// findings.
package goleakfix

import (
	"context"
	"sync"
)

// Orphan spawns a goroutine nothing ever joins.
func Orphan(work func()) {
	go func() {
		work()
	}()
}

// MissingAdd signals Done on a WaitGroup the spawner never Adds to:
// Wait can pass before the goroutine even starts.
func MissingAdd(work func()) {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// EarlyReturnSkipsWait has a path from the spawn to return that misses
// wg.Wait — exactly the leak the rule exists to catch.
func EarlyReturnSkipsWait(work func(), bail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	if bail {
		return
	}
	wg.Wait()
}

func helper() {}

// OpaqueNamed spawns a named function without passing a WaitGroup; the
// intraprocedural analysis cannot see a join.
func OpaqueNamed() {
	go helper()
}

// CleanWaitGroup is the canonical paired spawn: no findings.
func CleanWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// CleanDeferredWait joins via a deferred Wait that runs on every exit:
// no findings.
func CleanDeferredWait(work func(), n int) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

// CleanCancellation is owned by the context's cancellation scope: the
// goroutine provably exits when ctx is done. No findings.
func CleanCancellation(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}
