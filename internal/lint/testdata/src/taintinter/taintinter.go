// Package taintinterfix is a known-bad fixture for the
// interprocedural half of taintdet: nondeterminism that crosses a
// function boundary before reaching storage emission. It poses as a
// generator package (virtual path "tpcds/internal/datagen") so the
// syntactic determinism rule flags the clock reads at their sites
// while taintdet reports where the laundered values actually escape —
// the golden shows both layers. The mutually recursive pair pins the
// SCC fixpoint: summary computation must terminate on the cycle and
// still carry the param-to-return transfer through it.
package taintinterfix

import (
	"time"

	"tpcds/internal/storage"
)

// stamp launders a wall-clock read through a return value; its summary
// records TaintsReturn.
func stamp() int64 {
	return time.Now().Unix()
}

// emitStamp never touches the clock itself — the taint arrives through
// the call to stamp and still reaches emission.
func emitStamp() storage.Value {
	s := stamp()
	return storage.Int(s)
}

// emit forwards its parameter to storage; its summary records
// ParamToSink.
func emit(v int64) storage.Value {
	return storage.Int(v)
}

// emitViaHelper's clock value reaches the sink inside the callee, not
// at the call site.
func emitViaHelper() storage.Value {
	seed := time.Now().UnixNano()
	return emit(seed)
}

// walkEven and walkOdd are mutually recursive: one strongly connected
// component. The fixpoint must converge and record that parameter 1
// flows to the return of both.
func walkEven(n int, t int64) int64 {
	if n == 0 {
		return t
	}
	return walkOdd(n-1, t)
}

func walkOdd(n int, t int64) int64 {
	if n == 0 {
		return t + 1
	}
	return walkEven(n-1, t)
}

// emitRecursive pushes a clock value through the recursive pair before
// emitting it.
func emitRecursive() storage.Value {
	base := time.Now().Unix()
	return storage.Int(walkEven(3, base))
}

// rowsFor is pure arithmetic; calling it launders nothing. Clean.
func rowsFor(scale int) int {
	return scale * 1000
}

func emitClean(scale int) storage.Value {
	return storage.Int(int64(rowsFor(scale)))
}
