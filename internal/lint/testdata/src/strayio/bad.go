// Package strayfix is a known-bad fixture for the strayio rule:
// library code writing to the process streams.
package strayfix

import (
	"fmt"
	"io"
	"os"
)

// Report writes to global stdout three ways: fmt.Print* (one finding
// per call), a direct os.Stdout reference, and the builtin println.
func Report(n int) error {
	fmt.Println("rows:", n)
	fmt.Printf("rows: %d\n", n)
	var w io.Writer = os.Stdout
	if _, err := fmt.Fprintf(w, "rows: %d\n", n); err != nil {
		return err
	}
	println("debug")
	return nil
}
