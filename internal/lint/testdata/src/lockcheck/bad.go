// Package lockfix is a known-bad fixture for the lockcheck analyzer:
// lock leaks on early returns, conditional acquisition, double locking,
// bare unlocks, and channel operations under a lock. The clean
// functions at the bottom must produce no findings.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// EarlyReturn leaks c.mu on the error path: the return squeezes between
// Lock and Unlock.
func (c *counter) EarlyReturn(fail bool) int {
	c.mu.Lock()
	if fail {
		return -1
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// ConditionalLeak acquires in one branch only and then returns without
// releasing on that path.
func (c *counter) ConditionalLeak(lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.n++
}

// DoubleLock self-deadlocks: the second Lock blocks forever on the
// first.
func (c *counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// BareUnlock releases a mutex no path has acquired.
func (c *counter) BareUnlock() {
	c.mu.Unlock()
}

// SendWhileLocked performs a channel send with c.mu held: if the
// receiver needs the lock, both goroutines wedge.
func (c *counter) SendWhileLocked(ch chan int) {
	c.mu.Lock()
	ch <- c.n
	c.mu.Unlock()
}

// ReadLockLeak leaks the read lock on the early path; RLock/RUnlock
// pair independently of Lock/Unlock.
func (c *counter) ReadLockLeak(skip bool) int {
	c.rw.RLock()
	if skip {
		return 0
	}
	n := c.n
	c.rw.RUnlock()
	return n
}

// CleanDefer is the canonical correct shape: no findings.
func (c *counter) CleanDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// CleanBranches releases on every path without defer: no findings.
func (c *counter) CleanBranches(fast bool) int {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}
