// Package taintfix is a known-bad fixture for the taintdet analyzer.
// It is type-checked under the virtual import path
// "tpcds/internal/datagen", so the syntactic determinism rule fires
// alongside the flow analysis — the golden file shows the layering:
// determinism flags the time.Now call site itself, while taintdet
// follows the laundered value to where it actually escapes
// (storage emission or an exported result). os.Getenv is invisible to
// the syntactic rule; only the taint flow catches it.
package taintfix

import (
	"os"
	"time"

	"tpcds/internal/storage"
)

// launderedEnv separates the source from the sink with two
// assignments; the environment-derived string still reaches emission.
func launderedEnv() storage.Value {
	host := os.Getenv("HOST")
	tag := "node-" + host
	return storage.Str(tag)
}

// LaunderedClock returns a wall-clock-derived value from an exported
// function: the result escapes to the harness and becomes benchmark
// data.
func LaunderedClock() int64 {
	t := time.Now()
	stamp := t.Unix()
	return stamp
}

// MultiAssign propagates taint through a multi-value assignment.
func MultiAssign() storage.Value {
	pid, name := os.Getpid(), "w"
	_ = name
	return storage.Int(int64(pid))
}

// CleanOverwrite exercises the strong update: the tainted value is
// overwritten with a constant before emission, so nothing escapes. No
// findings.
func CleanOverwrite() storage.Value {
	v := os.Getenv("UNUSED")
	v = "constant"
	return storage.Str(v)
}
