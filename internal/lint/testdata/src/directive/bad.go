// Package dirfix exercises the //lint:ignore directive machinery: a
// working suppression (counted, not reported), a malformed directive
// (reported), and a stale directive that matches nothing (reported).
package dirfix

import "fmt"

// Suppressed: the directive on the line above the finding silences it.
func suppressed(n int) {
	//lint:ignore strayio fixture exercises a counted suppression
	fmt.Println("rows:", n)
}

//lint:ignore
func malformed() {}

//lint:ignore errcheck nothing on this line returns an error
func stale() {}
