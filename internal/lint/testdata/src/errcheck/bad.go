// Package main is a known-bad fixture for the errcheck rule. It is a
// main package so the strayio and panics rules (which exempt main) stay
// out of the golden output and every finding below is errcheck's.
package main

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

func main() {
	// Finding: expression statement discarding the error.
	work()

	// Finding: deferred Close discards the error.
	f, err := os.Open("nope")
	if err == nil {
		defer f.Close()
	}

	// Finding: go statement discards the error.
	go work()

	// Finding: blank-assigned error.
	_, _ = pair()

	// Sanctioned: in-memory writers and fmt printing to process streams.
	var sb strings.Builder
	sb.WriteString("ok")
	fmt.Println(sb.String())
	fmt.Fprintf(os.Stderr, "ok\n")
}
