package lint

// errcontract.go enforces the (T, error) contract flow-sensitively:
//
//   - a call result guarded by a companion error must not be consumed
//     (dereferenced, indexed, sliced, ranged, or selected through) on a
//     path where the error has not been excluded — nil3 of the error
//     key must be nil at the use;
//   - error wrapping must preserve the original: an error formatted
//     into fmt.Errorf must use the %w verb, and a return constructing a
//     fresh error while a live error value is non-nil must mention it.
//
// Consuming uses are restricted to pointer-shaped operations: scalar
// arithmetic on an (int, error) result (`n, err := w.Write(b); total +=
// n`) is fine by design — only uses that can panic or read through the
// result count.
//
// The interprocedural half lives in the two Summary fields computed by
// computeErrFacts (after the PR-8 bottom-up fixpoint, callees before
// callers): ReturnsNilErrOn marks error results nil on every return,
// NonNilResultWhenNilErr marks results non-nil whenever the trailing
// error is nil — the fact that promotes `if err != nil { return }` into
// a non-nil proof for the companion result.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// analyzeErrContract is the errcontract analyzer entry.
func analyzeErrContract(pr *Program, p *Package) []Diagnostic {
	return valueAnalyze(pr, p).diags["errcontract"]
}

// checkConsume flags a pointer-shaped use of a companion-guarded result
// while its error is not excluded.
func (va *valueAnalysis) checkConsume(env *valEnv, base ast.Expr) {
	key := va.p.canonKey(base)
	if key == "" {
		return
	}
	c, ok := env.comp[key]
	if !ok {
		return
	}
	if env.nl[key] == nlNonNil {
		return // independently proven non-nil
	}
	switch env.nl[c.errKey] {
	case nlNil:
		return // error excluded on this path
	case nlNonNil:
		why := fmt.Sprintf("%s is non-nil on every path reaching this use of %s",
			keyDisplay(c.errKey), keyDisplay(key))
		va.emit(base, "errcontract", why,
			"%s used although %s is non-nil", displayExpr(base), keyDisplay(c.errKey))
	default:
		why := fmt.Sprintf("%s is unchecked when %s is consumed (nilness: unknown)",
			keyDisplay(c.errKey), keyDisplay(key))
		va.emit(base, "errcontract", why,
			"%s used before %s is checked", displayExpr(base), keyDisplay(c.errKey))
	}
}

// checkReturn enforces the wrap obligations at one return site.
func (va *valueAnalysis) checkReturn(env *valEnv, ret *ast.ReturnStmt) {
	for _, r := range ret.Results {
		va.checkExpr(env, r)
	}
	for _, r := range ret.Results {
		call, ok := unparen(r).(*ast.CallExpr)
		if !ok {
			continue
		}
		switch externalErrCtor(va.p, call) {
		case "fmt.Errorf":
			va.checkErrorfWrap(env, call)
			va.checkDropsOriginal(env, ret, call)
		case "errors.New":
			va.checkDropsOriginal(env, ret, call)
		}
	}
}

// externalErrCtor classifies a call as fmt.Errorf / errors.New, else "".
func externalErrCtor(p *Package, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "fmt.Errorf":
		return "fmt.Errorf"
	case "errors.New":
		return "errors.New"
	}
	return ""
}

// checkErrorfWrap flags an error value formatted with a verb other than
// %w: %v (or %s) erases the chain errors.Is/As walks.
func (va *valueAnalysis) checkErrorfWrap(env *valEnv, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := va.p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // indexed or otherwise exotic format: no claim
	}
	for i, arg := range call.Args[1:] {
		t := va.p.typeOf(arg)
		if t == nil || !isErrorType(t) {
			continue
		}
		if i >= len(verbs) {
			break
		}
		if verbs[i] != 'w' {
			why := fmt.Sprintf("error value %s formatted with %%%c; errors.Is/As cannot unwrap it",
				displayExpr(arg), verbs[i])
			va.emit(arg, "errcontract", why,
				"error %s wrapped with %%%c: use %%w to preserve it", displayExpr(arg), verbs[i])
		}
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order. ok=false when the format uses explicit argument indexes.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			return nil, false
		}
		for i < len(format) && strings.IndexByte("#0- +.123456789", format[i]) >= 0 {
			i++
		}
		if i < len(format) {
			if format[i] == '*' {
				verbs = append(verbs, '*') // width arg consumes a slot
				continue
			}
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// checkDropsOriginal flags a return that constructs a fresh error while
// a live error value is non-nil and unmentioned in any result — the
// original failure is silently discarded.
func (va *valueAnalysis) checkDropsOriginal(env *valEnv, ret *ast.ReturnStmt, ctor *ast.CallExpr) {
	var live []string
	for key := range va.errKeys {
		if env.nl[key] == nlNonNil {
			live = append(live, key)
		}
	}
	if len(live) == 0 {
		return
	}
	mentioned := map[string]bool{}
	for _, r := range ret.Results {
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := objOf(va.p, id); obj != nil {
					mentioned[objKey(obj)] = true
				}
			}
			return true
		})
	}
	for _, key := range live {
		if !mentioned[key] {
			why := fmt.Sprintf("%s is non-nil here and does not reach the returned error",
				keyDisplay(key))
			va.emit(ctor, "errcontract", why,
				"returned error drops the original %s", keyDisplay(key))
			return // one finding per return suffices
		}
	}
}

// ---- interprocedural error facts ----

// computeErrFacts fills ReturnsNilErrOn / NonNilResultWhenNilErr on
// every summary, callees before callers (sccs order), by running the
// value engine over each body and inspecting the environment at every
// return. Packages restored from the summary cache keep their stored
// bits.
func (pr *Program) computeErrFacts(cached map[*Package]bool) {
	for _, comp := range pr.sccs() {
		if cached[comp[0].Pkg] {
			continue
		}
		for _, n := range comp {
			pr.errFactsFor(n)
		}
	}
}

// errFactsFor computes the two bitmasks for one function.
func (pr *Program) errFactsFor(n *FuncNode) {
	fd := n.Decl
	if fd.Type.Results == nil {
		return
	}
	var resObjs []types.Object
	var resTypes []types.Type
	for _, f := range fd.Type.Results.List {
		reps := len(f.Names)
		if reps == 0 {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			var obj types.Object
			if i < len(f.Names) {
				obj = n.Pkg.Info.Defs[f.Names[i]]
			}
			resObjs = append(resObjs, obj)
			resTypes = append(resTypes, n.Pkg.Info.Types[f.Type].Type)
		}
	}
	nres := len(resTypes)
	if nres == 0 || nres > 32 {
		return
	}
	errIdx := -1
	anyNilable := false
	for i, t := range resTypes {
		if t != nil && isErrorType(t) {
			errIdx = i
		} else if t != nil && nilable(t) {
			anyNilable = true
		}
	}
	if errIdx < 0 && !anyNilable {
		return
	}
	va := &valueAnalysis{
		pr:       pr,
		p:        n.Pkg,
		res:      &valueResult{diags: map[string][]Diagnostic{}},
		seeds:    map[*ast.FuncLit]*valEnv{},
		reported: map[string]bool{},
		quiet:    true,
	}
	fs := funcScope{name: fd.Name.Name, decl: fd, body: fd.Body}
	va.fs = fs
	va.s = newSSA(va.p, fs)
	va.errKeys = map[string]bool{}
	va.compact = map[types.Object]compactFact{}
	va.findCompactions(fs.body)
	envs := va.solve(va.s, va.boundaryEnv(fs))

	errAlwaysNil := errIdx >= 0
	var okMask uint32
	for i, t := range resTypes {
		if i != errIdx && t != nil && nilable(t) {
			okMask |= 1 << uint(i)
		}
	}
	sawReturn := false
	for _, blk := range va.s.g.Blocks {
		env := envs[blk]
		if env == nil {
			env = newValEnv()
		} else {
			env = env.clone()
		}
		for _, node := range blk.Nodes {
			if ret, ok := node.(*ast.ReturnStmt); ok {
				sawReturn = true
				vals := va.returnValues(env, ret, resObjs, resTypes)
				errNl := nlUnknown
				if errIdx >= 0 {
					errNl = vals[errIdx]
					if errNl != nlNil {
						errAlwaysNil = false
					}
				}
				if errNl != nlNonNil {
					// The error can be nil on this return: every ok-mask
					// result must be non-nil to keep its bit.
					for i := 0; i < nres; i++ {
						if okMask&(1<<uint(i)) != 0 && vals[i] != nlNonNil {
							okMask &^= 1 << uint(i)
						}
					}
				}
			}
			va.transferNode(env, node)
		}
	}
	if !sawReturn {
		// No normal return (panic/loop): facts are vacuous; keep the
		// conservative zero for the error bit, the full mask for results
		// (no caller ever observes them).
		errAlwaysNil = false
	}
	sum := pr.summaryOf(n)
	if errAlwaysNil {
		sum.ReturnsNilErrOn |= 1 << uint(errIdx)
	}
	sum.NonNilResultWhenNilErr = okMask
}

// returnValues computes the nilness of each result at one return.
func (va *valueAnalysis) returnValues(env *valEnv, ret *ast.ReturnStmt, resObjs []types.Object, resTypes []types.Type) []nil3 {
	nres := len(resTypes)
	vals := make([]nil3, nres)
	switch {
	case len(ret.Results) == 0:
		for i, obj := range resObjs {
			if obj != nil {
				vals[i] = env.nl[objKey(obj)]
			}
		}
	case len(ret.Results) == nres:
		for i, r := range ret.Results {
			vals[i] = va.returnNilness(env, r)
		}
	case len(ret.Results) == 1:
		// return f(): forward the callee's facts.
		if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if cn := va.pr.calleeNode(va.p, call); cn != nil && cn.sum != nil {
				for i := 0; i < nres && i < 32; i++ {
					if resTypes[i] != nil && isErrorType(resTypes[i]) {
						if cn.sum.ReturnsNilErrOn&(1<<uint(i)) != 0 {
							vals[i] = nlNil
						}
					} else if cn.sum.NonNilResultWhenNilErr&(1<<uint(i)) != 0 {
						// Callee guarantees non-nil when its error is nil;
						// as an unconditional fact this is only sound when
						// the callee has no error result — leave unknown
						// otherwise.
						if !tupleHasError(resTypes) {
							vals[i] = nlNonNil
						}
					}
				}
			}
		}
	}
	return vals
}

func tupleHasError(ts []types.Type) bool {
	for _, t := range ts {
		if t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

// returnNilness resolves one returned expression's nilness: syntax
// first, then the environment, then the error-constructor model
// (errors.New / fmt.Errorf never return nil).
func (va *valueAnalysis) returnNilness(env *valEnv, e ast.Expr) nil3 {
	if n := va.nilFact(env, e); n != nlUnknown {
		return n
	}
	if call, ok := unparen(e).(*ast.CallExpr); ok {
		if externalErrCtor(va.p, call) != "" {
			return nlNonNil
		}
		if cn := va.pr.calleeNode(va.p, call); cn != nil && cn.sum != nil {
			t := va.p.typeOf(e)
			if t != nil && isErrorType(t) && cn.sum.ReturnsNilErrOn&1 != 0 {
				return nlNil
			}
			if t != nil && nilable(t) && !isErrorType(t) && cn.sum.NonNilResultWhenNilErr&1 != 0 {
				// Only sound unconditionally for single-result callees.
				if sig, ok := va.p.typeOf(call.Fun).(*types.Signature); ok && sig.Results().Len() == 1 {
					return nlNonNil
				}
			}
		}
	}
	return nlUnknown
}
