package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package under analysis. Path is the
// import path the rules key on: fixture packages loaded with LoadDir
// can claim any virtual path (e.g. "tpcds/internal/exec") so analyzer
// tests exercise path-conditional rules without living in the real tree.
type Package struct {
	Path  string
	Name  string
	Root  string // module root the file display names are relative to
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package

	// Value-tier cache: the three value analyzers (boundscheck,
	// nilcheck, errcontract) share one abstract-interpretation pass per
	// package per Program (see valueflow.go).
	valRes  *valueResult
	valProg *Program
}

// Loader parses and type-checks packages using only the standard
// library: go/parser for syntax and go/types with the stdlib source
// importer for semantics — no x/tools dependency. One Loader shares a
// FileSet and the (expensive) standard-library type information across
// every package it loads.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod
	std     types.ImporterFrom
	pkgs    map[string]*Package
	seen    map[string]bool // import cycle guard
}

// NewLoader returns a loader rooted at the directory containing go.mod.
// Pass any directory inside the module; the loader walks upward to find
// the module root.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		seen:    map[string]bool{},
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// The shared-module cache: type-checking the whole module from source
// (including the standard-library packages it imports) costs seconds,
// and every consumer — the analyzer layer, the fixture tests, the CLI —
// wants the same result. Module loads once per module root per process
// and hands the same Loader and package list to everyone; the Loader's
// own per-package cache then also serves LoadDir fixture loads, which
// reuse the already-checked stdlib and module imports.
var (
	sharedMu      sync.Mutex
	sharedLoaders = map[string]*Loader{}
	sharedPkgs    = map[string][]*Package{}
)

// Module returns the shared type-checked module containing dir: the
// Loader (for further LoadDir calls against the same cache) and every
// package of the module sorted by import path. Concurrent and repeated
// calls share one load. BenchmarkLintModule quantifies the saving.
func Module(dir string) (*Loader, []*Package, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[root]; ok {
		return l, sharedPkgs[root], nil
	}
	l, err := NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, nil, err
	}
	sharedLoaders[root] = l
	sharedPkgs[root] = pkgs
	return l, pkgs, nil
}

// LoadModule loads every package of the module (skipping testdata and
// hidden directories; test files are not loaded — every rule exempts
// them anyway). Packages come back sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if len(buildableFiles(p)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// buildableFiles lists the non-test .go files of a directory.
func buildableFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, n))
	}
	sort.Strings(out)
	return out
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-internal imports by type-checking them
// from source and delegates everything else to the standard library's
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load type-checks one module package (cached).
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.seen[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.seen[importPath] = true
	defer delete(l.seen, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	files := buildableFiles(dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadDir type-checks the files of one directory as a standalone
// package claiming the given virtual import path. Used by the analyzer
// golden tests: fixture packages under testdata import only the
// standard library but pose as repo packages so path-conditional rules
// fire.
func (l *Loader) LoadDir(dir, virtualPath string) (*Package, error) {
	files := buildableFiles(dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(virtualPath, dir, files)
}

func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, fn := range files {
		display := fn
		if rel, err := filepath.Rel(l.root, fn); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		} else {
			display = filepath.Base(fn)
		}
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, display, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Root:  l.root,
		Fset:  l.Fset,
		Files: asts,
		Info:  info,
		Types: tpkg,
	}, nil
}
