// Package templatecheck statically validates the 99 query templates
// against the snowstorm schema — the workload half of dslint. The
// paper's comparability guarantees (§3.2, §4.1) assume every template
// substitutes and binds cleanly; a typo in a column name or a join that
// silently cross-products instead of following a declared relationship
// would otherwise only surface mid-benchmark. For each template it
// verifies, without executing anything:
//
//   - every substitution token is a registered qgen kind;
//   - the substituted SQL parses;
//   - every table reference resolves against the schema catalog (or a
//     CTE), every column reference resolves unambiguously, and select
//     aliases used in GROUP BY/HAVING/ORDER BY exist;
//   - every surrogate-key equijoin follows a declared foreign key, a
//     fact-to-fact link (Table 1, §2.2), or a conformed dimension
//     shared by both sides;
//   - expression types are compatible: no string/numeric comparisons,
//     no LIKE on numerics, no SUM/AVG over strings, and only functions
//     the engine's binder accepts.
//
// Findings are compiler-style diagnostics ("q14.sql:3:7: message")
// whose positions point into the template text itself.
package templatecheck

import (
	"fmt"
	"strings"

	"tpcds/internal/exec"
	"tpcds/internal/qgen"
	"tpcds/internal/schema"
	"tpcds/internal/sql"
)

// Diagnostic is one finding, positioned inside the template SQL. File
// is the template's virtual name ("q14.sql"); Line 1 is the first line
// of the SQL string (templates conventionally start with a newline, so
// the query body starts on line 2).
type Diagnostic struct {
	File    string
	Line    int
	Col     int
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Message)
}

// CheckAll validates every template and returns all findings in
// template order.
func CheckAll(tpls []qgen.Template) []Diagnostic {
	var out []Diagnostic
	for _, t := range tpls {
		out = append(out, CheckTemplate(t)...)
	}
	return out
}

// CheckTemplate validates one template.
func CheckTemplate(t qgen.Template) []Diagnostic {
	c := &checker{
		file:    fmt.Sprintf("q%d.sql", t.ID),
		tmpl:    t.SQL,
		catalog: schema.ByName(),
	}
	c.run()
	return c.diags
}

type checker struct {
	file    string
	tmpl    string
	inst    string // template with representative substitutions
	segs    []segment
	catalog map[string]*schema.Table
	diags   []Diagnostic
}

// segment maps a span of the instantiated text back to the template:
// token spans collapse to the token's start offset, literal spans map
// byte for byte.
type segment struct {
	instStart, instEnd int
	tmplStart          int
	token              bool
}

func (c *checker) errorf(tmplOff int, format string, args ...any) {
	line, col := 1, 1
	for i := 0; i < tmplOff && i < len(c.tmpl); i++ {
		if c.tmpl[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	c.diags = append(c.diags, Diagnostic{
		File: c.file, Line: line, Col: col,
		Message: fmt.Sprintf(format, args...),
	})
}

// tmplOff maps an offset in the instantiated text to the template.
func (c *checker) tmplOff(instOff int) int {
	for _, s := range c.segs {
		if instOff >= s.instStart && instOff < s.instEnd {
			if s.token {
				return s.tmplStart
			}
			return s.tmplStart + (instOff - s.instStart)
		}
	}
	if n := len(c.segs); n > 0 && instOff >= c.segs[n-1].instEnd {
		s := c.segs[n-1]
		return s.tmplStart + (s.instEnd - s.instStart)
	}
	return 0
}

func (c *checker) run() {
	c.substitute()
	stmt, err := sql.Parse(c.inst)
	if err != nil {
		if pe, ok := err.(*sql.ParseError); ok {
			c.errorf(c.tmplOff(pe.Offset), "parse error: %s", pe.Msg)
		} else {
			c.errorf(0, "parse error: %v", err)
		}
		return
	}
	c.checkSelect(stmt, map[string][]col{})
}

// substitute replaces every token with its deterministic representative
// value, recording the offset map. Unknown token kinds are findings;
// a numeric placeholder keeps the checker going so one bad token does
// not hide every later finding.
func (c *checker) substitute() {
	var sb strings.Builder
	last := 0
	for _, tok := range qgen.Tokens(c.tmpl) {
		if tok.Start > last {
			c.segs = append(c.segs, segment{
				instStart: sb.Len(), instEnd: sb.Len() + tok.Start - last, tmplStart: last,
			})
			sb.WriteString(c.tmpl[last:tok.Start])
		}
		val, err := qgen.Representative(tok.Kind)
		if err != nil {
			c.errorf(tok.Start, "undefined substitution parameter %s: no such token kind", tok.Full)
			val = "0"
		}
		c.segs = append(c.segs, segment{
			instStart: sb.Len(), instEnd: sb.Len() + len(val), tmplStart: tok.Start, token: true,
		})
		sb.WriteString(val)
		last = tok.End
	}
	if last < len(c.tmpl) {
		c.segs = append(c.segs, segment{
			instStart: sb.Len(), instEnd: sb.Len() + len(c.tmpl) - last, tmplStart: last,
		})
		sb.WriteString(c.tmpl[last:])
	}
	c.inst = sb.String()
}

// col is one output column of a relation in scope.
type col struct {
	name string
	typ  schema.Type
	// base/baseCol track the underlying catalog column when the value
	// flows unchanged from a base table (directly or through a CTE
	// projection); join validation keys on them.
	base    *schema.Table
	baseCol string
}

// rel is one FROM-clause entry: a base table or a CTE/derived relation.
type rel struct {
	binding string
	cols    []col
	table   *schema.Table // nil for CTEs
}

// scope is the name-resolution context of one SELECT block.
type scope struct {
	rels    []rel
	aliases map[string]col // select-item aliases; nil until items are checked
}

// checkSelect validates a (possibly unioned) statement and returns its
// output columns. ctes carries the WITH relations visible here;
// subqueries see them too (the engine binds subqueries with the same
// CTE map and no outer-column correlation).
func (c *checker) checkSelect(s *sql.SelectStmt, ctes map[string][]col) []col {
	local := make(map[string][]col, len(ctes)+len(s.With))
	for k, v := range ctes {
		local[k] = v
	}
	for _, cte := range s.With {
		local[cte.Name] = c.checkSelect(cte.Select, local)
	}
	var head []col
	for blk, first := s, true; blk != nil; blk, first = blk.UnionAll, false {
		outs := c.checkBlock(blk, local)
		if first {
			head = outs
		} else if len(outs) != len(head) {
			c.errorf(c.posOfBlock(blk), "UNION ALL block has %d columns, first block has %d",
				len(outs), len(head))
		}
	}
	return head
}

// posOfBlock anchors block-level findings to the block's first table.
func (c *checker) posOfBlock(s *sql.SelectStmt) int {
	if len(s.From) > 0 {
		return c.tmplOff(s.From[0].Pos)
	}
	return 0
}

func (c *checker) checkBlock(s *sql.SelectStmt, ctes map[string][]col) []col {
	sc := &scope{}
	for _, ref := range s.From {
		binding := ref.Binding()
		dup := false
		for _, r := range sc.rels {
			if r.binding == binding {
				c.errorf(c.tmplOff(ref.Pos), "duplicate table binding %q", binding)
				dup = true
			}
		}
		if dup {
			continue
		}
		if cteCols, ok := ctes[ref.Table]; ok {
			sc.rels = append(sc.rels, rel{binding: binding, cols: cteCols})
			continue
		}
		if t, ok := c.catalog[ref.Table]; ok {
			r := rel{binding: binding, table: t}
			for _, tc := range t.Columns {
				r.cols = append(r.cols, col{name: tc.Name, typ: tc.Type, base: t, baseCol: tc.Name})
			}
			sc.rels = append(sc.rels, r)
			continue
		}
		c.errorf(c.tmplOff(ref.Pos), "unknown table %q: not in the schema catalog or WITH clause", ref.Table)
		sc.rels = append(sc.rels, rel{binding: binding})
	}

	// SELECT items first: they define the aliases GROUP BY/HAVING/ORDER
	// BY may reference.
	var outs []col
	aliases := map[string]col{}
	for _, item := range s.Items {
		if item.Star {
			for _, r := range sc.rels {
				outs = append(outs, r.cols...)
			}
			continue
		}
		ct := c.checkExpr(item.Expr, sc, ctes, true)
		out := col{name: outputName(item), typ: ct.typ, base: ct.base, baseCol: ct.baseCol}
		outs = append(outs, out)
		aliases[out.name] = out
	}

	// WHERE and join conditions: no alias visibility.
	if s.Where != nil {
		c.checkExpr(s.Where, sc, ctes, true)
	}
	for _, ref := range s.From {
		if ref.On != nil {
			c.checkExpr(ref.On, sc, ctes, false)
		}
	}
	sc.aliases = aliases
	for _, g := range s.GroupBy {
		c.checkExpr(g, sc, ctes, false)
	}
	if s.Having != nil {
		c.checkExpr(s.Having, sc, ctes, true)
	}
	for _, o := range s.OrderBy {
		c.checkExpr(o.Expr, sc, ctes, true)
	}

	// Join validation over all equality conjuncts.
	var conds []sql.Expr
	conds = append(conds, conjuncts(s.Where)...)
	for _, ref := range s.From {
		conds = append(conds, conjuncts(ref.On)...)
	}
	for _, cond := range conds {
		c.checkJoinPredicate(cond, sc)
	}

	// Constant-predicate lint: filters whose truth value is fixed after
	// representative substitution (see constfold.go).
	anchor := c.posOfBlock(s)
	c.checkConstPredicates(s.Where, anchor)
	for _, ref := range s.From {
		c.checkConstPredicates(ref.On, anchor)
	}
	c.checkConstPredicates(s.Having, anchor)
	return outs
}

// ctype is a checked expression's type plus base-column provenance.
type ctype struct {
	typ     schema.Type
	known   bool
	base    *schema.Table
	baseCol string
	null    bool // the NULL literal
}

func numType(t schema.Type) bool {
	return t == schema.Integer || t == schema.Identifier || t == schema.Decimal || t == schema.Date
}

func strType(t schema.Type) bool { return t == schema.Char || t == schema.Varchar }

// resolveColumn finds a column reference in scope; aliasesOK extends
// the search to select-item aliases (GROUP BY/HAVING/ORDER BY).
func (c *checker) resolveColumn(ref *sql.ColRef, sc *scope, aliasesOK bool) ctype {
	if ref.Table != "" {
		for _, r := range sc.rels {
			if r.binding != ref.Table {
				continue
			}
			for _, cl := range r.cols {
				if cl.name == ref.Name {
					return ctype{typ: cl.typ, known: true, base: cl.base, baseCol: cl.baseCol}
				}
			}
			if r.table != nil || len(r.cols) > 0 { // suppress cascades from unknown tables
				c.errorf(c.tmplOff(ref.Pos), "table %q has no column %q", ref.Table, ref.Name)
			}
			return ctype{}
		}
		c.errorf(c.tmplOff(ref.Pos), "unknown table binding %q", ref.Table)
		return ctype{}
	}
	var found *col
	matches := 0
	for ri := range sc.rels {
		for ci := range sc.rels[ri].cols {
			if sc.rels[ri].cols[ci].name == ref.Name {
				found = &sc.rels[ri].cols[ci]
				matches++
				break
			}
		}
	}
	if matches > 1 {
		c.errorf(c.tmplOff(ref.Pos), "ambiguous column %q: qualify it with a table binding", ref.Name)
		return ctype{}
	}
	if matches == 1 {
		return ctype{typ: found.typ, known: true, base: found.base, baseCol: found.baseCol}
	}
	if aliasesOK && sc.aliases != nil {
		if a, ok := sc.aliases[ref.Name]; ok {
			return ctype{typ: a.typ, known: true, base: a.base, baseCol: a.baseCol}
		}
	}
	c.errorf(c.tmplOff(ref.Pos), "unknown column %q", ref.Name)
	return ctype{}
}

// posOf digs out a template position for an expression (its first
// column reference), falling back to offset 0.
func (c *checker) posOf(e sql.Expr) int {
	if ref := firstColRef(e); ref != nil {
		return c.tmplOff(ref.Pos)
	}
	return 0
}

func firstColRef(e sql.Expr) *sql.ColRef {
	switch v := e.(type) {
	case *sql.ColRef:
		return v
	case *sql.BinOp:
		if r := firstColRef(v.L); r != nil {
			return r
		}
		return firstColRef(v.R)
	case *sql.UnaryOp:
		return firstColRef(v.X)
	case *sql.Between:
		return firstColRef(v.X)
	case *sql.In:
		return firstColRef(v.X)
	case *sql.Like:
		return firstColRef(v.X)
	case *sql.IsNull:
		return firstColRef(v.X)
	case *sql.CaseExpr:
		for _, w := range v.Whens {
			if r := firstColRef(w.Cond); r != nil {
				return r
			}
		}
	case *sql.FuncCall:
		for _, a := range v.Args {
			if r := firstColRef(a); r != nil {
				return r
			}
		}
	case *sql.Window:
		return firstColRef(v.Agg)
	}
	return nil
}

// compatible mirrors the engine binder's checkComparable + coerceDate:
// string literals compare against dates when they parse as dates, NULL
// compares against anything, and string-vs-numeric is a type error.
func (c *checker) compatible(where string, x, y ctype, xe, ye sql.Expr) {
	if !x.known || !y.known || x.null || y.null {
		return
	}
	dateCoerced := func(t ctype, o ctype, oe sql.Expr) bool {
		if t.typ != schema.Date {
			return false
		}
		lit, ok := oe.(*sql.Lit)
		return ok && lit.Kind == sql.LitString && looksLikeDate(lit.Str)
	}
	if dateCoerced(x, y, ye) || dateCoerced(y, x, xe) {
		return
	}
	if (strType(x.typ) && numType(y.typ)) || (numType(x.typ) && strType(y.typ)) {
		pos := c.posOf(xe)
		if pos == 0 {
			pos = c.posOf(ye)
		}
		c.errorf(pos, "%s compares %v with %v", where, x.typ, y.typ)
	}
}

func looksLikeDate(s string) bool {
	return len(s) == 10 && s[4] == '-' && s[7] == '-'
}

// checkExpr validates an expression, reporting findings, and returns
// its type.
func (c *checker) checkExpr(e sql.Expr, sc *scope, ctes map[string][]col, aliasesOK bool) ctype {
	switch v := e.(type) {
	case *sql.ColRef:
		return c.resolveColumn(v, sc, aliasesOK)
	case *sql.Lit:
		switch v.Kind {
		case sql.LitNull:
			return ctype{typ: schema.Char, known: true, null: true}
		case sql.LitString:
			return ctype{typ: schema.Char, known: true}
		case sql.LitDate:
			return ctype{typ: schema.Date, known: true}
		default:
			if v.IsInt {
				return ctype{typ: schema.Integer, known: true}
			}
			return ctype{typ: schema.Decimal, known: true}
		}
	case *sql.BinOp:
		l := c.checkExpr(v.L, sc, ctes, aliasesOK)
		r := c.checkExpr(v.R, sc, ctes, aliasesOK)
		switch v.Op {
		case "AND", "OR":
			return ctype{typ: schema.Integer, known: true}
		case "=", "<>", "<", "<=", ">", ">=":
			c.compatible(fmt.Sprintf("comparison %q", v.Op), l, r, v.L, v.R)
			return ctype{typ: schema.Integer, known: true}
		case "||":
			return ctype{typ: schema.Varchar, known: true}
		default: // arithmetic
			for _, side := range []struct {
				t ctype
				e sql.Expr
			}{{l, v.L}, {r, v.R}} {
				if side.t.known && strType(side.t.typ) && !side.t.null {
					c.errorf(c.posOf(side.e), "arithmetic %q on %v operand", v.Op, side.t.typ)
				}
			}
			if v.Op == "/" {
				return ctype{typ: schema.Decimal, known: true}
			}
			if l.known && r.known {
				if l.typ == schema.Date || r.typ == schema.Date {
					return ctype{typ: schema.Date, known: true}
				}
				if (l.typ == schema.Integer || l.typ == schema.Identifier) &&
					(r.typ == schema.Integer || r.typ == schema.Identifier) {
					return ctype{typ: schema.Integer, known: true}
				}
			}
			return ctype{typ: schema.Decimal, known: true}
		}
	case *sql.UnaryOp:
		x := c.checkExpr(v.X, sc, ctes, aliasesOK)
		if v.Op == "NOT" {
			return ctype{typ: schema.Integer, known: true}
		}
		if x.known && strType(x.typ) {
			c.errorf(c.posOf(v.X), "unary minus on %v operand", x.typ)
		}
		return ctype{typ: x.typ, known: x.known}
	case *sql.Between:
		x := c.checkExpr(v.X, sc, ctes, aliasesOK)
		lo := c.checkExpr(v.Lo, sc, ctes, aliasesOK)
		hi := c.checkExpr(v.Hi, sc, ctes, aliasesOK)
		c.compatible("BETWEEN", x, lo, v.X, v.Lo)
		c.compatible("BETWEEN", x, hi, v.X, v.Hi)
		return ctype{typ: schema.Integer, known: true}
	case *sql.In:
		x := c.checkExpr(v.X, sc, ctes, aliasesOK)
		if v.Sub != nil {
			subCols := c.checkSelect(v.Sub, ctes)
			if len(subCols) != 1 {
				c.errorf(c.posOf(v.X), "IN subquery returns %d columns, want 1", len(subCols))
			} else {
				c.compatible("IN", x, ctype{typ: subCols[0].typ, known: true}, v.X, nil)
			}
		}
		for _, le := range v.List {
			lt := c.checkExpr(le, sc, ctes, aliasesOK)
			c.compatible("IN", x, lt, v.X, le)
		}
		return ctype{typ: schema.Integer, known: true}
	case *sql.Like:
		x := c.checkExpr(v.X, sc, ctes, aliasesOK)
		if x.known && !strType(x.typ) {
			c.errorf(c.posOf(v.X), "LIKE on %v operand; LIKE requires a string", x.typ)
		}
		return ctype{typ: schema.Integer, known: true}
	case *sql.IsNull:
		c.checkExpr(v.X, sc, ctes, aliasesOK)
		return ctype{typ: schema.Integer, known: true}
	case *sql.CaseExpr:
		var first ctype
		for i, w := range v.Whens {
			c.checkExpr(w.Cond, sc, ctes, aliasesOK)
			rt := c.checkExpr(w.Result, sc, ctes, aliasesOK)
			if i == 0 {
				first = rt
			}
		}
		if v.Else != nil {
			c.checkExpr(v.Else, sc, ctes, aliasesOK)
		}
		return ctype{typ: first.typ, known: first.known}
	case *sql.FuncCall:
		return c.checkFunc(v, sc, ctes, aliasesOK)
	case *sql.Window:
		t := c.checkFunc(v.Agg, sc, ctes, aliasesOK)
		for _, pexpr := range v.PartitionBy {
			c.checkExpr(pexpr, sc, ctes, aliasesOK)
		}
		return t
	case *sql.SubQuery:
		subCols := c.checkSelect(v.Select, ctes)
		if len(subCols) != 1 {
			c.errorf(0, "scalar subquery returns %d columns, want 1", len(subCols))
			return ctype{}
		}
		return ctype{typ: subCols[0].typ, known: true}
	}
	return ctype{}
}

func (c *checker) checkFunc(v *sql.FuncCall, sc *scope, ctes map[string][]col, aliasesOK bool) ctype {
	var args []ctype
	for _, a := range v.Args {
		args = append(args, c.checkExpr(a, sc, ctes, aliasesOK))
	}
	if sql.IsAggregate(v.Name) {
		switch v.Name {
		case "COUNT":
			return ctype{typ: schema.Integer, known: true}
		case "SUM", "AVG", "STDDEV_SAMP":
			if len(args) == 1 && args[0].known && strType(args[0].typ) && !args[0].null {
				c.errorf(c.posOf(v.Args[0]), "%s over %v column; aggregate requires a numeric argument",
					v.Name, args[0].typ)
			}
			return ctype{typ: schema.Decimal, known: true}
		default: // MIN, MAX
			if len(args) == 1 {
				return ctype{typ: args[0].typ, known: args[0].known}
			}
			return ctype{}
		}
	}
	rt, sameAsArg, ok := exec.ScalarFuncType(v.Name)
	if !ok {
		c.errorf(c.posOf(v), "unknown function %s: not an engine aggregate or scalar function", v.Name)
		return ctype{}
	}
	if len(args) == 0 {
		c.errorf(c.posOf(v), "function %s requires arguments", v.Name)
		return ctype{}
	}
	if sameAsArg {
		return ctype{typ: args[0].typ, known: args[0].known}
	}
	return ctype{typ: rt, known: true}
}

// checkJoinPredicate validates surrogate-key equijoins: an equality
// between Identifier columns of two different base tables must follow a
// declared FK (either direction), a fact-to-fact link, or a conformed
// dimension both sides reference. Anything else is either a typo'd
// join or an undeclared relationship the catalog should know about.
func (c *checker) checkJoinPredicate(cond sql.Expr, sc *scope) {
	b, ok := cond.(*sql.BinOp)
	if !ok || b.Op != "=" {
		return
	}
	lref, lok := b.L.(*sql.ColRef)
	rref, rok := b.R.(*sql.ColRef)
	if !lok || !rok {
		return
	}
	l := c.lookupQuiet(lref, sc)
	r := c.lookupQuiet(rref, sc)
	if l == nil || r == nil || l.base == nil || r.base == nil {
		return
	}
	if l.typ != schema.Identifier || r.typ != schema.Identifier {
		return
	}
	if l.base.Name == r.base.Name {
		return // self-join through table aliases
	}
	if joinJustified(l.base, l.baseCol, r.base, r.baseCol) ||
		joinJustified(r.base, r.baseCol, l.base, l.baseCol) {
		return
	}
	c.errorf(c.tmplOff(lref.Pos),
		"join %s.%s = %s.%s follows no declared foreign key, fact link, or conformed dimension",
		l.base.Name, l.baseCol, r.base.Name, r.baseCol)
}

// lookupQuiet resolves a column without emitting diagnostics (the
// expression pass already reported resolution failures).
func (c *checker) lookupQuiet(ref *sql.ColRef, sc *scope) *col {
	for ri := range sc.rels {
		r := &sc.rels[ri]
		if ref.Table != "" && r.binding != ref.Table {
			continue
		}
		for ci := range r.cols {
			if r.cols[ci].name == ref.Name {
				return &r.cols[ci]
			}
		}
		if ref.Table != "" {
			return nil
		}
	}
	return nil
}

// joinJustified checks one direction: a.colA joining b.colB.
func joinJustified(a *schema.Table, colA string, b *schema.Table, colB string) bool {
	// Declared FK: a.colA references b, and colB is b's surrogate key.
	for _, fk := range a.ForeignKeys {
		if fk.Column == colA && fk.Ref == b.Name &&
			len(b.PrimaryKey) == 1 && b.PrimaryKey[0] == colB {
			return true
		}
	}
	// Fact-to-fact link: positional match of link columns against the
	// target's composite primary key (e.g. store_returns(sr_item_sk,
	// sr_ticket_number) -> store_sales(ss_item_sk, ss_ticket_number)).
	for _, fl := range schema.FactLinks() {
		if fl.From != a.Name || fl.To != b.Name {
			continue
		}
		for i, lc := range fl.Columns {
			if lc == colA && i < len(b.PrimaryKey) && b.PrimaryKey[i] == colB {
				return true
			}
		}
	}
	// Conformed dimension: both columns are FKs to the same dimension
	// (e.g. ss_sold_date_sk = ws_sold_date_sk via date_dim).
	refA := fkRef(a, colA)
	if refA != "" && refA == fkRef(b, colB) {
		return true
	}
	return false
}

func fkRef(t *schema.Table, colName string) string {
	for _, fk := range t.ForeignKeys {
		if fk.Column == colName {
			return fk.Ref
		}
	}
	return ""
}

// conjuncts flattens an AND tree.
func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinOp); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// outputName mirrors the engine's result-column naming: alias, bare
// column name, else the lower-cased canonical render.
func outputName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sql.ColRef); ok {
		return cr.Name
	}
	return strings.ToLower(item.Expr.Render())
}
