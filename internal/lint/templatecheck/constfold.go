package templatecheck

// constfold is the constant-predicate lint: after representative
// substitution every qgen token is a literal, so a predicate whose
// operands are all literals has one fixed truth value — the template
// either always keeps or always drops every row, which is never what a
// benchmark filter means. The pass folds literal arithmetic and
// comparisons in WHERE, join ON, and HAVING predicates and flags
//
//   - comparisons that fold to a constant (always true / always false),
//   - BETWEEN predicates whose folded bounds are reversed (the range
//     is empty: always false, or always true under NOT), and
//   - fully-literal BETWEEN and IN-list predicates.
//
// Predicates mentioning a column never fold — the point is to catch
// tautologies a substitution rewrite or a template edit left behind,
// not to reason about data. NULL operands never fold either (SQL
// three-valued logic makes their truth value non-constant in spirit:
// the predicate is unknown, and the unknown-handling is the query's
// business).

import (
	"strings"

	"tpcds/internal/sql"
)

// constVal is the folded value of a literal expression: a number or a
// string (dates fold as their ISO text, which compares lexically in
// date order).
type constVal struct {
	num   float64
	str   string
	isNum bool
}

// constValue folds e when every leaf is a non-NULL literal. Arithmetic
// folds over numbers; anything else (columns, functions, subqueries,
// NULL) stops the fold.
func constValue(e sql.Expr) (constVal, bool) {
	switch v := e.(type) {
	case *sql.Lit:
		switch v.Kind {
		case sql.LitNull:
			return constVal{}, false
		case sql.LitString, sql.LitDate:
			return constVal{str: v.Str}, true
		default:
			return constVal{num: v.Num, isNum: true}, true
		}
	case *sql.UnaryOp:
		if v.Op == "-" {
			if x, ok := constValue(v.X); ok && x.isNum {
				return constVal{num: -x.num, isNum: true}, true
			}
		}
	case *sql.BinOp:
		l, lok := constValue(v.L)
		r, rok := constValue(v.R)
		if lok && rok && l.isNum && r.isNum {
			switch v.Op {
			case "+":
				return constVal{num: l.num + r.num, isNum: true}, true
			case "-":
				return constVal{num: l.num - r.num, isNum: true}, true
			case "*":
				return constVal{num: l.num * r.num, isNum: true}, true
			case "/":
				if r.num != 0 {
					return constVal{num: l.num / r.num, isNum: true}, true
				}
			}
		}
	}
	return constVal{}, false
}

// compare orders two folded values when they are of the same family.
func (a constVal) compare(b constVal) (int, bool) {
	if a.isNum != b.isNum {
		return 0, false
	}
	if a.isNum {
		switch {
		case a.num < b.num:
			return -1, true
		case a.num > b.num:
			return 1, true
		}
		return 0, true
	}
	return strings.Compare(a.str, b.str), true
}

func truth(ok bool) string {
	if ok {
		return "true"
	}
	return "false"
}

// checkConstPredicates walks the boolean structure of one predicate
// position (WHERE, ON, HAVING) and flags every leaf whose truth value
// is fixed after substitution. anchor positions findings that contain
// no column reference (a fully-literal predicate has none).
func (c *checker) checkConstPredicates(e sql.Expr, anchor int) {
	if e == nil {
		return
	}
	pos := func(x sql.Expr) int {
		if p := c.posOf(x); p != 0 {
			return p
		}
		return anchor
	}
	switch v := e.(type) {
	case *sql.BinOp:
		switch v.Op {
		case "AND", "OR":
			c.checkConstPredicates(v.L, anchor)
			c.checkConstPredicates(v.R, anchor)
			return
		case "=", "<>", "<", "<=", ">", ">=":
			l, lok := constValue(v.L)
			r, rok := constValue(v.R)
			if !lok || !rok {
				return
			}
			cmp, ok := l.compare(r)
			if !ok {
				return
			}
			var val bool
			switch v.Op {
			case "=":
				val = cmp == 0
			case "<>":
				val = cmp != 0
			case "<":
				val = cmp < 0
			case "<=":
				val = cmp <= 0
			case ">":
				val = cmp > 0
			case ">=":
				val = cmp >= 0
			}
			c.errorf(pos(v), "predicate %s is always %s after substitution",
				v.Render(), truth(val))
		}
	case *sql.UnaryOp:
		if v.Op == "NOT" {
			c.checkConstPredicates(v.X, anchor)
		}
	case *sql.Between:
		lo, lok := constValue(v.Lo)
		hi, hok := constValue(v.Hi)
		if !lok || !hok {
			return
		}
		if cmp, ok := lo.compare(hi); ok && cmp > 0 {
			c.errorf(pos(v), "BETWEEN range %s .. %s is empty: predicate is always %s after substitution",
				v.Lo.Render(), v.Hi.Render(), truth(v.Not))
			return
		}
		// Bounds are ordered; the predicate is still constant when the
		// tested expression is itself a literal.
		if x, ok := constValue(v.X); ok {
			lc, ok1 := x.compare(lo)
			hc, ok2 := x.compare(hi)
			if ok1 && ok2 {
				val := lc >= 0 && hc <= 0
				if v.Not {
					val = !val
				}
				c.errorf(pos(v), "predicate %s is always %s after substitution",
					v.Render(), truth(val))
			}
		}
	case *sql.In:
		if v.Sub != nil || len(v.List) == 0 {
			return
		}
		x, ok := constValue(v.X)
		if !ok {
			return
		}
		hit, foldable := false, true
		for _, le := range v.List {
			lv, ok := constValue(le)
			if !ok {
				foldable = false
				break
			}
			if cmp, ok := x.compare(lv); ok && cmp == 0 {
				hit = true
			}
		}
		if foldable {
			val := hit
			if v.Not {
				val = !val
			}
			c.errorf(pos(v), "predicate %s is always %s after substitution",
				v.Render(), truth(val))
		}
	}
}
