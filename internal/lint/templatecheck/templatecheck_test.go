package templatecheck_test

import (
	"strings"
	"testing"

	"tpcds/internal/lint/templatecheck"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
)

// TestAllTemplatesClean is the workload half of the dslint gate as a
// plain test: every shipped template substitutes, parses, and resolves
// against the schema catalog without findings.
func TestAllTemplatesClean(t *testing.T) {
	for _, d := range templatecheck.CheckAll(queries.All()) {
		t.Errorf("%s", d)
	}
}

// render joins diagnostics into one newline-separated string.
func render(diags []templatecheck.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestSyntheticCorruptions checks the exact diagnostic (message and
// template position) for each corruption class the checker exists to
// catch. The SQL strings start with a newline like the real templates,
// so findings land on line 2.
func TestSyntheticCorruptions(t *testing.T) {
	cases := []struct {
		name string
		tmpl qgen.Template
		want []string
	}{
		{
			name: "unknown column",
			tmpl: qgen.Template{ID: 901, SQL: "\nSELECT ss_bogus FROM store_sales\n"},
			want: []string{`q901.sql:2:8: unknown column "ss_bogus"`},
		},
		{
			name: "unknown table",
			tmpl: qgen.Template{ID: 902, SQL: "\nSELECT 1 FROM no_such_table\n"},
			want: []string{`q902.sql:2:15: unknown table "no_such_table": not in the schema catalog or WITH clause`},
		},
		{
			name: "unbound substitution parameter",
			tmpl: qgen.Template{ID: 903, SQL: "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity > [BOGUS]\n"},
			want: []string{`q903.sql:2:57: undefined substitution parameter [BOGUS]: no such token kind`},
		},
		{
			name: "join without declared relationship",
			tmpl: qgen.Template{ID: 904, SQL: "\nSELECT ss_item_sk FROM store_sales, customer_address WHERE ss_store_sk = ca_address_sk\n"},
			want: []string{`q904.sql:2:60: join store_sales.ss_store_sk = customer_address.ca_address_sk follows no declared foreign key, fact link, or conformed dimension`},
		},
		{
			name: "string compared with numeric",
			tmpl: qgen.Template{ID: 905, SQL: "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity = 'abc'\n"},
			want: []string{`q905.sql:2:43: comparison "=" compares integer with char`},
		},
		{
			name: "aggregate over string column",
			tmpl: qgen.Template{ID: 906, SQL: "\nSELECT SUM(c_first_name) FROM customer\n"},
			want: []string{`q906.sql:2:12: SUM over char column; aggregate requires a numeric argument`},
		},
		{
			name: "union arity mismatch",
			tmpl: qgen.Template{ID: 907, SQL: "\nSELECT ss_item_sk, ss_quantity FROM store_sales UNION ALL SELECT sr_item_sk FROM store_returns\n"},
			want: []string{`q907.sql:2:82: UNION ALL block has 1 columns, first block has 2`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := render(templatecheck.CheckTemplate(tc.tmpl))
			want := strings.Join(tc.want, "\n") + "\n"
			if got != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestConstantPredicates exercises the constant-predicate lint: after
// representative substitution a fully-literal predicate has one fixed
// truth value, which the checker must fold and flag — and predicates
// that merely look constant (columns, NULLs, subqueries) must not fold.
func TestConstantPredicates(t *testing.T) {
	cases := []struct {
		name string
		tmpl qgen.Template
		want []string
	}{
		{
			name: "always-true comparison",
			tmpl: qgen.Template{ID: 911, SQL: "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity > 0 AND 1 = 1\n"},
			want: []string{`q911.sql:2:25: predicate (1 = 1) is always true after substitution`},
		},
		{
			name: "always-false comparison with folded arithmetic",
			tmpl: qgen.Template{ID: 912, SQL: "\nSELECT ss_quantity FROM store_sales WHERE 2 + 2 < 4\n"},
			want: []string{`q912.sql:2:25: predicate ((2 + 2) < 4) is always false after substitution`},
		},
		{
			name: "empty BETWEEN range",
			tmpl: qgen.Template{ID: 913, SQL: "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity BETWEEN 10 AND 5\n"},
			want: []string{`q913.sql:2:43: BETWEEN range 10 .. 5 is empty: predicate is always false after substitution`},
		},
		{
			name: "empty NOT BETWEEN range is a tautology",
			tmpl: qgen.Template{ID: 914, SQL: "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity NOT BETWEEN 10 AND 5\n"},
			want: []string{`q914.sql:2:43: BETWEEN range 10 .. 5 is empty: predicate is always true after substitution`},
		},
		{
			name: "empty date BETWEEN range",
			tmpl: qgen.Template{ID: 915, SQL: "\nSELECT ss_quantity FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND d_date BETWEEN '2001-12-31' AND '2001-01-01'\n"},
			want: []string{`q915.sql:2:85: BETWEEN range '2001-12-31' .. '2001-01-01' is empty: predicate is always false after substitution`},
		},
		{
			name: "literal BETWEEN over an ordered range",
			tmpl: qgen.Template{ID: 916, SQL: "\nSELECT ss_quantity FROM store_sales WHERE 7 BETWEEN 1 AND 5\n"},
			want: []string{`q916.sql:2:25: predicate (7 BETWEEN 1 AND 5) is always false after substitution`},
		},
		{
			name: "literal IN list",
			tmpl: qgen.Template{ID: 917, SQL: "\nSELECT ss_quantity FROM store_sales WHERE 3 IN (1, 2, 3)\n"},
			want: []string{`q917.sql:2:25: predicate (3 IN (1, 2, 3)) is always true after substitution`},
		},
		{
			name: "constant leaf inside OR and HAVING",
			tmpl: qgen.Template{ID: 918, SQL: "\nSELECT ss_store_sk, SUM(ss_quantity) FROM store_sales WHERE ss_quantity > 0 OR 0 = 1 GROUP BY ss_store_sk HAVING 2 > 1\n"},
			want: []string{
				`q918.sql:2:43: predicate (0 = 1) is always false after substitution`,
				`q918.sql:2:43: predicate (2 > 1) is always true after substitution`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := render(templatecheck.CheckTemplate(tc.tmpl))
			want := strings.Join(tc.want, "\n") + "\n"
			if got != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
	clean := []struct {
		name string
		sql  string
	}{
		{"column keeps the predicate live", "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity > 5\n"},
		{"NULL never folds", "\nSELECT ss_quantity FROM store_sales WHERE NULL = 1\n"},
		{"token substitution is not constant against a column", "\nSELECT d_year FROM date_dim WHERE d_year = [YEAR]\n"},
		{"division by literal zero does not fold", "\nSELECT ss_quantity FROM store_sales WHERE ss_quantity > 1 / 0\n"},
	}
	for _, tc := range clean {
		t.Run(tc.name, func(t *testing.T) {
			if got := render(templatecheck.CheckTemplate(qgen.Template{ID: 919, SQL: tc.sql})); got != "" {
				t.Errorf("clean shape flagged:\n%s", got)
			}
		})
	}
}

// TestCorruptedRealTemplate corrupts a copy of a shipped template and
// asserts the checker localizes the damage: a clean template plus one
// typo'd column must yield exactly the unknown-column findings for the
// typo (one per occurrence).
func TestCorruptedRealTemplate(t *testing.T) {
	var victim qgen.Template
	for _, tpl := range queries.All() {
		if strings.Contains(tpl.SQL, "ss_sold_date_sk") {
			victim = tpl
			break
		}
	}
	if victim.ID == 0 {
		t.Fatal("no template references ss_sold_date_sk")
	}
	if diags := templatecheck.CheckTemplate(victim); len(diags) != 0 {
		t.Fatalf("template %d not clean before corruption: %v", victim.ID, diags)
	}
	corrupted := victim
	corrupted.SQL = strings.Replace(victim.SQL, "ss_sold_date_sk", "ss_bogus_sk", 1)
	diags := templatecheck.CheckTemplate(corrupted)
	if len(diags) == 0 {
		t.Fatalf("checker missed the corrupted column in template %d", victim.ID)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "ss_bogus_sk") {
			t.Errorf("unexpected cascade finding: %s", d)
		}
	}
}
