// Package lint implements dslint, the repo's static-analysis gate. It
// enforces engine invariants the Go compiler cannot check, at analysis
// time rather than after a multi-minute benchmark run:
//
//   - determinism: generator packages (rng, dist, datagen, qgen,
//     scaling) must be bit-deterministic across runs and parallelism
//     levels (the paper's §3 MUDD-style seeded streams), so wall-clock
//     reads, the global math/rand and map-iteration-order-dependent
//     loops are banned there;
//   - cancelcheck: row-scale loops in internal/exec must poll the
//     per-query cancellation helpers (qctx tick/done/checkNow) so
//     timeouts and aborts keep bounded latency;
//   - errcheck: no call may silently discard an error result;
//   - panics: library panics must be package-prefixed invariant
//     messages (the query-boundary recover attributes them) or the
//     sanctioned qctx cancellation sentinel;
//   - strayio: fmt.Print*/os.Stdout/os.Stderr are reserved for main
//     packages — library code writes to an injected io.Writer.
//
// On top of the statement-level rules sits a flow-sensitive tier built
// on an intraprocedural CFG (cfg.go) and a generic forward worklist
// solver (dataflow.go):
//
//   - lockcheck: every sync.Mutex/RWMutex Lock is Unlocked on every
//     path to return (defer-aware), no double-Lock on a path, and no
//     channel operation while a lock is held;
//   - goleak: every `go` statement has a provable join — WaitGroup
//     Add/Done/Wait pairing with Wait on all paths from the spawn to
//     return, or a cancellation-driven exit;
//   - ctxflow: context.Background()/TODO() are banned in library
//     packages, and a function holding a ctx must thread it into every
//     callee that accepts one;
//   - taintdet: a forward taint analysis catching wall-clock/rand/env
//     values that reach storage emission or exported results through
//     intermediate assignments — the flows the syntactic determinism
//     rule cannot see.
//
// False positives are suppressed, never silently: a
// "//lint:ignore <rule> <reason>" comment on the flagged line or the
// line above suppresses one rule there, is counted in the result, and
// becomes itself a finding when it stops matching anything.
//
// The implementation is pure standard library (go/parser, go/ast,
// go/types); see load.go for how module packages are type-checked from
// source without x/tools.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned like a compiler error. Why
// carries the failed-proof explanation of the value-tier rules for
// `dslint -why`; it is deliberately excluded from String and the JSON
// encoding so default output stays stable and comparable across runs.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	Why     string `json:"-"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// MarshalJSON flattens the position so the -json output of cmd/dslint
// is a stable, machine-readable record per finding.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
}

// Result is the outcome of checking a set of packages.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  int // findings silenced by matching //lint:ignore directives

	// SuppressedByRule splits Suppressed per rule: the input of the
	// suppression-ratchet baseline (cmd/dslint -baseline).
	SuppressedByRule map[string]int

	// Timings is the cumulative wall time per analyzer across all
	// packages (cmd/dslint -timings). The first value-tier rule to run
	// absorbs the shared abstract-interpretation pass; the other two
	// read its per-package cache.
	Timings map[string]time.Duration
}

// Clean reports whether no findings survived.
func (r *Result) Clean() bool { return len(r.Diagnostics) == 0 }

// analyzers lists the source rules: the five statement-level analyzers
// followed by the three intraprocedural flow-sensitive ones.
var analyzers = []struct {
	name string
	fn   func(*Package) []Diagnostic
}{
	{"determinism", analyzeDeterminism},
	{"cancelcheck", analyzeCancelCheck},
	{"errcheck", analyzeErrCheck},
	{"panics", analyzePanics},
	{"strayio", analyzeStrayIO},
	{"lockcheck", analyzeLockCheck},
	{"goleak", analyzeGoLeak},
	{"ctxflow", analyzeCtxFlow},
}

// interAnalyzers lists the interprocedural rules: they additionally see
// the Program (call graph + summaries) built over the whole package
// set. taintdet lives here since it follows taint through helper calls
// via transfer summaries.
var interAnalyzers = []struct {
	name string
	fn   func(*Program, *Package) []Diagnostic
}{
	{"taintdet", analyzeTaintDet},
	{"sharecap", analyzeShareCap},
	{"pubfreeze", analyzePubFreeze},
	{"boundscheck", analyzeBoundsCheck},
	{"nilcheck", analyzeNilCheck},
	{"errcontract", analyzeErrContract},
}

// Rules lists the registered analyzer names in registration order.
func Rules() []string {
	var out []string
	for _, a := range analyzers {
		out = append(out, a.name)
	}
	for _, a := range interAnalyzers {
		out = append(out, a.name)
	}
	return out
}

// KnownRule reports whether name is a registered analyzer.
func KnownRule(name string) bool {
	for _, a := range analyzers {
		if a.name == name {
			return true
		}
	}
	for _, a := range interAnalyzers {
		if a.name == name {
			return true
		}
	}
	return false
}

// Check runs every analyzer over every package, applies //lint:ignore
// directives, and returns the surviving findings sorted by position.
func Check(pkgs []*Package) *Result { return CheckRules(pkgs, nil) }

// CheckRules is Check restricted to a subset of analyzers; nil or empty
// runs all of them. Stale-directive findings are only produced for
// rules that actually ran (a directive for a skipped rule cannot prove
// itself useful).
func CheckRules(pkgs []*Package, rules []string) *Result {
	return CheckRulesWithStore(pkgs, rules, nil)
}

// CheckRulesWithStore is CheckRules with an optional summary store: a
// non-nil store restores summaries for packages whose content hash
// matches and records the rest after the fixpoint (the caller saves).
func CheckRulesWithStore(pkgs []*Package, rules []string, store *SummaryStore) *Result {
	run := map[string]bool{}
	if len(rules) == 0 {
		for _, a := range analyzers {
			run[a.name] = true
		}
		for _, a := range interAnalyzers {
			run[a.name] = true
		}
	} else {
		for _, r := range rules {
			run[r] = true
		}
	}
	// The Program (call graph + bottom-up summaries) is built once over
	// the whole set and shared by every interprocedural rule.
	var pr *Program
	for _, a := range interAnalyzers {
		if run[a.name] {
			pr = buildProgram(pkgs, store)
			break
		}
	}
	res := &Result{SuppressedByRule: map[string]int{}, Timings: map[string]time.Duration{}}
	for _, p := range pkgs {
		dirs, dirDiags := collectDirectives(p)
		res.Diagnostics = append(res.Diagnostics, dirDiags...)
		var raw []Diagnostic
		for _, a := range analyzers {
			if run[a.name] {
				start := time.Now()
				raw = append(raw, a.fn(p)...)
				res.Timings[a.name] += time.Since(start)
			}
		}
		for _, a := range interAnalyzers {
			if run[a.name] {
				start := time.Now()
				raw = append(raw, a.fn(pr, p)...)
				res.Timings[a.name] += time.Since(start)
			}
		}
		for _, d := range raw {
			if suppress(dirs, d) {
				res.Suppressed++
				res.SuppressedByRule[d.Rule]++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
		for _, ds := range dirs {
			for _, dir := range ds {
				// A directive for a rule that did not run cannot prove
				// itself useful — skip the staleness check for it; a
				// directive naming an unknown rule is always stale.
				if !dir.used && (run[dir.rule] || !KnownRule(dir.rule)) {
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:  dir.pos,
						Rule: "directive",
						Message: fmt.Sprintf("//lint:ignore %s directive suppresses nothing (stale?)",
							dir.rule),
					})
				}
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return res
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	rule   string
	reason string
	line   int
	pos    token.Position
	used   bool
}

// collectDirectives parses every //lint:ignore comment of the package,
// keyed by filename. Malformed directives (missing rule or reason) are
// findings themselves: an unexplained suppression is worse than the
// finding it hides.
func collectDirectives(p *Package) (map[string][]*directive, []Diagnostic) {
	dirs := map[string][]*directive{}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    "directive",
						Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				dirs[pos.Filename] = append(dirs[pos.Filename], &directive{
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
					pos:    pos,
				})
			}
		}
	}
	return dirs, diags
}

// suppress reports whether a directive covers the diagnostic: same
// file, same rule, on the flagged line or the line immediately above.
func suppress(dirs map[string][]*directive, d Diagnostic) bool {
	for _, dir := range dirs[d.Pos.Filename] {
		if dir.rule == d.Rule && (dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
			dir.used = true
			return true
		}
	}
	return false
}

// diag builds a Diagnostic at a node's position.
func (p *Package) diag(n ast.Node, rule, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(n.Pos()),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}
