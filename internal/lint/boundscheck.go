package lint

// boundscheck.go proves index, slice, and divisor obligations over the
// interval facts of valueflow.go. The rule is scoped to the batch
// kernel files of internal/exec (batch.go, join.go, agg.go, star.go)
// and all of internal/obs — the hot paths where an out-of-bounds
// selection-vector index or histogram-bucket index silently corrupts a
// result rather than crashing (PAPER.md's trustworthiness argument).
//
// An index proof needs two facts: lo(idx) ≥ 0 and hi(idx) ≤ L−1 for
// some known length bound L of the indexed container (the constant
// length of an array, the symbolic len(x) of an addressable slice, or
// the tracked lower bound of its length interval). Trusted row ids
// (the exec contract seeded in valueflow.go) pass without a derived
// interval. What cannot be proven is flagged with the derived facts
// attached for `dslint -why`.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzeBoundsCheck is the boundscheck analyzer entry.
func analyzeBoundsCheck(pr *Program, p *Package) []Diagnostic {
	return valueAnalyze(pr, p).diags["boundscheck"]
}

// indexLenBounds returns the candidate length lower bounds of the
// indexed expression, or ok=false when the container kind carries no
// bounds obligation here (maps, type parameters).
func (va *valueAnalysis) indexLenBounds(env *valEnv, x ast.Expr) (cands []*lin, desc string, ok bool) {
	t := va.p.typeOf(x)
	if t == nil {
		return nil, "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return nil, "", false
	case *types.Array:
		return []*lin{linConst(u.Len())}, fmt.Sprintf("len = %d", u.Len()), true
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return []*lin{linConst(arr.Len())}, fmt.Sprintf("len = %d", arr.Len()), true
		}
		return nil, "", false
	case *types.Slice:
	case *types.Basic:
		if u.Info()&types.IsString == 0 {
			return nil, "", false
		}
	default:
		return nil, "", false
	}
	key := va.p.canonKey(x)
	if key == "" {
		return nil, "no stable identity for the indexed expression", true
	}
	cands = append(cands, linLen(key))
	desc = fmt.Sprintf("len(%s) unknown", keyDisplay(key))
	if l, ok := env.ln[key]; ok && l.lo != nil {
		cands = append(cands, l.lo)
		desc = fmt.Sprintf("len(%s) ∈ %s", keyDisplay(key), l.String())
	}
	return cands, desc, true
}

// checkIndex proves (or flags) one index expression.
func (va *valueAnalysis) checkIndex(env *valEnv, v *ast.IndexExpr) {
	cands, lenDesc, ok := va.indexLenBounds(env, v.X)
	if !ok {
		return
	}
	if va.trusted(env, v.Index) {
		return // exec row-id contract
	}
	iv := va.eval(env, v.Index)
	// The exact symbolic form is a second candidate for each side:
	// interval arithmetic on `end − base` loses the cancelling base
	// terms that the syntactic form keeps.
	exact := va.evalExact(v.Index)
	loOK := iv.lo != nil && va.proveNonNeg(env, iv.lo, proveDepth)
	if !loOK && exact != nil {
		loOK = va.proveNonNeg(env, exact, proveDepth)
	}
	hiOK := false
	for _, cand := range cands {
		// cand − 1 − hi ≥ 0  ⇔  hi ≤ cand − 1.
		if iv.hi != nil && va.proveNonNeg(env, linAddK(linSub(cand, iv.hi), -1), proveDepth) {
			hiOK = true
			break
		}
		if exact != nil && va.proveNonNeg(env, linAddK(linSub(cand, exact), -1), proveDepth) {
			hiOK = true
			break
		}
	}
	if loOK && hiOK {
		return
	}
	why := fmt.Sprintf("index %s ∈ %s; %s; lower bound %s, upper bound %s",
		displayExpr(v.Index), iv.String(), lenDesc, proofWord(loOK), proofWord(hiOK))
	va.emit(v, "boundscheck", why,
		"cannot prove index %s in bounds of %s", displayExpr(v.Index), displayExpr(v.X))
}

func proofWord(ok bool) string {
	if ok {
		return "proven"
	}
	return "unproven"
}

// checkSlice proves the obligations of s[lo:hi] (and the full three-
// index form): lo ≥ 0, hi ≤ len(s) (sufficient since len ≤ cap — a
// deliberate over-restriction, documented), lo ≤ hi.
func (va *valueAnalysis) checkSlice(env *valEnv, v *ast.SliceExpr) {
	cands, lenDesc, ok := va.indexLenBounds(env, v.X)
	if !ok {
		return
	}
	lo, hi := ivalConst(0), ivalTop()
	if v.Low != nil {
		lo = va.eval(env, v.Low)
	}
	if v.High != nil {
		hi = va.eval(env, v.High)
	} else {
		if len(cands) > 0 {
			hi = ivalExact(cands[0])
		}
	}
	var loExact, hiExact *lin
	if v.Low != nil {
		loExact = va.evalExact(v.Low)
	}
	if v.High != nil {
		hiExact = va.evalExact(v.High)
	}
	loOK := lo.lo != nil && va.proveNonNeg(env, lo.lo, proveDepth)
	if !loOK && loExact != nil {
		loOK = va.proveNonNeg(env, loExact, proveDepth)
	}
	hiOK := v.High == nil
	if !hiOK {
		for _, cand := range cands {
			if hi.hi != nil && va.proveNonNeg(env, linSub(cand, hi.hi), proveDepth) { // hi ≤ cand
				hiOK = true
				break
			}
			if hiExact != nil && va.proveNonNeg(env, linSub(cand, hiExact), proveDepth) {
				hiOK = true
				break
			}
		}
	}
	ordOK := lo.hi != nil && hi.lo != nil && va.proveNonNeg(env, linSub(hi.lo, lo.hi), proveDepth)
	if !ordOK && loExact != nil && hiExact != nil {
		ordOK = va.proveNonNeg(env, linSub(hiExact, loExact), proveDepth)
	}
	if !ordOK && v.Low != nil && v.High != nil {
		// Relational fallback: an interval entry for the bound variable
		// hides its self-identity (eval returns [0, len(s)] for hi, not
		// hi itself), but low's own upper bound may name the high
		// variable directly — s[lo:hi] under the seeded fact lo ≤ hi.
		if hk := va.intKeyOf(v.High); hk != "" && lo.hi != nil {
			ordOK = va.proveNonNeg(env, linSub(linVar(hk), lo.hi), proveDepth)
		}
		if !ordOK {
			if lk := va.intKeyOf(v.Low); lk != "" && hi.lo != nil {
				ordOK = va.proveNonNeg(env, linSub(hi.lo, linVar(lk)), proveDepth)
			}
		}
	}
	if v.Low == nil {
		ordOK = hiOK || (hi.lo != nil && va.proveNonNeg(env, hi.lo, proveDepth))
	}
	maxOK := true
	if v.Max != nil {
		m := va.eval(env, v.Max)
		maxOK = false
		if m.hi != nil {
			for _, cand := range cands {
				if va.proveNonNeg(env, linSub(cand, m.hi), proveDepth) {
					maxOK = true
					break
				}
			}
		}
	}
	if loOK && hiOK && ordOK && maxOK {
		return
	}
	why := fmt.Sprintf("low ∈ %s, high ∈ %s; %s; low≥0 %s, high≤len %s, low≤high %s",
		lo.String(), hi.String(), lenDesc, proofWord(loOK), proofWord(hiOK), proofWord(ordOK))
	va.emit(v, "boundscheck", why,
		"cannot prove slice bounds of %s", displayExpr(v.X))
}

// checkDivisor flags integer division/modulo by a possibly-zero
// divisor.
func (va *valueAnalysis) checkDivisor(env *valEnv, v *ast.BinaryExpr) {
	t := va.p.typeOf(v)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return
	}
	if k, isConst := constInt(va.p, v.Y); isConst {
		if k != 0 {
			return
		}
		// Constant zero divisor is a compile error; unreachable here.
	}
	y := va.eval(env, v.Y)
	// divisor ≥ 1 or divisor ≤ −1, via the substitution prover.
	if y.lo != nil && va.proveNonNeg(env, linAddK(y.lo, -1), proveDepth) {
		return
	}
	if y.hi != nil && va.proveNonNeg(env, linNeg(linAddK(y.hi, 1)), proveDepth) {
		return
	}
	why := fmt.Sprintf("divisor %s ∈ %s; cannot exclude 0", displayExpr(v.Y), y.String())
	va.emit(v, "boundscheck", why,
		"cannot prove divisor %s non-zero", displayExpr(v.Y))
}
