package lint

// ssa.go layers an SSA-lite def-use form over the PR-4 CFGs: every
// assignment-like event becomes a numbered definition, reaching
// definitions are solved with dataflow.go's generic worklist engine,
// φ-nodes are reported at join blocks where more than one definition of
// a variable arrives, and every identifier use is chained to the set of
// definitions that may reach it.
//
// "Lite" means two deliberate departures from textbook SSA, both
// conservative for the analyses built on top (interval.go, nilness.go):
//
//   - no renaming: a use is chained to the full reaching-definition
//     set rather than being rewritten through φs, so φ-nodes exist for
//     structural consumers (tests, -why explanations) but are not
//     threaded into the chains;
//   - φ placement is reaching-def-based, not dominance-frontier-based:
//     a φ appears at any join where ≥2 definitions of the same variable
//     meet, which over-approximates pruned SSA (extra φs never lose
//     soundness for may-analyses).
//
// The same pass computes the reverse postorder and the loop heads
// (targets of retreating edges under RPO numbering) — the widening
// points of the interval analysis.

import (
	"go/ast"
	"go/types"
	"sort"
)

// ssaDef is one definition event of a variable: a parameter/receiver/
// named-result/captured-variable boundary definition (node == nil) or
// an assignment, declaration, range binding, or inc/dec in the body.
type ssaDef struct {
	id   int
	obj  types.Object
	node ast.Node // defining statement; nil for boundary definitions
}

// ssaPhi is a pseudo-definition at a join block: the listed incoming
// definitions of obj merge here.
type ssaPhi struct {
	obj  types.Object
	defs []*ssaDef // ascending id
}

// ssaFunc is the def-use form of one function body.
type ssaFunc struct {
	g      *CFG
	defs   []*ssaDef
	byObj  map[types.Object][]*ssaDef
	phis   map[*Block][]*ssaPhi
	uses   map[*ast.Ident][]*ssaDef // reaching defs at each identifier use
	preds  map[*Block][]*Block
	rpo    []*Block
	rpoIdx map[*Block]int
	heads  map[*Block]bool // loop heads = widening points
}

// defBits is a bitset over definition ids.
type defBits []uint64

func (b defBits) has(i int) bool { return i/64 < len(b) && b[i/64]&(1<<(i%64)) != 0 }

func (b *defBits) set(i int) {
	for i/64 >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[i/64] |= 1 << (i % 64)
}

func (b defBits) clone() defBits {
	c := make(defBits, len(b))
	copy(c, b)
	return c
}

// or unions src into b, reporting change.
func (b *defBits) or(src defBits) bool {
	changed := false
	for i, w := range src {
		for i >= len(*b) {
			*b = append(*b, 0)
		}
		if (*b)[i]|w != (*b)[i] {
			(*b)[i] |= w
			changed = true
		}
	}
	return changed
}

func (b defBits) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (b defBits) elems() []int {
	var out []int
	for i, w := range b {
		for j := 0; j < 64; j++ {
			if w&(1<<j) != 0 {
				out = append(out, i*64+j)
			}
		}
	}
	return out
}

// reachMap is the reaching-definitions fact: for each variable, the set
// of definitions that may be current.
type reachMap map[types.Object]defBits

func cloneReach(m reachMap) reachMap {
	c := make(reachMap, len(m))
	for k, v := range m {
		c[k] = v.clone()
	}
	return c
}

func joinReach(dst, src reachMap) bool {
	changed := false
	for k, v := range src {
		if d, ok := dst[k]; ok {
			if d.or(v) {
				dst[k] = d
				changed = true
			}
		} else {
			dst[k] = v.clone()
			changed = true
		}
	}
	return changed
}

// newSSA builds the def-use form for one function scope.
func newSSA(p *Package, fs funcScope) *ssaFunc {
	s := &ssaFunc{
		byObj:  map[types.Object][]*ssaDef{},
		phis:   map[*Block][]*ssaPhi{},
		uses:   map[*ast.Ident][]*ssaDef{},
		preds:  map[*Block][]*Block{},
		rpoIdx: map[*Block]int{},
		heads:  map[*Block]bool{},
	}
	s.g = buildCFG(fs.body, p.terminatesStmt)

	// Boundary definitions: receiver, parameters, named results.
	addBoundary := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, nm := range f.Names {
				if obj := p.Info.Defs[nm]; obj != nil {
					s.addDef(obj, nil)
				}
			}
		}
	}
	var ftype *ast.FuncType
	if fs.decl != nil {
		addBoundary(fs.decl.Recv)
		ftype = fs.decl.Type
	} else {
		ftype = fs.lit.Type
	}
	addBoundary(ftype.Params)
	addBoundary(ftype.Results)

	// Body definitions, in block/node/AST order.
	nodeDefs := map[ast.Node][]*ssaDef{}
	for _, blk := range s.g.Blocks {
		for _, node := range blk.Nodes {
			for _, ev := range defEvents(p, node) {
				nodeDefs[node] = append(nodeDefs[node], s.addDef(ev, node))
			}
		}
	}
	// Captured variables (and any other var used without a body def)
	// get boundary definitions so every use resolves.
	for _, blk := range s.g.Blocks {
		for _, node := range blk.Nodes {
			inspectShallow(node, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := useVar(p, id); obj != nil && len(s.byObj[obj]) == 0 {
						s.addDef(obj, nil)
					}
				}
				return true
			})
		}
	}

	// Reaching definitions: boundary defs reach entry.
	boundary := reachMap{}
	for obj, defs := range s.byObj {
		for _, d := range defs {
			if d.node == nil {
				bits := boundary[obj]
				bits.set(d.id)
				boundary[obj] = bits
			}
		}
	}
	transfer := func(blk *Block, in reachMap) reachMap {
		out := cloneReach(in)
		for _, node := range blk.Nodes {
			for _, d := range nodeDefs[node] {
				bits := defBits{}
				bits.set(d.id)
				out[d.obj] = bits // strong update
			}
		}
		return out
	}
	ins := solveForward(s.g, boundary, func() reachMap { return reachMap{} },
		cloneReach, joinReach, transfer)

	// Predecessors, φ placement, and use→def chains from the fixpoint.
	for _, blk := range s.g.Blocks {
		for _, succ := range blk.Succs {
			s.preds[succ] = append(s.preds[succ], blk)
		}
	}
	for _, blk := range s.g.Blocks {
		if len(s.preds[blk]) >= 2 {
			var phis []*ssaPhi
			for obj, bits := range ins[blk] {
				if bits.count() >= 2 {
					phi := &ssaPhi{obj: obj}
					for _, id := range bits.elems() {
						phi.defs = append(phi.defs, s.defs[id])
					}
					phis = append(phis, phi)
				}
			}
			sort.Slice(phis, func(i, j int) bool { return phis[i].defs[0].id < phis[j].defs[0].id })
			if len(phis) > 0 {
				s.phis[blk] = phis
			}
		}
		cur := cloneReach(ins[blk])
		for _, node := range blk.Nodes {
			inspectShallow(node, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := useVar(p, id); obj != nil {
						if bits, ok := cur[obj]; ok {
							for _, di := range bits.elems() {
								s.uses[id] = append(s.uses[id], s.defs[di])
							}
						}
					}
				}
				return true
			})
			for _, d := range nodeDefs[node] {
				bits := defBits{}
				bits.set(d.id)
				cur[d.obj] = bits
			}
		}
	}

	s.orderBlocks()
	return s
}

func (s *ssaFunc) addDef(obj types.Object, node ast.Node) *ssaDef {
	d := &ssaDef{id: len(s.defs), obj: obj, node: node}
	s.defs = append(s.defs, d)
	s.byObj[obj] = append(s.byObj[obj], d)
	return d
}

// defEvents lists the variables defined by one CFG node, in AST order.
// Only plain identifier targets count: an element or field store mutates
// existing memory, it does not redefine the variable.
func defEvents(p *Package, node ast.Node) []types.Object {
	var out []types.Object
	add := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(p, id); obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					out = append(out, obj)
				}
			}
		}
	}
	switch v := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			add(lhs)
		}
	case *ast.IncDecStmt:
		add(v.X)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, nm := range vs.Names {
						add(nm)
					}
				}
			}
		}
	case *ast.RangeStmt:
		add(v.Key)
		add(v.Value)
	}
	return out
}

// useVar resolves id to a variable object when id is a use (not a
// definition site, not a field selector component, not a package name).
func useVar(p *Package, id *ast.Ident) types.Object {
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// orderBlocks computes the reverse postorder from entry and marks loop
// heads: the target v of any edge u→v with rpo(v) ≤ rpo(u) is a
// widening point. Unreachable blocks are appended in index order so
// every block has a deterministic position.
func (s *ssaFunc) orderBlocks() {
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, succ := range b.Succs {
			if !seen[succ] {
				dfs(succ)
			}
		}
		post = append(post, b)
	}
	if s.g.Entry != nil {
		dfs(s.g.Entry)
	}
	for i := len(post) - 1; i >= 0; i-- {
		s.rpoIdx[post[i]] = len(s.rpo)
		s.rpo = append(s.rpo, post[i])
	}
	for _, blk := range s.g.Blocks {
		if _, ok := s.rpoIdx[blk]; !ok {
			s.rpoIdx[blk] = len(s.rpo)
			s.rpo = append(s.rpo, blk)
		}
	}
	for _, u := range s.g.Blocks {
		for _, v := range u.Succs {
			if s.rpoIdx[v] <= s.rpoIdx[u] {
				s.heads[v] = true
			}
		}
	}
}
