package lint

// interval.go is the numeric half of the value tier: integer intervals
// whose bounds are symbolic linear expressions over variable values and
// slice/map/string lengths,
//
//	Σ cᵢ·len(xᵢ) + Σ dⱼ·xⱼ + k
//
// rooted at canonical keys (dataflow.go's canonKey). Symbolic bounds are
// what make selection-vector proofs possible at all: `i < len(sel)` has
// no useful constant bound, but the bound len(sel)−1 compares exactly
// against the length of sel. Widening to ±∞ happens at loop heads
// (ssa.go's retreating-edge targets); narrowing happens on branch edges
// (valueflow.go's refineCond), which restores `i ∈ [0, len(sel)−1]`
// inside a widened loop from the loop condition itself.
//
// Comparison is decidable in two cases, both sound:
//
//   - identical symbolic parts: a ≤ b iff the constant deltas compare;
//   - after subtraction every surviving term is a length with a
//     non-negative coefficient and the delta is non-negative
//     (lengths are always ≥ 0).
//
// One level of substitution through the environment (a variable term
// replaced by that variable's own interval bound) is tried before
// giving up; deeper chains widen to unknown.

import (
	"fmt"
	"sort"
	"strings"
)

// term is one symbolic summand of a linear bound.
type term struct {
	key   string // canonical key of the variable
	isLen bool   // the term is len(key), not the value of key
	coeff int64
}

// lin is a symbolic linear expression Σ coeff·term + k. The zero value
// is the constant 0. Terms are sorted by (isLen, key) with no zero
// coefficients, so equal expressions are structurally equal.
type lin struct {
	k     int64
	terms []term
}

func linConst(k int64) *lin  { return &lin{k: k} }
func linVar(key string) *lin { return &lin{terms: []term{{key: key, coeff: 1}}} }
func linLen(key string) *lin { return &lin{terms: []term{{key: key, isLen: true, coeff: 1}}} }

func (l *lin) isConst() (int64, bool) {
	if len(l.terms) == 0 {
		return l.k, true
	}
	return 0, false
}

// mentions reports whether any term refers to key (as value or length).
func (l *lin) mentions(key string) bool {
	for _, t := range l.terms {
		if t.key == key {
			return true
		}
	}
	return false
}

func (l *lin) norm() *lin {
	sort.Slice(l.terms, func(i, j int) bool {
		a, b := l.terms[i], l.terms[j]
		if a.isLen != b.isLen {
			return !a.isLen && b.isLen
		}
		return a.key < b.key
	})
	out := l.terms[:0]
	for _, t := range l.terms {
		if n := len(out); n > 0 && out[n-1].key == t.key && out[n-1].isLen == t.isLen {
			out[n-1].coeff += t.coeff
		} else {
			out = append(out, t)
		}
	}
	final := out[:0]
	for _, t := range out {
		if t.coeff != 0 {
			final = append(final, t)
		}
	}
	l.terms = final
	return l
}

func linAdd(a, b *lin) *lin {
	if a == nil || b == nil {
		return nil
	}
	out := &lin{k: a.k + b.k}
	out.terms = append(out.terms, a.terms...)
	out.terms = append(out.terms, b.terms...)
	return out.norm()
}

func linNeg(a *lin) *lin {
	if a == nil {
		return nil
	}
	out := &lin{k: -a.k}
	for _, t := range a.terms {
		t.coeff = -t.coeff
		out.terms = append(out.terms, t)
	}
	return out.norm()
}

func linSub(a, b *lin) *lin { return linAdd(a, linNeg(b)) }

func linAddK(a *lin, k int64) *lin {
	if a == nil {
		return nil
	}
	out := &lin{k: a.k + k}
	out.terms = append(out.terms, a.terms...)
	return out
}

func linScale(a *lin, c int64) *lin {
	if a == nil {
		return nil
	}
	out := &lin{k: a.k * c}
	for _, t := range a.terms {
		t.coeff *= c
		out.terms = append(out.terms, t)
	}
	return out.norm()
}

func linEq(a, b *lin) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.k != b.k || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// linNonNeg reports whether the expression is provably ≥ 0: every term
// is a length with a non-negative coefficient and the delta is ≥ 0.
func linNonNeg(l *lin) bool {
	if l == nil || l.k < 0 {
		return false
	}
	for _, t := range l.terms {
		if !t.isLen || t.coeff < 0 {
			return false
		}
	}
	return true
}

// linLE reports whether a ≤ b is provable: b − a ≥ 0.
func linLE(a, b *lin) bool {
	if a == nil || b == nil {
		return false
	}
	return linNonNeg(linSub(b, a))
}

// linNonNegIn is linNonNeg with length facts: a failing direct proof
// retries by substituting one len-term with its interval bound from ln
// (sign-aware: positive coefficients take the lower bound, negative
// ones the upper — both under-approximate the expression).
func linNonNegIn(l *lin, ln map[string]ival, depth int) bool {
	if l == nil {
		return false
	}
	if linNonNeg(l) {
		return true
	}
	if depth == 0 || ln == nil {
		return false
	}
	for i, t := range l.terms {
		if !t.isLen {
			continue
		}
		lv := ln[t.key]
		var sub *lin
		if t.coeff > 0 {
			sub = lv.lo
			if sub == nil {
				sub = linConst(0) // lengths are never negative
			}
		} else {
			sub = lv.hi
		}
		if sub == nil || sub.mentions(t.key) {
			continue
		}
		rest := &lin{k: l.k}
		for j, o := range l.terms {
			if j != i {
				rest.terms = append(rest.terms, o)
			}
		}
		if linNonNegIn(linAdd(rest.norm(), linScale(sub, t.coeff)), ln, depth-1) {
			return true
		}
	}
	return false
}

// linLEIn is linLE consulting length facts, used by the env-aware
// interval hull: joining [1, len(s)−1] with [0, 0] keeps the symbolic
// upper bound exactly when ln proves len(s) ≥ 1.
func linLEIn(a, b *lin, ln map[string]ival) bool {
	if a == nil || b == nil {
		return false
	}
	return linNonNegIn(linSub(b, a), ln, 2)
}

func (l *lin) String() string {
	if l == nil {
		return "∞"
	}
	var sb strings.Builder
	for i, t := range l.terms {
		c := t.coeff
		switch {
		case i == 0 && c < 0:
			sb.WriteByte('-')
			c = -c
		case i > 0 && c < 0:
			sb.WriteByte('-')
			c = -c
		case i > 0:
			sb.WriteByte('+')
		}
		if c != 1 {
			fmt.Fprintf(&sb, "%d*", c)
		}
		name := keyDisplay(t.key)
		if t.isLen {
			fmt.Fprintf(&sb, "len(%s)", name)
		} else {
			sb.WriteString(name)
		}
	}
	if len(l.terms) == 0 {
		fmt.Fprintf(&sb, "%d", l.k)
	} else if l.k > 0 {
		fmt.Fprintf(&sb, "+%d", l.k)
	} else if l.k < 0 {
		fmt.Fprintf(&sb, "%d", l.k)
	}
	return sb.String()
}

// ival is an integer interval with symbolic bounds; a nil bound is
// −∞ (lo) or +∞ (hi). The zero value is ⊤ (unknown).
type ival struct {
	lo, hi *lin
}

func ivalTop() ival            { return ival{} }
func ivalConst(k int64) ival   { return ival{lo: linConst(k), hi: linConst(k)} }
func ivalExact(l *lin) ival    { return ival{lo: l, hi: l} }
func (v ival) isTop() bool     { return v.lo == nil && v.hi == nil }
func (v ival) String() string {
	lo, hi := "-∞", "+∞"
	if v.lo != nil {
		lo = v.lo.String()
	}
	if v.hi != nil {
		hi = v.hi.String()
	}
	return "[" + lo + ", " + hi + "]"
}

// ivalJoin is the interval hull. An incomparable pair of symbolic
// bounds joins to the unbounded side — precision lost, soundness kept.
func ivalJoin(a, b ival) ival { return ivalJoinIn(a, b, nil) }

// ivalJoinIn is the hull with length facts that hold on both joined
// paths (the caller passes the already-joined length map): they decide
// otherwise-incomparable symbolic-vs-constant bound pairs.
func ivalJoinIn(a, b ival, ln map[string]ival) ival {
	out := ival{}
	switch {
	case a.lo == nil || b.lo == nil:
	case linEq(a.lo, b.lo):
		out.lo = a.lo
	case linLEIn(a.lo, b.lo, ln):
		out.lo = a.lo
	case linLEIn(b.lo, a.lo, ln):
		out.lo = b.lo
	}
	switch {
	case a.hi == nil || b.hi == nil:
	case linEq(a.hi, b.hi):
		out.hi = a.hi
	case linLEIn(a.hi, b.hi, ln):
		out.hi = b.hi
	case linLEIn(b.hi, a.hi, ln):
		out.hi = a.hi
	}
	return out
}

// ivalWiden keeps a bound only when the joined value did not move past
// the old one. A bound that grows from a constant to a symbolic
// expression climbs to the symbolic bound instead of jumping to ±∞ —
// the first sweep of a nested loop sees constant bounds from the
// not-yet-widened outer induction variable, and the symbolic bound is
// the eventual fixpoint (the i := 1 entry of an insertion sort). Any
// further growth widens to ±∞, so the per-bound chain is
// constant → symbolic → unbounded and termination holds. Applied at
// loop heads.
func ivalWiden(old, joined ival) ival {
	out := joined
	if old.lo != nil && (joined.lo == nil || !linLE(old.lo, joined.lo)) {
		if _, oldConst := old.lo.isConst(); oldConst && joined.lo != nil {
			if _, jc := joined.lo.isConst(); !jc {
				out.lo = joined.lo
			} else {
				out.lo = nil
			}
		} else {
			out.lo = nil
		}
	} else if old.lo != nil {
		out.lo = old.lo
	}
	if old.hi != nil && (joined.hi == nil || !linLE(joined.hi, old.hi)) {
		if _, oldConst := old.hi.isConst(); oldConst && joined.hi != nil {
			if _, jc := joined.hi.isConst(); !jc {
				out.hi = joined.hi
			} else {
				out.hi = nil
			}
		} else {
			out.hi = nil
		}
	} else if old.hi != nil {
		out.hi = old.hi
	}
	return out
}

func ivalEq(a, b ival) bool { return linEq(a.lo, b.lo) && linEq(a.hi, b.hi) }

// ivalAdd/ivalSub/ivalNeg are exact interval arithmetic over symbolic
// bounds; an unbounded side propagates.
func ivalAdd(a, b ival) ival { return ival{lo: linAdd(a.lo, b.lo), hi: linAdd(a.hi, b.hi)} }

func ivalNeg(a ival) ival { return ival{lo: linNeg(a.hi), hi: linNeg(a.lo)} }

func ivalSub(a, b ival) ival { return ivalAdd(a, ivalNeg(b)) }

func ivalAddK(a ival, k int64) ival { return ival{lo: linAddK(a.lo, k), hi: linAddK(a.hi, k)} }

// ivalScale multiplies by a constant (the only multiplication the
// domain supports; variable products widen to ⊤ at the caller).
func ivalScale(a ival, c int64) ival {
	switch {
	case c == 0:
		return ivalConst(0)
	case c > 0:
		return ival{lo: linScale(a.lo, c), hi: linScale(a.hi, c)}
	default:
		n := ivalNeg(a)
		return ival{lo: linScale(n.lo, -c), hi: linScale(n.hi, -c)}
	}
}

// excludesZero reports whether the interval provably excludes 0: the
// divisor obligation of the division/modulo check.
func (v ival) excludesZero() bool {
	if v.lo != nil && linLE(linConst(1), v.lo) {
		return true
	}
	if v.hi != nil && linLE(v.hi, linConst(-1)) {
		return true
	}
	return false
}
