package lint

// dataflow.go is the generic forward dataflow engine over the CFGs of
// cfg.go: a textbook worklist fixpoint, parameterized over the fact
// type. Analyzers supply three operations —
//
//   - bottom: the state of an unreached program point;
//   - join:   merge a predecessor's out-state into a block's in-state,
//     reporting whether anything changed (monotone, so the worklist
//     terminates on finite lattices);
//   - transfer: push a state through one block's nodes, emitting
//     diagnostics as side effects.
//
// solveForward returns the in-state of every block, which the caller
// inspects at the Exit block for at-return obligations (lockcheck's
// "unlocked on all paths", goleak's "joined before return").

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// solveForward runs transfer to fixpoint and returns each block's
// in-state. The first time a successor is reached, its in-state is a
// CLONE of the predecessor's out-state (not a join into bottom — that
// would destroy intersection-joined facts like lockcheck's deferred
// set). Blocks unreachable from entry (dead code) are still processed
// once from bottom so intra-block checks fire there too.
func solveForward[S any](g *CFG, boundary S, bottom func() S, clone func(S) S, join func(dst, src S) bool, transfer func(b *Block, in S) S) map[*Block]S {
	in := map[*Block]S{g.Entry: boundary}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(blk, in[blk])
		for _, s := range blk.Succs {
			changed := false
			if st, ok := in[s]; ok {
				changed = join(st, out)
			} else {
				in[s] = clone(out)
				changed = true
			}
			if changed && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	for _, blk := range g.Blocks {
		if _, ok := in[blk]; !ok {
			in[blk] = bottom()
			transfer(blk, in[blk])
		}
	}
	return in
}

// funcScope is one analyzed function: a declaration or a function
// literal. Literals are separate scopes because they run at an unknown
// time relative to their enclosing function (see cfg.go).
type funcScope struct {
	name string        // "pkg.Func", "method", or "func literal"
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

// funcScopes lists every function body of the file: declarations plus
// all function literals (each exactly once).
func funcScopes(f *ast.File) []funcScope {
	var out []funcScope
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcScope{name: fd.Name.Name, decl: fd, body: fd.Body})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, funcScope{name: "func literal", lit: fl, body: fl.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks n but does not descend into function literals:
// their statements belong to a different funcScope.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != n {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
		}
		return fn(m)
	})
}

// terminatesStmt reports whether a statement never returns: a call to
// the panic builtin, os.Exit, runtime.Goexit, or log.Fatal*. Used by
// the CFG builder for exit edges.
func (p *Package) terminatesStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := p.Info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		obj := p.Info.Uses[fun.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return obj.Name() == "Exit"
		case "runtime":
			return obj.Name() == "Goexit"
		case "log":
			return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "Fatalln"
		}
	}
	return false
}

// canonKey canonicalizes an addressable expression (mu, e.mu, &wg,
// s.inner.mu) to a stable per-function identity string rooted at the
// declaring object, so the same variable reached through the same path
// compares equal. Returns "" for expressions with no stable identity
// (call results, index expressions with computed keys).
func (p *Package) canonKey(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[v]
		if obj == nil {
			obj = p.Info.Defs[v]
		}
		if obj == nil {
			return ""
		}
		return objKey(obj)
	case *ast.SelectorExpr:
		base := p.canonKey(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return p.canonKey(v.X)
		}
	case *ast.StarExpr:
		return p.canonKey(v.X)
	}
	return ""
}

// objKey identifies a types.Object stably within one analysis run.
func objKey(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// displayExpr renders an expression for diagnostics (short form).
func displayExpr(e ast.Expr) string {
	return types.ExprString(e)
}

// keyDisplay strips canonKey's "name@pos" encoding back to the source
// spelling ("wg", "e.mu") for diagnostics.
func keyDisplay(key string) string {
	i := strings.IndexByte(key, '@')
	if i < 0 {
		return key
	}
	if j := strings.IndexByte(key[i:], '.'); j >= 0 {
		return key[:i] + key[i+j:]
	}
	return key[:i]
}
