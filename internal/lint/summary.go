package lint

// summary.go computes the per-function summaries the interprocedural
// analyzers consume, bottom-up over the call graph of callgraph.go:
//
//   - purity: does the function read or write package-level state, and
//     does it mutate memory reachable from its receiver or parameters
//     (distinguishing plain writes from writes that happen while a
//     sync.Mutex is held or go through sync/atomic — the latter are
//     "synchronized" and do not violate sharing contracts);
//   - escape: which parameters may outlive the call — stored to a
//     global, sent on a channel, handed to a goroutine, returned;
//   - taint transfer: can a nondeterministic value (wall clock, rand,
//     environment — the taintdet sources) originate inside the function
//     and flow to a result, and can taint on parameter i reach a
//     result. These bits let taintdet follow nondeterminism through
//     helper calls without inlining anything.
//
// Summaries are computed over the PR-4 CFGs: the mutation/escape pass
// runs a lock-held dataflow over the function's CFG so writes under a
// held mutex classify as synchronized, and the taint pass is the same
// forward may-taint fixpoint taintdet uses, seeded additionally with
// one pseudo-origin per parameter.
//
// The computation is a fixpoint across strongly connected components:
// components come in reverse-topological (callee-first) order, each
// component's members iterate until no summary changes. All facts are
// monotone bits over finite sets, so the iteration terminates (the
// SCC/recursion fixture pins this).
//
// Soundness caveats (documented in DESIGN.md): effects reached only
// through aliases laundered into locals are attributed to the local,
// not the parameter; unknown callees (interface methods, function
// values, unmodeled stdlib) conservatively mutate their pointer-like
// arguments and set CallsUnknown; reflection is not modeled.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Summary is the interprocedural abstract of one function. Parameter
// facts are bitsets over the flattened parameter list (receiver
// excluded — it has its own bits); functions with more than 32
// parameters saturate conservatively (none exist in this module).
type Summary struct {
	ReadsGlobal      bool
	WritesGlobal     bool // plain package-level write
	WritesGlobalSync bool // package-level write under a held lock

	MutatesRecv      bool // plain write through the receiver
	MutatesRecvSync  bool // receiver write under a lock or via sync/atomic
	MutatesParam     uint32
	MutatesParamSync uint32

	EscapesParam uint32 // param may be stored beyond the call's lifetime
	RecvEscapes  bool

	TaintsReturn bool   // a result may derive from a nondeterminism source
	TaintSrc     string // the source description, for diagnostics
	ParamToRet   uint32 // taint on param i may reach a result
	RecvToRet    bool   // taint on the receiver may reach a result
	ParamToSink  uint32 // param i may flow into storage emission (transitively)
	RecvToSink   bool   // receiver state may flow into storage emission

	// Value-tier error facts (computed flow-sensitively by
	// computeErrFacts after the bottom-up fixpoint, callees first).
	ReturnsNilErrOn        uint32 // error result r is nil on every return
	NonNilResultWhenNilErr uint32 // result i is non-nil whenever the trailing error is nil

	CallsUnknown bool // body contains a call the graph cannot resolve
}

// String renders the summary for the -summary debug flag and tests:
// a space-separated list of the set facts, "pure" when none are.
func (s *Summary) String() string {
	var parts []string
	flag := func(cond bool, name string) {
		if cond {
			parts = append(parts, name)
		}
	}
	bits := func(b uint32, name string) {
		if b == 0 {
			return
		}
		var idx []string
		for i := 0; i < 32; i++ {
			if b&(1<<i) != 0 {
				idx = append(idx, strconv.Itoa(i))
			}
		}
		parts = append(parts, name+"="+strings.Join(idx, ","))
	}
	flag(s.ReadsGlobal, "reads-global")
	flag(s.WritesGlobal, "writes-global")
	flag(s.WritesGlobalSync, "writes-global-sync")
	flag(s.MutatesRecv, "mutates-recv")
	flag(s.MutatesRecvSync, "mutates-recv-sync")
	bits(s.MutatesParam, "mutates-param")
	bits(s.MutatesParamSync, "mutates-param-sync")
	bits(s.EscapesParam, "escapes-param")
	flag(s.RecvEscapes, "recv-escapes")
	flag(s.TaintsReturn, "taints-return("+s.TaintSrc+")")
	bits(s.ParamToRet, "param-to-ret")
	flag(s.RecvToRet, "recv-to-ret")
	bits(s.ParamToSink, "param-to-sink")
	flag(s.RecvToSink, "recv-to-sink")
	bits(s.ReturnsNilErrOn, "nil-err")
	bits(s.NonNilResultWhenNilErr, "nonnil-on-ok")
	flag(s.CallsUnknown, "calls-unknown")
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, " ")
}

// summaryOf returns n's current summary, computing nothing: during the
// SCC fixpoint partial summaries under-approximate and iteration closes
// the gap. A nil node yields the unknown-callee summary.
func (pr *Program) summaryOf(n *FuncNode) *Summary {
	if n == nil {
		return nil
	}
	if n.sum == nil {
		n.sum = &Summary{}
	}
	return n.sum
}

// Summary exposes a node's computed summary (read-only; -summary flag
// and tests).
func (n *FuncNode) Summary() *Summary { return n.sum }

// computeSummaries runs the bottom-up fixpoint. Packages whose content
// hash matches a store entry restore their summaries instead of
// computing them (see summarycache.go).
func (pr *Program) computeSummaries(store *SummaryStore) {
	cached := map[*Package]bool{}
	if store != nil {
		for _, p := range pr.Pkgs {
			if store.restore(pr, p) {
				cached[p] = true
			}
		}
	}
	for _, comp := range pr.sccs() {
		if cached[comp[0].Pkg] {
			continue // import cycles are impossible, so an SCC never spans packages
		}
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				next := pr.computeSummary(n)
				// computeSummary does not produce the value-tier error
				// facts; preserve them across fixpoint iterations (they
				// are filled by computeErrFacts below, and restored
				// entries never reach this loop).
				if n.sum != nil {
					next.ReturnsNilErrOn = n.sum.ReturnsNilErrOn
					next.NonNilResultWhenNilErr = n.sum.NonNilResultWhenNilErr
				}
				if n.sum == nil || *n.sum != *next {
					n.sum = next
					changed = true
				}
			}
		}
	}
	// Error facts need the finished summaries (the value engine consults
	// mutation bits) and run callees-first so `return f()` forwards.
	pr.computeErrFacts(cached)
	if store != nil {
		store.update(pr)
	}
}

// paramInfo maps a function's receiver and parameter objects to their
// summary indices.
type paramInfo struct {
	recv   types.Object
	params map[types.Object]int
}

func (p *Package) paramsOf(fd *ast.FuncDecl) paramInfo {
	pi := paramInfo{params: map[types.Object]int{}}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, nm := range f.Names {
				if obj := p.Info.Defs[nm]; obj != nil {
					pi.recv = obj
				}
			}
		}
	}
	i := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			i++ // unnamed parameter still occupies an index
			continue
		}
		for _, nm := range f.Names {
			if obj := p.Info.Defs[nm]; obj != nil && i < 32 {
				pi.params[obj] = i
			}
			i++
		}
	}
	return pi
}

// computeSummary recomputes one function's summary from its body and
// the current summaries of its callees.
func (pr *Program) computeSummary(n *FuncNode) *Summary {
	sum := &Summary{CallsUnknown: n.CallsUnknown}
	p := n.Pkg
	pi := p.paramsOf(n.Decl)

	sw := &sumWalk{pr: pr, p: p, pi: pi, sum: sum}
	// Mutation/escape pass: CFG + lock-held dataflow over the declared
	// body; literal bodies are charged to the creator with no lock held
	// (a closure may run after the lock is released).
	g := buildCFG(n.Decl.Body, p.terminatesStmt)
	solveForward(g, lockSet{}, newLockSet, cloneLockSet, joinLockSets,
		func(blk *Block, in lockSet) lockSet {
			held := cloneLockSet(in)
			for _, node := range blk.Nodes {
				p.lockEffects(node, held)
				sw.effectsNode(node, len(held) > 0)
			}
			return held
		})
	for _, lit := range nestedLits(n.Decl.Body) {
		for _, s := range lit.Body.List {
			sw.effectsNode(s, false)
		}
	}

	// Taint-transfer pass (own CFG walk; see sumTaintFunc).
	pr.sumTaintFunc(n, pi, sum)
	return sum
}

// nestedLits collects every function literal under root, each once.
func nestedLits(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(root, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}

// lockSet is the set of canonical mutex keys provably write-locked at a
// program point. Join is intersection: a lock counts only when held on
// every path. Read locks (RLock) never enter the set — they do not
// license writes.
type lockSet map[string]bool

func newLockSet() lockSet { return lockSet{} }

func cloneLockSet(s lockSet) lockSet {
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func joinLockSets(dst, src lockSet) bool {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

// lockEffects applies n's Lock/Unlock calls to the held set. Deferred
// unlocks are skipped: the lock stays held for the rest of the body,
// which is exactly what the deferral means.
func (p *Package) lockEffects(n ast.Node, held lockSet) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	inspectShallow(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !p.isMutexMethod(sel) {
			return true
		}
		key := p.canonKey(sel.X)
		if key == "" {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			held[key] = true
		case "Unlock":
			delete(held, key)
		}
		return true
	})
}

// isMutexMethod reports whether sel names a method of sync.Mutex or
// sync.RWMutex.
func (p *Package) isMutexMethod(sel *ast.SelectorExpr) bool {
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil {
		return false
	}
	named := namedOf(s.Recv())
	return named != nil && (named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// sumWalk accumulates mutation and escape facts into sum.
type sumWalk struct {
	pr  *Program
	p   *Package
	pi  paramInfo
	sum *Summary
}

// effectsNode records the mutation/escape effects of one CFG node.
// held reports whether a write lock is provably held here.
func (sw *sumWalk) effectsNode(node ast.Node, held bool) {
	inspectShallow(node, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			global := false
			for _, lhs := range v.Lhs {
				sw.recordWrite(lhs, held)
				if obj := sw.exprRootObj(lhs); obj != nil && sw.isGlobalVar(obj) {
					global = true
				}
			}
			if global {
				for _, rhs := range v.Rhs {
					sw.recordEscapes(rhs)
				}
			}
		case *ast.IncDecStmt:
			sw.recordWrite(v.X, held)
		case *ast.SendStmt:
			sw.recordEscapes(v.Value)
		case *ast.GoStmt:
			sw.recordEscapes(v.Call)
			sw.applyCall(v.Call, held)
			return true
		case *ast.DeferStmt:
			sw.applyCall(v.Call, held)
			return true
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				sw.recordEscapes(res)
			}
		case *ast.CallExpr:
			sw.applyCall(v, held)
		case *ast.Ident:
			if obj := sw.p.Info.Uses[v]; obj != nil && sw.isGlobalVar(obj) {
				sw.sum.ReadsGlobal = true
			}
		}
		return true
	})
}

// recordWrite classifies one store destination.
func (sw *sumWalk) recordWrite(lhs ast.Expr, held bool) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := sw.p.Info.Uses[root]
	if obj == nil {
		obj = sw.p.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	if sw.isGlobalVar(obj) {
		if held {
			sw.sum.WritesGlobalSync = true
		} else {
			sw.sum.WritesGlobal = true
		}
		return
	}
	// A bare rebind of a local or parameter is frame-local; only writes
	// whose access path passes through a pointer, slice or map reach
	// memory the caller can observe.
	if unparen(lhs) == root || !sw.writeEscapesFrame(lhs) {
		return
	}
	sw.markMutated(obj, held)
}

// markMutated sets the mutation bit for obj when it is the receiver or
// a parameter.
func (sw *sumWalk) markMutated(obj types.Object, held bool) {
	if obj == sw.pi.recv && obj != nil {
		if held {
			sw.sum.MutatesRecvSync = true
		} else {
			sw.sum.MutatesRecv = true
		}
		return
	}
	if i, ok := sw.pi.params[obj]; ok {
		if held {
			sw.sum.MutatesParamSync |= 1 << i
		} else {
			sw.sum.MutatesParam |= 1 << i
		}
	}
}

// writeEscapesFrame reports whether the access path of lhs passes
// through a pointer dereference, slice element or map element — i.e.
// whether the store lands in memory that may be shared with the caller
// rather than in the local frame copy.
func (sw *sumWalk) writeEscapesFrame(lhs ast.Expr) bool {
	for {
		switch v := unparen(lhs).(type) {
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			if tv, ok := sw.p.Info.Types[v.X]; ok && tv.Type != nil {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return true
				}
			}
			lhs = v.X
		case *ast.IndexExpr:
			if tv, ok := sw.p.Info.Types[v.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					return true
				}
			}
			lhs = v.X
		default:
			return false
		}
	}
}

// isGlobalVar reports whether obj is a package-level variable (of any
// package in view).
func (sw *sumWalk) isGlobalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// globalRoot reports whether obj is a global (nil-safe).
func (sw *sumWalk) globalRoot(obj types.Object) bool {
	return obj != nil && sw.isGlobalVar(obj)
}

// recordEscapes marks every receiver/parameter mentioned in e as
// escaping.
func (sw *sumWalk) recordEscapes(e ast.Node) {
	if e == nil {
		return
	}
	inspectShallow(e, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := sw.p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if obj == sw.pi.recv {
			sw.sum.RecvEscapes = true
		} else if i, ok := sw.pi.params[obj]; ok {
			sw.sum.EscapesParam |= 1 << i
		}
		return true
	})
}

// applyCall folds one call's effects into the summary: a resolved
// callee contributes its own summary (substituting arguments for
// parameters), an external call contributes its modeled effect or the
// conservative default.
func (sw *sumWalk) applyCall(call *ast.CallExpr, held bool) {
	sum, p := sw.sum, sw.p
	if callee := sw.pr.calleeNode(p, call); callee != nil {
		cs := sw.pr.summaryOf(callee)
		if cs.ReadsGlobal {
			sum.ReadsGlobal = true
		}
		if cs.WritesGlobal {
			if held {
				sum.WritesGlobalSync = true
			} else {
				sum.WritesGlobal = true
			}
		}
		if cs.WritesGlobalSync {
			sum.WritesGlobalSync = true
		}
		if cs.CallsUnknown {
			sum.CallsUnknown = true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.Info.Selections[sel] != nil {
			if cs.MutatesRecv || cs.MutatesRecvSync {
				if obj := sw.exprRootObj(sel.X); obj != nil {
					sw.markMutated(obj, held || !cs.MutatesRecv)
				}
			}
			if cs.RecvEscapes {
				sw.recordEscapes(sel.X)
			}
		}
		nparams := calleeParamCount(callee)
		for i, arg := range call.Args {
			j := i
			if nparams > 0 && j >= nparams {
				j = nparams - 1 // variadic tail
			}
			if j >= 32 {
				continue
			}
			if cs.MutatesParam&(1<<j) != 0 || cs.MutatesParamSync&(1<<j) != 0 {
				if obj := sw.exprRootObj(arg); obj != nil {
					sw.markMutated(obj, held || cs.MutatesParam&(1<<j) == 0)
				}
			}
			if cs.EscapesParam&(1<<j) != 0 {
				sw.recordEscapes(arg)
			}
		}
		return
	}
	sw.applyExternalCall(call, held)
}

// calleeParamCount returns the declared parameter count of a node's
// signature (receiver excluded).
func calleeParamCount(n *FuncNode) int {
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok {
		return 0
	}
	return sig.Params().Len()
}

// exprRootObj resolves an argument/receiver expression to its root
// object when the value is pointer-like from the caller's perspective
// (so mutating it is observable), nil otherwise.
func (sw *sumWalk) exprRootObj(e ast.Expr) types.Object {
	root := rootIdent(e)
	if root == nil {
		return nil
	}
	obj := sw.p.Info.Uses[root]
	if obj == nil {
		obj = sw.p.Info.Defs[root]
	}
	return obj
}

// applyExternalCall models calls the graph cannot resolve: builtins,
// conversions, the understood corners of the standard library, and the
// conservative default for everything else.
func (sw *sumWalk) applyExternalCall(call *ast.CallExpr, held bool) {
	p, sum := sw.p, sw.sum
	eff := p.externalCallEffect(call)
	if eff.known {
		if eff.mutRecv {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := sw.exprRootObj(sel.X); obj != nil {
					sw.markMutated(obj, held || eff.syncRecv)
				}
			}
		}
		for _, i := range eff.mutArgs {
			if i < len(call.Args) {
				if obj := sw.exprRootObj(call.Args[i]); obj != nil {
					sw.markMutated(obj, held)
				}
			}
		}
		return
	}
	// Conservative default: an unknown callee may mutate and retain any
	// pointer-like argument (and receiver).
	sum.CallsUnknown = true
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.Info.Selections[sel] != nil {
		if obj := sw.exprRootObj(sel.X); obj != nil && pointerLike(p.typeOf(sel.X)) {
			sw.markMutated(obj, held)
			sw.recordEscapes(sel.X)
		}
	}
	for _, arg := range call.Args {
		if pointerLike(p.typeOf(arg)) {
			if obj := sw.exprRootObj(arg); obj != nil {
				sw.markMutated(obj, held)
			}
			sw.recordEscapes(arg)
		}
	}
}

// typeOf returns the expression's type, nil when untyped. Identifiers
// fall back to their object: the lhs of a := define has no Types entry
// (it is a definition, not an evaluated expression).
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objOf(p, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// pointerLike reports whether mutating a value of type t is observable
// through other references to it.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// extEffect is the modeled behaviour of a call into code outside the
// graph.
type extEffect struct {
	known    bool  // modeled; do not degrade to the conservative default
	mutRecv  bool  // the receiver is mutated
	syncRecv bool  // ... but through internal synchronization
	mutArgs  []int // indices of mutated arguments
}

// roFuncPkgs are standard-library packages whose top-level functions
// neither mutate nor retain their arguments in any way that matters to
// the summary lattice (sort is handled separately: half its API
// mutates).
var roFuncPkgs = map[string]bool{
	"strings": true, "strconv": true, "unicode": true, "unicode/utf8": true,
	"math": true, "math/bits": true, "errors": true, "path": true,
	"path/filepath": true, "time": true, "context": true, "slices": true,
	"os": true, // os functions read process state; taintdet owns their determinism
}

// externalCallEffect classifies a call whose callee is outside the
// graph. known=false means "no model — assume the worst".
//
// Builtins: copy/clear/delete write their first argument. append is
// modeled as effect-free — it writes only at indices ≥ the old length,
// which no other alias can read (the re-sliced-down alias is the known
// caveat, documented in DESIGN.md).
func (p *Package) externalCallEffect(call *ast.CallExpr) extEffect {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy", "clear", "delete":
				return extEffect{known: true, mutArgs: []int{0}}
			}
			return extEffect{known: true}
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return extEffect{known: true} // type conversion
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return extEffect{}
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return extEffect{}
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	if s := p.Info.Selections[sel]; s != nil {
		// Method call: classify by receiver type.
		named := namedOf(s.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return extEffect{}
		}
		rpkg, rname := named.Obj().Pkg().Path(), named.Obj().Name()
		switch rpkg {
		case "sync", "sync/atomic":
			// The synchronization primitives themselves: mutation is the
			// point, and it is safe from any goroutine.
			return extEffect{known: true, mutRecv: true, syncRecv: true}
		case "time", "regexp":
			return extEffect{known: true} // value types / internally synchronized
		case "strings", "bytes":
			if rname == "Builder" || rname == "Buffer" || rname == "Reader" {
				return extEffect{known: true, mutRecv: true}
			}
		case "context":
			return extEffect{known: true}
		}
		return extEffect{}
	}
	// Package-level function call.
	if roFuncPkgs[pkg] {
		return extEffect{known: true}
	}
	switch pkg {
	case "fmt":
		switch {
		case name == "Errorf", name == "Sprint", name == "Sprintf", name == "Sprintln":
			return extEffect{known: true}
		case name == "Fprint" || name == "Fprintf" || name == "Fprintln":
			return extEffect{known: true, mutArgs: []int{0}}
		case name == "Print" || name == "Printf" || name == "Println":
			return extEffect{known: true} // process streams; strayio's concern
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return extEffect{known: true, mutArgs: []int{0}}
		case "IsSorted", "SliceIsSorted", "StringsAreSorted", "IntsAreSorted",
			"Search", "SearchInts", "SearchStrings", "SearchFloat64s":
			return extEffect{known: true}
		}
	}
	return extEffect{}
}

// ---- taint-transfer summary ----

// taintVal is the merged taint of one expression or object: an optional
// concrete source description plus the set of parameters whose incoming
// taint reaches it. recv tracks receiver-derived taint.
type taintVal struct {
	src    string
	pos    token.Pos
	params uint32
	recv   bool
}

func (v taintVal) zero() bool { return v.src == "" && v.params == 0 && !v.recv }

func mergeTaintVal(a, b taintVal) taintVal {
	out := a
	if out.src == "" {
		out.src, out.pos = b.src, b.pos
	}
	out.params |= b.params
	out.recv = out.recv || b.recv
	return out
}

type sumTaintFacts map[types.Object]taintVal

func cloneSumTaint(s sumTaintFacts) sumTaintFacts {
	c := make(sumTaintFacts, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func joinSumTaint(dst, src sumTaintFacts) bool {
	changed := false
	for k, v := range src {
		m := mergeTaintVal(dst[k], v)
		if m != dst[k] {
			dst[k] = m
			changed = true
		}
	}
	return changed
}

// sumTaintFunc runs the taint-transfer pass for one declaration,
// seeding every parameter (and the receiver) with its own pseudo-origin
// and recording which origins reach a return.
func (pr *Program) sumTaintFunc(n *FuncNode, pi paramInfo, sum *Summary) {
	p := n.Pkg
	boundary := sumTaintFacts{}
	if pi.recv != nil {
		boundary[pi.recv] = taintVal{recv: true}
	}
	for obj, i := range pi.params {
		boundary[obj] = taintVal{params: 1 << i}
	}
	st := &sumTaintWalk{pr: pr, p: p, sum: sum}
	g := buildCFG(n.Decl.Body, p.terminatesStmt)
	transfer := func(blk *Block, in sumTaintFacts) sumTaintFacts {
		facts := cloneSumTaint(in)
		for _, node := range blk.Nodes {
			st.transferNode(node, facts)
		}
		return facts
	}
	solveForward(g, boundary, func() sumTaintFacts { return sumTaintFacts{} },
		cloneSumTaint, joinSumTaint, transfer)
	// Literal bodies: a closure constructed here may run inside this
	// call (passed to an in-function iterator) and return through a
	// captured variable; the flow-insensitive approximation is to run
	// the literal statements against an open fact set once. Returns
	// inside literals return from the literal, not from n, so they are
	// not recorded — only their assignments to captured state propagate
	// via the solve above being re-run... (kept simple: literals are
	// walked for assignments only).
	for _, lit := range nestedLits(n.Decl.Body) {
		facts := cloneSumTaint(boundary)
		for i := 0; i < 2; i++ { // two passes: capture-write then re-read
			for _, s := range lit.Body.List {
				st.transferNodeNoReturn(s, facts)
			}
		}
	}
}

// sumTaintWalk interprets nodes for the taint-transfer summary.
type sumTaintWalk struct {
	pr  *Program
	p   *Package
	sum *Summary
}

func (st *sumTaintWalk) transferNode(node ast.Node, facts sumTaintFacts) {
	if ret, ok := node.(*ast.ReturnStmt); ok {
		// The sink pass must still see calls inside the return expression:
		// `return storage.Int(v)` is the canonical emit shape.
		st.sinkPass(ret, facts)
		for _, res := range ret.Results {
			// obs instrument handles circulate freely through deterministic
			// code: recording into them is sanctioned, and the
			// nondeterministic read-backs (End/Value/…) are their own taint
			// sources. Returning the handle itself is not a taint flow.
			if obsHandleType(st.p.typeOf(res)) {
				continue
			}
			v := st.exprVal(res, facts)
			if v.src != "" && !st.sum.TaintsReturn {
				st.sum.TaintsReturn = true
				st.sum.TaintSrc = v.src
			}
			st.sum.ParamToRet |= v.params
			st.sum.RecvToRet = st.sum.RecvToRet || v.recv
		}
		return
	}
	st.transferNodeNoReturn(node, facts)
}

func (st *sumTaintWalk) transferNodeNoReturn(node ast.Node, facts sumTaintFacts) {
	st.sinkPass(node, facts)
	switch v := node.(type) {
	case *ast.AssignStmt:
		st.assign(v, facts)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if rhs == nil {
						continue
					}
					if val := st.exprVal(rhs, facts); !val.zero() {
						if obj := st.p.Info.Defs[name]; obj != nil {
							facts[obj] = mergeTaintVal(facts[obj], val)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		if val := st.exprVal(v.X, facts); !val.zero() {
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if e == nil {
					continue
				}
				if id, ok := unparen(e).(*ast.Ident); ok {
					if obj := objOf(st.p, id); obj != nil {
						facts[obj] = mergeTaintVal(facts[obj], val)
					}
				}
			}
		}
	default:
		// Other statements: walk for sub-assignments inside (if-init
		// statements appear as their own nodes already; nothing to do).
	}
}

func (st *sumTaintWalk) assign(as *ast.AssignStmt, facts sumTaintFacts) {
	assignOne := func(lhs ast.Expr, val taintVal) {
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				return
			}
			obj := objOf(st.p, l)
			if obj == nil {
				return
			}
			if !val.zero() {
				facts[obj] = mergeTaintVal(facts[obj], val)
			} else if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
				// Strong update — unless the object is a parameter/receiver
				// seed, which must keep its pseudo-origin... a reassigned
				// parameter genuinely loses its incoming value, so clearing
				// is correct here too.
				delete(facts, obj)
			}
		default:
			if val.zero() {
				return
			}
			if root := rootIdent(lhs); root != nil {
				if obj := st.p.Info.Uses[root]; obj != nil {
					facts[obj] = mergeTaintVal(facts[obj], val)
				}
			}
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		for i, lhs := range as.Lhs {
			if i < len(as.Rhs) {
				if val := st.exprVal(as.Rhs[i], facts); !val.zero() {
					assignOne(lhs, val)
				}
			}
		}
		return
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		val := st.exprVal(as.Rhs[0], facts)
		for _, lhs := range as.Lhs {
			assignOne(lhs, val)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		assignOne(lhs, st.exprVal(as.Rhs[i], facts))
	}
}

// sinkPass runs sinkCheck over every call under node: parameters
// flowing into storage emission here (directly or through a callee
// whose summary says so) set the ParamToSink bits taintdet consults at
// the caller.
func (st *sumTaintWalk) sinkPass(node ast.Node, facts sumTaintFacts) {
	inspectShallow(node, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			st.sinkCheck(call, facts)
		}
		return true
	})
}

// sinkCheck records parameters reaching storage emission through this
// call: direct calls into the storage package, and calls to in-graph
// functions whose summary already proves a param→sink flow.
func (st *sumTaintWalk) sinkCheck(call *ast.CallExpr, facts sumTaintFacts) {
	record := func(v taintVal) {
		st.sum.ParamToSink |= v.params
		st.sum.RecvToSink = st.sum.RecvToSink || v.recv
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := st.p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == storagePkgPath {
			for _, arg := range call.Args {
				record(st.exprVal(arg, facts))
			}
			return
		}
	}
	callee := st.pr.calleeNode(st.p, call)
	if callee == nil {
		return
	}
	cs := st.pr.summaryOf(callee)
	if cs.ParamToSink == 0 && !cs.RecvToSink {
		return
	}
	if cs.RecvToSink {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && st.p.Info.Selections[sel] != nil {
			record(st.exprVal(sel.X, facts))
		}
	}
	nparams := calleeParamCount(callee)
	for i, arg := range call.Args {
		j := i
		if nparams > 0 && j >= nparams {
			j = nparams - 1
		}
		if j < 32 && cs.ParamToSink&(1<<j) != 0 {
			record(st.exprVal(arg, facts))
		}
	}
}

// exprVal computes the taint of an expression under facts. Calls with a
// resolved callee use the callee's transfer summary instead of blindly
// descending into the arguments — that is the whole point.
func (st *sumTaintWalk) exprVal(e ast.Expr, facts sumTaintFacts) taintVal {
	switch v := unparen(e).(type) {
	case *ast.CallExpr:
		return st.callVal(v, facts)
	case *ast.Ident:
		if obj := st.p.Info.Uses[v]; obj != nil {
			return facts[obj]
		}
		return taintVal{}
	case *ast.BinaryExpr:
		return mergeTaintVal(st.exprVal(v.X, facts), st.exprVal(v.Y, facts))
	case *ast.UnaryExpr:
		return st.exprVal(v.X, facts)
	case *ast.StarExpr:
		return st.exprVal(v.X, facts)
	case *ast.SelectorExpr:
		if id, ok := unparen(v.X).(*ast.Ident); ok {
			if _, isPkg := st.p.Info.Uses[id].(*types.PkgName); isPkg {
				return taintVal{} // qualified identifier, not a field read
			}
		}
		return st.exprVal(v.X, facts)
	case *ast.IndexExpr:
		return mergeTaintVal(st.exprVal(v.X, facts), st.exprVal(v.Index, facts))
	case *ast.SliceExpr:
		return st.exprVal(v.X, facts)
	case *ast.TypeAssertExpr:
		return st.exprVal(v.X, facts)
	case *ast.CompositeLit:
		out := taintVal{}
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = mergeTaintVal(out, st.exprVal(el, facts))
		}
		return out
	}
	return taintVal{}
}

// callVal computes the taint of a call result.
func (st *sumTaintWalk) callVal(call *ast.CallExpr, facts sumTaintFacts) taintVal {
	// A direct nondeterminism source.
	if src, ok := st.p.taintSource(call); ok {
		return taintVal{src: src, pos: call.Pos()}
	}
	if callee := st.pr.calleeNode(st.p, call); callee != nil {
		cs := st.pr.summaryOf(callee)
		out := taintVal{}
		if cs.TaintsReturn {
			out = taintVal{src: cs.TaintSrc + " (via " + callee.Name + ")", pos: call.Pos()}
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && st.p.Info.Selections[sel] != nil && cs.RecvToRet {
			out = mergeTaintVal(out, st.exprVal(sel.X, facts))
		}
		nparams := calleeParamCount(callee)
		for i, arg := range call.Args {
			j := i
			if nparams > 0 && j >= nparams {
				j = nparams - 1
			}
			if j < 32 && cs.ParamToRet&(1<<j) != 0 {
				out = mergeTaintVal(out, st.exprVal(arg, facts))
			}
		}
		return out
	}
	// Conversions preserve taint; unknown calls conservatively launder
	// every argument into the result (strconv.Itoa(tainted) is tainted).
	out := taintVal{}
	for _, arg := range call.Args {
		out = mergeTaintVal(out, st.exprVal(arg, facts))
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && st.p.Info.Selections[sel] != nil {
		out = mergeTaintVal(out, st.exprVal(sel.X, facts))
	}
	return out
}

// obsHandleType reports whether t is (a pointer to) a named type of the
// obs package — a span/tracer/metric handle, not a data value.
func obsHandleType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsPkgPath
}

// objOf resolves an identifier to its object (use or def).
func objOf(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}
