package lint

// summarycache.go persists per-package function summaries between
// dslint runs. A package's entry is keyed by a content hash covering
// its own source files plus the hashes of its in-module imports, so a
// change anywhere in a package's dependency cone invalidates it while
// untouched subtrees restore their summaries without running the
// fixpoint. The cache stores only summaries — diagnostics are always
// recomputed (they are cheap once summaries exist, and fixture paths
// would poison a shared cache).

import (
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SummaryStore is an on-disk map from package path to its summaries.
type SummaryStore struct {
	path    string
	entries map[string]storedPkg

	hashes map[*Package]string // per-run memo
}

type storedPkg struct {
	Hash  string             `json:"hash"`
	Funcs map[string]Summary `json:"funcs"`
}

// LoadSummaryStore opens (or initializes) the store at path. A missing
// or corrupt file yields an empty store: the cache is an optimization,
// never a correctness dependency.
func LoadSummaryStore(path string) *SummaryStore {
	s := &SummaryStore{path: path, entries: map[string]storedPkg{}, hashes: map[*Package]string{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return s
	}
	var entries map[string]storedPkg
	if json.Unmarshal(data, &entries) == nil && entries != nil {
		s.entries = entries
	}
	return s
}

// Save writes the store back to its path.
func (s *SummaryStore) Save() error {
	data, err := json.MarshalIndent(s.entries, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(s.path, append(data, '\n'), 0o644)
}

// pkgHash computes (and memoizes) the content hash of p: FNV-64a over
// its source files in filename order, chained with the hashes of its
// in-module imports. The import graph is acyclic, so the recursion
// terminates.
func (s *SummaryStore) pkgHash(pr *Program, p *Package) string {
	if h, ok := s.hashes[p]; ok {
		return h
	}
	s.hashes[p] = "" // cycle guard; overwritten below
	byPath := map[string]*Package{}
	for _, q := range pr.Pkgs {
		byPath[q.Path] = q
	}
	h := fnv.New64a()
	// Format version: bumped when the Summary schema grows so stale
	// stores recompute instead of restoring zero-valued new fields.
	h.Write([]byte("summary-v2\x00"))
	var names []string
	for _, f := range p.Files {
		names = append(names, p.Fset.File(f.Pos()).Name())
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
		path := name
		if !filepath.IsAbs(path) && p.Root != "" {
			path = filepath.Join(p.Root, name)
		}
		if data, err := os.ReadFile(path); err == nil {
			h.Write(data)
		}
		h.Write([]byte{0})
	}
	var imps []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if byPath[path] != nil {
				imps = append(imps, path)
			}
		}
	}
	sort.Strings(imps)
	prev := ""
	for _, imp := range imps {
		if imp == prev {
			continue
		}
		prev = imp
		h.Write([]byte(imp))
		h.Write([]byte{0})
		h.Write([]byte(s.pkgHash(pr, byPath[imp])))
		h.Write([]byte{0})
	}
	hash := strconv.FormatUint(h.Sum64(), 16)
	s.hashes[p] = hash
	return hash
}

// funcKey identifies a function within its package, stable across
// reloads: "Func" or "(T).Method".
func funcKey(n *FuncNode) string {
	return strings.TrimPrefix(n.Name, n.Pkg.Name+".")
}

// pkgFuncKeys assigns each of p's nodes a unique stable key. Duplicate
// base names (multiple init functions) are disambiguated by ordinal in
// the deterministic node order.
func pkgFuncKeys(pr *Program, p *Package) map[*FuncNode]string {
	count := map[string]int{}
	out := map[*FuncNode]string{}
	for _, n := range pr.Nodes {
		if n.Pkg != p {
			continue
		}
		base := funcKey(n)
		key := base
		if c := count[base]; c > 0 {
			key = base + "#" + strconv.Itoa(c)
		}
		count[base]++
		out[n] = key
	}
	return out
}

// restore loads p's summaries from the store when its hash matches and
// every declared function has a stored entry. Reports success.
func (s *SummaryStore) restore(pr *Program, p *Package) bool {
	ent, ok := s.entries[p.Path]
	if !ok || ent.Hash != s.pkgHash(pr, p) {
		return false
	}
	keys := pkgFuncKeys(pr, p)
	for _, key := range keys {
		if _, ok := ent.Funcs[key]; !ok {
			return false
		}
	}
	for n, key := range keys {
		sum := ent.Funcs[key]
		n.sum = &sum
	}
	return true
}

// update records every package's summaries under its current hash.
func (s *SummaryStore) update(pr *Program) {
	for _, p := range pr.Pkgs {
		ent := storedPkg{Hash: s.pkgHash(pr, p), Funcs: map[string]Summary{}}
		for n, key := range pkgFuncKeys(pr, p) {
			if n.sum != nil {
				ent.Funcs[key] = *n.sum
			}
		}
		s.entries[p.Path] = ent
	}
}
