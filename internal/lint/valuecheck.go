package lint

// valuecheck.go is the report-pass walker of the value tier: replay
// every CFG node against its fixpoint in-state and dispatch each
// expression shape to the rule-specific obligations in boundscheck.go,
// nilcheck.go, and errcontract.go. Short-circuit operators refine the
// environment for their right operand exactly as branch edges do, so
// `i < len(s) && v[i] > 0` proves its own index.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkNode checks one CFG node under its in-state env.
func (va *valueAnalysis) checkNode(env *valEnv, node ast.Node) {
	switch v := node.(type) {
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			va.checkExpr(env, r)
		}
		for _, l := range v.Lhs {
			va.checkLHS(env, l)
		}
	case *ast.ReturnStmt:
		va.checkReturn(env, v)
	case *ast.RangeStmt:
		va.checkConsume(env, v.X)
		va.checkExpr(env, v.X)
	case *ast.IncDecStmt:
		va.checkExpr(env, v.X)
	case ast.Expr:
		va.checkExpr(env, v)
	default:
		// Remaining statement forms (ExprStmt, Send, Defer, Go, Decl,
		// Case/Comm clauses...): check each top-level expression; the
		// recursion inside checkExpr covers the rest.
		inspectShallow(node, func(n ast.Node) bool {
			if n == node {
				return true
			}
			if e, ok := n.(ast.Expr); ok {
				va.checkExpr(env, e)
				return false
			}
			return true
		})
	}
}

// checkExpr recursively checks one expression tree.
func (va *valueAnalysis) checkExpr(env *valEnv, e ast.Expr) {
	if e == nil {
		return
	}
	switch v := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			va.checkExpr(env, v.X)
			refined := env.clone()
			va.refineCond(refined, v.X, true)
			va.checkExpr(refined, v.Y)
		case token.LOR:
			va.checkExpr(env, v.X)
			refined := env.clone()
			va.refineCond(refined, v.X, false)
			va.checkExpr(refined, v.Y)
		default:
			va.checkExpr(env, v.X)
			va.checkExpr(env, v.Y)
			if v.Op == token.QUO || v.Op == token.REM {
				va.checkDivisor(env, v)
			}
		}
	case *ast.IndexExpr:
		va.checkExpr(env, v.X)
		va.checkExpr(env, v.Index)
		va.checkConsume(env, v.X)
		va.checkIndex(env, v)
	case *ast.SliceExpr:
		va.checkExpr(env, v.X)
		va.checkExpr(env, v.Low)
		va.checkExpr(env, v.High)
		va.checkExpr(env, v.Max)
		va.checkConsume(env, v.X)
		va.checkSlice(env, v)
	case *ast.StarExpr:
		va.checkExpr(env, v.X)
		va.checkConsume(env, v.X)
		va.checkNilDeref(env, v)
	case *ast.SelectorExpr:
		va.checkExpr(env, v.X)
		va.checkConsume(env, v.X)
		va.checkNilField(env, v)
	case *ast.CallExpr:
		va.checkExpr(env, v.Fun)
		for _, a := range v.Args {
			va.checkExpr(env, a)
		}
	case *ast.UnaryExpr:
		va.checkExpr(env, v.X)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			va.checkExpr(env, el)
		}
	case *ast.KeyValueExpr:
		va.checkExpr(env, v.Key)
		va.checkExpr(env, v.Value)
	case *ast.TypeAssertExpr:
		va.checkExpr(env, v.X)
	case *ast.FuncLit:
		// A literal's body is its own scope (runScope visits it).
	}
}

// checkLHS checks a store target: element stores get the bounds and
// nil-map obligations, path stores the nil-deref ones.
func (va *valueAnalysis) checkLHS(env *valEnv, lhs ast.Expr) {
	switch v := unparen(lhs).(type) {
	case *ast.IndexExpr:
		va.checkExpr(env, v.X)
		va.checkExpr(env, v.Index)
		va.checkConsume(env, v.X)
		if t := va.p.typeOf(v.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				va.checkNilMapWrite(env, v)
				return
			}
		}
		va.checkIndex(env, v)
	case *ast.StarExpr:
		va.checkExpr(env, v.X)
		va.checkConsume(env, v.X)
		va.checkNilDeref(env, v)
	case *ast.SelectorExpr:
		va.checkExpr(env, v.X)
		va.checkConsume(env, v.X)
		va.checkNilField(env, v)
	}
}
