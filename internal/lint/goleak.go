package lint

// goleak proves every `go` statement has a join path, so the process
// never accumulates abandoned goroutines across the benchmark's
// thousands of queries (TestNoGoroutineLeakAfterTimeout is the dynamic
// spot check; this is the static guarantee). A spawn is accepted when
// the analyzer can prove one of:
//
//  1. WaitGroup pairing — the goroutine body calls Done (directly or
//     deferred) on a sync.WaitGroup W, a W.Add call precedes the go
//     statement in the spawning function, and W.Wait is unavoidable:
//     every CFG path from the spawn site to the function's exit passes
//     a W.Wait call (or a deferred W.Wait is registered). An early
//     return squeezing between `go` and `Wait` is exactly the leak
//     this rule exists to catch.
//  2. Cancellation-driven exit — the goroutine body demonstrably
//     terminates when the query/context is cancelled: it receives from
//     a Done() channel (`<-ctx.Done()`) or polls a niladic done()
//     predicate (the qctx pattern) in a loop that then returns. Such a
//     goroutine is owned by the cancellation scope rather than a
//     WaitGroup.
//
// Everything else — including `go namedFunc()` whose body the
// intraprocedural analysis cannot see, unless a WaitGroup is passed in
// and paired — is a finding. The fix is a real join; the escape hatch
// is a //lint:ignore carrying the ownership proof.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func analyzeGoLeak(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, fs := range funcScopes(f) {
			out = append(out, p.goLeakFunc(fs)...)
		}
	}
	return out
}

func (p *Package) goLeakFunc(fs funcScope) []Diagnostic {
	// Collect this scope's own go statements (not those of nested
	// literals, which are their own scopes — but a go statement whose
	// callee IS a literal belongs here, spawning that literal).
	var gos []*ast.GoStmt
	inspectShallow(fs.body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return nil
	}

	g := buildCFG(fs.body, p.terminatesStmt)
	var diags []Diagnostic
	for _, spawn := range gos {
		if d, ok := p.checkGoStmt(fs, g, spawn); !ok {
			diags = append(diags, d)
		}
	}
	return diags
}

// checkGoStmt proves one spawn joined; on failure it returns the
// diagnostic explaining exactly which leg of the proof is missing.
func (p *Package) checkGoStmt(fs funcScope, g *CFG, spawn *ast.GoStmt) (Diagnostic, bool) {
	var body *ast.BlockStmt
	if lit, ok := unparen(spawn.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	}

	// Leg 1: WaitGroup pairing.
	var doneGroups []string
	if body != nil {
		doneGroups = p.waitGroupCalls(body, "Done")
	} else {
		// Named callee: accept a WaitGroup passed as an argument (the
		// callee owns the Done) — the spawner must still Add and Wait.
		for _, arg := range spawn.Call.Args {
			if key, ok := p.waitGroupExpr(arg); ok {
				doneGroups = append(doneGroups, key)
			}
		}
	}
	for _, wg := range doneGroups {
		addBefore := p.hasWaitGroupCallBefore(fs.body, wg, "Add", spawn.Pos())
		if !addBefore {
			return p.diag(spawn, "goleak",
				"goroutine signals %s.Done but the spawner never calls Add before the go statement", wgDisplay(wg)), false
		}
		if !p.waitOnAllPaths(g, spawn, wg) {
			return p.diag(spawn, "goleak",
				"a path from this go statement reaches return without %s.Wait; the goroutine can outlive its spawner", wgDisplay(wg)), false
		}
		return Diagnostic{}, true
	}

	// Leg 2: cancellation-driven exit.
	if body != nil && p.cancellationDriven(body) {
		return Diagnostic{}, true
	}

	if body == nil {
		return p.diag(spawn, "goleak",
			"cannot prove a join for go %s: spawn a func literal that pairs with a WaitGroup (Add/Done/Wait) or pass the WaitGroup to the callee", displayExpr(spawn.Call.Fun)), false
	}
	return p.diag(spawn, "goleak",
		"goroutine has no provable join: pair it with a WaitGroup (Add before, Done inside, Wait after) or give it a cancellation-driven exit (<-ctx.Done() / qctx done())"), false
}

// waitGroupCalls lists the canonical keys of WaitGroups that receive a
// call to method (Done/Wait/Add) anywhere under n.
func (p *Package) waitGroupCalls(n ast.Node, method string) []string {
	var keys []string
	seen := map[string]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, ok := p.waitGroupMethod(call, method); ok && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
		return true
	})
	return keys
}

// waitGroupMethod recognizes `X.<method>()` where X is a
// sync.WaitGroup and returns X's canonical key.
func (p *Package) waitGroupMethod(call *ast.CallExpr, method string) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	if key := p.canonKey(sel.X); key != "" {
		return key, true
	}
	return "", false
}

// waitGroupExpr reports whether e denotes a sync.WaitGroup (or pointer
// to one) with a stable identity.
func (p *Package) waitGroupExpr(e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	n := namedOf(tv.Type)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" || n.Obj().Name() != "WaitGroup" {
		return "", false
	}
	if key := p.canonKey(e); key != "" {
		return key, true
	}
	return "", false
}

// hasWaitGroupCallBefore reports whether wg.<method> is called in the
// scope body at a position before pos (the Add-before-go discipline:
// Add must be sequenced before the spawn, or the Wait may pass early).
func (p *Package) hasWaitGroupCallBefore(body *ast.BlockStmt, wg, method string, pos token.Pos) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if key, ok := p.waitGroupMethod(call, method); ok && key == wg && call.Pos() < pos {
			found = true
		}
		return !found
	})
	return found
}

// waitOnAllPaths proves wg.Wait is unavoidable between the spawn and
// every function exit: a DFS from the spawn site that refuses to cross
// blocks containing Wait must not reach the exit block. A deferred
// wg.Wait anywhere in the scope also closes all paths.
func (p *Package) waitOnAllPaths(g *CFG, spawn *ast.GoStmt, wg string) bool {
	// Deferred Wait runs at every exit.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if ds, ok := n.(*ast.DeferStmt); ok {
				if key, ok := p.waitGroupMethod(ds.Call, "Wait"); ok && key == wg {
					return true
				}
			}
		}
	}
	// Locate the spawn's block and node index.
	var start *Block
	startIdx := -1
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if n == spawn || containsNode(n, spawn) {
				start, startIdx = blk, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return false // should not happen; fail safe (report)
	}
	blockWaits := func(blk *Block, from int) bool {
		for i := from; i < len(blk.Nodes); i++ {
			waits := false
			inspectShallow(blk.Nodes[i], func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, ok := p.waitGroupMethod(call, "Wait"); ok && key == wg {
						waits = true
					}
				}
				return !waits
			})
			if waits {
				return true
			}
		}
		return false
	}
	// DFS for a Wait-free path to exit.
	if blockWaits(start, startIdx+1) {
		return true
	}
	visited := map[*Block]bool{}
	var leak func(blk *Block) bool
	leak = func(blk *Block) bool {
		if blk == g.Exit {
			return true
		}
		if visited[blk] {
			return false
		}
		visited[blk] = true
		if blk != start && blockWaits(blk, 0) {
			return false // this path joins
		}
		for _, s := range blk.Succs {
			if leak(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.Succs {
		if leak(s) {
			return false
		}
	}
	return true
}

// containsNode reports whether needle appears under root.
func containsNode(root, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

// cancellationDriven recognizes goroutine bodies whose exit is driven
// by cancellation: a receive from a Done() channel or a call to a
// niladic done() predicate, in a body that also returns or falls off
// its end (the morsel-worker `for !qc.done() { ... }` shape).
func (p *Package) cancellationDriven(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			// <-something.Done()
			if v.Op == token.ARROW {
				if call, ok := unparen(v.X).(*ast.CallExpr); ok {
					if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						// Done() returning a channel (context.Context and
						// friends), not WaitGroup.Done (no result).
						if tv, ok := p.Info.Types[v.X]; ok && tv.Type != nil {
							if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
								found = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// qc.done() — a niladic predicate named done returning bool.
			if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "done" && len(v.Args) == 0 {
				if tv, ok := p.Info.Types[ast.Expr(v)]; ok && tv.Type != nil &&
					types.Identical(tv.Type, types.Typ[types.Bool]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// wgDisplay strips the key encoding for messages.
func wgDisplay(key string) string { return keyDisplay(key) }
