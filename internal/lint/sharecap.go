package lint

// sharecap checks the engine's closure-sharing contracts: a closure
// that runs concurrently with its creator — passed to a `go` statement,
// handed to forEachMorsel/parallelFor as the worker body, or compiled
// into a batch kernel shared by every morsel worker — may capture only
// state that is
//
//   - immutable after construction (read-only from the closure), or
//   - per-worker-owned: writes land in a slice/array slot whose index
//     is derived entirely from the closure's own locals and parameters
//     (counts[worker], results[stream] — each worker owns its slot), or
//   - synchronized: the write happens with a mutex provably held, or
//     goes through sync/atomic, or through a callee whose summary says
//     its mutation is internally synchronized.
//
// Kernels are stricter: a compiled kernel is invoked by every worker
// with no synchronization whatsoever, so ANY mutation of a captured
// value is flagged — per-worker slots and locks do not exist there.
//
// The check is summary-driven: a call inside the closure that passes a
// captured value to an in-graph function consults that function's
// MutatesParam/MutatesRecv bits (plain vs synchronized), so mutation
// hidden behind a helper is still caught. Calls through captured
// function VALUES are resolved when the capture's unique binding is a
// visible literal (probeOne/match in the join operators); an
// unresolvable function-value call is treated as safe with respect to
// its arguments — each kernel/closure is checked at its own creation
// site, which keeps the rule compositional instead of flagging every
// combinator.
//
// Scope: the packages that run morsel/stream parallelism.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var sharecapPkgs = map[string]bool{
	"tpcds/internal/exec":    true,
	"tpcds/internal/datagen": true,
	"tpcds/internal/driver":  true,
}

// workerPoolFuncs are the in-repo fork-join entry points whose worker
// closures run on multiple goroutines.
var workerPoolFuncs = map[string]bool{
	"forEachMorsel": true,
	"parallelFor":   true,
}

func analyzeShareCap(pr *Program, p *Package) []Diagnostic {
	if pr == nil || !sharecapPkgs[p.Path] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, fs := range funcScopes(f) {
			sc := &shareCheck{pr: pr, p: p, scope: fs, reported: map[token.Pos]map[string]bool{}}
			out = append(out, sc.checkScope()...)
		}
	}
	return out
}

type shareCheck struct {
	pr    *Program
	p     *Package
	scope funcScope

	diags    []Diagnostic
	reported map[token.Pos]map[string]bool // mutation pos -> capture name
}

// checkScope finds the concurrent-closure sites in one function body
// and checks each closure.
func (sc *shareCheck) checkScope() []Diagnostic {
	p := sc.p
	inspectShallow(sc.scope.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if lit := sc.litOf(v.Call.Fun); lit != nil {
				sc.checkClosure(lit, lit, "goroutine closure", false, map[*ast.FuncLit]bool{})
			}
		case *ast.CallExpr:
			if name, ok := calleeIdentName(v.Fun); ok && workerPoolFuncs[name] {
				for _, arg := range v.Args {
					if lit := sc.litOf(arg); lit != nil {
						sc.checkClosure(lit, lit, "worker closure passed to "+name, false, map[*ast.FuncLit]bool{})
					}
				}
			}
		case *ast.ReturnStmt:
			for i, res := range v.Results {
				if lit, ok := unparen(res).(*ast.FuncLit); ok && sc.isKernelContext(i) {
					sc.checkClosure(lit, lit, "shared kernel", true, map[*ast.FuncLit]bool{})
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				lit, ok := unparen(rhs).(*ast.FuncLit)
				if !ok || i >= len(v.Lhs) {
					continue
				}
				if named := namedOf(p.typeOf(v.Lhs[i])); named != nil && sc.isLocalFuncType(named) {
					sc.checkClosure(lit, lit, "shared kernel", true, map[*ast.FuncLit]bool{})
				}
			}
		}
		return true
	})
	return sc.diags
}

// calleeIdentName extracts the bare or selector function name of a call
// target.
func calleeIdentName(fun ast.Expr) (string, bool) {
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		return v.Sel.Name, true
	}
	return "", false
}

// isKernelContext reports whether result i of the enclosing scope has a
// locally declared named function type (triFn and friends) — the shape
// of a compiled kernel factory.
func (sc *shareCheck) isKernelContext(i int) bool {
	var sig *types.Signature
	if sc.scope.decl != nil {
		if obj, ok := sc.p.Info.Defs[sc.scope.decl.Name].(*types.Func); ok {
			sig, _ = obj.Type().(*types.Signature)
		}
	} else if sc.scope.lit != nil {
		sig, _ = sc.p.typeOf(sc.scope.lit).(*types.Signature)
	}
	if sig == nil || i >= sig.Results().Len() {
		return false
	}
	named := namedOf(sig.Results().At(i).Type())
	return named != nil && sc.isLocalFuncType(named)
}

// isLocalFuncType reports whether named is a function type declared in
// the analyzed package.
func (sc *shareCheck) isLocalFuncType(named *types.Named) bool {
	if named.Obj().Pkg() != sc.p.Types {
		return false
	}
	_, isFunc := named.Underlying().(*types.Signature)
	return isFunc
}

// litOf resolves an expression to a function literal: directly, or
// through an identifier whose unique binding in the enclosing scope is
// a literal.
func (sc *shareCheck) litOf(e ast.Expr) *ast.FuncLit {
	switch v := unparen(e).(type) {
	case *ast.FuncLit:
		return v
	case *ast.Ident:
		if obj := objOf(sc.p, v); obj != nil {
			return sc.bindingLit(obj)
		}
	}
	return nil
}

// bindingLit finds the unique function-literal binding of obj within
// the enclosing scope body (probeOne := func(...) {...}). Multiple or
// non-literal bindings yield nil.
func (sc *shareCheck) bindingLit(obj types.Object) *ast.FuncLit {
	var lit *ast.FuncLit
	count := 0
	ast.Inspect(sc.scope.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || objOf(sc.p, id) != obj {
				continue
			}
			count++
			if i < len(as.Rhs) {
				if fl, ok := unparen(as.Rhs[i]).(*ast.FuncLit); ok {
					lit = fl
				}
			}
		}
		return true
	})
	if count == 1 {
		return lit
	}
	return nil
}

// checkClosure verifies one concurrently-running literal. boundary is
// the outermost concurrent literal: objects declared inside it are
// owned by the running worker (safe to mutate), objects declared
// outside it are shared captures. kernel selects the stricter rule.
// visited breaks cycles through mutually recursive local closures.
func (sc *shareCheck) checkClosure(lit, boundary *ast.FuncLit, kind string, kernel bool, visited map[*ast.FuncLit]bool) {
	if visited[lit] {
		return
	}
	visited[lit] = true
	p := sc.p

	g := buildCFG(lit.Body, p.terminatesStmt)
	solveForward(g, lockSet{}, newLockSet, cloneLockSet, joinLockSets,
		func(blk *Block, in lockSet) lockSet {
			held := cloneLockSet(in)
			for _, node := range blk.Nodes {
				p.lockEffects(node, held)
				sc.closureNode(node, boundary, kind, kernel, len(held) > 0, visited)
			}
			return held
		})
	// Literals nested inside this closure run on the same worker (defer,
	// recover, callbacks): same boundary, locks re-derived from their own
	// bodies.
	for _, nested := range directLits(lit.Body) {
		sc.checkClosure(nested, boundary, kind, kernel, visited)
	}
}

// directLits returns the function literals directly inside body (not
// those nested in deeper literals).
func directLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if fl, ok := m.(*ast.FuncLit); ok && m != n {
				out = append(out, fl)
				return false
			}
			return true
		})
	}
	walk(body)
	return out
}

// owned reports whether obj is declared inside the boundary literal —
// per-worker state the closure may freely mutate.
func (sc *shareCheck) owned(obj types.Object, boundary *ast.FuncLit) bool {
	return obj.Pos() >= boundary.Pos() && obj.Pos() <= boundary.End()
}

// sharedCapture reports whether obj is a captured local of an enclosing
// function: not owned by the worker, not a package-level variable
// (globals are the determinism rules' domain), not a named function or
// type.
func (sc *shareCheck) sharedCapture(obj types.Object, boundary *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false
	}
	return !sc.owned(obj, boundary)
}

// closureNode checks one CFG node of a concurrent closure.
func (sc *shareCheck) closureNode(node ast.Node, boundary *ast.FuncLit, kind string, kernel, held bool, visited map[*ast.FuncLit]bool) {
	inspectShallow(node, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				sc.checkWrite(lhs, boundary, kind, kernel, held)
			}
		case *ast.IncDecStmt:
			sc.checkWrite(v.X, boundary, kind, kernel, held)
		case *ast.CallExpr:
			sc.checkCall(v, boundary, kind, kernel, held, visited)
		}
		return true
	})
}

// checkWrite classifies one store inside a concurrent closure.
func (sc *shareCheck) checkWrite(lhs ast.Expr, boundary *ast.FuncLit, kind string, kernel, held bool) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := objOf(sc.p, root)
	if obj == nil || !sc.sharedCapture(obj, boundary) {
		return
	}
	if kernel {
		sc.report(lhs, obj.Name(), "%s captures %q and writes it; kernels shared by all workers may capture only immutable values", kind, obj.Name())
		return
	}
	if sc.ownedSlotWrite(lhs, boundary) {
		return // per-worker slice slot
	}
	if held {
		return // synchronized
	}
	sc.report(lhs, obj.Name(),
		"%s captures %q and writes it without synchronization; worker-shared captures must be immutable, per-worker-owned, or lock-protected", kind, obj.Name())
}

// ownedSlotWrite reports whether the store path indexes a slice or
// array with an index derived entirely from worker-owned values —
// the per-worker-slot idiom (counts[worker], results[stream]).
// Map indexing never qualifies: concurrent map writes race on the map
// itself no matter how the keys partition.
func (sc *shareCheck) ownedSlotWrite(lhs ast.Expr, boundary *ast.FuncLit) bool {
	for {
		switch v := unparen(lhs).(type) {
		case *ast.IndexExpr:
			if t := sc.p.typeOf(v.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					if sc.ownedExpr(v.Index, boundary) {
						return true
					}
				case *types.Pointer:
					if pt, ok := t.Underlying().(*types.Pointer); ok {
						if _, isArr := pt.Elem().Underlying().(*types.Array); isArr && sc.ownedExpr(v.Index, boundary) {
							return true
						}
					}
				}
			}
			lhs = v.X
		case *ast.SelectorExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		default:
			return false
		}
	}
}

// ownedExpr reports whether every identifier in e resolves to a
// worker-owned object (or a constant).
func (sc *shareCheck) ownedExpr(e ast.Expr, boundary *ast.FuncLit) bool {
	ok := true
	inspectShallow(e, func(x ast.Node) bool {
		id, isIdent := x.(*ast.Ident)
		if !isIdent {
			return ok
		}
		obj := objOf(sc.p, id)
		if obj == nil {
			return ok
		}
		switch obj.(type) {
		case *types.Const, *types.TypeName, *types.Builtin, *types.PkgName, *types.Func:
			return ok
		}
		if !sc.owned(obj, boundary) {
			ok = false
		}
		return ok
	})
	return ok
}

// checkCall folds callee effects on captured arguments into the check.
func (sc *shareCheck) checkCall(call *ast.CallExpr, boundary *ast.FuncLit, kind string, kernel, held bool, visited map[*ast.FuncLit]bool) {
	p := sc.p
	// A call through a captured function value whose binding is a
	// visible literal: check that literal as part of this worker (its
	// own locals are per-invocation, hence owned).
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if obj := objOf(p, id); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				if bound := sc.bindingLit(obj); bound != nil {
					sc.checkClosure(bound, bound, kind+" (via "+obj.Name()+")", kernel, visited)
				}
				return // unresolvable function value: checked at its own creation site
			}
		}
	}
	if callee := sc.pr.calleeNode(p, call); callee != nil {
		cs := sc.pr.summaryOf(callee)
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.Info.Selections[sel] != nil {
			if cs.MutatesRecv || (kernel && cs.MutatesRecvSync) {
				sc.flagCalleeMutation(sel.X, boundary, kind, kernel, held, callee.Name)
			}
		}
		nparams := calleeParamCount(callee)
		for i, arg := range call.Args {
			j := i
			if nparams > 0 && j >= nparams {
				j = nparams - 1
			}
			if j >= 32 {
				continue
			}
			plain := cs.MutatesParam&(1<<j) != 0
			synced := cs.MutatesParamSync&(1<<j) != 0
			if plain || (kernel && synced) {
				sc.flagCalleeMutation(arg, boundary, kind, kernel, held, callee.Name)
			}
		}
		return
	}
	// External call with a modeled effect.
	eff := p.externalCallEffect(call)
	if eff.known {
		if eff.mutRecv && (!eff.syncRecv || kernel) {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				name, _ := calleeIdentName(call.Fun)
				sc.flagCalleeMutation(sel.X, boundary, kind, kernel, held && !kernel, name)
			}
		}
		for _, i := range eff.mutArgs {
			if i < len(call.Args) {
				name, _ := calleeIdentName(call.Fun)
				sc.flagCalleeMutation(call.Args[i], boundary, kind, kernel, held, name)
			}
		}
		return
	}
	// Unmodeled external call: conservatively assume pointer-like
	// captured arguments may be mutated.
	for _, arg := range call.Args {
		if pointerLike(p.typeOf(arg)) {
			name, _ := calleeIdentName(call.Fun)
			sc.flagCalleeMutation(arg, boundary, kind, kernel, held, name)
		}
	}
}

// flagCalleeMutation reports a captured value mutated through a call,
// applying the same owned/synchronized escapes as direct writes.
func (sc *shareCheck) flagCalleeMutation(arg ast.Expr, boundary *ast.FuncLit, kind string, kernel, held bool, callee string) {
	root := rootIdent(arg)
	if root == nil {
		return
	}
	obj := objOf(sc.p, root)
	if obj == nil || !sc.sharedCapture(obj, boundary) {
		return
	}
	if kernel {
		sc.report(arg, obj.Name(), "%s captures %q and mutates it via %s; kernels shared by all workers may capture only immutable values", kind, obj.Name(), callee)
		return
	}
	if sc.ownedSlotWrite(arg, boundary) {
		return
	}
	if held {
		return
	}
	sc.report(arg, obj.Name(),
		"%s captures %q and mutates it via %s without synchronization; worker-shared captures must be immutable, per-worker-owned, or lock-protected", kind, obj.Name(), callee)
}

// report emits one finding per (position, capture) pair.
func (sc *shareCheck) report(n ast.Node, capture, format string, args ...any) {
	at := n.Pos()
	if sc.reported[at] == nil {
		sc.reported[at] = map[string]bool{}
	}
	if sc.reported[at][capture] {
		return
	}
	sc.reported[at][capture] = true
	sc.diags = append(sc.diags, sc.p.diag(n, "sharecap", format, args...))
}
