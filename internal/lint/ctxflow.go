package lint

// ctxflow enforces context discipline along the call chain, the
// property PR 2's cancellation machinery depends on: a per-query
// deadline only bounds latency if every layer between RunContext and
// the row loops hands the same context (or a derivation of it)
// downward. Two rules:
//
//  1. Minting ban: context.Background() and context.TODO() are banned
//     outside main packages (tests are not analyzed). Library code
//     that mints a root context silently detaches everything below it
//     from the caller's cancellation — the documented context-free
//     convenience wrappers carry //lint:ignore with their
//     justification.
//  2. Threading: a function that receives a context.Context (or the
//     executor's *qctx) must thread it into every callee that accepts
//     one. The analyzer computes the set of context-derived values —
//     the parameter itself plus everything assigned from it, including
//     context.WithCancel/WithTimeout/WithDeadline/WithValue results —
//     and flags a call whose context argument is nil or unrelated to
//     the function's own context while one is sitting in scope.
//     Arguments reached through any parameter (b.qc, r.ctx) count as
//     threaded: carrying a context inside a parameter struct is
//     threading, not minting.

import (
	"go/ast"
	"go/types"
)

func analyzeCtxFlow(p *Package) []Diagnostic {
	var out []Diagnostic
	out = append(out, p.ctxMintingBan()...)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, p.ctxThreading(fd)...)
		}
	}
	return out
}

// ctxMintingBan flags context.Background()/context.TODO() in library
// packages.
func (p *Package) ctxMintingBan() []Diagnostic {
	if p.Name == "main" {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
				return true
			}
			if obj.Name() == "Background" || obj.Name() == "TODO" {
				out = append(out, p.diag(call, "ctxflow",
					"context.%s() mints a root context in library code, detaching callees from the caller's cancellation; thread a ctx parameter instead", obj.Name()))
			}
			return true
		})
	}
	return out
}

// isCtxType reports whether t is context.Context or the executor's
// qctx (possibly behind a pointer).
func isCtxType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
		return true
	}
	return obj.Name() == "qctx"
}

// ctxThreading checks one declared function with a context-like
// parameter: every call to a context-accepting callee must receive a
// value derived from this function's context (or reached through one
// of its parameters).
func (p *Package) ctxThreading(fd *ast.FuncDecl) []Diagnostic {
	params := map[types.Object]bool{} // all params + receiver
	ctxParams := map[types.Object]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				params[obj] = true
				if isCtxType(obj.Type()) {
					ctxParams[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)
	if len(ctxParams) == 0 {
		return nil
	}

	// Fixpoint: derived = ctx params ∪ anything assigned from derived
	// (covers ctx2 := ctx, qc := newQctx(ctx), c, cancel :=
	// context.WithTimeout(ctx, d) — the cancel func riding along is
	// harmless). Closures are included: captured contexts stay derived.
	derived := map[types.Object]bool{}
	for o := range ctxParams {
		derived[o] = true
	}
	mentionsDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			taintLHS := func(lhs ast.Expr) {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					return
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !derived[obj] {
					derived[obj] = true
					changed = true
				}
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if mentionsDerived(as.Rhs[0]) {
					for _, lhs := range as.Lhs {
						taintLHS(lhs)
					}
				}
				return true
			}
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && mentionsDerived(rhs) {
					taintLHS(as.Lhs[i])
				}
			}
			return true
		})
	}

	// mentionsParamRoot: the argument is reached through some parameter
	// (b.qc, cfg.Ctx) — threading via a carrier, accepted.
	mentionsParam := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && params[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[call.Fun]
		if !ok || tv.IsType() || tv.Type == nil {
			return true
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isCtxType(sig.Params().At(i).Type()) {
				continue
			}
			arg := unparen(call.Args[i])
			// Background/TODO arguments are already the minting ban's
			// finding; don't double-report.
			if isBackgroundOrTODO(p, arg) {
				continue
			}
			if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
				out = append(out, p.diag(call.Args[i], "ctxflow",
					"passes nil as the context argument of %s while a context is in scope; thread it", displayExpr(call.Fun)))
				continue
			}
			if !mentionsDerived(arg) && !mentionsParam(arg) {
				out = append(out, p.diag(call.Args[i], "ctxflow",
					"call to %s does not thread this function's context: argument %s is unrelated to its ctx parameter", displayExpr(call.Fun), displayExpr(arg)))
			}
		}
		return true
	})
	return out
}

// isBackgroundOrTODO reports whether e is a direct
// context.Background()/TODO() call.
func isBackgroundOrTODO(p *Package, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" &&
		(obj.Name() == "Background" || obj.Name() == "TODO")
}
