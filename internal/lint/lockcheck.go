package lint

// lockcheck proves, per function, that every sync.Mutex/RWMutex
// acquisition is released on every path to return — the invariant the
// engine's concurrent-streams contract (§5.2) rests on: one early
// return with e.mu held wedges every other stream at its next index
// lookup. The analysis is a forward dataflow over the function CFG:
//
//   - state: the set of locks currently held (mapped to the position
//     of the acquiring call) plus the set of locks with a registered
//     deferred release;
//   - join: held is unioned (a lock held on ANY incoming path is a
//     leak candidate), deferred is intersected (a release only counts
//     if it is registered on EVERY incoming path);
//   - obligations: at the exit block any held lock without a deferred
//     release is reported at its Lock() site; a second Lock of an
//     already-held lock is an immediate self-deadlock; a channel send
//     or receive while any lock is held is reported (a blocked
//     goroutine must never sit on a mutex — the morsel pool's drain
//     guarantee depends on it).
//
// Function literals are analyzed as their own functions (a goroutine
// body acquiring a lock must release it itself).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// lockFacts is the dataflow state: held maps lock identity → position
// of the acquiring Lock call; deferred records registered deferred
// releases. The "R:" key prefix separates read locks: RLock/RUnlock
// pair independently of Lock/Unlock on the same RWMutex.
type lockFacts struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockFacts() *lockFacts {
	return &lockFacts{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

// joinLockFacts merges src into dst: union of held, intersection of
// deferred. Reports whether dst changed.
func joinLockFacts(dst, src *lockFacts) bool {
	changed := false
	for k, pos := range src.held {
		if _, ok := dst.held[k]; !ok {
			dst.held[k] = pos
			changed = true
		}
	}
	for k := range dst.deferred {
		if !src.deferred[k] {
			delete(dst.deferred, k)
			changed = true
		}
	}
	return changed
}

func cloneLockFacts(s *lockFacts) *lockFacts {
	c := newLockFacts()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// analyzeLockCheck runs the lock dataflow over every function of the
// package.
func analyzeLockCheck(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, fs := range funcScopes(f) {
			out = append(out, p.lockCheckFunc(fs)...)
		}
	}
	return out
}

func (p *Package) lockCheckFunc(fs funcScope) []Diagnostic {
	// Cheap pre-pass: skip functions that never touch a mutex.
	touches := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := p.mutexOp(call); ok {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return nil
	}

	var diags []Diagnostic
	reported := map[string]bool{} // dedupe: one report per lock site & kind
	report := func(pos token.Pos, kind, format string, args ...any) {
		k := kind + "@" + strconv.Itoa(int(pos))
		if reported[k] {
			return
		}
		reported[k] = true
		diags = append(diags, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Rule:    "lockcheck",
			Message: fmt.Sprintf(format, args...),
		})
	}

	g := buildCFG(fs.body, p.terminatesStmt)
	transfer := func(blk *Block, in *lockFacts) *lockFacts {
		st := cloneLockFacts(in)
		for _, node := range blk.Nodes {
			p.lockTransferNode(node, st, report)
		}
		return st
	}
	in := solveForward(g, newLockFacts(), newLockFacts, cloneLockFacts, joinLockFacts, transfer)

	// Exit obligation, checked per exit EDGE rather than on the joined
	// exit in-state: joining would pair one path's held lock with
	// another path's missing defer and cry wolf. Re-running transfer is
	// safe — report dedupes by position.
	for _, blk := range g.Blocks {
		exits := false
		for _, s := range blk.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		st, ok := in[blk]
		if !exits || !ok {
			continue
		}
		out := transfer(blk, st)
		for k, pos := range out.held {
			if !out.deferred[k] {
				report(pos, "leak", "%s is locked here but not unlocked on every path to return", lockDisplay(k))
			}
		}
	}
	return diags
}

// lockTransferNode interprets one CFG node against the lock state.
func (p *Package) lockTransferNode(node ast.Node, st *lockFacts, report func(pos token.Pos, kind, format string, args ...any)) {
	// defer mu.Unlock() (directly or via a literal wrapper) registers a
	// release that runs at every exit.
	if ds, ok := node.(*ast.DeferStmt); ok {
		for _, key := range p.deferredUnlocks(ds) {
			st.deferred[key] = true
		}
		// The deferred call's other effects happen at exit, not here.
		return
	}
	inspectShallow(node, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			op, recv, ok := p.mutexOp(v)
			if !ok {
				return true
			}
			key := p.canonKey(recv)
			if key == "" {
				return true // untrackable lock expression; stay silent
			}
			if op == "RLock" || op == "RUnlock" {
				key = "R:" + key
			}
			switch op {
			case "Lock", "RLock":
				if _, held := st.held[key]; held {
					report(v.Pos(), "double", "%s.%s while %s is already held on this path (self-deadlock)",
						displayExpr(recv), op, lockDisplay(key))
				}
				st.held[key] = v.Pos()
			case "Unlock", "RUnlock":
				if _, held := st.held[key]; !held && !st.deferred[key] {
					report(v.Pos(), "bare", "%s.%s without a matching %s on this path",
						displayExpr(recv), op, matchingLockOp(op))
				}
				delete(st.held, key)
			}
		case *ast.SendStmt:
			p.reportChannelOpWhileLocked(v.Pos(), "send", st, report)
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				p.reportChannelOpWhileLocked(v.Pos(), "receive", st, report)
			}
		}
		return true
	})
}

func (p *Package) reportChannelOpWhileLocked(pos token.Pos, op string, st *lockFacts, report func(pos token.Pos, kind, format string, args ...any)) {
	for k := range st.held {
		report(pos, "chan", "channel %s while holding %s; a blocked goroutine must not sit on a mutex", op, lockDisplay(k))
		return // one report per op is enough
	}
}

// deferredUnlocks extracts the lock keys released by a defer statement:
// `defer mu.Unlock()` or `defer func() { ...; mu.Unlock(); ... }()`.
func (p *Package) deferredUnlocks(ds *ast.DeferStmt) []string {
	var keys []string
	record := func(call *ast.CallExpr) {
		op, recv, ok := p.mutexOp(call)
		if !ok || (op != "Unlock" && op != "RUnlock") {
			return
		}
		key := p.canonKey(recv)
		if key == "" {
			return
		}
		if op == "RUnlock" {
			key = "R:" + key
		}
		keys = append(keys, key)
	}
	record(ds.Call)
	if lit, ok := unparen(ds.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
	}
	return keys
}

// mutexOp recognizes a Lock/Unlock/RLock/RUnlock method call on a
// sync.Mutex or sync.RWMutex (possibly behind pointers/embedding) and
// returns the operation name and receiver expression.
func (p *Package) mutexOp(call *ast.CallExpr) (op string, recv ast.Expr, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil, false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", nil, false
	}
	// Method of sync: the receiver named type is Mutex or RWMutex.
	fn, isFunc := obj.(*types.Func)
	if !isFunc {
		return "", nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", nil, false
	}
	n := namedOf(sig.Recv().Type())
	if n == nil {
		return "", nil, false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return sel.Sel.Name, sel.X, true
	}
	return "", nil, false
}

func matchingLockOp(unlock string) string {
	if unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// lockDisplay strips the internal key encoding for messages.
func lockDisplay(key string) string {
	mode := "mutex"
	if rest, ok := strings.CutPrefix(key, "R:"); ok {
		key = rest
		mode = "read lock"
	}
	return mode + " " + keyDisplay(key)
}
