package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestCFGStructure builds the CFG of a function exercising every edge
// kind the builder handles — range loop, labeled break/continue,
// switch with fallthrough, select, infinite for with return — and
// checks the structural invariants the dataflow analyses rely on: the
// exit block is reachable from entry, every reachable non-exit block
// has a successor (no dangling control flow), and every statement of
// the body is placed in exactly one block.
func TestCFGStructure(t *testing.T) {
	const src = `package p
func f(xs []int, ch chan int) int {
L:
	for i, x := range xs {
		switch {
		case x == 0:
			continue L
		case x < 0:
			break L
		default:
			x++
			fallthrough
		case x > 10:
			return x
		}
		select {
		case v := <-ch:
			_ = v
		default:
		}
		_ = i
	}
	for {
		return 1
	}
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	g := buildCFG(fd.Body, func(ast.Stmt) bool { return false })

	if g.Entry == nil || g.Exit == nil {
		t.Fatal("CFG missing entry or exit block")
	}

	reach := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)

	if !reach[g.Exit] {
		t.Error("exit block unreachable from entry")
	}
	for _, b := range g.Blocks {
		if !reach[b] || b == g.Exit {
			continue
		}
		if len(b.Succs) == 0 {
			t.Errorf("reachable block %d has no successors (dangling control flow)", b.Index)
		}
	}

	// Every node lands in exactly one block: an analysis transferring
	// over all blocks sees each statement once.
	seen := map[ast.Node]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			seen[n]++
		}
	}
	for n, c := range seen {
		if c != 1 {
			t.Errorf("node at %v appears in %d blocks", fset.Position(n.Pos()), c)
		}
	}
}
