package lint

// valueflow.go is the value tier's abstract interpreter: one engine
// walking the SSA-lite form (ssa.go) with a combined environment of
// interval facts (interval.go), length facts, nilness facts
// (nilness.go), trusted-row-id bits, and companion-error facts. The
// three analyzers built on it — boundscheck, nilcheck, errcontract —
// share one fixpoint per function; the per-rule check logic lives in
// boundscheck.go / nilcheck.go / errcontract.go.
//
// The solver is a deterministic reverse-postorder sweep rather than
// dataflow.go's worklist: branch edges carry different facts to the two
// successors (TrueSucc/FalseSucc refinement through refineCond), which
// the shared-out-state worklist cannot express. Widening (ivalWiden)
// applies at loop heads; a sweep cap is the termination backstop (on
// hit, facts reset to ⊤ — precision lost, soundness kept).
//
// Modeled contracts, all documented in DESIGN.md ("Value analysis"):
//
//   - exec row-id trust: in internal/exec, a parameter `r int32` or
//     `sel []int32` carries values already bounds-checked against the
//     batch length by construction (scanRange/scanIDs build them from
//     [lo,hi) ⊆ [0, NumRows)); indexing a column vector with a trusted
//     value is accepted. The audit comments in batch.go cite this.
//   - kernel literals: a func literal with parameters (sel []int32,
//     out []int8) in internal/exec is a predicate kernel; the engine
//     seeds len(out) = len(sel) (the triFn contract).
//   - worker-pool literals: literals passed to forEachMorsel /
//     parallelFor / scanRange / scanIDs get their index parameters
//     seeded from the call-site arguments, plus a snapshot of the
//     caller's facts for captured variables the literal never writes.
//   - receivers are assumed non-nil (method calls on nil receivers
//     panic at the call site, not in the body).
//
// Soundness limits (also in DESIGN.md): interface dynamic types,
// unsafe, reflection, and integer conversions (modeled as identity, so
// a narrowing conversion keeps the wide bounds) are out of scope.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

const (
	execPkgPath = "tpcds/internal/exec"
	planPkgPath = "tpcds/internal/plan"
)

// valuePkgs is the union scope of the three value-tier rules.
var valuePkgs = map[string]bool{
	execPkgPath:    true,
	planPkgPath:    true,
	storagePkgPath: true,
	obsPkgPath:     true,
}

// boundsFiles restricts boundscheck inside internal/exec to the batch
// kernel files named by the contract (obs is checked whole).
var boundsFiles = map[string]bool{
	"batch.go": true, "join.go": true, "agg.go": true, "star.go": true,
}

// Trust bits for the exec row-id contract.
const (
	trustVal   uint8 = 1 << iota // the value itself is a valid row id
	trustElems                   // the slice's elements are valid row ids
)

// compFact ties a call result to its companion error: the result must
// not be consumed while errKey can still be non-nil.
type compFact struct {
	errKey     string
	nonNilOnOK bool // result proven non-nil whenever errKey is nil
}

// valEnv is the abstract state at one program point. All maps are keyed
// by canonKey strings; an absent key is ⊤ (no information).
type valEnv struct {
	iv   map[string]ival     // integer value intervals
	ln   map[string]ival     // slice/map/string length intervals
	nl   map[string]nil3     // nilness
	tr   map[string]uint8    // trust bits
	comp map[string]compFact // companion-error facts
}

func newValEnv() *valEnv {
	return &valEnv{
		iv:   map[string]ival{},
		ln:   map[string]ival{},
		nl:   map[string]nil3{},
		tr:   map[string]uint8{},
		comp: map[string]compFact{},
	}
}

func (e *valEnv) clone() *valEnv {
	c := newValEnv()
	for k, v := range e.iv {
		c.iv[k] = v
	}
	for k, v := range e.ln {
		c.ln[k] = v
	}
	for k, v := range e.nl {
		c.nl[k] = v
	}
	for k, v := range e.tr {
		c.tr[k] = v
	}
	for k, v := range e.comp {
		c.comp[k] = v
	}
	return c
}

// join merges src into e by key intersection: a fact survives only when
// both paths agree (or their hull is still informative). Reports change.
func (e *valEnv) join(src *valEnv, widen bool) bool {
	changed := false
	// Lengths join first: the merged length facts then arbitrate
	// symbolic-vs-constant hulls in the value join below (they hold on
	// both paths, so using them is sound for the merged state).
	for k, a := range e.ln {
		b, ok := src.ln[k]
		if !ok {
			delete(e.ln, k)
			changed = true
			continue
		}
		j := ivalJoin(a, b)
		if widen {
			j = ivalWiden(a, j)
		}
		if !ivalEq(a, j) {
			changed = true
			if j.isTop() {
				delete(e.ln, k)
			} else {
				e.ln[k] = j
			}
		}
	}
	for k, a := range e.iv {
		b, ok := src.iv[k]
		if !ok {
			delete(e.iv, k)
			changed = true
			continue
		}
		j := ivalJoinIn(a, b, e.ln)
		if widen {
			j = ivalWiden(a, j)
		}
		if !ivalEq(a, j) {
			changed = true
			if j.isTop() {
				delete(e.iv, k)
			} else {
				e.iv[k] = j
			}
		}
	}
	for k, a := range e.nl {
		if nilJoin(a, src.nl[k]) != a {
			delete(e.nl, k)
			changed = true
		}
	}
	for k, a := range e.tr {
		if m := a & src.tr[k]; m != a {
			if m == 0 {
				delete(e.tr, k)
			} else {
				e.tr[k] = m
			}
			changed = true
		}
	}
	for k, a := range e.comp {
		if b, ok := src.comp[k]; !ok || b != a {
			delete(e.comp, k)
			changed = true
		}
	}
	return changed
}

// killKey forgets everything about key k: its own facts, facts whose
// symbolic bounds mention k (they refer to k's old value), companion
// entries guarded by k, and field paths rooted at k.
func (e *valEnv) killKey(k string) {
	delete(e.iv, k)
	delete(e.ln, k)
	delete(e.nl, k)
	delete(e.tr, k)
	delete(e.comp, k)
	// Bounds are independent facts: only the side that mentions k's old
	// value is stale (`hi ∈ [r+1, len(rows)]` keeps its upper bound when
	// r++ retires the lower one).
	for _, m := range []map[string]ival{e.iv, e.ln} {
		for key, v := range m {
			changed := false
			if v.lo != nil && v.lo.mentions(k) {
				v.lo = nil
				changed = true
			}
			if v.hi != nil && v.hi.mentions(k) {
				v.hi = nil
				changed = true
			}
			if changed {
				if v.isTop() {
					delete(m, key)
				} else {
					m[key] = v
				}
			}
		}
	}
	for key, c := range e.comp {
		if c.errKey == k {
			delete(e.comp, key)
		}
	}
	prefix := k + "."
	for _, m := range []map[string]ival{e.iv, e.ln} {
		for key := range m {
			if strings.HasPrefix(key, prefix) {
				delete(m, key)
			}
		}
	}
	for key := range e.nl {
		if strings.HasPrefix(key, prefix) {
			delete(e.nl, key)
		}
	}
	for key := range e.tr {
		if strings.HasPrefix(key, prefix) {
			delete(e.tr, key)
		}
	}
	for key := range e.comp {
		if strings.HasPrefix(key, prefix) {
			delete(e.comp, key)
		}
	}
}

// killKeyShrink is killKey for a self-reslice `x = x[a:b]` whose new
// length provably does not exceed the old one. Another key's LOWER
// bound that mentions len(x) with a non-negative coefficient stays
// sound when len(x) only shrinks (the claim weakens); mirrored for
// upper bounds with non-positive coefficients. x's own facts still die.
func (e *valEnv) killKeyShrink(k string) {
	keepLo := func(l *lin) bool {
		if l == nil {
			return true
		}
		for _, t := range l.terms {
			if t.key == k && (!t.isLen || t.coeff < 0) {
				return false
			}
		}
		return true
	}
	keepHi := func(l *lin) bool {
		if l == nil {
			return true
		}
		for _, t := range l.terms {
			if t.key == k && (!t.isLen || t.coeff > 0) {
				return false
			}
		}
		return true
	}
	save := func(m map[string]ival) map[string]ival {
		var kept map[string]ival
		for key, v := range m {
			if key == k || strings.HasPrefix(key, k+".") {
				continue
			}
			if v.lo != nil && v.lo.mentions(k) && !keepLo(v.lo) {
				v.lo = nil
			}
			if v.hi != nil && v.hi.mentions(k) && !keepHi(v.hi) {
				v.hi = nil
			}
			if (v.lo != nil && v.lo.mentions(k)) || (v.hi != nil && v.hi.mentions(k)) {
				if kept == nil {
					kept = map[string]ival{}
				}
				kept[key] = v
			}
		}
		return kept
	}
	keptIv, keptLn := save(e.iv), save(e.ln)
	e.killKey(k)
	for key, v := range keptIv {
		e.iv[key] = v
	}
	for key, v := range keptLn {
		e.ln[key] = v
	}
}

// stripSelf removes bounds that mention key itself: after x = x+1 the
// old-x-relative bound is stale.
func stripSelf(v ival, key string) ival {
	if v.lo != nil && v.lo.mentions(key) {
		v.lo = nil
	}
	if v.hi != nil && v.hi.mentions(key) {
		v.hi = nil
	}
	return v
}

// compactFact is the compaction-counter pattern: a counter w with a
// single `w++` inside a loop over slice s and no other writes is, at
// any use textually before the increment, ≤ len(s)−1 (and ≤ len(s)
// after it) — the shape of every selection-vector compaction loop.
type compactFact struct {
	sliceKey string    // the ranged slice
	incPos   token.Pos // position of the w++ statement
	bodyPos  token.Pos // loop body extent
	bodyEnd  token.Pos
}

// valueResult caches the three rules' findings for one package.
type valueResult struct {
	diags map[string][]Diagnostic
}

// valueAnalysis is the per-package engine state.
type valueAnalysis struct {
	pr  *Program
	p   *Package
	res *valueResult

	// Per-run state.
	seeds    map[*ast.FuncLit]*valEnv // worker-pool literal seed envs
	reported map[string]bool          // rule+position dedup

	// Per-scope state.
	s       *ssaFunc
	fs      funcScope
	compact map[types.Object]compactFact
	errKeys map[string]bool // keys holding error values in this scope
	// Last post-initialization mutation position per root in the
	// current scope (plain reassignments / address escapes vs.
	// element-only stores): the filter for invariant captured-fact
	// seeding of literals.
	scopeMut     map[string]token.Pos
	scopeMutElem map[string]token.Pos
	scopeLoops   []loopSpan // loop spans, for creation-point limits

	recording bool // report pass: record literal seeds, emit findings
	quiet     bool // errfacts mode: never emit
}

// valueAnalyze runs the engine over every function of p once and caches
// the result on the package (all three rules share it).
func valueAnalyze(pr *Program, p *Package) *valueResult {
	if p.valRes != nil && p.valProg == pr {
		return p.valRes
	}
	res := &valueResult{diags: map[string][]Diagnostic{}}
	if valuePkgs[p.Path] {
		va := &valueAnalysis{
			pr:       pr,
			p:        p,
			res:      res,
			seeds:    map[*ast.FuncLit]*valEnv{},
			reported: map[string]bool{},
		}
		for _, f := range p.Files {
			for _, fs := range funcScopes(f) {
				va.runScope(fs)
			}
		}
	}
	p.valRes, p.valProg = res, pr
	return res
}

// runScope solves one function body to fixpoint and replays it once in
// block order, checking every node against its in-state.
func (va *valueAnalysis) runScope(fs funcScope) {
	va.fs = fs
	va.s = newSSA(va.p, fs)
	va.errKeys = map[string]bool{}
	va.compact = map[types.Object]compactFact{}
	va.scopeMut, va.scopeMutElem = scopeMutable(va.p, fs.body)
	va.scopeLoops = loopRanges(fs.body)
	va.findCompactions(fs.body)
	envs := va.solve(va.s, va.boundaryEnv(fs))
	va.recording = true
	for _, blk := range va.s.g.Blocks {
		env := envs[blk]
		if env == nil {
			env = newValEnv()
		} else {
			env = env.clone()
		}
		for _, node := range blk.Nodes {
			va.checkNode(env, node)
			va.transferNode(env, node)
		}
	}
	va.recording = false
}

// maxSweeps bounds the fixpoint; widening makes convergence fast in
// practice, the cap only guards pathological symbolic-bound oscillation.
const maxSweeps = 100

// solve runs the RPO-sweep fixpoint with per-edge refinement and
// widening at loop heads, returning each block's in-state.
func (va *valueAnalysis) solve(s *ssaFunc, boundary *valEnv) map[*Block]*valEnv {
	envs := map[*Block]*valEnv{}
	if s.g.Entry != nil {
		envs[s.g.Entry] = boundary
	}
	for sweep := 0; ; sweep++ {
		if sweep >= maxSweeps {
			// Termination backstop: drop every fact (⊤) and stop.
			for blk := range envs {
				envs[blk] = newValEnv()
			}
			break
		}
		changed := false
		for _, blk := range s.rpo {
			in, ok := envs[blk]
			if !ok {
				continue
			}
			out := in.clone()
			for _, node := range blk.Nodes {
				va.transferNode(out, node)
			}
			for _, succ := range blk.Succs {
				edge := out
				if len(blk.Succs) > 1 || blk.Range != nil {
					edge = out.clone()
					va.refineEdge(edge, blk, succ)
				}
				if cur, ok := envs[succ]; !ok {
					envs[succ] = edge.clone()
					changed = true
				} else if cur.join(edge, s.heads[succ]) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return envs
}

// refineEdge narrows the out-state along one CFG edge: the branch
// condition on TrueSucc/FalseSucc, the range binding on a loop's body
// edge.
func (va *valueAnalysis) refineEdge(env *valEnv, blk, succ *Block) {
	if blk.Cond != nil {
		if succ == blk.TrueSucc {
			va.refineCond(env, blk.Cond, true)
		} else if succ == blk.FalseSucc {
			va.refineCond(env, blk.Cond, false)
		}
		return
	}
	if blk.Range != nil && succ == blk.TrueSucc {
		va.refineRange(env, blk.Range)
	}
}

// refineRange installs the body-edge facts of a range loop: the key
// indexes X, the body only runs when X is non-empty, and ranging over a
// trusted selection vector makes the value variable a trusted row id.
func (va *valueAnalysis) refineRange(env *valEnv, rs *ast.RangeStmt) {
	xKey := va.p.canonKey(rs.X)
	t := va.p.typeOf(rs.X)
	if t == nil {
		return
	}
	keyIdent, _ := unparen(rs.Key).(*ast.Ident)
	var keyK string
	if keyIdent != nil && keyIdent.Name != "_" {
		if obj := objOf(va.p, keyIdent); obj != nil {
			keyK = objKey(obj)
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		if xKey != "" {
			setLoIval(env.ln, xKey, linConst(1))
		}
		if _, isSlice := u.(*types.Slice); isSlice {
			if keyK != "" && xKey != "" {
				env.iv[keyK] = ival{lo: linConst(0), hi: linAddK(linLen(xKey), -1)}
			}
			if valIdent, ok := unparen(rs.Value).(*ast.Ident); ok && valIdent.Name != "_" && xKey != "" && env.tr[xKey]&trustElems != 0 {
				if obj := objOf(va.p, valIdent); obj != nil {
					env.tr[objKey(obj)] |= trustVal
				}
			}
		}
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			if xKey != "" {
				setLoIval(env.ln, xKey, linConst(1))
			}
			if keyK != "" && xKey != "" {
				env.iv[keyK] = ival{lo: linConst(0), hi: linAddK(linLen(xKey), -1)}
			}
		} else if u.Info()&types.IsInteger != 0 && keyK != "" {
			n := va.eval(env, rs.X)
			env.iv[keyK] = ival{lo: linConst(0), hi: linAddK(n.hi, -1)}
		}
	case *types.Array:
		if keyK != "" {
			env.iv[keyK] = ival{lo: linConst(0), hi: linConst(u.Len() - 1)}
		}
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok && keyK != "" {
			env.iv[keyK] = ival{lo: linConst(0), hi: linConst(arr.Len() - 1)}
		}
	}
}

// setLoIval raises the lower bound of m[k] when the new bound is
// provably at least as tight (both bounds hold, so either is sound —
// prefer the provably-tighter one, keep the old on incomparable).
func setLoIval(m map[string]ival, k string, l *lin) {
	if l == nil {
		return
	}
	cur := m[k]
	if cur.lo == nil || linLE(cur.lo, l) {
		cur.lo = l
		m[k] = cur
	}
}

func setHiIval(m map[string]ival, k string, l *lin) {
	if l == nil {
		return
	}
	cur := m[k]
	if cur.hi == nil || linLE(l, cur.hi) {
		cur.hi = l
		m[k] = cur
	}
}

// negateCmp returns the comparison holding on the false edge.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.GTR:
		return token.LEQ
	case token.LEQ:
		return token.GTR
	case token.GEQ:
		return token.LSS
	}
	return token.ILLEGAL
}

// refineCond narrows env by the branch condition cond evaluating to
// truth.
func (va *valueAnalysis) refineCond(env *valEnv, cond ast.Expr, truth bool) {
	cond = unparen(cond)
	switch v := cond.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			va.refineCond(env, v.X, !truth)
		}
	case *ast.Ident:
		// Boolean variable: no fact tracked.
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if truth {
				va.refineCond(env, v.X, true)
				va.refineCond(env, v.Y, true)
			}
		case token.LOR:
			if !truth {
				va.refineCond(env, v.X, false)
				va.refineCond(env, v.Y, false)
			}
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			op := v.Op
			if !truth {
				op = negateCmp(op)
			}
			va.refineCmp(env, op, v.X, v.Y)
		}
	}
}

// refineCmp narrows env by `x OP y` holding.
func (va *valueAnalysis) refineCmp(env *valEnv, op token.Token, x, y ast.Expr) {
	// Nil comparisons drive the nilness lattice and promote companion
	// results once their guard error is known nil.
	if isNilIdent(va.p, y) || isNilIdent(va.p, x) {
		other := x
		if isNilIdent(va.p, x) {
			other = y
		}
		key := va.p.canonKey(other)
		if key == "" {
			return
		}
		switch op {
		case token.EQL:
			env.nl[key] = nlNil
			for resKey, c := range env.comp {
				if c.errKey == key && c.nonNilOnOK {
					env.nl[resKey] = nlNonNil
				}
			}
		case token.NEQ:
			env.nl[key] = nlNonNil
		}
		return
	}
	// len(s) OP e refines the length interval of s. The other operand
	// still gets its numeric refinement below — `i < len(s)` teaches
	// both len(s) ≥ i+1 and i ≤ len(s)−1.
	if lx, key := va.lenArgKey(x); lx {
		va.refineLenMap(env, key, op, y)
	}
	if ly, key := va.lenArgKey(y); ly {
		va.refineLenMap(env, key, swapCmp(op), x)
	}
	// A length alias constrains the length itself: after n := len(s),
	// `r < n` also teaches len(s) ≥ r+1, which lets the interval hull
	// keep symbolic bounds that need len(s) ≥ 1 (a widened loop body
	// joining its first, constant-bounded sweep).
	if key := va.aliasLenKey(env, x); key != "" {
		va.refineLenMap(env, key, op, y)
	}
	if key := va.aliasLenKey(env, y); key != "" {
		va.refineLenMap(env, key, swapCmp(op), x)
	}
	// Numeric comparison on canonical keys.
	if kx := va.intKeyOf(x); kx != "" {
		va.refineIvalMap(env, env.iv, kx, op, y)
	}
	if ky := va.intKeyOf(y); ky != "" {
		va.refineIvalMap(env, env.iv, ky, swapCmp(op), x)
	}
}

// aliasLenKey returns the container key s when e's current interval
// pins it exactly to len(s) — `n := len(s)` makes n a length alias.
func (va *valueAnalysis) aliasLenKey(env *valEnv, e ast.Expr) string {
	k := va.intKeyOf(e)
	if k == "" {
		return ""
	}
	v, ok := env.iv[k]
	if !ok || v.lo == nil || !linEq(v.lo, v.hi) {
		return ""
	}
	if len(v.lo.terms) == 1 && v.lo.k == 0 && v.lo.terms[0].isLen && v.lo.terms[0].coeff == 1 {
		return v.lo.terms[0].key
	}
	return ""
}

// swapCmp mirrors the comparison: x OP y ⇔ y swap(OP) x.
func swapCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL, NEQ symmetric
}

// lenArgKey matches len(x) with a canonical x of slice/map/string type.
func (va *valueAnalysis) lenArgKey(e ast.Expr) (bool, string) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false, ""
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return false, ""
	}
	if _, isBuiltin := va.p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false, ""
	}
	key := va.p.canonKey(call.Args[0])
	if key == "" {
		return false, ""
	}
	switch va.p.typeOf(call.Args[0]).Underlying().(type) {
	case *types.Slice, *types.Map:
		return true, key
	case *types.Basic:
		return true, key // string
	}
	return false, ""
}

// intKeyOf returns the canonical key of an integer-typed addressable
// expression, "" otherwise.
func (va *valueAnalysis) intKeyOf(e ast.Expr) string {
	t := va.p.typeOf(e)
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return ""
	}
	return va.p.canonKey(e)
}

// refineLenMap narrows the length interval of key by `len(key) OP rhs`.
// Lengths carry an implicit lower bound of 0, which turns the idiomatic
// emptiness guard `len(s) == 0` into len(s) ≥ 1 on its false edge.
func (va *valueAnalysis) refineLenMap(env *valEnv, key string, op token.Token, rhs ast.Expr) {
	if op == token.NEQ {
		if k, ok := constInt(va.p, rhs); ok && k == 0 {
			if cur := env.ln[key]; cur.lo == nil {
				cur.lo = linConst(0)
				env.ln[key] = cur
			}
		}
	}
	va.refineIvalMap(env, env.ln, key, op, rhs)
}

// refineIvalMap narrows m[key] by `key OP rhs`. On the branch edge both
// the old bound and the refinement hold, so when the two are
// incomparable the refinement wins — the guard is the locally relevant
// fact (`len(pk) == 1` must beat a symbolic alias it cannot be compared
// against).
func (va *valueAnalysis) refineIvalMap(env *valEnv, m map[string]ival, key string, op token.Token, rhs ast.Expr) {
	r := va.eval(env, rhs)
	refineLo := func(l *lin) {
		if l == nil {
			return
		}
		cur := m[key]
		if cur.lo == nil || !linLE(l, cur.lo) {
			cur.lo = l
			m[key] = cur
		}
	}
	refineHi := func(l *lin) {
		if l == nil {
			return
		}
		cur := m[key]
		if cur.hi == nil || !linLE(cur.hi, l) {
			cur.hi = l
			m[key] = cur
		}
	}
	switch op {
	case token.LSS:
		refineHi(linAddK(r.hi, -1))
	case token.LEQ:
		refineHi(r.hi)
	case token.GTR:
		refineLo(linAddK(r.lo, 1))
	case token.GEQ:
		refineLo(r.lo)
	case token.EQL:
		refineLo(r.lo)
		refineHi(r.hi)
	case token.NEQ:
		// Endpoint trimming: x ≠ k with a bound already at k moves it.
		if k, ok := constInt(va.p, rhs); ok {
			cur := m[key]
			if cur.lo != nil {
				if c, isC := cur.lo.isConst(); isC && c == k {
					cur.lo = linConst(k + 1)
					m[key] = cur
				}
			}
			if cur.hi != nil {
				if c, isC := cur.hi.isConst(); isC && c == k {
					cur.hi = linConst(k - 1)
					m[key] = cur
				}
			}
		}
	}
}

// constInt extracts a compile-time integer constant.
func constInt(p *Package, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	c := constant.ToInt(tv.Value)
	if c.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(c)
}

// eval computes the interval of an integer expression under env.
func (va *valueAnalysis) eval(env *valEnv, e ast.Expr) ival {
	if k, ok := constInt(va.p, e); ok {
		return ivalConst(k)
	}
	e = unparen(e)
	switch v := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		key := va.p.canonKey(e)
		if key == "" {
			return ivalTop()
		}
		if id, ok := v.(*ast.Ident); ok {
			if obj := objOf(va.p, id); obj != nil {
				if cf, ok := va.compact[obj]; ok {
					return va.compactIval(cf, e.Pos())
				}
			}
		}
		if iv, ok := env.iv[key]; ok {
			return iv
		}
		// Relational default: the variable equals itself, which lets
		// `i < len(s)` refinements and substitution close the proof.
		if va.intKeyOf(e) != "" {
			return ivalExact(linVar(key))
		}
		return ivalTop()
	case *ast.BinaryExpr:
		return va.evalBinary(env, v)
	case *ast.UnaryExpr:
		switch v.Op {
		case token.SUB:
			return ivalNeg(va.eval(env, v.X))
		case token.ADD:
			return va.eval(env, v.X)
		}
	case *ast.CallExpr:
		return va.evalCall(env, v)
	}
	return ivalTop()
}

// compactIval positions a compaction counter: before its increment the
// counter has not yet counted the current element.
func (va *valueAnalysis) compactIval(cf compactFact, pos token.Pos) ival {
	if pos >= cf.bodyPos && pos <= cf.bodyEnd && pos < cf.incPos {
		return ival{lo: linConst(0), hi: linAddK(linLen(cf.sliceKey), -1)}
	}
	return ival{lo: linConst(0), hi: linLen(cf.sliceKey)}
}

func (va *valueAnalysis) evalBinary(env *valEnv, v *ast.BinaryExpr) ival {
	t := va.p.typeOf(v)
	if t == nil {
		return ivalTop()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return ivalTop()
	}
	x := va.eval(env, v.X)
	y := va.eval(env, v.Y)
	switch v.Op {
	case token.ADD:
		return ivalAdd(x, y)
	case token.SUB:
		return ivalSub(x, y)
	case token.MUL:
		if k, ok := constInt(va.p, v.Y); ok {
			return ivalScale(x, k)
		}
		if k, ok := constInt(va.p, v.X); ok {
			return ivalScale(y, k)
		}
	case token.AND:
		// x & c for a constant c ≥ 0 lands in [0, c] regardless of x.
		if k, ok := constInt(va.p, v.Y); ok && k >= 0 {
			return ival{lo: linConst(0), hi: linConst(k)}
		}
		if k, ok := constInt(va.p, v.X); ok && k >= 0 {
			return ival{lo: linConst(0), hi: linConst(k)}
		}
	case token.REM:
		if k, ok := constInt(va.p, v.Y); ok && k > 0 {
			if va.proveNonNeg(env, x.lo, proveDepth) {
				return ival{lo: linConst(0), hi: linConst(k - 1)}
			}
			return ival{lo: linConst(-(k - 1)), hi: linConst(k - 1)}
		}
		if y.lo != nil && linLE(linConst(1), y.lo) && va.proveNonNeg(env, x.lo, proveDepth) {
			return ival{lo: linConst(0), hi: linAddK(y.hi, -1)}
		}
	case token.QUO:
		pos := y.lo != nil && linLE(linConst(1), y.lo)
		if k, ok := constInt(va.p, v.Y); ok && k > 0 {
			pos = true
		}
		if pos && va.proveNonNeg(env, x.lo, proveDepth) {
			return ival{lo: linConst(0), hi: x.hi}
		}
	case token.SHR:
		if va.proveNonNeg(env, x.lo, proveDepth) {
			return ival{lo: linConst(0), hi: x.hi}
		}
	}
	return ivalTop()
}

func (va *valueAnalysis) evalCall(env *valEnv, call *ast.CallExpr) ival {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := va.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len":
				return va.lengthOf(env, call.Args[0])
			case "cap":
				// cap(x) ≥ len(x) always.
				if l := va.lengthOf(env, call.Args[0]); l.lo != nil {
					return ival{lo: l.lo}
				}
				return ival{lo: linConst(0)}
			case "min":
				return va.foldMinMax(env, call.Args, true)
			case "max":
				return va.foldMinMax(env, call.Args, false)
			}
			return ivalTop()
		}
	}
	// Engine sizing accessors are clamped positive by construction
	// (morselSize/batchSize fall back to compile-time defaults, workers
	// to plan.Parallelism which floors at NumCPU ≥ 1) — the modeled
	// contract that discharges morsel-count divisions.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && va.p.Path == execPkgPath && len(call.Args) == 0 {
		switch sel.Sel.Name {
		case "morselSize", "batchSize", "workers":
			return ival{lo: linConst(1)}
		}
	}
	// Integer conversion: modeled as identity (documented: narrowing
	// conversions keep the wide bounds — unsound for actual overflow,
	// which none of the checked shapes rely on).
	if tv, ok := va.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return va.eval(env, call.Args[0])
	}
	// sort.Search(n, f) returns a value in [0, n].
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 2 {
		if obj := va.p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "sort" && obj.Name() == "Search" {
			n := va.eval(env, call.Args[0])
			return ival{lo: linConst(0), hi: n.hi}
		}
	}
	return ivalTop()
}

// lengthOf computes the length interval of a slice/map/string/array
// expression: constant for arrays, the exact symbolic len(key) for
// addressable expressions (the environment's tracked interval is
// consulted during proofs via substitution), ⊤ otherwise.
func (va *valueAnalysis) lengthOf(env *valEnv, e ast.Expr) ival {
	e = unparen(e)
	t := va.p.typeOf(e)
	if t != nil {
		switch u := t.Underlying().(type) {
		case *types.Array:
			return ivalConst(u.Len())
		case *types.Pointer:
			if arr, ok := u.Elem().Underlying().(*types.Array); ok {
				return ivalConst(arr.Len())
			}
		}
	}
	if k, ok := constInt(va.p, e); ok {
		_ = k // len of a constant expression is handled by constInt on the len call itself
	}
	if tv, ok := va.p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return ivalConst(int64(len(constant.StringVal(tv.Value))))
	}
	key := va.p.canonKey(e)
	if key == "" {
		return ivalTop()
	}
	if l, ok := env.ln[key]; ok && l.lo != nil && l.hi != nil && linEq(l.lo, l.hi) {
		// An exact tracked length (make/copy/reslice) beats the
		// relational form: it relates this slice to others.
		return l
	}
	// Relational form: len(key) is symbolically itself; a partial
	// tracked interval stays reachable through proveNonNeg's len-term
	// substitution, so nothing is lost by not returning it here.
	return ivalExact(linLen(key))
}

// evalPreferExact is eval with a fallback to the exact symbolic form
// when the interval is not already exact — `buf[:end-base]` records the
// length end−base rather than an interval hull that has lost the
// cancelling base terms.
func (va *valueAnalysis) evalPreferExact(env *valEnv, e ast.Expr) ival {
	v := va.eval(env, e)
	if v.lo != nil && linEq(v.lo, v.hi) {
		return v
	}
	if ex := va.evalExact(e); ex != nil {
		return ivalExact(ex)
	}
	return v
}

// proveDepth bounds the substitution chain of proveNonNeg.
const proveDepth = 4

// proveNonNeg proves l ≥ 0 by direct inspection or by substituting one
// term at a time through the environment (sign-aware: a positive
// coefficient substitutes the term's lower bound, a negative one its
// upper bound — both directions under-approximate l).
// foldMinMax evaluates a min (smaller=true) or max builtin call. The
// clamped side (min's hi, max's lo) takes any argument's exact symbolic
// form — min(x, y) ≤ x whatever x's interval is — preferring the first
// argument on incomparability, so `min(base+batch, hi)` keeps the
// base+batch form that cancels against base at the use site. The open
// side is a candidate validated against EVERY argument: min(a,b) ≥ X
// needs a ≥ X and b ≥ X, which relational candidates (a refined
// `hi ≥ base+1`) can pass where the plain interval fold gives up.
func (va *valueAnalysis) foldMinMax(env *valEnv, args []ast.Expr, smaller bool) ival {
	type arm struct {
		ex *lin
		v  ival
	}
	arms := make([]arm, 0, len(args))
	for _, a := range args {
		arms = append(arms, arm{ex: va.evalExact(a), v: va.eval(env, a)})
	}
	openOf := func(a arm) (*lin, *lin) { // (exact, interval) of the open side
		if smaller {
			return a.ex, a.v.lo
		}
		return a.ex, a.v.hi
	}
	// Clamped side: every argument's value bounds the result; keep the
	// provably tightest, first argument wins incomparability.
	var clamp *lin
	for _, a := range arms {
		iv := a.v.hi
		if !smaller {
			iv = a.v.lo
		}
		for _, c := range []*lin{a.ex, iv} {
			if c == nil {
				continue
			}
			if clamp == nil {
				clamp = c
				continue
			}
			tighter := linSub(clamp, c)
			if !smaller {
				tighter = linSub(c, clamp)
			}
			if va.proveNonNeg(env, tighter, proveDepth) {
				clamp = c
			}
		}
	}
	// Open side: collect candidates from each argument (its interval
	// bound, its exact form, and a one-step substitution of a
	// single-term exact form), keep the tightest one that every
	// argument provably dominates.
	var cands []*lin
	for _, a := range arms {
		ex, iv := openOf(a)
		if iv != nil {
			cands = append(cands, iv)
		}
		if ex != nil {
			cands = append(cands, ex)
			if len(ex.terms) == 1 && ex.k == 0 && ex.terms[0].coeff == 1 {
				t := ex.terms[0]
				m := env.iv
				if t.isLen {
					m = env.ln
				}
				if e, ok := m[t.key]; ok {
					if b := openSideOf(e, smaller); b != nil {
						cands = append(cands, b)
					}
				}
			}
		}
	}
	dominates := func(a arm, c *lin) bool {
		ex, iv := openOf(a)
		d := func(v *lin) *lin {
			if smaller {
				return linSub(v, c) // arm ≥ c
			}
			return linSub(c, v) // arm ≤ c
		}
		if ex != nil && va.proveNonNeg(env, d(ex), proveDepth) {
			return true
		}
		return iv != nil && va.proveNonNeg(env, d(iv), proveDepth)
	}
	var open *lin
	for _, c := range cands {
		ok := true
		for _, a := range arms {
			if !dominates(a, c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if open == nil {
			open = c
			continue
		}
		tighter := linSub(c, open) // min: a larger lo is tighter
		if !smaller {
			tighter = linSub(open, c)
		}
		if va.proveNonNeg(env, tighter, proveDepth) {
			open = c
		}
	}
	if smaller {
		return ival{lo: open, hi: clamp}
	}
	return ival{lo: clamp, hi: open}
}

// openSideOf picks the min-fold's lo (smaller) or max-fold's hi.
func openSideOf(v ival, smaller bool) *lin {
	if smaller {
		return v.lo
	}
	return v.hi
}

// pickBound folds one side of a min (smaller=true) or max fold: the
// provably extreme of the two bounds, nil when either is unknown or the
// pair is incomparable under env.
func (va *valueAnalysis) pickBound(env *valEnv, a, b *lin, smaller bool) *lin {
	if a == nil || b == nil {
		return nil
	}
	aLEb := va.proveNonNeg(env, linSub(b, a), proveDepth)
	bLEa := va.proveNonNeg(env, linSub(a, b), proveDepth)
	switch {
	case aLEb && smaller, bLEa && !smaller:
		return a
	case bLEa && smaller, aLEb && !smaller:
		return b
	}
	return nil
}

// evalExact returns e as an exact symbolic linear form — identifiers
// stay themselves instead of dissolving into their interval bounds, so
// `end − base` keeps the base terms that cancel. nil when e has any
// non-linear part. The prover then substitutes env facts per term,
// which is where `end ≤ base+batch` style bounds re-enter.
func (va *valueAnalysis) evalExact(e ast.Expr) *lin {
	if k, ok := constInt(va.p, e); ok {
		return linConst(k)
	}
	e = unparen(e)
	switch v := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		if k := va.intKeyOf(e); k != "" {
			return linVar(k)
		}
	case *ast.BinaryExpr:
		x, y := va.evalExact(v.X), va.evalExact(v.Y)
		if x == nil || y == nil {
			return nil
		}
		switch v.Op {
		case token.ADD:
			return linAdd(x, y)
		case token.SUB:
			return linSub(x, y)
		case token.MUL:
			if k, ok := x.isConst(); ok {
				return linScale(y, k)
			}
			if k, ok := y.isConst(); ok {
				return linScale(x, k)
			}
		}
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			return linNeg(va.evalExact(v.X))
		}
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "len" && len(v.Args) == 1 {
			if _, isBuiltin := va.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				if k := va.p.canonKey(v.Args[0]); k != "" {
					return linLen(k)
				}
			}
		}
	}
	return nil
}

func (va *valueAnalysis) proveNonNeg(env *valEnv, l *lin, depth int) bool {
	if l == nil {
		return false
	}
	if linNonNeg(l) {
		return true
	}
	if depth == 0 {
		return false
	}
	if _, ok := l.isConst(); ok {
		return false // constant and not ≥ 0
	}
	for i, t := range l.terms {
		var sub *lin
		if t.isLen {
			lv := env.ln[t.key]
			if t.coeff > 0 {
				sub = lv.lo
				if sub == nil {
					sub = linConst(0) // lengths are never negative
				}
			} else {
				sub = lv.hi
			}
		} else {
			iv := env.iv[t.key]
			if t.coeff > 0 {
				sub = iv.lo
			} else {
				sub = iv.hi
			}
		}
		if sub == nil || sub.mentions(t.key) {
			continue
		}
		rest := &lin{k: l.k}
		for j, o := range l.terms {
			if j != i {
				rest.terms = append(rest.terms, o)
			}
		}
		cand := linAdd(rest.norm(), linScale(sub, t.coeff))
		if va.proveNonNeg(env, cand, depth-1) {
			return true
		}
	}
	return false
}

// trusted reports whether e carries a trusted row id: a trusted
// variable, a conversion of one, or a load from a trusted selection
// vector.
func (va *valueAnalysis) trusted(env *valEnv, e ast.Expr) bool {
	e = unparen(e)
	switch v := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		key := va.p.canonKey(e)
		return key != "" && env.tr[key]&trustVal != 0
	case *ast.CallExpr:
		if tv, ok := va.p.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			if t := va.p.typeOf(v); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return va.trusted(env, v.Args[0])
				}
			}
		}
	case *ast.IndexExpr:
		baseKey := va.p.canonKey(v.X)
		return baseKey != "" && env.tr[baseKey]&trustElems != 0
	}
	return false
}

// ---- transfer functions ----

// transferNode pushes env through one CFG node: literal seeds first
// (they want the pre-call facts — the arguments as the caller computed
// them), then call effects (arguments may be mutated), then binding
// facts. inspectShallow prunes at literal boundaries without visiting
// the literal node itself, so seeds need their own walk.
func (va *valueAnalysis) transferNode(env *valEnv, node ast.Node) {
	if va.recording {
		ast.Inspect(node, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				va.recordLitSeed(env, node, lit)
				return false // nested literals seed from their enclosing scope's replay
			}
			return true
		})
	}
	inspectShallow(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			va.applyCallEnv(env, call)
		}
		return true
	})
	switch v := node.(type) {
	case *ast.AssignStmt:
		va.transferAssign(env, v)
	case *ast.IncDecStmt:
		va.transferIncDec(env, v)
	case *ast.DeclStmt:
		va.transferDecl(env, v)
	case *ast.RangeStmt:
		// The loop variables are bound on the body edge (refineRange);
		// at the head they are unknown.
		for _, e := range []ast.Expr{v.Key, v.Value} {
			if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(va.p, id); obj != nil {
					env.killKey(objKey(obj))
				}
			}
		}
	}
}

func (va *valueAnalysis) transferIncDec(env *valEnv, v *ast.IncDecStmt) {
	key := va.p.canonKey(v.X)
	if key == "" {
		return
	}
	delta := int64(1)
	if v.Tok == token.DEC {
		delta = -1
	}
	nv := ivalAddK(va.eval(env, v.X), delta)
	env.killKey(key)
	nv = stripSelf(nv, key)
	if !nv.isTop() {
		env.iv[key] = nv
	}
}

func (va *valueAnalysis) transferDecl(env *valEnv, v *ast.DeclStmt) {
	gd, ok := v.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 0 {
			for _, nm := range vs.Names {
				if nm.Name == "_" {
					continue
				}
				obj := objOf(va.p, nm)
				if obj == nil {
					continue
				}
				key := objKey(obj)
				env.killKey(key)
				va.zeroValueFacts(env, key, obj.Type())
			}
			continue
		}
		if len(vs.Values) == len(vs.Names) {
			for i, nm := range vs.Names {
				va.assignOne(env, nm, vs.Values[i])
			}
		}
	}
}

// zeroValueFacts installs the facts of a zero-valued variable.
func (va *valueAnalysis) zeroValueFacts(env *valEnv, key string, t types.Type) {
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			env.iv[key] = ivalConst(0)
		}
		if u.Info()&types.IsString != 0 {
			env.ln[key] = ivalConst(0)
		}
	default:
		if nilable(t) {
			env.nl[key] = nlNil
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				env.ln[key] = ivalConst(0)
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				env.ln[key] = ivalConst(0)
			}
		}
	}
}

func (va *valueAnalysis) transferAssign(env *valEnv, as *ast.AssignStmt) {
	// Multi-assign from a single call / map read / type assertion.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		va.transferMulti(env, as)
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i := range as.Lhs {
			va.assignOne(env, as.Lhs[i], as.Rhs[i])
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		lhs := as.Lhs[0]
		key := va.p.canonKey(lhs)
		if key == "" {
			va.killLHS(env, lhs)
			return
		}
		x := va.eval(env, lhs)
		y := va.eval(env, as.Rhs[0])
		var nv ival
		if as.Tok == token.ADD_ASSIGN {
			nv = ivalAdd(x, y)
		} else {
			nv = ivalSub(x, y)
		}
		env.killKey(key)
		nv = stripSelf(nv, key)
		if !nv.isTop() && va.intKeyOf(lhs) != "" {
			env.iv[key] = nv
		}
	default:
		for _, lhs := range as.Lhs {
			va.killLHS(env, lhs)
		}
	}
}

// assignOne transfers `lhs = rhs` for one pair: compute the rhs facts
// under the pre-state, kill the target, install.
func (va *valueAnalysis) assignOne(env *valEnv, lhs, rhs ast.Expr) {
	lhs = unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	key := va.p.canonKey(lhs)
	if key == "" || !isPlainTarget(lhs) {
		va.killLHS(env, lhs)
		return
	}
	t := va.p.typeOf(lhs)

	// Facts under the PRE-state.
	var ivFact ival
	hasIv := false
	if t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			ivFact = va.eval(env, rhs)
			hasIv = true
		}
	}
	lnFact, hasLn := va.lengthFact(env, rhs)
	nlFact := va.nilFact(env, rhs)
	trFact := va.trustFact(env, rhs)
	compFactV, hasComp := compFact{}, false
	if rid, ok := unparen(rhs).(*ast.Ident); ok {
		if rkey := va.p.canonKey(rid); rkey != "" {
			if c, ok := env.comp[rkey]; ok {
				compFactV, hasComp = c, true
			}
		}
	}
	// Single-result call facts from the callee summary.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		va.singleCallFacts(env, key, t, call, &nlFact)
	}

	// A self-reslice that provably does not grow the slice keeps other
	// keys' sound len(key) bounds: `sel = sel[:w]` inside a compaction
	// loop must not destroy the entry guard's len(buf) ≥ len(sel).
	shrink := false
	if se, ok := unparen(rhs).(*ast.SliceExpr); ok && va.p.canonKey(se.X) == key {
		if se.High == nil {
			shrink = true // x[a:] never grows the length
		} else {
			cand := linLen(key)
			h := va.eval(env, se.High)
			if h.hi != nil && va.proveNonNeg(env, linSub(cand, h.hi), proveDepth) {
				shrink = true
			} else if ex := va.evalExact(se.High); ex != nil && va.proveNonNeg(env, linSub(cand, ex), proveDepth) {
				shrink = true
			}
		}
	}
	if shrink {
		env.killKeyShrink(key)
	} else {
		env.killKey(key)
	}
	if hasIv {
		ivFact = stripSelf(ivFact, key)
		if !ivFact.isTop() {
			env.iv[key] = ivFact
		}
	}
	if hasLn {
		lnFact = stripSelf(lnFact, key)
		if !lnFact.isTop() {
			env.ln[key] = lnFact
		}
	}
	if nlFact != nlUnknown {
		env.nl[key] = nlFact
	}
	if trFact != 0 {
		env.tr[key] = trFact
	}
	if hasComp {
		env.comp[key] = compFactV
	}
	if t != nil && isErrorType(t) {
		va.errKeys[key] = true
	}
}

// isPlainTarget reports whether lhs is a variable or field path (a
// strong-update target), not an element store.
func isPlainTarget(lhs ast.Expr) bool {
	switch v := unparen(lhs).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPlainTarget(v.X)
	case *ast.StarExpr:
		return isPlainTarget(v.X)
	}
	return false
}

// killLHS invalidates a non-plain store target: an element write drops
// the container's length/trust facts, anything else drops the rooted
// path.
func (va *valueAnalysis) killLHS(env *valEnv, lhs ast.Expr) {
	switch v := unparen(lhs).(type) {
	case *ast.IndexExpr:
		baseKey := va.p.canonKey(v.X)
		if baseKey == "" {
			return
		}
		t := va.p.typeOf(v.X)
		if t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				// m[k] = v may grow the map.
				delete(env.ln, baseKey)
				return
			}
		}
		// s[i] = v: length unchanged, element trust lost.
		if env.tr[baseKey]&trustElems != 0 {
			env.tr[baseKey] &^= trustElems
			if env.tr[baseKey] == 0 {
				delete(env.tr, baseKey)
			}
		}
	default:
		if key := va.p.canonKey(lhs); key != "" {
			env.killKey(key)
		}
	}
}

// lengthFact computes the length interval an assignment's rhs implies.
func (va *valueAnalysis) lengthFact(env *valEnv, rhs ast.Expr) (ival, bool) {
	rhs = unparen(rhs)
	t := va.p.typeOf(rhs)
	if t == nil {
		return ivalTop(), false
	}
	isLenCarrier := false
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		isLenCarrier = true
	case *types.Basic:
		isLenCarrier = t.Underlying().(*types.Basic).Info()&types.IsString != 0
	}
	if !isLenCarrier {
		return ivalTop(), false
	}
	switch v := rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return va.lengthOf(env, rhs), true
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok {
			if _, isBuiltin := va.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					if len(v.Args) >= 2 {
						sz := va.eval(env, v.Args[1])
						if !linEq(sz.lo, sz.hi) {
							// The size expression itself is a better
							// (exact) bound than a widened interval.
							if ex := va.evalExact(v.Args[1]); ex != nil {
								sz = ivalExact(ex)
							}
						}
						return sz, true
					}
					return ivalConst(0), true // make(map[K]V) / make([]T) invalid; maps start empty
				case "append":
					base := va.lengthOf(env, v.Args[0])
					if v.Ellipsis != token.NoPos {
						return ival{lo: base.lo}, true
					}
					return ivalAddK(base, int64(len(v.Args)-1)), true
				}
			}
		}
	case *ast.CompositeLit:
		switch t.Underlying().(type) {
		case *types.Slice:
			for _, el := range v.Elts {
				if _, ok := el.(*ast.KeyValueExpr); ok {
					return ivalTop(), false // sparse literal
				}
			}
			return ivalConst(int64(len(v.Elts))), true
		case *types.Map:
			return ival{lo: linConst(0), hi: linConst(int64(len(v.Elts)))}, true
		}
	case *ast.SliceExpr:
		baseLen := va.lengthOf(env, v.X)
		var lo, hi ival
		if v.Low != nil {
			lo = va.evalPreferExact(env, v.Low)
		} else {
			lo = ivalConst(0)
		}
		if v.High != nil {
			hi = va.evalPreferExact(env, v.High)
		} else {
			hi = baseLen
		}
		return ivalSub(hi, lo), true
	}
	return ivalTop(), false
}

// nilFact computes the nilness of rhs under env.
func (va *valueAnalysis) nilFact(env *valEnv, rhs ast.Expr) nil3 {
	rhs = unparen(rhs)
	if n := exprNilness(va.p, rhs); n != nlUnknown {
		return n
	}
	switch v := rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if key := va.p.canonKey(rhs); key != "" {
			return env.nl[key]
		}
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := va.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				if len(v.Args) > 1 {
					return nlNonNil // appended at least one element
				}
				return va.nilFact(env, v.Args[0])
			}
		}
	}
	return nlUnknown
}

// trustFact propagates row-id trust through copies and loads.
func (va *valueAnalysis) trustFact(env *valEnv, rhs ast.Expr) uint8 {
	rhs = unparen(rhs)
	switch v := rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if key := va.p.canonKey(rhs); key != "" {
			return env.tr[key]
		}
	case *ast.CallExpr:
		if tv, ok := va.p.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return va.trustFact(env, v.Args[0]) & trustVal
		}
	case *ast.IndexExpr:
		if baseKey := va.p.canonKey(v.X); baseKey != "" && env.tr[baseKey]&trustElems != 0 {
			return trustVal
		}
	case *ast.SliceExpr:
		if baseKey := va.p.canonKey(v.X); baseKey != "" {
			return env.tr[baseKey] & trustElems
		}
	}
	return 0
}

// singleCallFacts refines nl for `x := f()` with a single result.
func (va *valueAnalysis) singleCallFacts(env *valEnv, key string, t types.Type, call *ast.CallExpr, nl *nil3) {
	n := va.pr.calleeNode(va.p, call)
	if n == nil || n.sum == nil {
		return
	}
	if t != nil && isErrorType(t) {
		if n.sum.ReturnsNilErrOn&1 != 0 {
			*nl = nlNil
		}
		return
	}
	if t != nil && nilable(t) && n.sum.NonNilResultWhenNilErr&1 != 0 {
		// Single-result function: "when err is nil" is vacuous, the
		// result is non-nil on every return.
		*nl = nlNonNil
	}
}

// transferMulti handles `a, b, ... := rhs` for call / map-read / type-
// assertion right-hand sides, recording companion-error facts.
func (va *valueAnalysis) transferMulti(env *valEnv, as *ast.AssignStmt) {
	rhs := unparen(as.Rhs[0])
	keys := make([]string, len(as.Lhs))
	typesOf := make([]types.Type, len(as.Lhs))
	for i, lhs := range as.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(va.p, id); obj != nil {
				keys[i] = objKey(obj)
				typesOf[i] = obj.Type()
			}
		} else if va.p.canonKey(lhs) != "" && isPlainTarget(lhs) {
			keys[i] = va.p.canonKey(lhs)
			typesOf[i] = va.p.typeOf(lhs)
		} else {
			va.killLHS(env, lhs)
		}
	}
	for _, k := range keys {
		if k != "" {
			env.killKey(k)
		}
	}
	call, isCall := rhs.(*ast.CallExpr)
	if !isCall {
		// v, ok := m[k] / x, ok := y.(T) / v, ok := <-ch: no facts
		// beyond the kill.
		return
	}
	var sum *Summary
	if n := va.pr.calleeNode(va.p, call); n != nil {
		sum = n.sum
	}
	errIdx := -1
	for i, t := range typesOf {
		if t != nil && isErrorType(t) {
			errIdx = i
		}
	}
	// The error result (by position in the callee's tuple, not the lhs
	// list — they coincide for full assignments, which is all Go allows).
	var errKey string
	if errIdx >= 0 && keys[errIdx] != "" {
		errKey = keys[errIdx]
		va.errKeys[errKey] = true
		if sum != nil && sum.ReturnsNilErrOn&(1<<uint(errIdx)) != 0 {
			env.nl[errKey] = nlNil
		}
	}
	for i, k := range keys {
		if k == "" || i == errIdx {
			continue
		}
		t := typesOf[i]
		if t == nil || !nilable(t) {
			continue
		}
		nonNilOnOK := sum != nil && sum.NonNilResultWhenNilErr&(1<<uint(i)) != 0
		if errKey != "" {
			env.comp[k] = compFact{errKey: errKey, nonNilOnOK: nonNilOnOK}
		} else if errIdx < 0 && nonNilOnOK {
			env.nl[k] = nlNonNil // no error result: non-nil unconditionally
		}
	}
}

// applyCallEnv invalidates facts a call may clobber: pointer-like
// arguments of mutating callees, everything pointer-like for unknown
// ones.
func (va *valueAnalysis) applyCallEnv(env *valEnv, call *ast.CallExpr) {
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := va.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "delete":
				if k := va.p.canonKey(call.Args[0]); k != "" {
					delete(env.ln, k)
				}
			case "clear":
				if k := va.p.canonKey(call.Args[0]); k != "" {
					env.ln[k] = ivalConst(0)
				}
			case "copy":
				if k := va.p.canonKey(call.Args[0]); k != "" {
					env.tr[k] &^= trustElems
					if env.tr[k] == 0 {
						delete(env.tr, k)
					}
				}
			}
			return
		}
	}
	if tv, ok := va.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if n := va.pr.calleeNode(va.p, call); n != nil && n.sum != nil {
		sum := n.sum
		args := call.Args
		recvOffset := 0
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := va.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				if sum.MutatesRecv || sum.MutatesRecvSync {
					if k := va.p.canonKey(sel.X); k != "" {
						env.killKey(k)
					}
				}
				recvOffset = 0 // params exclude the receiver
			}
		}
		_ = recvOffset
		for i, arg := range args {
			if i < 32 && (sum.MutatesParam|sum.MutatesParamSync)&(1<<uint(i)) != 0 && pointerLike(va.p.typeOf(arg)) {
				va.havocArg(env, arg)
			}
		}
		return
	}
	// External call: apply the model when there is one, else drop every
	// pointer-like argument (and receiver).
	eff := va.p.externalCallEffect(call)
	if eff.known {
		for _, i := range eff.mutArgs {
			if i < len(call.Args) {
				va.havocArg(env, call.Args[i])
			}
		}
		if eff.mutRecv {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if k := va.p.canonKey(sel.X); k != "" {
					env.killKey(k)
				}
			}
		}
		return
	}
	for _, arg := range call.Args {
		if pointerLike(va.p.typeOf(arg)) {
			va.havocArg(env, arg)
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := va.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if k := va.p.canonKey(sel.X); k != "" {
				env.killKey(k)
			}
		}
	}
}

// havocArg invalidates what a callee may do to one argument. A slice
// argument is a copy of the slice header: the callee can write elements
// (dropping element trust) but never the caller's binding or length.
// Everything else pointer-like forfeits its facts.
func (va *valueAnalysis) havocArg(env *valEnv, arg ast.Expr) {
	k := va.p.canonKey(arg)
	if k == "" {
		return
	}
	if t := va.p.typeOf(arg); t != nil {
		if _, isSlice := t.Underlying().(*types.Slice); isSlice {
			env.tr[k] &^= trustElems
			if env.tr[k] == 0 {
				delete(env.tr, k)
			}
			return
		}
	}
	env.killKey(k)
}

// ---- boundary environment and contracts ----

// boundaryEnv builds the entry state of a scope: parameter contracts,
// receiver non-nilness, named-result zero values, and literal seeds.
func (va *valueAnalysis) boundaryEnv(fs funcScope) *valEnv {
	env := newValEnv()
	var ftype *ast.FuncType
	if fs.decl != nil {
		ftype = fs.decl.Type
		if fs.decl.Recv != nil {
			for _, f := range fs.decl.Recv.List {
				for _, nm := range f.Names {
					if obj := va.p.Info.Defs[nm]; obj != nil && nilable(obj.Type()) {
						// Documented assumption: method bodies run on
						// non-nil receivers.
						env.nl[objKey(obj)] = nlNonNil
					}
				}
			}
		}
	} else {
		ftype = fs.lit.Type
	}
	addParams := func(fl *ast.FieldList, results bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, nm := range f.Names {
				obj := va.p.Info.Defs[nm]
				if obj == nil {
					continue
				}
				key := objKey(obj)
				if results {
					va.zeroValueFacts(env, key, obj.Type())
					if isErrorType(obj.Type()) {
						va.errKeys[key] = true
					}
					continue
				}
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsUnsigned != 0 {
					env.iv[key] = ival{lo: linConst(0)}
				}
				if va.p.Path == execPkgPath {
					va.execTrustContract(env, nm.Name, obj)
				}
				if isErrorType(obj.Type()) {
					va.errKeys[key] = true
				}
			}
		}
	}
	addParams(ftype.Params, false)
	addParams(ftype.Results, true)

	if fs.lit != nil {
		va.kernelContract(env, fs.lit)
		if seed := va.seeds[fs.lit]; seed != nil {
			mergeSeed(env, seed)
		}
	}
	return env
}

// execTrustContract seeds the exec row-id contract: `r int32` row-id
// parameters and `sel []int32` selection vectors are constructed
// in-bounds (scanRange/scanIDs derive them from [0, NumRows)).
func (va *valueAnalysis) execTrustContract(env *valEnv, name string, obj types.Object) {
	t := obj.Type()
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Int32 && name == "r" {
		env.tr[objKey(obj)] |= trustVal
		return
	}
	if sl, ok := t.Underlying().(*types.Slice); ok && (name == "sel" || name == "ids") {
		if el, ok := sl.Elem().Underlying().(*types.Basic); ok && el.Kind() == types.Int32 {
			env.tr[objKey(obj)] |= trustElems
		}
	}
}

// kernelContract seeds len(out) = len(sel) for predicate kernels: a
// literal with parameters (sel []int32, out []int8) in internal/exec is
// a triFn-shaped kernel whose caller allocates out at len(sel).
func (va *valueAnalysis) kernelContract(env *valEnv, lit *ast.FuncLit) {
	if va.p.Path != execPkgPath {
		return
	}
	var selObj, outObj types.Object
	for _, f := range lit.Type.Params.List {
		for _, nm := range f.Names {
			obj := va.p.Info.Defs[nm]
			if obj == nil {
				continue
			}
			if sl, ok := obj.Type().Underlying().(*types.Slice); ok {
				el, _ := sl.Elem().Underlying().(*types.Basic)
				if el == nil {
					continue
				}
				if nm.Name == "sel" && el.Kind() == types.Int32 {
					selObj = obj
				}
				if nm.Name == "out" && el.Kind() == types.Int8 {
					outObj = obj
				}
			}
		}
	}
	if selObj != nil && outObj != nil {
		env.ln[objKey(outObj)] = ivalExact(linLen(objKey(selObj)))
	}
}

// mergeSeed copies seed facts into env without overriding contracts.
func mergeSeed(env, seed *valEnv) {
	for k, v := range seed.iv {
		if _, ok := env.iv[k]; !ok {
			env.iv[k] = v
		}
	}
	for k, v := range seed.ln {
		if _, ok := env.ln[k]; !ok {
			env.ln[k] = v
		}
	}
	for k, v := range seed.tr {
		env.tr[k] |= v
	}
}

// recordLitSeed captures, at a worker-pool call site, the facts a
// literal argument starts from: its index parameters' ranges from the
// call arguments plus the caller's facts for captured variables the
// literal never writes. Recorded during the report pass (the caller's
// final fixpoint state), consumed when the literal's own scope runs —
// funcScopes orders literals after their enclosing function.
func (va *valueAnalysis) recordLitSeed(env *valEnv, node ast.Node, lit *ast.FuncLit) {
	call := enclosingCall(node, lit)
	name := ""
	if call != nil {
		name, _ = calleeIdentName(call.Fun)
	}
	litParams := func() []types.Object {
		var out []types.Object
		for _, f := range lit.Type.Params.List {
			for _, nm := range f.Names {
				out = append(out, va.p.Info.Defs[nm])
			}
		}
		return out
	}
	seed := newValEnv()
	switch name {
	case "forEachMorsel":
		// forEachMorsel(qc, workers, n, morselRows, fn(worker, morsel, lo, hi)):
		// every morsel satisfies 0 ≤ lo ≤ hi ≤ n, so lo's upper bound is
		// the hi parameter itself — that relational seed is what proves
		// the s[lo:hi] reslice inside the body.
		if len(call.Args) >= 5 {
			ps := litParams()
			n := va.eval(env, call.Args[2])
			if len(ps) > 3 && ps[3] != nil {
				seed.iv[objKey(ps[3])] = ival{lo: linConst(0), hi: n.hi}
				if ps[2] != nil {
					seed.iv[objKey(ps[2])] = ival{lo: linConst(0), hi: linVar(objKey(ps[3]))}
				}
			}
		}
	case "parallelFor":
		// parallelFor(workers, fn(p)).
		if len(call.Args) >= 2 {
			ps := litParams()
			w := va.eval(env, call.Args[0])
			if len(ps) > 0 && ps[0] != nil {
				seed.iv[objKey(ps[0])] = ival{lo: linConst(0), hi: linAddK(w.hi, -1)}
			}
		}
	case "scanRange", "scanIDs":
		// The literal receives a freshly built, in-bounds selection
		// vector: fn(sel []int32).
		ps := litParams()
		if len(ps) > 0 && ps[0] != nil {
			if sl, ok := ps[0].Type().Underlying().(*types.Slice); ok {
				if el, ok := sl.Elem().Underlying().(*types.Basic); ok && el.Kind() == types.Int32 {
					seed.tr[objKey(ps[0])] |= trustElems
				}
			}
		}
	case "Slice", "SliceStable":
		// sort.Slice(x, less): the comparator's index parameters range
		// over x — [0, len(x)−1] for the slice as passed to the sort.
		if !isPkgCall(va.p, call, "sort") || len(call.Args) < 2 {
			return
		}
		key := va.p.canonKey(call.Args[0])
		if key == "" {
			return
		}
		ps := litParams()
		for i := 0; i < 2 && i < len(ps); i++ {
			if ps[i] != nil {
				seed.iv[objKey(ps[i])] = ival{lo: linConst(0), hi: linAddK(linLen(key), -1)}
			}
		}
	case "Search":
		// sort.Search(n, f): f probes i ∈ [0, n).
		if !isPkgCall(va.p, call, "sort") || len(call.Args) < 2 {
			return
		}
		ps := litParams()
		if len(ps) > 0 && ps[0] != nil {
			n := va.eval(env, call.Args[0])
			seed.iv[objKey(ps[0])] = ival{lo: linConst(0), hi: linAddK(n.hi, -1)}
		}
	default:
		// Any other literal — stored, returned, or passed to an opaque
		// callee — may run at any later point, so only invariant facts
		// survive: facts whose roots are never mutated after this
		// literal's creation limit can't go stale between creation and
		// invocation.
		limit := litLimit(va.scopeLoops, lit.Pos())
		stableAt := func(k string, v ival) bool {
			if va.scopeMut[rootOf(k)] >= limit {
				return false
			}
			for _, l := range []*lin{v.lo, v.hi} {
				if l == nil {
					continue
				}
				for _, t := range l.terms {
					if va.scopeMut[rootOf(t.key)] >= limit {
						return false
					}
				}
			}
			return true
		}
		for k, v := range env.iv {
			if stableAt(k, v) {
				seed.iv[k] = v
			}
		}
		for k, v := range env.ln {
			if stableAt(k, v) {
				seed.ln[k] = v
			}
		}
		for k, v := range env.tr {
			if va.scopeMut[rootOf(k)] < limit && va.scopeMutElem[rootOf(k)] < limit {
				seed.tr[k] |= v
			}
		}
		va.seeds[lit] = seed
		return
	}
	// Captured facts: keys whose root object the literal never rebinds.
	// Element stores keep value and length facts but spoil trust bits.
	written, elemWritten := litWrites(va.p, lit)
	copyUnwritten := func(dst, src map[string]ival) {
		for k, v := range src {
			if !written[rootOf(k)] && boundsStable(v, written) {
				dst[k] = v
			}
		}
	}
	copyUnwritten(seed.iv, env.iv)
	copyUnwritten(seed.ln, env.ln)
	for k, v := range env.tr {
		if !written[rootOf(k)] && !elemWritten[rootOf(k)] {
			seed.tr[k] |= v
		}
	}
	va.seeds[lit] = seed
}

// boundsStable reports whether an interval's symbolic bounds avoid every
// written root.
func boundsStable(v ival, written map[string]bool) bool {
	for _, l := range []*lin{v.lo, v.hi} {
		if l == nil {
			continue
		}
		for _, t := range l.terms {
			if written[rootOf(t.key)] {
				return false
			}
		}
	}
	return true
}

// rootOf strips a field path back to its root key.
func rootOf(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}

// litWrites collects the root keys of every assignment target inside
// lit (nested literals included: they may run too).
// loopSpan is the source span of one loop statement.
type loopSpan struct{ pos, end token.Pos }

// loopRanges collects the spans of every for/range statement in body,
// nested literals included.
func loopRanges(body *ast.BlockStmt) []loopSpan {
	var out []loopSpan
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, loopSpan{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

// litLimit returns the position before which a mutation cannot reach a
// literal created at litPos: the literal's own position, pulled back to
// the start of any loop enclosing it (an enclosing loop re-runs the
// mutation after the literal of an earlier iteration was created).
func litLimit(loops []loopSpan, litPos token.Pos) token.Pos {
	limit := litPos
	for _, r := range loops {
		if r.pos <= litPos && litPos < r.end && r.pos < limit {
			limit = r.pos
		}
	}
	return limit
}

// scopeMutable records the last post-initialization mutation position
// of every root in a whole scope body, nested literals included,
// skipping each object's initializing define (plain reassignments and
// address escapes in mut, element-only stores in mutElem). A fact about
// a root whose mutations all precede a literal's creation limit cannot
// go stale between the literal's creation and a later invocation; an
// address escape poisons the root everywhere, and so does a mutation
// inside a nested literal — the literal's body runs at times source
// order says nothing about.
func scopeMutable(p *Package, body *ast.BlockStmt) (mut, mutElem map[string]token.Pos) {
	mut, mutElem = map[string]token.Pos{}, map[string]token.Pos{}
	const farPos = token.Pos(1 << 40)
	var litSpans []loopSpan
	inLit := func(pos token.Pos) bool {
		for _, sp := range litSpans {
			if sp.pos <= pos && pos < sp.end {
				return true
			}
		}
		return false
	}
	addRoot := func(e ast.Expr, dst map[string]token.Pos, at token.Pos) {
		for {
			switch v := unparen(e).(type) {
			case *ast.SelectorExpr:
				e = v.X
				continue
			case *ast.StarExpr:
				e = v.X
				continue
			case *ast.IndexExpr:
				e = v.X
				continue
			case *ast.Ident:
				if obj := objOf(p, v); obj != nil {
					k := objKey(obj)
					if at > dst[k] {
						dst[k] = at
					}
				}
				return
			default:
				return
			}
		}
	}
	classify := func(e ast.Expr) map[string]token.Pos {
		if ix, ok := unparen(e).(*ast.IndexExpr); ok {
			if t := p.typeOf(ix.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
					return mutElem
				}
			}
		}
		return mut
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			litSpans = append(litSpans, loopSpan{v.Pos(), v.End()})
		case *ast.AssignStmt:
			at := v.End()
			if inLit(v.Pos()) {
				at = farPos
			}
			for _, lhs := range v.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && v.Tok == token.DEFINE {
					if p.Info.Defs[id] != nil {
						continue // initializing define, not a mutation
					}
				}
				addRoot(lhs, classify(lhs), at)
			}
		case *ast.IncDecStmt:
			at := v.End()
			if inLit(v.Pos()) {
				at = farPos
			}
			addRoot(v.X, classify(v.X), at)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				addRoot(v.X, mut, farPos) // address taken: anything may write it, any time
			}
		case *ast.RangeStmt:
			at := v.Body.End()
			if inLit(v.Pos()) {
				at = farPos
			}
			// Range loop variables rebind every iteration.
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if e != nil {
					addRoot(e, mut, at)
				}
			}
		}
		return true
	})
	return mut, mutElem
}

func litWrites(p *Package, lit *ast.FuncLit) (rebind, elem map[string]bool) {
	rebind, elem = map[string]bool{}, map[string]bool{}
	addRoot := func(e ast.Expr, dst map[string]bool) {
		for {
			switch v := unparen(e).(type) {
			case *ast.SelectorExpr:
				e = v.X
				continue
			case *ast.StarExpr:
				e = v.X
				continue
			case *ast.IndexExpr:
				e = v.X
				continue
			case *ast.Ident:
				if obj := objOf(p, v); obj != nil {
					dst[objKey(obj)] = true
				}
				return
			default:
				return
			}
		}
	}
	// A store through a slice or array index mutates an element, never
	// the binding or the length — those land in elem, which invalidates
	// trust bits but not value or length facts. A map index write grows
	// the map, so it counts as a rebind.
	classify := func(e ast.Expr) map[string]bool {
		if ix, ok := unparen(e).(*ast.IndexExpr); ok {
			if t := p.typeOf(ix.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
					return elem
				}
			}
		}
		return rebind
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				addRoot(lhs, classify(lhs))
			}
		case *ast.IncDecStmt:
			addRoot(v.X, classify(v.X))
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				addRoot(v.X, rebind) // address taken: anything may write it
			}
		}
		return true
	})
	return rebind, elem
}

// enclosingCall finds the call expression (inside node) that has lit as
// a direct argument.
// isPkgCall reports whether the call's selector resolves to a function
// from the given package path (guards name-based contract matching
// against same-named methods).
func isPkgCall(p *Package, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func enclosingCall(node ast.Node, lit *ast.FuncLit) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(node, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, a := range call.Args {
				if unparen(a) == lit {
					found = call
					return false
				}
			}
		}
		return true
	})
	return found
}

// findCompactions detects the compaction-counter pattern in a scope:
// `w := 0` before a loop ranging over slice s, exactly one `w++` in the
// loop body, and no other write to w anywhere in the scope.
func (va *valueAnalysis) findCompactions(body *ast.BlockStmt) {
	type counter struct {
		incs      int
		incPos    token.Pos
		inits     int
		initPos   token.Pos
		others    int
		initLoops []ast.Stmt
		incLoops  []ast.Stmt
	}
	counters := map[types.Object]*counter{}
	get := func(e ast.Expr) (*counter, types.Object) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil, nil
		}
		obj := objOf(va.p, id)
		if obj == nil {
			return nil, nil
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return nil, nil
		}
		c := counters[obj]
		if c == nil {
			c = &counter{}
			counters[obj] = c
		}
		return c, obj
	}
	// One pass recording every write event, with loop context.
	var loops []ast.Stmt // enclosing for/range statements, innermost last
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				if m != n {
					// Writes inside nested literals disqualify.
					ast.Inspect(v.Body, func(x ast.Node) bool {
						switch w := x.(type) {
						case *ast.AssignStmt:
							for _, lhs := range w.Lhs {
								if c, _ := get(lhs); c != nil {
									c.others++
								}
							}
						case *ast.IncDecStmt:
							if c, _ := get(w.X); c != nil {
								c.others++
							}
						}
						return true
					})
					return false
				}
			case *ast.RangeStmt, *ast.ForStmt:
				if m != n {
					loops = append(loops, m.(ast.Stmt))
					walk(loopBody(m.(ast.Stmt)))
					// Init/Cond/Post of a for are outside the body.
					if f, ok := m.(*ast.ForStmt); ok {
						if f.Init != nil {
							walk(f.Init)
						}
						if f.Post != nil {
							walk(f.Post)
						}
					}
					loops = loops[:len(loops)-1]
					return false
				}
			case *ast.IncDecStmt:
				if c, _ := get(v.X); c != nil {
					if v.Tok == token.INC && len(loops) > 0 {
						c.incs++
						c.incPos = v.Pos()
						c.incLoops = append([]ast.Stmt(nil), loops...)
					} else {
						c.others++
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					c, _ := get(lhs)
					if c == nil {
						continue
					}
					isZeroInit := false
					if (v.Tok == token.DEFINE || v.Tok == token.ASSIGN) && i < len(v.Rhs) {
						if k, ok := constInt(va.p, v.Rhs[i]); ok && k == 0 {
							isZeroInit = true
						}
					}
					if isZeroInit {
						c.inits++
						c.initPos = v.Pos()
						c.initLoops = append([]ast.Stmt(nil), loops...)
					} else {
						c.others++
					}
				}
			case *ast.UnaryExpr:
				if v.Op == token.AND {
					if c, _ := get(v.X); c != nil {
						c.others++
					}
				}
			}
			return true
		})
	}
	walk(body)
	for obj, c := range counters {
		if c.incs != 1 || c.inits != 1 || c.others != 0 {
			continue
		}
		// The init must sit exactly one loop level above the increment
		// (same enclosing loops), so each run of the counting loop
		// starts from zero — an outer loop re-running both preserves
		// the invariant per iteration.
		if len(c.incLoops) != len(c.initLoops)+1 {
			continue
		}
		nested := true
		for i := range c.initLoops {
			if c.initLoops[i] != c.incLoops[i] {
				nested = false
				break
			}
		}
		inner := c.incLoops[len(c.incLoops)-1]
		if !nested || c.initPos >= inner.Pos() {
			continue
		}
		var sliceKey string
		var bodyPos, bodyEnd token.Pos
		switch l := inner.(type) {
		case *ast.RangeStmt:
			sliceKey = va.p.canonKey(l.X)
			if t := va.p.typeOf(l.X); t != nil {
				if _, ok := t.Underlying().(*types.Slice); !ok {
					sliceKey = ""
				}
			}
			bodyPos, bodyEnd = l.Body.Pos(), l.Body.End()
		case *ast.ForStmt:
			sliceKey = forOverSliceKey(va.p, l)
			bodyPos, bodyEnd = l.Body.Pos(), l.Body.End()
		}
		if sliceKey == "" {
			continue
		}
		va.compact[obj] = compactFact{sliceKey: sliceKey, incPos: c.incPos, bodyPos: bodyPos, bodyEnd: bodyEnd}
	}
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch v := s.(type) {
	case *ast.RangeStmt:
		return v.Body
	case *ast.ForStmt:
		return v.Body
	}
	return nil
}

// forOverSliceKey matches `for i := 0; i < len(s); i++` and returns s's
// key.
func forOverSliceKey(p *Package, f *ast.ForStmt) string {
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return ""
	}
	call, ok := unparen(cond.Y).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return ""
	}
	if t := p.typeOf(call.Args[0]); t != nil {
		if _, isSlice := t.Underlying().(*types.Slice); isSlice {
			return p.canonKey(call.Args[0])
		}
	}
	return ""
}

// ---- reporting ----

// emit records a finding under rule with a -why explanation, applying
// the per-rule file scope and position dedup.
func (va *valueAnalysis) emit(n ast.Node, rule, why, format string, args ...any) {
	if va.quiet || !va.recording {
		return
	}
	if !va.ruleApplies(rule, n) {
		return
	}
	pos := va.p.Fset.Position(n.Pos())
	dkey := fmt.Sprintf("%s|%s:%d:%d", rule, pos.Filename, pos.Line, pos.Column)
	if va.reported[dkey] {
		return
	}
	va.reported[dkey] = true
	va.res.diags[rule] = append(va.res.diags[rule], Diagnostic{
		Pos:     pos,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Why:     why,
	})
}

// ruleApplies implements the per-rule package/file scopes.
func (va *valueAnalysis) ruleApplies(rule string, n ast.Node) bool {
	switch rule {
	case "boundscheck":
		if va.p.Path == obsPkgPath {
			return true
		}
		if va.p.Path != execPkgPath {
			return false
		}
		file := va.p.Fset.Position(n.Pos()).Filename
		return boundsFiles[baseFilename(file)]
	case "nilcheck":
		return valuePkgs[va.p.Path]
	case "errcontract":
		return va.p.Path == execPkgPath || va.p.Path == planPkgPath || va.p.Path == storagePkgPath
	}
	return false
}

func baseFilename(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
